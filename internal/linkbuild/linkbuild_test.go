package linkbuild

import (
	"math"
	"sync"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/los"
	"cisp/internal/terrain"
	"cisp/internal/towers"
	"cisp/internal/units"
)

var scenarioOnce struct {
	sync.Once
	cs []cities.City
	l  *Links
}

// smallScenario builds (once per test binary) a reduced-scale Midwest
// scenario that is quick enough for unit tests but still exercises real
// tower routing.
func smallScenario(t testing.TB) ([]cities.City, *Links) {
	t.Helper()
	scenarioOnce.Do(func() {
		all := cities.USCenters()
		names := []string{"Chicago, IL", "Indianapolis, IN", "St. Louis, MO", "Columbus, OH", "Detroit, MI", "Milwaukee, WI"}
		var cs []cities.City
		for _, name := range names {
			c, ok := cities.ByName(all, name)
			if !ok {
				t.Fatalf("city %s missing", name)
			}
			cs = append(cs, c)
		}
		reg := towers.Generate(towers.GenConfig{Seed: 21, RuralPerCell: 2.5, CityTowerScale: 15}, cs)
		ev := los.NewEvaluator(terrain.ContiguousUS(7), los.DefaultParams())
		scenarioOnce.cs = cs
		scenarioOnce.l = Build(cs, reg, ev, Config{})
	})
	return scenarioOnce.cs, scenarioOnce.l
}

func TestMidwestLinksExist(t *testing.T) {
	cs, l := smallScenario(t)
	if l.FeasibleHops() == 0 {
		t.Fatal("no feasible hops found")
	}
	connected := 0
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if !math.IsInf(float64(l.MWDist(i, j)), 1) {
				connected++
			}
		}
	}
	if connected == 0 {
		t.Fatal("no city pair has a microwave link")
	}
	t.Logf("feasible hops: %d, connected pairs: %d/%d", l.FeasibleHops(), connected, len(cs)*(len(cs)-1)/2)
}

func TestMWDistAtLeastGeodesic(t *testing.T) {
	cs, l := smallScenario(t)
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			d := l.MWDist(i, j)
			if math.IsInf(float64(d), 1) {
				continue
			}
			geod := cs[i].Loc.DistanceTo(cs[j].Loc)
			if d < geod*0.999 {
				t.Fatalf("%s-%s MW link (%.0f m) shorter than geodesic (%.0f m)", cs[i].Name, cs[j].Name, d, geod)
			}
		}
	}
}

func TestMWLinksNearlyStraight(t *testing.T) {
	// On the plains, shortest tower paths should be close to great-circle:
	// the paper's links achieve ~1.05× or better per-link stretch in easy
	// terrain. Allow a generous bound at reduced tower density.
	cs, l := smallScenario(t)
	any := false
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			d := l.MWDist(i, j)
			if math.IsInf(float64(d), 1) {
				continue
			}
			geod := cs[i].Loc.DistanceTo(cs[j].Loc)
			if geod < 150e3 {
				continue
			}
			any = true
			if s := float64(d / geod); s > 1.35 {
				t.Errorf("%s-%s MW stretch %.3f, want < 1.35 in flat terrain", cs[i].Name, cs[j].Name, s)
			}
		}
	}
	if !any {
		t.Skip("no long links at this scale")
	}
}

func TestSymmetry(t *testing.T) {
	cs, l := smallScenario(t)
	for i := range cs {
		for j := range cs {
			if l.MWDist(i, j) != l.MWDist(j, i) {
				t.Fatalf("asymmetric MW distance %d-%d", i, j)
			}
		}
	}
	if l.MWDist(2, 2) != 0 {
		t.Error("self distance non-zero")
	}
}

func TestPathStructure(t *testing.T) {
	cs, l := smallScenario(t)
	n := len(cs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || math.IsInf(float64(l.MWDist(i, j)), 1) {
				continue
			}
			p := l.Path(i, j)
			if p[0] != i || p[len(p)-1] != j {
				t.Fatalf("path %d-%d has wrong endpoints: %v", i, j, p)
			}
			// Interior nodes must all be towers.
			for _, v := range p[1 : len(p)-1] {
				if v < n {
					t.Fatalf("path %d-%d passes through city node %d", i, j, v)
				}
			}
			// Tower count matches the tower path.
			if got, want := l.TowerCount(i, j), len(p)-2; got != want {
				t.Fatalf("TowerCount(%d,%d) = %d, want %d", i, j, got, want)
			}
			// Hops are consecutive tower pairs.
			hops := l.Hops(i, j)
			if want := l.TowerCount(i, j) - 1; len(hops) != want && want >= 0 {
				t.Fatalf("Hops(%d,%d) = %d entries, want %d", i, j, len(hops), want)
			}
		}
	}
}

func TestHopLengthsWithinRange(t *testing.T) {
	cs, l := smallScenario(t)
	maxRange := los.DefaultParams().MaxRange
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			for _, h := range l.Hops(i, j) {
				d := l.Reg.Tower(h[0]).Loc.DistanceTo(l.Reg.Tower(h[1]).Loc)
				if d > maxRange {
					t.Fatalf("hop %v length %.0f m exceeds range %f", h, d, maxRange)
				}
			}
		}
	}
}

func TestDisjointPathsLengthen(t *testing.T) {
	cs, l := smallScenario(t)
	// Pick the best-connected pair.
	bi, bj := -1, -1
	best := units.Meters(math.Inf(1))
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if d := l.MWDist(i, j); d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	if bi < 0 {
		t.Skip("no connected pair")
	}
	lens := l.DisjointTowerPaths(bi, bj, 5)
	if len(lens) == 0 {
		t.Fatal("no disjoint paths found")
	}
	for k := 1; k < len(lens); k++ {
		if lens[k] < lens[k-1]-1e-9 {
			t.Fatalf("disjoint path lengths not monotone: %v", lens)
		}
	}
	if lens[0] != best {
		t.Errorf("first disjoint path (%.0f) != shortest link (%.0f)", lens[0], best)
	}
}

func TestNoMWPathIsInf(t *testing.T) {
	// Two cities with zero towers anywhere: no MW connectivity.
	cs := cities.USCenters()[:2]
	reg := towers.NewRegistry(nil)
	ev := los.NewEvaluator(terrain.Flat(), los.DefaultParams())
	l := Build(cs, reg, ev, Config{})
	if !math.IsInf(float64(l.MWDist(0, 1)), 1) {
		t.Fatal("expected +Inf MW distance with no towers")
	}
	if l.TowerCount(0, 1) != 0 {
		t.Fatal("expected zero towers on nonexistent path")
	}
	if l.Path(0, 1) != nil {
		t.Fatal("expected nil path")
	}
}
