// gamingdemo runs the §7.1 thin-client gaming study (Fig 12): a speculative
// Pacman server streams frames for all four possible moves over conventional
// connectivity while a parallel low-latency path (1/3 the RTT, as a cISP
// would provide) carries inputs and the tiny "which future happened"
// selection messages. Frame time then tracks the fast path.
package main

import (
	"fmt"

	"cisp/internal/gaming"
)

func main() {
	cfg := gaming.Config{Seed: 1}
	rtts := []float64{0, 50, 100, 150, 200, 250, 300}
	conv, aug := gaming.FrameTimeCurve(rtts, 1.0/3, cfg)

	fmt.Println("frame time vs conventional connectivity RTT (Fig 12)")
	fmt.Printf("%14s %18s %22s\n", "conv RTT (ms)", "conventional (ms)", "with cISP speculation")
	for i, rtt := range rtts {
		bar := ""
		for j := 0.0; j < conv[i]-aug[i]; j += 20 {
			bar += "+"
		}
		fmt.Printf("%14.0f %18.0f %22.0f  %s\n", rtt, conv[i], aug[i], bar)
	}

	r := gaming.SimulateAugmented(300, 100, cfg)
	fmt.Printf("\nspeculation streams %vx the frame bandwidth over fiber (paper: 2-4.5x is containable)\n",
		r.BandwidthFactor)
}
