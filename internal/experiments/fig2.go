package experiments

import (
	"fmt"
	"time"

	"cisp/internal/design"
	"cisp/internal/ilp"
)

// Fig2Row is one size point of the design-method scaling study.
type Fig2Row struct {
	Cities      int
	CISPSeconds float64 // the paper's heuristic (greedy pruning + candidate ILP)
	CISPStretch float64
	ILPSeconds  float64 // exact optimization (subset branch & bound ≡ Eq. 1)
	ILPStretch  float64
	ILPRan      bool    // large instances skip the exact solver, as in Fig 2a
	FlowSeconds float64 // literal Eq. 1 flow ILP via the in-repo simplex
	FlowRan     bool
}

// Fig2Result is the full scaling table.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2Scaling reproduces Fig 2: design runtime (a) and achieved stretch (b)
// for the cISP heuristic versus the exact ILP across city-set sizes, with
// budget proportional to the number of cities (the paper uses 50 towers per
// city: 6,000 at 120 cities). The exact solver runs only up to ilpMax
// cities and the literal Eq. 1 flow ILP up to flowMax — beyond that the
// blow-up the figure documents makes them impractical, which is the point.
func Fig2Scaling(opt Options, sizes []int, ilpMax, flowMax int) *Fig2Result {
	w := opt.out()
	s := opt.scenario()
	full, err := s.Problem(s.PopulationTraffic(), 0)
	if err != nil {
		fprintf(w, "fig2: %v\n", err)
		return &Fig2Result{}
	}
	res := &Fig2Result{}

	fprintf(w, "Fig 2 — design method scaling (budget = 50 towers/city)\n")
	fprintf(w, "%8s %14s %14s %14s %14s %14s\n",
		"cities", "cISP time(s)", "cISP stretch", "ILP time(s)", "ILP stretch", "flowILP(s)")

	for _, n := range sizes {
		if n > full.N {
			break
		}
		prob := shrinkProblem(full, n)
		prob.Budget = 50 * float64(n)
		row := Fig2Row{Cities: n}

		// Solver wall-clock runtime is the quantity Fig. 2 reports (design
		// time vs. problem size); it never seeds or steers a simulation.
		start := time.Now() //lint:allow determinism -- measured quantity of the figure, not simulation input
		cispTop := design.GreedyILP(prob, 50_000)
		row.CISPSeconds = time.Since(start).Seconds() //lint:allow determinism -- measured quantity of the figure, not simulation input
		row.CISPStretch = cispTop.MeanStretch()

		if n <= ilpMax {
			start = time.Now() //lint:allow determinism -- measured quantity of the figure, not simulation input
			exact := design.Exact(prob, design.ExactOptions{MaxNodes: 1_000_000})
			row.ILPSeconds = time.Since(start).Seconds() //lint:allow determinism -- measured quantity of the figure, not simulation input
			row.ILPStretch = exact.MeanStretch()
			row.ILPRan = true
		}
		if n <= flowMax {
			start = time.Now() //lint:allow determinism -- measured quantity of the figure, not simulation input
			if _, _, err := design.FlowILP(prob, design.FlowILPOptions{
				Prune: true,
				ILP:   ilp.Options{MaxNodes: 20_000, Timeout: 2 * time.Minute},
			}); err == nil {
				row.FlowSeconds = time.Since(start).Seconds() //lint:allow determinism -- measured quantity of the figure, not simulation input
				row.FlowRan = true
			}
		}
		res.Rows = append(res.Rows, row)

		ilpT, ilpS, flowT := "-", "-", "-"
		if row.ILPRan {
			ilpT = fmt.Sprintf("%.3f", row.ILPSeconds)
			ilpS = fmt.Sprintf("%.4f", row.ILPStretch)
		}
		if row.FlowRan {
			flowT = fmt.Sprintf("%.3f", row.FlowSeconds)
		}
		fprintf(w, "%8d %14.3f %14.4f %14s %14s %14s\n",
			n, row.CISPSeconds, row.CISPStretch, ilpT, ilpS, flowT)
	}
	return res
}

// shrinkProblem truncates a problem to its first n sites.
func shrinkProblem(p *design.Problem, n int) *design.Problem {
	q := &design.Problem{N: n, Budget: p.Budget}
	cut := func(m [][]float64) [][]float64 {
		out := make([][]float64, n)
		for i := 0; i < n; i++ {
			out[i] = m[i][:n:n]
		}
		return out
	}
	q.Traffic = cut(p.Traffic)
	q.Geodesic = cut(p.Geodesic)
	q.MW = cut(p.MW)
	q.MWCost = cut(p.MWCost)
	q.FiberLat = cut(p.FiberLat)
	return q
}
