package weather

import (
	"math"
	"math/rand"
	"sort"

	"cisp/internal/design"
	"cisp/internal/geo"
	"cisp/internal/linkbuild"
)

// YearAnalysis is the Fig 7 result: per-city-pair stretch statistics across
// a year of sampled weather intervals, plus the fiber-only baseline.
type YearAnalysis struct {
	// Per-pair stretch values (unsorted, one per city pair with traffic).
	Best  []float64 // fair-weather (minimum across the year)
	P99   []float64 // 99th percentile across the year
	Worst []float64 // maximum across the year
	Fiber []float64 // fiber-only stretch

	// FailedLinksPerDay records how many built links were down each day.
	FailedLinksPerDay []int
}

// Config for the year-long analysis.
type Config struct {
	FreqGHz      float64 // default 11
	FadeMarginDB float64 // default DefaultFadeMargin
	Days         int     // default 365
	Seed         int64   // interval-picking seed
}

func (c *Config) setDefaults() {
	if c.FreqGHz == 0 {
		c.FreqGHz = geo.DefaultFrequencyGHz
	}
	if c.FadeMarginDB == 0 {
		c.FadeMarginDB = DefaultFadeMargin
	}
	if c.Days == 0 {
		c.Days = 365
	}
}

// AnalyzeYear reproduces §6.1: for each day a uniformly random 30-minute
// interval is drawn, failed microwave links are identified (a link fails if
// any of its tower-tower hops exceeds the fade margin), traffic is rerouted
// over the surviving hybrid network, and per-pair stretch is recorded.
func AnalyzeYear(top *design.Topology, links *linkbuild.Links, gen *Generator, cfg Config) *YearAnalysis {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := top.P
	n := p.N

	// Hop geometry per built link.
	type hopGeo struct{ a, b geo.Point }
	linkHops := make([][]hopGeo, len(top.Built))
	for li, l := range top.Built {
		for _, h := range links.Hops(l.I, l.J) {
			linkHops[li] = append(linkHops[li], hopGeo{
				a: links.Reg.Tower(h[0]).Loc,
				b: links.Reg.Tower(h[1]).Loc,
			})
		}
	}

	// Track per-pair stretch samples across days.
	type pairStat struct {
		samples []float64
	}
	stats := make([][]pairStat, n)
	for i := range stats {
		stats[i] = make([]pairStat, n)
	}

	an := &YearAnalysis{}
	for day := 0; day < cfg.Days; day++ {
		interval := rng.Intn(48)
		field := gen.FieldAt(day, interval)

		// Identify failed links.
		failed := make([]bool, len(top.Built))
		nFailed := 0
		for li := range top.Built {
			for _, h := range linkHops[li] {
				if field.HopFails(h.a, h.b, cfg.FreqGHz, cfg.FadeMarginDB) {
					failed[li] = true
					nFailed++
					break
				}
			}
		}
		an.FailedLinksPerDay = append(an.FailedLinksPerDay, nFailed)

		// Rebuild the hybrid APSP with surviving links only.
		surv := design.NewTopology(p)
		for li, l := range top.Built {
			if !failed[li] {
				surv.AddLink(l.I, l.J)
			}
		}
		for s := 0; s < n; s++ {
			for t := s + 1; t < n; t++ {
				if p.Traffic[s][t] <= 0 {
					continue
				}
				st := surv.Dist(s, t) / p.Geodesic[s][t]
				stats[s][t].samples = append(stats[s][t].samples, st)
			}
		}
	}

	fiberOnly := design.NewTopology(p)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if p.Traffic[s][t] <= 0 {
				continue
			}
			samples := stats[s][t].samples
			if len(samples) == 0 {
				continue
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			an.Best = append(an.Best, sorted[0])
			an.Worst = append(an.Worst, sorted[len(sorted)-1])
			an.P99 = append(an.P99, quantile(sorted, 0.99))
			an.Fiber = append(an.Fiber, fiberOnly.Dist(s, t)/p.Geodesic[s][t])
		}
	}
	return an
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	f := idx - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// Median of an unsorted slice (convenience for reporting).
func Median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return quantile(s, 0.5)
}
