// Package media models the alternative line-of-sight physical layers the
// paper's framework is designed to absorb (§3.4: "the above outlined
// approach applies broadly across other line-of-sight media, such as
// free-space optics and millimeter wave networking"), and quantifies the
// §4 observation that "at sufficiently high bandwidth ... shorter-range,
// but higher-bandwidth technologies like MMW or free-space optics [become]
// more cost-effective" than parallel microwave series.
//
// Each Medium carries the range/bandwidth/cost parameters that matter to
// the provisioning arithmetic; ProvisionLink compares, for one long-haul
// link, the towers and radios each medium needs at a target bandwidth.
package media

import (
	"math"
	"sort"
)

// Medium is one line-of-sight technology.
type Medium struct {
	Name string

	// MaxHop is the practicable tower-to-tower range, meters.
	MaxHop float64

	// GbpsPerLink is the bandwidth of one radio/terminal pair on a hop.
	GbpsPerLink float64

	// InstallPerHop is the equipment+install cost of one hop's link, $.
	InstallPerHop float64

	// K2 reports whether the k² cross-connection trick applies (microwave's
	// frequency-channel angular-reuse; pencil-beam media gain nothing from
	// it but also do not interfere, so parallel systems scale linearly and
	// can share towers).
	K2 bool

	// SystemsPerTower is how many parallel systems one tower can host
	// (pencil-beam media pack more terminals per structure).
	SystemsPerTower int
}

// Paper-parameterised media. Microwave follows §2; millimeter wave and FSO
// use the shorter-range / higher-rate / similar-cost profile the paper
// sketches.
func Microwave() Medium {
	return Medium{Name: "microwave", MaxHop: 100e3, GbpsPerLink: 1, InstallPerHop: 150_000, K2: true, SystemsPerTower: 1}
}

// MillimeterWave returns the MMW profile: ~3× shorter hops, ~10× the rate.
func MillimeterWave() Medium {
	return Medium{Name: "mmw", MaxHop: 35e3, GbpsPerLink: 10, InstallPerHop: 130_000, K2: false, SystemsPerTower: 4}
}

// FreeSpaceOptics returns the FSO profile: short hops, very high rate.
func FreeSpaceOptics() Medium {
	return Medium{Name: "fso", MaxHop: 25e3, GbpsPerLink: 40, InstallPerHop: 170_000, K2: false, SystemsPerTower: 4}
}

// LinkPlan is the provisioning bill for one long-haul link on one medium.
type LinkPlan struct {
	Medium   Medium
	Hops     int // hops per series (ceil(length / MaxHop))
	Series   int // parallel systems needed for the bandwidth
	Towers   int // tower sites required (series beyond SystemsPerTower need new rows)
	Installs int // radio/terminal pairs
	Capex    float64
}

// ProvisionLink sizes one link of the given length (meters) for the target
// bandwidth (Gbps) on the medium, using the paper's rules: microwave gains
// k² capacity from k parallel tower series; pencil-beam media scale
// linearly but pack several systems per tower.
func ProvisionLink(m Medium, lengthM, targetGbps float64, newTowerCost float64) LinkPlan {
	hops := int(math.Ceil(lengthM / m.MaxHop))
	if hops < 1 {
		hops = 1
	}
	units := targetGbps / m.GbpsPerLink
	var series int
	if m.K2 {
		series = int(math.Ceil(math.Sqrt(math.Max(units, 1))))
	} else {
		series = int(math.Ceil(math.Max(units, 1)))
	}
	towerRows := int(math.Ceil(float64(series) / float64(max(m.SystemsPerTower, 1))))
	towers := towerRows * (hops + 1)
	installs := series * hops
	return LinkPlan{
		Medium: m, Hops: hops, Series: series, Towers: towers, Installs: installs,
		Capex: float64(installs)*m.InstallPerHop + float64(towers)*newTowerCost,
	}
}

// Cheapest returns the media ranked by capex for the link (cheapest first).
func Cheapest(lengthM, targetGbps, newTowerCost float64, media ...Medium) []LinkPlan {
	if len(media) == 0 {
		media = []Medium{Microwave(), MillimeterWave(), FreeSpaceOptics()}
	}
	plans := make([]LinkPlan, len(media))
	for i, m := range media {
		plans[i] = ProvisionLink(m, lengthM, targetGbps, newTowerCost)
	}
	sort.Slice(plans, func(a, b int) bool { return plans[a].Capex < plans[b].Capex })
	return plans
}

// CrossoverGbps finds (by doubling search) the bandwidth at which medium b
// becomes cheaper than medium a for a link of the given length, or +Inf if
// it never does below the cap.
func CrossoverGbps(a, b Medium, lengthM, newTowerCost, capGbps float64) float64 {
	for g := 1.0; g <= capGbps; g *= 2 {
		pa := ProvisionLink(a, lengthM, g, newTowerCost)
		pb := ProvisionLink(b, lengthM, g, newTowerCost)
		if pb.Capex < pa.Capex {
			// Binary-search the interval [g/2, g] for a tighter estimate.
			lo, hi := g/2, g
			for i := 0; i < 20; i++ {
				mid := (lo + hi) / 2
				if ProvisionLink(b, lengthM, mid, newTowerCost).Capex <
					ProvisionLink(a, lengthM, mid, newTowerCost).Capex {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi
		}
	}
	return math.Inf(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
