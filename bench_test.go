// Benchmarks regenerating every table and figure of the paper at reduced
// scale (one benchmark per experiment; run `cmd/cispbench -scale full` for
// the paper-scale tables), plus the ablation benchmarks called out in
// DESIGN.md §4.
package cisp_test

import (
	"fmt"
	"testing"

	"cisp"
	"cisp/internal/capacity"
	"cisp/internal/design"
	"cisp/internal/experiments"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/parallel"
	"cisp/internal/traffic"
	"cisp/internal/units"
	"cisp/internal/weather"
)

func benchOpts(seed int64) experiments.Options {
	return experiments.Options{Scale: cisp.ScaleSmall, Seed: seed, MaxCities: 12}
}

func BenchmarkFig2aDesignRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2Scaling(benchOpts(1), []int{4, 6, 8}, 8, 0)
	}
}

func BenchmarkFig2bHeuristicVsILP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2Scaling(benchOpts(1), []int{6}, 6, 0)
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(res.Rows[0].CISPStretch-res.Rows[0].ILPStretch, "stretch-gap")
	}
}

func BenchmarkFig3USNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3USNetwork(benchOpts(2))
		if res == nil {
			b.Fatal("fig3 failed")
		}
		b.ReportMetric(res.MeanStretch, "stretch")
		b.ReportMetric(res.CostPerGB, "$/GB")
	}
}

func BenchmarkFig4aStretchVsBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4aStretchVsBudget(benchOpts(3), []float64{100, 400})
	}
}

func BenchmarkFig4bDisjointPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4bDisjointPaths(benchOpts(4), 10)
	}
}

func BenchmarkFig4cCostCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4cCostPerGB(benchOpts(5), []float64{10, 50})
	}
}

func BenchmarkFig5PerturbationSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5Perturbation(benchOpts(6), []float64{0.3}, []float64{70})
	}
}

func BenchmarkFig6SpeedMismatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6SpeedMismatch(benchOpts(7), 3, 1)
	}
}

func BenchmarkFig7WeatherYear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7Weather(benchOpts(8), 40)
		if res == nil {
			b.Fatal("fig7 failed")
		}
		b.ReportMetric(res.MedianP99, "p99-stretch")
	}
}

func BenchmarkFig8Europe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8Europe(benchOpts(9))
		if res == nil {
			b.Fatal("fig8 failed")
		}
		b.ReportMetric(res.MeanStretch, "stretch")
	}
}

func BenchmarkFig9TrafficModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9TrafficModels(benchOpts(10), []float64{20})
	}
}

func BenchmarkFig10TowerConstraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10TowerConstraints(benchOpts(11), [][2]float64{{60, 0.45}})
	}
}

func BenchmarkFig11MixDeviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11MixDeviation(benchOpts(12), []float64{70})
	}
}

func BenchmarkFig12Gaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12Gaming(benchOpts(13), []float64{0, 100, 200, 300})
	}
}

func BenchmarkFig13WebBrowsing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13WebBrowsing(benchOpts(14), 40)
		if res == nil {
			b.Fatal("fig13 failed")
		}
		b.ReportMetric(res.PLTCutPct, "plt-cut-%")
	}
}

func BenchmarkCostBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CostBenefit(benchOpts(15), 0.81)
	}
}

// BenchmarkGreedyPoolWidth measures the Step-2 greedy design at 80 cities
// — past every fan-out grain, so candidate seeding, refreshAll, the
// snapshot APSP update and the fiber closure all hit the pool — under a
// one-worker pool versus the GOMAXPROCS default. Compare the two series
// with benchstat; on multi-core the wide pool should win while producing
// the bit-identical design (asserted via the stretch metric).
func BenchmarkGreedyPoolWidth(b *testing.B) {
	s := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US, Scale: cisp.ScaleSmall, Seed: 30, MaxCities: 80,
	})
	p, err := s.Problem(s.PopulationTraffic(), 25*80)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 0} {
		name := "gomaxprocs"
		if w == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			var stretch float64
			for i := 0; i < b.N; i++ {
				stretch = design.Greedy(p, design.GreedyOptions{}).MeanStretch()
			}
			b.ReportMetric(stretch, "stretch")
		})
	}
}

// BenchmarkWeatherYearPoolWidth measures the weather-analysis hot path —
// per-day field evaluation, graded link conditions and incremental APSP
// removal fanned out over the pool — under a one-worker pool versus the
// GOMAXPROCS default. The p99 metric must agree between the two series:
// AnalyzeYear is bit-identical at every worker count.
func BenchmarkWeatherYearPoolWidth(b *testing.B) {
	s := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US, Scale: cisp.ScaleSmall, Seed: 31, MaxCities: 15,
	})
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		b.Fatal(err)
	}
	sites := make([]geo.Point, len(s.Cities))
	for i, c := range s.Cities {
		sites[i] = c.Loc
	}
	gen := weather.NewRegionGenerator(9, sites)
	for _, w := range []int{1, 0} {
		name := "gomaxprocs"
		if w == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			var p99 float64
			for i := 0; i < b.N; i++ {
				an := weather.AnalyzeYear(top, s.Links, gen, weather.Config{Days: 120, Seed: 2})
				p99 = weather.Median(an.P99)
			}
			b.ReportMetric(p99, "p99-stretch")
		})
	}
}

// BenchmarkRunAllFigures measures the concurrent experiment runner on a
// bundle of independent figure reproductions, sequential vs pooled.
func BenchmarkRunAllFigures(b *testing.B) {
	specs := []experiments.Spec{
		{Name: "4c", Run: func(o experiments.Options) { experiments.Fig4cCostPerGB(o, []float64{10, 50}) }},
		{Name: "12", Run: func(o experiments.Options) { experiments.Fig12Gaming(o, []float64{0, 150}) }},
		{Name: "econ", Run: func(o experiments.Options) { experiments.CostBenefit(o, 0.81) }},
	}
	for _, par := range []int{1, 0} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := benchOpts(16)
				opt.Parallelism = par
				experiments.RunAll(opt, specs)
			}
		})
	}
}

// --- Packet vs fluid engine (DESIGN.md §6) ---

// scaleBench caches a designed ~100-node backbone (94 cities + 6 DC sites,
// greedy design, provisioned capacities, fiber substrate) for the engine
// benchmarks: the design is expensive, the replay is what's measured. The
// construction is experiments.DesignedMixTopology — exactly what the
// Fig6Scale experiment replays over.
var scaleBench struct {
	opt      experiments.Options
	nodes    int
	links    []netsim.TopoLink
	designTM traffic.Matrix
}

func scaleBenchSetup(b *testing.B) {
	b.Helper()
	if scaleBench.links != nil {
		return
	}
	scaleBench.opt = experiments.Options{Scale: cisp.ScaleSmall, Seed: 40, MaxCities: 94}
	links, nodes, tm, err := experiments.DesignedMixTopology(scaleBench.opt)
	if err != nil {
		b.Fatal(err)
	}
	scaleBench.nodes = nodes
	scaleBench.links = links
	scaleBench.designTM = tm
}

func scaleScenario(totalFlows int, horizon float64) *netsim.Scenario {
	return &netsim.Scenario{
		Nodes: scaleBench.nodes, Links: scaleBench.links,
		Comms:  experiments.MixCommodities(scaleBench.opt, scaleBench.designTM, totalFlows),
		Scheme: netsim.ShortestPath, FlowBytes: 250 << 10, Horizon: horizon,
	}
}

// BenchmarkPacketMode measures the refactored discrete-event engine on the
// designed backbone at its practical flow scale.
func BenchmarkPacketMode(b *testing.B) {
	scaleBenchSetup(b)
	sc := scaleScenario(800, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.Run(netsim.PacketMode)
		if res.Completed == 0 {
			b.Fatal("packet mode completed nothing")
		}
		b.ReportMetric(float64(res.Completed), "flows-done")
	}
}

// BenchmarkFluidMode measures the flow-level engine replaying the same
// traffic mix with 10⁵-10⁶ concurrent flows over the same designed
// topology — the scale the packet engine cannot reach.
func BenchmarkFluidMode(b *testing.B) {
	scaleBenchSetup(b)
	for _, flows := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			sc := scaleScenario(flows, 300)
			for i := 0; i < b.N; i++ {
				res := sc.Run(netsim.FluidMode)
				if res.Completed == 0 {
					b.Fatal("fluid mode completed nothing")
				}
				b.ReportMetric(float64(res.Completed), "flows-done")
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// benchScenario caches a scenario + problem for the ablation benchmarks.
var ablation struct {
	s  *cisp.Scenario
	p  *cisp.Problem
	tm cisp.TrafficMatrix
}

func ablationSetup(b *testing.B) {
	b.Helper()
	if ablation.s == nil {
		ablation.s = cisp.NewScenario(cisp.ScenarioConfig{
			Region: cisp.US, Scale: cisp.ScaleSmall, Seed: 20, MaxCities: 10,
		})
		ablation.tm = ablation.s.PopulationTraffic()
		p, err := ablation.s.Problem(ablation.tm, 250)
		if err != nil {
			b.Fatal(err)
		}
		ablation.p = p
	}
}

// BenchmarkAblationCandidatePruning compares the paper's method (greedy
// candidate pruning, then exact selection over candidates only) against
// exact selection over every useful link.
func BenchmarkAblationCandidatePruning(b *testing.B) {
	ablationSetup(b)
	b.Run("greedy-candidates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			design.GreedyILP(ablation.p, 100_000)
		}
	})
	b.Run("all-links-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			design.Exact(ablation.p, design.ExactOptions{MaxNodes: 500_000})
		}
	})
}

// BenchmarkAblationFlowPruning measures the paper's structural variable
// elimination in the Eq. 1 flow ILP.
func BenchmarkAblationFlowPruning(b *testing.B) {
	ablationSetup(b)
	small := shrink(ablation.p, 5)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := design.FlowILP(small, design.FlowILPOptions{Prune: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := design.FlowILP(small, design.FlowILPOptions{Prune: false}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationK2 measures the k² parallel-series trick's tower savings
// against linear provisioning.
func BenchmarkAblationK2(b *testing.B) {
	ablationSetup(b)
	top := design.Greedy(ablation.p, design.GreedyOptions{})
	demand := traffic.ScaleToAggregate(ablation.tm, units.Gbps(50))
	b.Run("k2", func(b *testing.B) {
		var last *capacity.Plan
		for i := 0; i < b.N; i++ {
			last = capacity.Provision(top, ablation.s.Links, demand, capacity.Options{})
		}
		b.ReportMetric(float64(last.HopInstalls), "installs")
	})
	b.Run("linear", func(b *testing.B) {
		var last *capacity.Plan
		for i := 0; i < b.N; i++ {
			last = capacity.Provision(top, ablation.s.Links, demand, capacity.Options{NoK2: true})
		}
		b.ReportMetric(float64(last.HopInstalls), "installs")
	})
}

func shrink(p *cisp.Problem, n int) *cisp.Problem {
	q := &cisp.Problem{N: n, Budget: p.Budget}
	cut := func(m [][]float64) [][]float64 {
		out := make([][]float64, n)
		for i := 0; i < n; i++ {
			out[i] = m[i][:n:n]
		}
		return out
	}
	q.Traffic = cut(p.Traffic)
	q.Geodesic = cut(p.Geodesic)
	q.MW = cut(p.MW)
	q.MWCost = cut(p.MWCost)
	q.FiberLat = cut(p.FiberLat)
	return q
}
