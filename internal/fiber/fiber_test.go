package fiber

import (
	"math"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
)

func TestConnected(t *testing.T) {
	cs := cities.USCenters()
	nw := Synthesize(Config{Seed: 1}, cs)
	for i := range cs {
		if math.IsInf(float64(nw.RouteLen(0, i)), 1) {
			t.Fatalf("city %d (%s) unreachable over fiber", i, cs[i].Name)
		}
	}
}

func TestRouteLongerThanGeodesic(t *testing.T) {
	cs := cities.USCenters()
	nw := Synthesize(Config{Seed: 1}, cs)
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			geod := cs[i].Loc.DistanceTo(cs[j].Loc)
			if nw.RouteLen(i, j) < geod*0.999 {
				t.Fatalf("fiber route %s-%s shorter than geodesic", cs[i].Name, cs[j].Name)
			}
		}
	}
}

func TestCalibration(t *testing.T) {
	// The paper's fiber baseline: latency-optimal fiber paths are ~1.93×
	// c-latency. Require our synthetic conduits to land near that.
	nw := Synthesize(Config{Seed: 1}, cities.USCenters())
	s := nw.MeanStretch()
	if s < 1.7 || s > 2.2 {
		t.Fatalf("mean fiber stretch = %.3f, want ≈1.9 (paper: 1.93)", s)
	}
	t.Logf("mean fiber latency stretch: %.3f", s)
}

func TestLatencyDistApplies1_5(t *testing.T) {
	nw := Synthesize(Config{Seed: 3}, cities.USCenters()[:10])
	if got, want := nw.LatencyDist(0, 1), nw.RouteLen(0, 1)*geo.FiberLatencyFactor; got != want {
		t.Fatalf("LatencyDist = %v, want %v", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	cs := cities.USCenters()[:30]
	a := Synthesize(Config{Seed: 9}, cs)
	b := Synthesize(Config{Seed: 9}, cs)
	for i := range cs {
		for j := range cs {
			if a.RouteLen(i, j) != b.RouteLen(i, j) {
				t.Fatalf("route %d-%d differs across identical seeds", i, j)
			}
		}
	}
}

func TestSymmetry(t *testing.T) {
	cs := cities.USCenters()[:40]
	nw := Synthesize(Config{Seed: 2}, cs)
	for i := range cs {
		for j := range cs {
			if nw.RouteLen(i, j) != nw.RouteLen(j, i) {
				t.Fatalf("asymmetric route length %d-%d", i, j)
			}
		}
	}
}

func TestTriangle(t *testing.T) {
	cs := cities.USCenters()[:40]
	nw := Synthesize(Config{Seed: 2}, cs)
	for i := 0; i < len(cs); i++ {
		for j := 0; j < len(cs); j++ {
			for k := 0; k < 10; k++ {
				if nw.RouteLen(i, j) > nw.RouteLen(i, k)+nw.RouteLen(k, j)+1e-6 {
					t.Fatalf("shortest-path triangle violation %d-%d via %d", i, j, k)
				}
			}
		}
	}
}

func TestEuropeNetwork(t *testing.T) {
	cs := cities.EuropeCenters()
	nw := Synthesize(Config{Seed: 4}, cs)
	s := nw.MeanStretch()
	// §6.2: "we assume that fiber distances between cities are inflated over
	// geodesic distance in the same way as in the US (~1.9×)".
	if s < 1.6 || s > 2.3 {
		t.Fatalf("Europe mean fiber stretch = %.3f, want ≈1.9", s)
	}
}

func BenchmarkSynthesizeUS(b *testing.B) {
	cs := cities.USCenters()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Synthesize(Config{Seed: int64(i)}, cs)
	}
}
