// Package netsim is a two-mode network simulation engine — the in-repo
// substitute for ns-3 in the paper's routing and queuing study (§5) and
// traffic-mix study (§6.4); see DESIGN.md §6.
//
// Packet mode is a discrete-event packet-level simulator: store-and-forward
// routers with FIFO queues, fixed-rate links with propagation delay, UDP
// constant-rate and Poisson sources, a simplified TCP Reno with fast
// recovery and optional pacing (for the Fig 6 speed-mismatch experiment),
// per-flow delay/loss accounting (FlowMonitor-equivalent), and per-link
// utilization monitoring.
//
// Fluid mode (FluidSim) is a flow-level simulator that advances each flow
// at the max-min fair share of its path with event-driven rate
// recomputation on arrival/departure, scaling the same scenarios to
// 10⁵–10⁶ concurrent flows.
//
// Both modes run from a shared declarative Scenario and route identically
// (ComputeRoutes) under the three §5 schemes: latency-shortest paths,
// minimise-maximum-link-utilization, and throughput-optimal (widest-path)
// routing. Bulk runs fan out over internal/parallel via RunMany.
package netsim

import "cisp/internal/xheap"

// Simulator is a discrete-event scheduler. The zero value is ready to use.
type Simulator struct {
	now        float64 // seconds
	seq        int64
	processed  int64
	maxPending int
	events     []event
}

type event struct {
	at  float64
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

// eventLess orders events by time, FIFO within a timestamp. Top-level so
// the xheap call sites pass a static (non-capturing, non-allocating) func.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// are clamped to zero (run "now", after pending same-time events).
//
//cisp:hotpath
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	xheap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn}, eventLess)
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
}

// Run processes events until the queue drains or simulated time reaches
// until (inclusive of events scheduled exactly at until).
//
//cisp:hotpath
func (s *Simulator) Run(until float64) {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		xheap.Pop(&s.events, eventLess)
		if e.at > s.now {
			s.now = e.at
		}
		s.processed++
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (useful in tests).
func (s *Simulator) Pending() int { return len(s.events) }

// Processed returns the number of events executed so far; the benchmark
// harness divides wall time by it to report ns/event.
func (s *Simulator) Processed() int64 { return s.processed }

// MaxPending returns the event heap's high-water mark — the observability
// layer's heap-depth figure.
func (s *Simulator) MaxPending() int { return s.maxPending }
