package experiments

import "testing"

func TestExtensions(t *testing.T) {
	res := Extensions(testOpts(30))
	if res.MMWCrossoverGbps <= 1 {
		t.Errorf("MMW crossover at %.1f Gbps — microwave should win the low-bandwidth regime", res.MMWCrossoverGbps)
	}
	if res.AcqFeasibleRate > 0 && res.AcqAfterConfirm < res.AcqFeasibleRate-0.1 {
		t.Errorf("confirming priority towers reduced buildability: %.2f -> %.2f",
			res.AcqFeasibleRate, res.AcqAfterConfirm)
	}
}
