// Command cispweather runs the §6.1 year-long weather impairment study
// (Fig 7) on the graded dynamic-network engine: daily random 30-minute
// precipitation intervals degrade microwave links through the ITU-R P.838
// adaptive-modulation ladder (and fail them past the fade margin); traffic
// reroutes over surviving links and fiber via incremental APSP removal,
// with the days fanned out across the worker pool.
//
// Usage:
//
//	cispweather [-scale small|medium|full] [-seed N] [-days 365]
//	            [-trials N] [-workers N] [-graded]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cisp"
	"cisp/internal/experiments"
	"cisp/internal/parallel"
)

func main() {
	scale := flag.String("scale", "small", "small, medium or full")
	seed := flag.Int64("seed", 1, "seed")
	days := flag.Int("days", 365, "days to sample (one 30-minute interval each)")
	trials := flag.Int("trials", 1, "Monte-Carlo trials with distinct weather seeds")
	workers := flag.Int("workers", 0, "worker-pool width for the per-day fan-out (0 = GOMAXPROCS)")
	graded := flag.Bool("graded", false, "replay the stormiest interval in the packet simulator (TCP FCT, three routing schemes)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	opt := experiments.Options{Seed: *seed, Out: os.Stdout}
	switch strings.ToLower(*scale) {
	case "medium":
		opt.Scale = cisp.ScaleMedium
	case "full":
		opt.Scale = cisp.ScaleFull
	default:
		opt.Scale = cisp.ScaleSmall
	}
	res := experiments.Fig7WeatherExt(opt, experiments.Fig7Config{
		Days: *days, Trials: *trials, Graded: *graded,
	})
	if res == nil {
		os.Exit(1)
	}
	// Failure histogram summary.
	max, sum := 0, 0
	for _, f := range res.Analysis.FailedLinksPerDay {
		sum += f
		if f > max {
			max = f
		}
	}
	fmt.Printf("link failures: %.2f per sampled interval on average, %d worst-day\n",
		float64(sum)/float64(len(res.Analysis.FailedLinksPerDay)), max)
	fmt.Printf("graded capacity: fleet mean %.1f%%, %.2f degraded (non-failed) links per interval\n",
		res.MeanCapacityFrac*100, res.MeanDegradedLinks)
}
