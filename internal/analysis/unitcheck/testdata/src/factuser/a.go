// Package factuser misuses factlib's float64-shaped API in ways only the
// propagated dimension facts can catch: the declared types are all plain
// float64, so the compiler sees nothing wrong.
package factuser

import (
	"cisp/internal/analysis/unitcheck/testdata/src/factlib"
	"cisp/internal/units"
)

func consume(a, b units.Meters, s units.Seconds) {
	_ = units.Meters(factlib.SpanM(a, b))
	_ = units.Seconds(factlib.SpanM(a, b)) // want `conversion units\.Seconds\(\.\.\.\) of a length-dimensioned expression`
	_ = factlib.Stretch(factlib.SpanM(a, b))
	_ = factlib.Stretch(factlib.Elapsed(s))      // want `argument 1 to factlib\.Stretch carries time; its dimension signature expects length`
	_ = factlib.SpanM(a, b) + factlib.Elapsed(s) // want `\+ mixes length and time operands`
}
