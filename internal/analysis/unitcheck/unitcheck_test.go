package unitcheck_test

import (
	"sort"
	"testing"

	"cisp/internal/analysis"
	"cisp/internal/analysis/analysistest"
	"cisp/internal/analysis/loader"
	"cisp/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, "testdata", unitcheck.Analyzer,
		"unitchecktest", "lpslack", "aliasimport", "dotimport", "reexport")
}

// TestUnitcheckFacts drives the cross-package path: factuser's
// expectations are only reachable through factlib's propagated dimension
// signatures.
func TestUnitcheckFacts(t *testing.T) {
	analysistest.RunWithFacts(t, "testdata", unitcheck.Analyzer, "factuser")
}

// TestFactsInference pins the exported fact shape for factlib: results
// inferred through erasing conversions, parameters inferred from direct
// unit conversions in the body.
func TestFactsInference(t *testing.T) {
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	p, err := l.LoadDir("testdata/src/factlib", "factlib")
	if err != nil {
		t.Fatalf("loading factlib: %v", err)
	}
	v := unitcheck.Analyzer.Facts(&analysis.Pass{
		Analyzer: unitcheck.Analyzer,
		Fset:     p.Fset,
		Files:    p.Files,
		Pkg:      p.Types,
		Info:     p.Info,
	})
	ff, ok := v.(unitcheck.FuncFacts)
	if !ok {
		t.Fatalf("facts have type %T, want unitcheck.FuncFacts", v)
	}

	length := unitcheck.Dim{Known: true, L: 1}
	time := unitcheck.Dim{Known: true, T: 1}
	cases := []struct {
		key    string
		result unitcheck.Dim
	}{
		{"SpanM", length},
		{"Elapsed", time},
		{"Stretch", length},
	}
	for _, c := range cases {
		fd, ok := ff[c.key]
		if !ok {
			t.Errorf("no fact for %s (have %v)", c.key, keys(ff))
			continue
		}
		if len(fd.Results) != 1 || fd.Results[0] != c.result {
			t.Errorf("%s results = %+v, want single %v", c.key, fd.Results, c.result)
		}
	}
	if fd, ok := ff["Stretch"]; ok {
		if len(fd.Params) != 1 || fd.Params[0] != length {
			t.Errorf("Stretch params = %+v, want single %v", fd.Params, length)
		}
	}
}

// TestUnitsPackageExempt pins the kernel exemption: the units package
// defines the raw scale casts everyone else is barred from, so running
// unitcheck over it must stay silent.
func TestUnitsPackageExempt(t *testing.T) {
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	p, err := l.Load("cisp/internal/units", false)
	if err != nil {
		t.Fatalf("loading units: %v", err)
	}
	findings, err := analysis.RunUnit(p.Fset, p.Files, p.Types, p.Info, []*analysis.Analyzer{unitcheck.Analyzer})
	if err != nil {
		t.Fatalf("running unitcheck: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in units package: %s", f)
	}
}

func keys(ff unitcheck.FuncFacts) []string {
	out := make([]string, 0, len(ff))
	for k := range ff {
		out = append(out, k) //lint:allow maporder -- diagnostic message only; sorted below
	}
	sort.Strings(out)
	return out
}
