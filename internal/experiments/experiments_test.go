package experiments

import (
	"testing"

	"cisp"
)

// testOpts keeps integration tests quick: 12 cities, sparse towers.
func testOpts(seed int64) Options {
	return Options{Scale: cisp.ScaleSmall, Seed: seed, MaxCities: 12}
}

func TestFig2ScalingShape(t *testing.T) {
	res := Fig2Scaling(testOpts(1), []int{4, 5, 6, 7}, 7, 4)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.ILPRan {
			continue
		}
		// Fig 2b: the heuristic matches the ILP's stretch to two decimals.
		if row.CISPStretch-row.ILPStretch > 0.01 {
			t.Errorf("n=%d: cISP stretch %.4f vs ILP %.4f — gap > 0.01",
				row.Cities, row.CISPStretch, row.ILPStretch)
		}
		if row.ILPStretch > row.CISPStretch+1e-9 {
			t.Errorf("n=%d: ILP worse than heuristic?", row.Cities)
		}
	}
	// Fig 2a: the literal flow ILP is dramatically slower than the
	// heuristic wherever it ran.
	for _, row := range res.Rows {
		if row.FlowRan && row.FlowSeconds < row.CISPSeconds {
			t.Logf("n=%d: flow ILP (%0.3fs) beat heuristic (%0.3fs) at toy size — fine",
				row.Cities, row.FlowSeconds, row.CISPSeconds)
		}
	}
}

func TestFig3Network(t *testing.T) {
	res := Fig3USNetwork(testOpts(2))
	if res == nil {
		t.Fatal("fig3 failed")
	}
	if res.MeanStretch >= res.FiberStretch {
		t.Fatalf("design stretch %.3f not better than fiber %.3f", res.MeanStretch, res.FiberStretch)
	}
	if res.MeanStretch < 1 || res.MeanStretch > 1.6 {
		t.Errorf("stretch %.3f outside plausible band", res.MeanStretch)
	}
	total := 0
	for _, c := range res.HopHistogram {
		total += c
	}
	if total == 0 {
		t.Fatal("empty hop histogram")
	}
	// Most hops should need no extra towers, like the paper's 1,660/552/86.
	if res.HopHistogram[0]*2 < total {
		t.Errorf("only %d/%d hops need no augmentation; paper's majority did", res.HopHistogram[0], total)
	}
	if res.CostPerGB <= 0 || res.CostPerGB > 20 {
		t.Errorf("cost $%.2f/GB implausible", res.CostPerGB)
	}
}

func TestFig4aMonotone(t *testing.T) {
	res := Fig4aStretchVsBudget(testOpts(3), []float64{0, 100, 300, 600})
	if len(res.Hops100) < 3 {
		t.Fatal("too few points")
	}
	for i := 1; i < len(res.Hops100); i++ {
		if res.Hops100[i].Stretch > res.Hops100[i-1].Stretch+1e-9 {
			t.Fatalf("100km curve not monotone at %v", res.Hops100[i].Budget)
		}
	}
	// At generous budget, the shorter range can do no better than 100 km.
	last100 := res.Hops100[len(res.Hops100)-1].Stretch
	last70 := res.Hops70[len(res.Hops70)-1].Stretch
	if last70 < last100-0.05 {
		t.Errorf("70km hops (%.3f) substantially beat 100km (%.3f)?", last70, last100)
	}
}

func TestFig4bShape(t *testing.T) {
	res := Fig4bDisjointPaths(testOpts(4), 8)
	if res == nil || len(res.Stretches) == 0 {
		t.Skip("no disjoint paths at this scale")
	}
	for i := 1; i < len(res.Stretches); i++ {
		if res.Stretches[i] < res.Stretches[i-1]-1e-9 {
			t.Fatal("disjoint path stretch not monotone")
		}
	}
	if res.Stretches[0] >= res.FiberStretch {
		t.Errorf("first MW path (%.3f) not better than fiber (%.3f)", res.Stretches[0], res.FiberStretch)
	}
}

func TestFig4cDecreasing(t *testing.T) {
	pts := Fig4cCostPerGB(testOpts(5), []float64{5, 20, 80})
	if len(pts) != 3 {
		t.Fatal("missing points")
	}
	if pts[len(pts)-1].CostPerGB >= pts[0].CostPerGB {
		t.Fatalf("cost/GB should fall with throughput: %v", pts)
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5Perturbation(testOpts(6), []float64{0, 0.3}, []float64{30, 70, 170})
	if len(res) != 2 {
		t.Fatal("missing gamma curves")
	}
	for _, curve := range res {
		if len(curve.Points) != 3 {
			t.Fatal("missing load points")
		}
		low, mid, high := curve.Points[0], curve.Points[1], curve.Points[2]
		// Fig 5's shape: zero loss and flat delay through 70% of design
		// capacity; loss appears once provisioned capacity is exceeded
		// (the k²-quantized headroom pushes that past 100% at this scale).
		if low.LossPct > 1 {
			t.Errorf("γ=%.1f: %.2f%% loss at 30%% load", curve.Gamma, low.LossPct)
		}
		if mid.LossPct > 1 {
			t.Errorf("γ=%.1f: %.2f%% loss at 70%% load (paper: zero)", curve.Gamma, mid.LossPct)
		}
		if high.LossPct < 0.5 {
			t.Errorf("γ=%.1f: no loss at 170%% overload (%.3f%%)", curve.Gamma, high.LossPct)
		}
		if mid.DelayMs > low.DelayMs+1 {
			t.Errorf("γ=%.1f: delay rose %.2f→%.2f ms below design load (paper: <0.1 ms)",
				curve.Gamma, low.DelayMs, mid.DelayMs)
		}
		// Delay should stay in the propagation-dominated regime at low load.
		if low.DelayMs <= 0 || low.DelayMs > 50 {
			t.Errorf("γ=%.1f: implausible delay %.2f ms", curve.Gamma, low.DelayMs)
		}
	}
}

func TestFig6PacingShape(t *testing.T) {
	res := Fig6SpeedMismatch(testOpts(7), 4, 2)
	if len(res) != 3 {
		t.Fatal("missing cases")
	}
	byName := map[string]Fig6Case{}
	for _, c := range res {
		byName[c.Name] = c
	}
	noPace := byName["10G no pacing"]
	pace := byName["10G pacing"]
	if noPace.CompletedFlow == 0 || pace.CompletedFlow == 0 {
		t.Fatal("flows did not complete")
	}
	// Fig 6a: pacing reduces tail queue occupancy under speed mismatch.
	if pace.Queue95th > noPace.Queue95th {
		t.Errorf("pacing did not reduce 95th-pct queue: %v vs %v", pace.Queue95th, noPace.Queue95th)
	}
	// Fig 6b: flow completion times unaffected (within 2×).
	if pace.FCTMedianMs > noPace.FCTMedianMs*2 {
		t.Errorf("pacing hurt median FCT: %.1f vs %.1f ms", pace.FCTMedianMs, noPace.FCTMedianMs)
	}
}

func TestFig7Shape(t *testing.T) {
	res := Fig7Weather(testOpts(8), 60)
	if res == nil {
		t.Fatal("fig7 failed")
	}
	if res.MedianP99 > res.MedianBest*1.4 {
		t.Errorf("99th-percentile stretch %.3f too far above best %.3f", res.MedianP99, res.MedianBest)
	}
	if res.MedianWorst >= res.MedianFiber {
		t.Errorf("worst-case %.3f not better than fiber %.3f", res.MedianWorst, res.MedianFiber)
	}
}

func TestFig8Europe(t *testing.T) {
	res := Fig8Europe(testOpts(9))
	if res == nil {
		t.Fatal("fig8 failed")
	}
	if res.MeanStretch >= res.FiberStretch {
		t.Fatal("Europe design no better than fiber")
	}
	if res.MeanStretch > 1.6 {
		t.Errorf("Europe stretch %.3f implausible", res.MeanStretch)
	}
}

func TestFig9CityCityMostExpensive(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: three full design sweeps")
	}
	rows := Fig9TrafficModels(testOpts(10), []float64{10, 40})
	if len(rows) != 3 {
		t.Fatalf("got %d traffic models", len(rows))
	}
	var cc, dd float64
	for _, r := range rows {
		last := r.Points[len(r.Points)-1].CostPerGB
		switch r.Model {
		case "City-City":
			cc = last
		case "DC-DC":
			dd = last
		}
	}
	// Paper Fig 9: the city-city model is the most expensive.
	if cc < dd {
		t.Errorf("City-City ($%.3f) cheaper than DC-DC ($%.3f)", cc, dd)
	}
}

func TestFig10ConstraintsHurt(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: tower-constraint design sweep")
	}
	rows := Fig10TowerConstraints(testOpts(11), [][2]float64{{80, 1.0}, {60, 0.45}})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	tightest := rows[1]
	if tightest.StretchIncr < -2 {
		t.Errorf("tightest constraints improved stretch by %.1f%%?", -tightest.StretchIncr)
	}
	// The most constrained combo should be no better than the mild one.
	if tightest.StretchIncr < rows[0].StretchIncr-2 {
		t.Errorf("60km/0.45 (%+.1f%%) beat 80km/1.0 (%+.1f%%)", tightest.StretchIncr, rows[0].StretchIncr)
	}
}

func TestFig12Shape(t *testing.T) {
	pts := Fig12Gaming(testOpts(12), []float64{0, 150, 300})
	if len(pts) != 3 {
		t.Fatal("missing points")
	}
	if pts[2].AugFrameMs >= pts[2].ConvFrameMs {
		t.Fatal("augmentation did not help at 300ms RTT")
	}
}

func TestFig13Shape(t *testing.T) {
	res := Fig13WebBrowsing(testOpts(13), 40)
	if res == nil {
		t.Fatal("fig13 failed")
	}
	if res.PLTCutPct < 20 || res.PLTCutPct > 55 {
		t.Errorf("PLT cut %.0f%% outside band around paper's 31%%", res.PLTCutPct)
	}
	if res.SelCutPct <= 0 || res.SelCutPct >= res.PLTCutPct {
		t.Errorf("selective cut %.0f%% not between 0 and full cut %.0f%%", res.SelCutPct, res.PLTCutPct)
	}
	if res.ObjectCutPct <= res.PLTCutPct {
		t.Errorf("object cut %.0f%% should exceed PLT cut %.0f%%", res.ObjectCutPct, res.PLTCutPct)
	}
	if res.UpstreamBytesPct > 20 {
		t.Errorf("upstream bytes %.1f%% too high", res.UpstreamBytesPct)
	}
}

func TestCostBenefit(t *testing.T) {
	res := CostBenefit(testOpts(14), 0.81)
	if !res.AllExceedCost {
		t.Fatal("§8's conclusion (value >> cost) not reproduced")
	}
}

func TestRoutingSchemeComparison(t *testing.T) {
	delays := RoutingSchemeComparison(testOpts(15), 50)
	if len(delays) != 3 {
		t.Fatalf("got %d schemes", len(delays))
	}
	sp := delays["shortest-path"]
	for name, d := range delays {
		if d <= 0 {
			t.Errorf("%s: non-positive delay", name)
		}
		// §5: alternative schemes pay a latency premium (allow noise).
		if name != "shortest-path" && d < sp*0.9 {
			t.Errorf("%s delay %.3f ms beat shortest-path %.3f ms by >10%%", name, d, sp)
		}
	}
}
