// Package analysis is the repository's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) plus the //lint:allow suppression protocol
// shared by every cisplint analyzer. The x/tools module is deliberately not
// vendored — the framework runs entirely on go/ast and go/types, so the
// lint suite builds offline and adds nothing to go.mod.
//
// The five analyzers (internal/analysis/determinism, maporder,
// hotpathalloc, paraclosure, unitcheck) enforce the determinism contract
// documented in DESIGN.md §9 and the dimensional-consistency contract of
// §11: bit-identical results at any worker count, all randomness threaded
// through an explicit Seed, allocation-free per-event hot paths, and no
// silent mixing of physical dimensions. cmd/cisplint wires them into
// `go vet -vettool`.
//
// Beyond single-unit checks, the framework supports cross-package fact
// propagation: an Analyzer with a Facts hook exports a JSON-serializable
// summary of each package (unitcheck exports the dimension signatures of
// exported functions), and passes over dependent packages read those
// summaries back through Pass.FactsOf. The Session driver computes facts
// bottom-up over the module import graph; under `go vet` the same facts
// travel through the unitchecker protocol's .vetx files.
//
// Suppression: a finding is silenced by a directive on the same line or
// the line directly above:
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// The justification is mandatory; a directive without one is itself
// reported and cannot be suppressed.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one unit, reporting through the pass.
	Run func(*Pass) error
	// Facts, when non-nil, computes the analyzer's exported summary of one
	// package (its base unit, test files excluded). The driver marshals the
	// result to JSON and serves it to passes over dependent packages via
	// Pass.FactsOf. Facts must be a pure function of the unit: the Session
	// driver recomputes them per worker and relies on byte-identical JSON.
	Facts func(*Pass) any
}

// A Pass is one analyzer's view of one compilation unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// ImportFacts, when set by the driver, resolves the current analyzer's
	// exported facts for a directly-imported module package. Nil outside a
	// facts-aware driver (plain RunUnit callers).
	ImportFacts func(importPath string) json.RawMessage

	diags []Diagnostic
}

// FactsOf returns the current analyzer's facts for the named import path,
// or nil when the driver provides no facts (or the package exported none).
func (p *Pass) FactsOf(importPath string) json.RawMessage {
	if p.ImportFacts == nil {
		return nil
	}
	return p.ImportFacts(importPath)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Finding is a resolved diagnostic. Suppressed findings (silenced by a
// //lint:allow directive) are carried with Suppressed set so machine
// consumers (cisplint -json) can report them; the plain RunUnit entry
// point filters them out.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// A FactSource resolves one analyzer's exported facts for one import path.
// Drivers that propagate facts (Session, the vet-protocol unit runner)
// supply one; nil means no cross-package facts are available.
type FactSource func(analyzer, importPath string) json.RawMessage

// RunUnit applies every analyzer to one type-checked unit and returns the
// findings that survive //lint:allow suppression, sorted by position.
// Malformed suppression directives (no "-- justification") are reported as
// findings of the pseudo-analyzer "lintallow" and cannot be suppressed.
func RunUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunUnitAll(fset, files, pkg, info, analyzers, nil)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// RunUnitAll is RunUnit without the suppression filter: every finding is
// returned, suppressed ones flagged rather than dropped, so -json output
// can show what //lint:allow is hiding. facts, when non-nil, wires
// cross-package fact propagation into each pass.
func RunUnitAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts FactSource) ([]Finding, error) {
	allows, malformed := collectAllows(fset, files)

	var out []Finding
	for _, m := range malformed {
		out = append(out, Finding{Analyzer: "lintallow", Pos: m.pos, Message: m.msg})
	}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		if facts != nil {
			name := a.Name
			pass.ImportFacts = func(importPath string) json.RawMessage {
				return facts(name, importPath)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			posn := fset.Position(d.Pos)
			out = append(out, Finding{
				Analyzer:   a.Name,
				Pos:        posn,
				Message:    d.Message,
				Suppressed: allows.covers(a.Name, posn),
			})
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by (file, line, column, analyzer) — the
// reporting order every driver uses, which is what makes cisplint output
// byte-identical at any worker count.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// jsonFinding is the machine-readable finding shape emitted by WriteJSON.
// The field set is part of the cisplint -json contract, pinned by a golden
// test: file/line/column locate the finding, analyzer and message describe
// it, and suppressed records whether a //lint:allow directive silenced it.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON encodes findings as an indented JSON array (one object per
// finding, "[]" when empty) followed by a newline. Output depends only on
// the findings, in order, so equal inputs encode byte-identically.
func WriteJSON(w io.Writer, findings []Finding) error {
	arr := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		arr = append(arr, jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	data, err := json.MarshalIndent(arr, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// allowKey addresses one source line of one file.
type allowKey struct {
	file string
	line int
}

// allowSet maps a line to the analyzer names allowed there.
type allowSet map[allowKey]map[string]bool

// covers reports whether a finding by the named analyzer at posn is
// suppressed by a directive on its line or the line above.
func (s allowSet) covers(name string, posn token.Position) bool {
	for _, line := range []int{posn.Line, posn.Line - 1} {
		if names, ok := s[allowKey{posn.Filename, line}]; ok && names[name] {
			return true
		}
	}
	return false
}

type malformedAllow struct {
	pos token.Position
	msg string
}

const allowPrefix = "lint:allow"

// collectAllows scans every comment for //lint:allow directives, returning
// the well-formed ones as a line-indexed set and the malformed ones as
// reportable findings.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []malformedAllow) {
	allows := make(allowSet)
	var bad []malformedAllow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				names, justification, found := strings.Cut(text, "--")
				if !found || strings.TrimSpace(justification) == "" {
					bad = append(bad, malformedAllow{pos: posn,
						msg: "suppression is missing its justification: want //lint:allow <analyzer> -- <why this is safe>"})
					continue
				}
				nameList := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(nameList) == 0 {
					bad = append(bad, malformedAllow{pos: posn,
						msg: "suppression names no analyzer: want //lint:allow <analyzer> -- <why this is safe>"})
					continue
				}
				key := allowKey{posn.Filename, posn.Line}
				if allows[key] == nil {
					allows[key] = make(map[string]bool)
				}
				for _, n := range nameList {
					allows[key][n] = true
				}
			}
		}
	}
	return allows, bad
}

// HotpathMarked reports whether a function declaration's doc comment
// carries the //cisp:hotpath annotation that opts it into the
// hotpathalloc analyzer.
func HotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//cisp:hotpath") {
			return true
		}
	}
	return false
}

// WithStack walks the AST rooted at root, calling fn for every node with
// the path of ancestors (outermost first, not including the node itself).
// If fn returns false the node's children are skipped.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // children skipped; Inspect sends no pop for n
		}
		stack = append(stack, n)
		return true
	})
}
