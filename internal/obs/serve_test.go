package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	s := &Sink{Reg: NewRegistry(), Tr: NewTracer(1, nil)}
	s.Counter("cisp_test_total").Add(3)
	sp := s.Span("stage")
	sp.SetItems(2)
	sp.End()

	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "cisp_test_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, srv, "/metrics.json"); code != 200 || !strings.Contains(body, `"cisp_test_total"`) {
		t.Errorf("/metrics.json = %d %q", code, body)
	}
	if code, body := get(t, srv, "/trace"); code != 200 || !strings.Contains(body, `"name":"stage"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, body := get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}

func TestServeListenAndClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", &Sink{Reg: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("server still answering after Close")
	}
}
