package ctltest

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"

	"cisp/internal/ctlplane"
	"cisp/internal/netsim"
	"cisp/internal/parallel"
	"cisp/internal/resilience"
	"cisp/internal/te"
)

func TestBootServesInitialSnapshot(t *testing.T) {
	h := Start(t, Options{})
	snap, raw := h.GetSnapshot()
	if snap.Version != 1 || snap.Epoch != 1 || snap.Kind != ctlplane.KindInitial {
		t.Fatalf("initial snapshot = v%d e%d kind %q, want v1 e1 initial", snap.Version, snap.Epoch, snap.Kind)
	}
	if len(snap.Commodities) == 0 || len(snap.Backups) == 0 {
		t.Fatalf("initial snapshot missing commodities (%d) or backups (%d)", len(snap.Commodities), len(snap.Backups))
	}
	if len(snap.DownLinks) != 0 {
		t.Fatalf("clear-sky snapshot reports down links %v", snap.DownLinks)
	}
	// The served bytes are the canonical encoding, newline-terminated.
	if raw[len(raw)-1] != '\n' {
		t.Fatalf("served snapshot not newline-terminated")
	}
	if status, body := h.Get("/v1/snapshot/version"); status != http.StatusOK ||
		!strings.Contains(body, `"version":1`) || !strings.Contains(body, `"epoch":1`) {
		t.Fatalf("/v1/snapshot/version = %d %q", status, body)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if status, _ := h.Get(path); status != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, status)
		}
	}
	h.AssertInvariants()
}

func TestFadeDrivesReopt(t *testing.T) {
	h := Start(t, Options{})
	v := h.Inject(ctlplane.Event{Type: ctlplane.EventFade, Link: 0, CapFrac: 0.25})
	if v != 2 {
		t.Fatalf("fade advanced to version %d, want 2", v)
	}
	snap, _ := h.GetSnapshot()
	if snap.Kind != ctlplane.KindReopt {
		t.Fatalf("post-fade snapshot kind %q, want reopt", snap.Kind)
	}
	// Clearing the fade publishes again; state is not sticky.
	if v := h.Inject(ctlplane.Event{Type: ctlplane.EventFade, Link: 0, CapFrac: 1}); v != 3 {
		t.Fatalf("clear fade advanced to version %d, want 3", v)
	}
	h.AssertInvariants()
}

func TestFailurePublishesFRRThenReopt(t *testing.T) {
	h := Start(t, Options{})
	v := h.Inject(ctlplane.Event{Type: ctlplane.EventFail, Link: 0})
	if v != 3 {
		t.Fatalf("failure advanced to version %d, want 3 (frr then reopt)", v)
	}
	seq := h.Sequence()
	kinds := []string{seq[0].Kind, seq[1].Kind, seq[2].Kind}
	want := []string{ctlplane.KindInitial, ctlplane.KindFRR, ctlplane.KindReopt}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("publication kinds %v, want %v", kinds, want)
		}
	}
	bb := Backbone()
	a, b := bb.Mw[0].A, bb.Mw[0].B
	crosses := func(path []int) bool {
		for i := 0; i+1 < len(path); i++ {
			u, v := path[i], path[i+1]
			if (u == a && v == b) || (u == b && v == a) {
				return true
			}
		}
		return false
	}
	for _, s := range seq[1:] {
		if len(s.DownLinks) != 1 || s.DownLinks[0] != 0 {
			t.Fatalf("snapshot v%d down links %v, want [0]", s.Version, s.DownLinks)
		}
		// Every protected flow whose backup avoids the dead link must have
		// been steered off it; only unprotected fractions may stall there.
		protected := map[int]bool{}
		for _, bw := range s.Backups {
			if !crosses(bw.Path) {
				protected[bw.Flow] = true
			}
		}
		if len(protected) == 0 {
			t.Fatalf("snapshot v%d protects no flows off link %d-%d", s.Version, a, b)
		}
		for _, cw := range s.Commodities {
			if !protected[cw.Flow] {
				continue
			}
			for _, sp := range cw.Splits {
				if crosses(sp.Path) {
					t.Fatalf("snapshot v%d protected flow %d still routes over failed link %d-%d", s.Version, cw.Flow, a, b)
				}
			}
		}
	}
	if v := h.Inject(ctlplane.Event{Type: ctlplane.EventRepair, Link: 0}); v != 5 {
		t.Fatalf("repair advanced to version %d, want 5", v)
	}
	h.AssertInvariants()
}

// TestFRRZeroLPSolves pins the design's core latency claim: activating or
// deactivating fast reroute never runs the LP solver — the patch is pure
// table lookups — across an episode of failures and repairs.
func TestFRRZeroLPSolves(t *testing.T) {
	h := Start(t, Options{DisableReopt: true})
	for _, ev := range []ctlplane.Event{
		{Type: ctlplane.EventFail, Link: 1},
		{Type: ctlplane.EventFail, Link: 3},
		{Type: ctlplane.EventRepair, Link: 1},
		{Type: ctlplane.EventRepair, Link: 3},
	} {
		h.Inject(ev)
	}
	if n := h.FRRLPSolves(); n != 0 {
		t.Fatalf("FRR path ran %v LP solves, want 0", n)
	}
	seq := h.Sequence()
	if len(seq) != 5 {
		t.Fatalf("%d publications, want 5 (initial + 4 frr)", len(seq))
	}
	for _, s := range seq[1:] {
		if s.Kind != ctlplane.KindFRR {
			t.Fatalf("snapshot v%d kind %q, want frr (reopt disabled)", s.Version, s.Kind)
		}
	}
	h.AssertInvariants()
}

// TestFailFadeRepairComposition drives the same microwave link through
// fade, hard failure, and repair: the repaired link must come back at its
// graded rate (fade persists through the outage), and only clearing the
// fade restores the clear-sky MLU.
func TestFailFadeRepairComposition(t *testing.T) {
	h := Start(t, Options{})
	clearMLU := h.Sequence()[0].MLU

	h.Inject(ctlplane.Event{Type: ctlplane.EventFade, Link: 0, CapFrac: 0.5})
	fadedMLU, _ := h.GetSnapshot()
	h.Inject(ctlplane.Event{Type: ctlplane.EventFail, Link: 0})
	h.Inject(ctlplane.Event{Type: ctlplane.EventRepair, Link: 0})
	repaired, _ := h.GetSnapshot()
	if math.Abs(repaired.MLU-fadedMLU.MLU) > 1e-9 {
		t.Fatalf("post-repair MLU %v differs from faded MLU %v: fade state lost across the outage", repaired.MLU, fadedMLU.MLU)
	}
	h.Inject(ctlplane.Event{Type: ctlplane.EventFade, Link: 0, CapFrac: 1})
	final, _ := h.GetSnapshot()
	if math.Abs(final.MLU-clearMLU) > 1e-9 {
		t.Fatalf("clear-sky MLU %v after the episode, want %v", final.MLU, clearMLU)
	}
	h.AssertInvariants()
}

func TestReloadBumpsEpoch(t *testing.T) {
	h := Start(t, Options{})
	status, body := h.post("/v1/reload", `{"te":{"K":6}}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/reload = %d: %s", status, body)
	}
	snap, _ := h.GetSnapshot()
	if snap.Epoch != 2 || snap.Kind != ctlplane.KindReload {
		t.Fatalf("post-reload snapshot = e%d kind %q, want e2 reload", snap.Epoch, snap.Kind)
	}
	// Reload with unknown tuning fields is refused.
	if status, _ := h.post("/v1/reload", `{"bogus":1}`); status != http.StatusBadRequest {
		t.Fatalf("bogus reload spec = %d, want 400", status)
	}
	h.AssertInvariants()
}

func TestInjectRejects(t *testing.T) {
	h := Start(t, Options{})
	cases := []struct{ name, body string }{
		{"garbage", `not json`},
		{"empty batch", `{"events":[]}`},
		{"nan capfrac", `{"events":[{"type":"fade","link":0,"capfrac":NaN}]}`},
		{"overflow capfrac", `{"events":[{"type":"fade","link":0,"capfrac":1e999}]}`},
		{"unknown link", `{"events":[{"type":"fail","link":9999}]}`},
		{"fade outside mw prefix", `{"events":[{"type":"fade","link":14,"capfrac":0.5}]}`},
		{"unknown type", `{"events":[{"type":"flood","link":0}]}`},
	}
	before, _ := h.GetSnapshot()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := h.InjectRaw(tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("%q = %d (%s), want 400", tc.body, status, body)
			}
		})
	}
	after, _ := h.GetSnapshot()
	if after.Version != before.Version {
		t.Fatalf("rejected injections advanced the version %d -> %d", before.Version, after.Version)
	}
	h.AssertInvariants()
}

func TestDrainRefusesWork(t *testing.T) {
	h := Start(t, Options{})
	h.D.Close()
	if status, _ := h.Get("/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", status)
	}
	if status, _ := h.InjectRaw(`{"events":[{"type":"fail","link":0}]}`); status != http.StatusServiceUnavailable {
		t.Fatalf("injection after drain = %d, want 503", status)
	}
	// Snapshots keep serving while the daemon drains.
	if status, _ := h.Get("/v1/snapshot"); status != http.StatusOK {
		t.Fatalf("/v1/snapshot after drain = %d, want 200", status)
	}
	h.D.Close() // idempotent
}

// TestSnapshotInstallsIntoScenario closes the loop the ISSUE names: a
// snapshot served by the live control plane installs directly as a netsim
// scenario's split set.
func TestSnapshotInstallsIntoScenario(t *testing.T) {
	h := Start(t, Options{})
	h.Inject(ctlplane.Event{Type: ctlplane.EventFail, Link: 2})
	snap, _ := h.GetSnapshot()
	b := Backbone()
	sc := &netsim.Scenario{Nodes: b.Nodes, Links: b.Hybrid(), Comms: Commodities()}
	if err := snap.Install(sc); err != nil {
		t.Fatalf("installing live snapshot: %v", err)
	}
	if len(sc.Splits) != len(snap.Commodities) {
		t.Fatalf("installed %d flows, want %d", len(sc.Splits), len(snap.Commodities))
	}
}

// TestConcurrentReadersUnderChurn hammers the snapshot endpoint from many
// goroutines while the event loop publishes — under -race this is the
// torn-read detector. Every read must decode to a complete snapshot with
// valid splits, and versions seen by one reader never go backwards.
func TestConcurrentReadersUnderChurn(t *testing.T) {
	h := Start(t, Options{})
	const readers = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(h.URL + "/v1/snapshot")
				if err != nil {
					t.Errorf("reader GET: %v", err)
					return
				}
				var s ctlplane.Snapshot
				derr := json.NewDecoder(resp.Body).Decode(&s)
				resp.Body.Close()
				if derr != nil {
					t.Errorf("reader decode: %v", derr)
					return
				}
				if s.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", s.Version, lastVersion)
					return
				}
				lastVersion = s.Version
				for _, cw := range s.Commodities {
					sum := 0.0
					for _, sp := range cw.Splits {
						sum += sp.Frac
					}
					if math.Abs(sum-1) > netsim.SplitSumTol {
						t.Errorf("torn read: v%d flow %d splits sum %v", s.Version, cw.Flow, sum)
						return
					}
				}
			}
		}()
	}
	events := []ctlplane.Event{
		{Type: ctlplane.EventFade, Link: 0, CapFrac: 0.5},
		{Type: ctlplane.EventFail, Link: 1},
		{Type: ctlplane.EventFade, Link: 2, CapFrac: 0.25},
		{Type: ctlplane.EventRepair, Link: 1},
		{Type: ctlplane.EventFade, Link: 0, CapFrac: 1},
		{Type: ctlplane.EventFail, Link: 7},
		{Type: ctlplane.EventRepair, Link: 7},
		{Type: ctlplane.EventFade, Link: 2, CapFrac: 1},
	}
	for round := 0; round < 4; round++ {
		for _, ev := range events {
			h.Inject(ev)
		}
	}
	close(done)
	wg.Wait()
	h.AssertInvariants()
}

// TestDeterministicSequenceAcrossWorkers pins the acceptance criterion:
// the same event schedule yields byte-identical snapshot sequences at any
// worker-pool width.
func TestDeterministicSequenceAcrossWorkers(t *testing.T) {
	schedule := []ctlplane.Event{
		{Type: ctlplane.EventFade, Link: 0, CapFrac: 0.5},
		{Type: ctlplane.EventFail, Link: 2},
		{Type: ctlplane.EventFade, Link: 3, CapFrac: 0.75},
		{Type: ctlplane.EventRepair, Link: 2},
		{Type: ctlplane.EventFail, Link: 10},
		{Type: ctlplane.EventFade, Link: 0, CapFrac: 1},
		{Type: ctlplane.EventRepair, Link: 10},
	}
	run := func(workers int) [][]byte {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		h := Start(t, Options{})
		for _, ev := range schedule {
			h.Inject(ev)
		}
		h.AssertInvariants()
		return h.SequenceBytes()
	}
	one := run(1)
	eight := run(8)
	if d := Diff(one, eight); d != "" {
		t.Fatalf("snapshot sequences diverge across worker counts:\n%s", d)
	}
}

// metricsGolden pins the control plane's exported metric families — the
// names operators build dashboards on. Histogram series render extra
// _bucket/_sum/_count suffixes; the golden tracks family names.
var metricsGolden = []string{
	"cisp_ctlplane_events_total",
	"cisp_ctlplane_frr_lp_solves",
	"cisp_ctlplane_mlu",
	"cisp_ctlplane_publish_seconds",
	"cisp_ctlplane_snapshot_epoch",
	"cisp_ctlplane_snapshot_version",
	"cisp_ctlplane_snapshots_total",
}

func TestMetricsNamesGolden(t *testing.T) {
	h := Start(t, Options{})
	h.Inject(ctlplane.Event{Type: ctlplane.EventFade, Link: 0, CapFrac: 0.5})
	h.Inject(ctlplane.Event{Type: ctlplane.EventFail, Link: 1})
	h.Inject(ctlplane.Event{Type: ctlplane.EventRepair, Link: 1})

	families := map[string]bool{}
	for _, line := range strings.Split(h.Metrics(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		if strings.HasPrefix(name, "cisp_ctlplane_") {
			families[name] = true
		}
	}
	var got []string
	for name := range families {
		got = append(got, name)
	}
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(metricsGolden, "\n") {
		t.Errorf("metric families golden mismatch:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(metricsGolden, "\n"))
	}
}

// Compile-time check that harness options accept the tuning types tests
// pass through to the daemon.
var _ = Options{TE: te.Config{}, Prot: resilience.Config{}}
