package ilp

import (
	"math"
	"math/rand"
	"testing"

	"cisp/internal/lp"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestKnapsack(t *testing.T) {
	// max 10a+13b+7c s.t. 3a+4b+2c <= 6, binary → best is a+c? values:
	// a+b: weight 7 no; a+c: w5 v17; b+c: w6 v20 ← optimum.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -13, -7},
		},
		Binary: []int{0, 1, 2},
	}
	p.LP.AddConstraint([]int{0, 1, 2}, []float64{3, 4, 2}, lp.LE, 6)
	s, err := Solve(p, Options{})
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -20, 1e-6) {
		t.Fatalf("objective = %v, want -20 (items b+c)", s.Objective)
	}
	if s.X[1] != 1 || s.X[2] != 1 || s.X[0] != 0 {
		t.Fatalf("x = %v, want [0 1 1]", s.X)
	}
}

func TestBinaryInfeasible(t *testing.T) {
	// x0 + x1 = 1.5 has no binary solution (and no way to mix: both binary).
	p := &Problem{
		LP:     lp.Problem{NumVars: 2, Objective: []float64{1, 1}},
		Binary: []int{0, 1},
	}
	p.LP.AddConstraint([]int{0, 1}, []float64{1, 1}, lp.EQ, 1.5)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -y - 0.5 x with y binary, x continuous <= 2.5, x <= 2y.
	// y=1 → x=2 (bounded by 2y): obj -1-1 = -2? wait x<=2.5 and x<=2 → x=2,
	// obj = -1 - 1 = -2. y=0 → x=0 obj 0. Optimum -2.
	p := &Problem{
		LP:     lp.Problem{NumVars: 2, Objective: []float64{-0.5, -1}}, // x=var0, y=var1
		Binary: []int{1},
	}
	p.LP.AddConstraint([]int{0}, []float64{1}, lp.LE, 2.5)
	p.LP.AddConstraint([]int{0, 1}, []float64{1, -2}, lp.LE, 0)
	s, err := Solve(p, Options{})
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -2, 1e-6) {
		t.Fatalf("objective = %v, want -2", s.Objective)
	}
	if s.X[1] != 1 {
		t.Fatalf("y = %v, want 1", s.X[1])
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1,2,3}; sets A={1,2} cost 3, B={2,3} cost 3, C={1,2,3} cost 5.
	// Optimum: C alone (5) beats A+B (6).
	p := &Problem{
		LP:     lp.Problem{NumVars: 3, Objective: []float64{3, 3, 5}},
		Binary: []int{0, 1, 2},
	}
	p.LP.AddConstraint([]int{0, 2}, []float64{1, 1}, lp.GE, 1)       // element 1
	p.LP.AddConstraint([]int{0, 1, 2}, []float64{1, 1, 1}, lp.GE, 1) // element 2
	p.LP.AddConstraint([]int{1, 2}, []float64{1, 1}, lp.GE, 1)       // element 3
	s, err := Solve(p, Options{})
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 5, 1e-6) {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
}

func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	// A 12-item knapsack; with MaxNodes=1 we should still terminate.
	rng := rand.New(rand.NewSource(1))
	n := 12
	p := &Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	vars := make([]int, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = -(1 + rng.Float64()*9)
		vars[i] = i
		weights[i] = 1 + rng.Float64()*4
		p.Binary = append(p.Binary, i)
	}
	p.LP.AddConstraint(vars, weights, lp.LE, 10)
	s, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Feasible && s.Status != Infeasible && s.Status != Optimal {
		t.Fatalf("unexpected status %v", s.Status)
	}
}

// TestMatchesBruteForce compares B&B against exhaustive enumeration on random
// small knapsacks — the key correctness property.
func TestMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*9
			weights[i] = 1 + rng.Float64()*4
		}
		cap := 2 + rng.Float64()*8

		p := &Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			p.LP.Objective[i] = -values[i]
			vars[i] = i
			p.Binary = append(p.Binary, i)
		}
		p.LP.AddConstraint(vars, weights, lp.LE, cap)

		s, err := Solve(p, Options{})
		if err != nil || s.Status != Optimal {
			t.Fatalf("seed %d: status=%v err=%v", seed, s.Status, err)
		}

		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if !approx(-s.Objective, best, 1e-6) {
			t.Fatalf("seed %d: B&B found %v, brute force %v", seed, -s.Objective, best)
		}
	}
}

func BenchmarkKnapsack15(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 15
	p := &Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
	vars := make([]int, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = -(1 + rng.Float64()*9)
		vars[i] = i
		weights[i] = 1 + rng.Float64()*4
		p.Binary = append(p.Binary, i)
	}
	p.LP.AddConstraint(vars, weights, lp.LE, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
