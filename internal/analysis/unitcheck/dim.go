package unitcheck

import (
	"fmt"
	"go/types"
	"strings"
)

// unitsPath is the import path of the repository's unit-type kernel. Every
// dimension the analyzer knows about is rooted in a named type of this
// package (plus time.Duration, tracked only at conversion boundaries), so
// aliased imports, dot-imports and vendored-style type re-exports all
// resolve to the same dimensions: the check is on the defining package of
// the (unaliased) named type, never on the spelling at the use site.
const unitsPath = "cisp/internal/units"

// A Dim is a point in the dimension lattice: a vector of integer exponents
// over the base dimensions, plus a Known flag. The zero Dim is ⊥
// ("unknown"): a dimensionless scalar, an erased float64, anything the
// analyzer cannot vouch for. Unknown unifies with everything — it makes
// the checks conservative, never wrong. Known with all exponents zero is
// the definitely-dimensionless point (units.Utilization, a ratio of equal
// dimensions); it does NOT unify with lengths or times.
//
// The JSON form is the cross-package fact interchange shape (DESIGN.md
// §11); field names are part of that contract.
type Dim struct {
	Known bool `json:"known"`
	L     int8 `json:"l,omitempty"`  // length (meters)
	T     int8 `json:"t,omitempty"`  // time (seconds)
	D     int8 `json:"d,omitempty"`  // data (bits)
	B     int8 `json:"db,omitempty"` // log-power (decibels); never mixes with linear units
}

// dimless is the known-dimensionless point of the lattice.
var dimless = Dim{Known: true}

func (d Dim) eq(o Dim) bool { return d == o }

// mul combines the dimensions of a product; both inputs must be Known.
func (d Dim) mul(o Dim) Dim {
	return Dim{Known: true, L: d.L + o.L, T: d.T + o.T, D: d.D + o.D, B: d.B + o.B}
}

// div combines the dimensions of a quotient; both inputs must be Known.
func (d Dim) div(o Dim) Dim {
	return Dim{Known: true, L: d.L - o.L, T: d.T - o.T, D: d.D - o.D, B: d.B - o.B}
}

// String renders the dimension for diagnostics: "length", "data rate",
// "length·time^-1", "dimensionless", "unknown".
func (d Dim) String() string {
	if !d.Known {
		return "unknown"
	}
	if d == dimless {
		return "dimensionless"
	}
	if d == (Dim{Known: true, D: 1, T: -1}) {
		return "data rate"
	}
	var parts []string
	for _, b := range []struct {
		name string
		exp  int8
	}{{"length", d.L}, {"time", d.T}, {"data", d.D}, {"dB", d.B}} {
		switch b.exp {
		case 0:
		case 1:
			parts = append(parts, b.name)
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", b.name, b.exp))
		}
	}
	return strings.Join(parts, "·")
}

// unitDims maps each named type of the units package to its dimension.
// Utilization is known-dimensionless: mixing it with a dimensioned value
// is exactly the LP-conditioning bug class PR 5 fixed.
var unitDims = map[string]Dim{
	"Meters":        {Known: true, L: 1},
	"Km":            {Known: true, L: 1},
	"Seconds":       {Known: true, T: 1},
	"Bits":          {Known: true, D: 1},
	"BitsPerSecond": {Known: true, D: 1, T: -1},
	"DB":            {Known: true, B: 1},
	"Utilization":   dimless,
}

// unitTypeName resolves t (through any alias chain) to a named type of the
// units package, returning its name. This is what makes aliased imports,
// dot-imports and `type M = units.Meters` re-exports transparent.
func unitTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPath {
		return "", false
	}
	_, known := unitDims[obj.Name()]
	return obj.Name(), known
}

// typeDim maps a static Go type to its dimension: units types carry their
// dimension, everything else — basics, type parameters, foreign named
// types, time.Duration (deliberately: Duration arithmetic idioms like
// time.Duration(n)*time.Second are dimensional nonsense by design) — is
// unknown.
func typeDim(t types.Type) Dim {
	if name, ok := unitTypeName(t); ok {
		return unitDims[name]
	}
	return Dim{}
}

// isDuration reports whether t (unaliased) is time.Duration.
func isDuration(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isBasicNumeric reports whether t is a basic integer/float type — the
// erasure boundary: converting a unit value to one of these deliberately
// leaves the dimension system.
func isBasicNumeric(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// A FuncDim is one function's dimension signature: the inferred dimension
// of each parameter and result. Slots the analyzer cannot vouch for are
// unknown. This is the per-function value inside the package facts.
type FuncDim struct {
	Params  []Dim `json:"params"`
	Results []Dim `json:"results"`
}

func (fd FuncDim) eq(o FuncDim) bool {
	if len(fd.Params) != len(o.Params) || len(fd.Results) != len(o.Results) {
		return false
	}
	for i := range fd.Params {
		if fd.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range fd.Results {
		if fd.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// FuncFacts is the analyzer's exported package fact: dimension signatures
// of exported functions and methods, keyed "Func" or "Recv.Method". Only
// signatures that say more than the declared types (a float64 slot with an
// inferred dimension) are exported; everything else the consumer already
// sees in the type information. encoding/json sorts map keys, so the
// marshaled form is deterministic — the property the Session driver and
// the vet .vetx files rely on.
type FuncFacts map[string]FuncDim

// funcKey builds the facts key for a function object: "Name" for
// package-level functions, "Recv.Name" for methods (pointer receivers
// stripped).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
