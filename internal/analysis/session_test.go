package analysis_test

import (
	"bytes"
	"testing"

	"cisp/internal/analysis"
	"cisp/internal/analysis/suite"
	"cisp/internal/parallel"
)

// TestSessionDeterministicAcrossWorkers pins the parallel driver's output
// contract: the rendered findings — suppressed ones included — are
// byte-identical whether the per-package fan-out runs on one worker or
// eight. The fixture packages are real module packages with known
// //lint:allow sites, so the comparison exercises suppression carry-through
// as well as ordering.
func TestSessionDeterministicAcrossWorkers(t *testing.T) {
	pkgs := []string{"cisp/internal/graph", "cisp/internal/parallel", "cisp/internal/units"}
	render := func(workers int) []byte {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		s := analysis.NewSession(".", suite.All())
		findings, errs := s.Run(pkgs)
		for _, err := range errs {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := analysis.WriteJSON(&buf, findings); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", workers, err)
		}
		return buf.Bytes()
	}
	one := render(1)
	eight := render(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("output differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", one, eight)
	}
	if !bytes.Contains(one, []byte(`"suppressed": true`)) {
		t.Fatalf("fixture packages should surface suppressed findings; got:\n%s", one)
	}
}
