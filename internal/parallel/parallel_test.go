package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		for _, n := range []int{0, 1, 2, 3, 31, 64, 65, 1000} {
			withWorkers(t, workers, func() {
				hits := make([]int32, n)
				For(n, 1, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
					}
				}
			})
		}
	}
}

func TestForFewerItemsThanWorkers(t *testing.T) {
	withWorkers(t, 16, func() {
		var count atomic.Int64
		For(3, 1, func(lo, hi int) { count.Add(int64(hi - lo)) })
		if count.Load() != 3 {
			t.Fatalf("covered %d of 3 indices", count.Load())
		}
	})
}

func TestForEmptyRange(t *testing.T) {
	called := false
	//lint:allow paraclosure -- asserts the callback never runs on an empty range; a write implies test failure
	For(0, 1, func(lo, hi int) { called = true })
	//lint:allow paraclosure -- asserts the callback never runs on an empty range; a write implies test failure
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called on empty range")
	}
}

func TestForGrainRunsInline(t *testing.T) {
	// n <= grain must run inline in chunk order even with a wide pool.
	withWorkers(t, 8, func() {
		var order []int
		//lint:allow paraclosure -- deliberately unsynchronized: the test proves n <= grain runs inline on one goroutine
		For(10, 10, func(lo, hi int) { order = append(order, lo) }) // no races iff inline
		for i := 1; i < len(order); i++ {
			if order[i] <= order[i-1] {
				t.Fatalf("inline chunks out of order: %v", order)
			}
		}
	})
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 5} {
		withWorkers(t, workers, func() {
			out := Map(137, 1, func(i int) int { return i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
				}
			}
		})
	}
}

func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	// Float sums must be bit-identical at every pool width: fixed chunk
	// boundaries and in-order merge are the whole point.
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e6
	}
	sum := func() float64 {
		return Reduce(len(xs), 1, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	var ref float64
	withWorkers(t, 1, func() { ref = sum() })
	for _, workers := range []int{2, 3, 8, 31} {
		withWorkers(t, workers, func() {
			if got := sum(); got != ref {
				t.Fatalf("workers=%d: sum %v != sequential %v", workers, got, ref)
			}
		})
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 1, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("empty Reduce = %d, want zero value", got)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: panic value %v, want \"boom\"", workers, r)
				}
			}()
			For(1000, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 500 {
						panic("boom")
					}
				}
			})
		})
	}
}

func TestPanicLowestChunkWins(t *testing.T) {
	// When several chunks panic, the caller sees the lowest-index one.
	withWorkers(t, 8, func() {
		defer func() {
			if r := recover(); r != "chunk0" {
				t.Fatalf("got panic %v, want chunk0", r)
			}
		}()
		For(1000, 1, func(lo, hi int) {
			if lo == 0 {
				panic("chunk0")
			}
			panic("later")
		})
	})
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		done := make([]int32, 37)
		tasks := make([]func(), len(done))
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&done[i], 1) }
		}
		Run(workers, tasks)
		for i, d := range done {
			if d != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, d)
			}
		}
	}
}

func TestRunPanicPropagation(t *testing.T) {
	defer func() {
		if r := recover(); r != "task2" {
			t.Fatalf("got panic %v, want task2", r)
		}
	}()
	Run(4, []func(){
		func() {},
		func() {},
		func() { panic("task2") },
	})
}

func TestRunSequentialPanicStopsImmediately(t *testing.T) {
	// With a one-worker pool a panic propagates before later tasks run,
	// matching For's inline path.
	ran := 0
	defer func() {
		if r := recover(); r != "task1" {
			t.Fatalf("got panic %v, want task1", r)
		}
		if ran != 1 {
			t.Fatalf("%d tasks ran before the panic, want 1", ran)
		}
	}()
	Run(1, []func(){
		func() { ran++ }, //lint:allow paraclosure -- Run(1, ...) is sequential by construction; counts tasks before the panic
		func() { panic("task1") },
		func() { ran++ }, //lint:allow paraclosure -- Run(1, ...) is sequential by construction; counts tasks before the panic
	})
}

func TestSetWorkersRestores(t *testing.T) {
	prev := SetWorkers(3)
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", w)
	}
	if got := SetWorkers(prev); got != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", got)
	}
}
