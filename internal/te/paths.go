package te

import (
	"fmt"
	"math"

	"cisp/internal/netsim"
	"cisp/internal/parallel"
)

// edge is one directed link of the TE graph.
type edge struct {
	from, to int
	capBps   float64 // 0 = link down (excluded from path search)
	delay    float64 // propagation delay, seconds
}

// graph is the directed TE topology: two edges per duplex TopoLink.
type graph struct {
	n     int
	edges []edge
	adj   [][]int32 // per node, outgoing edge IDs in insertion order
}

// buildGraph converts the duplex simulation topology into the directed TE
// graph. Parallel directed edges are rejected: candidate paths are node
// sequences (that is what netsim installs), so a multigraph would be
// ambiguous — parallel capacity must be expressed through distinct nodes
// (see experiments.DesignedTETopology's fiber midpoints).
func buildGraph(n int, links []netsim.TopoLink) (*graph, error) {
	g := &graph{n: n, adj: make([][]int32, n)}
	seen := make(map[[2]int]bool, 2*len(links))
	add := func(a, b int, capBps, delay float64) error {
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("te: link %d->%d outside node range [0,%d)", a, b, n)
		}
		if seen[[2]int{a, b}] {
			return fmt.Errorf("te: parallel directed link %d->%d (use a transit node for parallel capacity)", a, b)
		}
		seen[[2]int{a, b}] = true
		g.adj[a] = append(g.adj[a], int32(len(g.edges)))
		g.edges = append(g.edges, edge{from: a, to: b, capBps: capBps, delay: delay})
		return nil
	}
	for _, l := range links {
		if err := add(l.A, l.B, float64(l.RateBps), float64(l.PropDelay)); err != nil {
			return nil, err
		}
		if err := add(l.B, l.A, float64(l.RateBps), float64(l.PropDelay)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Path is one candidate forwarding path of a commodity.
type Path struct {
	Nodes []int
	Delay float64 // end-to-end propagation delay, seconds
	edges []int32
}

func (g *graph) pathFromEdges(src int, eids []int32) Path {
	p := Path{Nodes: make([]int, 0, len(eids)+1), edges: eids}
	p.Nodes = append(p.Nodes, src)
	for _, e := range eids {
		p.Delay += g.edges[e].delay
		p.Nodes = append(p.Nodes, g.edges[e].to)
	}
	return p
}

// dijkstraMasked finds the minimum-delay path src→dst as an edge-ID
// sequence, skipping banned edges and nodes and edges with zero capacity.
// Scratch slices are caller-owned so Yen's inner loop does not reallocate.
type dijkstraScratch struct {
	dist    []float64
	prevE   []int32
	done    []bool
	edgeBan []bool
	nodeBan []bool
}

func newScratch(g *graph) *dijkstraScratch {
	return &dijkstraScratch{
		dist:    make([]float64, g.n),
		prevE:   make([]int32, g.n),
		done:    make([]bool, g.n),
		edgeBan: make([]bool, len(g.edges)),
		nodeBan: make([]bool, g.n),
	}
}

func (s *dijkstraScratch) run(g *graph, src, dst int) ([]int32, float64) {
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.prevE[i] = -1
		s.done[i] = false
	}
	s.dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < g.n; v++ {
			if !s.done[v] && !s.nodeBan[v] && s.dist[v] < best {
				u, best = v, s.dist[v]
			}
		}
		if u < 0 || u == dst {
			break
		}
		s.done[u] = true
		for _, ei := range g.adj[u] {
			e := &g.edges[ei]
			if s.edgeBan[ei] || s.nodeBan[e.to] || e.capBps <= 0 {
				continue
			}
			if nd := s.dist[u] + e.delay; nd < s.dist[e.to] {
				s.dist[e.to] = nd
				s.prevE[e.to] = ei
			}
		}
	}
	if math.IsInf(s.dist[dst], 1) {
		return nil, 0
	}
	var rev []int32
	for v := dst; v != src; {
		ei := s.prevE[v]
		rev = append(rev, ei)
		v = g.edges[ei].from
	}
	out := make([]int32, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out, s.dist[dst]
}

func sameEdges(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// yen enumerates up to k loopless minimum-delay paths src→dst (Yen's
// algorithm) and drops any whose delay exceeds stretch × the shortest
// path's delay — the latency-diversity cap that keeps every TE split inside
// the paper's stretch budget.
func yen(g *graph, scratch *dijkstraScratch, src, dst, k int, stretch float64) []Path {
	bestE, bestD := scratch.run(g, src, dst)
	if bestE == nil {
		return nil
	}
	maxDelay := bestD * stretch
	A := []Path{g.pathFromEdges(src, bestE)}
	var B []Path
	for len(A) < k {
		prev := A[len(A)-1]
		for i := 0; i < len(prev.edges); i++ {
			spur := prev.Nodes[i]
			// Ban the i-th edge of every accepted path sharing the root
			// prefix, and every root node before the spur, then search for
			// a deviation.
			for _, p := range A {
				if len(p.edges) > i && sameEdges(p.edges[:i], prev.edges[:i]) {
					scratch.edgeBan[p.edges[i]] = true
				}
			}
			for _, v := range prev.Nodes[:i] {
				scratch.nodeBan[v] = true
			}
			spurE, spurD := scratch.run(g, spur, dst)
			for _, p := range A {
				if len(p.edges) > i && sameEdges(p.edges[:i], prev.edges[:i]) {
					scratch.edgeBan[p.edges[i]] = false
				}
			}
			for _, v := range prev.Nodes[:i] {
				scratch.nodeBan[v] = false
			}
			if spurE == nil {
				continue
			}
			rootD := 0.0
			for _, ei := range prev.edges[:i] {
				rootD += g.edges[ei].delay
			}
			if rootD+spurD > maxDelay {
				continue
			}
			full := make([]int32, 0, i+len(spurE))
			full = append(full, prev.edges[:i]...)
			full = append(full, spurE...)
			dup := false
			for _, p := range append(A, B...) {
				if sameEdges(p.edges, full) {
					dup = true
					break
				}
			}
			if !dup {
				B = append(B, g.pathFromEdges(src, full))
			}
		}
		if len(B) == 0 {
			break
		}
		// Pop the minimum-delay candidate (ties: fewer hops, then
		// lexicographic node order — fully deterministic).
		bi := 0
		for j := 1; j < len(B); j++ {
			if pathLess(&B[j], &B[bi]) {
				bi = j
			}
		}
		A = append(A, B[bi])
		B = append(B[:bi], B[bi+1:]...)
	}
	return A
}

func pathLess(a, b *Path) bool {
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	if len(a.Nodes) != len(b.Nodes) {
		return len(a.Nodes) < len(b.Nodes)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return false
}

// enumerate finds each commodity's candidate paths, fanned out over the
// shared worker pool (one Yen run per commodity; results are positionally
// stable, so the fan-out is deterministic).
func enumerate(g *graph, comms []netsim.Commodity, cfg Config) [][]Path {
	return parallel.Map(len(comms), 1, func(i int) []Path {
		return yen(g, newScratch(g), comms[i].Src, comms[i].Dst, cfg.K, cfg.Stretch)
	})
}

// Candidates enumerates every commodity's latency-bounded candidate paths
// over the duplex topology — the controller's internal enumeration (Yen's
// algorithm, at most cfg.K paths within cfg.Stretch × the shortest delay),
// exported so layers above the control plane (internal/resilience's
// disjoint-backup search) work from the exact same path pool a Controller
// with the same Config would split over. Results are positionally aligned
// with comms; a commodity with no path on the topology gets an empty slice.
func Candidates(n int, links []netsim.TopoLink, comms []netsim.Commodity, cfg Config) ([][]Path, error) {
	cfg = cfg.withDefaults()
	g, err := buildGraph(n, links)
	if err != nil {
		return nil, err
	}
	return enumerate(g, comms, cfg), nil
}
