package experiments

import (
	"sort"

	"cisp/internal/gaming"
	"cisp/internal/webpage"
)

// Fig12Point is one RTT sample of the gaming study.
type Fig12Point struct {
	ConvRTTMs   float64
	ConvFrameMs float64
	AugFrameMs  float64
}

// Fig12Gaming reproduces Fig 12: frame time versus conventional connectivity
// latency for the thin-client speculative Pacman, with and without the
// parallel low-latency (1/3 RTT) augmentation.
func Fig12Gaming(opt Options, rtts []float64) []Fig12Point {
	w := opt.out()
	cfg := gaming.Config{Seed: opt.Seed}
	conv, aug := gaming.FrameTimeCurve(rtts, 1.0/3, cfg)
	fprintf(w, "Fig 12 — thin-client gaming frame time\n%12s %16s %16s\n",
		"conv RTT(ms)", "conventional(ms)", "augmented(ms)")
	var out []Fig12Point
	for i := range rtts {
		out = append(out, Fig12Point{ConvRTTMs: rtts[i], ConvFrameMs: conv[i], AugFrameMs: aug[i]})
		fprintf(w, "%12.0f %16.1f %16.1f\n", rtts[i], conv[i], aug[i])
	}
	return out
}

// Fig13Result carries the web-browsing study medians and CDFs.
type Fig13Result struct {
	MedianPLTBaseline float64
	MedianPLTCISP     float64
	MedianPLTSel      float64
	PLTCutPct         float64 // paper: 31%
	SelCutPct         float64 // paper: 27%
	ObjectCutPct      float64 // paper: 49%
	UpstreamBytesPct  float64 // paper: 8.5%

	// Sorted PLT samples for CDF plotting.
	CDFBaseline, CDFCISP, CDFSel []float64
}

// Fig13WebBrowsing reproduces §7.2: replaying a page corpus with RTTs at
// 0.33× (cISP), at 0.33× on the request path only (cISP-selective), and
// unmodified (baseline).
func Fig13WebBrowsing(opt Options, pages int) *Fig13Result {
	w := opt.out()
	corpus := webpage.Corpus(webpage.CorpusConfig{Seed: opt.Seed, Pages: pages})

	load := func(cfg webpage.ReplayConfig) (plts, objs []float64, c2s, s2c int64) {
		for _, p := range corpus {
			r := webpage.Replay(p, cfg)
			plts = append(plts, r.PLT)
			objs = append(objs, r.ObjectTimes...)
			c2s += r.BytesC2S
			s2c += r.BytesS2C
		}
		sort.Float64s(plts)
		return
	}

	basePLT, baseObj, c2s, s2c := load(webpage.ReplayConfig{})
	cispPLT, cispObj, _, _ := load(webpage.ReplayConfig{RTTScaleC2S: 0.33, RTTScaleS2C: 0.33})
	selPLT, _, _, _ := load(webpage.ReplayConfig{RTTScaleC2S: 0.33, RTTScaleS2C: 1})

	med := func(s []float64) float64 { return s[len(s)/2] }
	medOf := func(s []float64) float64 {
		c := append([]float64(nil), s...)
		sort.Float64s(c)
		return c[len(c)/2]
	}

	res := &Fig13Result{
		MedianPLTBaseline: med(basePLT),
		MedianPLTCISP:     med(cispPLT),
		MedianPLTSel:      med(selPLT),
		CDFBaseline:       basePLT,
		CDFCISP:           cispPLT,
		CDFSel:            selPLT,
	}
	res.PLTCutPct = (1 - res.MedianPLTCISP/res.MedianPLTBaseline) * 100
	res.SelCutPct = (1 - res.MedianPLTSel/res.MedianPLTBaseline) * 100
	res.ObjectCutPct = (1 - medOf(cispObj)/medOf(baseObj)) * 100
	res.UpstreamBytesPct = float64(c2s) / float64(c2s+s2c) * 100

	fprintf(w, "Fig 13 — web page load times over %d pages\n", len(corpus))
	fprintf(w, "  median PLT: baseline %.0f ms, cISP %.0f ms (-%.0f%%; paper -31%%), selective %.0f ms (-%.0f%%; paper -27%%)\n",
		res.MedianPLTBaseline*1000, res.MedianPLTCISP*1000, res.PLTCutPct,
		res.MedianPLTSel*1000, res.SelCutPct)
	fprintf(w, "  median object load cut: %.0f%% (paper 49%%); upstream bytes: %.1f%% (paper 8.5%%)\n",
		res.ObjectCutPct, res.UpstreamBytesPct)
	return res
}
