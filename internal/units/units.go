// Package units defines the physical-dimension types the cISP pipeline
// computes in: lengths, times, data sizes, data rates, decibels and
// dimensionless ratios. Every type is a named float64, so arithmetic
// within one unit compiles to exactly the raw-float code it replaces
// (BenchmarkTypedVsRaw pins this), while cross-unit mixing is rejected —
// by the compiler for named-type mismatches, and by the cisplint
// unitcheck analyzer (internal/analysis/unitcheck, DESIGN.md §11) for
// the float64-shaped escapes the compiler cannot see.
//
// Conversions between units of the same dimension but different scale
// (Km↔Meters, Gbps↔bps) go through the named constructors and methods
// below; a direct Go conversion such as Meters(km) silently drops the
// scale factor and is reported by unitcheck.
package units

import "time"

// Meters is a length in meters — the pipeline's base length unit:
// geodesic distances, tower heights, Fresnel clearances.
type Meters float64

// Km is a length in kilometers — the unit rain-attenuation integrals and
// the paper's figures quote. Convert explicitly: Km(3).Meters() == 3000.
type Km float64

// Seconds is a time span in seconds — simulation clocks, propagation
// delays, MTBF/MTTR draws.
type Seconds float64

// Bits is a data size in bits.
type Bits float64

// BitsPerSecond is a data rate in bits per second — link capacities,
// demands, and flow rates. The pipeline's base rate unit.
type BitsPerSecond float64

// DB is a logarithmic power ratio in decibels: rain attenuation and fade
// margins. Decibels add where the underlying ratios multiply, so DB
// deliberately has no product/ratio relationship to the linear units.
type DB float64

// Utilization is a dimensionless ratio of load to capacity (an MLU of
// 0.85 means the most loaded link carries 85% of its capacity). It is
// the unit the TE LP's constraint rows are normalized to — feeding it
// bps-scale values is exactly the conditioning bug PR 5 fixed.
type Utilization float64

// Meters converts kilometers to meters.
func (k Km) Meters() Meters { return Meters(k * 1e3) }

// Km converts meters to kilometers.
func (m Meters) Km() Km { return Km(m / 1e3) }

// MetersOf types a raw float64 already measured in meters.
func MetersOf(v float64) Meters { return Meters(v) }

// Duration converts a seconds count to a time.Duration.
func (s Seconds) Duration() time.Duration {
	return time.Duration(float64(s) * float64(time.Second))
}

// DurationSeconds converts a time.Duration to Seconds.
func DurationSeconds(d time.Duration) Seconds {
	return Seconds(d.Seconds())
}

// Millis converts a milliseconds count to Seconds.
func Millis(ms float64) Seconds { return Seconds(ms / 1e3) }

// Millis reports the span in milliseconds.
func (s Seconds) Millis() float64 { return float64(s) * 1e3 }

// Bytes converts a byte count to Bits.
func Bytes(n float64) Bits { return Bits(n * 8) }

// Bytes reports the size in bytes.
func (b Bits) Bytes() float64 { return float64(b) / 8 }

// Gbps converts a gigabits-per-second figure (the paper's capacity unit)
// to BitsPerSecond.
func Gbps(v float64) BitsPerSecond { return BitsPerSecond(v * 1e9) }

// Gbps reports the rate in gigabits per second.
func (r BitsPerSecond) Gbps() float64 { return float64(r) / 1e9 }

// Mbps converts a megabits-per-second figure to BitsPerSecond.
func Mbps(v float64) BitsPerSecond { return BitsPerSecond(v * 1e6) }

// Mbps reports the rate in megabits per second.
func (r BitsPerSecond) Mbps() float64 { return float64(r) / 1e6 }

// Per divides a data size by a time span, yielding a rate.
func (b Bits) Per(s Seconds) BitsPerSecond { return BitsPerSecond(float64(b) / float64(s)) }

// Time reports how long transferring b takes at rate r.
func (r BitsPerSecond) Time(b Bits) Seconds { return Seconds(float64(b) / float64(r)) }

// Of returns the utilization of a capacity by a load (load/cap).
func Of(load, cap BitsPerSecond) Utilization { return Utilization(load / cap) }

// Ratio divides two lengths, yielding the dimensionless ratio (a stretch
// factor, an angle in radians when the divisor is a sphere radius).
func Ratio(a, b Meters) float64 { return float64(a / b) }
