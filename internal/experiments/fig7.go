package experiments

import (
	"math"
	"sort"

	"cisp"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/units"
	"cisp/internal/weather"
)

// Fig7Config extends the Fig 7 weather study beyond the paper's binary
// reroute analysis.
type Fig7Config struct {
	Days   int // sampled days per trial (default 365)
	Trials int // Monte-Carlo repetitions with distinct weather seeds (default 1)

	// Graded enables the packet-level validation: the stormiest sampled
	// interval is replayed in netsim with adaptive-modulation degraded
	// link capacities, measuring TCP flow-completion times under the three
	// §5 routing schemes against the clear-sky baseline.
	Graded bool

	// FCTFlows caps how many heaviest-demand commodities the packet study
	// offers (default 24; packet-level time is O(flows)).
	FCTFlows int
}

func (c *Fig7Config) setDefaults() {
	if c.Days <= 0 {
		c.Days = 365
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.FCTFlows == 0 {
		c.FCTFlows = 24
	}
}

// Fig7Result carries the Fig 7 weather study: per-pair stretch statistics
// over a sampled year, the fiber baseline, the graded capacity record, and
// (when enabled) the stormy-interval packet study.
type Fig7Result struct {
	MedianBest  float64
	MedianP99   float64
	MedianWorst float64
	MedianFiber float64

	// Graded capacity-degradation columns (trial 0).
	MeanFailedLinks   float64 // binary outages per sampled interval
	MeanDegradedLinks float64 // links below clear-sky rate but up
	MeanCapacityFrac  float64 // fleet mean adaptive-modulation fraction

	// TrialMedianP99 is the median-P99 stretch of each Monte-Carlo trial;
	// its spread quantifies sensitivity to the weather seed.
	TrialMedianP99 []float64

	// Stormy-interval packet study (Graded only): flow-completion times on
	// the worst sampled day, degraded vs clear-sky.
	StormDay    int
	FCTDegraded []weather.FCTResult // one per routing scheme
	FCTClean    []weather.FCTResult // shortest-path, clear-sky reference

	Analysis *weather.YearAnalysis // trial 0
}

// Fig7Weather reproduces §6.1: for each day of the study a random 30-minute
// interval's precipitation field fails microwave links past the ITU fade
// margin; traffic reroutes over surviving links and fiber. The paper's
// findings: 99th-percentile latency ≈ fair-weather latency, and even the
// worst day beats fiber by ~1.7× in the median.
func Fig7Weather(opt Options, days int) *Fig7Result {
	return Fig7WeatherExt(opt, Fig7Config{Days: days})
}

// Fig7WeatherExt runs the extended weather study: multi-seed Monte-Carlo
// trials of the year-long graded analysis, capacity-degradation reporting,
// and optionally the stormy-interval flow-completion-time validation.
func Fig7WeatherExt(opt Options, cfg Fig7Config) *Fig7Result {
	cfg.setDefaults()
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig7: %v\n", err)
		return nil
	}

	sites := make([]geo.Point, len(s.Cities))
	for i, c := range s.Cities {
		sites[i] = c.Loc
	}

	res := &Fig7Result{}
	var gen0 *weather.Generator
	for trial := 0; trial < cfg.Trials; trial++ {
		gen := weather.NewRegionGenerator(opt.Seed+77+int64(trial)*1009, sites)
		an := weather.AnalyzeYear(top, s.Links, gen, weather.Config{
			Days: cfg.Days, Seed: opt.Seed + int64(trial)*613,
		})
		res.TrialMedianP99 = append(res.TrialMedianP99, weather.Median(an.P99))
		if trial == 0 {
			gen0 = gen
			res.Analysis = an
			res.MedianBest = weather.Median(an.Best)
			res.MedianP99 = weather.Median(an.P99)
			res.MedianWorst = weather.Median(an.Worst)
			res.MedianFiber = weather.Median(an.Fiber)
			nDays := float64(len(an.FailedLinksPerDay))
			for day := range an.FailedLinksPerDay {
				res.MeanFailedLinks += float64(an.FailedLinksPerDay[day]) / nDays
				res.MeanDegradedLinks += float64(an.DegradedLinksPerDay[day]) / nDays
				res.MeanCapacityFrac += an.MeanCapacityPerDay[day] / nDays
			}
		}
	}

	fprintf(w, "Fig 7 — stretch across city pairs over %d sampled days\n", cfg.Days)
	fprintf(w, "  median stretch: best %.3f | 99th-pctile %.3f | worst %.3f | fiber %.3f\n",
		res.MedianBest, res.MedianP99, res.MedianWorst, res.MedianFiber)
	fprintf(w, "  graded fleet: %.2f failed + %.2f degraded links per interval, mean capacity %.1f%%\n",
		res.MeanFailedLinks, res.MeanDegradedLinks, res.MeanCapacityFrac*100)
	if cfg.Trials > 1 {
		mean, std := meanStd(res.TrialMedianP99)
		fprintf(w, "  Monte-Carlo p99 over %d trials: %.3f ± %.3f\n", cfg.Trials, mean, std)
	}
	fprintf(w, "  (paper: 99th-percentile ≈ best; worst ~1.7x better than fiber)\n")

	if cfg.Graded {
		res.runStormFCT(opt, s, top, tm, gen0, cfg)
		fprintf(w, "  stormiest interval (day %d): TCP flow completion, degraded vs clear sky\n", res.StormDay)
		for _, f := range res.FCTClean {
			fprintf(w, "    %-22s mean %7.1f ms  p99 %7.1f ms  (%d/%d flows)  [clear sky]\n",
				f.Scheme, f.MeanMs, f.P99Ms, f.Completed, f.Flows)
		}
		for _, f := range res.FCTDegraded {
			fprintf(w, "    %-22s mean %7.1f ms  p99 %7.1f ms  (%d/%d flows)\n",
				f.Scheme, f.MeanMs, f.P99Ms, f.Completed, f.Flows)
		}
	}
	return res
}

// runStormFCT replays the worst sampled interval of trial 0 in netsim with
// graded link capacities and measures flow-completion times.
func (res *Fig7Result) runStormFCT(opt Options, s *cisp.Scenario, top *cisp.Topology,
	tm cisp.TrafficMatrix, gen *weather.Generator, cfg Fig7Config) {
	an := res.Analysis
	if len(an.Intervals) == 0 {
		return
	}
	storm := 0
	for day, f := range an.FailedLinksPerDay {
		worse := f > an.FailedLinksPerDay[storm] ||
			(f == an.FailedLinksPerDay[storm] && an.MeanCapacityPerDay[day] < an.MeanCapacityPerDay[storm])
		if worse {
			storm = day
		}
	}
	res.StormDay = storm

	designGbps := opt.simAggregateGbps()
	demand := scaleTo(tm, designGbps)
	plan := s.Provision(top, demand)
	const rateScale = 1.0 / 50

	// Heaviest-demand commodities, capped to keep packet time bounded.
	type dem struct {
		s, t int
		gbps float64
	}
	var dems []dem
	for i := 0; i < len(s.Cities); i++ {
		for j := i + 1; j < len(s.Cities); j++ {
			if demand[i][j] > 0 {
				dems = append(dems, dem{i, j, demand[i][j]})
			}
		}
	}
	sort.SliceStable(dems, func(a, b int) bool { return dems[a].gbps > dems[b].gbps })
	if len(dems) > cfg.FCTFlows {
		dems = dems[:cfg.FCTFlows]
	}
	var comms []netsim.Commodity
	for fi, d := range dems {
		comms = append(comms, netsim.Commodity{
			Flow: fi + 1, Src: d.s, Dst: d.t, Demand: units.Gbps(d.gbps * rateScale),
		})
	}

	field := gen.FieldAt(storm, an.Intervals[storm])
	conds := weather.NewLinkGeometry(top, s.Links).
		Conditions(field, geo.DefaultFrequencyGHz, weather.DefaultFadeMargin, nil)
	failed := make([]bool, len(conds))
	for li, c := range conds {
		failed[li] = c.Failed
	}

	schemes := []netsim.Scheme{netsim.ShortestPath, netsim.MinMaxUtilization, netsim.ThroughputOptimal}
	fctCfg := weather.FCTConfig{FlowBytes: 256 << 10, SimTime: 4}
	// The degraded network keeps the fiber conduits parallel to failed
	// microwave links — that fallback is what the analytic model reroutes
	// over; the clear-sky reference drops them as usual.
	mw, fiberLs := hybridSimLinks(s, top, plan, designGbps, rateScale, 100, failed)
	res.FCTDegraded = weather.MeasureFCT(len(s.Cities), mw, conds, fiberLs, comms, schemes, fctCfg)
	mwClean, fiberClean := hybridSimLinks(s, top, plan, designGbps, rateScale, 100, nil)
	res.FCTClean = weather.MeasureFCT(len(s.Cities), mwClean, nil, fiberClean, comms,
		[]netsim.Scheme{netsim.ShortestPath}, fctCfg)
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(v)))
}
