package te

import "sort"

// waterfill is the scale fallback when an instance is too large for the
// dense simplex: each commodity's demand is divided into cfg.WaterQuanta
// equal quanta and commodities are processed in descending-demand order
// (ties by flow ID); every quantum goes onto the candidate path whose
// bottleneck utilization after placement is smallest (ties: lower delay,
// then candidate order). Fully deterministic, O(C · quanta · K · pathlen),
// and within a quantum of the water-filling optimum on each commodity's
// candidate set.
func waterfill(g *graph, cs []*teComm, base []float64, quanta int) [][]float64 {
	load := make([]float64, len(g.edges))
	copy(load, base)
	order := sortByDemand(cs)
	fracs := make([][]float64, len(cs))
	for _, ci := range order {
		c := cs[ci]
		counts := make([]int, len(c.cands))
		q := c.demand / float64(quanta)
		for k := 0; k < quanta; k++ {
			best, bestU := -1, 0.0
			for pi, cand := range c.cands {
				u := 0.0
				for _, ei := range cand.edges {
					if v := (load[ei] + q) / g.edges[ei].capBps; v > u {
						u = v
					}
				}
				if best < 0 || u < bestU ||
					(u == bestU && cand.Delay < c.cands[best].Delay) {
					best, bestU = pi, u
				}
			}
			counts[best]++
			for _, ei := range c.cands[best].edges {
				load[ei] += q
			}
		}
		f := make([]float64, len(c.cands))
		for pi, n := range counts {
			f[pi] = float64(n) / float64(quanta)
		}
		fracs[ci] = f
	}
	return fracs
}

// sortByDemand returns commodity indices in descending demand order, ties
// broken by ascending flow ID — the deterministic processing order shared
// by the greedy fallback and the block partitioner.
func sortByDemand(cs []*teComm) []int {
	order := make([]int, len(cs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cs[order[a]], cs[order[b]]
		if ca.demand != cb.demand {
			return ca.demand > cb.demand
		}
		return ca.flow < cb.flow
	})
	return order
}
