package ctlplane

import (
	"encoding/json"
	"strings"
	"testing"

	"cisp/internal/netsim"
	"cisp/internal/units"
)

func wireFixture() (down []bool, comms []netsim.Commodity, splits map[int][]netsim.SplitPath, backups []BackupWire) {
	down = []bool{false, true, false}
	comms = []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 1, Demand: units.Gbps(5)},
		{Flow: 2, Src: 0, Dst: 2, Demand: units.Gbps(2.5)},
	}
	splits = map[int][]netsim.SplitPath{
		1: {{Path: []int{0, 1}, Frac: 1}},
		2: {{Path: []int{0, 1, 2}, Frac: 0.75}, {Path: []int{0, 2}, Frac: 0.25}},
	}
	backups = []BackupWire{{Flow: 1, Path: []int{0, 2, 1}}}
	return
}

// snapshotWireGolden pins the exact bytes of the snapshot wire format —
// the contract data-plane consumers parse. Any change to field names,
// ordering, or number formatting must be deliberate and show up here.
const snapshotWireGolden = `{"version":3,"epoch":2,"kind":"frr","time_unix":1234,"method":"warm","mlu":0.75,"down_links":[1],"commodities":[{"flow":1,"src":0,"dst":1,"demand_bps":5000000000,"splits":[{"path":[0,1],"frac":1}]},{"flow":2,"src":0,"dst":2,"demand_bps":2500000000,"splits":[{"path":[0,1,2],"frac":0.75},{"path":[0,2],"frac":0.25}]}],"backups":[{"flow":1,"path":[0,2,1]}]}` + "\n"

func TestSnapshotWireGolden(t *testing.T) {
	down, comms, splits, backups := wireFixture()
	s, err := buildSnapshot(3, 2, KindFRR, 1234, "warm", 0.75, down, comms, splits, backups)
	if err != nil {
		t.Fatalf("buildSnapshot: %v", err)
	}
	if got := string(s.JSON()); got != snapshotWireGolden {
		t.Errorf("snapshot wire golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, snapshotWireGolden)
	}
	// The encoding must round-trip to an equivalent snapshot.
	var rt Snapshot
	if err := json.Unmarshal(s.JSON(), &rt); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if rt.Version != s.Version || rt.Epoch != s.Epoch || rt.Kind != s.Kind ||
		rt.Method != s.Method || rt.MLU != s.MLU || len(rt.Commodities) != len(s.Commodities) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", rt, *s)
	}
}

func TestBuildSnapshotRejectsUnknownFlow(t *testing.T) {
	down, comms, splits, backups := wireFixture()
	splits[99] = []netsim.SplitPath{{Path: []int{0, 1}, Frac: 1}}
	if _, err := buildSnapshot(1, 1, KindInitial, 0, "lp", 0, down, comms, splits, backups); err == nil {
		t.Fatalf("snapshot with split for unknown commodity accepted")
	} else if !strings.Contains(err.Error(), "unknown commodity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSnapshotInstall(t *testing.T) {
	down, comms, splits, backups := wireFixture()
	s, err := buildSnapshot(1, 1, KindInitial, 0, "lp", 0.5, down, comms, splits, backups)
	if err != nil {
		t.Fatalf("buildSnapshot: %v", err)
	}
	links := []netsim.TopoLink{
		{A: 0, B: 1, RateBps: units.Gbps(10)},
		{A: 1, B: 2, RateBps: units.Gbps(10)},
		{A: 0, B: 2, RateBps: units.Gbps(10)},
	}
	sc := &netsim.Scenario{Nodes: 3, Links: links, Comms: comms}
	if err := s.Install(sc); err != nil {
		t.Fatalf("Install on matching scenario: %v", err)
	}
	if len(sc.Splits) != 2 || len(sc.Splits[2]) != 2 {
		t.Fatalf("installed splits %+v, want the snapshot's two flows", sc.Splits)
	}
	// A scenario missing a link the splits traverse must be refused.
	bad := &netsim.Scenario{Nodes: 3, Links: links[:2], Comms: comms}
	if err := s.Install(bad); err == nil {
		t.Fatalf("Install accepted splits traversing a link the scenario lacks")
	}
}
