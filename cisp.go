// Package cisp is the public entry point of the cISP library: a design and
// evaluation toolkit for nearly speed-of-light wide-area networks built from
// point-to-point microwave links layered over the existing fiber Internet,
// reproducing Bhattacherjee et al., "cISP: A Speed-of-Light Internet Service
// Provider" (NSDI 2022).
//
// The pipeline mirrors the paper's three design steps:
//
//  1. Step 1 (feasible hops): a Scenario assembles cities, synthetic terrain
//     and tower infrastructure, runs line-of-sight feasibility over every
//     tower pair in microwave range, and derives the shortest tower-path
//     microwave link (distance and tower cost) for every city pair.
//  2. Step 2 (topology design): DesignGreedy / DesignCISP / DesignExact pick
//     the subset of links to build under a tower budget, minimising
//     traffic-weighted latency stretch over the hybrid microwave+fiber
//     graph.
//  3. Step 3 (capacity): Provision routes a scaled traffic matrix over the
//     design, sizes links in parallel tower series (the k² rule) and prices
//     the build with the paper's cost model.
//
// Scenario construction is deterministic in its seed; all substrates
// (terrain, towers, fiber conduits, weather) are synthetic stand-ins
// calibrated against the paper's published aggregates — see DESIGN.md.
package cisp

import (
	"fmt"

	"cisp/internal/capacity"
	"cisp/internal/cities"
	"cisp/internal/cost"
	"cisp/internal/design"
	"cisp/internal/fiber"
	"cisp/internal/linkbuild"
	"cisp/internal/los"
	"cisp/internal/terrain"
	"cisp/internal/towers"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// Re-exported core types, so downstream users interact with one package.
type (
	// City is a design site (population center or data center).
	City = cities.City
	// Topology is a designed hybrid network.
	Topology = design.Topology
	// Problem is a Step-2 optimization instance.
	Problem = design.Problem
	// TrafficMatrix is a symmetric demand matrix.
	TrafficMatrix = traffic.Matrix
	// Plan is a Step-3 capacity plan.
	Plan = capacity.Plan
	// CostModel prices a plan.
	CostModel = cost.Model
)

// Region selects a geography for scenario construction.
type Region int

// Supported regions.
const (
	US Region = iota
	Europe
)

// Scale trades fidelity for runtime. Small keeps unit tests and benchmarks
// quick; Full approximates the paper's 120-city, ~12k-tower instance.
type Scale int

// Scenario scales.
const (
	ScaleSmall  Scale = iota // ~25 cities, sparse towers (seconds)
	ScaleMedium              // ~60 cities (tens of seconds)
	ScaleFull                // all centers, paper-scale towers (minutes)
)

// ScenarioConfig controls scenario synthesis.
type ScenarioConfig struct {
	Region Region
	Scale  Scale
	Seed   int64

	// MaxCities overrides the scale's city count when > 0.
	MaxCities int

	// Sites, when non-nil, replaces the region's city list entirely (e.g.
	// cities plus data-center sites for the §6.3 traffic models).
	Sites []City

	// LOS overrides the line-of-sight parameters (§6.5 sweeps); zero value
	// means the paper's defaults (11 GHz, K=1.3, 100 km, tower tops).
	LOS los.Params

	// FlatTerrain uses a featureless terrain (useful for controlled tests).
	FlatTerrain bool
}

// Scenario is an assembled Step-1 world: sites, infrastructure, and the
// per-pair microwave/fiber inputs for topology design.
type Scenario struct {
	Config   ScenarioConfig
	Cities   []City
	Terrain  *terrain.Model
	Registry *towers.Registry
	Eval     *los.Evaluator
	Links    *linkbuild.Links
	FiberNet *fiber.Network
}

func (c *ScenarioConfig) cityCount() int {
	if c.MaxCities > 0 {
		return c.MaxCities
	}
	switch c.Scale {
	case ScaleMedium:
		return 60
	case ScaleFull:
		return 1 << 30 // all
	default:
		return 25
	}
}

func (c *ScenarioConfig) towerGen() towers.GenConfig {
	g := towers.GenConfig{Seed: c.Seed + 1}
	switch c.Scale {
	case ScaleMedium:
		g.RuralPerCell = 1.2
		g.CityTowerScale = 10
	case ScaleFull:
		g.RuralPerCell = 1.8
		g.CityTowerScale = 12
	default:
		g.RuralPerCell = 0.7
		g.CityTowerScale = 8
	}
	return g
}

// NewScenario synthesises a scenario: city set, terrain, tower registry,
// Step-1 microwave links, and the fiber conduit network.
func NewScenario(cfg ScenarioConfig) *Scenario {
	var cs []City
	var terr *terrain.Model
	switch cfg.Region {
	case Europe:
		cs = cities.EuropeCenters()
		terr = terrain.Europe(cfg.Seed)
	default:
		cs = cities.USCenters()
		terr = terrain.ContiguousUS(cfg.Seed)
	}
	if cfg.Sites != nil {
		cs = cfg.Sites
	} else if n := cfg.cityCount(); len(cs) > n {
		cs = cs[:n]
	}
	if cfg.FlatTerrain {
		terr = terrain.Flat()
	}
	p := cfg.LOS
	if p.MaxRange == 0 {
		p = los.DefaultParams()
		p.UsableHeightFrac = orDefault(cfg.LOS.UsableHeightFrac, 1)
	}
	ev := los.NewEvaluator(terr, p)
	reg := towers.Generate(cfg.towerGen(), cs)
	links := linkbuild.Build(cs, reg, ev, linkbuild.Config{})
	fn := fiber.Synthesize(fiber.Config{Seed: cfg.Seed + 2}, cs)
	return &Scenario{
		Config: cfg, Cities: cs, Terrain: terr, Registry: reg,
		Eval: ev, Links: links, FiberNet: fn,
	}
}

func orDefault(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

// Problem assembles a Step-2 instance from the scenario's Step-1 outputs,
// the given relative traffic matrix and tower budget.
func (s *Scenario) Problem(tm TrafficMatrix, budgetTowers float64) (*Problem, error) {
	n := len(s.Cities)
	if tm.N() != n {
		return nil, fmt.Errorf("cisp: traffic matrix is %d×%d, scenario has %d cities", tm.N(), tm.N(), n)
	}
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	p := &Problem{
		N: n, Budget: budgetTowers,
		Traffic:  tm,
		Geodesic: mk(), MW: mk(), MWCost: mk(), FiberLat: mk(),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p.Geodesic[i][j] = float64(s.Cities[i].Loc.DistanceTo(s.Cities[j].Loc))
			p.MW[i][j] = float64(s.Links.MWDist(i, j))
			p.MWCost[i][j] = float64(s.Links.TowerCount(i, j))
			p.FiberLat[i][j] = float64(s.FiberNet.LatencyDist(i, j))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// DesignGreedy runs the plain greedy heuristic under the budget.
func (s *Scenario) DesignGreedy(tm TrafficMatrix, budgetTowers float64) (*Topology, error) {
	p, err := s.Problem(tm, budgetTowers)
	if err != nil {
		return nil, err
	}
	return design.Greedy(p, design.GreedyOptions{}), nil
}

// DesignCISP runs the paper's full design method: greedy candidate pruning
// at 2× budget followed by exact selection over the candidates. The
// refinement's branch-and-bound node budget shrinks with problem size (each
// node costs O(candidates·n²)), mirroring the paper's observation that at
// scale the heuristic itself must carry the solution quality.
func (s *Scenario) DesignCISP(tm TrafficMatrix, budgetTowers float64) (*Topology, error) {
	p, err := s.Problem(tm, budgetTowers)
	if err != nil {
		return nil, err
	}
	maxNodes := 5_000_000 / (p.N * p.N)
	if maxNodes < 500 {
		maxNodes = 500
	}
	if maxNodes > 200_000 {
		maxNodes = 200_000
	}
	return design.GreedyILP(p, maxNodes), nil
}

// PopulationTraffic returns the §4 population-product matrix for the
// scenario's cities.
func (s *Scenario) PopulationTraffic() TrafficMatrix {
	return traffic.PopulationProduct(s.Cities)
}

// Provision runs Step 3: route demandGbps (a matrix in Gbps) over the
// topology and size every link.
func (s *Scenario) Provision(top *Topology, demand TrafficMatrix) *Plan {
	return capacity.Provision(top, s.Links, demand, capacity.Options{})
}

// CostPerGB prices a provisioned plan at the given sustained aggregate
// throughput using the paper's §2 cost model.
func (s *Scenario) CostPerGB(plan *Plan, aggregateGbps float64) float64 {
	m := cost.DefaultModel()
	bill := m.Compute(plan.HopInstalls, plan.NewTowers, plan.TowersUsed)
	return m.CostPerGB(bill, aggregateGbps)
}

// GoogleDCSites returns the six publicly known US Google data-center sites
// used by the §6.3 traffic models.
func GoogleDCSites() []City { return cities.GoogleDCs() }

// ScaleTraffic scales a traffic matrix so its total demand equals
// aggregateGbps, returning a copy.
func ScaleTraffic(tm TrafficMatrix, aggregateGbps float64) TrafficMatrix {
	return traffic.ScaleToAggregate(tm, units.Gbps(aggregateGbps))
}

// DefaultBudget returns the paper-proportional tower budget for the
// scenario: the US design uses ~25 towers per city (3,000 towers for 120
// cities).
func (s *Scenario) DefaultBudget() float64 {
	return 25 * float64(len(s.Cities))
}
