package netsim

import (
	"math"
	"testing"

	"cisp/internal/parallel"
)

// agreementScenario is the shared small scenario for the packet/fluid
// cross-validation: a chain 0-1-2 whose 1→2 link bottlenecks two long
// flows while a third flow takes the residual on 0→1.
func agreementScenario() *Scenario {
	return &Scenario{
		Nodes: 3,
		Links: []TopoLink{
			{A: 0, B: 1, RateBps: 20e6, PropDelay: 0.002, QueueCap: 0},
			{A: 1, B: 2, RateBps: 10e6, PropDelay: 0.002, QueueCap: 0},
		},
		Comms: []Commodity{
			{Flow: 1, Src: 0, Dst: 2, Demand: 5e6, Count: 2},
			{Flow: 2, Src: 0, Dst: 1, Demand: 5e6, Count: 1},
		},
		Scheme:    ShortestPath,
		FlowBytes: 4 << 20, // long flows amortize slow start
		Horizon:   60,
	}
}

// packetFluidAgreementTol is the tested cross-engine tolerance: per-flow
// mean rates from the packet engine (real TCP with slow start, ACK
// overhead and queuing) must lie within this relative fraction of the
// fluid engine's max-min prediction on the shared scenario. Measured
// deltas are ~0.1% on the bottlenecked route and ~3.5% on the residual
// route; 10% leaves headroom without letting the engines drift apart.
const packetFluidAgreementTol = 0.10

func TestPacketFluidAgreement(t *testing.T) {
	sc := agreementScenario()
	pkt := sc.Run(PacketMode)
	fl := sc.Run(FluidMode)

	if pkt.Completed != len(pkt.Flows) {
		t.Fatalf("packet mode completed %d/%d flows", pkt.Completed, len(pkt.Flows))
	}
	if fl.Completed != len(fl.Flows) {
		t.Fatalf("fluid mode completed %d/%d flows", fl.Completed, len(fl.Flows))
	}
	pr := pkt.MeanRateByCommodity()
	fr := fl.MeanRateByCommodity()
	for _, flow := range []int{1, 2} {
		p, f := pr[flow], fr[flow]
		if f <= 0 || p <= 0 {
			t.Fatalf("flow %d: non-positive rates packet=%v fluid=%v", flow, p, f)
		}
		if d := math.Abs(p-f) / f; d > packetFluidAgreementTol {
			t.Errorf("flow %d: packet %0.f bps vs fluid %0.f bps — %.0f%% apart (tolerance %.0f%%)",
				flow, p, f, d*100, packetFluidAgreementTol*100)
		}
	}
	// The fluid prediction itself: the long flows split the 10 Mbps
	// bottleneck while they overlap, so their overall mean is between the
	// 5 Mbps share and the 10 Mbps solo rate; the short flow starts at the
	// 10 Mbps residual and speeds up when the bottleneck clears.
	if fr[1] < 5e6-1 || fr[1] > 10e6+1 {
		t.Fatalf("fluid long-route mean rate %v outside [5,10] Mbps", fr[1])
	}
}

func TestScenarioFluidHandlesHugeCounts(t *testing.T) {
	sc := agreementScenario()
	sc.Comms[0].Count = 50_000
	sc.Comms[1].Count = 50_000
	sc.FlowBytes = 100 << 10
	sc.Horizon = 1 // truncated: most flows still running
	res := sc.Run(FluidMode)
	if len(res.Flows) != 100_000 {
		t.Fatalf("flows = %d, want 100k", len(res.Flows))
	}
	// 100k flows on 10 Mbps can't finish in 1 s; incomplete flows must
	// still report a served-bytes mean rate.
	withRate := 0
	for i := range res.Flows {
		if res.Flows[i].MeanRateBps > 0 {
			withRate++
		}
	}
	if withRate == 0 {
		t.Fatal("no incomplete flow reported a mean rate")
	}
}

func TestScenarioStartSpreadDeterministic(t *testing.T) {
	sc := agreementScenario()
	sc.StartSpread = 2
	a := sc.Run(FluidMode)
	b := sc.Run(FluidMode)
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs across identical runs: %+v vs %+v",
				i, a.Flows[i], b.Flows[i])
		}
	}
	// Packet mode must draw the same start times.
	p := sc.Run(PacketMode)
	for i := range p.Flows {
		if p.Flows[i].Start != a.Flows[i].Start {
			t.Fatalf("flow %d start differs across modes: %v vs %v",
				i, p.Flows[i].Start, a.Flows[i].Start)
		}
	}
}

func TestRunManyMatchesSequential(t *testing.T) {
	mk := func() []*Scenario {
		var scs []*Scenario
		for s := 0; s < 6; s++ {
			sc := agreementScenario()
			sc.Seed = int64(s)
			sc.StartSpread = 1
			sc.FlowBytes = 256 << 10
			scs = append(scs, sc)
		}
		return scs
	}
	prev := parallel.SetWorkers(1)
	seq := RunMany(mk(), FluidMode)
	parallel.SetWorkers(0)
	par := RunMany(mk(), FluidMode)
	parallel.SetWorkers(prev)
	for i := range seq {
		if len(seq[i].Flows) != len(par[i].Flows) {
			t.Fatalf("scenario %d: flow count differs", i)
		}
		for j := range seq[i].Flows {
			if seq[i].Flows[j] != par[i].Flows[j] {
				t.Fatalf("scenario %d flow %d: %+v vs %+v — fan-out not deterministic",
					i, j, seq[i].Flows[j], par[i].Flows[j])
			}
		}
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("packet"); err != nil || m != PacketMode {
		t.Fatal("packet parse failed")
	}
	if m, err := ParseMode("fluid"); err != nil || m != FluidMode {
		t.Fatal("fluid parse failed")
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if PacketMode.String() != "packet" || FluidMode.String() != "fluid" || Mode(9).String() != "unknown" {
		t.Fatal("Mode.String broken")
	}
}

// TestCommodityFlowBytesOverride pins the per-commodity payload override:
// a commodity with FlowBytes set transfers that payload (not the scenario
// default) in both engines, and the engines stay within the cross-engine
// rate tolerance on the mixed-size scenario.
func TestCommodityFlowBytesOverride(t *testing.T) {
	sc := &Scenario{
		Nodes: 3,
		Links: []TopoLink{
			{A: 0, B: 1, RateBps: 20e6, PropDelay: 0.002},
			{A: 1, B: 2, RateBps: 10e6, PropDelay: 0.002},
		},
		Comms: []Commodity{
			{Flow: 1, Src: 0, Dst: 2, Demand: 5e6, Count: 1, FlowBytes: 4 << 20},
			{Flow: 2, Src: 0, Dst: 1, Demand: 5e6, Count: 1}, // scenario default
		},
		Scheme:    ShortestPath,
		FlowBytes: 256 << 10,
		Horizon:   60,
	}
	pkt := sc.Run(PacketMode)
	fl := sc.Run(FluidMode)
	for _, r := range []*ScenarioResult{pkt, fl} {
		if r.Completed != 2 {
			t.Fatalf("%s: completed %d/2", r.Mode, r.Completed)
		}
		var big, small float64
		for _, f := range r.Flows {
			switch f.Flow {
			case 1:
				big = f.FCT
			case 2:
				small = f.FCT
			}
		}
		// 4 MB at ≤10 Mbps needs > 3.2 s; 256 KB at ~20 Mbps finishes far
		// faster. If the override were ignored, both would be comparable.
		if big < 8*small {
			t.Fatalf("%s: 4MB flow FCT %.3fs not ≫ 256KB flow FCT %.3fs — FlowBytes override ignored",
				r.Mode, big, small)
		}
	}
	// Cross-engine rate agreement is only meaningful on the long flow —
	// the 256 KB transfer finishes inside slow start, where packet-level
	// burstiness dominates (same reason the shared agreement scenario uses
	// 4 MB payloads).
	pr, fr := pkt.MeanRateByCommodity(), fl.MeanRateByCommodity()
	if d := math.Abs(pr[1]-fr[1]) / fr[1]; d > packetFluidAgreementTol {
		t.Errorf("flow 1: packet %.0f vs fluid %.0f bps — %.0f%% apart", pr[1], fr[1], d*100)
	}
}
