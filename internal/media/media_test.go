package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProvisionMicrowavePaperRules(t *testing.T) {
	mw := Microwave()
	// 500 km at 1 Gbps: 5 hops, one series, 6 towers.
	p := ProvisionLink(mw, 500e3, 1, 100_000)
	if p.Hops != 5 || p.Series != 1 || p.Towers != 6 || p.Installs != 5 {
		t.Fatalf("unexpected plan %+v", p)
	}
	// §3.3's bands: 1-4 Gbps → 2 series; 4-9 → 3.
	if ProvisionLink(mw, 500e3, 3.5, 0).Series != 2 {
		t.Error("3.5 Gbps should need 2 microwave series")
	}
	if ProvisionLink(mw, 500e3, 8.9, 0).Series != 3 {
		t.Error("8.9 Gbps should need 3 microwave series")
	}
}

func TestShortRangeMediaNeedMoreHops(t *testing.T) {
	l := 300e3
	mw := ProvisionLink(Microwave(), l, 1, 0)
	mmw := ProvisionLink(MillimeterWave(), l, 1, 0)
	fso := ProvisionLink(FreeSpaceOptics(), l, 1, 0)
	if !(fso.Hops > mmw.Hops && mmw.Hops > mw.Hops) {
		t.Fatalf("hop ordering wrong: mw=%d mmw=%d fso=%d", mw.Hops, mmw.Hops, fso.Hops)
	}
}

func TestMicrowaveCheapestAtLowBandwidth(t *testing.T) {
	// The paper's §2 premise: microwave is the best range/cost trade-off at
	// cISP's ~1 Gbps per-link operating point.
	plans := Cheapest(500e3, 1, 100_000)
	if plans[0].Medium.Name != "microwave" {
		t.Fatalf("at 1 Gbps the cheapest medium is %s, want microwave", plans[0].Medium.Name)
	}
}

func TestHighBandwidthCrossover(t *testing.T) {
	// §4: "at sufficiently high bandwidth ... shorter-range, but
	// higher-bandwidth technologies like MMW or free-space optics [become]
	// more cost-effective".
	cross := CrossoverGbps(Microwave(), MillimeterWave(), 500e3, 100_000, 1<<20)
	if math.IsInf(cross, 1) {
		t.Fatal("MMW never overtakes microwave — the paper's crossover is missing")
	}
	if cross < 2 {
		t.Fatalf("crossover at %.0f Gbps — microwave should win at low bandwidth", cross)
	}
	t.Logf("MMW overtakes microwave at ~%.0f Gbps on a 500 km link", cross)

	// And the ranking actually flips past the crossover.
	past := Cheapest(500e3, cross*2, 100_000)
	if past[0].Medium.Name == "microwave" {
		t.Fatal("microwave still cheapest past the crossover")
	}
}

func TestCapexMonotoneInBandwidth(t *testing.T) {
	f := func(g1, g2 float64) bool {
		a := math.Mod(math.Abs(g1), 500) + 0.1
		b := math.Mod(math.Abs(g2), 500) + 0.1
		if a > b {
			a, b = b, a
		}
		for _, m := range []Medium{Microwave(), MillimeterWave(), FreeSpaceOptics()} {
			pa := ProvisionLink(m, 400e3, a, 100_000)
			pb := ProvisionLink(m, 400e3, b, 100_000)
			if pb.Capex < pa.Capex-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCapexMonotoneInLength(t *testing.T) {
	f := func(l1, l2 float64) bool {
		a := math.Mod(math.Abs(l1), 2000e3) + 1e3
		b := math.Mod(math.Abs(l2), 2000e3) + 1e3
		if a > b {
			a, b = b, a
		}
		pa := ProvisionLink(Microwave(), a, 10, 100_000)
		pb := ProvisionLink(Microwave(), b, 10, 100_000)
		return pb.Capex >= pa.Capex-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheapestSorted(t *testing.T) {
	plans := Cheapest(800e3, 50, 100_000)
	for i := 1; i < len(plans); i++ {
		if plans[i].Capex < plans[i-1].Capex {
			t.Fatal("Cheapest not sorted")
		}
	}
	if len(plans) != 3 {
		t.Fatalf("expected 3 default media, got %d", len(plans))
	}
}

func TestTinyLink(t *testing.T) {
	p := ProvisionLink(Microwave(), 500, 0.1, 0)
	if p.Hops != 1 || p.Series != 1 {
		t.Fatalf("sub-hop link plan %+v", p)
	}
}

// TestProvisionZeroLength: a colocated link (the CDN backhaul case where a
// replica lands on the origin's site) still provisions a single hop — the
// radio pair exists even when the distance rounds to zero.
func TestProvisionZeroLength(t *testing.T) {
	for _, m := range []Medium{Microwave(), MillimeterWave(), FreeSpaceOptics()} {
		p := ProvisionLink(m, 0, 10, 150_000)
		if p.Hops != 1 {
			t.Fatalf("%s: zero-length link provisioned %d hops, want 1", m.Name, p.Hops)
		}
		if p.Capex <= 0 {
			t.Fatalf("%s: zero-length link has no capex", m.Name)
		}
	}
}

// TestCrossoverNeverBelowCap: when the second medium stays more expensive
// across the whole searched range, the crossover is +Inf — callers treat
// that as "stay on the first medium".
func TestCrossoverNeverBelowCap(t *testing.T) {
	// FSO against itself can never become strictly cheaper.
	fso := FreeSpaceOptics()
	if g := CrossoverGbps(fso, fso, 100e3, 150_000, 1024); !math.IsInf(g, 1) {
		t.Fatalf("self-crossover at %v Gbps, want +Inf", g)
	}
}
