package weather

import (
	"math"
	"math/rand"

	"cisp/internal/geo"
	"cisp/internal/units"
)

// StormCell is a convective precipitation cell with a Gaussian rain-rate
// profile.
type StormCell struct {
	Center geo.Point
	Radius units.Meters // sigma
	PeakMM float64      // peak rain rate, mm/h
}

// FrontalBand is a line of stratiform rain (a weather front).
type FrontalBand struct {
	A, B   geo.Point
	Width  units.Meters // half-width
	RateMM float64      // rain rate inside the band, mm/h
}

// Field is the precipitation state for one interval.
type Field struct {
	Cells []StormCell
	Bands []FrontalBand
}

// RainRate returns the rain rate in mm/h at p (max of overlapping systems).
func (f *Field) RainRate(p geo.Point) float64 {
	rate := 0.0
	for i := range f.Cells {
		c := &f.Cells[i]
		d := p.DistanceTo(c.Center)
		x := units.Ratio(d, c.Radius)
		if x > 3.5 {
			continue
		}
		if r := c.PeakMM * math.Exp(-0.5*x*x); r > rate {
			rate = r
		}
	}
	for i := range f.Bands {
		b := &f.Bands[i]
		if distToSegment(p, b.A, b.B) <= b.Width {
			if b.RateMM > rate {
				rate = b.RateMM
			}
		}
	}
	return rate
}

// Generator produces deterministic synthetic precipitation fields over a
// region, one per (day, interval) pair, with a seasonal convective cycle.
// Storm counts scale with the region's area so the same climatology works
// for a metro-scale test box and the full contiguous US.
type Generator struct {
	Seed           int64
	MinLat, MaxLat float64
	MinLon, MaxLon float64

	// CellsPerMkm2 is the mean number of convective cells per million km²
	// per interval at the seasonal peak. Default 1.
	CellsPerMkm2 float64

	// BandsPerMkm2 is the mean number of frontal bands per million km² per
	// interval. Default 0.08.
	BandsPerMkm2 float64

	SevereDays []int // days with hurricane-like widespread rain
}

// NewRegionGenerator returns a Generator whose bounds cover the given
// sites with a one-degree pad on every side — the Fig 7 convention, shared
// by the experiment and benchmark paths so they sample the same
// climatology for the same network.
func NewRegionGenerator(seed int64, sites []geo.Point) *Generator {
	minLat, maxLat, minLon, maxLon := 90.0, -90.0, 180.0, -180.0
	for _, p := range sites {
		minLat = math.Min(minLat, p.Lat)
		maxLat = math.Max(maxLat, p.Lat)
		minLon = math.Min(minLon, p.Lon)
		maxLon = math.Max(maxLon, p.Lon)
	}
	return &Generator{
		Seed:   seed,
		MinLat: minLat - 1, MaxLat: maxLat + 1,
		MinLon: minLon - 1, MaxLon: maxLon + 1,
	}
}

// areaMkm2 approximates the region's area in millions of km².
func (g *Generator) areaMkm2() float64 {
	latKm := (g.MaxLat - g.MinLat) * 111.2
	midLat := (g.MaxLat + g.MinLat) / 2 * math.Pi / 180
	lonKm := (g.MaxLon - g.MinLon) * 111.2 * math.Cos(midLat)
	a := latKm * lonKm / 1e6
	if a < 0.05 {
		a = 0.05
	}
	return a
}

// FieldAt returns the precipitation field for the given day of year
// (0-364) and half-hour interval (0-47). Deterministic in (Seed, day,
// interval).
func (g *Generator) FieldAt(day, interval int) *Field {
	rng := rand.New(rand.NewSource(g.Seed*100003 + int64(day)*59 + int64(interval)))
	area := g.areaMkm2()
	cellDensity := g.CellsPerMkm2
	if cellDensity == 0 {
		cellDensity = 1
	}
	bandDensity := g.BandsPerMkm2
	if bandDensity == 0 {
		bandDensity = 0.08
	}
	// Seasonal modulation: more convection mid-year (northern summer).
	season := 0.5 + 0.5*math.Sin(2*math.Pi*(float64(day)-80)/365)
	f := &Field{}

	nCells := poisson(rng, cellDensity*area*(0.4+1.2*season))
	for i := 0; i < nCells; i++ {
		// A fifth-power tail: most cells are weak stratiform showers; the
		// intense cores that can break a 30 dB fade margin are rare, as in
		// real convective climatology.
		u := rng.Float64()
		f.Cells = append(f.Cells, StormCell{
			Center: g.randPoint(rng),
			Radius: units.Meters(5e3 + rng.Float64()*25e3),
			PeakMM: 5 + 115*u*u*u*u*u,
		})
	}
	nBands := poisson(rng, bandDensity*area)
	for i := 0; i < nBands; i++ {
		a := g.randPoint(rng)
		b := a.Destination(rng.Float64()*360, units.Meters(300e3+rng.Float64()*700e3))
		// Stratiform band rain stays light enough that a hop inside the
		// band keeps ~0.2 dB/km — failures come from embedded cells.
		f.Bands = append(f.Bands, FrontalBand{
			A: a, B: b,
			Width:  units.Meters(40e3 + rng.Float64()*80e3),
			RateMM: 2 + rng.Float64()*8,
		})
	}
	for _, sd := range g.SevereDays {
		if sd == day {
			// Hurricane-like system: an intense, very large cell.
			f.Cells = append(f.Cells, StormCell{
				Center: g.randPoint(rng),
				Radius: units.Meters(150e3 + rng.Float64()*150e3),
				PeakMM: 80 + rng.Float64()*80,
			})
		}
	}
	return f
}

func (g *Generator) randPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		Lat: g.MinLat + rng.Float64()*(g.MaxLat-g.MinLat),
		Lon: g.MinLon + rng.Float64()*(g.MaxLon-g.MinLon),
	}
}

// PathAttenuation integrates specific attenuation along the great circle
// between two points, sampling every step (total attenuation).
func (f *Field) PathAttenuation(a, b geo.Point, fGHz float64, step units.Meters) units.DB {
	total := a.DistanceTo(b)
	if total == 0 {
		return 0
	}
	n := int(total/step) + 1
	if n < 2 {
		n = 2
	}
	dB := 0.0
	segKm := float64(total.Km()) / float64(n)
	for i := 0; i <= n; i++ {
		p := a.Intermediate(b, float64(i)/float64(n))
		w := 1.0
		if i == 0 || i == n {
			w = 0.5 // trapezoidal ends
		}
		dB += w * SpecificAttenuation(f.RainRate(p), fGHz) * segKm
	}
	return units.DB(dB)
}

// HopFails reports whether the hop a-b exceeds the fade margin under f.
func (f *Field) HopFails(a, b geo.Point, fGHz float64, fadeMargin units.DB) bool {
	return f.PathAttenuation(a, b, fGHz, 2000) > fadeMargin
}

func distToSegment(p, a, b geo.Point) units.Meters {
	const mPerDegLat = 111194.9
	cosLat := math.Cos(a.Lat * math.Pi / 180)
	bx := (b.Lon - a.Lon) * mPerDegLat * cosLat
	by := (b.Lat - a.Lat) * mPerDegLat
	px := (p.Lon - a.Lon) * mPerDegLat * cosLat
	py := (p.Lat - a.Lat) * mPerDegLat
	l2 := bx*bx + by*by
	t := 0.0
	if l2 > 0 {
		t = (px*bx + py*by) / l2
		t = math.Max(0, math.Min(1, t))
	}
	return units.Meters(math.Hypot(px-t*bx, py-t*by))
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
