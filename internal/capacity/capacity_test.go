package capacity

import (
	"sync"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/design"
	"cisp/internal/fiber"
	"cisp/internal/linkbuild"
	"cisp/internal/los"
	"cisp/internal/terrain"
	"cisp/internal/towers"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

var scenarioOnce struct {
	sync.Once
	cs    []cities.City
	links *linkbuild.Links
	top   *design.Topology
}

// scenario builds a small flat-terrain network where microwave links are
// plentiful, designs a topology, and caches everything.
func scenario(t testing.TB) ([]cities.City, *linkbuild.Links, *design.Topology) {
	t.Helper()
	scenarioOnce.Do(func() {
		all := cities.USCenters()
		names := []string{"Chicago, IL", "Indianapolis, IN", "St. Louis, MO", "Columbus, OH", "Detroit, MI"}
		var cs []cities.City
		for _, name := range names {
			c, ok := cities.ByName(all, name)
			if !ok {
				panic("missing city " + name)
			}
			cs = append(cs, c)
		}
		reg := towers.Generate(towers.GenConfig{Seed: 3, RuralPerCell: 3, CityTowerScale: 15}, cs)
		ev := los.NewEvaluator(terrain.Flat(), los.DefaultParams())
		links := linkbuild.Build(cs, reg, ev, linkbuild.Config{})
		fn := fiber.Synthesize(fiber.Config{Seed: 5}, cs)

		n := len(cs)
		p := &design.Problem{
			N: n, Budget: 200,
			Traffic:  traffic.PopulationProduct(cs),
			Geodesic: matrix(n), MW: matrix(n), MWCost: matrix(n), FiberLat: matrix(n),
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p.Geodesic[i][j] = float64(cs[i].Loc.DistanceTo(cs[j].Loc))
				p.MW[i][j] = float64(links.MWDist(i, j))
				p.MWCost[i][j] = float64(links.TowerCount(i, j))
				p.FiberLat[i][j] = float64(fn.LatencyDist(i, j))
			}
		}
		top := design.Greedy(p, design.GreedyOptions{})
		scenarioOnce.cs, scenarioOnce.links, scenarioOnce.top = cs, links, top
	})
	return scenarioOnce.cs, scenarioOnce.links, scenarioOnce.top
}

func matrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

func TestProvisionBasics(t *testing.T) {
	cs, links, top := scenario(t)
	if len(top.Built) == 0 {
		t.Fatal("design built no microwave links")
	}
	demand := traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(10))
	plan := Provision(top, links, demand, Options{})

	if len(plan.LinkLoads) == 0 {
		t.Fatal("no load attributed to any microwave link")
	}
	total := demand.Total()
	for key, load := range plan.LinkLoads {
		if load <= 0 || load.Gbps() > total+1e-9 {
			t.Fatalf("link %v load %v out of range (total %v)", key, load, total)
		}
	}
	if plan.FiberFallback < 0 || plan.FiberFallback.Gbps() > total {
		t.Fatalf("fiber fallback %v out of range", plan.FiberFallback)
	}
}

func TestSeriesRule(t *testing.T) {
	opt := Options{SeriesCap: units.Gbps(1)}
	cases := []struct {
		load float64
		want int
	}{
		{0.2, 1}, {1.0, 1}, {1.01, 2}, {3.9, 2}, {4.01, 3}, {8.9, 3}, {9.5, 4},
	}
	for _, c := range cases {
		if got := seriesFor(units.Gbps(c.load), opt); got != c.want {
			t.Errorf("seriesFor(%v) = %d, want %d (k² rule: 1→1, 1-4→2, 4-9→3 Gbps)", c.load, got, c.want)
		}
	}
}

func TestSeriesRuleNoK2(t *testing.T) {
	opt := Options{SeriesCap: units.Gbps(1), NoK2: true}
	if got := seriesFor(units.Gbps(3.9), opt); got != 4 {
		t.Errorf("without the k² trick 3.9 Gbps needs 4 series, got %d", got)
	}
	// k² always needs no more series than linear.
	for _, load := range []float64{0.5, 1.5, 3, 7, 20, 100} {
		k2 := seriesFor(units.Gbps(load), Options{SeriesCap: units.Gbps(1)})
		lin := seriesFor(units.Gbps(load), opt)
		if k2 > lin {
			t.Errorf("k² used more series (%d) than linear (%d) at %v Gbps", k2, lin, load)
		}
	}
}

func TestHistogramAccounting(t *testing.T) {
	cs, links, top := scenario(t)
	demand := traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(50))
	plan := Provision(top, links, demand, Options{})

	totalHops := 0
	for _, l := range top.Built {
		totalHops += len(links.Hops(l.I, l.J))
	}
	histSum := 0
	for _, c := range plan.HopHistogram {
		histSum += c
	}
	if histSum != totalHops {
		t.Fatalf("histogram covers %d hops, topology has %d", histSum, totalHops)
	}
	// Installs: k per hop, so at least one per hop.
	if plan.HopInstalls < totalHops {
		t.Fatalf("installs %d < hops %d", plan.HopInstalls, totalHops)
	}
	if plan.TowersUsed <= 0 {
		t.Fatal("no towers used")
	}
	if plan.NewTowers < 0 {
		t.Fatal("negative new towers")
	}
}

func TestHigherDemandNeedsMore(t *testing.T) {
	cs, links, top := scenario(t)
	lo := Provision(top, links, traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(2)), Options{})
	hi := Provision(top, links, traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(100)), Options{})
	if hi.HopInstalls < lo.HopInstalls {
		t.Fatalf("100 Gbps needs fewer installs (%d) than 2 Gbps (%d)?", hi.HopInstalls, lo.HopInstalls)
	}
	if hi.TowersUsed < lo.TowersUsed {
		t.Fatalf("100 Gbps uses fewer towers (%d) than 2 Gbps (%d)?", hi.TowersUsed, lo.TowersUsed)
	}
	maxSeriesLo, maxSeriesHi := 0, 0
	for _, k := range lo.Series {
		if k > maxSeriesLo {
			maxSeriesLo = k
		}
	}
	for _, k := range hi.Series {
		if k > maxSeriesHi {
			maxSeriesHi = k
		}
	}
	if maxSeriesHi <= maxSeriesLo {
		t.Fatalf("higher demand should need more parallel series (lo %d, hi %d)", maxSeriesLo, maxSeriesHi)
	}
}

func TestDeterminism(t *testing.T) {
	cs, links, top := scenario(t)
	demand := traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(30))
	a := Provision(top, links, demand, Options{})
	b := Provision(top, links, demand, Options{})
	if a.NewTowers != b.NewTowers || a.TowersUsed != b.TowersUsed || a.HopInstalls != b.HopInstalls {
		t.Fatal("provisioning not deterministic")
	}
}

func TestLoadConservation(t *testing.T) {
	// Every unit of demand is either fiber-fallback or crosses ≥1 MW link.
	cs, links, top := scenario(t)
	demand := traffic.ScaleToAggregate(traffic.PopulationProduct(cs), units.Gbps(10))
	plan := Provision(top, links, demand, Options{})
	// Max link load cannot exceed total demand; sum of loads can (paths
	// traverse multiple links) but the fallback + per-pair attribution must
	// cover the total: check fallback < total given MW links exist.
	if len(top.Built) > 0 && plan.FiberFallback.Gbps() >= demand.Total() {
		t.Fatal("all demand fell back to fiber despite built MW links")
	}
}
