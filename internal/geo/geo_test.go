package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cisp/internal/units"
)

// Chicago and New York, the corridor the paper's HFT discussion centres on.
var (
	chicago = Point{Lat: 41.8781, Lon: -87.6298}
	newYork = Point{Lat: 40.7128, Lon: -74.0060}
)

func TestDistanceChicagoNewYork(t *testing.T) {
	d := chicago.DistanceTo(newYork)
	// Widely-quoted great-circle distance is ~1145 km.
	if d < 1130e3 || d > 1160e3 {
		t.Fatalf("Chicago-NY distance = %.1f km, want ~1145 km", d.Km())
	}
}

func TestDistanceZero(t *testing.T) {
	if d := chicago.DistanceTo(chicago); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		q := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		d1, d2 := p.DistanceTo(q), q.DistanceTo(p)
		return math.Abs(float64(d1-d2)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		p := Point{clampLat(a1), clampLon(o1)}
		q := Point{clampLat(a2), clampLon(o2)}
		r := Point{clampLat(a3), clampLon(o3)}
		// Spherical triangle inequality with small numeric slack.
		return p.DistanceTo(r) <= p.DistanceTo(q)+q.DistanceTo(r)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lon, bearing, distKm float64) bool {
		p := Point{clampLat(lat) * 0.8, clampLon(lon)} // keep away from poles
		b := math.Mod(math.Abs(bearing), 360)
		d := units.Km(math.Mod(math.Abs(distKm), 500)).Meters()
		q := p.Destination(b, d)
		return math.Abs(float64(p.DistanceTo(q)-d)) < 1.0 // within a meter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntermediateEndpoints(t *testing.T) {
	p0 := chicago.Intermediate(newYork, 0)
	p1 := chicago.Intermediate(newYork, 1)
	if chicago.DistanceTo(p0) > 1 {
		t.Errorf("Intermediate(0) = %v, want %v", p0, chicago)
	}
	if newYork.DistanceTo(p1) > 1 {
		t.Errorf("Intermediate(1) = %v, want %v", p1, newYork)
	}
}

func TestIntermediateOnPath(t *testing.T) {
	// Points along the great circle should divide the distance linearly.
	total := chicago.DistanceTo(newYork)
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		m := chicago.Intermediate(newYork, f)
		got := chicago.DistanceTo(m)
		if math.Abs(float64(got)-f*float64(total)) > 5 {
			t.Errorf("Intermediate(%v): distance %f, want %f", f, float64(got), f*float64(total))
		}
	}
}

func TestMidpointEquidistant(t *testing.T) {
	m := chicago.Midpoint(newYork)
	d1, d2 := chicago.DistanceTo(m), newYork.DistanceTo(m)
	if math.Abs(float64(d1-d2)) > 1 {
		t.Fatalf("midpoint not equidistant: %f vs %f", d1, d2)
	}
}

func TestCLatency(t *testing.T) {
	// 299.792458 km should take exactly 1 ms.
	got := CLatency(units.Km(299.792458).Meters())
	if got != time.Millisecond {
		t.Fatalf("CLatency(299792m) = %v, want 1ms", got)
	}
}

func TestFiberLatencyFactor(t *testing.T) {
	d := units.Meters(1000e3)
	got, want := FiberLatency(d), time.Duration(float64(CLatency(d))*1.5)
	if diff := got - want; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Fatalf("FiberLatency = %v, want %v", got, want)
	}
}

func TestFresnelMidPaperFormula(t *testing.T) {
	// Paper: hFres ≈ 8.7 m (D/1km)^1/2 (f/1GHz)^-1/2.
	for _, dKm := range []float64{10, 50, 100} {
		got := FresnelMid(units.Km(dKm).Meters(), 11)
		want := 8.7 * math.Sqrt(dKm) / math.Sqrt(11)
		if math.Abs(float64(got)-want)/want > 0.01 {
			t.Errorf("FresnelMid(%v km) = %.2f m, paper formula gives %.2f m", dKm, got, want)
		}
	}
}

func TestEarthBulgeMidPaperFormula(t *testing.T) {
	// Paper: hEarth ≈ (1m/50K)(D/1km)² with K = 1.3.
	for _, dKm := range []float64{10, 50, 100} {
		got := EarthBulgeMid(units.Km(dKm).Meters(), DefaultRefraction)
		want := dKm * dKm / (50 * DefaultRefraction)
		if math.Abs(float64(got)-want)/want > 0.03 {
			t.Errorf("EarthBulgeMid(%v km) = %.2f m, paper formula gives %.2f m", dKm, got, want)
		}
	}
}

func TestClearance100kmHop(t *testing.T) {
	// A 100 km hop at 11 GHz, K=1.3 needs roughly 150-180 m of clearance at
	// the midpoint (bulge ~154 m + Fresnel ~26 m); sanity-check the order of
	// magnitude that drives the tall-tower requirement.
	c := RequiredClearanceMid(100e3, DefaultFrequencyGHz, DefaultRefraction)
	if c < 150 || c > 210 {
		t.Fatalf("clearance for 100km hop = %.1f m, want 150-210 m", c)
	}
}

func TestFresnelMonotonic(t *testing.T) {
	f := func(aKm, bKm float64) bool {
		a := math.Mod(math.Abs(aKm), 100) + 1
		b := math.Mod(math.Abs(bKm), 100) + 1
		if a > b {
			a, b = b, a
		}
		return FresnelMid(units.Km(a).Meters(), 11) <= FresnelMid(units.Km(b).Meters(), 11)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStretch(t *testing.T) {
	if s := Stretch(150, 100); s != 1.5 {
		t.Errorf("Stretch = %v, want 1.5", s)
	}
	if s := Stretch(100, 0); !math.IsInf(s, 1) {
		t.Errorf("Stretch with zero geodesic = %v, want +Inf", s)
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{-90, -180}, true},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 40, Lon: -100}
	north := p.InitialBearingTo(Point{Lat: 41, Lon: -100})
	if math.Abs(north-0) > 0.5 && math.Abs(north-360) > 0.5 {
		t.Errorf("northward bearing = %v, want ~0", north)
	}
	east := p.InitialBearingTo(Point{Lat: 40, Lon: -99})
	if math.Abs(east-90) > 1 {
		t.Errorf("eastward bearing = %v, want ~90", east)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 85) }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 175) }
