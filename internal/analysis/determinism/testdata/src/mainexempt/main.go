// Command mainexempt is golden testdata: package main (cmd/, examples/)
// may read the wall clock and pick default seeds, so nothing here is
// reported.
package main

import (
	"math/rand"
	"time"
)

func main() {
	_ = rand.Intn(10) // package main is exempt: no finding
	_ = time.Now()    // package main is exempt: no finding
}
