package weather

import (
	"cisp/internal/netsim"
)

// FCTConfig tunes the packet-level validation of a degraded interval.
type FCTConfig struct {
	FlowBytes int     // payload per TCP flow (default 256 KB)
	SimTime   float64 // simulated seconds before the drain (default 5)
	QueueCap  int     // per-link queue, packets (default 100)
}

func (c *FCTConfig) setDefaults() {
	if c.FlowBytes == 0 {
		c.FlowBytes = 256 << 10
	}
	if c.SimTime == 0 {
		c.SimTime = 5
	}
	if c.QueueCap == 0 {
		c.QueueCap = 100
	}
}

// FCTResult is one routing scheme's flow-completion-time measurement over
// a degraded interval.
type FCTResult struct {
	Scheme    string
	MeanMs    float64 // mean FCT over completed flows, ms
	P99Ms     float64 // 99th-percentile FCT, ms
	Completed int     // flows finished before the drain deadline
	Flows     int     // flows offered (including ones the scheme failed to route)
}

// MeasureFCT instantiates the degraded-capacity hybrid network in netsim
// and measures TCP flow-completion times under each routing scheme: one
// TCP flow per commodity, microwave link rates scaled by their
// adaptive-modulation capacity fraction (failed links are omitted
// entirely), fiber links carried over unchanged. conds[i] grades
// mwLinks[i]; a nil conds leaves every link at clear-sky rate. The
// simulation is deterministic — no randomness enters after routing.
func MeasureFCT(nNodes int, mwLinks []netsim.TopoLink, conds []LinkCondition,
	fiberLinks []netsim.TopoLink, comms []netsim.Commodity,
	schemes []netsim.Scheme, cfg FCTConfig) []FCTResult {
	cfg.setDefaults()

	// Grade the microwave layer once; the per-scheme runs share it. Links
	// graded to zero rate (failed or deep-faded) are omitted entirely —
	// packet simulation has no use for a 0 bps link.
	var graded []netsim.TopoLink
	for _, l := range GradedRates(mwLinks, conds) {
		if l.RateBps <= 0 {
			continue
		}
		l.QueueCap = cfg.QueueCap
		graded = append(graded, l)
	}

	var out []FCTResult
	for _, scheme := range schemes {
		var sim netsim.Simulator
		nw := netsim.NewNetwork(&sim, nNodes)
		links := append(append([]netsim.TopoLink(nil), graded...), fiberLinks...)
		netsim.BuildTopology(nw, links)
		paths := netsim.InstallRoutes(nw, links, comms, scheme)

		var fcts []float64
		for _, c := range comms {
			path := paths[c.Flow]
			if path == nil {
				// Unroutable on the degraded topology: counts against
				// Flows so the shortfall is visible in Completed/Flows.
				continue
			}
			// TCP needs the reverse ACK path too; links are duplex, so the
			// reversed data path is always available.
			rev := make([]int, len(path))
			for i, v := range path {
				rev[len(path)-1-i] = v
			}
			nw.SetFlowPath(c.Flow, rev)
			conn := &netsim.TCPConn{
				Net: nw, Flow: c.Flow, Src: c.Src, Dst: c.Dst,
				FlowSize: cfg.FlowBytes,
				Done:     func(fct float64) { fcts = append(fcts, fct) },
			}
			conn.Start()
		}
		sim.Run(cfg.SimTime)
		res := FCTResult{
			Scheme:    scheme.String(),
			Completed: len(fcts),
			Flows:     len(comms),
		}
		if len(fcts) > 0 {
			sum := 0.0
			for _, f := range fcts {
				sum += f
			}
			res.MeanMs = sum / float64(len(fcts)) * 1000
			res.P99Ms = netsim.Percentile(fcts, 99) * 1000
		}
		out = append(out, res)
	}
	return out
}
