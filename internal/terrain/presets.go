package terrain

import "cisp/internal/geo"

// ContiguousUS returns the synthetic terrain standing in for the NASA
// SRTM/NED coverage of the contiguous United States. Range geometries are
// coarse tracings of the real crests; heights are above the base surface.
func ContiguousUS(seed int64) *Model {
	ridges := []Ridge{
		{ // Rocky Mountains: Montana down the Front Range into New Mexico.
			Crest: []geo.Point{
				{Lat: 48.8, Lon: -114.2}, {Lat: 46.0, Lon: -112.5},
				{Lat: 43.8, Lon: -110.0}, {Lat: 40.5, Lon: -106.5},
				{Lat: 38.5, Lon: -106.0}, {Lat: 35.8, Lon: -105.8},
			},
			Height: 2100, Width: 140e3,
		},
		{ // Sierra Nevada.
			Crest: []geo.Point{
				{Lat: 40.3, Lon: -121.2}, {Lat: 38.0, Lon: -119.3},
				{Lat: 36.3, Lon: -118.3},
			},
			Height: 2300, Width: 55e3,
		},
		{ // Cascades.
			Crest: []geo.Point{
				{Lat: 48.8, Lon: -121.4}, {Lat: 45.5, Lon: -121.8},
				{Lat: 43.0, Lon: -122.1}, {Lat: 41.2, Lon: -122.3},
			},
			Height: 1700, Width: 65e3,
		},
		{ // Wasatch / central Utah ranges.
			Crest: []geo.Point{
				{Lat: 41.5, Lon: -111.8}, {Lat: 39.5, Lon: -111.5},
			},
			Height: 1500, Width: 60e3,
		},
		{ // Appalachians: New England down into Georgia.
			Crest: []geo.Point{
				{Lat: 44.2, Lon: -71.5}, {Lat: 42.0, Lon: -74.5},
				{Lat: 40.5, Lon: -77.5}, {Lat: 38.0, Lon: -79.8},
				{Lat: 36.0, Lon: -81.7}, {Lat: 34.8, Lon: -84.0},
			},
			Height: 850, Width: 110e3,
		},
	}
	return New(seed, ridges, usBase, 90, 0.7, 28)
}

// usBase is the smooth base surface of the contiguous US: near sea level on
// the coasts, the interior plains rising westward from the Mississippi to the
// Colorado high plains (~1600 m), and the Great Basin plateau in the west.
func usBase(p geo.Point) float64 {
	switch {
	case p.Lon > -80: // eastern seaboard / piedmont
		return 100
	case p.Lon > -95: // interior lowlands
		return 150 + (-80-p.Lon)/15*150 // 150 → 300 m
	case p.Lon > -105: // Great Plains ramp
		return 300 + (-95-p.Lon)/10*1300 // 300 → 1600 m
	case p.Lon > -119: // intermountain plateau / Great Basin
		return 1400
	default: // Pacific coastal states beyond the Sierra/Cascade crest
		return 150
	}
}

// Europe returns the synthetic terrain for the European cISP study (Fig 8).
func Europe(seed int64) *Model {
	ridges := []Ridge{
		{ // Alps.
			Crest: []geo.Point{
				{Lat: 44.2, Lon: 7.0}, {Lat: 45.9, Lon: 7.7},
				{Lat: 46.5, Lon: 9.8}, {Lat: 47.1, Lon: 11.6},
				{Lat: 46.5, Lon: 13.8},
			},
			Height: 2500, Width: 110e3,
		},
		{ // Pyrenees.
			Crest: []geo.Point{
				{Lat: 43.0, Lon: -1.5}, {Lat: 42.6, Lon: 0.7},
				{Lat: 42.4, Lon: 2.4},
			},
			Height: 1900, Width: 55e3,
		},
		{ // Carpathians.
			Crest: []geo.Point{
				{Lat: 49.3, Lon: 20.0}, {Lat: 48.0, Lon: 24.0},
				{Lat: 46.0, Lon: 25.3}, {Lat: 45.4, Lon: 24.0},
			},
			Height: 1300, Width: 90e3,
		},
		{ // Apennines.
			Crest: []geo.Point{
				{Lat: 44.2, Lon: 9.9}, {Lat: 42.5, Lon: 13.3},
				{Lat: 40.8, Lon: 15.3}, {Lat: 39.2, Lon: 16.3},
			},
			Height: 1200, Width: 55e3,
		},
		{ // Scandinavian mountains.
			Crest: []geo.Point{
				{Lat: 59.5, Lon: 7.5}, {Lat: 62.0, Lon: 9.5},
				{Lat: 65.0, Lon: 14.0},
			},
			Height: 1300, Width: 95e3,
		},
		{ // Dinaric Alps.
			Crest: []geo.Point{
				{Lat: 45.8, Lon: 14.8}, {Lat: 43.9, Lon: 17.5},
				{Lat: 42.6, Lon: 19.8},
			},
			Height: 1300, Width: 70e3,
		},
	}
	return New(seed, ridges, europeBase, 80, 0.6, 25)
}

// europeBase: low coastal plains, a modest central-European upland belt.
func europeBase(p geo.Point) float64 {
	switch {
	case p.Lat > 52: // North European Plain and Scandinavia lowlands
		return 60
	case p.Lat > 47: // central uplands
		return 250
	case p.Lat > 43: // alpine forelands / Iberia meseta
		return 400
	default:
		return 250
	}
}
