package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry's instruments in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, samples
// sorted by labels, counters as <name> totals, gauges as values, and
// histograms as cumulative le-buckets plus _sum and _count. Output is
// deterministic for a given registry state.
func WriteProm(w io.Writer, r *Registry) error {
	s := r.snapshot()
	type family struct {
		name  string
		kind  string
		lines []string
	}
	byName := map[string]*family{}
	var order []string
	fam := func(name, kind string) *family {
		f := byName[name]
		if f == nil {
			f = &family{name: name, kind: kind}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, c := range s.counters {
		f := fam(c.name, "counter")
		f.lines = append(f.lines, c.name+renderLabels(c.labels, "", "")+" "+strconv.FormatInt(c.Value(), 10))
	}
	for _, g := range s.gauges {
		f := fam(g.name, "gauge")
		f.lines = append(f.lines, g.name+renderLabels(g.labels, "", "")+" "+formatFloat(g.Value()))
	}
	for _, h := range s.hists {
		f := fam(h.name, "histogram")
		cum := int64(0)
		for i, up := range h.uppers {
			cum += h.counts[i].Load()
			f.lines = append(f.lines, h.name+"_bucket"+renderLabels(h.labels, "le", formatFloat(up))+" "+strconv.FormatInt(cum, 10))
		}
		cum += h.inf.Load()
		f.lines = append(f.lines, h.name+"_bucket"+renderLabels(h.labels, "le", "+Inf")+" "+strconv.FormatInt(cum, 10))
		f.lines = append(f.lines, h.name+"_sum"+renderLabels(h.labels, "", "")+" "+formatFloat(h.Sum()))
		f.lines = append(f.lines, h.name+"_count"+renderLabels(h.labels, "", "")+" "+strconv.FormatInt(h.Count(), 10))
	}
	sort.Strings(order)
	for _, name := range order {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, l := range f.lines {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders a canonical label list (plus an optional extra
// pair, for histogram le) as {k="v",...}, or "" when empty.
func renderLabels(labels []string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the registry's instruments as a JSON document with
// deterministic field and element order — counters, gauges and
// histograms each sorted by (name, labels). Bucket upper bounds are
// rendered as strings so the +Inf bucket survives JSON.
func WriteJSON(w io.Writer, r *Registry) error {
	s := r.snapshot()
	var b strings.Builder
	b.WriteString("{\n  \"counters\": [")
	for i, c := range s.counters {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    {\"name\": " + strconv.Quote(c.name) + ", \"labels\": " + jsonLabels(c.labels) + ", \"value\": " + strconv.FormatInt(c.Value(), 10) + "}")
	}
	b.WriteString("\n  ],\n  \"gauges\": [")
	for i, g := range s.gauges {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    {\"name\": " + strconv.Quote(g.name) + ", \"labels\": " + jsonLabels(g.labels) + ", \"value\": " + jsonFloat(g.Value()) + "}")
	}
	b.WriteString("\n  ],\n  \"histograms\": [")
	for i, h := range s.hists {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    {\"name\": " + strconv.Quote(h.name) + ", \"labels\": " + jsonLabels(h.labels) + ", \"buckets\": [")
		for j, up := range h.uppers {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString("{\"le\": " + strconv.Quote(formatFloat(up)) + ", \"count\": " + strconv.FormatInt(h.counts[j].Load(), 10) + "}")
		}
		if len(h.uppers) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("{\"le\": \"+Inf\", \"count\": " + strconv.FormatInt(h.inf.Load(), 10) + "}")
		b.WriteString("], \"sum\": " + jsonFloat(h.Sum()) + ", \"count\": " + strconv.FormatInt(h.Count(), 10) + "}")
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonLabels renders a canonical label list as a JSON object.
func jsonLabels(labels []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Quote(labels[i]) + ": " + strconv.Quote(labels[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// jsonFloat renders a float as JSON (Inf/NaN, illegal in JSON, as null).
func jsonFloat(v float64) string {
	s := formatFloat(v)
	if strings.ContainsAny(s, "IN") { // +Inf, -Inf, NaN
		return "null"
	}
	return s
}
