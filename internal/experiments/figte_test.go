package experiments

import (
	"testing"

	"cisp"
	"cisp/internal/traffic"
)

// teTestOpt keeps the TE experiment tests fast: a 10-city designed
// backbone is enough to exercise design → provision → TE → both engines.
func teTestOpt() Options {
	return Options{Scale: cisp.ScaleSmall, Seed: 1, MaxCities: 10}
}

// TestDesignedTETopologyParallelFiber: conduits parallel to built
// microwave links must survive as midpoint-node detours, and the combined
// link list must be a simple graph (netsim and te both require it).
func TestDesignedTETopologyParallelFiber(t *testing.T) {
	tt, err := DesignedTETopology(teTestOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Mw) == 0 || len(tt.Fiber) == 0 {
		t.Fatalf("degenerate topology: %d mw, %d fiber links", len(tt.Mw), len(tt.Fiber))
	}
	if tt.Nodes <= len(tt.Sites) {
		t.Fatalf("no fiber midpoints: nodes = %d, sites = %d (expected parallel conduits)", tt.Nodes, len(tt.Sites))
	}
	seen := map[[2]int]bool{}
	for _, l := range tt.Links() {
		key := [2]int{l.A, l.B}
		if seen[key] {
			t.Fatalf("duplicate link %v", key)
		}
		seen[key] = true
		if l.A < 0 || l.A >= tt.Nodes || l.B < 0 || l.B >= tt.Nodes {
			t.Fatalf("link %v outside node range [0,%d)", key, tt.Nodes)
		}
	}
	// Every midpoint must be exactly a degree-2 transit node.
	deg := make([]int, tt.Nodes)
	for _, l := range tt.Links() {
		deg[l.A]++
		deg[l.B]++
	}
	for v := len(tt.Sites); v < tt.Nodes; v++ {
		if deg[v] != 2 {
			t.Fatalf("midpoint %d has degree %d, want 2", v, deg[v])
		}
	}
}

// TestDemandCommoditiesStableIDs: commodity flow IDs must not depend on
// the flow total, so one TE solution serves both the clamped packet replay
// and the full fluid replay.
func TestDemandCommoditiesStableIDs(t *testing.T) {
	m := traffic.New(5)
	m.Set(0, 1, 5)
	m.Set(0, 2, 3)
	m.Set(1, 3, 2)
	m.Set(2, 4, 0.1)
	big := DemandCommodities(m, 1000, teFlowBytes, teStartSpread)
	small := DemandCommodities(m, 10, teFlowBytes, teStartSpread)
	byFlow := map[int][2]int{}
	for _, c := range big {
		byFlow[c.Flow] = [2]int{c.Src, c.Dst}
	}
	for _, c := range small {
		if got, ok := byFlow[c.Flow]; !ok || got != [2]int{c.Src, c.Dst} {
			t.Fatalf("flow %d maps to %v in the small replay but %v in the big one", c.Flow, [2]int{c.Src, c.Dst}, got)
		}
	}
	// Demands reflect the actual offered load.
	for _, c := range big {
		want := float64(c.Count) * float64(teFlowBytes) * 8 / teStartSpread
		if float64(c.Demand) != want {
			t.Fatalf("flow %d demand %v, want %v", c.Flow, c.Demand, want)
		}
	}
	total := 0
	for _, c := range big {
		total += c.Count
	}
	if total != 1000 {
		t.Fatalf("big replay apportioned %d flows, want 1000", total)
	}
}

// TestFigTEAcceptance is the PR's headline criterion: on a seeded hotspot
// over a designed backbone, TE splits achieve strictly lower measured MLU
// than shortest-path routing and no worse p99 FCT — in both engine modes.
// The rain workload must show the same MLU ordering.
func TestFigTEAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: TE comparison across schemes and engines")
	}
	// 6000 flows push the hotspot links past the TE utilization hinge; at
	// lighter loads TE deliberately collapses onto shortest paths (that
	// behavior is pinned by te.TestSolvePrefersShortPathWhenUncongested).
	res := FigTE(teTestOpt(), 6000)
	if res == nil {
		t.Fatal("FigTE returned nil")
	}
	for _, mode := range []string{"packet", "fluid"} {
		sp := res.Row("hotspot", "shortest-path", mode)
		te := res.Row("hotspot", teSchemeName, mode)
		if sp == nil || te == nil {
			t.Fatalf("%s: missing hotspot rows", mode)
		}
		if te.MLU >= sp.MLU {
			t.Errorf("%s hotspot: TE MLU %.4f not strictly below shortest-path %.4f", mode, te.MLU, sp.MLU)
		}
		if te.P99FCTMs > sp.P99FCTMs {
			t.Errorf("%s hotspot: TE p99 FCT %.1fms worse than shortest-path %.1fms", mode, te.P99FCTMs, sp.P99FCTMs)
		}
		if te.Completed != te.Flows {
			t.Errorf("%s hotspot: TE completed %d/%d flows", mode, te.Completed, te.Flows)
		}
		if te.PredMLU <= 0 {
			t.Errorf("%s hotspot: no predicted MLU exported", mode)
		}

		spRain := res.Row("rain", "shortest-path", mode)
		teRain := res.Row("rain", teSchemeName, mode)
		if spRain == nil || teRain == nil {
			t.Fatalf("%s: missing rain rows", mode)
		}
		if teRain.MLU >= spRain.MLU {
			t.Errorf("%s rain: TE MLU %.4f not below shortest-path %.4f", mode, teRain.MLU, spRain.MLU)
		}
	}
}
