package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks a single inline source file (no imports) and
// runs the given analyzers over it.
func checkSource(t *testing.T, src string, analyzers []*Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	findings, err := RunUnit(fset, []*ast.File{f}, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("RunUnit: %v", err)
	}
	return findings
}

// reportReturns is a toy analyzer reporting every return statement.
var reportReturns = &Analyzer{
	Name: "toyreturns",
	Doc:  "reports every return statement (framework test fixture)",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionSameLine(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\treturn 1 //lint:allow toyreturns -- framework test: sanctioned return\n}\n"
	if got := checkSource(t, src, []*Analyzer{reportReturns}); len(got) != 0 {
		t.Fatalf("want suppressed, got %v", got)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\t//lint:allow toyreturns -- framework test: sanctioned return\n\treturn 1\n}\n"
	if got := checkSource(t, src, []*Analyzer{reportReturns}); len(got) != 0 {
		t.Fatalf("want suppressed, got %v", got)
	}
}

func TestSuppressionWrongAnalyzerDoesNotCover(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\treturn 1 //lint:allow otherthing -- framework test: names the wrong analyzer\n}\n"
	got := checkSource(t, src, []*Analyzer{reportReturns})
	if len(got) != 1 || got[0].Analyzer != "toyreturns" {
		t.Fatalf("want 1 unsuppressed toyreturns finding, got %v", got)
	}
}

func TestMalformedSuppressionReported(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\treturn 1 //lint:allow toyreturns\n}\n"
	got := checkSource(t, src, []*Analyzer{reportReturns})
	if len(got) != 2 {
		t.Fatalf("want 2 findings (lintallow + unsuppressed), got %v", got)
	}
	if got[0].Analyzer != "lintallow" && got[1].Analyzer != "lintallow" {
		t.Fatalf("missing lintallow finding in %v", got)
	}
	foundOriginal := false
	for _, f := range got {
		if f.Analyzer == "toyreturns" {
			foundOriginal = true
		}
		if f.Analyzer == "lintallow" && !strings.Contains(f.Message, "justification") {
			t.Fatalf("lintallow message should demand a justification: %q", f.Message)
		}
	}
	if !foundOriginal {
		t.Fatalf("a malformed directive must not suppress the finding: %v", got)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\tif true {\n\t\treturn 2\n\t}\n\treturn 1\n}\n"
	got := checkSource(t, src, []*Analyzer{reportReturns})
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %v", got)
	}
	if got[0].Pos.Line > got[1].Pos.Line {
		t.Fatalf("findings not sorted: %v", got)
	}
}

// TestRunUnitAllKeepsSuppressed pins the -json contract's raw side:
// RunUnitAll carries suppressed findings with the flag set instead of
// dropping them, so machine consumers can see what //lint:allow hides.
func TestRunUnitAllKeepsSuppressed(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\treturn 1 //lint:allow toyreturns -- framework test: sanctioned return\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	got, err := RunUnitAll(fset, []*ast.File{f}, pkg, info, []*Analyzer{reportReturns}, nil)
	if err != nil {
		t.Fatalf("RunUnitAll: %v", err)
	}
	if len(got) != 1 || !got[0].Suppressed || got[0].Analyzer != "toyreturns" {
		t.Fatalf("want 1 suppressed toyreturns finding, got %v", got)
	}
}

// TestWriteJSONGolden pins the exact bytes of the cisplint -json encoding:
// field names, order, indentation, and the trailing newline are all part
// of the machine-readable contract.
func TestWriteJSONGolden(t *testing.T) {
	findings := []Finding{
		{Analyzer: "toyreturns", Pos: token.Position{Filename: "a/b.go", Line: 3, Column: 2}, Message: "return statement"},
		{Analyzer: "unitcheck", Pos: token.Position{Filename: "c.go", Line: 9, Column: 14}, Message: "+ mixes length and time operands", Suppressed: true},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := "[\n" +
		"\t{\n" +
		"\t\t\"file\": \"a/b.go\",\n" +
		"\t\t\"line\": 3,\n" +
		"\t\t\"column\": 2,\n" +
		"\t\t\"analyzer\": \"toyreturns\",\n" +
		"\t\t\"message\": \"return statement\",\n" +
		"\t\t\"suppressed\": false\n" +
		"\t},\n" +
		"\t{\n" +
		"\t\t\"file\": \"c.go\",\n" +
		"\t\t\"line\": 9,\n" +
		"\t\t\"column\": 14,\n" +
		"\t\t\"analyzer\": \"unitcheck\",\n" +
		"\t\t\"message\": \"+ mixes length and time operands\",\n" +
		"\t\t\"suppressed\": true\n" +
		"\t}\n" +
		"]\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteJSON output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(empty): %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("WriteJSON(empty) = %q, want %q", got, "[]\n")
	}
}

func TestHotpathMarked(t *testing.T) {
	src := "package p\n\n// doc text\n//cisp:hotpath\nfunc hot() {}\n\n// plain doc\nfunc cold() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold *ast.FuncDecl
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			switch fn.Name.Name {
			case "hot":
				hot = fn
			case "cold":
				cold = fn
			}
		}
	}
	if !HotpathMarked(hot) {
		t.Error("hot() should be marked")
	}
	if HotpathMarked(cold) {
		t.Error("cold() should not be marked")
	}
}
