package terrain

import (
	"math"
	"testing"
	"testing/quick"

	"cisp/internal/geo"
)

func TestFlatModel(t *testing.T) {
	m := Flat()
	p := geo.Point{Lat: 40, Lon: -100}
	if e := m.Elevation(p); e != 0 {
		t.Errorf("flat elevation = %v, want 0", e)
	}
	if c := m.ClutterHeight(p); c != 0 {
		t.Errorf("flat clutter = %v, want 0", c)
	}
}

func TestDeterminism(t *testing.T) {
	m1 := ContiguousUS(42)
	m2 := ContiguousUS(42)
	p := geo.Point{Lat: 39.7, Lon: -104.9} // Denver
	if m1.Elevation(p) != m2.Elevation(p) {
		t.Fatal("same seed must give identical terrain")
	}
	m3 := ContiguousUS(43)
	same := 0
	for _, q := range []geo.Point{
		{Lat: 40, Lon: -100}, {Lat: 35, Lon: -90},
		{Lat: 45, Lon: -120}, {Lat: 33, Lon: -84},
	} {
		if m1.Elevation(q) == m3.Elevation(q) {
			same++
		}
	}
	if same == 4 {
		t.Fatal("different seeds should differ somewhere")
	}
}

func TestUSGeographicShape(t *testing.T) {
	m := ContiguousUS(1)
	denver := m.Elevation(geo.Point{Lat: 39.74, Lon: -104.99})
	chicago := m.Elevation(geo.Point{Lat: 41.88, Lon: -87.63})
	rockies := m.Elevation(geo.Point{Lat: 39.5, Lon: -106.2})
	nyc := m.Elevation(geo.Point{Lat: 40.71, Lon: -74.01})
	if denver < 1000 {
		t.Errorf("Denver elevation = %.0f m, want >1000 (mile-high)", denver)
	}
	if chicago > 600 {
		t.Errorf("Chicago elevation = %.0f m, want lowland (<600)", chicago)
	}
	if rockies < 2000 {
		t.Errorf("Rockies crest = %.0f m, want >2000", rockies)
	}
	if rockies <= chicago || rockies <= nyc {
		t.Errorf("Rockies (%.0f) must tower over Chicago (%.0f) and NYC (%.0f)", rockies, chicago, nyc)
	}
}

func TestEuropeGeographicShape(t *testing.T) {
	m := Europe(1)
	alps := m.Elevation(geo.Point{Lat: 46.5, Lon: 9.8})
	berlin := m.Elevation(geo.Point{Lat: 52.52, Lon: 13.40})
	if alps < 2000 {
		t.Errorf("Alps = %.0f m, want >2000", alps)
	}
	if berlin > 500 {
		t.Errorf("Berlin = %.0f m, want lowland", berlin)
	}
}

func TestElevationNonNegative(t *testing.T) {
	m := ContiguousUS(7)
	f := func(lat, lon float64) bool {
		p := geo.Point{Lat: 25 + math.Mod(math.Abs(lat), 24), Lon: -125 + math.Mod(math.Abs(lon), 58)}
		return m.Elevation(p) >= 0 && m.ClutterHeight(p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSurfaceIncludesClutter(t *testing.T) {
	m := ContiguousUS(7)
	f := func(lat, lon float64) bool {
		p := geo.Point{Lat: 25 + math.Mod(math.Abs(lat), 24), Lon: -125 + math.Mod(math.Abs(lon), 58)}
		return m.SurfaceHeight(p) >= m.Elevation(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfile(t *testing.T) {
	m := ContiguousUS(3)
	a := geo.Point{Lat: 41.88, Lon: -87.63}  // Chicago
	b := geo.Point{Lat: 39.74, Lon: -104.99} // Denver
	prof := m.Profile(a, b, 1000)
	if len(prof) < 100 {
		t.Fatalf("profile has %d samples, want many at 1km step", len(prof))
	}
	if prof[0].Dist != 0 {
		t.Errorf("first sample dist = %v, want 0", prof[0].Dist)
	}
	total := a.DistanceTo(b)
	last := prof[len(prof)-1].Dist
	if math.Abs(last-float64(total)) > 1 {
		t.Errorf("last sample dist = %v, want %v", last, total)
	}
	// Distances strictly increasing.
	for i := 1; i < len(prof); i++ {
		if prof[i].Dist <= prof[i-1].Dist {
			t.Fatalf("profile distances not increasing at %d", i)
		}
	}
	// The western end should be higher than the eastern end on average.
	n := len(prof)
	east, west := 0.0, 0.0
	for i := 0; i < n/4; i++ {
		east += prof[i].Ground
		west += prof[n-1-i].Ground
	}
	if west <= east {
		t.Errorf("Chicago→Denver profile should rise westward (east=%.0f west=%.0f)", east, west)
	}
}

func TestProfileShortHop(t *testing.T) {
	m := Flat()
	a := geo.Point{Lat: 40, Lon: -100}
	b := geo.Point{Lat: 40, Lon: -100.001}
	prof := m.Profile(a, b, 5000) // step longer than the hop
	if len(prof) < 3 {
		t.Fatalf("short profile has %d samples, want >=3 (endpoints + midpoint)", len(prof))
	}
}

func TestRidgeFallsOffWithDistance(t *testing.T) {
	r := Ridge{Crest: []geo.Point{{Lat: 40, Lon: -106}, {Lat: 42, Lon: -106}}, Height: 2000, Width: 100e3}
	at := r.contribution(geo.Point{Lat: 41, Lon: -106})
	near := r.contribution(geo.Point{Lat: 41, Lon: -105})
	far := r.contribution(geo.Point{Lat: 41, Lon: -101})
	if !(at > near && near > far) {
		t.Fatalf("ridge contribution should decay: at=%f near=%f far=%f", at, near, far)
	}
	if far > 1 {
		t.Errorf("contribution 400+ km away = %f, want ~0", far)
	}
}

func TestValueNoiseRange(t *testing.T) {
	f := func(x, y float64, seed int64) bool {
		v := valueNoise(math.Mod(x, 1e6), math.Mod(y, 1e6), seed)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkElevation(b *testing.B) {
	m := ContiguousUS(1)
	p := geo.Point{Lat: 39.7, Lon: -104.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Elevation(p)
	}
}

func BenchmarkProfile100km(b *testing.B) {
	m := ContiguousUS(1)
	a := geo.Point{Lat: 40, Lon: -100}
	c := geo.Point{Lat: 40, Lon: -98.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Profile(a, c, 200)
	}
}
