package design

import (
	"math"
	"sort"
)

// ExactOptions bounds the exact branch-and-bound search.
type ExactOptions struct {
	MaxNodes int // 0 = unlimited (use only for tiny instances)
}

// Exact solves the Step-2 design optimally by branch & bound over link
// subsets. Because link capacity is not a constraint in the Step-2
// formulation (§3.2 decomposes capacity into Step 3), each commodity
// independently follows its shortest built path, so subset search with
// shortest-path evaluation is exactly equivalent to the flow ILP of Eq. 1 —
// and much faster, since the LP relaxation is replaced by an additive
// lower bound (the objective with every remaining candidate built for
// free, which only underestimates cost-constrained reality).
//
// Still exponential: use for the small instances of Fig 2, not at scale.
func Exact(p *Problem, opt ExactOptions) *Topology {
	base := NewTopology(p)
	var cands [][2]int
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.usefulLink(i, j, base.fiberD) {
				cands = append(cands, [2]int{i, j})
			}
		}
	}
	incumbent := Greedy(p, GreedyOptions{})
	return exactOverCandidates(p, cands, incumbent, opt.MaxNodes)
}

// exactOverCandidates finds the best subset of cands within p.Budget,
// starting from the given incumbent (never returns anything worse).
func exactOverCandidates(p *Problem, cands [][2]int, incumbent *Topology, maxNodes int) *Topology {
	if maxNodes == 0 {
		maxNodes = 2_000_000
	}
	base := NewTopology(p)

	// Order candidates by standalone gain (descending) so DFS finds strong
	// incumbents early and the additive bound prunes hard.
	type scored struct {
		ij   [2]int
		gain float64
	}
	sc := make([]scored, 0, len(cands))
	for _, ij := range cands {
		sc = append(sc, scored{ij: ij, gain: base.gainOf(ij[0], ij[1])})
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].gain > sc[b].gain })

	best := incumbent
	bestObj := incumbent.objective()
	nodes := 0

	// bound computes a lower bound on the objective reachable from the
	// current topology: add every remaining candidate for free (ignoring
	// budget). Adding links only decreases shortest paths, so this is valid.
	bound := func(t *Topology, from int) float64 {
		lb := t.Clone()
		for k := from; k < len(sc); k++ {
			lb.AddLink(sc[k].ij[0], sc[k].ij[1])
		}
		return lb.objective()
	}

	var dfs func(t *Topology, from int, remaining float64)
	dfs = func(t *Topology, from int, remaining float64) {
		nodes++
		if nodes > maxNodes {
			return
		}
		if obj := t.objective(); obj < bestObj-1e-12 {
			best = t.Clone()
			bestObj = obj
		}
		if from >= len(sc) {
			return
		}
		if bound(t, from) >= bestObj-1e-12 {
			return // even free links cannot beat the incumbent
		}
		// Branch: include sc[from] (if affordable), then exclude.
		cost := p.MWCost[sc[from].ij[0]][sc[from].ij[1]]
		if cost <= remaining {
			with := t.Clone()
			with.AddLink(sc[from].ij[0], sc[from].ij[1])
			dfs(with, from+1, remaining-cost)
		}
		dfs(t, from+1, remaining)
	}
	dfs(base, 0, p.Budget)
	return best
}

// LowerBound returns the unconstrained-budget objective (every useful link
// built): the best mean stretch any budget could reach with these links.
func LowerBound(p *Problem) float64 {
	t := NewTopology(p)
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.usefulLink(i, j, t.fiberD) || (!math.IsInf(p.MW[i][j], 1) && p.MW[i][j] < t.fiberD[i][j]) {
				t.AddLink(i, j)
			}
		}
	}
	return t.MeanStretch()
}
