// Package mapordertest is golden testdata for the maporder analyzer:
// order-dependent bodies (slice builds, float accumulation, output
// writes), the sorted-key redemption idiom, order-insensitive negatives
// and the //lint:allow escape hatch.
package mapordertest

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out during range over map`
	}
	return out
}

func sortedKeyIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: no finding
	}
	sort.Strings(keys)
	return keys
}

func sortSliceIdiom(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v) // sorted below via sort.Slice: no finding
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum
}

func badFloatSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into total`
	}
	return total
}

func intCountersAreExact(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition is commutative and exact: no finding
	}
	return n
}

func badFprint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf during range over map`
	}
}

func badBuilderWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `sb\.WriteString during range over map`
	}
}

func mapToMapIsOrderFree(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v // key-addressed writes are order-insensitive: no finding
	}
}

func maxIsOrderFree(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // plain assignment under max comparison: no finding
		}
	}
	return best
}

func allowedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder -- testdata: caller canonicalizes the order
	}
	return out
}

func perKeySlotAppendIsOrderFree(src map[string][]int) map[string][]int {
	out := make(map[string][]int, len(src))
	for k, v := range src {
		out[k] = append([]int(nil), v...) // each key owns its entry: no finding
	}
	return out
}

func perKeyFloatOpIsOrderFree(m map[string]float64, div float64) {
	for k := range m {
		m[k] /= div // key-addressed compound op touches a distinct entry: no finding
	}
}

func sharedSlotFloatAccumIsFlagged(m map[string]float64, acc map[string]float64) {
	for _, v := range m {
		acc["total"] += v // want `floating-point accumulation into acc`
	}
}

func rangeOverSliceIsFine(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slices iterate in index order: no finding
	}
	return sum
}
