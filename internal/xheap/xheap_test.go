package xheap_test

import (
	"math/rand"
	"sort"
	"testing"

	"cisp/internal/xheap"
)

func intLess(a, b int) bool { return a < b }

func TestPushPopSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		want := make([]int, n)
		var h []int
		for i := range want {
			v := rng.Intn(1000)
			want[i] = v
			xheap.Push(&h, v, intLess)
		}
		sort.Ints(want)
		got := make([]int, 0, n)
		for len(h) > 0 {
			got = append(got, xheap.Pop(&h, intLess))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop order %v, want %v", trial, got, want)
			}
		}
	}
}

func TestInitThenPop(t *testing.T) {
	h := []int{9, 4, 7, 1, 0, 8, 3}
	xheap.Init(h, intLess)
	prev := -1
	for len(h) > 0 {
		v := xheap.Pop(&h, intLess)
		if v < prev {
			t.Fatalf("pop produced %d after %d", v, prev)
		}
		prev = v
	}
}

func TestRemoveArbitraryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var h []int
		present := map[int]int{} // value → multiplicity
		for i := 0; i < 100; i++ {
			v := rng.Intn(50)
			xheap.Push(&h, v, intLess)
			present[v]++
		}
		// Remove 30 arbitrary positions, then drain and compare multisets.
		for i := 0; i < 30; i++ {
			idx := rng.Intn(len(h))
			v := xheap.Remove(&h, idx, intLess)
			if present[v] == 0 {
				t.Fatalf("removed %d not in multiset", v)
			}
			present[v]--
		}
		prev := -1
		for len(h) > 0 {
			v := xheap.Pop(&h, intLess)
			if v < prev {
				t.Fatalf("pop order violated: %d after %d", v, prev)
			}
			prev = v
			if present[v] == 0 {
				t.Fatalf("drained %d not in multiset", v)
			}
			present[v]--
		}
		for v, c := range present {
			if c != 0 {
				t.Fatalf("value %d lost from heap (%d copies unaccounted)", v, c)
			}
		}
	}
}

func TestFixAfterKeyChange(t *testing.T) {
	type task struct {
		pri int
		id  int
	}
	less := func(a, b task) bool {
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		return a.id < b.id
	}
	var h []task
	for i, p := range []int{5, 3, 8, 1, 9} {
		xheap.Push(&h, task{pri: p, id: i}, less)
	}
	// Promote whatever sits at the last index to the front.
	h[len(h)-1].pri = 0
	xheap.Fix(h, len(h)-1, less)
	if got := xheap.Pop(&h, less); got.pri != 0 {
		t.Fatalf("after Fix, popped pri %d, want 0", got.pri)
	}
	// Demote the root and make sure it sinks.
	h[0].pri = 100
	xheap.Fix(h, 0, less)
	if got := xheap.Pop(&h, less); got.pri == 100 {
		t.Fatalf("demoted root popped first")
	}
}

func TestPushIsAllocationFreeAtCapacity(t *testing.T) {
	h := make([]int, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			xheap.Push(&h, 512-i, intLess)
		}
		for len(h) > 0 {
			xheap.Pop(&h, intLess)
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop cycle allocated %.1f objects per run, want 0", allocs)
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap did not panic")
		}
	}()
	var h []int
	xheap.Pop(&h, intLess)
}
