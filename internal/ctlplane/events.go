package ctlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Event types accepted on the injection endpoint and produced by the
// seeded stream source.
const (
	// EventFade grades a microwave link's capacity: CapFrac of clear-sky
	// rate, 0 = rained out, 1 = clear. Link indexes the microwave prefix.
	EventFade = "fade"
	// EventFail hard-fails a link (tower down, conduit cut). Link indexes
	// the hybrid list: microwave first, then fiber.
	EventFail = "fail"
	// EventRepair restores a hard-failed link. A repaired microwave link
	// comes back at its current graded (fade) capacity, not clear-sky.
	EventRepair = "repair"
)

// Event is one control-plane input: a weather grading change or a hard
// failure transition on a single link.
type Event struct {
	Type string `json:"type"`
	Link int    `json:"link"`
	// CapFrac is the graded capacity fraction for fade events, in [0,1].
	// Fail/repair events must leave it unset.
	CapFrac float64 `json:"capfrac,omitempty"`
}

// batch is the wire envelope of the injection endpoint.
type batch struct {
	Events []Event `json:"events"`
}

// MaxEventBody caps the injection endpoint's request body: a batch of
// control events is kilobytes, so anything near this limit is abuse.
const MaxEventBody = 1 << 20

// DecodeEvents parses and validates an injection-endpoint body against a
// topology of nMw microwave links and nLinks total links. It is strict by
// construction — unknown fields, trailing data, out-of-range links,
// non-finite or out-of-range fractions, and fractions on non-fade events
// all fail — because a malformed control input must be rejected at the
// door, never published into a forwarding snapshot. Never panics.
func DecodeEvents(r io.Reader, nMw, nLinks int) ([]Event, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxEventBody))
	dec.DisallowUnknownFields()
	var b batch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("ctlplane: decoding event batch: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("ctlplane: trailing data after event batch")
	}
	if len(b.Events) == 0 {
		return nil, fmt.Errorf("ctlplane: empty event batch")
	}
	for i, ev := range b.Events {
		if err := validateEvent(ev, nMw, nLinks); err != nil {
			return nil, fmt.Errorf("ctlplane: event %d: %w", i, err)
		}
	}
	return b.Events, nil
}

func validateEvent(ev Event, nMw, nLinks int) error {
	switch ev.Type {
	case EventFade:
		if ev.Link < 0 || ev.Link >= nMw {
			return fmt.Errorf("fade link %d outside microwave range [0,%d)", ev.Link, nMw)
		}
		if math.IsNaN(ev.CapFrac) || math.IsInf(ev.CapFrac, 0) {
			return fmt.Errorf("fade capfrac is not finite")
		}
		if ev.CapFrac < 0 || ev.CapFrac > 1 {
			return fmt.Errorf("fade capfrac %v outside [0,1]", ev.CapFrac)
		}
	case EventFail, EventRepair:
		if ev.Link < 0 || ev.Link >= nLinks {
			return fmt.Errorf("%s link %d outside topology range [0,%d)", ev.Type, ev.Link, nLinks)
		}
		if ev.CapFrac != 0 {
			return fmt.Errorf("%s event carries a capfrac", ev.Type)
		}
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}

// TimedEvent is one entry of a seeded stream: the event plus the modeled
// time (seconds since stream start) at which it fires.
type TimedEvent struct {
	At float64 `json:"at"`
	Ev Event   `json:"event"`
}
