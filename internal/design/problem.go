// Package design implements the paper's core contribution: the Step-2
// topology-design optimization (§3.2). Given per-pair microwave link
// distances and costs (from Step 1), fiber latency distances, a traffic
// matrix and a tower budget, it chooses which city-city microwave links to
// build so as to minimise mean latency stretch per unit traffic.
//
// Four solvers are provided, mirroring the paper's comparison:
//
//   - Greedy: the fast marginal-gain heuristic (lazy evaluation makes it
//     polynomial and fast at 120-city scale).
//   - GreedyILP: the paper's "cISP" method — greedy candidate pruning at an
//     inflated 2× budget, followed by an exact optimization restricted to
//     those candidates (§3.2 "Solution approach").
//   - Exact: branch & bound over link subsets; equivalent to the flow ILP
//     because without capacity coupling each commodity independently takes
//     its shortest built path. Used as the optimality reference (Fig 2b).
//   - FlowILP / LPRounding: the literal Eq. 1 network-flow ILP (with the
//     paper's structure-exploiting variable pruning) solved by the in-repo
//     branch & bound, and the naive LP-relaxation + rounding baseline the
//     paper reports as neither scalable nor optimal.
package design

import (
	"fmt"
	"math"

	"cisp/internal/graph"
	"cisp/internal/parallel"
)

// Problem is a Step-2 instance over n sites. All matrices are n×n and
// symmetric; distances are latency-equivalent meters (fiber already carries
// its 1.5× penalty). MW[i][j] is +Inf where no microwave link is feasible.
type Problem struct {
	N        int
	Traffic  [][]float64 // h_st ≥ 0; only s<t entries are read
	Geodesic [][]float64 // d_st > 0 for s != t
	MW       [][]float64 // m_ij, latency-equivalent meters (+Inf: infeasible)
	MWCost   [][]float64 // c_ij, towers needed to build the i-j link
	FiberLat [][]float64 // o_ij × 1.5, latency-equivalent meters
	Budget   float64     // maximum total towers across built links
}

// Validate checks matrix shapes and symmetry; returns a descriptive error.
func (p *Problem) Validate() error {
	if p.N <= 1 {
		return fmt.Errorf("design: need at least 2 sites, have %d", p.N)
	}
	for name, m := range map[string][][]float64{
		"Traffic": p.Traffic, "Geodesic": p.Geodesic, "MW": p.MW,
		"MWCost": p.MWCost, "FiberLat": p.FiberLat,
	} {
		if len(m) != p.N {
			return fmt.Errorf("design: %s has %d rows, want %d", name, len(m), p.N)
		}
		for i := range m {
			if len(m[i]) != p.N {
				return fmt.Errorf("design: %s row %d has %d cols, want %d", name, i, len(m[i]), p.N)
			}
		}
	}
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.Geodesic[i][j] <= 0 {
				return fmt.Errorf("design: non-positive geodesic distance between %d and %d", i, j)
			}
			if p.Traffic[i][j] < 0 {
				return fmt.Errorf("design: negative traffic between %d and %d", i, j)
			}
			for name, m := range map[string][][]float64{
				"Traffic": p.Traffic, "Geodesic": p.Geodesic, "MW": p.MW,
				"MWCost": p.MWCost, "FiberLat": p.FiberLat,
			} {
				if m[i][j] != m[j][i] {
					return fmt.Errorf("design: %s asymmetric at (%d,%d)", name, i, j)
				}
			}
		}
	}
	if p.Budget < 0 {
		return fmt.Errorf("design: negative budget %v", p.Budget)
	}
	return nil
}

// totalTraffic returns Σ_{s<t} h_st.
func (p *Problem) totalTraffic() float64 {
	sum := 0.0
	for s := 0; s < p.N; s++ {
		for t := s + 1; t < p.N; t++ {
			sum += p.Traffic[s][t]
		}
	}
	return sum
}

// fiberClosure returns the metric closure of FiberLat, so downstream code
// can treat fiber distances as shortest fiber paths even if the caller
// supplied raw per-pair conduit lengths. The closure is a per-source
// shortest-path fan-out via internal/graph — FiberLat is a complete
// matrix, so the dense O(n²)-per-source Dijkstra matches Floyd-Warshall's
// total cost while each source owns one output row, letting the sources
// parallelize on the pool with results independent of the worker count.
// The lower triangle mirrors the upper one: float sums along reversed
// paths can round differently, and the rest of the solver assumes exact
// symmetry.
func (p *Problem) fiberClosure() [][]float64 {
	n := p.N
	d := make([][]float64, n)
	parallel.For(n, closureGrain, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			d[s] = graph.DenseSourceShortest(p.FiberLat, s)
		}
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[j][i] = d[i][j]
		}
	}
	return d
}

func floydWarshall(d [][]float64) {
	n := len(d)
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
}

// usefulLink reports whether the microwave link (i,j) could ever appear on a
// shortest path: it must exist, fit the budget alone, and beat the direct
// fiber distance between its endpoints.
func (p *Problem) usefulLink(i, j int, fiberD [][]float64) bool {
	return !math.IsInf(p.MW[i][j], 1) &&
		p.MWCost[i][j] > 0 &&
		p.MWCost[i][j] <= p.Budget &&
		p.MW[i][j] < fiberD[i][j]
}
