// Package suite aggregates the cisplint analyzers. cmd/cisplint, the
// repo-wide meta-test and any future driver all take the list from here,
// so the vettool, CI and the tests can never disagree about what "the
// suite" is.
package suite

import (
	"cisp/internal/analysis"
	"cisp/internal/analysis/determinism"
	"cisp/internal/analysis/hotpathalloc"
	"cisp/internal/analysis/maporder"
	"cisp/internal/analysis/paraclosure"
	"cisp/internal/analysis/unitcheck"
)

// All returns every cisplint analyzer, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		maporder.Analyzer,
		hotpathalloc.Analyzer,
		paraclosure.Analyzer,
		unitcheck.Analyzer,
	}
}
