package weather

import (
	"math"
	"testing"

	"cisp/internal/netsim"
	"cisp/internal/te"
)

// TestGradedRates: positions preserved, CapFrac scaling applied, failures
// zeroed, nil conds = clear sky.
func TestGradedRates(t *testing.T) {
	mw := []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 10e9},
		{A: 1, B: 2, RateBps: 10e9},
		{A: 2, B: 3, RateBps: 10e9},
	}
	conds := []LinkCondition{
		{CapFrac: 1},
		{CapFrac: 0.25},
		{Failed: true, CapFrac: 0.9}, // Failed wins over any CapFrac
	}
	g := GradedRates(mw, conds)
	if len(g) != 3 {
		t.Fatalf("len = %d, want 3 (positions preserved)", len(g))
	}
	if g[0].RateBps != 10e9 || g[1].RateBps != 2.5e9 || g[2].RateBps != 0 {
		t.Fatalf("rates = %v %v %v, want 10e9 2.5e9 0", g[0].RateBps, g[1].RateBps, g[2].RateBps)
	}
	if clear := GradedRates(mw, nil); clear[1].RateBps != 10e9 {
		t.Fatal("nil conds must leave clear-sky rates")
	}
	if mw[1].RateBps != 10e9 {
		t.Fatal("GradedRates mutated its input")
	}
}

// TestReoptimizeTEStormCycle drives a TE controller through a storm
// interval and back: a diamond whose fast microwave arm fades while a
// parallel fiber-ish detour rides through. Only the commodity crossing the
// faded arm is re-solved; its traffic shifts, then shifts back when the
// interval clears.
func TestReoptimizeTEStormCycle(t *testing.T) {
	mw := []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.002},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.002},
		// A disjoint pair far from the storm, carrying commodity 2.
		{A: 4, B: 5, RateBps: 10e6, PropDelay: 0.001},
	}
	fiber := []netsim.TopoLink{
		{A: 0, B: 2, RateBps: 10e6, PropDelay: 0.0025},
		{A: 2, B: 3, RateBps: 10e6, PropDelay: 0.0025},
	}
	comms := []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 8e6},
		{Flow: 2, Src: 4, Dst: 5, Demand: 2e6},
	}
	ctrl, err := te.NewController(6, append(append([]netsim.TopoLink(nil), mw...), fiber...), comms, te.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clearSplit := ctrl.Solution().Splits[1]
	otherBefore := ctrl.Solution().Splits[2]

	// Stormy interval: the 0-1 hop fades below half rate, 1-3 fails.
	stormy := []LinkCondition{
		{WorstHopDB: 10, CapFrac: 0.5},
		{Failed: true},
		{CapFrac: 1},
	}
	affected, err := ReoptimizeTE(ctrl, mw, stormy, fiber)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != 1 {
		t.Fatalf("affected = %v, want [1]", affected)
	}
	sp := ctrl.Solution().Splits[1]
	if len(sp) != 1 || sp[0].Path[1] != 2 {
		t.Fatalf("stormy split = %+v, want everything on the fiber detour via 2", sp)
	}
	after := ctrl.Solution().Splits[2]
	if len(after) != len(otherBefore) || after[0].Frac != otherBefore[0].Frac {
		t.Fatalf("unaffected commodity re-solved: %+v vs %+v", after, otherBefore)
	}

	// Interval clears: everything back to the clear-sky decision.
	affected, err = ReoptimizeTE(ctrl, mw, nil, fiber)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != 1 {
		t.Fatalf("restore affected = %v, want [1]", affected)
	}
	restored := ctrl.Solution().Splits[1]
	if len(restored) != len(clearSplit) {
		t.Fatalf("restored split = %+v, want clear-sky %+v", restored, clearSplit)
	}
	for i := range restored {
		if math.Abs(restored[i].Frac-clearSplit[i].Frac) > 1e-9 {
			t.Fatalf("restored split = %+v, want clear-sky %+v", restored, clearSplit)
		}
	}
}
