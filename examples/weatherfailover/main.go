// weatherfailover demonstrates the §6.1 weather study (Fig 7) on a small
// network: synthetic storms fail microwave hops whose ITU-R P.838 rain
// attenuation exceeds the fade margin, and traffic falls over to other
// microwave links or fiber. Most of the latency advantage survives all
// year.
package main

import (
	"fmt"
	"os"

	"cisp"
	"cisp/internal/experiments"
)

func main() {
	opt := experiments.Options{
		Scale:     cisp.ScaleSmall,
		Seed:      3,
		MaxCities: 15,
		Out:       os.Stdout,
	}
	res := experiments.Fig7Weather(opt, 120)
	if res == nil {
		os.Exit(1)
	}

	fmt.Println("\ninterpretation:")
	fmt.Printf("  fair weather, the network runs at %.3fx c-latency (median pair)\n", res.MedianBest)
	fmt.Printf("  the 99th-percentile day is %.3fx — storms barely register\n", res.MedianP99)
	fmt.Printf("  the single worst interval of the year is %.3fx\n", res.MedianWorst)
	fmt.Printf("  fiber, by comparison, is %.3fx — %.1fx slower than the worst weather day\n",
		res.MedianFiber, res.MedianFiber/res.MedianWorst)
}
