// weatherfailover demonstrates the §6.1 weather study (Fig 7) on a small
// network, on the graded dynamic-network engine: synthetic storms degrade
// microwave hops through the ITU-R P.838 adaptive-modulation ladder and
// fail the ones whose attenuation exceeds the fade margin; traffic falls
// over to other microwave links or fiber (incremental APSP removal, days
// fanned out over the worker pool). Most of the latency advantage survives
// all year, and the stormiest interval is replayed packet-by-packet to
// show what the degradation costs real TCP flows.
package main

import (
	"fmt"
	"os"

	"cisp"
	"cisp/internal/experiments"
)

func main() {
	opt := experiments.Options{
		Scale:     cisp.ScaleSmall,
		Seed:      3,
		MaxCities: 15,
		Out:       os.Stdout,
	}
	res := experiments.Fig7WeatherExt(opt, experiments.Fig7Config{
		Days: 120, Trials: 3, Graded: true,
	})
	if res == nil {
		os.Exit(1)
	}

	fmt.Println("\ninterpretation:")
	fmt.Printf("  fair weather, the network runs at %.3fx c-latency (median pair)\n", res.MedianBest)
	fmt.Printf("  the 99th-percentile day is %.3fx — storms barely register\n", res.MedianP99)
	fmt.Printf("  the single worst interval of the year is %.3fx\n", res.MedianWorst)
	fmt.Printf("  fiber, by comparison, is %.3fx — %.1fx slower than the worst weather day\n",
		res.MedianFiber, res.MedianFiber/res.MedianWorst)
	fmt.Printf("  adaptive modulation keeps the fleet at %.1f%% capacity on the mean day,\n",
		res.MeanCapacityFrac*100)
	fmt.Printf("  with %.2f links degraded but alive per interval (vs %.2f hard failures)\n",
		res.MeanDegradedLinks, res.MeanFailedLinks)
	if len(res.FCTDegraded) > 0 && len(res.FCTClean) > 0 {
		fmt.Printf("  on the stormiest day, shortest-path TCP completes %d/%d flows (clear sky: %d/%d);\n",
			res.FCTDegraded[0].Completed, res.FCTDegraded[0].Flows,
			res.FCTClean[0].Completed, res.FCTClean[0].Flows)
		last := res.FCTDegraded[len(res.FCTDegraded)-1]
		fmt.Printf("  %s routing works around the degraded links (%d/%d, p99 %.0f ms)\n",
			last.Scheme, last.Completed, last.Flows, last.P99Ms)
	}
}
