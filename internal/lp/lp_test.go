package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimple2D(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  (minimize -(x+y)); optimum at (1.6,1.2)=2.8.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint([]int{0, 1}, []float64{1, 2}, LE, 4)
	p.AddConstraint([]int{0, 1}, []float64{3, 1}, LE, 6)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -2.8, 1e-7) {
		t.Fatalf("objective = %v, want -2.8", s.Objective)
	}
	if !approx(s.X[0], 1.6, 1e-7) || !approx(s.X[1], 1.2, 1e-7) {
		t.Fatalf("x = %v, want [1.6 1.2]", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y=3, x<=1 → x=1,y=2, obj 3; or any split, obj is 3.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 3)
	p.AddConstraint([]int{0}, []float64{1}, LE, 1)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 3, 1e-7) {
		t.Fatalf("objective = %v, want 3", s.Objective)
	}
	if s.X[0] > 1+1e-7 {
		t.Fatalf("x0 = %v violates x0<=1", s.X[0])
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y>=10, x<=4 → x=4,y=6, obj 26.
	p := &Problem{NumVars: 2, Objective: []float64{2, 3}}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 10)
	p.AddConstraint([]int{0}, []float64{1}, LE, 4)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 26, 1e-6) {
		t.Fatalf("objective = %v, want 26", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]int{0}, []float64{1}, GE, 5)
	p.AddConstraint([]int{0}, []float64{1}, LE, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x>=0: unbounded below.
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint([]int{0}, []float64{1}, GE, 0)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 means x >= 2; min x → 2.
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]int{0}, []float64{-1}, LE, -2)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.X[0], 2, 1e-7) {
		t.Fatalf("x = %v, want 2", s.X[0])
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degeneracy: redundant constraints through the optimum.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 2)
	p.AddConstraint([]int{0, 1}, []float64{2, 2}, LE, 4) // redundant
	p.AddConstraint([]int{0}, []float64{1}, LE, 2)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, -2, 1e-7) {
		t.Fatalf("objective = %v, want -2", s.Objective)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem (zero objective) with equality rows.
	p := &Problem{NumVars: 3, Objective: []float64{0, 0, 0}}
	p.AddConstraint([]int{0, 1, 2}, []float64{1, 1, 1}, EQ, 6)
	p.AddConstraint([]int{0, 1}, []float64{1, -1}, EQ, 0)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.X[0], s.X[1], 1e-7) {
		t.Fatalf("x0 != x1: %v", s.X)
	}
	if !approx(s.X[0]+s.X[1]+s.X[2], 6, 1e-7) {
		t.Fatalf("sum constraint violated: %v", s.X)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 sources (supply 20, 30) × 2 sinks (demand 25, 25) min-cost transport.
	// Costs: c[s][t] = [[1, 4], [2, 1]]. Optimum ships 20 via s0→t0,
	// 5 via s1→t0, 25 via s1→t1: cost 20+10+25 = 55.
	// Vars: x00, x01, x10, x11.
	p := &Problem{NumVars: 4, Objective: []float64{1, 4, 2, 1}}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 20)
	p.AddConstraint([]int{2, 3}, []float64{1, 1}, EQ, 30)
	p.AddConstraint([]int{0, 2}, []float64{1, 1}, EQ, 25)
	p.AddConstraint([]int{1, 3}, []float64{1, 1}, EQ, 25)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 55, 1e-6) {
		t.Fatalf("objective = %v, want 55", s.Objective)
	}
}

// TestRandomFeasibleBounded checks, property-style, that solutions of random
// box-constrained problems respect all constraints and are no worse than any
// random feasible point we can sample.
func TestRandomFeasibleBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Objective[j] = rng.Float64()*4 - 2
			// Box: x_j <= u_j keeps everything bounded.
			p.AddConstraint([]int{j}, []float64{1}, LE, 1+rng.Float64()*5)
		}
		// A couple of random ≤ rows with positive coefficients (always
		// feasible at origin).
		for k := 0; k < 2; k++ {
			vars := make([]int, n)
			coefs := make([]float64, n)
			for j := 0; j < n; j++ {
				vars[j], coefs[j] = j, rng.Float64()
			}
			p.AddConstraint(vars, coefs, LE, 1+rng.Float64()*10)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Check feasibility of the reported solution.
		for _, c := range p.Cons {
			lhs := 0.0
			for _, tm := range c.Terms {
				lhs += tm.Coeff * s.X[tm.Var]
			}
			if c.Sense == LE && lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		// Origin is feasible: objective must be <= 0 at worst.
		return s.Objective <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeVariable(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]int{3}, []float64{1}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for out-of-range variable index")
	}
}

func BenchmarkSolve50x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 100, 50
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Objective[j] = rng.Float64()
		p.AddConstraint([]int{j}, []float64{1}, LE, 10)
	}
	for i := 0; i < m; i++ {
		vars := make([]int, 10)
		coefs := make([]float64, 10)
		for k := range vars {
			vars[k] = rng.Intn(n)
			coefs[k] = rng.Float64()
		}
		p.AddConstraint(vars, coefs, GE, rng.Float64()*5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaximizeSimple(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6 — same polytope as TestSimple2D, but
	// stated in the maximisation sense; the objective comes back positive.
	p := &Problem{NumVars: 2}
	p.Maximize([]float64{1, 1})
	p.AddConstraint([]int{0, 1}, []float64{1, 2}, LE, 4)
	p.AddConstraint([]int{0, 1}, []float64{3, 1}, LE, 6)
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 2.8, 1e-7) {
		t.Fatalf("objective = %v, want 2.8", s.Objective)
	}
	if !approx(s.X[0], 1.6, 1e-7) || !approx(s.X[1], 1.2, 1e-7) {
		t.Fatalf("x = %v, want [1.6 1.2]", s.X)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	// max x with no upper bound on x: must report Unbounded, not garbage.
	p := &Problem{NumVars: 2}
	p.Maximize([]float64{1, 0})
	p.AddConstraint([]int{1}, []float64{1}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("err=%v", err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
	if s.X != nil {
		t.Fatalf("unbounded solution leaked X = %v", s.X)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	// x>=3 and x<=1 cannot hold: must report Infeasible with no X — the TE
	// layer relies on this to fail loudly instead of installing garbage
	// splits.
	p := &Problem{NumVars: 1}
	p.Maximize([]float64{1})
	p.AddConstraint([]int{0}, []float64{1}, GE, 3)
	p.AddConstraint([]int{0}, []float64{1}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("err=%v", err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	if s.X != nil {
		t.Fatalf("infeasible solution leaked X = %v", s.X)
	}
}

func TestMaximizeDegenerate(t *testing.T) {
	// Redundant constraints through the optimum in the maximisation sense.
	p := &Problem{NumVars: 2}
	p.Maximize([]float64{1, 1})
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 2)
	p.AddConstraint([]int{0, 1}, []float64{2, 2}, LE, 4) // redundant
	p.AddConstraint([]int{0, 1}, []float64{3, 3}, EQ, 6) // forces the same face
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("status=%v err=%v", s.Status, err)
	}
	if !approx(s.Objective, 2, 1e-7) {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	// Contradictory equalities (x+y=1, x+y=2): phase 1 cannot zero the
	// artificials.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 1)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("err=%v", err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}
