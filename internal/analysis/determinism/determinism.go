// Package determinism implements the cisplint analyzer that keeps every
// source of nondeterminism out of the library packages: top-level
// math/rand calls draw from the process-global generator, and time.Now /
// time.Since read wall-clock state — either one silently breaks the
// repo's bit-identical-results contract (DESIGN.md §9). All randomness
// must thread through an explicit *rand.Rand built from a Seed field
// (the netsim.Scenario convention), and wall-clock reads are allowed only
// in package main, in tests, or under a justified //lint:allow.
package determinism

import (
	"go/ast"
	"go/types"

	"cisp/internal/analysis"
)

// Analyzer flags global-generator math/rand calls, wall-clock reads and
// wall-clock-derived seeds outside tests and package main.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags top-level math/rand calls, time.Now/time.Since and wall-clock-derived " +
		"seeds outside tests and package main; all randomness must flow from an explicit Seed",
	Run: run,
}

// randConstructors are the top-level math/rand functions that do not touch
// the global generator: they build explicitly-seeded state instead.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // draws from the *rand.Rand it is given
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries (cmd/, examples/) may time their own runs and pick
		// default seeds; the contract binds the library packages.
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"top-level %s.%s draws from the process-global generator; thread an explicit *rand.Rand seeded from a Seed field instead",
						fn.Pkg().Name(), fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now":
					if underRandConstructor(pass, stack) {
						pass.Reportf(call.Pos(),
							"seed derived from wall clock: results become run-dependent; take the seed from an explicit Seed field")
					} else {
						pass.Reportf(call.Pos(),
							"time.Now reads wall-clock state; simulated results must not depend on it")
					}
				case "Since":
					pass.Reportf(call.Pos(),
						"time.Since measures wall-clock elapsed time; simulated results must not depend on it")
				}
			}
			return true
		})
	}
	return nil
}

// callee resolves the called function, if it statically resolves to one.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// underRandConstructor reports whether one of the enclosing expressions is
// a call to a math/rand constructor — i.e. the node under inspection is
// being used to build a seed.
func underRandConstructor(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn := callee(pass, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if randConstructors[fn.Name()] {
					return true
				}
			}
		}
	}
	return false
}
