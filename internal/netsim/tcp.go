package netsim

import "math"

// TCPConn is a simplified TCP Reno sender/receiver pair for the Fig 6
// speed-mismatch study: slow start, congestion avoidance, fast retransmit on
// triple duplicate ACKs, retransmission timeouts, and optional packet pacing
// (sends spaced at cwnd per SRTT rather than back-to-back on ACK clocking).
//
// The connection transfers FlowSize bytes of payload in MSS-sized segments;
// Done is invoked with the flow completion time once the final segment is
// cumulatively acknowledged.
type TCPConn struct {
	Net      *Network
	Flow     int
	Src, Dst int
	FlowSize int // payload bytes
	MSS      int // payload bytes per segment (default 1460)
	Pacing   bool
	InitRTT  float64 // initial SRTT estimate, seconds (default 50 ms)
	InitCwnd float64 // initial window, packets (default 10)
	Done     func(fct float64)

	// Sender state (packet sequence numbers are 1-based).
	nPkts     int64
	sndUna    int64 // lowest unacked
	sndNxt    int64 // next new sequence to send
	cwnd      float64
	ssthresh  float64
	dupAcks   int
	srtt      float64
	rttvar    float64
	rto       float64
	rtoGen    int64
	sentAt    map[int64]float64
	retxMark  map[int64]bool
	startTime float64
	finished  bool

	// Pacing.
	nextPaceAt float64

	// Receiver state.
	rcvNext int64
	rcvBuf  map[int64]bool
}

const ackSize = 40 // bytes on the wire for a pure ACK

// Start opens the connection and begins transmitting at the current
// simulation time. The forward (data) and reverse (ACK) paths must already
// be installed for c.Flow via SetFlowPath.
func (c *TCPConn) Start() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitRTT == 0 {
		c.InitRTT = 0.05
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	c.nPkts = int64((c.FlowSize + c.MSS - 1) / c.MSS)
	if c.nPkts == 0 {
		c.nPkts = 1
	}
	c.sndUna, c.sndNxt = 1, 1
	c.cwnd = c.InitCwnd
	c.ssthresh = 1e9
	c.srtt = c.InitRTT
	c.rttvar = c.InitRTT / 2
	c.rto = c.srtt + 4*c.rttvar
	c.sentAt = make(map[int64]float64)
	c.retxMark = make(map[int64]bool)
	c.rcvNext = 1
	c.rcvBuf = make(map[int64]bool)
	c.startTime = c.Net.Sim.Now()
	c.nextPaceAt = c.startTime

	c.Net.OnDeliver(c.Flow, c.onPacket)
	c.trySend()
	c.armRTO()
}

// onPacket handles both data arriving at the receiver and ACKs arriving back
// at the sender (demuxed by Kind).
func (c *TCPConn) onPacket(p *Packet) {
	if p.Kind == Data {
		c.receiverOnData(p)
	} else {
		c.senderOnAck(p)
	}
}

func (c *TCPConn) receiverOnData(p *Packet) {
	if p.Seq >= c.rcvNext {
		c.rcvBuf[p.Seq] = true
	}
	for c.rcvBuf[c.rcvNext] {
		delete(c.rcvBuf, c.rcvNext)
		c.rcvNext++
	}
	// Cumulative ACK back to the sender.
	c.Net.Inject(&Packet{
		Flow: c.Flow, Kind: Ack, Size: ackSize,
		Src: c.Dst, Dst: c.Src, AckNo: c.rcvNext,
	})
}

func (c *TCPConn) senderOnAck(p *Packet) {
	if c.finished {
		return
	}
	if p.AckNo > c.sndUna {
		acked := p.AckNo - c.sndUna
		// RTT sample from the newest cumulatively acked, un-retransmitted
		// segment (Karn's rule).
		if ts, ok := c.sentAt[p.AckNo-1]; ok && !c.retxMark[p.AckNo-1] {
			c.updateRTT(c.Net.Sim.Now() - ts)
		}
		for s := c.sndUna; s < p.AckNo; s++ {
			delete(c.sentAt, s)
			delete(c.retxMark, s)
		}
		c.sndUna = p.AckNo
		c.dupAcks = 0
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(acked) // slow start
		} else {
			c.cwnd += float64(acked) / c.cwnd // congestion avoidance
		}
		c.armRTO()
		if c.sndUna > c.nPkts {
			c.finish()
			return
		}
		c.trySend()
		return
	}
	// Duplicate ACK.
	c.dupAcks++
	if c.dupAcks == 3 {
		c.ssthresh = math.Max(c.cwnd/2, 2)
		c.cwnd = c.ssthresh
		c.resend(c.sndUna)
		c.armRTO()
	}
}

func (c *TCPConn) updateRTT(sample float64) {
	const alpha, beta = 1.0 / 8, 1.0 / 4
	c.rttvar = (1-beta)*c.rttvar + beta*math.Abs(c.srtt-sample)
	c.srtt = (1-alpha)*c.srtt + alpha*sample
	c.rto = math.Max(c.srtt+4*c.rttvar, 0.01)
}

// trySend transmits as much of the window as allowed, paced or back-to-back.
func (c *TCPConn) trySend() {
	if c.finished {
		return
	}
	for c.sndNxt < c.sndUna+int64(c.cwnd) && c.sndNxt <= c.nPkts {
		if c.Pacing {
			now := c.Net.Sim.Now()
			// Pace at cwnd/SRTT, doubled during slow start so pacing does
			// not slow window growth (standard pacing-gain practice).
			rate := math.Max(c.cwnd, 1) / c.srtt
			if c.cwnd < c.ssthresh {
				rate *= 2
			}
			gap := 1 / rate
			at := math.Max(now, c.nextPaceAt)
			c.nextPaceAt = at + gap
			seq := c.sndNxt
			c.sndNxt++
			c.Net.Sim.Schedule(at-now, func() { c.emit(seq) })
		} else {
			seq := c.sndNxt
			c.sndNxt++
			c.emit(seq)
		}
	}
}

// emit puts one segment on the wire.
func (c *TCPConn) emit(seq int64) {
	if c.finished {
		return
	}
	size := c.MSS + 40 // header overhead
	if seq == c.nPkts {
		if rem := c.FlowSize % c.MSS; rem != 0 {
			size = rem + 40
		}
	}
	c.sentAt[seq] = c.Net.Sim.Now()
	c.Net.Inject(&Packet{
		Flow: c.Flow, Seq: seq, Kind: Data, Size: size,
		Src: c.Src, Dst: c.Dst,
	})
}

func (c *TCPConn) resend(seq int64) {
	c.retxMark[seq] = true
	c.emit(seq)
}

// armRTO (re)schedules the retransmission timer.
func (c *TCPConn) armRTO() {
	c.rtoGen++
	gen := c.rtoGen
	una := c.sndUna
	c.Net.Sim.Schedule(c.rto, func() {
		if c.finished || gen != c.rtoGen || c.sndUna != una {
			return
		}
		// Timeout: shrink to one segment and retransmit.
		c.ssthresh = math.Max(c.cwnd/2, 2)
		c.cwnd = 1
		c.rto = math.Min(c.rto*2, 60)
		c.dupAcks = 0
		c.resend(c.sndUna)
		c.armRTO()
	})
}

func (c *TCPConn) finish() {
	c.finished = true
	c.rtoGen++
	if c.Done != nil {
		c.Done(c.Net.Sim.Now() - c.startTime)
	}
}
