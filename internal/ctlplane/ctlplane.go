// Package ctlplane is the long-running control plane of the hybrid cISP
// backbone: where cispbench designs a network, replays a figure, and
// exits, a ctlplane.Daemon owns a designed backbone for its lifetime,
// ingests a live stream of weather-grading and hard-failure events (from
// the seeded internal/weather and internal/resilience engines, or from an
// HTTP injection endpoint), drives te.Controller warm reoptimization and
// fast-reroute activation in response, and serves versioned, immutable
// forwarding snapshots over HTTP/JSON at high QPS.
//
// Concurrency model: one event-loop goroutine owns all mutable state
// (graded capacities, down-set, the TE controller) and publishes
// copy-on-write snapshots through an atomic pointer — readers never take a
// lock and never block behind a reoptimization; they see the last
// published version until the swap. Hard failures follow the resilience
// contract: the fast-reroute patch publishes first, with zero LP solves on
// that path (pinned by the cisp_ctlplane_frr_lp_solves gauge and the
// ctltest harness), and the warm reoptimization swaps in as a separate
// snapshot version. The snapshot sequence is a pure function of the event
// sequence and the daemon's seed-determined inputs: same events, same
// bytes, at any worker-pool width. See DESIGN.md §13.
package ctlplane

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/resilience"
	"cisp/internal/te"
	"cisp/internal/units"
)

// Config assembles a Daemon. Backbone and Comms are required; zero-value
// tuning fields take the te/resilience defaults.
type Config struct {
	Backbone *Backbone
	Comms    []netsim.Commodity

	TE   te.Config
	Prot resilience.Config

	// Clock stamps snapshots and feeds latency histograms. Defaults to a
	// fixed epoch clock, keeping library use deterministic; cmd/cispd
	// injects obs.WallClock, tests an obs.ManualClock.
	Clock obs.Clock

	// ReoptAfterFRR, when true (the default via New), follows every hard
	// failure/repair's fast-reroute snapshot with a warm full
	// reoptimization snapshot — the FRRReopt production loop. Set
	// DisableReopt to run pure FRR (the zero-LP-solve regime the harness
	// pins).
	DisableReopt bool

	// OnPublish, when non-nil, observes every published snapshot,
	// synchronously and in version order, from the event loop. Used by the
	// ctltest harness to record byte-exact snapshot sequences and by
	// cmd/cispd for logging; must not block.
	OnPublish func(*Snapshot)
}

// Daemon is a running control plane. Create with New, stop with Close.
type Daemon struct {
	cfg   Config
	nodes int
	nMw   int
	clear []netsim.TopoLink // clear-sky hybrid list (mw prefix + fiber)
	comms []netsim.Commodity
	snap  atomic.Pointer[Snapshot]

	drain  atomic.Bool
	mu     sync.RWMutex // guards reqs against close; held only around the send
	closed bool
	reqs   chan request
	loopWG sync.WaitGroup

	// Event-loop-owned state (never touched outside the loop after New).
	capFrac []float64 // per-microwave-link graded fraction
	down    []bool    // per-hybrid-link hard-failure state
	ctrl    *te.Controller
	prot    *resilience.Protection
	base    map[int][]netsim.SplitPath // latest reopt solution (or primaries)
	backups []BackupWire
	version uint64
	epoch   uint64
}

// request is one serialized unit of work for the event loop.
type request struct {
	events []Event     // Apply
	reload *reloadSpec // Reload
	reply  chan result
}

type reloadSpec struct {
	te   te.Config
	prot resilience.Config
}

type result struct {
	snap *Snapshot
	err  error
}

// New builds the control plane at clear sky — TE solve, disjoint-backup
// precomputation, initial snapshot (version 1, epoch 1) — and starts the
// event loop.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.Backbone.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Comms) == 0 {
		return nil, fmt.Errorf("ctlplane: no commodities")
	}
	if cfg.Clock == nil {
		epoch := time.Unix(0, 0)
		cfg.Clock = func() time.Time { return epoch }
	}
	d := &Daemon{
		cfg:   cfg,
		nodes: cfg.Backbone.Nodes,
		nMw:   len(cfg.Backbone.Mw),
		clear: cfg.Backbone.Hybrid(),
		comms: cfg.Comms,
		reqs:  make(chan request),
	}
	d.capFrac = make([]float64, d.nMw)
	for i := range d.capFrac {
		d.capFrac[i] = 1
	}
	d.down = make([]bool, len(d.clear))
	d.epoch = 1
	if err := d.rebuild(cfg.TE, cfg.Prot); err != nil {
		return nil, err
	}
	if err := d.publish(KindInitial, d.copyBase()); err != nil {
		return nil, err
	}
	d.loopWG.Add(1)
	go d.loop()
	return d, nil
}

// NumLinks returns the hybrid topology's link count (microwave prefix
// first); NumMw the microwave prefix length — the two ranges event
// validation is performed against.
func (d *Daemon) NumLinks() int { return len(d.clear) }

// NumMw returns the microwave link count (the fade-event index range).
func (d *Daemon) NumMw() int { return d.nMw }

// Snapshot returns the current forwarding snapshot: an atomic pointer
// load, safe from any goroutine, never blocking behind the event loop.
func (d *Daemon) Snapshot() *Snapshot { return d.snap.Load() }

// Apply injects events in order and returns the snapshot current after
// the last one published. It serializes through the event loop; readers
// calling Snapshot are unaffected while it runs.
func (d *Daemon) Apply(events []Event) (*Snapshot, error) {
	for i, ev := range events {
		if err := validateEvent(ev, d.nMw, len(d.clear)); err != nil {
			return nil, fmt.Errorf("ctlplane: event %d: %w", i, err)
		}
	}
	return d.send(request{events: events})
}

// Reload rebuilds the control plane under new TE/protection tuning — a
// fresh controller and backup set at clear sky, replayed to the current
// graded/failed link state — and publishes a reload snapshot with the
// epoch incremented. Serving continues uninterrupted throughout.
func (d *Daemon) Reload(teCfg te.Config, protCfg resilience.Config) (*Snapshot, error) {
	return d.send(request{reload: &reloadSpec{te: teCfg, prot: protCfg}})
}

func (d *Daemon) send(req request) (*Snapshot, error) {
	req.reply = make(chan result, 1)
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, fmt.Errorf("ctlplane: daemon is draining")
	}
	// The loop is alive until Close, and Close cannot proceed while a read
	// lock is held, so this send always finds a consumer.
	d.reqs <- req
	d.mu.RUnlock()
	r := <-req.reply
	return r.snap, r.err
}

// Close drains the daemon: readiness drops immediately, new Apply/Reload
// calls are refused, and the event loop finishes its queue and exits.
// Idempotent.
func (d *Daemon) Close() {
	d.drain.Store(true)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.reqs)
	d.mu.Unlock()
	d.loopWG.Wait()
}

// Draining reports whether Close has begun (readiness turns false first).
func (d *Daemon) Draining() bool { return d.drain.Load() }

func (d *Daemon) loop() {
	defer d.loopWG.Done()
	for req := range d.reqs {
		var res result
		switch {
		case req.reload != nil:
			res.snap, res.err = d.handleReload(*req.reload)
		default:
			res.snap, res.err = d.handleEvents(req.events)
		}
		req.reply <- res
	}
}

// effective composes the current link state: clear-sky rates scaled by the
// microwave fade grading, zeroed where hard-failed — the one place fade
// and failure meet, positionally aligned with the clear-sky list the
// controller was built over.
func (d *Daemon) effective() []netsim.TopoLink {
	out := append([]netsim.TopoLink(nil), d.clear...)
	for i := 0; i < d.nMw; i++ {
		out[i].RateBps = units.BitsPerSecond(float64(out[i].RateBps) * d.capFrac[i])
	}
	for li := range out {
		if d.down[li] {
			out[li].RateBps = 0
		}
	}
	return out
}

func (d *Daemon) handleEvents(events []Event) (*Snapshot, error) {
	snk := obs.Active()
	for _, ev := range events {
		snk.Counter("cisp_ctlplane_events_total", "type", ev.Type).Inc()
		switch ev.Type {
		case EventFade:
			d.capFrac[ev.Link] = ev.CapFrac
			if err := d.reoptimize(KindReopt); err != nil {
				return nil, err
			}
		case EventFail, EventRepair:
			d.down[ev.Link] = ev.Type == EventFail
			// Fast reroute first: pure table lookups against the current
			// base, published before any solver runs. The LP-solve delta
			// across this path is exported and must stay zero.
			before := te.LPSolves()
			patched := d.prot.PatchedFrom(d.base, d.down)
			if err := d.publish(KindFRR, patched); err != nil {
				return nil, err
			}
			snk.Gauge("cisp_ctlplane_frr_lp_solves").Add(float64(te.LPSolves() - before))
			if !d.cfg.DisableReopt {
				if err := d.reoptimize(KindReopt); err != nil {
					return nil, err
				}
			}
		}
	}
	return d.Snapshot(), nil
}

// reoptimize feeds the composed capacities into the warm controller and
// publishes its (fast-reroute-patched) solution.
func (d *Daemon) reoptimize(kind string) error {
	if _, err := d.ctrl.UpdateCapacities(d.effective()); err != nil {
		return fmt.Errorf("ctlplane: reoptimizing: %w", err)
	}
	d.base = copySplits(d.ctrl.Solution().Splits)
	return d.publish(kind, d.prot.PatchedFrom(d.base, d.down))
}

func (d *Daemon) handleReload(spec reloadSpec) (*Snapshot, error) {
	if err := d.rebuild(spec.te, spec.prot); err != nil {
		return nil, err
	}
	d.epoch++
	if err := d.publish(KindReload, d.prot.PatchedFrom(d.base, d.down)); err != nil {
		return nil, err
	}
	return d.Snapshot(), nil
}

// rebuild constructs controller + protection at clear sky under the given
// tuning and replays the current graded/failed state into the controller.
// Called at New (epoch stays 1) and on Reload (caller bumps the epoch).
func (d *Daemon) rebuild(teCfg te.Config, protCfg resilience.Config) error {
	ctrl, err := te.NewController(d.nodes, d.clear, d.comms, teCfg)
	if err != nil {
		return fmt.Errorf("ctlplane: clear-sky TE solve: %w", err)
	}
	primaries := copySplits(ctrl.Solution().Splits)
	prot, err := resilience.NewProtection(d.nodes, d.clear, d.comms, primaries, protCfg)
	if err != nil {
		return fmt.Errorf("ctlplane: backup precomputation: %w", err)
	}
	d.ctrl, d.prot = ctrl, prot
	d.base = primaries
	degraded := false
	for i := range d.capFrac {
		if d.capFrac[i] != 1 {
			degraded = true
		}
	}
	for _, dn := range d.down {
		if dn {
			degraded = true
		}
	}
	if degraded {
		if _, err := d.ctrl.UpdateCapacities(d.effective()); err != nil {
			return fmt.Errorf("ctlplane: replaying link state: %w", err)
		}
		d.base = copySplits(d.ctrl.Solution().Splits)
	}
	d.backups = d.backups[:0]
	flows := make([]int, 0, len(prot.Backups))
	for flow := range prot.Backups {
		flows = append(flows, flow)
	}
	sort.Ints(flows)
	for _, flow := range flows {
		d.backups = append(d.backups, BackupWire{Flow: flow, Path: prot.Backups[flow].Path})
	}
	return nil
}

// publish validates, versions, encodes, and atomically swaps in a new
// snapshot, then notifies metrics and the OnPublish hook.
func (d *Daemon) publish(kind string, splits map[int][]netsim.SplitPath) error {
	snk := obs.Active()
	stop := snk.StartTimer("cisp_ctlplane_publish_seconds")
	defer stop()
	if err := netsim.ValidateSplits(d.nodes, d.clear, d.comms, splits); err != nil {
		return fmt.Errorf("ctlplane: refusing to publish: %w", err)
	}
	mlu, err := te.MLUOf(d.nodes, d.effective(), d.comms, splits)
	if err != nil {
		return fmt.Errorf("ctlplane: snapshot MLU: %w", err)
	}
	d.version++
	snap, err := buildSnapshot(d.version, d.epoch, kind, d.cfg.Clock().Unix(),
		d.ctrl.Solution().Method, float64(mlu), d.down, d.comms, splits, d.backups)
	if err != nil {
		return err
	}
	d.snap.Store(snap)
	snk.Counter("cisp_ctlplane_snapshots_total", "kind", kind).Inc()
	snk.Gauge("cisp_ctlplane_snapshot_version").Set(float64(snap.Version))
	snk.Gauge("cisp_ctlplane_snapshot_epoch").Set(float64(snap.Epoch))
	snk.Gauge("cisp_ctlplane_mlu").Set(snap.MLU)
	if d.cfg.OnPublish != nil {
		d.cfg.OnPublish(snap)
	}
	return nil
}

func (d *Daemon) copyBase() map[int][]netsim.SplitPath { return copySplits(d.base) }

func copySplits(m map[int][]netsim.SplitPath) map[int][]netsim.SplitPath {
	out := make(map[int][]netsim.SplitPath, len(m))
	for k, v := range m {
		out[k] = append([]netsim.SplitPath(nil), v...)
	}
	return out
}
