// Package paraclosuretest is golden testdata for the paraclosure
// analyzer: shared captured writes (scalars, maps, fields, pointers,
// non-disjoint indices), the sanctioned index-disjoint slot idiom, and
// the //lint:allow escape hatch.
package paraclosuretest

import "cisp/internal/parallel"

func badSharedScalar(n int) int {
	total := 0
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += i // want `writes captured variable total`
		}
	})
	return total
}

func goodDisjointSlots(n int) []int {
	out := make([]int, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i // disjoint slot indexed by the callback's own i: no finding
		}
	})
	return out
}

func badCapturedMap(n int, m map[int]int) {
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = i // want `writes captured map m`
		}
	})
}

func badSharedIndex(n int, out []int, j int) {
	parallel.For(n, 1, func(lo, hi int) {
		out[j] = lo // want `non-disjoint access`
	})
}

type acc struct{ sum int }

func badFieldWrite(n int, a *acc) {
	parallel.For(n, 1, func(lo, hi int) {
		a.sum += lo // want `non-disjoint access`
	})
}

func badPointerWrite(n int, p *int) {
	parallel.For(n, 1, func(lo, hi int) {
		*p = lo // want `through captured pointer p`
	})
}

func goodMapPlumbing(n int) []int {
	return parallel.Map(n, 1, func(i int) int { return i * i })
}

func goodReducePlumbing(n int) int {
	return parallel.Reduce(n, 1,
		func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i // closure-local accumulator: no finding
			}
			return s
		},
		func(a, b int) int { return a + b })
}

func goodLoopVarSlot(outs []int) {
	for k := 0; k < 2; k++ {
		parallel.Run(1, []func(){func() { outs[k] = k }}) // per-iteration loop var indexes a disjoint slot: no finding
	}
}

func allowedGuardedWrite(n int) int {
	total := 0
	parallel.For(n, 1, func(lo, hi int) {
		total += lo //lint:allow paraclosure -- testdata: stands in for a mutex-guarded aggregation
	})
	return total
}
