// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigN function runs the corresponding experiment at a
// configurable scale, writes the same rows/series the paper reports to an
// io.Writer, and returns a structured result for programmatic checks
// (tests, benchmarks, EXPERIMENTS.md).
//
// Absolute numbers differ from the paper — the substrates are synthetic
// (see DESIGN.md §2) — but each experiment preserves the published shape:
// who wins, by roughly what factor, and where crossovers fall.
package experiments

import (
	"fmt"
	"io"

	"cisp"
	"cisp/internal/obs"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// Options configures an experiment run.
type Options struct {
	Scale cisp.Scale
	Seed  int64
	Out   io.Writer // nil discards output

	// MaxCities truncates the scenario's city set when > 0 (test speed-ups).
	MaxCities int

	// Parallelism bounds how many independent figure reproductions RunAll
	// executes concurrently. 0 means GOMAXPROCS; 1 forces sequential runs.
	Parallelism int

	// Span is the figure's trace span, set by RunAll so experiments can
	// hang their stage spans under it. Nil (no tracer, or a figure called
	// directly) is a valid no-op parent.
	Span *obs.Span
}

func (o *Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// spanOrRoot opens a stage span under the figure's span when RunAll set
// one, or as a root span on the active tracer when the figure was called
// directly. Either way the result is nil-safe.
func (o *Options) spanOrRoot(name string) *obs.Span {
	if o.Span != nil {
		return o.Span.Child(name)
	}
	return obs.Active().Span(name)
}

// aggregateGbps returns the design throughput target for the scale: the
// paper provisions 100 Gbps at full scale.
func (o *Options) aggregateGbps() float64 {
	switch o.Scale {
	case cisp.ScaleFull:
		return 100
	case cisp.ScaleMedium:
		return 40
	default:
		return 10
	}
}

// simAggregateGbps is the design throughput for the packet-level studies
// (Figs 5 and 11). It is deliberately higher than aggregateGbps so per-link
// loads are large relative to the 1 Gbps series unit: the k² capacity
// quantization is then tight (load 20 Gbps → 25 Gbps capacity), as at the
// paper's 100 Gbps operating point, and saturation appears near 100%% load.
func (o *Options) simAggregateGbps() float64 {
	if o.Scale == cisp.ScaleSmall {
		return 50
	}
	return 100
}

// scenario builds the baseline US scenario for the options.
func (o *Options) scenario() *cisp.Scenario {
	return cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US, Scale: o.Scale, Seed: o.Seed, MaxCities: o.MaxCities,
	})
}

func scaleTo(tm traffic.Matrix, aggregateGbps float64) traffic.Matrix {
	return traffic.ScaleToAggregate(tm, units.Gbps(aggregateGbps))
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
