// Package linkbuild implements Step 1 of the cISP design (§3.1, §4): given a
// tower registry and a line-of-sight evaluator, it finds every feasible
// tower-tower hop, then computes for each city pair the shortest microwave
// link through the tower graph — yielding the per-pair latency distance m_ij
// and cost c_ij (number of towers) that feed the Step-2 optimizer.
//
// The combined graph has city nodes 0..n-1 and tower nodes n..n+T-1. Cities
// attach to towers within AttachRange without a line-of-sight test, matching
// the paper's observation that "each city itself hosts enough towers to use
// as the starting point for connectivity from that site".
package linkbuild

import (
	"math"

	"cisp/internal/cities"
	"cisp/internal/graph"
	"cisp/internal/los"
	"cisp/internal/parallel"
	"cisp/internal/towers"
	"cisp/internal/units"
)

// Config parameterises link construction.
type Config struct {
	// AttachRange is how far a city gateway may reach to its first tower.
	// Default 35 km.
	AttachRange units.Meters
}

func (c *Config) setDefaults() {
	if c.AttachRange == 0 {
		c.AttachRange = 35e3
	}
}

// Links holds the Step-1 output: the hop graph and the all-pairs shortest
// microwave links over it.
type Links struct {
	Cities []cities.City
	Reg    *towers.Registry

	g            *graph.Graph[units.Meters]
	dist         [][]units.Meters // city-city MW latency distance (+Inf if no MW path)
	prev         [][]int          // per-source-city Dijkstra tree over the full graph
	feasibleHops int
}

// Build runs Step 1. Hop feasibility checks run in parallel.
func Build(cs []cities.City, reg *towers.Registry, ev *los.Evaluator, cfg Config) *Links {
	cfg.setDefaults()
	n := len(cs)
	T := reg.Len()
	g := graph.New[units.Meters](n + T)

	// City gateways: attach each city to all towers within range.
	for i, city := range cs {
		for _, id := range reg.WithinRange(city.Loc, cfg.AttachRange) {
			g.AddEdge(i, n+id, city.Loc.DistanceTo(reg.Tower(id).Loc))
		}
	}

	// Candidate tower pairs within microwave range, then LOS checks fanned
	// out on the shared pool (each check owns its feasible[k] slot).
	type pair struct{ i, j int }
	var cands []pair
	reg.Pairs(ev.Params.MaxRange, func(i, j int) {
		cands = append(cands, pair{i, j})
	})
	feasible := make([]bool, len(cands))
	parallel.For(len(cands), 32, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			feasible[k] = ev.HopFeasible(reg.Tower(cands[k].i), reg.Tower(cands[k].j))
		}
	})

	hops := 0
	for k, ok := range feasible {
		if ok {
			i, j := cands[k].i, cands[k].j
			g.AddEdge(n+i, n+j, reg.Tower(i).Loc.DistanceTo(reg.Tower(j).Loc))
			hops++
		}
	}

	// All-pairs shortest microwave links: one Dijkstra per city, each city
	// owning its own row, fanned out on the pool.
	l := &Links{Cities: cs, Reg: reg, g: g, feasibleHops: hops}
	l.dist = make([][]units.Meters, n)
	l.prev = make([][]int, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d, p := g.Dijkstra(i)
			l.dist[i] = d[:n:n]
			l.prev[i] = p
		}
	})
	// Mirror for exact symmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.dist[j][i] = l.dist[i][j]
		}
	}
	return l
}

// FeasibleHops returns the number of feasible tower-tower hops found —
// comparable to the paper's 261,019 (at its full data scale).
func (l *Links) FeasibleHops() int { return l.feasibleHops }

// Graph exposes the combined city+tower hop graph.
func (l *Links) Graph() *graph.Graph[units.Meters] { return l.g }

// MWDist returns the length of the shortest microwave link between
// cities i and j, or +Inf if no tower path exists. Microwave propagates at
// c, so this is also the latency-equivalent distance m_ij.
func (l *Links) MWDist(i, j int) units.Meters {
	if i == j {
		return 0
	}
	return l.dist[i][j]
}

// Path returns the node sequence of the shortest link from city i to city j
// over the combined graph (city IDs < len(Cities), tower nodes offset by
// len(Cities)), or nil if unreachable.
func (l *Links) Path(i, j int) []int {
	if math.IsInf(float64(l.dist[i][j]), 1) {
		return nil
	}
	var rev []int
	for v := j; v != -1; v = l.prev[i][v] {
		rev = append(rev, v)
		if v == i {
			break
		}
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// TowerPath returns the registry tower IDs along the i→j link, in order.
func (l *Links) TowerPath(i, j int) []int {
	n := len(l.Cities)
	var ts []int
	for _, v := range l.Path(i, j) {
		if v >= n {
			ts = append(ts, v-n)
		}
	}
	return ts
}

// TowerCount returns c_ij, the cost of the i→j link in towers (the paper's
// budget unit). Zero means no microwave path exists (or i==j).
func (l *Links) TowerCount(i, j int) int { return len(l.TowerPath(i, j)) }

// Hops returns the physical tower-tower hops of the i→j link as ordered
// tower-ID pairs (gateway city-tower segments excluded).
func (l *Links) Hops(i, j int) [][2]int {
	ts := l.TowerPath(i, j)
	if len(ts) < 2 {
		return nil
	}
	out := make([][2]int, 0, len(ts)-1)
	for k := 0; k+1 < len(ts); k++ {
		out = append(out, [2]int{ts[k], ts[k+1]})
	}
	return out
}

// DisjointTowerPaths returns up to k tower-disjoint microwave paths between
// cities i and j: after each path is found its towers are removed and the
// search repeats — the paper's Fig 4b procedure.
func (l *Links) DisjointTowerPaths(i, j, k int) (lengths []units.Meters) {
	_, lens := l.g.DisjointPaths(i, j, k)
	return lens
}
