// Package hotpathalloctest is golden testdata for the hotpathalloc
// analyzer: every allocation shape inside //cisp:hotpath functions,
// stack-safe negatives, the unannotated control and the //lint:allow
// escape hatch.
package hotpathalloctest

type item struct{ a, b int }

//cisp:hotpath
func allocShapes(s []int) {
	p := &item{a: 1} // want `&composite literal`
	_ = p
	sl := []int{1, 2} // want `slice literal`
	_ = sl
	m := map[int]int{} // want `map literal`
	_ = m
	b := make([]int, 4) // want `hot path heap-allocates: make`
	_ = b
	n := new(item) // want `hot path heap-allocates: new`
	_ = n
	s = append(s, 1) // want `append can grow its backing array`
	_ = s
}

//cisp:hotpath
func boxing(xs *[]interface{}, it item) {
	push(xs, it) // want `boxes this .*item argument`
}

func push(xs *[]interface{}, x interface{}) { *xs = append(*xs, x) }

//cisp:hotpath
func pointerShapedIsFine(xs *[]interface{}, it *item) {
	push(xs, it) // pointers are interface-direct: no finding
}

//cisp:hotpath
func variadicSlice() {
	sink("a", "b") // want `variadic call builds its argument slice`
}

func sink(args ...string) {}

//cisp:hotpath
func capturingClosure(k int) func() int {
	f := func() int { return k } // want `closure captures k`
	return f
}

//cisp:hotpath
func staticClosureIsFine() func() int {
	f := func() int { return 42 } // captures nothing: no finding
	return f
}

//cisp:hotpath
func stringConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//cisp:hotpath
func stringConv(bs []byte) string {
	return string(bs) // want `string/slice conversion copies`
}

//cisp:hotpath
func valueLiteralIsFine() item {
	return item{a: 1, b: 2} // value struct literal stays on the stack: no finding
}

// unannotated: the same shapes report nothing.
func notHot() []int {
	return []int{1, 2, 3}
}

//cisp:hotpath
func allowedAmortized(s []int) []int {
	return append(s, 1) //lint:allow hotpathalloc -- testdata: amortized growth, capacity reused across events
}
