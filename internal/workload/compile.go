package workload

import (
	"fmt"
	"math"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/resilience"
	"cisp/internal/traffic"
	"cisp/internal/units"
	"cisp/internal/weather"
)

// Kind selects a scenario archetype.
type Kind int

// The scenario archetypes.
const (
	// Diurnal is a plain population snapshot: the timezone-staggered
	// activity curve at the spec's UTC hour, demand flowing to the
	// default sinks.
	Diurnal Kind = iota

	// FlashCrowd models a live event at EventSite: every site's media
	// demand redirects to the event origin and scales by SurgeFactor —
	// the whole country tuning into one stream with no CDN absorbing it.
	FlashCrowd

	// Disaster models a regional emergency at EventSite: activity of
	// every site within RadiusM surges by SurgeFactor (everyone checking
	// in at once) while a convective storm parks over the epicenter and a
	// nearby fiber conduit is cut — the compound failure schedule PR 5's
	// resilience layer exists for.
	Disaster

	// CDNPlacement places SinkCount replicas by greedy weighted k-median
	// over the active-user distribution and serves the client-server
	// classes from them instead of the default data-center sinks.
	CDNPlacement
)

func (k Kind) String() string {
	switch k {
	case Diurnal:
		return "diurnal"
	case FlashCrowd:
		return "flashcrowd"
	case Disaster:
		return "disaster"
	case CDNPlacement:
		return "cdn"
	}
	return "unknown"
}

// Disaster drill timing: the compiled schedule spans an hour of real time
// — storm intervals of drillIntervalSec bracketed by clear sky, with the
// conduit cut overlapping the storm — and the Pipeline compresses it into
// the replay horizon while the availability walk uses the real durations.
const (
	drillIntervalSec = 900.0
	drillIntervals   = 4
	drillHorizonSec  = drillIntervalSec * drillIntervals
	cutStartSec      = 1200.0
	cutEndSec        = 3000.0
)

// Spec describes one scenario. The zero value of every field is a usable
// default: midnight UTC (evening across the US), a 0.6 penetration, the
// most populous site as the event focus (site 0 — Coalesce sorts by
// descending population), and kind-appropriate surge factors.
type Spec struct {
	Name string
	Kind Kind

	// Mix is the application mix; an invalid (e.g. zero) mix means
	// DefaultMix.
	Mix AppMix

	// Penetration is the subscriber fraction of each city's population.
	// Default 0.6.
	Penetration float64

	// UTCHour is the demand snapshot instant. The zero default (00:00
	// UTC) is 19:00 on the US east coast — the evening peak sweeping
	// westward.
	UTCHour float64

	// Seed drives the scenario's deterministic draws.
	Seed int64

	// EventSite focuses FlashCrowd and Disaster scenarios. Default 0,
	// the most populous site.
	EventSite int

	// SurgeFactor scales the focused demand. Defaults: 8 for FlashCrowd,
	// 3 for Disaster.
	SurgeFactor float64

	// RadiusM is the disaster's affected radius (also the storm cell
	// radius). Default 300 km.
	RadiusM units.Meters

	// SinkCount is how many replicas CDNPlacement places. Default 4.
	SinkCount int
}

func (s Spec) withDefaults() Spec {
	if !s.Mix.Valid() {
		s.Mix = DefaultMix()
	}
	if s.Penetration <= 0 {
		s.Penetration = 0.6
	}
	if s.SurgeFactor <= 0 {
		if s.Kind == Disaster {
			s.SurgeFactor = 3
		} else {
			s.SurgeFactor = 8
		}
	}
	if s.RadiusM <= 0 {
		s.RadiusM = 300e3
	}
	if s.SinkCount <= 0 {
		s.SinkCount = 4
	}
	if s.Name == "" {
		s.Name = s.Kind.String()
	}
	return s
}

// Compiled is a scenario lowered onto a Backbone: the active-user vector,
// the per-application absolute demand matrices, the serving sinks, and —
// for Disaster — the compound failure schedule over the hybrid link list.
type Compiled struct {
	Spec     Spec
	Backbone *Backbone

	Users      []float64 // concurrently active users per site
	TotalUsers float64
	Sinks      []int // serving sites of the client-server classes

	PerApp      [NumApps]traffic.Matrix // absolute bps
	OfferedGbps float64                 // Σ over apps and pairs

	// Schedule is the failure timetable over the hybrid link list
	// (microwave prefix, fiber suffix), in drill time; nil when the
	// scenario has no failures. StormFadedLinks and CutLink summarise it.
	Schedule        *resilience.Schedule
	StormFadedLinks int
	CutLink         int // hybrid link index of the cut conduit, -1 if none
}

// Compile lowers a scenario spec onto a backbone substrate. It is pure
// and deterministic: same spec and backbone, same compiled scenario.
func Compile(spec Spec, b *Backbone) (*Compiled, error) {
	spec = spec.withDefaults()
	n := len(b.Sites)
	if n == 0 {
		return nil, fmt.Errorf("workload: backbone has no sites")
	}
	if spec.EventSite < 0 || spec.EventSite >= n {
		return nil, fmt.Errorf("workload: event site %d outside %d sites", spec.EventSite, n)
	}
	c := &Compiled{Spec: spec, Backbone: b, CutLink: -1}

	c.Users = ActiveUsers(b.Sites, spec.Penetration, spec.UTCHour)
	if spec.Kind == Disaster {
		epi := b.Sites[spec.EventSite].Loc
		for i, s := range b.Sites {
			if s.Loc.DistanceTo(epi) <= spec.RadiusM {
				c.Users[i] *= spec.SurgeFactor
			}
		}
	}
	for _, u := range c.Users {
		c.TotalUsers += u
	}
	if c.TotalUsers <= 0 {
		return nil, fmt.Errorf("workload: no active users (all sites zero-population?)")
	}

	// Serving sinks: the substrate's data centers, unless the scenario
	// places its own replicas (or the substrate has no DC sites).
	c.Sinks = cities.DataCenterIdx(b.Sites)
	if spec.Kind == CDNPlacement || len(c.Sinks) == 0 {
		c.Sinks = PlaceSinks(b.Sites, c.Users, spec.SinkCount)
	}

	// Per-application demand. Gaming and media are client-server: each
	// site's aggregate user rate flows to its nearest sink. Web is mostly
	// client-server with a gravity-model tail (peer links, federated
	// services): 70% to the nearest sink, 30% population-gravity.
	weightsOf := func(a App) []float64 {
		w := make([]float64, n)
		p := spec.Mix[a]
		for i, u := range c.Users {
			w[i] = u * p.Share * p.RateBps
		}
		return w
	}
	gw := weightsOf(Gaming)
	c.PerApp[Gaming] = traffic.WeightedNearest(b.Sites, gw, c.Sinks)

	mw := weightsOf(Media)
	if spec.Kind == FlashCrowd {
		// The live event: every site pulls the stream straight from the
		// origin, at SurgeFactor times the usual media load.
		for i := range mw {
			mw[i] *= spec.SurgeFactor
		}
		c.PerApp[Media] = traffic.WeightedNearest(b.Sites, mw, []int{spec.EventSite})
	} else {
		c.PerApp[Media] = traffic.WeightedNearest(b.Sites, mw, c.Sinks)
	}

	ww := weightsOf(Web)
	var webTotal float64
	for _, w := range ww {
		webTotal += w
	}
	c.PerApp[Web] = traffic.Mix([]float64{0.7 * webTotal, 0.3 * webTotal},
		traffic.WeightedNearest(b.Sites, ww, c.Sinks), traffic.Gravity(ww))

	for _, m := range c.PerApp {
		c.OfferedGbps += units.BitsPerSecond(m.Total()).Gbps()
	}

	if spec.Kind == Disaster {
		if err := c.compileDisasterSchedule(spec, b); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// compileDisasterSchedule builds the compound failure timetable: a storm
// cell over the epicenter fading microwave links for the middle two drill
// intervals, merged with a cut of the fiber conduit nearest the epicenter.
func (c *Compiled) compileDisasterSchedule(spec Spec, b *Backbone) error {
	epi := b.Sites[spec.EventSite].Loc
	field := &weather.Field{Cells: []weather.StormCell{{
		Center: epi,
		Radius: spec.RadiusM,
		PeakMM: 40,
	}}}
	conds := make([]weather.LinkCondition, len(b.Mw))
	for li, l := range b.Mw {
		atten := field.PathAttenuation(b.Sites[l.A].Loc, b.Sites[l.B].Loc, geo.DefaultFrequencyGHz, 2000)
		conds[li] = weather.LinkCondition{
			WorstHopDB: atten,
			CapFrac:    weather.CapacityFraction(atten, weather.DefaultFadeMargin),
			Failed:     atten > weather.DefaultFadeMargin,
		}
		if conds[li].Failed {
			c.StormFadedLinks++
		}
	}
	nHybrid := len(b.Mw) + len(b.Fiber)
	intervals := make([][]weather.LinkCondition, drillIntervals)
	intervals[1], intervals[2] = conds, conds
	storm := resilience.WeatherSchedule(intervals, drillIntervalSec, nHybrid)

	// The conduit cut: the fiber link between real sites (not midpoint
	// transit halves) whose midpoint lies closest to the epicenter.
	nSites := len(b.Sites)
	bestFi, bestD := -1, units.Meters(math.Inf(1))
	for fi, l := range b.Fiber {
		if l.A >= nSites || l.B >= nSites {
			continue
		}
		a, bb := b.Sites[l.A].Loc, b.Sites[l.B].Loc
		mid := geo.Point{Lat: (a.Lat + bb.Lat) / 2, Lon: (a.Lon + bb.Lon) / 2}
		if d := mid.DistanceTo(epi); d < bestD {
			bestFi, bestD = fi, d
		}
	}
	sched := storm
	if bestFi >= 0 {
		c.CutLink = len(b.Mw) + bestFi
		cut := &resilience.Schedule{
			Horizon:  drillHorizonSec,
			NumLinks: nHybrid,
			Outages:  []resilience.Outage{{Link: c.CutLink, Start: cutStartSec, End: cutEndSec}},
		}
		var err error
		if sched, err = resilience.Merge(storm, cut); err != nil {
			return err
		}
	}
	c.Schedule = sched
	return nil
}

// Commodities converts the compiled demand into the commodity list of a
// Scenario replay, with totalFlows concurrent flows apportioned first
// across applications in proportion to demand-bytes over payload (so a
// class of thin flows gets many flows per offered bit) and then across
// each application's positive pairs by traffic.FlowCounts. Each commodity
// carries its application's FlowBytes payload and a Demand equal to the
// load the replay actually offers (count · payload · 8 / window), so the
// TE planner optimises against the injected traffic.
//
// Flow IDs are assigned by application order then row-major pair order
// over ALL positive pairs — independent of totalFlows — so IDs are stable
// between a clamped packet replay and a full-scale fluid replay (the same
// contract as experiments.DemandCommodities) and the returned appOf map is
// valid for both. Deterministic in the compiled scenario and arguments.
func (c *Compiled) Commodities(totalFlows int, window float64) (comms []netsim.Commodity, appOf map[int]App) {
	appOf = make(map[int]App)
	if totalFlows <= 0 || window <= 0 {
		return nil, appOf
	}
	// Apportion flows across applications: quota_a ∝ demand_a / payload_a,
	// largest-remainder so the counts sum exactly to totalFlows.
	var loads [NumApps]float64
	var totalLoad float64
	for a := App(0); a < NumApps; a++ {
		loads[a] = c.PerApp[a].Total() / float64(c.Spec.Mix[a].FlowBytes)
		totalLoad += loads[a]
	}
	var flowsFor [NumApps]int
	if totalLoad > 0 {
		assigned := 0
		var fracs [NumApps]float64
		for a := App(0); a < NumApps; a++ {
			quota := float64(totalFlows) * loads[a] / totalLoad
			flowsFor[a] = int(math.Floor(quota))
			fracs[a] = quota - float64(flowsFor[a])
			assigned += flowsFor[a]
		}
		for rem := totalFlows - assigned; rem > 0; rem-- {
			best := App(0)
			for a := App(1); a < NumApps; a++ {
				if fracs[a] > fracs[best] {
					best = a
				}
			}
			flowsFor[best]++
			fracs[best] = -1
		}
	}

	base := 0
	for a := App(0); a < NumApps; a++ {
		m := c.PerApp[a]
		counts := map[[2]int]int{}
		for _, p := range traffic.FlowCounts(m, flowsFor[a]) {
			counts[[2]int{p.I, p.J}] = p.Count
		}
		payload := c.Spec.Mix[a].FlowBytes
		ord := 0
		for i := 0; i < m.N(); i++ {
			for j := i + 1; j < m.N(); j++ {
				if m[i][j] <= 0 {
					continue
				}
				ord++
				flow := base + ord
				appOf[flow] = a
				n := counts[[2]int{i, j}]
				if n == 0 {
					continue
				}
				comms = append(comms, netsim.Commodity{
					Flow: flow, Src: i, Dst: j,
					Demand:    units.Bytes(float64(n) * float64(payload)).Per(units.Seconds(window)),
					Count:     n,
					FlowBytes: payload,
				})
			}
		}
		base += ord
	}
	return comms, appOf
}
