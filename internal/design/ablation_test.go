package design

import (
	"math"
	"testing"
)

// naiveGreedy re-evaluates every candidate against the current topology on
// every iteration — the O(iterations · candidates · n²) baseline that the
// lazy heap in Greedy avoids. Used by tests and the APSP/laziness ablation
// benchmarks to verify the accelerated greedy matches it.
func naiveGreedy(p *Problem) *Topology {
	t := NewTopology(p)
	remaining := p.Budget
	type cand struct{ i, j int }
	var cands []cand
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.usefulLink(i, j, t.fiberD) {
				cands = append(cands, cand{i, j})
			}
		}
	}
	used := make([]bool, len(cands))
	for {
		best, bestGain := -1, 0.0
		for k, c := range cands {
			if used[k] || p.MWCost[c.i][c.j] > remaining {
				continue
			}
			if g := t.gainOf(c.i, c.j); g > bestGain {
				best, bestGain = k, g
			}
		}
		if best < 0 {
			return t
		}
		used[best] = true
		t.AddLink(cands[best].i, cands[best].j)
		remaining -= p.MWCost[cands[best].i][cands[best].j]
	}
}

// TestLazyGreedyNearNaive: lazy evaluation is exact when marginal gains are
// non-increasing; shortest-path gains occasionally increase (adding a link
// can make another link's endpoints better connected), so lazy greedy may
// deviate from exhaustive greedy between refreshes. Quality must stay
// within 0.05 stretch, and GreedyILP's candidate refinement must close the gap.
func TestLazyGreedyNearNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: naive-greedy equivalence sweep")
	}
	for seed := int64(0); seed < 10; seed++ {
		p := randomProblem(seed+900, 10, 40)
		lazy := Greedy(p, GreedyOptions{}).MeanStretch()
		naive := naiveGreedy(p).MeanStretch()
		if math.Abs(lazy-naive) > 0.05 {
			t.Errorf("seed %d: lazy %v vs exhaustive %v — gap > 0.05", seed, lazy, naive)
		}
		refined := GreedyILP(p, 0).MeanStretch()
		if refined > naive+1e-9 {
			t.Errorf("seed %d: GreedyILP (%v) worse than exhaustive greedy (%v)", seed, refined, naive)
		}
	}
}

// fullRecomputeTopology mimics Topology.AddLink but rebuilds the APSP with
// Floyd-Warshall each time — the O(n³) baseline for the ablation.
func fullRecomputeAdd(t *Topology, links [][2]int) {
	p := t.P
	d := t.d
	for i := range d {
		copy(d[i], t.fiberD[i])
	}
	for _, l := range links {
		w := p.MW[l[0]][l[1]]
		if w < d[l[0]][l[1]] {
			d[l[0]][l[1]], d[l[1]][l[0]] = w, w
		}
	}
	floydWarshall(d)
}

// BenchmarkAblationAPSPUpdate compares the O(n²) single-edge APSP update
// used inside the greedy loop against a full O(n³) Floyd-Warshall
// recomputation (DESIGN.md §4).
func BenchmarkAblationAPSPUpdate(b *testing.B) {
	p := randomProblem(1, 60, 1e9)
	base := NewTopology(p)
	var links [][2]int
	for i := 0; i < p.N && len(links) < 20; i++ {
		for j := i + 1; j < p.N && len(links) < 20; j++ {
			if !math.IsInf(p.MW[i][j], 1) {
				links = append(links, [2]int{i, j})
			}
		}
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := base.Clone()
			for _, l := range links {
				t.AddLink(l[0], l[1])
			}
		}
	})
	b.Run("floyd-recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := base.Clone()
			for k := range links {
				fullRecomputeAdd(t, links[:k+1])
			}
		}
	})
}

// BenchmarkAblationLazyGreedy compares accelerated greedy vs naive full
// re-evaluation.
func BenchmarkAblationLazyGreedy(b *testing.B) {
	p := randomProblem(2, 30, 150)
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Greedy(p, GreedyOptions{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveGreedy(p)
		}
	})
}
