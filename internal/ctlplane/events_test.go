package ctlplane

import (
	"strings"
	"testing"
)

// The decoder guards the injection endpoint: every malformed body must be
// rejected with an error (never a panic, never a partial apply), and the
// accepted forms must round-trip exactly.
func TestDecodeEventsAccepts(t *testing.T) {
	const nMw, nLinks = 5, 15
	evs, err := DecodeEvents(strings.NewReader(
		`{"events":[{"type":"fade","link":2,"capfrac":0.5},{"type":"fail","link":14},{"type":"repair","link":14}]}`), nMw, nLinks)
	if err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	want := []Event{
		{Type: EventFade, Link: 2, CapFrac: 0.5},
		{Type: EventFail, Link: 14},
		{Type: EventRepair, Link: 14},
	}
	if len(evs) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	// Fade to zero (rained out) and to one (clear) are both legal.
	if _, err := DecodeEvents(strings.NewReader(
		`{"events":[{"type":"fade","link":0,"capfrac":0},{"type":"fade","link":0,"capfrac":1}]}`), nMw, nLinks); err != nil {
		t.Fatalf("boundary fades rejected: %v", err)
	}
}

func TestDecodeEventsRejects(t *testing.T) {
	const nMw, nLinks = 5, 15
	cases := []struct {
		name, body, want string
	}{
		{"garbage", `not json`, "decoding"},
		{"empty batch", `{"events":[]}`, "empty"},
		{"no envelope", `[{"type":"fade","link":0,"capfrac":1}]`, "decoding"},
		{"unknown field", `{"events":[{"type":"fade","link":0,"capfrac":1,"x":1}]}`, "decoding"},
		{"trailing data", `{"events":[{"type":"fail","link":0}]}{}`, "trailing"},
		{"unknown type", `{"events":[{"type":"flood","link":0}]}`, "unknown event type"},
		{"fade beyond mw prefix", `{"events":[{"type":"fade","link":5,"capfrac":0.5}]}`, "outside microwave range"},
		{"fade negative link", `{"events":[{"type":"fade","link":-1,"capfrac":0.5}]}`, "outside microwave range"},
		{"fail beyond topology", `{"events":[{"type":"fail","link":15}]}`, "outside topology range"},
		{"repair negative link", `{"events":[{"type":"repair","link":-2}]}`, "outside topology range"},
		{"capfrac above one", `{"events":[{"type":"fade","link":1,"capfrac":1.5}]}`, "outside [0,1]"},
		{"capfrac negative", `{"events":[{"type":"fade","link":1,"capfrac":-0.25}]}`, "outside [0,1]"},
		{"capfrac overflow", `{"events":[{"type":"fade","link":1,"capfrac":1e999}]}`, "decoding"},
		{"capfrac on fail", `{"events":[{"type":"fail","link":1,"capfrac":0.5}]}`, "carries a capfrac"},
		{"capfrac not a number", `{"events":[{"type":"fade","link":1,"capfrac":"wet"}]}`, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs, err := DecodeEvents(strings.NewReader(tc.body), nMw, nLinks)
			if err == nil {
				t.Fatalf("accepted %q as %+v", tc.body, evs)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzDecodeEvents drives the injection decoder with arbitrary bodies:
// whatever arrives, it must never panic, and anything it accepts must
// pass per-event validation — the property the HTTP 400 path rests on.
func FuzzDecodeEvents(f *testing.F) {
	f.Add(`{"events":[{"type":"fade","link":0,"capfrac":0.5}]}`)
	f.Add(`{"events":[{"type":"fail","link":3}]}`)
	f.Add(`{"events":[{"type":"repair","link":3}]}`)
	f.Add(`{"events":[]}`)
	f.Add(`{"events":[{"type":"fade","link":0,"capfrac":1e999}]}`)
	f.Add(`{"events":[{"type":"fade","link":99,"capfrac":0.5}]}`)
	f.Add(`not json at all`)
	f.Add(`{"events":[{"type":"fail","link":0}]}{}`)
	f.Fuzz(func(t *testing.T, body string) {
		const nMw, nLinks = 5, 15
		evs, err := DecodeEvents(strings.NewReader(body), nMw, nLinks)
		if err != nil {
			return
		}
		if len(evs) == 0 {
			t.Fatalf("accepted a batch with no events: %q", body)
		}
		for i, ev := range evs {
			if verr := validateEvent(ev, nMw, nLinks); verr != nil {
				t.Fatalf("accepted invalid event %d (%+v) from %q: %v", i, ev, body, verr)
			}
		}
	})
}
