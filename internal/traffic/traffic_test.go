package traffic

import (
	"math"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/units"
)

func TestPopulationProduct(t *testing.T) {
	cs := cities.USCenters()[:10]
	m := PopulationProduct(cs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two largest centers should carry the max demand of exactly 1.
	if m[0][1] != 1 {
		t.Fatalf("largest pair demand = %v, want 1 after normalisation", m[0][1])
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] > 1 {
				t.Fatalf("demand (%d,%d) = %v > 1", i, j, m[i][j])
			}
		}
	}
	// Monotone in population product: pair (0,1) >= pair (8,9).
	if m[8][9] > m[0][1] {
		t.Fatal("smaller cities carry more traffic than larger ones")
	}
}

func TestUniformPairs(t *testing.T) {
	m := UniformPairs(6, []int{1, 3, 5})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[1][3] != 1 || m[3][5] != 1 || m[1][5] != 1 {
		t.Fatal("DC pairs not uniform")
	}
	if m[0][1] != 0 || m[2][4] != 0 {
		t.Fatal("non-DC pairs carry traffic")
	}
	if m.Total() != 3 {
		t.Fatalf("total = %v, want 3", m.Total())
	}
}

func TestCityToDC(t *testing.T) {
	us := cities.USCenters()[:8]
	dcs := cities.GoogleDCs()
	all := append(append([]cities.City(nil), us...), dcs...)
	cityIdx := make([]int, len(us))
	for i := range us {
		cityIdx[i] = i
	}
	dcIdx := make([]int, len(dcs))
	for i := range dcs {
		dcIdx[i] = len(us) + i
	}
	m := CityToDC(all, cityIdx, dcIdx)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every city has demand to exactly one DC.
	for _, ci := range cityIdx {
		nonzero := 0
		for _, di := range dcIdx {
			if m[ci][di] > 0 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("city %d connects to %d DCs, want 1", ci, nonzero)
		}
	}
	// No city-city or DC-DC demand.
	for a := 0; a < len(us); a++ {
		for b := a + 1; b < len(us); b++ {
			if m[a][b] != 0 {
				t.Fatal("city-city demand present in DC-edge model")
			}
		}
	}
}

func TestMixProportions(t *testing.T) {
	a := New(4)
	a.Set(0, 1, 5) // total 5
	b := New(4)
	b.Set(2, 3, 2) // total 2
	m := Mix([]float64{4, 3}, a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// After normalisation the components contribute 4 and 3.
	if math.Abs(m[0][1]-4) > 1e-9 || math.Abs(m[2][3]-3) > 1e-9 {
		t.Fatalf("mix = %v / %v, want 4 / 3", m[0][1], m[2][3])
	}
	if math.Abs(m.Total()-7) > 1e-9 {
		t.Fatalf("mix total = %v, want 7", m.Total())
	}
}

func TestScaleToAggregate(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 3)
	s := ScaleToAggregate(m, units.Gbps(100))
	if math.Abs(s.Total()-100) > 1e-9 {
		t.Fatalf("scaled total = %v, want 100", s.Total())
	}
	// Proportions preserved.
	if math.Abs(s[1][2]/s[0][1]-3) > 1e-9 {
		t.Fatal("scaling distorted proportions")
	}
	// Original untouched.
	if m.Total() != 4 {
		t.Fatal("ScaleToAggregate mutated its input")
	}
}

func TestScaleZeroMatrix(t *testing.T) {
	m := New(3)
	s := ScaleToAggregate(m, units.Gbps(100))
	if s.Total() != 0 {
		t.Fatal("scaling a zero matrix should stay zero")
	}
}

func TestPerturbPopulations(t *testing.T) {
	cs := cities.USCenters()[:20]
	p1 := PerturbPopulations(cs, 0.3, 7)
	p2 := PerturbPopulations(cs, 0.3, 7)
	for i := range p1 {
		if p1[i].Population != p2[i].Population {
			t.Fatal("perturbation not deterministic")
		}
		lo := int(float64(cs[i].Population) * 0.699)
		hi := int(float64(cs[i].Population) * 1.301)
		if p1[i].Population < lo || p1[i].Population > hi {
			t.Fatalf("city %d perturbed outside [1-γ,1+γ]: %d not in [%d,%d]",
				i, p1[i].Population, lo, hi)
		}
	}
	// γ=0 is identity.
	p0 := PerturbPopulations(cs, 0, 7)
	for i := range p0 {
		if p0[i].Population != cs[i].Population {
			t.Fatal("γ=0 changed populations")
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	m := New(3)
	m[0][1] = 5 // set without mirror
	if err := m.Validate(); err == nil {
		t.Fatal("asymmetric matrix validated")
	}
}

func TestMixPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mix([]float64{1}, New(2), New(2))
}

func TestFlowCountsExactTotal(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 4)
	m.Set(0, 2, 3)
	m.Set(1, 3, 3)
	for _, total := range []int{1, 10, 97, 100_000} {
		pairs := FlowCounts(m, total)
		sum := 0
		for _, p := range pairs {
			if p.I >= p.J {
				t.Fatalf("pair not ordered: %+v", p)
			}
			sum += p.Count
		}
		if sum != total {
			t.Fatalf("total=%d apportioned %d", total, sum)
		}
	}
}

func TestFlowCountsProportional(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 7)
	m.Set(1, 2, 3)
	pairs := FlowCounts(m, 1000)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].Count != 700 || pairs[1].Count != 300 {
		t.Fatalf("want 700/300 split, got %v", pairs)
	}
}

func TestFlowCountsEdgeCases(t *testing.T) {
	if FlowCounts(New(3), 100) != nil {
		t.Fatal("zero matrix should yield no pairs")
	}
	m := New(3)
	m.Set(0, 1, 1)
	if FlowCounts(m, 0) != nil {
		t.Fatal("zero total should yield no pairs")
	}
	// Fewer flows than pairs: zero-count pairs are dropped.
	big := New(10)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			big.Set(i, j, 1)
		}
	}
	pairs := FlowCounts(big, 3)
	sum := 0
	for _, p := range pairs {
		if p.Count <= 0 {
			t.Fatalf("zero-count pair emitted: %+v", p)
		}
		sum += p.Count
	}
	if sum != 3 {
		t.Fatalf("apportioned %d, want 3", sum)
	}
}

func TestFlowCountsDeterministic(t *testing.T) {
	m := New(5)
	m.Set(0, 1, 0.31)
	m.Set(0, 2, 0.27)
	m.Set(1, 3, 0.22)
	m.Set(2, 4, 0.2)
	a := FlowCounts(m, 12345)
	b := FlowCounts(m, 12345)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHotspot(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	m.Set(1, 3, 3)
	h := Hotspot(m, 1, 8, 42)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	spiked := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			switch {
			case h[i][j] == m[i][j]*8 && m[i][j] > 0:
				spiked++
			case h[i][j] != m[i][j]:
				t.Fatalf("entry (%d,%d) = %v, want %v or %v", i, j, h[i][j], m[i][j], m[i][j]*8)
			}
		}
	}
	if spiked != 1 {
		t.Fatalf("spiked %d pairs, want 1", spiked)
	}
	// Deterministic in seed; a different seed may pick a different pair.
	h2 := Hotspot(m, 1, 8, 42)
	for i := range h {
		for j := range h[i] {
			if h[i][j] != h2[i][j] {
				t.Fatalf("Hotspot not deterministic at (%d,%d)", i, j)
			}
		}
	}
	// More pairs than positives: every positive entry spikes, zeros stay.
	all := Hotspot(m, 10, 2, 1)
	if all.Total() != 2*m.Total() {
		t.Fatalf("full spike total = %v, want %v", all.Total(), 2*m.Total())
	}
	if all[2][3] != 0 {
		t.Fatal("zero entry spiked")
	}
}

func TestDiurnal(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 2)
	m.Set(1, 2, 4)

	if d := Diurnal(m, 9, 0, 1); d.Total() != m.Total() {
		t.Fatalf("zero amplitude changed the matrix: %v vs %v", d.Total(), m.Total())
	}

	d := Diurnal(m, 9, 0.5, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic in seed.
	d2 := Diurnal(m, 9, 0.5, 1)
	for i := range d {
		for j := range d[i] {
			if d[i][j] != d2[i][j] {
				t.Fatalf("Diurnal not deterministic at (%d,%d)", i, j)
			}
		}
	}
	// The 24-hour mean of every entry is its base value (sin integrates to
	// zero over a period when amplitude <= 1 keeps the clamp inactive).
	sum := New(3)
	const steps = 240
	for k := 0; k < steps; k++ {
		dk := Diurnal(m, 24*float64(k)/steps, 0.5, 1)
		for i := range sum {
			for j := range sum[i] {
				sum[i][j] += dk[i][j] / steps
			}
		}
	}
	for i := range sum {
		for j := range sum[i] {
			if diff := math.Abs(sum[i][j] - m[i][j]); diff > 1e-9*float64(steps) && diff > 1e-6 {
				t.Fatalf("24h mean at (%d,%d) = %v, want %v", i, j, sum[i][j], m[i][j])
			}
		}
	}
	// Amplitude actually moves demand at some hour.
	moved := false
	for h := 0; h < 24; h++ {
		if Diurnal(m, float64(h), 0.5, 1)[0][1] != m[0][1] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("diurnal profile flat across the day")
	}
}

func TestGravityMatchesPopulationProduct(t *testing.T) {
	cs := []cities.City{
		{Name: "a", Population: 100, Loc: geo.Point{Lat: 40, Lon: -100}},
		{Name: "b", Population: 50, Loc: geo.Point{Lat: 41, Lon: -90}},
		{Name: "c", Population: 10, Loc: geo.Point{Lat: 42, Lon: -80}},
	}
	w := make([]float64, len(cs))
	for i, c := range cs {
		w[i] = float64(c.Population)
	}
	g := Gravity(w)
	p := PopulationProduct(cs)
	for i := range g {
		for j := range g[i] {
			if math.Abs(g[i][j]-p[i][j]) > 1e-12 {
				t.Fatalf("Gravity(pops) != PopulationProduct at (%d,%d): %v vs %v", i, j, g[i][j], p[i][j])
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if Gravity([]float64{0, 0}).Total() != 0 {
		t.Fatal("zero weights should yield zero demand")
	}
}

func TestWeightedNearest(t *testing.T) {
	cs := []cities.City{
		{Name: "west", Loc: geo.Point{Lat: 40, Lon: -120}},
		{Name: "mid", Loc: geo.Point{Lat: 40, Lon: -100}},
		{Name: "east", Loc: geo.Point{Lat: 40, Lon: -80}},
		{Name: "sink-w", Loc: geo.Point{Lat: 40, Lon: -118}},
		{Name: "sink-e", Loc: geo.Point{Lat: 40, Lon: -82}},
	}
	w := []float64{3e9, 2e9, 1e9, 5e9, 0}
	m := WeightedNearest(cs, w, []int{3, 4})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[0][3] != 3e9 {
		t.Fatalf("west should send its full 3 Gbps to sink-w, got %v", m[0][3])
	}
	if m[2][4] != 1e9 {
		t.Fatalf("east should send to sink-e, got %v", m[2][4])
	}
	if m[1][3] == 0 && m[1][4] == 0 {
		t.Fatal("mid sends nowhere")
	}
	// A site that is itself a sink generates no backbone demand, whatever
	// its weight.
	for j := range cs {
		if m[3][j] != 0 && j != 0 && j != 1 && j != 2 {
			t.Fatalf("sink-w should not originate demand, sends to %d", j)
		}
	}
	row := 0.0
	for _, v := range m[3] {
		row += v
	}
	if row != m[0][3]+m[1][3] && m[1][3] == 0 {
		t.Fatalf("sink-w row should only carry inbound demand")
	}
}
