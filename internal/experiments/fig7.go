package experiments

import (
	"cisp/internal/weather"
)

// Fig7Result carries the Fig 7 weather study: per-pair stretch statistics
// over a sampled year, plus the fiber baseline.
type Fig7Result struct {
	MedianBest  float64
	MedianP99   float64
	MedianWorst float64
	MedianFiber float64
	Analysis    *weather.YearAnalysis
}

// Fig7Weather reproduces §6.1: for each day of the study a random 30-minute
// interval's precipitation field fails microwave links past the ITU fade
// margin; traffic reroutes over surviving links and fiber. The paper's
// findings: 99th-percentile latency ≈ fair-weather latency, and even the
// worst day beats fiber by ~1.7× in the median.
func Fig7Weather(opt Options, days int) *Fig7Result {
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig7: %v\n", err)
		return nil
	}
	prob, err := s.Problem(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig7: %v\n", err)
		return nil
	}
	_ = prob

	minLat, maxLat, minLon, maxLon := 90.0, -90.0, 180.0, -180.0
	for _, c := range s.Cities {
		if c.Loc.Lat < minLat {
			minLat = c.Loc.Lat
		}
		if c.Loc.Lat > maxLat {
			maxLat = c.Loc.Lat
		}
		if c.Loc.Lon < minLon {
			minLon = c.Loc.Lon
		}
		if c.Loc.Lon > maxLon {
			maxLon = c.Loc.Lon
		}
	}
	gen := &weather.Generator{
		Seed:   opt.Seed + 77,
		MinLat: minLat - 1, MaxLat: maxLat + 1,
		MinLon: minLon - 1, MaxLon: maxLon + 1,
	}
	an := weather.AnalyzeYear(top, s.Links, gen, weather.Config{Days: days, Seed: opt.Seed})
	res := &Fig7Result{
		MedianBest:  weather.Median(an.Best),
		MedianP99:   weather.Median(an.P99),
		MedianWorst: weather.Median(an.Worst),
		MedianFiber: weather.Median(an.Fiber),
		Analysis:    an,
	}
	fprintf(w, "Fig 7 — stretch across city pairs over %d sampled days\n", days)
	fprintf(w, "  median stretch: best %.3f | 99th-pctile %.3f | worst %.3f | fiber %.3f\n",
		res.MedianBest, res.MedianP99, res.MedianWorst, res.MedianFiber)
	fprintf(w, "  (paper: 99th-percentile ≈ best; worst ~1.7x better than fiber)\n")
	return res
}
