package workload

import (
	"math"
	"sort"

	"cisp/internal/cities"
	"cisp/internal/units"
)

// PlaceSinks places k serving sinks (CDN replicas, anycast front-ends)
// among the sites by greedy weighted k-median: each round adds the site
// that most reduces Σ_i weights[i] · d(i, nearest sink), the aggregate
// user-to-replica geodesic distance. Greedy is the classic (1-1/e)-style
// approximation for this submodular objective — the same reason the design
// layer's lazy-greedy works — and is deterministic: ties break toward the
// lower site index. Sites with zero weight can still host a sink (a DC
// site is a fine replica location). The result is sorted ascending.
func PlaceSinks(sites []cities.City, weights []float64, k int) []int {
	n := len(sites)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// bestD[i] is site i's distance to its nearest placed sink so far.
	bestD := make([]units.Meters, n)
	for i := range bestD {
		bestD[i] = units.Meters(math.Inf(1))
	}
	chosen := make([]bool, n)
	var sinks []int
	for len(sinks) < k {
		bestSite, bestCost := -1, math.Inf(1)
		for c := 0; c < n; c++ {
			if chosen[c] {
				continue
			}
			cost := 0.0
			for i := 0; i < n; i++ {
				if weights[i] <= 0 {
					continue
				}
				d := sites[i].Loc.DistanceTo(sites[c].Loc)
				cost += weights[i] * math.Min(float64(d), float64(bestD[i]))
			}
			if cost < bestCost {
				bestSite, bestCost = c, cost
			}
		}
		if bestSite < 0 {
			break
		}
		chosen[bestSite] = true
		sinks = append(sinks, bestSite)
		for i := 0; i < n; i++ {
			if d := sites[i].Loc.DistanceTo(sites[bestSite].Loc); d < bestD[i] {
				bestD[i] = d
			}
		}
	}
	sort.Ints(sinks)
	return sinks
}
