package design

import (
	"testing"

	"cisp/internal/parallel"
)

// sameDesign asserts two topologies built the exact same link list, in the
// same order, with bitwise-equal stretch.
func sameDesign(t *testing.T, label string, seq, par *Topology) {
	t.Helper()
	if len(seq.Built) != len(par.Built) {
		t.Fatalf("%s: sequential built %d links, parallel %d", label, len(seq.Built), len(par.Built))
	}
	for k := range seq.Built {
		if seq.Built[k] != par.Built[k] {
			t.Fatalf("%s: link %d differs: sequential %+v, parallel %+v",
				label, k, seq.Built[k], par.Built[k])
		}
	}
	if s, p := seq.MeanStretch(), par.MeanStretch(); s != p {
		t.Fatalf("%s: MeanStretch differs bitwise: sequential %v, parallel %v", label, s, p)
	}
	if s, p := seq.CostUsed(), par.CostUsed(); s != p {
		t.Fatalf("%s: CostUsed differs: sequential %v, parallel %v", label, s, p)
	}
}

// TestGreedyParallelDeterminism: the pool's determinism contract applied to
// the full design path — a wide pool must reproduce the one-worker run
// bit-for-bit, Built list and stretch alike. n=70 exceeds every fan-out
// grain (apsGrain=64 is the largest), so the parallel candidate seeding,
// refreshAll, snapshot APSP update, Dijkstra fiber closure and chunked
// stretch reduction are all exercised for real.
func TestGreedyParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: repeated designs across worker counts")
	}
	for seed := int64(0); seed < 3; seed++ {
		p := randomProblem(seed+700, 70, 80)

		prev := parallel.SetWorkers(1)
		seq := Greedy(p, GreedyOptions{})
		seqPC := Greedy(p, GreedyOptions{PerCost: true})

		parallel.SetWorkers(8)
		par := Greedy(p, GreedyOptions{})
		parPC := Greedy(p, GreedyOptions{PerCost: true})
		parallel.SetWorkers(prev)

		if len(seq.Built) == 0 {
			t.Fatalf("seed %d: greedy built nothing — test exercises nothing", seed)
		}
		sameDesign(t, "greedy", seq, par)
		sameDesign(t, "greedy/per-cost", seqPC, parPC)
	}
}

// TestGreedyILPParallelDeterminism: same contract for the paper's full
// method (greedy pruning + exact refinement) at the exact solvers' scale.
func TestGreedyILPParallelDeterminism(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		p := randomProblem(seed+800, 10, 40)

		prev := parallel.SetWorkers(1)
		seq := GreedyILP(p, 20_000)
		parallel.SetWorkers(8)
		par := GreedyILP(p, 20_000)
		parallel.SetWorkers(prev)

		sameDesign(t, "greedy-ilp", seq, par)
	}
}
