package netsim

import (
	"math"
	"math/rand"
	"testing"

	"cisp/internal/units"
	"time"
)

func almostEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestFluidSingleLinkFairShare(t *testing.T) {
	// Three flows on one 30 Mbps link: 10 Mbps each.
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 30e6}})
	r := f.AddRoute([]int{0, 1})
	for i := 0; i < 3; i++ {
		f.Start(r, 1e6)
	}
	f.Run(0)
	if !almostEq(f.RouteRate(r), 10e6, 1e-12) {
		t.Fatalf("per-flow rate = %v, want 10 Mbps", f.RouteRate(r))
	}
}

func TestFluidMaxMinTwoBottlenecks(t *testing.T) {
	// Chain 0-1-2: link 0→1 at 20 Mbps, 1→2 at 10 Mbps. Two flows 0→2 and
	// one flow 0→1. Max-min: the 0→2 flows bottleneck on 1→2 at 5 Mbps
	// each; the 0→1 flow gets the 20 - 10 = 10 Mbps residual.
	f := NewFluid(3, []TopoLink{
		{A: 0, B: 1, RateBps: 20e6},
		{A: 1, B: 2, RateBps: 10e6},
	})
	long := f.AddRoute([]int{0, 1, 2})
	short := f.AddRoute([]int{0, 1})
	f.Start(long, 1e9)
	f.Start(long, 1e9)
	f.Start(short, 1e9)
	f.Run(0)
	if !almostEq(f.RouteRate(long), 5e6, 1e-12) {
		t.Fatalf("long route rate = %v, want 5 Mbps", f.RouteRate(long))
	}
	if !almostEq(f.RouteRate(short), 10e6, 1e-12) {
		t.Fatalf("short route rate = %v, want 10 Mbps", f.RouteRate(short))
	}
}

func TestFluidDepartureSpeedsUpSurvivor(t *testing.T) {
	// Two flows share a 10 Mbps link; the 1 MB flow finishes first, then
	// the 4 MB flow runs at full rate. Analytic FCTs:
	//   phase 1: both at 5 Mbps (0.625 MB/s) → flow A (1 MB) done at 1.6 s.
	//   phase 2: B has 3 MB left at 10 Mbps (1.25 MB/s) → +2.4 s → 4.0 s.
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 10e6}})
	r := f.AddRoute([]int{0, 1})
	a := f.Start(r, 1e6)
	b := f.Start(r, 4e6)
	f.Run(10)
	fa, okA := f.FCT(a)
	fb, okB := f.FCT(b)
	if !okA || !okB {
		t.Fatalf("flows did not complete: %v %v", okA, okB)
	}
	if !almostEq(fa, 1.6, 1e-9) {
		t.Fatalf("FCT A = %v, want 1.6", fa)
	}
	if !almostEq(fb, 4.0, 1e-9) {
		t.Fatalf("FCT B = %v, want 4.0", fb)
	}
}

func TestFluidLateArrivalSlowsDown(t *testing.T) {
	// A 10 Mbps link; flow A (5 MB) alone until B arrives at t=1.
	//   [0,1): A at 10 Mbps → 1.25 MB served.
	//   [1,…): both at 5 Mbps. A has 3.75 MB left → +6 s → FCT 7 s.
	//   B (2.5 MB) at 0.625 MB/s from t=1 → 4 s → done t=5 → A speeds up?
	// Careful: B finishes at t=5 (2.5 MB at 0.625 MB/s), A has served
	// 1.25 + 2.5 = 3.75 MB by then, 1.25 MB left at full 1.25 MB/s → +1 s.
	// FCT A = 6 s, FCT B = 4 s.
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 10e6}})
	r := f.AddRoute([]int{0, 1})
	a := f.Start(r, 5e6)
	b := f.StartAt(r, 2.5e6, 1.0)
	f.Run(20)
	fa, _ := f.FCT(a)
	fb, _ := f.FCT(b)
	if !almostEq(fa, 6.0, 1e-9) {
		t.Fatalf("FCT A = %v, want 6.0", fa)
	}
	if !almostEq(fb, 4.0, 1e-9) {
		t.Fatalf("FCT B = %v, want 4.0 (measured from its arrival)", fb)
	}
}

func TestFluidServedBytesMidRun(t *testing.T) {
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 8e6}}) // 1 MB/s
	r := f.AddRoute([]int{0, 1})
	a := f.Start(r, 10e6)
	f.Run(3)
	if got := f.ServedBytes(a); !almostEq(got, 3e6, 1e-9) {
		t.Fatalf("served = %v bytes after 3 s at 1 MB/s, want 3e6", got)
	}
	if _, done := f.FCT(a); done {
		t.Fatal("flow should still be running")
	}
}

func TestFluidServedBytesBeforeArrival(t *testing.T) {
	// A flow scheduled past the horizon has transferred nothing — it must
	// not report its full payload as served.
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 8e6}})
	r := f.AddRoute([]int{0, 1})
	a := f.StartAt(r, 1000, 10)
	f.Run(1)
	if got := f.ServedBytes(a); got != 0 {
		t.Fatalf("served = %v bytes for a flow that never arrived, want 0", got)
	}
}

func TestFluidRateTolStillAppliesRates(t *testing.T) {
	// With a coarse tolerance the event reschedules are suppressed but the
	// allocation itself must track the true max-min share: after the 2nd
	// flow arrives, the per-flow rate must drop to the half share.
	f := NewFluid(2, []TopoLink{{A: 0, B: 1, RateBps: 10e6}})
	r := f.AddRoute([]int{0, 1})
	f.RateTol = 0.5
	f.Start(r, 1e9)
	f.Run(0)
	if !almostEq(f.RouteRate(r), 10e6, 1e-12) {
		t.Fatalf("solo rate = %v", f.RouteRate(r))
	}
	f.StartAt(r, 1e9, 1)
	f.Run(1)
	if !almostEq(f.RouteRate(r), 5e6, 1e-12) {
		t.Fatalf("shared rate = %v, want 5 Mbps even under RateTol", f.RouteRate(r))
	}
}

func TestFluidConservation(t *testing.T) {
	// Random topology + flows: aggregate allocated rate on every link must
	// not exceed its capacity, and every allocation must be positive.
	rng := rand.New(rand.NewSource(7))
	var links []TopoLink
	const n = 20
	for i := 1; i < n; i++ {
		links = append(links, TopoLink{A: rng.Intn(i), B: i, RateBps: units.Mbps(float64(10 + rng.Intn(90)))})
	}
	f := NewFluid(n, links)
	// Routes along the tree via parent hops: use ComputeRoutes for paths.
	comms := make([]Commodity, 0, 30)
	for k := 0; k < 30; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		comms = append(comms, Commodity{Flow: k, Src: a, Dst: b})
	}
	paths := ComputeRoutes(n, links, comms, ShortestPath)
	routeOf := map[int]int{}
	for _, c := range comms {
		p := paths[c.Flow]
		if p == nil {
			continue
		}
		r := f.AddRoute(p)
		routeOf[c.Flow] = r
		for j := 0; j < 1+rng.Intn(5); j++ {
			f.Start(r, 1e9)
		}
	}
	f.Run(0)
	load := make([]float64, len(f.links))
	for gi := range f.groups {
		g := &f.groups[gi]
		if g.n == 0 {
			continue
		}
		if g.rate <= 0 {
			t.Fatalf("group %d allocated non-positive rate %v", gi, g.rate)
		}
		for _, li := range g.links {
			load[li] += g.rate * float64(g.n)
		}
	}
	for li, l := range f.links {
		if load[li] > l.capBps*(1+1e-9) {
			t.Fatalf("link %d overloaded: %v > %v", li, load[li], l.capBps)
		}
	}
}

func TestFluidDeterministic(t *testing.T) {
	run := func() []float64 {
		f := NewFluid(3, []TopoLink{
			{A: 0, B: 1, RateBps: 20e6},
			{A: 1, B: 2, RateBps: 10e6},
		})
		long := f.AddRoute([]int{0, 1, 2})
		short := f.AddRoute([]int{0, 1})
		rng := rand.New(rand.NewSource(3))
		var ids []int
		for i := 0; i < 500; i++ {
			r := long
			if i%2 == 0 {
				r = short
			}
			ids = append(ids, f.StartAt(r, 1e5+1e6*rng.Float64(), rng.Float64()))
		}
		f.Run(1e6)
		out := make([]float64, len(ids))
		for i, id := range ids {
			out[i], _ = f.FCT(id)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fluid run not deterministic at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// syntheticBackbone builds a deterministic ~100-node geometric mesh that
// stands in for a designed topology in package-local scale tests (the real
// designed-topology benchmark lives in the repo root bench suite).
func syntheticBackbone(n int) []TopoLink {
	rng := rand.New(rand.NewSource(11))
	xs := make([][2]float64, n)
	for i := range xs {
		xs[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	var links []TopoLink
	seen := map[[2]int]bool{}
	addTo := func(i, j int) {
		key := [2]int{min(i, j), max(i, j)}
		if i == j || seen[key] {
			return
		}
		seen[key] = true
		links = append(links, TopoLink{
			A: key[0], B: key[1],
			RateBps:   units.Gbps(float64(50 + rng.Intn(150))),
			PropDelay: 0.001,
		})
	}
	// Connected ring + nearest-neighbor chords: node degree ~4.
	for i := 0; i < n; i++ {
		addTo(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		bestJ, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx, dy := xs[i][0]-xs[j][0], xs[i][1]-xs[j][1]
			if d := dx*dx + dy*dy; d < bestD && !seen[[2]int{min(i, j), max(i, j)}] {
				bestJ, bestD = j, d
			}
		}
		if bestJ >= 0 {
			addTo(i, bestJ)
		}
	}
	return links
}

// TestFluidMillionFlowSmoke is the scale guard for the §6.4 replay path: one
// million concurrent flows over a ~100-node backbone must admit, allocate
// and begin completing within a short wall-clock budget. It runs a short
// horizon — enough to cover the initial allocation plus a wave of
// departures — so CI catches any regression that would make the
// 10⁵–10⁶-flow path unusable.
func TestFluidMillionFlowSmoke(t *testing.T) {
	const (
		nNodes = 100
		nFlows = 1_000_000
	)
	links := syntheticBackbone(nNodes)
	f := NewFluid(nNodes, links)

	rng := rand.New(rand.NewSource(5))
	var comms []Commodity
	for k := 0; k < 2000; k++ {
		a, b := rng.Intn(nNodes), rng.Intn(nNodes)
		if a == b {
			continue
		}
		comms = append(comms, Commodity{Flow: k, Src: a, Dst: b})
	}
	paths := ComputeRoutes(nNodes, links, comms, ShortestPath)
	var routes []int
	for _, c := range comms {
		if p := paths[c.Flow]; p != nil {
			routes = append(routes, f.AddRoute(p))
		}
	}
	start := time.Now()
	for i := 0; i < nFlows; i++ {
		f.Start(routes[i%len(routes)], 1e6+float64(i%7)*1e5)
	}
	if f.Active() != 0 {
		t.Fatal("flows active before Run")
	}
	f.Run(0) // admit + initial allocation
	if f.Active() != nFlows {
		t.Fatalf("active = %d, want %d concurrent flows", f.Active(), nFlows)
	}
	// Advance a short horizon: some flows must complete, rates stay sane.
	f.Run(0.5)
	setup := time.Since(start)
	if f.Completed() == 0 {
		t.Fatal("no departures processed in the smoke horizon")
	}
	if f.Active()+f.Completed() != nFlows {
		t.Fatalf("flow accounting broken: %d active + %d done != %d",
			f.Active(), f.Completed(), nFlows)
	}
	t.Logf("1M flows over %d nodes: %v wall for admit + 0.5 s horizon, %d completed",
		nNodes, setup, f.Completed())
	if setup > 60*time.Second {
		t.Fatalf("million-flow smoke took %v — scale path has rotted", setup)
	}
}
