package ctlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"cisp/internal/obs"
	"cisp/internal/resilience"
	"cisp/internal/te"
)

// NewMux returns the daemon's HTTP API:
//
//	GET  /v1/snapshot          current forwarding snapshot (canonical JSON)
//	GET  /v1/snapshot/version  {"version":V,"epoch":E} — cheap poll target
//	POST /v1/events            inject an event batch; replies with the
//	                           version current after the batch applied
//	POST /v1/reload            rebuild the control plane under new tuning
//	GET  /readyz               200 once serving snapshots, 503 while draining
//
// plus everything obs.NewMux serves for the sink (/metrics, /metrics.json,
// /trace, /healthz, /debug/pprof). Snapshot reads are lock-free pointer
// loads of pre-encoded bytes; injections serialize through the event loop.
func (d *Daemon) NewMux(s *obs.Sink) *http.ServeMux {
	mux := obs.NewMux(s)
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		snap := d.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot published", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Etag", fmt.Sprintf("\"%d-%d\"", snap.Epoch, snap.Version))
		w.Write(snap.JSON())
	})
	mux.HandleFunc("GET /v1/snapshot/version", func(w http.ResponseWriter, _ *http.Request) {
		snap := d.Snapshot()
		if snap == nil {
			http.Error(w, "no snapshot published", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"version\":%d,\"epoch\":%d}\n", snap.Version, snap.Epoch)
	})
	mux.HandleFunc("POST /v1/events", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, MaxEventBody)
		events, err := DecodeEvents(body, d.nMw, len(d.clear))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := d.Apply(events)
		if err != nil {
			if d.Draining() {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"applied\":%d,\"version\":%d,\"epoch\":%d}\n", len(events), snap.Version, snap.Epoch)
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		var spec struct {
			TE   te.Config         `json:"te"`
			Prot resilience.Config `json:"prot"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxEventBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil && err != io.EOF {
			http.Error(w, fmt.Sprintf("ctlplane: decoding reload spec: %v", err), http.StatusBadRequest)
			return
		}
		snap, err := d.Reload(spec.TE, spec.Prot)
		if err != nil {
			if d.Draining() {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"version\":%d,\"epoch\":%d}\n", snap.Version, snap.Epoch)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if d.Draining() || d.Snapshot() == nil {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ready\n")
	})
	return mux
}

// Server is a running daemon HTTP endpoint.
type Server struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

// Serve starts the daemon's API on addr (":0" picks a free port) in a
// background goroutine and returns immediately.
func (d *Daemon) Serve(addr string, s *obs.Sink) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: d.NewMux(s)}
	go srv.Serve(ln)
	return &Server{d: d, ln: ln, srv: srv}, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains gracefully: readiness drops and new injections are
// refused first, in-flight requests finish (bounded by ctx), then the
// event loop exits. The daemon is closed afterwards either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.d.drain.Store(true) // readyz goes 503 before the listener closes
	err := s.srv.Shutdown(ctx)
	s.d.Close()
	return err
}

// Close stops the server immediately and closes the daemon.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.d.Close()
	return err
}
