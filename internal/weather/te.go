package weather

import (
	"cisp/internal/netsim"
	"cisp/internal/te"
	"cisp/internal/units"
)

// GradedRates returns a copy of mwLinks with each link's rate scaled by its
// graded adaptive-modulation capacity fraction (0 for links whose worst hop
// exceeded the fade margin). Unlike the MeasureFCT grading, failed links
// are kept in place at zero rate: positions are preserved link-for-link, so
// a te.Controller can diff capacities against the clear-sky list. conds[i]
// grades mwLinks[i]; a nil conds returns clear-sky rates.
func GradedRates(mwLinks []netsim.TopoLink, conds []LinkCondition) []netsim.TopoLink {
	out := append([]netsim.TopoLink(nil), mwLinks...)
	for li := range out {
		if li >= len(conds) {
			break
		}
		switch {
		case conds[li].Failed:
			out[li].RateBps = 0
		default:
			out[li].RateBps = units.BitsPerSecond(float64(out[li].RateBps) * conds[li].CapFrac)
		}
	}
	return out
}

// ReoptimizeTE feeds a precipitation interval's graded link conditions into
// a TE controller: microwave capacities are scaled by their CapFrac (failed
// links drop to zero), fiber links ride through unchanged, and the
// controller re-solves splits only for the commodities whose candidate
// paths cross a changed link — the warm start that makes per-interval
// reoptimization cheap across a year of weather. The controller must have
// been built over the concatenated mwLinks+fiberLinks list at clear sky.
// Returns the affected commodity flow IDs, sorted.
func ReoptimizeTE(ctrl *te.Controller, mwLinks []netsim.TopoLink, conds []LinkCondition, fiberLinks []netsim.TopoLink) ([]int, error) {
	graded := GradedRates(mwLinks, conds)
	return ctrl.UpdateCapacities(append(graded, fiberLinks...))
}
