// Package workload is the population-driven scenario layer: it turns the
// city populations the backbone was designed over (internal/cities) into
// millions of concurrently active users, composes their demand from
// per-application profiles grounded in the paper's application studies
// (internal/gaming, internal/webpage, internal/econ), and compiles the
// result into the traffic matrices, commodity lists, and timed failure
// schedules both simulation engines replay.
//
// The layer has three stages. ActiveUsers draws the concurrently active
// population per site at a UTC instant — each city follows the same
// diurnal activity curve shifted by its solar timezone, which is what
// staggers the coasts. Compile turns a scenario Spec (an evening snapshot,
// a flash crowd, a regional disaster with a storm and a conduit cut, a CDN
// replica placement) into per-application demand matrices over a Backbone
// substrate plus an optional failure Schedule. Pipeline then runs the
// compiled scenario end to end — TE splits on the hybrid backbone versus
// shortest-path routing on a fiber-only baseline, fast-reroute plans when
// failures are scheduled, both netsim engines — and reports the
// user-visible deltas: per-application FCT percentiles, propagation RTT,
// availability nines, and the §7/§8 quality-of-experience translations.
// Everything is seed-deterministic and bit-identical at every parallelism
// level. See DESIGN.md §10.
package workload

import (
	"math"

	"cisp/internal/cities"
	"cisp/internal/econ"
	"cisp/internal/netsim"
	"cisp/internal/units"
	"cisp/internal/webpage"
)

// App is an application class of the workload mix.
type App int

// The modeled application classes, in fixed report order.
const (
	Gaming App = iota // interactive gaming: thin, latency-critical flows
	Media             // video streaming: bulk segment transfers
	Web               // web browsing: short request bursts
	NumApps
)

func (a App) String() string {
	switch a {
	case Gaming:
		return "gaming"
	case Media:
		return "media"
	case Web:
		return "web"
	}
	return "unknown"
}

// AppProfile is one application class's per-user demand model.
type AppProfile struct {
	// Share is the fraction of concurrently active users on this class;
	// a mix's shares should sum to 1.
	Share float64

	// RateBps is the mean offered rate per active user of this class.
	RateBps float64

	// FlowBytes is the replay payload per flow — how the class appears to
	// the transport: thin gaming exchanges, bulk media segments, mid-size
	// web bursts. Installed per commodity via netsim.Commodity.FlowBytes.
	FlowBytes int
}

// AppMix is a full application mix, indexed by App.
type AppMix [NumApps]AppProfile

// Valid reports whether every class has a positive rate and payload —
// the zero AppMix is invalid and callers substitute DefaultMix.
func (m AppMix) Valid() bool {
	for _, p := range m {
		if p.RateBps <= 0 || p.FlowBytes <= 0 || p.Share < 0 {
			return false
		}
	}
	return true
}

// DefaultMix derives the default application mix from the seed packages'
// application studies:
//
//   - gaming: the §6.6 Steam arithmetic's 10 Kbps per player
//     (econ.GamingAggregateGbps with one player), 16 KB exchanges;
//   - media: a 4 Mbps HD stream delivered in 2 MB segments;
//   - web: the mean page weight of the webpage corpus spread over a
//     30-second think time (one page load per think), 128 KB bursts.
//
// Shares model an evening residential mix: half the active users
// browsing, a third streaming, the rest gaming.
func DefaultMix() AppMix {
	// econ.GamingAggregateGbps(players, share, rateKbps) in Gbps; one
	// player at the paper's 10 Kbps.
	gamingBps := float64(units.Gbps(econ.GamingAggregateGbps(1, 1, 10)))

	pages := webpage.Corpus(webpage.CorpusConfig{Seed: 1, Pages: 40})
	var pageBytes float64
	for _, p := range pages {
		for _, o := range p.Objects {
			pageBytes += float64(o.Size)
		}
	}
	pageBytes /= float64(len(pages))
	const thinkSeconds = 30.0
	webBps := pageBytes * 8 / thinkSeconds

	var m AppMix
	m[Gaming] = AppProfile{Share: 0.15, RateBps: gamingBps, FlowBytes: 16 << 10}
	m[Media] = AppProfile{Share: 0.35, RateBps: 4e6, FlowBytes: 2 << 20}
	m[Web] = AppProfile{Share: 0.50, RateBps: webBps, FlowBytes: 128 << 10}
	return m
}

// activityTable is the diurnal activity curve: the fraction of subscribers
// concurrently active at each local hour, peaking in the evening and
// bottoming out before dawn. Values are interpolated linearly and the
// curve wraps at midnight.
var activityTable = [24]float64{
	0.55, 0.40, 0.30, 0.22, 0.18, 0.20, // 00-05: overnight trough
	0.30, 0.45, 0.60, 0.70, 0.75, 0.78, // 06-11: morning ramp
	0.80, 0.80, 0.78, 0.78, 0.80, 0.85, // 12-17: daytime plateau
	0.90, 0.95, 1.00, 1.00, 0.90, 0.70, // 18-23: evening peak
}

// Activity returns the diurnal activity fraction at a local hour
// (fractional hours welcome; the curve wraps at 24).
func Activity(localHour float64) float64 {
	h := math.Mod(localHour, 24)
	if h < 0 {
		h += 24
	}
	lo := int(h)
	frac := h - float64(lo)
	hi := (lo + 1) % 24
	return activityTable[lo]*(1-frac) + activityTable[hi]*frac
}

// ActiveUsers returns the concurrently active users per site at a UTC
// instant: Population × penetration × Activity at the site's solar local
// hour (cities.TZOffsetHours). Data-center sites (zero population)
// contribute no users. This is the timezone stagger: at 00:00 UTC the US
// east coast is deep in its evening peak while the west coast is still
// ramping.
func ActiveUsers(sites []cities.City, penetration, utcHour float64) []float64 {
	users := make([]float64, len(sites))
	for i, c := range sites {
		if c.Population == 0 {
			continue
		}
		users[i] = float64(c.Population) * penetration * Activity(utcHour+cities.TZOffsetHours(c))
	}
	return users
}

// Backbone is the designed substrate a workload runs over: the site list
// the populations attach to, the provisioned microwave backbone, and the
// fiber conduit graph (including midpoint transit nodes, which is why
// Nodes can exceed len(Sites)). experiments.DesignedTETopology produces
// exactly this shape; tests build small ones by hand.
type Backbone struct {
	Sites []cities.City
	Nodes int               // sites plus fiber midpoint transit nodes
	Mw    []netsim.TopoLink // microwave links, endpoints index Sites
	Fiber []netsim.TopoLink // fiber conduits, incl. midpoint halves
}

// Hybrid returns the combined link list, microwave first — the ordering
// weather grading, failure schedules, and Schedule.Remap rely on.
func (b *Backbone) Hybrid() []netsim.TopoLink {
	return append(append([]netsim.TopoLink(nil), b.Mw...), b.Fiber...)
}
