// Command cisplint runs the cisp static-analysis suite (internal/analysis):
// determinism, maporder, hotpathalloc, paraclosure and unitcheck — the
// invariants DESIGN.md §9 and §11 document.
//
// It runs in two modes:
//
//   - Standalone: `cisplint [packages]` loads the named module packages
//     (or ./... patterns) from source and reports findings. This is
//     hermetic — no go list, no export data — and is what the repo-wide
//     meta-test (internal/analysis/suite) mirrors. Packages are analyzed
//     in parallel through the Session driver with cross-package fact
//     propagation; output is byte-identical at every worker count.
//     With -json, findings are emitted as a machine-readable JSON array —
//     including suppressed findings, flagged as such — instead of text.
//
//   - Vet tool: `go vet -vettool=$(which cisplint) ./...` drives cisplint
//     through cmd/go's unit-checker protocol: cmd/go invokes the tool once
//     per package with a JSON config file argument, and the tool
//     type-checks that unit against the export data cmd/go already built.
//     Analyzer facts ride the same protocol: each unit's facts are written
//     to the .vetx file cmd/go names, and dependency facts are read back
//     through PackageVetx.
//
// Exit status is 1 when any unsuppressed finding is reported, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cisp/internal/analysis"
	"cisp/internal/analysis/loader"
	"cisp/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cisplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	printVersion := fs.String("V", "", "print version and exit (cmd/go protocol; use -V=full)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (standalone mode), suppressed findings included")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cisplint [-json] [package ...]   (standalone; defaults to ./...)\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which cisplint) ./...\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// cmd/go probes its vet tool with `-V=full` (for the build cache key)
	// and `-flags` (for flag validation) before any unit runs. Both must
	// answer in the exact format cmd/go parses.
	if *printVersion != "" {
		if *printVersion != "full" {
			fmt.Fprintf(stderr, "cisplint: unsupported -V=%s\n", *printVersion)
			return 2
		}
		return versionAndBuildID(stdout, stderr)
	}
	if *printFlags {
		// No analyzer exposes flags; cmd/go accepts an empty JSON array.
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], stderr)
	}
	return standalone(rest, *jsonOut, stdout, stderr)
}

// versionAndBuildID implements the `-V=full` handshake: cmd/go caches vet
// results keyed by the tool's content hash, so the line must change
// whenever the binary does.
func versionAndBuildID(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "cisplint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// vetConfig is the JSON cmd/go writes into the unit's .cfg file. Field
// names and shapes follow x/tools' unitchecker protocol.
type vetConfig struct {
	ID                        string            // package ID as known to cmd/go
	Compiler                  string            // "gc"
	Dir                       string            // package directory
	ImportPath                string            //
	GoVersion                 string            // minimum Go version, e.g. "go1.24"
	GoFiles                   []string          // absolute paths of the unit's Go files
	NonGoFiles                []string          //
	IgnoredFiles              []string          //
	ModulePath                string            //
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool   // packages in the standard library
	PackageVetx               map[string]string // package path → vet facts (unused here)
	VetxOnly                  bool              // only facts are needed, not diagnostics
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool              // exit 0 on type errors (go vet std behavior)
}

// vetUnit analyzes one compilation unit under the go vet protocol.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cisplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go requires the facts file to exist even when empty; writing it
	// first covers every early-return path below, and the real facts
	// overwrite it once the unit type-checks.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled,
	// looked up via ImportMap (import path as written → canonical path)
	// then PackageFile (canonical path → .a/.x file).
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}

	// Dependency facts arrive through the .vetx files cmd/go names in
	// PackageVetx — the ones this tool wrote when it visited those units.
	facts := vetxFacts(cfg.PackageVetx)

	// Export this unit's facts for dependents before any diagnostics run:
	// VetxOnly invocations exist solely for this side effect.
	if cfg.VetxOutput != "" {
		own := make(map[string]json.RawMessage)
		for _, a := range suite.All() {
			if a.Facts == nil {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
			name := a.Name
			pass.ImportFacts = func(ip string) json.RawMessage { return facts(name, ip) }
			v := a.Facts(pass)
			if v == nil {
				continue
			}
			data, err := json.Marshal(v)
			if err != nil {
				fmt.Fprintf(stderr, "cisplint: marshaling %s facts: %v\n", a.Name, err)
				return 1
			}
			own[a.Name] = data
		}
		data, err := json.Marshal(own)
		if err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	all, err := analysis.RunUnitAll(fset, files, pkg, info, suite.All(), facts)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	bad := 0
	for _, f := range all {
		if f.Suppressed {
			continue
		}
		bad++
		fmt.Fprintf(stderr, "%s\n", f)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// vetxFacts builds a FactSource over the dependency .vetx files of one
// vet unit: each file holds the JSON map {analyzer: facts} vetUnit writes,
// parsed once and memoized. Missing or malformed files resolve to nil —
// analyzers degrade to type-only knowledge, never fail.
func vetxFacts(packageVetx map[string]string) analysis.FactSource {
	cache := make(map[string]map[string]json.RawMessage)
	return func(analyzer, importPath string) json.RawMessage {
		m, ok := cache[importPath]
		if !ok {
			cache[importPath] = nil
			if file, have := packageVetx[importPath]; have {
				if data, err := os.ReadFile(file); err == nil && len(data) > 0 {
					var parsed map[string]json.RawMessage
					if json.Unmarshal(data, &parsed) == nil {
						cache[importPath] = parsed
					}
				}
			}
			m = cache[importPath]
		}
		return m[analyzer]
	}
}

// standalone analyzes packages through the Session driver: module-source
// loading (test files included), parallel per-package fan-out, and
// cross-package fact propagation. Output order is deterministic at every
// worker count.
func standalone(patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	paths, err := expandPatterns(l, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	s := analysis.NewSession(".", suite.All())
	findings, errs := s.Run(paths)
	for _, err := range errs {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
	}
	if jsonOut {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
	}
	total := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		total++
		if !jsonOut {
			fmt.Fprintf(stdout, "%s\n", f)
		}
	}
	if len(errs) > 0 || total > 0 {
		return 1
	}
	return 0
}

// expandPatterns resolves command-line package patterns to module import
// paths. Supported: "./...", "pattern/...", import paths, and relative
// directories; no arguments means the whole module.
func expandPatterns(l *loader.Loader, patterns []string) ([]string, error) {
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return all, nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(ip string) {
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	for _, pat := range patterns {
		ip, recursive, err := normalizePattern(l, pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, cand := range all {
			if cand == ip || (recursive && (ip == l.ModulePath || strings.HasPrefix(cand, ip+"/"))) {
				add(cand)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}

// normalizePattern maps one CLI pattern to (import path prefix, recursive).
func normalizePattern(l *loader.Loader, pat string) (string, bool, error) {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "." || pat == "" {
			return l.ModulePath, true, nil
		}
	}
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		abs, err := filepath.Abs(pat)
		if err != nil {
			return "", false, err
		}
		rel, err := filepath.Rel(l.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", false, fmt.Errorf("%s is outside module %s", pat, l.ModulePath)
		}
		if rel == "." {
			return l.ModulePath, recursive, nil
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel), recursive, nil
	}
	return pat, recursive, nil
}
