package netsim

import "fmt"

// PacketKind distinguishes payload data from transport acknowledgements.
type PacketKind int

// Packet kinds.
const (
	Data PacketKind = iota
	Ack
)

// Packet is the unit of transmission.
type Packet struct {
	Flow     int // flow identifier (routing + delivery demux)
	Seq      int64
	Kind     PacketKind
	Size     int // bytes on the wire
	Src, Dst int // node IDs
	SentAt   float64
	AckNo    int64 // for Ack packets: cumulative next-expected sequence
}

// fibKey routes per (flow, destination) so a TCP flow's data and reverse
// ACKs can share a flow ID.
type fibKey struct {
	flow int
	dst  int
}

// Node is a store-and-forward router / host.
type Node struct {
	ID  int
	net *Network
	fib map[fibKey]int // next-hop node ID
}

// Link is a unidirectional fixed-rate link with a FIFO queue.
type Link struct {
	From, To  int
	RateBps   float64
	PropDelay float64 // seconds
	QueueCap  int     // packets; 0 = unbounded

	net          *Network
	queue        []*Packet
	transmitting bool

	// Counters.
	TxPackets   int64
	TxBytes     int64
	Drops       int64
	busyTime    float64
	maxQueueLen int
}

// QueueLen returns the instantaneous queue length in packets (including the
// packet in transmission).
func (l *Link) QueueLen() int {
	n := len(l.queue)
	if l.transmitting {
		n++
	}
	return n
}

// MaxQueueLen returns the high-water queue length observed.
func (l *Link) MaxQueueLen() int { return l.maxQueueLen }

// Utilization returns the fraction of [0, now] the link spent transmitting.
func (l *Link) Utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	u := l.busyTime / now
	if u > 1 {
		u = 1
	}
	return u
}

// Network is a set of nodes and directed links plus per-flow delivery
// handlers.
type Network struct {
	Sim      *Simulator
	nodes    []*Node
	links    map[[2]int]*Link
	handlers map[int]func(*Packet) // flow → delivery callback at Dst
}

// NewNetwork creates a network with n nodes attached to sim.
func NewNetwork(sim *Simulator, n int) *Network {
	nw := &Network{
		Sim:      sim,
		links:    make(map[[2]int]*Link),
		handlers: make(map[int]func(*Packet)),
	}
	for i := 0; i < n; i++ {
		nw.nodes = append(nw.nodes, &Node{ID: i, net: nw, fib: make(map[fibKey]int)})
	}
	return nw
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) }

// AddLink adds a unidirectional link and returns it. Panics if it exists.
func (nw *Network) AddLink(from, to int, rateBps, propDelay float64, queueCap int) *Link {
	key := [2]int{from, to}
	if _, dup := nw.links[key]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %d->%d", from, to))
	}
	l := &Link{From: from, To: to, RateBps: rateBps, PropDelay: propDelay, QueueCap: queueCap, net: nw}
	nw.links[key] = l
	return l
}

// AddDuplex adds links in both directions with identical parameters.
func (nw *Network) AddDuplex(a, b int, rateBps, propDelay float64, queueCap int) (ab, ba *Link) {
	return nw.AddLink(a, b, rateBps, propDelay, queueCap), nw.AddLink(b, a, rateBps, propDelay, queueCap)
}

// Link returns the directed link from→to, or nil.
func (nw *Network) Link(from, to int) *Link { return nw.links[[2]int{from, to}] }

// Links returns all directed links (iteration order unspecified).
func (nw *Network) Links() map[[2]int]*Link { return nw.links }

// SetFlowPath installs forwarding state for flow along the node path
// (path[0] is the packet source, path[len-1] the destination). Panics if a
// hop has no link.
func (nw *Network) SetFlowPath(flow int, path []int) {
	dst := path[len(path)-1]
	for i := 0; i+1 < len(path); i++ {
		if nw.Link(path[i], path[i+1]) == nil {
			panic(fmt.Sprintf("netsim: no link %d->%d on path of flow %d", path[i], path[i+1], flow))
		}
		nw.nodes[path[i]].fib[fibKey{flow: flow, dst: dst}] = path[i+1]
	}
}

// OnDeliver registers the callback invoked when a packet of the flow reaches
// its Dst node.
func (nw *Network) OnDeliver(flow int, fn func(*Packet)) { nw.handlers[flow] = fn }

// Inject sends pkt from its Src node, stamping SentAt.
func (nw *Network) Inject(pkt *Packet) {
	pkt.SentAt = nw.Sim.Now()
	nw.forward(nw.nodes[pkt.Src], pkt)
}

// forward moves pkt one hop (or delivers it).
func (nw *Network) forward(at *Node, pkt *Packet) {
	if at.ID == pkt.Dst {
		if h := nw.handlers[pkt.Flow]; h != nil {
			h(pkt)
		}
		return
	}
	next, ok := at.fib[fibKey{flow: pkt.Flow, dst: pkt.Dst}]
	if !ok {
		// No route: drop silently (counted nowhere; routing bugs surface in
		// tests via missing deliveries).
		return
	}
	l := nw.Link(at.ID, next)
	l.enqueue(pkt)
}

// enqueue places pkt on the link, dropping if the queue is full.
func (l *Link) enqueue(pkt *Packet) {
	if l.QueueCap > 0 && len(l.queue) >= l.QueueCap {
		l.Drops++
		return
	}
	l.queue = append(l.queue, pkt)
	if q := l.QueueLen(); q > l.maxQueueLen {
		l.maxQueueLen = q
	}
	if !l.transmitting {
		l.startNext()
	}
}

func (l *Link) startNext() {
	if len(l.queue) == 0 {
		l.transmitting = false
		return
	}
	l.transmitting = true
	pkt := l.queue[0]
	l.queue = l.queue[1:]
	tx := float64(pkt.Size) * 8 / l.RateBps
	l.busyTime += tx
	l.TxPackets++
	l.TxBytes += int64(pkt.Size)
	sim := l.net.Sim
	sim.Schedule(tx, func() {
		// Transmission finished: propagate, then free the transmitter.
		sim.Schedule(l.PropDelay, func() {
			l.net.forward(l.net.nodes[l.To], pkt)
		})
		l.startNext()
	})
}
