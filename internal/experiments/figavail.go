package experiments

import (
	"fmt"
	"io"

	"cisp/internal/netsim"
	"cisp/internal/resilience"
	"cisp/internal/te"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// AvailRow is one (study, scheme, mode) measurement of the availability
// experiment.
type AvailRow struct {
	Study  string // "year" (analytic) or "sim" (engine replay)
	Scheme string // "none", "frr" or "reopt"
	Mode   string // "-" for year rows, engine mode for sim rows

	Availability float64 // fraction of (time × demand) with a live path
	Nines        float64
	MeanStretch  float64 // latency stretch of live traffic during failures
	MaxStretch   float64
	Reroutes     int

	// Sim rows only.
	Flows     int
	Completed int
	P99FCTMs  float64
	MLU       units.Utilization // measured max link utilization over the run
	PredMLU   units.Utilization // planning-side MLU with all scheduled links down
	LPSolves  int64             // simplex solves on the plan's event path
}

// FigAvailResult is the full availability comparison.
type FigAvailResult struct {
	Rows []AvailRow

	// FailedLinks are the microwave link indices the sim study fails — the
	// three most loaded links under the TE primaries.
	FailedLinks []int
}

// Row returns the first row matching the keys, or nil.
func (r *FigAvailResult) Row(study, scheme, mode string) *AvailRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Study == study && row.Scheme == scheme && row.Mode == mode {
			return row
		}
	}
	return nil
}

// availModes is the protection ladder the experiment compares.
var availModes = []resilience.Mode{resilience.NoProtection, resilience.FRR, resilience.FRRReopt}

// availTECfg is the control-plane configuration of the availability study:
// the candidate pool is widened to the protection layer's K so the backup
// search and the reoptimizer work from the same path set, and the classic
// min-MLU objective (no uncongested hinge) makes "full reoptimization
// spreads load no worse than fast reroute's single backup" a provable
// property rather than a tendency — the reopt LP optimizes over a superset
// of the splits FRR patches in.
func availTECfg() te.Config { return te.Config{K: 8, UtilFloor: -1} }

func availProtCfg() resilience.Config {
	return resilience.Config{K: 8, DetectDelay: 0.05, ReoptDelay: 1}
}

// simFailureSchedule fails the three most-loaded microwave links on a
// staggered timetable with a window where all three are down together —
// the fixed drill of the simulation study.
func simFailureSchedule(failed []int, nLinks int) *resilience.Schedule {
	s := &resilience.Schedule{Horizon: teHorizon, NumLinks: nLinks}
	windows := [][2]float64{{10, 50}, {20, 55}, {30, 45}}
	for k, li := range failed {
		w := windows[k%len(windows)]
		s.Outages = append(s.Outages, resilience.Outage{Link: li, Start: w[0], End: w[1]})
	}
	return s
}

// allDownTime is an instant inside every outage of simFailureSchedule.
const allDownTime = 35.0

// FigAvail is the failure-resilience experiment: on the designed hybrid
// backbone carrying the hotspot workload, it compares no protection,
// fast reroute (precomputed link-disjoint backups, zero LP solves on the
// event path) and full reoptimization (FRR bridging into a te.Controller's
// warm background re-solve) along two axes. The year study draws a seeded
// MTBF/MTTR outage schedule over tower-weighted microwave links, fiber
// conduits and whole cities, and walks it analytically — availability,
// nines and stretch-under-failure per scheme. The sim study fails the
// three most-loaded microwave links mid-replay and measures both engines:
// completions, p99 FCT, measured MLU, and the planning-side MLU with all
// three links down.
func FigAvail(opt Options, totalFlows int) *FigAvailResult {
	w := opt.out()
	if totalFlows <= 0 {
		totalFlows = 20_000
	}
	tt, err := DesignedTETopology(opt)
	if err != nil {
		fprintf(w, "figavail: %v\n", err)
		return nil
	}
	links := tt.Links()
	demand := traffic.Hotspot(tt.DesignTM, 5, 8, opt.Seed)
	comms := DemandCommodities(demand, totalFlows, teFlowBytes, teStartSpread)

	ctrl, err := te.NewController(tt.Nodes, links, comms, availTECfg())
	if err != nil {
		fprintf(w, "figavail: clear-sky TE solve: %v\n", err)
		return nil
	}
	primaries := ctrl.Solution().Splits
	prot, err := resilience.NewProtection(tt.Nodes, links, comms, primaries, availProtCfg())
	if err != nil {
		fprintf(w, "figavail: protection: %v\n", err)
		return nil
	}

	res := &FigAvailResult{}
	fprintf(w, "Failure resilience — availability on the designed backbone (hotspot workload, %d sites)\n", len(tt.Sites))

	// ------------------------------------------------------------------
	// Year study: hardware outages drawn from MTBF/MTTR elements.
	// ------------------------------------------------------------------
	els := resilience.TowerElements(tt.Mw, 100e3, 180*86400, 6*3600)
	// One element per physical conduit: a conduit kept parallel to a
	// microwave link arrives as two consecutive midpoint half-links
	// (city-midpoint, midpoint-city), and one backhoe severs both halves.
	for i, conduit := 0, 0; i < len(tt.Fiber); i, conduit = i+1, conduit+1 {
		covered := []int{len(tt.Mw) + i}
		if tt.Fiber[i].B >= len(tt.Sites) && i+1 < len(tt.Fiber) && tt.Fiber[i+1].A == tt.Fiber[i].B {
			i++
			covered = append(covered, len(tt.Mw)+i)
		}
		els = append(els, resilience.Element{
			Name: fmt.Sprintf("conduit-%d", conduit), Links: covered,
			MTBF: 365 * 86400, MTTR: 12 * 3600, // conduit cuts are rarer but slower to splice
		})
	}
	sites := make([]int, len(tt.Sites))
	for i := range sites {
		sites[i] = i
	}
	els = append(els, resilience.CityElements(links, sites, 2*365*86400, 2*3600)...)
	year := resilience.DrawSchedule(els, len(links), 365*86400, opt.Seed)
	fprintf(w, "year study: %d elements, %d outages across 365 days, %d protected commodities\n",
		len(els), len(year.Outages), len(primaries))
	fprintf(w, "%-6s %12s %7s %12s %11s %9s\n",
		"scheme", "availability", "nines", "meanstretch", "maxstretch", "reroutes")
	for _, mode := range availModes {
		st := prot.Availability(year, mode)
		res.Rows = append(res.Rows, AvailRow{
			Study: "year", Scheme: mode.String(), Mode: "-",
			Availability: st.Availability, Nines: st.Nines,
			MeanStretch: st.MeanStretch, MaxStretch: st.MaxStretch,
			Reroutes: st.Reroutes,
		})
		fprintf(w, "%-6s %11.5f%% %7.2f %12.3f %11.3f %9d\n",
			mode.String(), st.Availability*100, st.Nines, st.MeanStretch, st.MaxStretch, st.Reroutes)
	}

	// ------------------------------------------------------------------
	// Sim study: the three most-loaded microwave links fail mid-replay.
	// ------------------------------------------------------------------
	load := resilience.SplitLoad(links, comms, primaries)[:len(tt.Mw)]
	for k := 0; k < 3 && k < len(load); k++ {
		best := -1
		for li, v := range load {
			taken := false
			for _, f := range res.FailedLinks {
				if f == li {
					taken = true
				}
			}
			if taken {
				continue
			}
			if best < 0 || v > load[best] {
				best = li
			}
		}
		res.FailedLinks = append(res.FailedLinks, best)
	}
	sched := simFailureSchedule(res.FailedLinks, len(links))
	downAll := sched.DownAt(allDownTime)
	degraded := append([]netsim.TopoLink(nil), links...)
	for li, d := range downAll {
		if d {
			degraded[li].RateBps = 0
		}
	}

	fprintf(w, "sim study: mw links %v fail on a staggered schedule (all down around t=%.0fs)\n",
		res.FailedLinks, allDownTime)
	fprintf(w, "%-6s %-7s %8s %10s %8s %12s %8s %8s %9s\n",
		"scheme", "mode", "flows", "completed", "avail%", "FCT p99(ms)", "MLU", "predMLU", "LPsolves")
	for _, mode := range availModes {
		var planCtrl *te.Controller
		if mode == resilience.FRRReopt {
			// A dedicated controller: plan compilation drives it through the
			// schedule's capacity states (the warm background loop).
			planCtrl, err = te.NewController(tt.Nodes, links, comms, availTECfg())
			if err != nil {
				fprintf(w, "figavail: reopt controller: %v\n", err)
				return nil
			}
		}
		plan, err := prot.Plan(sched, mode, planCtrl)
		if err != nil {
			fprintf(w, "figavail: %s plan: %v\n", mode, err)
			return nil
		}
		st := prot.Availability(sched, mode)

		// Planning-side MLU with every scheduled link down: the FRR patch
		// for none/frr, the controller's re-solved splits for reopt.
		var predMLU units.Utilization
		switch mode {
		case resilience.NoProtection:
			predMLU, err = te.MLUOf(tt.Nodes, degraded, comms, primaries)
		case resilience.FRR:
			predMLU, err = te.MLUOf(tt.Nodes, degraded, comms, prot.Patched(downAll))
		case resilience.FRRReopt:
			// Plan compilation left planCtrl at the schedule's final
			// (restored) state; one warm re-solve puts it at the compound
			// all-down state — no third controller, no re-enumeration.
			if _, cerr := planCtrl.UpdateCapacities(degraded); cerr != nil {
				err = cerr
			} else {
				predMLU = planCtrl.Solution().MLU
			}
		}
		if err != nil {
			fprintf(w, "figavail: %s predicted MLU: %v\n", mode, err)
			return nil
		}

		for _, engine := range []netsim.Mode{netsim.PacketMode, netsim.FluidMode} {
			simComms := comms
			if engine == netsim.PacketMode && totalFlows > maxTEPacketFlows {
				simComms = DemandCommodities(demand, maxTEPacketFlows, teFlowBytes, teStartSpread)
			}
			sc := &netsim.Scenario{
				Nodes: tt.Nodes, Links: links, Comms: simComms,
				Splits:      primaries,
				Failures:    plan.Failures,
				Updates:     plan.Updates,
				FlowBytes:   teFlowBytes,
				Horizon:     teHorizon,
				StartSpread: teStartSpread,
				Seed:        opt.Seed,
			}
			r := sc.Run(engine)
			row := AvailRow{
				Study: "sim", Scheme: mode.String(), Mode: engine.String(),
				Availability: st.Availability, Nines: st.Nines,
				MeanStretch: st.MeanStretch, MaxStretch: st.MaxStretch,
				Reroutes: plan.Reroutes,
				Flows:    len(r.Flows), Completed: r.Completed,
				MLU: r.MLU, PredMLU: predMLU, LPSolves: plan.LPSolves,
			}
			if fcts := r.FCTs(); len(fcts) > 0 {
				row.P99FCTMs = netsim.Percentile(fcts, 99) * 1000
			}
			res.Rows = append(res.Rows, row)
			printAvailRow(w, &res.Rows[len(res.Rows)-1])
		}
	}
	return res
}

func printAvailRow(w io.Writer, r *AvailRow) {
	fprintf(w, "%-6s %-7s %8d %10d %7.3f%% %12.1f %8.3f %8.3f %9d\n",
		r.Scheme, r.Mode, r.Flows, r.Completed, r.Availability*100, r.P99FCTMs, r.MLU, r.PredMLU, r.LPSolves)
}
