// Package weather models precipitation impairment of microwave links
// (§6.1): ITU-R P.838-style rain attenuation, a seeded synthetic
// precipitation field standing in for NASA's TRMM/GPM data (substitution
// S6), binary link-failure determination against a fade margin, graded
// capacity degradation through an adaptive-modulation ladder (DESIGN.md
// §3.4), the year-long reroute analysis behind Fig 7 (days fanned out over
// the shared pool, failed links removed from the APSP incrementally), and
// a packet-level bridge that replays stormy intervals in internal/netsim.
// It also reproduces the §2 HFT-link loss statistics as a trace generator.
package weather

import (
	"math"

	"cisp/internal/units"
)

// p838Anchor holds power-law coefficients γ = k·R^α (dB/km) for horizontal
// polarisation at an anchor frequency, following ITU-R P.838-3. Intermediate
// frequencies are interpolated log-linearly in frequency, which is the
// recommendation's own interpolation rule.
type p838Anchor struct {
	fGHz, k, alpha float64
}

var p838Table = []p838Anchor{
	{6, 0.00175, 1.4011},
	{8, 0.00454, 1.3270},
	{10, 0.01217, 1.2571},
	{12, 0.02386, 1.1825},
	{15, 0.04481, 1.1233},
	{18, 0.07078, 1.0818},
}

// SpecificAttenuation returns the rain-induced attenuation in dB/km for a
// rain rate R (mm/h) at carrier frequency fGHz, per the ITU-R P.838 power
// law γ = k·R^α. Frequencies are clamped to the supported 6-18 GHz band the
// paper proposes for cISP.
func SpecificAttenuation(rainMMh, fGHz float64) float64 {
	if rainMMh <= 0 {
		return 0
	}
	k, alpha := p838Coeffs(fGHz)
	return k * math.Pow(rainMMh, alpha)
}

func p838Coeffs(fGHz float64) (k, alpha float64) {
	t := p838Table
	if fGHz <= t[0].fGHz {
		return t[0].k, t[0].alpha
	}
	if fGHz >= t[len(t)-1].fGHz {
		return t[len(t)-1].k, t[len(t)-1].alpha
	}
	for i := 0; i+1 < len(t); i++ {
		a, b := t[i], t[i+1]
		if fGHz >= a.fGHz && fGHz <= b.fGHz {
			// Log-linear in frequency for k; linear for α.
			w := (math.Log(fGHz) - math.Log(a.fGHz)) / (math.Log(b.fGHz) - math.Log(a.fGHz))
			k = math.Exp(math.Log(a.k)*(1-w) + math.Log(b.k)*w)
			alpha = a.alpha*(1-w) + b.alpha*w
			return k, alpha
		}
	}
	return t[len(t)-1].k, t[len(t)-1].alpha
}

// DefaultFadeMargin is the attenuation budget beyond which we
// conservatively declare a hop failed (the paper treats precipitation
// impairment as binary link failure).
const DefaultFadeMargin units.DB = 30

// Adaptive-modulation ladder (DESIGN.md §3.4): commercial microwave radios
// step the constellation down as rain eats the link budget, trading rate
// for robustness — 4096-QAM (12 bit/symbol) in clear air down to QPSK
// (2 bit/symbol) at the edge of the fade margin, one step per equal share
// of the margin. The paper models impairment as binary outage; the graded
// model refines it so capacity degrades before connectivity does.
const (
	acmMaxBits = 12 // 4096-QAM, clear-sky modulation
	acmMinBits = 2  // QPSK, last step before outage
	acmSteps   = acmMaxBits - acmMinBits
)

// CapacityFraction returns the fraction of a hop's clear-sky data rate
// available under atten of rain attenuation, per the adaptive-modulation
// ladder: 1 in clear air, stepping down one modulation notch per
// fadeMargin/acmSteps dB of fade, reaching acmMinBits/acmMaxBits at the
// margin and 0 (outage) beyond it. Monotone non-increasing in atten.
func CapacityFraction(atten, fadeMargin units.DB) float64 {
	if atten <= 0 {
		return 1
	}
	if fadeMargin <= 0 || atten > fadeMargin {
		return 0
	}
	lost := int(math.Ceil(float64(atten) / float64(fadeMargin) * acmSteps))
	if lost > acmSteps {
		lost = acmSteps
	}
	return float64(acmMaxBits-lost) / acmMaxBits
}
