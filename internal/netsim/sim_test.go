package netsim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var sim Simulator
	var got []int
	sim.Schedule(0.3, func() { got = append(got, 3) })
	sim.Schedule(0.1, func() { got = append(got, 1) })
	sim.Schedule(0.2, func() { got = append(got, 2) })
	sim.Run(1)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran in order %v", got)
	}
	if sim.Now() != 1 {
		t.Fatalf("Now = %v, want 1 after Run(1)", sim.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var sim Simulator
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		sim.Schedule(0.5, func() { got = append(got, i) })
	}
	sim.Run(1)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	var sim Simulator
	fired := false
	sim.Schedule(2.0, func() { fired = true })
	sim.Run(1.0)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", sim.Pending())
	}
	sim.Run(3.0)
	if !fired {
		t.Fatal("event did not fire on extended run")
	}
}

func TestNestedScheduling(t *testing.T) {
	var sim Simulator
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			sim.Schedule(0.1, tick)
		}
	}
	sim.Schedule(0.1, tick)
	sim.Run(10)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if math.Abs(sim.Now()-10) > 1e-12 {
		t.Fatalf("Now = %v", sim.Now())
	}
}

func TestSingleLinkTiming(t *testing.T) {
	// 1000-byte packet over 1 Mbps with 5 ms propagation: arrival at
	// 8 ms (tx) + 5 ms (prop) = 13 ms.
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	nw.AddLink(0, 1, 1e6, 0.005, 0)
	nw.SetFlowPath(7, []int{0, 1})
	var arrived float64 = -1
	nw.OnDeliver(7, func(p *Packet) { arrived = sim.Now() })
	nw.Inject(&Packet{Flow: 7, Size: 1000, Src: 0, Dst: 1})
	sim.Run(1)
	if math.Abs(arrived-0.013) > 1e-9 {
		t.Fatalf("arrival at %v, want 0.013", arrived)
	}
}

func TestQueueingDelaySerializes(t *testing.T) {
	// Two packets injected simultaneously: second arrives one tx-time later.
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	nw.AddLink(0, 1, 1e6, 0, 0)
	nw.SetFlowPath(1, []int{0, 1})
	var arrivals []float64
	nw.OnDeliver(1, func(p *Packet) { arrivals = append(arrivals, sim.Now()) })
	nw.Inject(&Packet{Flow: 1, Size: 1000, Src: 0, Dst: 1})
	nw.Inject(&Packet{Flow: 1, Size: 1000, Src: 0, Dst: 1})
	sim.Run(1)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs(arrivals[1]-arrivals[0]-0.008) > 1e-9 {
		t.Fatalf("second packet spaced %v, want 0.008 (serialization)", arrivals[1]-arrivals[0])
	}
}

func TestQueueCapDrops(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	l := nw.AddLink(0, 1, 1e6, 0, 2)
	nw.SetFlowPath(1, []int{0, 1})
	delivered := 0
	nw.OnDeliver(1, func(p *Packet) { delivered++ })
	for i := 0; i < 10; i++ {
		nw.Inject(&Packet{Flow: 1, Size: 1000, Src: 0, Dst: 1})
	}
	sim.Run(1)
	// One in flight + 2 queued survive the burst.
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	if l.Drops != 7 {
		t.Fatalf("drops = %d, want 7", l.Drops)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 4)
	nw.AddDuplex(0, 1, 1e9, 0.001, 0)
	nw.AddDuplex(1, 2, 1e9, 0.002, 0)
	nw.AddDuplex(2, 3, 1e9, 0.003, 0)
	nw.SetFlowPath(5, []int{0, 1, 2, 3})
	var at float64 = -1
	nw.OnDeliver(5, func(p *Packet) { at = sim.Now() })
	nw.Inject(&Packet{Flow: 5, Size: 500, Src: 0, Dst: 3})
	sim.Run(1)
	wantProp := 0.001 + 0.002 + 0.003
	wantTx := 3 * (500 * 8 / 1e9)
	if math.Abs(at-(wantProp+wantTx)) > 1e-9 {
		t.Fatalf("end-to-end %v, want %v", at, wantProp+wantTx)
	}
}

func TestUtilization(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	l := nw.AddLink(0, 1, 1e6, 0, 0)
	nw.SetFlowPath(1, []int{0, 1})
	nw.OnDeliver(1, func(p *Packet) {})
	// 50 packets of 1000B at 1 Mbps = 0.4 s busy in a 1 s window.
	for i := 0; i < 50; i++ {
		nw.Inject(&Packet{Flow: 1, Size: 1000, Src: 0, Dst: 1})
	}
	sim.Run(1)
	if u := l.Utilization(1); math.Abs(u-0.4) > 1e-6 {
		t.Fatalf("utilization = %v, want 0.4", u)
	}
}

func TestUtilizationTruncatedHorizon(t *testing.T) {
	// A packet mid-transmission at the horizon must be pro-rated, not
	// credited in full at tx start. 1000 B at 1 Mbps = 8 ms of tx starting
	// at t = 0.5; at t = 0.504 the link has been busy 4 ms of 504 ms.
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	l := nw.AddLink(0, 1, 1e6, 0, 0)
	nw.SetFlowPath(1, []int{0, 1})
	nw.OnDeliver(1, func(p *Packet) {})
	sim.Schedule(0.5, func() {
		nw.Inject(&Packet{Flow: 1, Size: 1000, Src: 0, Dst: 1})
	})
	sim.Run(0.504)
	want := 0.004 / 0.504
	if u := l.Utilization(sim.Now()); math.Abs(u-want) > 1e-9 {
		t.Fatalf("mid-packet utilization = %v, want %v (pro-rated)", u, want)
	}
	// After the transmission completes, the full 8 ms is credited.
	sim.Run(0.508)
	want = 0.008 / 0.508
	if u := l.Utilization(sim.Now()); math.Abs(u-want) > 1e-9 {
		t.Fatalf("completed utilization = %v, want %v", u, want)
	}
}

func TestLinkDropHook(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	l := nw.AddLink(0, 1, 1e6, 0, 0)
	nw.SetFlowPath(1, []int{0, 1})
	delivered := 0
	nw.OnDeliver(1, func(p *Packet) { delivered++ })
	l.Drop = func(p *Packet) bool { return p.Seq == 2 }
	for s := int64(1); s <= 3; s++ {
		nw.Inject(&Packet{Flow: 1, Seq: s, Size: 500, Src: 0, Dst: 1})
	}
	sim.Run(1)
	if delivered != 2 || l.Drops != 1 {
		t.Fatalf("delivered=%d drops=%d, want 2/1", delivered, l.Drops)
	}
}

func TestUDPSourceCBR(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	nw.AddLink(0, 1, 1e9, 0.004, 0)
	nw.SetFlowPath(1, []int{0, 1})
	mon := NewFlowMonitor()
	src := &UDPSource{Net: nw, Flow: 1, Src: 0, Dst: 1, RateBps: 4e6, PktSize: 500, Monitor: mon}
	src.Start()
	sim.Run(1)
	src.Stop()
	sim.Run(1.5) // drain in-flight packets
	f := mon.Flow(1)
	// 4 Mbps / (500B*8) = 1000 pkt/s.
	if f.TxPackets < 990 || f.TxPackets > 1010 {
		t.Fatalf("tx = %d, want ~1000", f.TxPackets)
	}
	if f.LossRate() != 0 {
		t.Fatalf("loss on uncongested link: %v", f.LossRate())
	}
	// Mean delay ≈ prop + tx = 4 ms + 4 µs.
	if d := f.MeanDelay(); math.Abs(d-0.004004) > 1e-6 {
		t.Fatalf("mean delay = %v, want ~4.004 ms", d)
	}
}

func TestUDPOverloadLoses(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	nw.AddLink(0, 1, 1e6, 0.001, 20) // 1 Mbps bottleneck
	nw.SetFlowPath(1, []int{0, 1})
	mon := NewFlowMonitor()
	src := &UDPSource{Net: nw, Flow: 1, Src: 0, Dst: 1, RateBps: 2e6, PktSize: 500, Monitor: mon}
	src.Start()
	sim.Run(2)
	src.Stop()
	sim.Run(3) // drain
	loss := mon.Flow(1).LossRate()
	// Offered 2x capacity: ~50% loss.
	if loss < 0.4 || loss > 0.6 {
		t.Fatalf("loss = %v, want ~0.5", loss)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if p := Percentile(vals, 50); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(vals, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(vals, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}
