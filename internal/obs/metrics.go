package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a run's metric instruments. Lookup (Counter, Gauge,
// Histogram) takes a mutex and is meant for setup and per-stage call
// sites; the instruments themselves update with single atomic operations
// and are safe on warm paths. Event-loop hot paths (//cisp:hotpath) keep
// plain local counters and publish once per run.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// canonLabels validates and canonicalizes a variadic key-value label list:
// pairs sorted by key, so every call-site ordering maps to one instrument.
func canonLabels(kv []string) []string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label list, want key-value pairs")
	}
	n := len(kv) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return kv[2*idx[a]] < kv[2*idx[b]] })
	out := make([]string, 0, len(kv))
	for _, i := range idx {
		out = append(out, kv[2*i], kv[2*i+1])
	}
	return out
}

// instKey builds the registry map key for (name, canonical labels).
func instKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "\xff" + strings.Join(labels, "\xff")
}

// Counter is a monotonically increasing int64. Methods are atomic and
// nil-safe (a nil counter — disabled registry — is a no-op).
type Counter struct {
	name   string
	labels []string
	v      atomic.Int64
}

// Counter returns the counter for (name, labels), creating it on first
// use. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := canonLabels(kv)
	k := instKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{name: name, labels: labels}
		r.counters[k] = c
	}
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	name   string
	labels []string
	bits   atomic.Uint64
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := canonLabels(kv)
	k := instKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{name: name, labels: labels}
		r.gauges[k] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v to the gauge (CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds its current value — a
// high-water mark across concurrent writers.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds, in seconds:
// wide enough to cover a sub-millisecond LP solve and a minute-long
// figure stage in one scheme.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations in fixed buckets (upper-bound inclusive,
// Prometheus "le" semantics) plus an implicit +Inf bucket, with an exact
// sum and count. Observe is two atomic adds and one CAS loop.
type Histogram struct {
	name    string
	labels  []string
	uppers  []float64 // ascending finite upper bounds
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Histogram returns the default-bucket histogram for (name, labels),
// creating it on first use.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets, kv...)
}

// HistogramBuckets returns the histogram for (name, labels) with the
// given finite upper bounds (ascending; +Inf is implicit), creating it on
// first use. Buckets are fixed at creation: later calls with different
// bounds return the existing instrument.
func (r *Registry) HistogramBuckets(name string, uppers []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := canonLabels(kv)
	k := instKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		up := append([]float64(nil), uppers...)
		sort.Float64s(up)
		h = &Histogram{name: name, labels: labels, uppers: up, counts: make([]atomic.Int64, len(up))}
		r.hists[k] = h
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v: le is inclusive
	if i < len(h.uppers) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation within the target bucket — the same estimate
// Prometheus's histogram_quantile computes. Returns 0 with no samples;
// samples beyond the last finite bucket report that bucket's bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.uppers[i-1]
			}
			return lo + (h.uppers[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(h.uppers) > 0 {
		return h.uppers[len(h.uppers)-1]
	}
	return 0
}

// snapshot collects every instrument sorted by (name, labels) for the
// deterministic encoders in prom.go. Values are read after the sort, so
// an export is a near-consistent cut.
type snapshot struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

func (r *Registry) snapshot() snapshot {
	var s snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	for _, c := range r.counters {
		s.counters = append(s.counters, c) //lint:allow maporder -- sorted by (name, labels) below before any output
	}
	for _, g := range r.gauges {
		s.gauges = append(s.gauges, g) //lint:allow maporder -- sorted by (name, labels) below before any output
	}
	for _, h := range r.hists {
		s.hists = append(s.hists, h) //lint:allow maporder -- sorted by (name, labels) below before any output
	}
	r.mu.Unlock()
	sort.Slice(s.counters, func(a, b int) bool {
		return instLess(s.counters[a].name, s.counters[a].labels, s.counters[b].name, s.counters[b].labels)
	})
	sort.Slice(s.gauges, func(a, b int) bool {
		return instLess(s.gauges[a].name, s.gauges[a].labels, s.gauges[b].name, s.gauges[b].labels)
	})
	sort.Slice(s.hists, func(a, b int) bool {
		return instLess(s.hists[a].name, s.hists[a].labels, s.hists[b].name, s.hists[b].labels)
	})
	return s
}

func instLess(an string, al []string, bn string, bl []string) bool {
	if an != bn {
		return an < bn
	}
	return strings.Join(al, "\xff") < strings.Join(bl, "\xff")
}
