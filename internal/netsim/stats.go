package netsim

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0-100) of a float slice, with
// linear interpolation between order statistics (sorted or not; the input
// is not modified). NaN for an empty slice.
//
// This is the single percentile implementation in the codebase; every
// integer or float percentile (queue occupancies, FCT distributions,
// stretch tables) funnels through it.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileInts returns the p-th percentile (0-100) of an int slice
// (sorted or not; the input is not modified). NaN for an empty slice.
func PercentileInts(values []int, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(values))
	for i, v := range values {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted interpolates the p-th percentile of an ascending slice.
func percentileSorted(s []float64, p float64) float64 {
	idx := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo < 0 {
		lo, hi = 0, 0
	}
	if hi >= len(s) {
		lo, hi = len(s)-1, len(s)-1
	}
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
