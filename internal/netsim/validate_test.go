package netsim

import (
	"math"
	"strings"
	"testing"
)

func validateFixture() (int, []TopoLink, []Commodity) {
	links := []TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.002},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.002},
		{A: 0, B: 2, RateBps: 10e6, PropDelay: 0.0025},
		{A: 2, B: 3, RateBps: 10e6, PropDelay: 0.0025},
	}
	comms := []Commodity{{Flow: 7, Src: 0, Dst: 3, Demand: 5e6}}
	return 4, links, comms
}

func TestValidateSplitsAccepts(t *testing.T) {
	n, links, comms := validateFixture()
	splits := map[int][]SplitPath{7: {
		{Path: []int{0, 1, 3}, Frac: 0.6},
		{Path: []int{0, 2, 3}, Frac: 0.4},
	}}
	if err := ValidateSplits(n, links, comms, splits); err != nil {
		t.Fatalf("valid splits rejected: %v", err)
	}
	// Reverse-direction hops of a duplex link are fine too.
	rev := map[int][]SplitPath{7: {{Path: []int{0, 2, 3}, Frac: 1}}}
	if err := ValidateSplits(n, links, comms, rev); err != nil {
		t.Fatalf("reverse-hop splits rejected: %v", err)
	}
	// Sub-tolerance drift from dropped tiny fractions passes.
	drift := map[int][]SplitPath{7: {{Path: []int{0, 1, 3}, Frac: 1 - 4e-6}}}
	if err := ValidateSplits(n, links, comms, drift); err != nil {
		t.Fatalf("sum within tolerance rejected: %v", err)
	}
}

func TestValidateSplitsRejects(t *testing.T) {
	n, links, comms := validateFixture()
	cases := []struct {
		name   string
		splits map[int][]SplitPath
		want   string
	}{
		{"unknown flow", map[int][]SplitPath{9: {{Path: []int{0, 1, 3}, Frac: 1}}}, "unknown commodity"},
		{"empty set", map[int][]SplitPath{7: {}}, "empty split set"},
		{"zero frac", map[int][]SplitPath{7: {{Path: []int{0, 1, 3}, Frac: 0}}}, "non-positive"},
		{"NaN frac", map[int][]SplitPath{7: {{Path: []int{0, 1, 3}, Frac: math.NaN()}}}, "non-positive or non-finite"},
		{"degenerate path", map[int][]SplitPath{7: {{Path: []int{0}, Frac: 1}}}, "degenerate path"},
		{"wrong endpoints", map[int][]SplitPath{7: {{Path: []int{1, 3}, Frac: 1}}}, "does not run"},
		{"phantom hop", map[int][]SplitPath{7: {{Path: []int{0, 3}, Frac: 1}}}, "not a topology link"},
		{"node out of range", map[int][]SplitPath{7: {{Path: []int{0, 9, 3}, Frac: 1}}}, "outside node range"},
		{"sum short", map[int][]SplitPath{7: {{Path: []int{0, 1, 3}, Frac: 0.5}}}, "sum to"},
	}
	for _, tc := range cases {
		err := ValidateSplits(n, links, comms, tc.splits)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
