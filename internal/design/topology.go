package design

import "math"

// Link is one built microwave city-city link.
type Link struct {
	I, J int
	Dist float64 // latency-equivalent meters (m_ij)
	Cost float64 // towers (c_ij)
}

// Topology is a (partial) design: the set of built microwave links over the
// always-available fiber substrate, with the hybrid all-pairs shortest
// latency-distance matrix maintained incrementally.
type Topology struct {
	P     *Problem
	Built []Link

	d      [][]float64 // hybrid latency-equivalent APSP
	fiberD [][]float64 // fiber-only metric closure (for pruning/baselines)
	cost   float64
}

// NewTopology returns the fiber-only topology for p (no microwave links).
func NewTopology(p *Problem) *Topology {
	fd := p.fiberClosure()
	d := make([][]float64, p.N)
	for i := range d {
		d[i] = make([]float64, p.N)
		copy(d[i], fd[i])
	}
	return &Topology{P: p, d: d, fiberD: fd}
}

// Clone returns an independent copy of the topology.
func (t *Topology) Clone() *Topology {
	c := &Topology{P: t.P, fiberD: t.fiberD, cost: t.cost}
	c.Built = append([]Link(nil), t.Built...)
	c.d = make([][]float64, len(t.d))
	for i := range t.d {
		c.d[i] = append([]float64(nil), t.d[i]...)
	}
	return c
}

// AddLink builds the microwave link (i,j) and updates the APSP matrix in
// O(n²) using the single-edge-insertion identity.
func (t *Topology) AddLink(i, j int) {
	w := t.P.MW[i][j]
	t.Built = append(t.Built, Link{I: i, J: j, Dist: w, Cost: t.P.MWCost[i][j]})
	t.cost += t.P.MWCost[i][j]
	updateAPSP(t.d, i, j, w)
}

// updateAPSP relaxes all pairs through a new edge (i,j) of weight w.
func updateAPSP(d [][]float64, i, j int, w float64) {
	n := len(d)
	for s := 0; s < n; s++ {
		dsi, dsj := d[s][i], d[s][j]
		if math.IsInf(dsi, 1) && math.IsInf(dsj, 1) {
			continue
		}
		ds := d[s]
		for u := 0; u < n; u++ {
			via1 := dsi + w + d[j][u]
			via2 := dsj + w + d[i][u]
			if via1 < ds[u] {
				ds[u] = via1
			}
			if via2 < ds[u] {
				ds[u] = via2
			}
		}
	}
}

// CostUsed returns the total towers consumed by built links.
func (t *Topology) CostUsed() float64 { return t.cost }

// Dist returns the current hybrid latency-equivalent distance between sites.
func (t *Topology) Dist(i, j int) float64 { return t.d[i][j] }

// FiberDist returns the fiber-only latency-equivalent distance.
func (t *Topology) FiberDist(i, j int) float64 { return t.fiberD[i][j] }

// MeanStretch returns the traffic-weighted mean stretch,
// Σ h_st · (D_st/d_st) / Σ h_st — the paper's objective normalised per unit
// traffic. Pairs with zero traffic are ignored.
func (t *Topology) MeanStretch() float64 {
	p := t.P
	num, den := 0.0, 0.0
	for s := 0; s < p.N; s++ {
		for u := s + 1; u < p.N; u++ {
			h := p.Traffic[s][u]
			if h == 0 {
				continue
			}
			num += h * t.d[s][u] / p.Geodesic[s][u]
			den += h
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// objective is the un-normalised Σ h_st·D_st/d_st (what the solvers
// minimise; same argmin as MeanStretch).
func (t *Topology) objective() float64 {
	p := t.P
	sum := 0.0
	for s := 0; s < p.N; s++ {
		for u := s + 1; u < p.N; u++ {
			if h := p.Traffic[s][u]; h != 0 {
				sum += h * t.d[s][u] / p.Geodesic[s][u]
			}
		}
	}
	return sum
}

// gainOf returns the objective decrease from adding link (i,j) to the
// current topology, in O(n²), without mutating state.
func (t *Topology) gainOf(i, j int) float64 {
	p := t.P
	w := p.MW[i][j]
	gain := 0.0
	d := t.d
	for s := 0; s < p.N; s++ {
		dsi, dsj := d[s][i], d[s][j]
		for u := s + 1; u < p.N; u++ {
			h := p.Traffic[s][u]
			if h == 0 {
				continue
			}
			cur := d[s][u]
			alt := math.Min(dsi+w+d[j][u], dsj+w+d[i][u])
			if alt < cur {
				gain += h * (cur - alt) / p.Geodesic[s][u]
			}
		}
	}
	return gain
}

// HasLink reports whether the (i,j) microwave link is built.
func (t *Topology) HasLink(i, j int) bool {
	for _, l := range t.Built {
		if (l.I == i && l.J == j) || (l.I == j && l.J == i) {
			return true
		}
	}
	return false
}

// MeanFiberStretch returns the traffic-weighted mean stretch of the
// fiber-only baseline (no MW links) — the paper's ~1.93× reference.
func (t *Topology) MeanFiberStretch() float64 {
	p := t.P
	num, den := 0.0, 0.0
	for s := 0; s < p.N; s++ {
		for u := s + 1; u < p.N; u++ {
			h := p.Traffic[s][u]
			if h == 0 {
				continue
			}
			num += h * t.fiberD[s][u] / p.Geodesic[s][u]
			den += h
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
