package experiments

import "cisp/internal/econ"

// CostBenefitResult tabulates §8's value-per-GB estimates against cost.
type CostBenefitResult struct {
	Search200, Search400 econ.ValuePerGB
	ECommerce            econ.ValuePerGB
	Gaming               econ.ValuePerGB
	NetworkCostPerGB     float64
	AllExceedCost        bool
}

// CostBenefit reproduces the paper's §8 table: Web search $1.84–3.74/GB,
// e-commerce $3.26–22.82/GB, gaming ≥$3.7/GB — all above the network's
// ~$0.81/GB cost.
func CostBenefit(opt Options, networkCostPerGB float64) *CostBenefitResult {
	w := opt.out()
	if networkCostPerGB == 0 {
		networkCostPerGB = 0.81
	}
	s200, s400 := econ.PaperWebSearch()
	res := &CostBenefitResult{
		Search200:        s200,
		Search400:        s400,
		ECommerce:        econ.PaperECommerce(),
		Gaming:           econ.PaperGaming(),
		NetworkCostPerGB: networkCostPerGB,
	}
	res.AllExceedCost = econ.Exceeds(networkCostPerGB, s200, res.ECommerce, res.Gaming)

	fprintf(w, "§8 — cost-benefit (network cost $%.2f/GB)\n", networkCostPerGB)
	fprintf(w, "  web search:  $%.2f/GB at 200ms, $%.2f/GB at 400ms (paper $1.84/$3.74)\n",
		res.Search200.Low, res.Search400.Low)
	fprintf(w, "  e-commerce:  $%.2f-$%.2f/GB (paper $3.26-$22.82)\n",
		res.ECommerce.Low, res.ECommerce.High)
	fprintf(w, "  gaming:      $%.2f/GB (paper ~$3.7)\n", res.Gaming.Low)
	fprintf(w, "  all estimates exceed cost: %v\n", res.AllExceedCost)
	return res
}
