// Package xheap provides generic binary-heap operations on plain slices.
// It replaces container/heap on the simulator hot paths: the standard
// interface converts every pushed element to interface{}, which allocates
// for any element wider than a pointer — one garbage object per scheduled
// event. These functions are monomorphized over the element type and a
// caller-supplied ordering, so a push is an append into the backing array
// and nothing escapes.
//
// Pass a top-level function (not a capturing closure) as less so the call
// site itself stays allocation-free. Ties must be broken deterministically
// in less (DESIGN.md §9): heaps are not stable, so an ordering that leaves
// equal elements unordered lets insertion history leak into pop order.
package xheap

// Push adds x to the heap *h ordered by less.
//
//cisp:hotpath
func Push[T any](h *[]T, x T, less func(a, b T) bool) {
	//lint:allow hotpathalloc -- amortized growth of the heap's backing array
	*h = append(*h, x)
	up(*h, len(*h)-1, less)
}

// Pop removes and returns the minimum element. It panics on an empty heap,
// like container/heap.
//
//cisp:hotpath
func Pop[T any](h *[]T, less func(a, b T) bool) T {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	down(s[:n], 0, less)
	x := s[n]
	var zero T
	s[n] = zero // release references held by the vacated slot
	*h = s[:n]
	return x
}

// Remove removes and returns the element at index i.
//
//cisp:hotpath
func Remove[T any](h *[]T, i int, less func(a, b T) bool) T {
	s := *h
	n := len(s) - 1
	if i != n {
		s[i], s[n] = s[n], s[i]
		if !down(s[:n], i, less) {
			up(s, i, less)
		}
	}
	x := s[n]
	var zero T
	s[n] = zero
	*h = s[:n]
	return x
}

// Init establishes the heap invariant over an arbitrarily ordered slice in
// O(n).
func Init[T any](h []T, less func(a, b T) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(h, i, less)
	}
}

// Fix restores the invariant after the element at index i changed its key.
//
//cisp:hotpath
func Fix[T any](h []T, i int, less func(a, b T) bool) {
	if !down(h, i, less) {
		up(h, i, less)
	}
}

func up[T any](h []T, j int, less func(a, b T) bool) {
	for j > 0 {
		i := (j - 1) / 2
		if !less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// down sifts h[i] toward the leaves; it reports whether the element moved.
func down[T any](h []T, i int, less func(a, b T) bool) bool {
	n := len(h)
	i0 := i
	for {
		left := 2*i + 1
		if left >= n || left < 0 { // left < 0 after int overflow
			break
		}
		j := left
		if right := left + 1; right < n && less(h[right], h[left]) {
			j = right
		}
		if !less(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return i > i0
}
