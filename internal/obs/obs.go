// Package obs is the repo's zero-dependency observability subsystem:
// an atomic metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text-format and JSON exposition, a deterministic stage
// tracer whose Chrome trace_event export is byte-identical across
// same-seed runs, and an HTTP serve mode (/metrics, /healthz, pprof) for
// live inspection of long runs. See DESIGN.md §12.
//
// Determinism contract: experiment *results* never depend on obs — every
// instrument is write-only from the pipeline's point of view, and the
// trace layout is derived from the span tree's structure (names, sibling
// order, item counts), never from a clock. Wall time enters only through
// an injectable Clock, and the one sanctioned wall-clock call sits in
// WallClock — the determinism analyzer's boundary for this package,
// mirroring how units.float64() is the erasing boundary for unitcheck.
// Packages outside main inject WallClock (or a fake) rather than calling
// time.Now themselves.
//
// The disabled path is free: with no active Sink every call — Counter,
// Gauge, Histogram, Span, StartTimer and the methods on their nil returns
// — is a nil-check no-op with zero allocations, so instrumentation can
// stay in library code unconditionally.
package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies wall time to a Sink's timers and to the tracer's
// progress events. Inject WallClock at the CLI boundary; tests inject a
// fake for reproducible timings.
type Clock func() time.Time

// WallClock is the sanctioned wall-clock boundary: the only place in the
// repo's library code allowed to read the real time (package main and
// tests are exempt by the determinism analyzer's own scoping).
func WallClock() time.Time {
	return time.Now() //lint:allow determinism -- the one sanctioned wall-clock boundary; callers inject this Clock explicitly and results never depend on it
}

// Sink bundles the observability outputs of a run: a metrics registry, a
// stage tracer, and the clock feeding their wall-time surfaces. Any field
// may be nil; every method on a nil *Sink or with nil fields is a no-op,
// so instrumented code never guards its calls.
type Sink struct {
	Reg   *Registry
	Tr    *Tracer
	Clock Clock
}

// active is the process-wide sink, nil when observability is disabled
// (the default). A process-global mirrors the precedent of te.LPSolves:
// threading a sink through every constructor of an eight-layer pipeline
// would dwarf the subsystem it serves.
var active atomic.Pointer[Sink]

// Active returns the process-wide sink, or nil when disabled.
func Active() *Sink { return active.Load() }

// SetActive installs the process-wide sink (nil disables) and returns the
// previous one, so scoped users — benchmarks, tests — can swap and
// restore.
func SetActive(s *Sink) *Sink { return active.Swap(s) }

// Counter returns the named counter from the sink's registry, nil-safe.
func (s *Sink) Counter(name string, kv ...string) *Counter {
	if s == nil {
		return nil
	}
	return s.Reg.Counter(name, kv...)
}

// Gauge returns the named gauge from the sink's registry, nil-safe.
func (s *Sink) Gauge(name string, kv ...string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Reg.Gauge(name, kv...)
}

// Histogram returns the named histogram (default buckets) from the sink's
// registry, nil-safe.
func (s *Sink) Histogram(name string, kv ...string) *Histogram {
	if s == nil {
		return nil
	}
	return s.Reg.Histogram(name, kv...)
}

// StartTimer starts timing an operation against the named histogram
// (seconds). The returned stop function observes the elapsed time; it is
// a shared no-op when the sink, its registry, or its clock is nil.
func (s *Sink) StartTimer(name string, kv ...string) func() {
	if s == nil || s.Reg == nil || s.Clock == nil {
		return func() {}
	}
	h := s.Reg.Histogram(name, kv...)
	t0 := s.Clock()
	return func() { h.Observe(s.Clock().Sub(t0).Seconds()) }
}

// Span opens a root span on the sink's tracer, nil-safe: with no tracer it
// returns nil, whose methods are all no-ops.
func (s *Sink) Span(name string) *Span {
	if s == nil || s.Tr == nil {
		return nil
	}
	return s.Tr.begin(nil, name)
}
