package workload

import (
	"fmt"
	"math"

	"cisp/internal/cities"
	"cisp/internal/econ"
	"cisp/internal/gaming"
	"cisp/internal/graph"
	"cisp/internal/media"
	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/parallel"
	"cisp/internal/resilience"
	"cisp/internal/te"
	"cisp/internal/units"
	"cisp/internal/webpage"
)

// Substrate labels of a scenario's paired runs.
const (
	SubstrateCISP  = "cisp"  // hybrid backbone, TE fractional splits
	SubstrateFiber = "fiber" // fiber-only baseline, shortest-path routing
)

// Pipeline runs compiled scenarios end to end: TE splits on the hybrid
// backbone against shortest-path routing on the fiber-only baseline,
// fast-reroute plans when the scenario schedules failures, and both
// netsim engines on each substrate. Zero-value fields take defaults; the
// same pipeline and compiled scenario always produce a bit-identical
// report at every parallelism level.
type Pipeline struct {
	Backbone *Backbone

	TotalFlows  int     // fluid-scale concurrent flows (default 20 000)
	PacketFlows int     // packet-engine clamp (default 1 500)
	Window      float64 // flow arrival window, seconds (default 30)
	Horizon     float64 // replay horizon, seconds (default 60)
	Seed        int64

	TECfg   te.Config
	ProtCfg resilience.Config

	// Span, when non-nil, parents the stage spans Run opens (te-solve,
	// protect, the four replay legs) on the active obs tracer. Nil is
	// fine: stage timings still reach the metrics registry, only the
	// trace nesting is absent.
	Span *obs.Span
}

func (p Pipeline) withDefaults() Pipeline {
	if p.TotalFlows <= 0 {
		p.TotalFlows = 20_000
	}
	if p.PacketFlows <= 0 {
		p.PacketFlows = 1500
	}
	if p.PacketFlows > p.TotalFlows {
		p.PacketFlows = p.TotalFlows
	}
	if p.Window <= 0 {
		p.Window = 30
	}
	if p.Horizon <= 0 {
		p.Horizon = 60
	}
	return p
}

// AppStats is one application class's outcome in one run.
type AppStats struct {
	App          string
	Flows        int
	Completed    int
	P50FCTMs     float64 // completed flows only
	P99FCTMs     float64
	MeanRateKbps float64 // over flows that reported a rate

	// GoodputKbps is the class's aggregate drain rate: completed payload
	// bytes over the span from the class's first flow start to its last
	// completion. Unlike the mean of per-flow rates — which TCP's
	// short-flow favoritism skews upward relative to max-min sharing —
	// this is bottleneck-limited in both engines, so it is the quantity
	// the cross-engine agreement tests pin.
	GoodputKbps float64

	RTTMs float64 // demand-weighted propagation RTT on the substrate
}

// RunStats is one (substrate, engine) run of a scenario.
type RunStats struct {
	Substrate string // SubstrateCISP or SubstrateFiber
	Mode      string // "packet" or "fluid"
	Flows     int
	Completed int
	MLU       units.Utilization
	Apps      [NumApps]AppStats
}

// QoE is the §7/§8 quality-of-experience translation of the measured
// latency deltas: what the RTT gap between the substrates means for a
// gamer's frame time, a page load, and the economics.
type QoE struct {
	GamingFrameMsFiber float64 // mean frame time over the fiber baseline
	GamingFrameMsCISP  float64 // with the low-latency path carrying inputs
	WebPLTMsFiber      float64 // mean page-load time, corpus replay
	WebPLTMsCISP       float64

	// SearchValuePerGB prices the measured PLT speedup against the web
	// traffic carried (§8); GamingValuePerGB is the paper's VPN
	// comparison; BeatsCost reports both against the ~$0.81/GB network
	// cost.
	SearchValuePerGB float64
	GamingValuePerGB float64
	BeatsCost        bool
}

// SinkBill is the provisioning bill of one placed CDN replica: its egress
// demand backhauled to the nearest origin data center on the cheapest
// physical medium (internal/media).
type SinkBill struct {
	Site       int
	EgressGbps float64
	BackhaulKm units.Km
	Medium     string
	Capex      float64
}

// ScenarioReport is the end-to-end outcome of one scenario: four runs
// (two substrates × two engines), availability when failures were
// scheduled, the QoE translation, and the CDN bill when replicas were
// placed. All fields are deterministic — no wall-clock anywhere.
type ScenarioReport struct {
	Name        string
	Kind        string
	TotalUsers  float64
	OfferedGbps float64
	Sinks       []int

	PredMLUCISP  units.Utilization // TE solution's predicted MLU on the hybrid
	PredMLUFiber units.Utilization // shortest-path baseline's MLU

	Runs []RunStats // cisp/fluid, cisp/packet, fiber/fluid, fiber/packet

	// HasFailures reports whether the scenario scheduled outages; the
	// nines and stretch fields are only meaningful when it did. The
	// availability walk runs over the drill-time schedule (real
	// durations), while the replay runs its compressed image.
	HasFailures bool
	AvailCISP   resilience.Stats
	AvailFiber  resilience.Stats

	QoE QoE

	SinkBills []SinkBill // CDNPlacement only
	SinkCapex float64    // Σ SinkBills

	ReroutesCISP  int // fast-reroute path updates the hybrid plan issued
	ReroutesFiber int
}

// Run returns the named run, or nil.
func (r *ScenarioReport) Run(substrate, mode string) *RunStats {
	for i := range r.Runs {
		if r.Runs[i].Substrate == substrate && r.Runs[i].Mode == mode {
			return &r.Runs[i]
		}
	}
	return nil
}

// runSpec is one (substrate, engine) simulation of the fan-out.
type runSpec struct {
	substrate string
	mode      netsim.Mode
	nodes     int
	links     []netsim.TopoLink
	comms     []netsim.Commodity
	splits    map[int][]netsim.SplitPath
	failures  []netsim.FailureEvent
	updates   []netsim.PathUpdate
}

// Run executes a compiled scenario end to end. The four (substrate,
// engine) replays fan out on the shared worker pool; results are
// chunk-ordered, so the report is bit-identical at every worker count.
func (p Pipeline) Run(c *Compiled) (*ScenarioReport, error) {
	p = p.withDefaults()
	b := p.Backbone
	if b == nil {
		b = c.Backbone
	}
	if b == nil {
		return nil, fmt.Errorf("workload: pipeline has no backbone")
	}
	hybrid := b.Hybrid()

	fluidComms, appOf := c.Commodities(p.TotalFlows, p.Window)
	packetComms, _ := c.Commodities(p.PacketFlows, p.Window)
	if len(fluidComms) == 0 {
		return nil, fmt.Errorf("workload: scenario %q compiled to no commodities", c.Spec.Name)
	}

	// Control planes: TE fractional splits on the hybrid, single
	// shortest paths on the fiber baseline.
	snk := obs.Active()
	teSp := p.Span.Child("te-solve")
	teStop := snk.StartTimer("cisp_workload_stage_seconds", "stage", "te-solve")
	solH, err := te.Solve(b.Nodes, hybrid, fluidComms, p.TECfg)
	if err != nil {
		return nil, fmt.Errorf("workload: hybrid TE solve: %w", err)
	}
	solF, err := te.SolveShortest(b.Nodes, b.Fiber, fluidComms)
	if err != nil {
		return nil, fmt.Errorf("workload: fiber baseline solve: %w", err)
	}
	teStop()
	teSp.SetItems(int64(len(fluidComms)))
	teSp.End()

	rep := &ScenarioReport{
		Name:         c.Spec.Name,
		Kind:         c.Spec.Kind.String(),
		TotalUsers:   c.TotalUsers,
		OfferedGbps:  c.OfferedGbps,
		Sinks:        append([]int(nil), c.Sinks...),
		PredMLUCISP:  solH.MLU,
		PredMLUFiber: solF.MLU,
	}

	// Failure response: the full production loop — fast reroute backed by
	// warm reoptimization (FRRReopt). A regional storm can kill a
	// commodity's microwave primary and backup together; only the
	// background controller rescues those fractions onto fiber. Plans are
	// compiled against the replay-compressed schedule, availability walked
	// over the drill-time one.
	var failH, failF []netsim.FailureEvent
	var updH, updF []netsim.PathUpdate
	if c.Schedule != nil {
		rep.HasFailures = true
		protSp := p.Span.Child("protect")
		protStop := snk.StartTimer("cisp_workload_stage_seconds", "stage", "protect")
		protH, err := resilience.NewProtection(b.Nodes, hybrid, fluidComms, solH.Splits, p.ProtCfg)
		if err != nil {
			return nil, fmt.Errorf("workload: hybrid protection: %w", err)
		}
		ctrlH, err := te.NewController(b.Nodes, hybrid, fluidComms, p.TECfg)
		if err != nil {
			return nil, fmt.Errorf("workload: hybrid controller: %w", err)
		}
		planH, err := protH.Plan(compressSchedule(c.Schedule, p.Horizon), resilience.FRRReopt, ctrlH)
		if err != nil {
			return nil, fmt.Errorf("workload: hybrid FRR plan: %w", err)
		}
		failH, updH = planH.Failures, planH.Updates
		rep.ReroutesCISP = planH.Reroutes
		rep.AvailCISP = protH.Availability(c.Schedule, resilience.FRRReopt)

		// The fiber baseline sees the same drill restricted to its own
		// link list: microwave fades vanish, the conduit cut keeps biting.
		nMw := len(b.Mw)
		fiberSched := c.Schedule.Remap(len(b.Fiber), func(li int) int { return li - nMw })
		protF, err := resilience.NewProtection(b.Nodes, b.Fiber, fluidComms, solF.Splits, p.ProtCfg)
		if err != nil {
			return nil, fmt.Errorf("workload: fiber protection: %w", err)
		}
		ctrlF, err := te.NewController(b.Nodes, b.Fiber, fluidComms, te.Config{K: 1})
		if err != nil {
			return nil, fmt.Errorf("workload: fiber controller: %w", err)
		}
		planF, err := protF.Plan(compressSchedule(fiberSched, p.Horizon), resilience.FRRReopt, ctrlF)
		if err != nil {
			return nil, fmt.Errorf("workload: fiber FRR plan: %w", err)
		}
		failF, updF = planF.Failures, planF.Updates
		rep.ReroutesFiber = planF.Reroutes
		rep.AvailFiber = protF.Availability(fiberSched, resilience.FRRReopt)
		protStop()
		protSp.SetItems(int64(rep.ReroutesCISP + rep.ReroutesFiber))
		protSp.End()
	}

	specs := []runSpec{
		{SubstrateCISP, netsim.FluidMode, b.Nodes, hybrid, fluidComms, solH.Splits, failH, updH},
		{SubstrateCISP, netsim.PacketMode, b.Nodes, hybrid, packetComms, solH.Splits, failH, updH},
		{SubstrateFiber, netsim.FluidMode, b.Nodes, b.Fiber, fluidComms, solF.Splits, failF, updF},
		{SubstrateFiber, netsim.PacketMode, b.Nodes, b.Fiber, packetComms, solF.Splits, failF, updF},
	}
	results := parallel.Map(len(specs), 1, func(i int) *netsim.ScenarioResult {
		s := specs[i]
		leg := s.substrate + "/" + s.mode.String()
		legSp := p.Span.Child("replay:" + leg)
		legStop := snk.StartTimer("cisp_workload_stage_seconds", "stage", "replay:"+leg)
		sc := &netsim.Scenario{
			Nodes: s.nodes, Links: s.links, Comms: s.comms,
			Scheme:      netsim.ShortestPath,
			Splits:      s.splits,
			Failures:    s.failures,
			Updates:     s.updates,
			Horizon:     p.Horizon,
			StartSpread: p.Window,
			Seed:        p.Seed,
		}
		res := sc.Run(s.mode)
		legStop()
		legSp.SetItems(res.EventsProcessed)
		legSp.End()
		return res
	})

	rttH := p.appRTTs(b.Nodes, hybrid, fluidComms, appOf)
	rttF := p.appRTTs(b.Nodes, b.Fiber, fluidComms, appOf)
	for i, res := range results {
		rtt := rttH
		if specs[i].substrate == SubstrateFiber {
			rtt = rttF
		}
		rep.Runs = append(rep.Runs, runStats(specs[i], res, appOf, c.Spec.Mix, rtt))
	}

	rep.QoE = p.qoe(c, rttH, rttF)
	if c.Spec.Kind == CDNPlacement {
		rep.SinkBills = sinkBills(c)
		for _, sb := range rep.SinkBills {
			rep.SinkCapex += sb.Capex
		}
	}
	return rep, nil
}

// compressSchedule linearly rescales a drill-time schedule into the
// replay horizon, preserving outage order and overlap structure.
func compressSchedule(s *resilience.Schedule, horizon float64) *resilience.Schedule {
	if s.Horizon <= 0 {
		return s
	}
	f := horizon / s.Horizon
	out := &resilience.Schedule{Horizon: horizon, NumLinks: s.NumLinks}
	for _, o := range s.Outages {
		out.Outages = append(out.Outages, resilience.Outage{Link: o.Link, Start: o.Start * f, End: o.End * f})
	}
	return out
}

// appRTTs returns the demand-weighted mean propagation RTT per
// application over a substrate: shortest-delay paths at clear sky, each
// commodity weighted by its offered demand.
func (p Pipeline) appRTTs(nodes int, links []netsim.TopoLink, comms []netsim.Commodity, appOf map[int]App) [NumApps]float64 {
	g := graph.New[units.Seconds](nodes)
	for _, l := range links {
		g.AddEdge(l.A, l.B, l.PropDelay)
	}
	dist := map[int][]units.Seconds{}
	var sum, weight [NumApps]float64
	for _, c := range comms {
		d, ok := dist[c.Src]
		if !ok {
			d, _ = g.Dijkstra(c.Src)
			dist[c.Src] = d
		}
		a := appOf[c.Flow]
		if dd := d[c.Dst]; !math.IsInf(float64(dd), 1) { // unreachable pairs are skipped
			sum[a] += float64(c.Demand) * 2 * float64(dd)
			weight[a] += float64(c.Demand)
		}
	}
	var out [NumApps]float64
	for a := range out {
		if weight[a] > 0 {
			out[a] = sum[a] / weight[a] * 1000 // seconds → ms
		}
	}
	return out
}

// runStats reduces one simulation result to its per-application figures.
func runStats(spec runSpec, res *netsim.ScenarioResult, appOf map[int]App, mix AppMix, rtt [NumApps]float64) RunStats {
	rs := RunStats{
		Substrate: spec.substrate,
		Mode:      res.Mode.String(),
		Flows:     len(res.Flows),
		Completed: res.Completed,
		MLU:       res.MLU,
	}
	var fcts [NumApps][]float64
	var rateSum, first, last [NumApps]float64
	var rateN [NumApps]int
	for a := range first {
		first[a] = math.Inf(1)
	}
	for _, f := range res.Flows {
		a := appOf[f.Flow]
		rs.Apps[a].Flows++
		if f.Start < first[a] {
			first[a] = f.Start
		}
		if f.Completed {
			rs.Apps[a].Completed++
			fcts[a] = append(fcts[a], f.FCT)
			if end := f.Start + f.FCT; end > last[a] {
				last[a] = end
			}
		}
		if f.MeanRateBps > 0 {
			rateSum[a] += f.MeanRateBps
			rateN[a]++
		}
	}
	for a := App(0); a < NumApps; a++ {
		rs.Apps[a].App = a.String()
		rs.Apps[a].RTTMs = rtt[a]
		if len(fcts[a]) > 0 {
			rs.Apps[a].P50FCTMs = netsim.Percentile(fcts[a], 50) * 1000
			rs.Apps[a].P99FCTMs = netsim.Percentile(fcts[a], 99) * 1000
		}
		if rateN[a] > 0 {
			rs.Apps[a].MeanRateKbps = rateSum[a] / float64(rateN[a]) / 1000
		}
		if span := last[a] - first[a]; span > 0 && rs.Apps[a].Completed > 0 {
			bytes := float64(rs.Apps[a].Completed) * float64(mix[a].FlowBytes)
			rs.Apps[a].GoodputKbps = bytes * 8 / span / 1000
		}
	}
	return rs
}

// qoe translates the measured propagation RTTs into the paper's
// application outcomes: gaming frame times with inputs on the low-latency
// path (§7.1), page-load times with every round trip scaled by the RTT
// ratio (§7.2), and the per-GB value of the speedup (§8).
func (p Pipeline) qoe(c *Compiled, rttH, rttF [NumApps]float64) QoE {
	var q QoE
	gcfg := gaming.Config{Seed: p.Seed}
	q.GamingFrameMsFiber = gaming.SimulateConventional(rttF[Gaming], gcfg).MeanFrameMs
	q.GamingFrameMsCISP = gaming.SimulateAugmented(rttF[Gaming], rttH[Gaming], gcfg).MeanFrameMs

	scale := 1.0
	if rttF[Web] > 0 && rttH[Web] > 0 && rttH[Web] < rttF[Web] {
		scale = rttH[Web] / rttF[Web]
	}
	pages := webpage.Corpus(webpage.CorpusConfig{Seed: p.Seed, Pages: 20})
	var pltF, pltC float64
	for _, pg := range pages {
		pltF += webpage.Replay(pg, webpage.ReplayConfig{}).PLT
		pltC += webpage.Replay(pg, webpage.ReplayConfig{RTTScaleC2S: scale, RTTScaleS2C: scale}).PLT
	}
	q.WebPLTMsFiber = pltF / float64(len(pages)) * 1000
	q.WebPLTMsCISP = pltC / float64(len(pages)) * 1000

	if webGbps := units.BitsPerSecond(c.PerApp[Web].Total()).Gbps(); webGbps > 0 {
		q.SearchValuePerGB = econ.WebSearchValue(q.WebPLTMsFiber-q.WebPLTMsCISP, webGbps).Low
	}
	q.GamingValuePerGB = econ.PaperGaming().Low
	q.BeatsCost = econ.Exceeds(0.81,
		econ.ValuePerGB{Low: q.SearchValuePerGB, High: q.SearchValuePerGB},
		econ.ValuePerGB{Low: q.GamingValuePerGB, High: q.GamingValuePerGB})
	return q
}

// sinkBills prices each placed replica's backhaul: its egress demand
// carried from the nearest origin data center on the cheapest physical
// medium. Without origin DCs in the substrate there is nothing to
// backhaul from and the bill is empty.
func sinkBills(c *Compiled) []SinkBill {
	b := c.Backbone
	origins := cities.DataCenterIdx(b.Sites)
	if len(origins) == 0 {
		return nil
	}
	const newTowerCost = 150_000
	var bills []SinkBill
	for _, s := range c.Sinks {
		var egress float64
		for a := App(0); a < NumApps; a++ {
			for i := 0; i < c.PerApp[a].N(); i++ {
				egress += c.PerApp[a][i][s]
			}
		}
		egressGbps := units.BitsPerSecond(egress).Gbps()
		if egressGbps <= 0 {
			continue
		}
		best := units.Meters(-1)
		for _, o := range origins {
			if d := b.Sites[s].Loc.DistanceTo(b.Sites[o].Loc); best < 0 || d < best {
				best = d
			}
		}
		plan := media.Cheapest(float64(best), egressGbps, newTowerCost)[0]
		bills = append(bills, SinkBill{
			Site:       s,
			EgressGbps: egressGbps,
			BackhaulKm: best.Km(),
			Medium:     plan.Medium.Name,
			Capex:      plan.Capex,
		})
	}
	return bills
}
