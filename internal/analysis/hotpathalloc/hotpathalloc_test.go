package hotpathalloc_test

import (
	"testing"

	"cisp/internal/analysis/analysistest"
	"cisp/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hotpathalloctest")
}
