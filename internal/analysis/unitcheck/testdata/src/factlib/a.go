// Package factlib exports float64-shaped functions whose dimension
// signatures only inference can recover; package factuser consumes them
// through cross-package fact propagation.
package factlib

import "cisp/internal/units"

// SpanM returns the combined length of two segments, in meters.
func SpanM(a, b units.Meters) float64 { return float64(a + b) }

// Elapsed returns the span in seconds.
func Elapsed(s units.Seconds) float64 { return float64(s) }

// Stretch scales a meters-valued float64; the parameter's dimension is
// stated by the direct conversion in the body.
func Stretch(v float64) float64 { return float64(units.Meters(v) * 2) }
