package paraclosure_test

import (
	"testing"

	"cisp/internal/analysis/analysistest"
	"cisp/internal/analysis/paraclosure"
)

func TestParaclosure(t *testing.T) {
	analysistest.Run(t, "testdata", paraclosure.Analyzer, "paraclosuretest")
}
