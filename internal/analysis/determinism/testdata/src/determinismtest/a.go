// Package determinismtest is golden testdata for the determinism
// analyzer: positive cases (global generator, wall clock, wall-clock
// seeds), negative cases (explicitly seeded *rand.Rand) and the
// //lint:allow escape hatch.
package determinismtest

import (
	"math/rand"
	"time"
)

func globalGenerator() {
	_ = rand.Intn(10)                  // want `top-level rand\.Intn draws from the process-global generator`
	_ = rand.Float64()                 // want `top-level rand\.Float64 draws from the process-global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `top-level rand\.Shuffle draws from the process-global generator`
}

func wallClock() time.Time {
	t0 := time.Now()   // want `time\.Now reads wall-clock state`
	_ = time.Since(t0) // want `time\.Since measures wall-clock elapsed time`
	return t0
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed derived from wall clock`
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // explicit Seed threading: no finding
	z := rand.NewZipf(rng, 1.5, 1, 100)   // constructor on an explicit rng: no finding
	_ = z
	return rng.Float64() // method on *rand.Rand: no finding
}

func allowedTiming() time.Time {
	return time.Now() //lint:allow determinism -- testdata: operator-facing timing only, never feeds results
}
