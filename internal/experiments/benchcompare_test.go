package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFixture(packetFPS, packetNsEv, fluidFPS, fluidNsEv float64) *BenchRecord {
	return &BenchRecord{
		Schema: benchSchema,
		Scale:  "small",
		Seed:   1,
		Engines: []Fig6ScaleResult{
			{Mode: "packet", Flows: 1500, FlowsPerSec: packetFPS, NsPerEvent: packetNsEv},
			{Mode: "fluid", Flows: 20000, FlowsPerSec: fluidFPS, NsPerEvent: fluidNsEv},
		},
	}
}

// TestCompareBenchRecordsGate is the perf-regression gate's acceptance
// check: a synthetic >10% throughput regression must fail the compare,
// noise inside the tolerance and improvements must pass.
func TestCompareBenchRecordsGate(t *testing.T) {
	base := benchFixture(1000, 500, 100_000, 50)

	// 15% throughput drop on the packet engine: caught.
	regs, err := CompareBenchRecords(base, benchFixture(850, 500, 100_000, 50), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Mode != "packet" || regs[0].Metric != "flows/sec" {
		t.Fatalf("regressions = %v, want one packet flows/sec entry", regs)
	}
	if regs[0].Change < 0.149 || regs[0].Change > 0.151 {
		t.Fatalf("change = %v, want ~0.15", regs[0].Change)
	}
	if !strings.Contains(regs[0].String(), "packet flows/sec regressed") {
		t.Fatalf("unreadable regression: %q", regs[0].String())
	}

	// 20% per-event cost rise on the fluid engine: caught.
	regs, err = CompareBenchRecords(base, benchFixture(1000, 500, 100_000, 60), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Mode != "fluid" || regs[0].Metric != "ns/event" {
		t.Fatalf("regressions = %v, want one fluid ns/event entry", regs)
	}

	// 5% wobble both ways: inside the tolerance, clean.
	regs, err = CompareBenchRecords(base, benchFixture(950, 525, 105_000, 48), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("noise flagged as regression: %v", regs)
	}

	// Strict improvement everywhere: clean.
	regs, err = CompareBenchRecords(base, benchFixture(2000, 250, 200_000, 25), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}

	// Both metrics of both engines off a cliff: all four reported.
	regs, err = CompareBenchRecords(base, benchFixture(100, 5000, 10_000, 500), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 4 {
		t.Fatalf("%d regressions, want 4: %v", len(regs), regs)
	}
}

// TestCompareBenchRecordsTE: the schema-2 TE ratchets — reopt latency
// percentiles ride the tolerance like the engine metrics, the
// deterministic LP-solve count must not rise at all, and a vanished TE
// block is an error.
func TestCompareBenchRecordsTE(t *testing.T) {
	withTE := func(lp int64, p50, p99 float64) *BenchRecord {
		r := benchFixture(1000, 500, 100_000, 50)
		r.TE = &BenchTE{Reopts: 8, LPSolves: lp, ReoptP50Ms: p50, ReoptP99Ms: p99}
		return r
	}
	base := withTE(7, 2.0, 8.0)

	// Identical TE block: clean.
	regs, err := CompareBenchRecords(base, withTE(7, 2.0, 8.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("identical TE block flagged: %v", regs)
	}

	// One extra LP solve: caught even though it is under the tolerance —
	// the solve count is seed-deterministic, so any rise is a real change.
	regs, err = CompareBenchRecords(base, withTE(8, 2.0, 8.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Mode != "te" || regs[0].Metric != "lp solves" {
		t.Fatalf("regressions = %v, want one te lp-solves entry", regs)
	}

	// Large latency rise on both percentiles: both caught.
	regs, err = CompareBenchRecords(base, withTE(7, 4.0, 16.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Metric != "reopt p50 ms" || regs[1].Metric != "reopt p99 ms" {
		t.Fatalf("regressions = %v, want p50 and p99 entries", regs)
	}

	// Latency wobble inside the tolerance, a relative rise under the
	// absolute 1ms floor (sub-ms interpolation noise), and a strict
	// improvement: all clean.
	subMs := withTE(7, 0.1, 0.9)
	subMsDoubled, err2 := CompareBenchRecords(subMs, withTE(7, 0.3, 1.2), 0.10)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(subMsDoubled) != 0 {
		t.Fatalf("sub-ms wobble flagged: %v", subMsDoubled)
	}
	for _, rec := range []*BenchRecord{withTE(7, 2.1, 8.3), withTE(6, 1.0, 4.0)} {
		regs, err = CompareBenchRecords(base, rec, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("acceptable TE block flagged: %v", regs)
		}
	}

	// TE block measured in the baseline but missing from the new record:
	// error, never a silent pass.
	if _, err := CompareBenchRecords(base, benchFixture(1000, 500, 100_000, 50), 0.10); err == nil {
		t.Fatal("missing TE block did not error")
	}
	// Baseline without a TE block ignores the new record's: forward
	// compatible with pre-drill baselines.
	regs, err = CompareBenchRecords(benchFixture(1000, 500, 100_000, 50), base, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("TE-less baseline: regs=%v err=%v", regs, err)
	}
}

// TestCompareBenchRecordsMissingEngine: an engine that vanished from the
// new record must be an error, never a silent pass.
func TestCompareBenchRecordsMissingEngine(t *testing.T) {
	base := benchFixture(1000, 500, 100_000, 50)
	partial := &BenchRecord{Schema: benchSchema, Engines: base.Engines[:1]}
	if _, err := CompareBenchRecords(base, partial, 0.10); err == nil {
		t.Fatal("missing fluid engine did not error")
	}
	if _, err := CompareBenchRecords(&BenchRecord{Schema: benchSchema}, base, 0.10); err == nil {
		t.Fatal("empty baseline did not error")
	}
	if _, err := CompareBenchRecords(base, base, -1); err == nil {
		t.Fatal("negative tolerance did not error")
	}
}

// TestLoadBenchRecordRoundTrip: the loader reads what BenchNetsim-style
// marshalling writes and rejects other schemas.
func TestLoadBenchRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	base := benchFixture(1000, 500, 100_000, 50)
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Engines) != 2 || got.Engines[0].FlowsPerSec != 1000 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"Schema":"something-else/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchRecord(bad); err == nil {
		t.Fatal("foreign schema loaded without error")
	}
	if _, err := LoadBenchRecord(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}
