package workload

import (
	"math"
	"reflect"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/parallel"
	"cisp/internal/units"
)

// testBackbone is the shared small substrate: four population centers and
// one data center, a microwave backbone with route diversity, and a fiber
// graph over the same sites at ~1.5× the propagation delay (the paper's
// fiber stretch). Capacities are modest so replays run congested — the
// regime where the packet engine's TCP tracks the fluid engine's max-min
// shares.
func testBackbone() *Backbone {
	sites := []cities.City{
		{Name: "A", Loc: geo.Point{Lat: 40, Lon: -75}, Population: 8_000_000},
		{Name: "B", Loc: geo.Point{Lat: 41, Lon: -85}, Population: 4_000_000},
		{Name: "C", Loc: geo.Point{Lat: 39, Lon: -95}, Population: 2_000_000},
		{Name: "D", Loc: geo.Point{Lat: 40, Lon: -105}, Population: 1_000_000},
		{Name: "DC", Loc: geo.Point{Lat: 38, Lon: -90}, Population: 0},
	}
	mwPairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {2, 4}}
	mw := links(30e6, 1.0, mwPairs, sites)
	// Fiber conduits parallel the microwave links through midpoint transit
	// nodes — netsim paths are node sequences, so parallel capacity needs
	// distinct nodes, the same shape DesignedTETopology produces — plus
	// one conduit (1-3) with no microwave twin.
	nodes := len(sites)
	var fiber []netsim.TopoLink
	for _, p := range mwPairs {
		d := float64(sites[p[0]].Loc.DistanceTo(sites[p[1]].Loc)) * 1.5 / geo.C
		mid := nodes
		nodes++
		fiber = append(fiber,
			netsim.TopoLink{A: p[0], B: mid, RateBps: units.Mbps(60), PropDelay: units.Seconds(d / 2)},
			netsim.TopoLink{A: mid, B: p[1], RateBps: units.Mbps(60), PropDelay: units.Seconds(d / 2)})
	}
	fiber = append(fiber, links(units.Mbps(60), 1.5, [][2]int{{1, 3}}, sites)...)
	return &Backbone{Sites: sites, Nodes: nodes, Mw: mw, Fiber: fiber}
}

// links builds duplex links between the site pairs at the given rate,
// with propagation delay = geodesic distance × stretch / c.
func links(rateBps units.BitsPerSecond, stretch float64, pairs [][2]int, sites []cities.City) []netsim.TopoLink {
	var out []netsim.TopoLink
	for _, p := range pairs {
		d := float64(sites[p[0]].Loc.DistanceTo(sites[p[1]].Loc))
		out = append(out, netsim.TopoLink{A: p[0], B: p[1], RateBps: rateBps, PropDelay: units.Seconds(d * stretch / geo.C)})
	}
	return out
}

// goldenMix is the cross-engine test mix: equal shares and rates with
// multi-megabyte payloads in every class, so flows spend their lives in
// TCP steady state (the same reason the netsim agreement scenario uses
// 4 MB payloads) and per-class mean rates are comparable across engines.
func goldenMix() AppMix {
	var m AppMix
	m[Gaming] = AppProfile{Share: 0.34, RateBps: 1e6, FlowBytes: 4 << 20}
	m[Media] = AppProfile{Share: 0.33, RateBps: 1e6, FlowBytes: 8 << 20}
	m[Web] = AppProfile{Share: 0.33, RateBps: 1e6, FlowBytes: 4 << 20}
	return m
}

// TestPipelineGoldenCrossEngine is the golden end-to-end check: the same
// compiled workload replayed at identical flow counts must produce the
// identical flow population in both engines (byte-identical assignment)
// and per-application mean rates within the tested 10% tolerance.
func TestPipelineGoldenCrossEngine(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Diurnal, Mix: goldenMix()}, b)
	if err != nil {
		t.Fatal(err)
	}
	p := Pipeline{Backbone: b, TotalFlows: 60, PacketFlows: 60, Window: 5, Horizon: 600}
	rep, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("%d runs, want 4", len(rep.Runs))
	}
	for _, sub := range []string{SubstrateCISP, SubstrateFiber} {
		pkt, fl := rep.Run(sub, "packet"), rep.Run(sub, "fluid")
		if pkt == nil || fl == nil {
			t.Fatalf("%s: missing runs", sub)
		}
		if pkt.Flows != fl.Flows || pkt.Flows != 60 {
			t.Fatalf("%s: flow populations differ: packet %d, fluid %d", sub, pkt.Flows, fl.Flows)
		}
		if pkt.Completed != pkt.Flows || fl.Completed != fl.Flows {
			t.Fatalf("%s: incomplete replay: packet %d/%d, fluid %d/%d",
				sub, pkt.Completed, pkt.Flows, fl.Completed, fl.Flows)
		}
		for a := App(0); a < NumApps; a++ {
			pa, fa := pkt.Apps[a], fl.Apps[a]
			if pa.Flows != fa.Flows {
				t.Fatalf("%s/%s: per-app flow assignment differs: %d vs %d", sub, a, pa.Flows, fa.Flows)
			}
			if pa.Flows == 0 {
				continue
			}
			if fa.MeanRateKbps <= 0 || fa.GoodputKbps <= 0 {
				t.Fatalf("%s/%s: fluid rates not positive: %+v", sub, a, fa)
			}
			if d := math.Abs(pa.GoodputKbps-fa.GoodputKbps) / fa.GoodputKbps; d > 0.10 {
				t.Errorf("%s/%s: packet goodput %.0f vs fluid %.0f kbps — %.0f%% apart (tolerance 10%%)",
					sub, a, pa.GoodputKbps, fa.GoodputKbps, d*100)
			}
		}
	}
	// The hybrid's latency advantage must show up as lower per-app RTT.
	for a := App(0); a < NumApps; a++ {
		h := rep.Run(SubstrateCISP, "fluid").Apps[a].RTTMs
		f := rep.Run(SubstrateFiber, "fluid").Apps[a].RTTMs
		if h <= 0 || f <= 0 || h >= f {
			t.Fatalf("%s: hybrid RTT %.2f ms not below fiber %.2f ms", a, h, f)
		}
	}
	// QoE translations follow the RTT gap.
	if rep.QoE.GamingFrameMsCISP >= rep.QoE.GamingFrameMsFiber {
		t.Fatal("gaming frame time did not improve on the hybrid")
	}
	if rep.QoE.WebPLTMsCISP >= rep.QoE.WebPLTMsFiber {
		t.Fatal("page-load time did not improve on the hybrid")
	}
}

// TestPipelineDeterministicAcrossWorkers pins the bit-identical contract:
// the full scenario report — every FCT percentile, rate, MLU, and nine —
// is identical at one worker and at eight.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Disaster, Mix: goldenMix(), Seed: 7}, b)
	if err != nil {
		t.Fatal(err)
	}
	p := Pipeline{Backbone: b, TotalFlows: 40, PacketFlows: 40, Window: 5, Horizon: 120, Seed: 7}

	prev := parallel.SetWorkers(1)
	seq, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(8)
	par, err := p.Run(c)
	parallel.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("report differs across worker counts:\n1 worker: %+v\n8 workers: %+v", seq, par)
	}
}

func TestPipelineDisasterResilience(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Disaster, Mix: goldenMix()}, b)
	if err != nil {
		t.Fatal(err)
	}
	p := Pipeline{Backbone: b, TotalFlows: 40, PacketFlows: 40, Window: 5, Horizon: 120}
	rep, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasFailures {
		t.Fatal("disaster report has no failure section")
	}
	for _, st := range []struct {
		name string
		av   float64
	}{{"cisp", rep.AvailCISP.Availability}, {"fiber", rep.AvailFiber.Availability}} {
		if st.av <= 0 || st.av > 1 {
			t.Fatalf("%s availability %v outside (0, 1]", st.name, st.av)
		}
	}
	if rep.ReroutesCISP == 0 {
		t.Fatal("hybrid fast-reroute plan issued no reroutes under storm + cut")
	}
	// The storm takes out the microwave layer around the epicenter for
	// half the drill; with plain FRR a commodity whose primary and backup
	// are both microwave stays dark (measured ≈ 0.95 here). The warm-
	// reoptimizing control loop rescues those fractions onto fiber, so
	// only detection and reopt windows are lost.
	if rep.AvailCISP.Availability < 0.999 {
		t.Fatalf("hybrid availability %v under reopt — storm fractions not rescued",
			rep.AvailCISP.Availability)
	}
	if rep.AvailCISP.Mode.String() != "reopt" || rep.AvailFiber.Mode.String() != "reopt" {
		t.Fatalf("availability walked under %v/%v, want reopt", rep.AvailCISP.Mode, rep.AvailFiber.Mode)
	}
}

func TestPipelineCDNPlacement(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: CDNPlacement, Mix: goldenMix(), SinkCount: 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sinks) != 2 {
		t.Fatalf("placed %d sinks, want 2", len(c.Sinks))
	}
	p := Pipeline{Backbone: b, TotalFlows: 40, PacketFlows: 40, Window: 5, Horizon: 120}
	rep, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SinkBills) == 0 || rep.SinkCapex <= 0 {
		t.Fatalf("no replica bill: %+v", rep.SinkBills)
	}
	for _, sb := range rep.SinkBills {
		if sb.Medium == "" || sb.Capex <= 0 || sb.EgressGbps <= 0 {
			t.Fatalf("degenerate sink bill %+v", sb)
		}
	}
}
