package experiments

import (
	"testing"

	"cisp/internal/netsim"
)

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: every extension study end to end")
	}
	res := Extensions(testOpts(30))
	if res.MMWCrossoverGbps <= 1 {
		t.Errorf("MMW crossover at %.1f Gbps — microwave should win the low-bandwidth regime", res.MMWCrossoverGbps)
	}
	if res.AcqFeasibleRate > 0 && res.AcqAfterConfirm < res.AcqFeasibleRate-0.1 {
		t.Errorf("confirming priority towers reduced buildability: %.2f -> %.2f",
			res.AcqFeasibleRate, res.AcqAfterConfirm)
	}
}

func TestFig6ScaleBothModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: designed-backbone replay in both engines")
	}
	// The same small scenario on both engines: the fluid replay must carry
	// far more flows than the packet clamp allows, and both must complete
	// a healthy share of what they offer.
	fl := Fig6Scale(testOpts(21), netsim.FluidMode, 30_000)
	if fl == nil {
		t.Fatal("fluid run failed")
	}
	if fl.Flows != 30_000 {
		t.Fatalf("fluid offered %d flows, want 30000", fl.Flows)
	}
	if fl.Completed == 0 {
		t.Fatal("fluid mode completed nothing")
	}
	pk := Fig6Scale(testOpts(21), netsim.PacketMode, 30_000)
	if pk == nil {
		t.Fatal("packet run failed")
	}
	if pk.Flows > 1500 {
		t.Fatalf("packet mode ran %d flows; clamp missing", pk.Flows)
	}
	if pk.Completed == 0 {
		t.Fatal("packet mode completed nothing")
	}
}
