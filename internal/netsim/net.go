package netsim

import "fmt"

// PacketKind distinguishes payload data from transport acknowledgements.
type PacketKind int

// Packet kinds.
const (
	Data PacketKind = iota
	Ack
)

// Packet is the unit of transmission. Packets delivered to OnDeliver
// handlers are recycled into the network's pool after the handler returns;
// handlers must not retain them past the call.
type Packet struct {
	Flow     int // flow identifier (routing + delivery demux)
	Seq      int64
	Kind     PacketKind
	Size     int // bytes on the wire
	Src, Dst int // node IDs
	SentAt   float64
	AckNo    int64 // for Ack packets: cumulative next-expected sequence

	// Source-routing state, resolved once at Inject: hops[i] carries the
	// packet from path[i] to path[i+1]; hop indexes the next link to take.
	hops   []*Link
	hop    int
	pooled bool // allocated from the network's pool; recycled on delivery/drop
}

// route is one installed forwarding path of a flow, with the traversed
// links resolved once at SetFlowPath time so the per-packet hot path is a
// slice index — no map lookups.
type route struct {
	dst  int
	hops []*Link
}

// flowState indexes the at-most-two installed paths of a flow (data and
// reverse ACK directions) plus its delivery handler.
type flowState struct {
	routes  [2]route
	nRoutes int
	deliver func(*Packet)
}

// Node is a store-and-forward router / host.
type Node struct {
	ID  int
	net *Network
}

// Link is a unidirectional fixed-rate link with a FIFO queue.
type Link struct {
	From, To  int
	RateBps   float64
	PropDelay float64 // seconds
	QueueCap  int     // packets; 0 = unbounded

	// Drop, when non-nil, is consulted on every enqueue: returning true
	// discards the packet (counted in Drops). Used for loss injection in
	// tests and loss-model experiments.
	Drop func(*Packet) bool

	net          *Network
	queue        []*Packet
	transmitting bool
	txStart      float64 // start time of the in-flight transmission
	txDur        float64 // its duration

	// Failure state. downEpoch increments on every transition, voiding
	// packets that were in flight (transmitting or propagating) when the
	// link died — they are counted as Drops, never delivered.
	down      bool
	downEpoch int64

	// Counters.
	TxPackets   int64
	TxBytes     int64
	Drops       int64
	busyTime    float64 // completed transmission time only
	maxQueueLen int
}

// QueueLen returns the instantaneous queue length in packets (including the
// packet in transmission).
func (l *Link) QueueLen() int {
	n := len(l.queue)
	if l.transmitting {
		n++
	}
	return n
}

// MaxQueueLen returns the high-water queue length observed.
func (l *Link) MaxQueueLen() int { return l.maxQueueLen }

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// SetDown transitions the link's failure state at the current simulation
// time. Taking a link down drops every queued packet and loses any packet
// already on the wire (mid-transmission or propagating) — transports see
// the outage as loss and recover via retransmission once a working path is
// installed. Bringing it back up restores normal forwarding; packets lost
// during the outage stay lost.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	l.downEpoch++
	if down {
		for i, p := range l.queue {
			l.Drops++
			l.net.release(p)
			l.queue[i] = nil
		}
		l.queue = l.queue[:0]
	}
}

// Utilization returns the fraction of [0, now] the link spent transmitting.
// Completed transmissions are credited in full; an in-flight one is
// pro-rated to now, so a run truncated mid-packet is not over-reported.
func (l *Link) Utilization(now float64) float64 {
	if now <= 0 {
		return 0
	}
	busy := l.busyTime
	if l.transmitting && now > l.txStart {
		part := now - l.txStart
		if part > l.txDur {
			part = l.txDur
		}
		busy += part
	}
	u := busy / now
	if u > 1 {
		u = 1
	}
	return u
}

// Network is a set of nodes and directed links plus per-flow forwarding
// state and delivery handlers, indexed by flow ID (flows must be small
// non-negative integers; IDs are dense in every caller).
type Network struct {
	Sim   *Simulator
	nodes []*Node
	links map[[2]int]*Link // construction-time lookup only
	flows []flowState
	pool  []*Packet
}

// NewNetwork creates a network with n nodes attached to sim.
func NewNetwork(sim *Simulator, n int) *Network {
	nw := &Network{
		Sim:   sim,
		links: make(map[[2]int]*Link),
	}
	for i := 0; i < n; i++ {
		nw.nodes = append(nw.nodes, &Node{ID: i, net: nw})
	}
	return nw
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) }

// AddLink adds a unidirectional link and returns it. Panics if it exists.
func (nw *Network) AddLink(from, to int, rateBps, propDelay float64, queueCap int) *Link {
	key := [2]int{from, to}
	if _, dup := nw.links[key]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %d->%d", from, to))
	}
	l := &Link{From: from, To: to, RateBps: rateBps, PropDelay: propDelay, QueueCap: queueCap, net: nw}
	nw.links[key] = l
	return l
}

// AddDuplex adds links in both directions with identical parameters.
func (nw *Network) AddDuplex(a, b int, rateBps, propDelay float64, queueCap int) (ab, ba *Link) {
	return nw.AddLink(a, b, rateBps, propDelay, queueCap), nw.AddLink(b, a, rateBps, propDelay, queueCap)
}

// Link returns the directed link from→to, or nil.
func (nw *Network) Link(from, to int) *Link { return nw.links[[2]int{from, to}] }

// Links returns all directed links (iteration order unspecified).
func (nw *Network) Links() map[[2]int]*Link { return nw.links }

// flow returns (growing the table if needed) the state for a flow ID.
func (nw *Network) flow(id int) *flowState {
	if id < 0 {
		panic(fmt.Sprintf("netsim: negative flow ID %d", id))
	}
	if id >= len(nw.flows) {
		if id < cap(nw.flows) {
			nw.flows = nw.flows[:id+1]
		} else {
			// Amortized doubling: sequential flow installs stay O(n) total.
			grown := make([]flowState, id+1, max(id+1, 2*cap(nw.flows)))
			copy(grown, nw.flows)
			nw.flows = grown
		}
	}
	return &nw.flows[id]
}

// SetFlowPath installs forwarding state for flow along the node path
// (path[0] is the packet source, path[len-1] the destination), resolving
// every traversed link once. A flow holds at most two paths — one per
// destination (data and reverse-ACK directions); re-installing a path to
// the same destination replaces it. Panics if a hop has no link.
func (nw *Network) SetFlowPath(flow int, path []int) {
	dst := path[len(path)-1]
	hops := make([]*Link, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		l := nw.Link(path[i], path[i+1])
		if l == nil {
			panic(fmt.Sprintf("netsim: no link %d->%d on path of flow %d", path[i], path[i+1], flow))
		}
		hops[i] = l
	}
	f := nw.flow(flow)
	for i := 0; i < f.nRoutes; i++ {
		if f.routes[i].dst == dst {
			f.routes[i].hops = hops
			return
		}
	}
	if f.nRoutes == len(f.routes) {
		panic(fmt.Sprintf("netsim: flow %d already has %d installed paths", flow, len(f.routes)))
	}
	f.routes[f.nRoutes] = route{dst: dst, hops: hops}
	f.nRoutes++
}

// OnDeliver registers the callback invoked when a packet of the flow reaches
// its Dst node.
func (nw *Network) OnDeliver(flow int, fn func(*Packet)) { nw.flow(flow).deliver = fn }

// newPacket returns a zeroed packet from the pool (or a fresh one), marked
// for recycling on delivery or drop.
//
//cisp:hotpath
func (nw *Network) newPacket() *Packet {
	if n := len(nw.pool); n > 0 {
		p := nw.pool[n-1]
		nw.pool = nw.pool[:n-1]
		return p
	}
	return &Packet{pooled: true} //lint:allow hotpathalloc -- pool miss only; the packet is recycled thereafter
}

// release recycles a pool-allocated packet. Externally built packets (plain
// &Packet{} handed to Inject) are left alone.
//
//cisp:hotpath
func (nw *Network) release(p *Packet) {
	if !p.pooled {
		return
	}
	*p = Packet{pooled: true}
	nw.pool = append(nw.pool, p) //lint:allow hotpathalloc -- amortized growth of the recycling pool
}

// Inject sends pkt from its Src node, stamping SentAt. Packets whose flow
// has no installed path to pkt.Dst are dropped silently (routing bugs
// surface in tests via missing deliveries).
func (nw *Network) Inject(pkt *Packet) {
	pkt.SentAt = nw.Sim.Now()
	if pkt.Flow < 0 || pkt.Flow >= len(nw.flows) {
		nw.release(pkt)
		return
	}
	f := &nw.flows[pkt.Flow]
	pkt.hops = nil
	for i := 0; i < f.nRoutes; i++ {
		if f.routes[i].dst == pkt.Dst {
			pkt.hops = f.routes[i].hops
			break
		}
	}
	if pkt.hops == nil {
		nw.release(pkt)
		return
	}
	pkt.hop = 0
	nw.step(pkt)
}

// step moves pkt one hop (or delivers it).
//
//cisp:hotpath
func (nw *Network) step(pkt *Packet) {
	if pkt.hop >= len(pkt.hops) {
		if h := nw.flows[pkt.Flow].deliver; h != nil {
			h(pkt)
		}
		nw.release(pkt)
		return
	}
	l := pkt.hops[pkt.hop]
	pkt.hop++
	l.enqueue(pkt)
}

// enqueue places pkt on the link, dropping if the link is down, the queue
// is full or the link's Drop hook claims it.
//
//cisp:hotpath
func (l *Link) enqueue(pkt *Packet) {
	if l.down {
		l.Drops++
		l.net.release(pkt)
		return
	}
	if l.Drop != nil && l.Drop(pkt) {
		l.Drops++
		l.net.release(pkt)
		return
	}
	if l.QueueCap > 0 && len(l.queue) >= l.QueueCap {
		l.Drops++
		l.net.release(pkt)
		return
	}
	l.queue = append(l.queue, pkt) //lint:allow hotpathalloc -- amortized growth of the FIFO backing array
	if q := l.QueueLen(); q > l.maxQueueLen {
		l.maxQueueLen = q
	}
	if !l.transmitting {
		l.startNext()
	}
}

func (l *Link) startNext() {
	if len(l.queue) == 0 {
		l.transmitting = false
		return
	}
	l.transmitting = true
	pkt := l.queue[0]
	l.queue[0] = nil // drop the reference so the pool can recycle promptly
	l.queue = l.queue[1:]
	tx := float64(pkt.Size) * 8 / l.RateBps
	l.txStart = l.net.Sim.Now()
	l.txDur = tx
	l.TxPackets++
	l.TxBytes += int64(pkt.Size)
	sim := l.net.Sim
	epoch := l.downEpoch
	sim.Schedule(tx, func() {
		if l.downEpoch != epoch {
			// The link failed (or flapped) mid-transmission: the packet is
			// lost and the busy time is not credited. startNext still runs so
			// the transmitter frees up for traffic after a restore.
			l.Drops++
			l.net.release(pkt)
			l.startNext()
			return
		}
		// Transmission finished: credit the busy time, propagate, then free
		// the transmitter.
		l.busyTime += tx
		sim.Schedule(l.PropDelay, func() {
			if l.downEpoch != epoch {
				// Lost in propagation when the link died.
				l.Drops++
				l.net.release(pkt)
				return
			}
			l.net.step(pkt)
		})
		l.startNext()
	})
}
