// Package webpage models Web page loads over networks with reduced RTTs —
// the in-repo substitute for the paper's Mahimahi record-and-replay study
// (§7.2, Fig 13). A synthetic page corpus (log-normal object counts and
// sizes, dependency chains, multiple origins) is loaded through a
// dependency- and connection-aware replay engine whose client→server and
// server→client latencies can be scaled independently — enabling the
// paper's three conditions: Baseline (1.0/1.0), cISP (0.33/0.33), and
// cISP-selective (0.33 on the request path only).
package webpage

import (
	"container/heap"
	"math"
	"math/rand"
)

// Object is one fetchable resource of a page.
type Object struct {
	Size   int // response bytes
	Parent int // index of the object that must finish first (-1 for roots)
	Origin int // origin server index (per-origin connection limits apply)
}

// Page is a synthetic Web page.
type Page struct {
	Objects []Object
	Origins int
	BaseRTT float64 // recorded round-trip time to the origins, seconds
}

// CorpusConfig tunes page synthesis.
type CorpusConfig struct {
	Seed  int64
	Pages int // default 80, the paper's sample size
}

// Corpus generates a deterministic page sample mirroring Web statistics:
// median ≈ 60-80 objects per page, log-normal sizes with many sub-MSS
// objects, 2-4 dependency levels, a handful of origins, and recorded RTTs
// between 20 and 150 ms.
func Corpus(cfg CorpusConfig) []Page {
	if cfg.Pages == 0 {
		cfg.Pages = 80
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pages := make([]Page, cfg.Pages)
	for i := range pages {
		nObj := int(math.Exp(rng.NormFloat64()*0.6 + math.Log(65)))
		if nObj < 5 {
			nObj = 5
		}
		if nObj > 300 {
			nObj = 300
		}
		origins := 2 + rng.Intn(6)
		page := Page{
			Origins: origins,
			BaseRTT: 0.020 + rng.Float64()*0.130,
		}
		for o := 0; o < nObj; o++ {
			size := int(math.Exp(rng.NormFloat64()*1.4 + math.Log(9_000)))
			if size < 120 {
				size = 120
			}
			if size > 2_000_000 {
				size = 2_000_000
			}
			parent := -1
			if o > 0 {
				// Chain to a random earlier object with probability that
				// shapes 2-4 dependency levels; root HTML is object 0.
				switch {
				case o == 0:
				case rng.Float64() < 0.55:
					parent = 0 // discovered from the HTML
				default:
					parent = rng.Intn(o)
				}
			}
			page.Objects = append(page.Objects, Object{
				Size:   size,
				Parent: parent,
				Origin: rng.Intn(origins),
			})
		}
		pages[i] = page
	}
	return pages
}

// ReplayConfig controls a load.
type ReplayConfig struct {
	// RTTScaleC2S scales the client→server direction; RTTScaleS2C the
	// reverse. Baseline is 1/1; the paper's cISP condition is 0.33/0.33 and
	// cISP-selective 0.33/1.0.
	RTTScaleC2S float64
	RTTScaleS2C float64

	// CPUPerObject is client compute (parse/eval) per object, seconds,
	// paid before an object's children become fetchable. Default 15 ms.
	CPUPerObject float64

	// RenderTime is the page's serial script/layout work included in the
	// onLoad PLT but independent of the network. Default 500 ms. Together
	// with CPUPerObject this is why PLT improves less than RTT (§7.2).
	RenderTime float64

	// Bandwidth is the effective end-to-end transfer rate in bps; the
	// size/bandwidth term puts a floor under large-object times that RTT
	// reduction cannot remove (why small objects improve most, §7.2).
	// Default 20 Mbps.
	Bandwidth float64

	// ServerThink is per-request server processing, seconds. Default 5 ms.
	ServerThink float64

	// ConnsPerOrigin is the parallel-connection limit. Default 6.
	ConnsPerOrigin int

	// HandshakeRTTs is connection setup cost in round trips (TCP+TLS).
	// Default 3 (DNS + SYN + TLS), paid once per connection.
	HandshakeRTTs float64
}

func (c *ReplayConfig) setDefaults() {
	if c.RTTScaleC2S == 0 {
		c.RTTScaleC2S = 1
	}
	if c.RTTScaleS2C == 0 {
		c.RTTScaleS2C = 1
	}
	if c.CPUPerObject == 0 {
		c.CPUPerObject = 0.015
	}
	if c.RenderTime == 0 {
		c.RenderTime = 0.65
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 20e6
	}
	if c.ServerThink == 0 {
		c.ServerThink = 0.005
	}
	if c.ConnsPerOrigin == 0 {
		c.ConnsPerOrigin = 6
	}
	if c.HandshakeRTTs == 0 {
		c.HandshakeRTTs = 3
	}
}

// Result of a page load.
type Result struct {
	PLT         float64   // onLoad-equivalent: all objects fetched + processed
	ObjectTimes []float64 // per-object load time (request start → bytes done)
	BytesC2S    int64     // request-direction bytes
	BytesS2C    int64     // response-direction bytes
}

const requestBytes = 700 // request + headers on the upstream path

// Replay loads the page and returns timings. The model: each object fetch
// needs one round trip (request upstream at the C2S scale, response
// downstream at the S2C scale, with a size-dependent number of delivery
// round trips for large objects standing in for congestion-window growth),
// over a limited per-origin connection pool; an object's children become
// fetchable after its CPU processing completes.
func Replay(p Page, cfg ReplayConfig) Result {
	cfg.setDefaults()
	oneWayC2S := p.BaseRTT / 2 * cfg.RTTScaleC2S
	oneWayS2C := p.BaseRTT / 2 * cfg.RTTScaleS2C
	rtt := oneWayC2S + oneWayS2C

	// Delivery round trips grow with object size (slow-start-like): 1 RTT
	// per 15 KB window doubling, capped.
	deliveryRTTs := func(size int) float64 {
		windows := math.Ceil(math.Log2(float64(size)/14_600 + 1))
		if windows < 1 {
			windows = 1
		}
		if windows > 6 {
			windows = 6
		}
		return windows
	}

	n := len(p.Objects)
	res := Result{ObjectTimes: make([]float64, n)}

	// Per-origin connection pools: next free time per connection slot.
	pools := make([][]float64, p.Origins)
	for o := range pools {
		pools[o] = make([]float64, cfg.ConnsPerOrigin)
		for k := range pools[o] {
			pools[o][k] = -1 // -1: connection not yet established
		}
	}

	children := make([][]int, n)
	indeg := make([]int, n)
	ready := &readyHeap{}
	for i, obj := range p.Objects {
		if obj.Parent >= 0 {
			children[obj.Parent] = append(children[obj.Parent], i)
			indeg[i] = 1
		} else {
			heap.Push(ready, readyItem{at: 0, obj: i})
		}
	}

	var plt float64
	for ready.Len() > 0 {
		it := heap.Pop(ready).(readyItem)
		obj := p.Objects[it.obj]
		// Claim the earliest-free connection of the origin.
		pool := pools[obj.Origin]
		best := 0
		for k := range pool {
			if connAvail(pool[k]) < connAvail(pool[best]) {
				best = k
			}
		}
		start := math.Max(it.at, connAvail(pool[best]))
		setup := 0.0
		if pool[best] < 0 {
			setup = cfg.HandshakeRTTs * rtt
		}
		// Request upstream once, then the response spends d downstream legs
		// plus (d-1) upstream ACK legs while the window opens; transfer and
		// server time are RTT-independent floors.
		d := deliveryRTTs(obj.Size)
		fetchTime := oneWayC2S + d*oneWayS2C + (d-1)*oneWayC2S +
			float64(obj.Size)*8/cfg.Bandwidth + cfg.ServerThink
		done := start + setup + fetchTime
		pool[best] = done
		res.ObjectTimes[it.obj] = done - it.at
		res.BytesC2S += requestBytes + int64(d-1)*40*int64(1+obj.Size/14600)
		res.BytesS2C += int64(obj.Size)

		processed := done + cfg.CPUPerObject
		if processed > plt {
			plt = processed
		}
		for _, c := range children[it.obj] {
			indeg[c]--
			if indeg[c] == 0 {
				heap.Push(ready, readyItem{at: processed, obj: c})
			}
		}
	}
	res.PLT = plt + cfg.RenderTime
	return res
}

func connAvail(v float64) float64 {
	if v < 0 {
		return 0 // unestablished connection is available immediately
	}
	return v
}

type readyItem struct {
	at  float64
	obj int
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].obj < h[j].obj)
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
