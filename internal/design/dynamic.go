package design

import (
	"math"

	"cisp/internal/graph"
)

// Dynamic answers "what is the hybrid APSP with these built links down?"
// without rebuilding the topology. The weather study (internal/weather)
// asks this once per sampled interval: most intervals lose zero or a
// handful of links, so recomputing the fiber closure and re-inserting
// every surviving link — O(n³ + L·n²) per interval — wastes almost all of
// its work. Dynamic instead removes edges incrementally from the finished
// topology's APSP: it finds the sources whose shortest-path rows could
// have routed through a removed edge and recomputes only those rows by
// Dijkstra over the remaining hybrid graph. A clear interval costs O(L);
// a stormy one costs O((F+A)·n²) for F failed links and A affected
// sources.
//
// A Dynamic is immutable after construction and safe for concurrent use;
// per-call scratch state lives in a DynScratch, one per worker.
type Dynamic struct {
	t *Topology

	// weight is the dense one-hop hybrid graph: the fiber metric closure
	// (every closure entry is itself a shortest fiber path, so it is a
	// valid direct edge) overlaid with the built microwave links.
	weight [][]float64
}

// NewDynamic prepares incremental link removal over a finished topology.
// The topology must not gain links (AddLink) while the Dynamic is in use.
func NewDynamic(t *Topology) *Dynamic {
	n := t.P.N
	w := make([][]float64, n)
	for i := range w {
		w[i] = append([]float64(nil), t.fiberD[i]...)
	}
	for _, l := range t.Built {
		if l.Dist < w[l.I][l.J] {
			w[l.I][l.J], w[l.J][l.I] = l.Dist, l.Dist
		}
	}
	return &Dynamic{t: t, weight: w}
}

// DynScratch holds one worker's reusable buffers for DistWithout calls.
// It is not safe for concurrent use; allocate one per goroutine.
type DynScratch struct {
	weight   [][]float64 // patched copy of Dynamic.weight
	affected []bool
	out      [][]float64 // row pointers of the returned matrix
}

// NewScratch allocates a scratch sized for this Dynamic.
func (dy *Dynamic) NewScratch() *DynScratch {
	n := len(dy.weight)
	sc := &DynScratch{
		affected: make([]bool, n),
		out:      make([][]float64, n),
		weight:   make([][]float64, n),
	}
	for i := range sc.weight {
		sc.weight[i] = append([]float64(nil), dy.weight[i]...)
	}
	return sc
}

// removalEps is the relative tolerance for deciding that a stored APSP
// entry routes through a removed edge. Stored distances were accumulated
// by a different sequence of float additions than the d[s][i]+w+d[j][u]
// probe, so exact equality can miss a genuinely affected pair; treating
// near-equal entries as affected is conservative — it only triggers a
// redundant Dijkstra, never a stale distance.
const removalEps = 1e-9

// containsInt reports whether xs contains v. Removal sets are tiny (1-3
// links), so a linear scan beats any set structure.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// DistWithout returns the all-pairs latency-distance matrix of the hybrid
// graph with the given built-link indices (positions in t.Built) removed.
// Rows untouched by the removals alias the topology's own matrix, so the
// result must be treated as read-only and is only valid until the next
// DistWithout call on the same scratch.
//
//cisp:hotpath
func (dy *Dynamic) DistWithout(removed []int, sc *DynScratch) [][]float64 {
	t := dy.t
	if len(removed) == 0 {
		return t.d
	}
	n := len(dy.weight)

	// Patch the scratch weights: removed pairs fall back to fiber, then
	// surviving links that happen to share a removed pair re-assert
	// themselves.
	for _, li := range removed {
		l := t.Built[li]
		f := t.fiberD[l.I][l.J]
		sc.weight[l.I][l.J], sc.weight[l.J][l.I] = f, f
	}
	for li, l := range t.Built {
		if containsInt(removed, li) {
			continue
		}
		for _, r := range removed {
			rl := t.Built[r]
			if normPair(l.I, l.J) == normPair(rl.I, rl.J) && l.Dist < sc.weight[l.I][l.J] {
				sc.weight[l.I][l.J], sc.weight[l.J][l.I] = l.Dist, l.Dist
				break
			}
		}
	}

	// Mark sources whose rows could route through a removed edge: pair
	// (s,u) is suspect when its stored distance matches the best path
	// forced through the edge, within tolerance.
	for i := range sc.affected {
		sc.affected[i] = false
	}
	d := t.d
	for _, li := range removed {
		l := t.Built[li]
		w := l.Dist
		di, dj := d[l.I], d[l.J]
		for s := 0; s < n; s++ {
			if sc.affected[s] {
				continue
			}
			ds := d[s]
			dsi, dsj := ds[l.I], ds[l.J]
			if math.IsInf(dsi, 1) && math.IsInf(dsj, 1) {
				continue
			}
			for u := 0; u < n; u++ {
				if u == s || math.IsInf(ds[u], 1) {
					continue
				}
				alt := math.Min(dsi+w+dj[u], dsj+w+di[u])
				if alt <= ds[u]*(1+removalEps) {
					sc.affected[s] = true
					break
				}
			}
		}
	}

	// Recompute affected rows from scratch weights; alias the rest.
	for s := 0; s < n; s++ {
		if sc.affected[s] {
			sc.out[s] = graph.DenseSourceShortest(sc.weight, s)
		} else {
			sc.out[s] = d[s]
		}
	}

	// Restore the scratch weights for the next call.
	for _, li := range removed {
		l := t.Built[li]
		w := dy.weight[l.I][l.J]
		sc.weight[l.I][l.J], sc.weight[l.J][l.I] = w, w
	}
	return sc.out
}
