// Package towers provides a synthetic tower-infrastructure registry standing
// in for the FCC Antenna Structure Registration database and commercial
// tower-company datasets the paper culls to 12,080 towers (§4).
//
// Generation follows the paper's observed structure: towers cluster densely
// around population centers ("each city itself has large numbers of suitable
// towers in its vicinity"), with a sparser rural background along the rest
// of the region. The same culling rules as §4 are then applied: non-rental
// towers below 100 m are dropped, and cells of 0.5° containing more than 50
// towers are randomly down-sampled.
//
// A grid spatial index supports the "all pairs within microwave range"
// queries that dominate Step 1 of the design pipeline.
package towers

import (
	"math"
	"math/rand"
	"sort"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/units"
)

// Tower is one mast usable for microwave relay.
type Tower struct {
	ID     int
	Loc    geo.Point
	Height float64 // structure height above ground, meters
	Rental bool    // owned by a rental company (usable regardless of height)
}

// CullMaxPerCell is the paper's density cap: "when tower-density exceeds 50
// towers per 0.5° square grid cell, we randomly sample towers".
const CullMaxPerCell = 50

// CullMinHeight is the paper's FCC-database height filter: "we only use
// towers over 100 m height" (rental-company towers are exempt).
const CullMinHeight = 100.0

// cellSize is the culling / indexing grid pitch in degrees.
const cellSize = 0.5

// GenConfig parameterises synthetic registry generation.
type GenConfig struct {
	Seed int64

	// CityTowerScale controls how many towers appear around each city:
	// roughly CityTowerScale * sqrt(population/100k) towers are placed
	// within CityRadius of the center. Default 12.
	CityTowerScale float64

	// CityRadius is the spread of the urban cluster. Default 40km.
	CityRadius units.Meters

	// RuralPerCell is the expected number of background towers per 0.5°
	// cell across the region bounding box. Default 3.
	RuralPerCell float64
}

func (c *GenConfig) setDefaults() {
	if c.CityTowerScale == 0 {
		c.CityTowerScale = 12
	}
	if c.CityRadius == 0 {
		c.CityRadius = 40e3
	}
	if c.RuralPerCell == 0 {
		c.RuralPerCell = 3
	}
}

// Registry is an immutable set of towers with a spatial index.
type Registry struct {
	towers []Tower
	cells  map[cellKey][]int // cell -> tower indices
}

type cellKey struct{ X, Y int }

func keyFor(p geo.Point) cellKey {
	return cellKey{X: int(math.Floor(p.Lon / cellSize)), Y: int(math.Floor(p.Lat / cellSize))}
}

// NewRegistry builds a registry (and its index) from a tower list, assigning
// sequential IDs.
func NewRegistry(ts []Tower) *Registry {
	r := &Registry{towers: make([]Tower, len(ts)), cells: make(map[cellKey][]int)}
	copy(r.towers, ts)
	for i := range r.towers {
		r.towers[i].ID = i
		r.cells[keyFor(r.towers[i].Loc)] = append(r.cells[keyFor(r.towers[i].Loc)], i)
	}
	return r
}

// Towers returns the registry's towers. The slice is shared; treat as
// read-only.
func (r *Registry) Towers() []Tower { return r.towers }

// Len returns the number of towers.
func (r *Registry) Len() int { return len(r.towers) }

// Tower returns the tower with the given ID.
func (r *Registry) Tower(id int) Tower { return r.towers[id] }

// WithinRange returns the IDs of towers within dist of p, sorted by
// increasing distance.
func (r *Registry) WithinRange(p geo.Point, dist units.Meters) []int {
	// A degree of latitude is ~111 km; pad the cell scan by one cell.
	cellsOut := int(float64(dist)/(111e3*cellSize)) + 1
	center := keyFor(p)
	type cand struct {
		id int
		d  units.Meters
	}
	var out []cand
	for dx := -cellsOut; dx <= cellsOut; dx++ {
		for dy := -cellsOut; dy <= cellsOut; dy++ {
			k := cellKey{X: center.X + dx, Y: center.Y + dy}
			for _, id := range r.cells[k] {
				if d := p.DistanceTo(r.towers[id].Loc); d <= dist {
					out = append(out, cand{id, d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].d < out[j].d })
	ids := make([]int, len(out))
	for i, c := range out {
		ids[i] = c.id
	}
	return ids
}

// Pairs calls fn for every unordered tower pair within dist meters of each
// other. Pairs are visited once with i < j.
func (r *Registry) Pairs(dist units.Meters, fn func(i, j int)) {
	for i := range r.towers {
		for _, j := range r.WithinRange(r.towers[i].Loc, dist) {
			if j > i {
				fn(i, j)
			}
		}
	}
}

// Generate synthesises a registry for the given cities within their bounding
// box, then applies the paper's culling rules. The result is deterministic
// for a given config.
func Generate(cfg GenConfig, cs []cities.City) *Registry {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ts []Tower

	// Urban clusters around every city.
	for _, city := range cs {
		n := int(cfg.CityTowerScale * math.Sqrt(float64(city.Population)/100_000))
		if n < 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			bearing := rng.Float64() * 360
			// Square-root radial density: uniform over the disk.
			dist := units.Meters(float64(cfg.CityRadius) * math.Sqrt(rng.Float64()))
			loc := city.Loc.Destination(bearing, dist)
			ts = append(ts, Tower{
				Loc:    loc,
				Height: 60 + rng.Float64()*240, // 60–300 m
				Rental: rng.Float64() < 0.5,
			})
		}
	}

	// Rural background over the bounding box.
	minLat, maxLat, minLon, maxLon := bbox(cs)
	for lat := minLat; lat < maxLat; lat += cellSize {
		for lon := minLon; lon < maxLon; lon += cellSize {
			n := poisson(rng, cfg.RuralPerCell)
			for i := 0; i < n; i++ {
				loc := geo.Point{
					Lat: lat + rng.Float64()*cellSize,
					Lon: lon + rng.Float64()*cellSize,
				}
				ts = append(ts, Tower{
					Loc:    loc,
					Height: 80 + rng.Float64()*180, // 80–260 m
					Rental: rng.Float64() < 0.35,
				})
			}
		}
	}

	return NewRegistry(Cull(ts, rng))
}

// Cull applies the paper's §4 filters: drop non-rental towers under 100 m,
// then randomly down-sample any 0.5° cell holding more than 50 towers.
func Cull(ts []Tower, rng *rand.Rand) []Tower {
	var kept []Tower
	for _, t := range ts {
		if t.Rental || t.Height >= CullMinHeight {
			kept = append(kept, t)
		}
	}
	byCell := make(map[cellKey][]Tower)
	for _, t := range kept {
		k := keyFor(t.Loc)
		byCell[k] = append(byCell[k], t)
	}
	// Deterministic order over cells.
	keys := make([]cellKey, 0, len(byCell))
	for k := range byCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].X != keys[j].X {
			return keys[i].X < keys[j].X
		}
		return keys[i].Y < keys[j].Y
	})
	var out []Tower
	for _, k := range keys {
		cell := byCell[k]
		if len(cell) > CullMaxPerCell {
			rng.Shuffle(len(cell), func(i, j int) { cell[i], cell[j] = cell[j], cell[i] })
			cell = cell[:CullMaxPerCell]
		}
		out = append(out, cell...)
	}
	return out
}

func bbox(cs []cities.City) (minLat, maxLat, minLon, maxLon float64) {
	minLat, minLon = math.Inf(1), math.Inf(1)
	maxLat, maxLon = math.Inf(-1), math.Inf(-1)
	for _, c := range cs {
		minLat = math.Min(minLat, c.Loc.Lat)
		maxLat = math.Max(maxLat, c.Loc.Lat)
		minLon = math.Min(minLon, c.Loc.Lon)
		maxLon = math.Max(maxLon, c.Loc.Lon)
	}
	return minLat, maxLat, minLon, maxLon
}

// poisson samples a Poisson variate via Knuth's method (adequate for the
// small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
