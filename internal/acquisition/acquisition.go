// Package acquisition implements the paper's §6.5 route-engineering
// refinement: while the design study treats the shortest tower path as the
// link, building a real route contends with towers that "are not available
// to rent" or lack antenna space at the needed height. The paper's practice:
//
//	"we assign each tower in a swathe connecting the sites an acquisition
//	probability, which depends on a number of factors (e.g., tower type,
//	ownership, location). Further, for towers that can be acquired, we use
//	a uniform distribution to model height at which space for antennae is
//	available. With this probabilistic model, we compute thousands of
//	candidate MW paths between site pairs, with refinements as acquisitions
//	and height availabilities are confirmed."
//
// Refine does exactly that: it samples acquisition outcomes for every tower
// in the corridor between two sites, re-evaluates line-of-sight feasibility
// at the sampled antenna heights, and extracts the best feasible path per
// sample — yielding a distribution of buildable route lengths and the
// per-tower probability of appearing in the final route. Confirmations
// (a tower definitely acquired or definitely refused) condition subsequent
// samples, mirroring the paper's progressive refinement.
package acquisition

import (
	"math"
	"math/rand"
	"sort"

	"cisp/internal/geo"
	"cisp/internal/graph"
	"cisp/internal/los"
	"cisp/internal/towers"
	"cisp/internal/units"
)

// Model assigns acquisition probabilities and height availability.
type Model struct {
	// RentalProb and OtherProb are acquisition probabilities for rental-
	// company towers versus everything else. Defaults 0.9 and 0.55 — rental
	// towers are "typically suitable for use" (§4).
	RentalProb float64
	OtherProb  float64

	// MinHeightFrac is the lower bound of the uniform distribution over the
	// usable antenna-height fraction on an acquired tower. Default 0.45
	// (the paper's most restrictive §6.5 level); the upper bound is 1.
	MinHeightFrac float64
}

func (m *Model) setDefaults() {
	if m.RentalProb == 0 {
		m.RentalProb = 0.9
	}
	if m.OtherProb == 0 {
		m.OtherProb = 0.55
	}
	if m.MinHeightFrac == 0 {
		m.MinHeightFrac = 0.45
	}
}

// Status is a confirmed acquisition fact about a tower.
type Status int

// Tower acquisition states.
const (
	Unknown  Status = iota // sampled probabilistically
	Acquired               // confirmed available (height still sampled)
	Refused                // confirmed unavailable
)

// Request describes a refinement run between two sites.
type Request struct {
	A, B geo.Point

	// SwatheWidth bounds the corridor around the A-B geodesic from which
	// towers may be drawn, meters. Default 60 km (§3.3's siting tolerance).
	SwatheWidth units.Meters

	// Samples is the number of Monte-Carlo path computations ("thousands of
	// candidate MW paths" at production scale). Default 200.
	Samples int

	Seed int64

	// Confirmed conditions the sampling: tower ID → status.
	Confirmed map[int]Status
}

func (r *Request) setDefaults() {
	if r.SwatheWidth == 0 {
		r.SwatheWidth = 60e3
	}
	if r.Samples == 0 {
		r.Samples = 200
	}
}

// Result summarises the sampled route distribution.
type Result struct {
	// Feasible counts samples in which a buildable path existed.
	Feasible int
	Samples  int

	// Lengths holds the buildable path length of each feasible sample,
	// meters (sorted ascending).
	Lengths []units.Meters

	// BestLength and WorstLength bound the feasible samples.
	BestLength, WorstLength units.Meters

	// TowerUseRate maps tower ID → fraction of feasible samples whose best
	// path used it. High-rate towers are the ones worth confirming first.
	TowerUseRate map[int]float64
}

// MedianLength returns the median buildable length (NaN if none feasible).
func (r *Result) MedianLength() units.Meters {
	if len(r.Lengths) == 0 {
		return units.Meters(math.NaN())
	}
	return r.Lengths[len(r.Lengths)/2]
}

// FeasibleRate returns the fraction of samples with a buildable path.
func (r *Result) FeasibleRate() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Feasible) / float64(r.Samples)
}

// Refine runs the §6.5 Monte-Carlo route refinement over the registry using
// the evaluator's terrain and physics. The evaluator's own UsableHeightFrac
// is ignored; height availability is sampled per tower per the model.
func Refine(reg *towers.Registry, ev *los.Evaluator, model Model, req Request) *Result {
	model.setDefaults()
	req.setDefaults()
	rng := rand.New(rand.NewSource(req.Seed))

	// Corridor towers: within SwatheWidth of the A-B geodesic (sampled at
	// registry resolution via range queries along the line).
	corridor := corridorTowers(reg, req.A, req.B, req.SwatheWidth)
	res := &Result{Samples: req.Samples, TowerUseRate: make(map[int]float64)}
	if len(corridor) == 0 {
		return res
	}

	maxRange := ev.Params.MaxRange
	// Precompute candidate hops among corridor towers (by distance only;
	// LOS is height-dependent and checked per sample).
	type hop struct {
		i, j int // indices into corridor
		d    units.Meters
	}
	var hops []hop
	for i := 0; i < len(corridor); i++ {
		for j := i + 1; j < len(corridor); j++ {
			ti, tj := reg.Tower(corridor[i]), reg.Tower(corridor[j])
			if d := ti.Loc.DistanceTo(tj.Loc); d <= maxRange {
				hops = append(hops, hop{i: i, j: j, d: d})
			}
		}
	}

	for s := 0; s < req.Samples; s++ {
		// Sample acquisition and heights.
		avail := make([]bool, len(corridor))
		heightFrac := make([]float64, len(corridor))
		for k, id := range corridor {
			t := reg.Tower(id)
			switch req.Confirmed[id] {
			case Acquired:
				avail[k] = true
			case Refused:
				avail[k] = false
			default:
				p := model.OtherProb
				if t.Rental {
					p = model.RentalProb
				}
				avail[k] = rng.Float64() < p
			}
			if avail[k] {
				heightFrac[k] = model.MinHeightFrac + rng.Float64()*(1-model.MinHeightFrac)
			}
		}

		// Build this sample's hop graph: nodes = [A, B, corridor...].
		g := graph.New[units.Meters](len(corridor) + 2)
		const aNode, bNode = 0, 1
		for k, id := range corridor {
			if !avail[k] {
				continue
			}
			t := reg.Tower(id)
			// Site gateways attach within 35 km, as in Step 1.
			if d := req.A.DistanceTo(t.Loc); d <= 35e3 {
				g.AddEdge(aNode, 2+k, d)
			}
			if d := req.B.DistanceTo(t.Loc); d <= 35e3 {
				g.AddEdge(bNode, 2+k, d)
			}
		}
		for _, h := range hops {
			if !avail[h.i] || !avail[h.j] {
				continue
			}
			ti, tj := reg.Tower(corridor[h.i]), reg.Tower(corridor[h.j])
			ai := ev.Terrain.Elevation(ti.Loc) + ti.Height*heightFrac[h.i]
			aj := ev.Terrain.Elevation(tj.Loc) + tj.Height*heightFrac[h.j]
			if ev.PointFeasible(ti.Loc, tj.Loc, ai, aj) {
				g.AddEdge(2+h.i, 2+h.j, h.d)
			}
		}
		path, length := g.ShortestPath(aNode, bNode)
		if path == nil {
			continue
		}
		res.Feasible++
		res.Lengths = append(res.Lengths, length)
		for _, v := range path {
			if v >= 2 {
				res.TowerUseRate[corridor[v-2]]++
			}
		}
	}

	sort.Slice(res.Lengths, func(i, j int) bool { return res.Lengths[i] < res.Lengths[j] })
	if len(res.Lengths) > 0 {
		res.BestLength = res.Lengths[0]
		res.WorstLength = res.Lengths[len(res.Lengths)-1]
	}
	for id := range res.TowerUseRate {
		res.TowerUseRate[id] /= float64(res.Feasible)
	}
	return res
}

// corridorTowers returns registry IDs within width of the A-B geodesic.
func corridorTowers(reg *towers.Registry, a, b geo.Point, width units.Meters) []int {
	total := a.DistanceTo(b)
	step := width // sample the line at corridor-width pitch
	n := int(total/step) + 1
	seen := map[int]bool{}
	var out []int
	for i := 0; i <= n; i++ {
		p := a.Intermediate(b, float64(i)/float64(n))
		for _, id := range reg.WithinRange(p, width) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// PriorityTowers returns the towers most worth confirming next: the
// highest-use-rate towers not yet confirmed, best first.
func PriorityTowers(res *Result, confirmed map[int]Status, k int) []int {
	type tu struct {
		id   int
		rate float64
	}
	var ts []tu
	for id, rate := range res.TowerUseRate {
		if confirmed[id] == Unknown {
			ts = append(ts, tu{id, rate})
		}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].rate != ts[b].rate {
			return ts[a].rate > ts[b].rate
		}
		return ts[a].id < ts[b].id
	})
	if len(ts) > k {
		ts = ts[:k]
	}
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.id
	}
	return out
}
