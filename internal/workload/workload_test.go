package workload

import (
	"math"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
)

func TestActivityCurve(t *testing.T) {
	for h := 0.0; h < 48; h += 0.25 {
		a := Activity(h)
		if a < 0.1 || a > 1.0 {
			t.Fatalf("Activity(%v) = %v outside [0.1, 1]", h, a)
		}
	}
	if Activity(20) != 1.0 {
		t.Fatalf("evening peak = %v, want 1.0", Activity(20))
	}
	if Activity(4) >= Activity(20) {
		t.Fatal("overnight trough not below evening peak")
	}
	// Wrap: hour 25 is hour 1, negative hours wrap backwards.
	if Activity(25) != Activity(1) || Activity(-1) != Activity(23) {
		t.Fatal("curve does not wrap at 24h")
	}
}

func TestActiveUsersTimezoneStagger(t *testing.T) {
	sites := []cities.City{
		{Name: "East", Loc: geo.Point{Lat: 40, Lon: -75}, Population: 1_000_000},
		{Name: "West", Loc: geo.Point{Lat: 40, Lon: -120}, Population: 1_000_000},
		{Name: "DC", Loc: geo.Point{Lat: 39, Lon: -95}, Population: 0},
	}
	// 00:00 UTC: East is at local 19:00 (evening peak), West at 16:00
	// (daytime plateau) — same population, more active users in the East.
	users := ActiveUsers(sites, 0.6, 0)
	if users[0] <= users[1] {
		t.Fatalf("east %v not ahead of west %v at 00:00 UTC", users[0], users[1])
	}
	if users[2] != 0 {
		t.Fatal("data-center site drew users")
	}
	for i, u := range users {
		if u < 0 || u > 600_000 {
			t.Fatalf("site %d: %v users outside [0, pop×pen]", i, u)
		}
	}
}

func TestDefaultMix(t *testing.T) {
	m := DefaultMix()
	if !m.Valid() {
		t.Fatal("DefaultMix is not Valid")
	}
	var shares float64
	for _, p := range m {
		shares += p.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", shares)
	}
	// Gaming pins the paper's §6.6 per-player rate exactly.
	if m[Gaming].RateBps != 10_000 {
		t.Fatalf("gaming rate %v bps, want 10000", m[Gaming].RateBps)
	}
	// Web derives from the corpus: a page per 30 s lands well inside
	// broadband reality (tens of kbps to a few Mbps).
	if m[Web].RateBps < 10e3 || m[Web].RateBps > 5e6 {
		t.Fatalf("web rate %v bps outside sanity band", m[Web].RateBps)
	}
	if m[Media].FlowBytes <= m[Gaming].FlowBytes {
		t.Fatal("media segments not larger than gaming exchanges")
	}
}

func TestPlaceSinksWeightedMedian(t *testing.T) {
	// Five sites on a line; almost all weight at site 3 — the first sink
	// must land there.
	var sites []cities.City
	for i := 0; i < 5; i++ {
		sites = append(sites, cities.City{Loc: geo.Point{Lat: 40, Lon: -100 + 3*float64(i)}, Population: 1})
	}
	w := []float64{1, 1, 1, 100, 1}
	s1 := PlaceSinks(sites, w, 1)
	if len(s1) != 1 || s1[0] != 3 {
		t.Fatalf("PlaceSinks k=1 = %v, want [3]", s1)
	}
	// k=2 adds coverage for the far end; result stays sorted and unique.
	s2 := PlaceSinks(sites, w, 2)
	if len(s2) != 2 || s2[0] == s2[1] {
		t.Fatalf("PlaceSinks k=2 = %v", s2)
	}
	if s2[0] > s2[1] {
		t.Fatalf("sinks not sorted: %v", s2)
	}
	// Clamp k to the site count; empty when k <= 0.
	if got := PlaceSinks(sites, w, 99); len(got) != 5 {
		t.Fatalf("k>n placed %d sinks, want 5", len(got))
	}
	if got := PlaceSinks(sites, w, 0); got != nil {
		t.Fatalf("k=0 placed %v", got)
	}
}

func TestCompileDiurnal(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Diurnal}, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalUsers <= 0 || c.OfferedGbps <= 0 {
		t.Fatalf("users=%v offered=%v", c.TotalUsers, c.OfferedGbps)
	}
	if c.Schedule != nil {
		t.Fatal("diurnal scenario compiled a failure schedule")
	}
	// Default sinks are the substrate's data centers.
	if len(c.Sinks) != 1 || c.Sinks[0] != 4 {
		t.Fatalf("sinks = %v, want the DC site [4]", c.Sinks)
	}
	for a := App(0); a < NumApps; a++ {
		if err := c.PerApp[a].Validate(); err != nil {
			t.Fatalf("%s matrix: %v", a, err)
		}
		if c.PerApp[a].Total() <= 0 {
			t.Fatalf("%s matrix has no demand", a)
		}
	}
}

func TestCompileFlashCrowdRedirectsMedia(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: FlashCrowd, EventSite: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	m := c.PerApp[Media]
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			if m[i][j] > 0 && i != 1 && j != 1 {
				t.Fatalf("media demand %v between %d and %d bypasses the event origin", m[i][j], i, j)
			}
		}
	}
	// The surge makes the flash crowd heavier than the same snapshot's
	// plain media load.
	plain, err := Compile(Spec{Kind: Diurnal}, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.PerApp[Media].Total() <= plain.PerApp[Media].Total() {
		t.Fatal("flash crowd did not surge media demand")
	}
}

func TestCompileDisasterSchedule(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Disaster, EventSite: 0}, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Schedule == nil {
		t.Fatal("disaster compiled no failure schedule")
	}
	if c.Schedule.NumLinks != len(b.Mw)+len(b.Fiber) {
		t.Fatalf("schedule covers %d links, hybrid has %d", c.Schedule.NumLinks, len(b.Mw)+len(b.Fiber))
	}
	if c.StormFadedLinks == 0 {
		t.Fatal("storm over the epicenter faded no microwave link")
	}
	if c.CutLink < len(b.Mw) || c.CutLink >= len(b.Mw)+len(b.Fiber) {
		t.Fatalf("cut link %d not a fiber index", c.CutLink)
	}
	if len(c.Schedule.Outages) == 0 || c.Schedule.Horizon != drillHorizonSec {
		t.Fatalf("schedule %+v not a drill-time timetable", c.Schedule)
	}
	// The surge multiplies users near the epicenter.
	plain, err := Compile(Spec{Kind: Diurnal}, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Users[0] <= plain.Users[0] {
		t.Fatal("disaster did not surge epicenter users")
	}
}

func TestCommoditiesStableIDs(t *testing.T) {
	b := testBackbone()
	c, err := Compile(Spec{Kind: Diurnal}, b)
	if err != nil {
		t.Fatal(err)
	}
	big, appBig := c.Commodities(5000, 30)
	small, appSmall := c.Commodities(500, 30)
	if len(big) == 0 || len(small) == 0 {
		t.Fatal("no commodities")
	}
	// The app map covers all positive pairs and must not depend on the
	// flow total.
	if len(appBig) != len(appSmall) {
		t.Fatalf("appOf sizes differ: %d vs %d", len(appBig), len(appSmall))
	}
	byFlow := map[int][3]int{}
	for _, cm := range big {
		byFlow[cm.Flow] = [3]int{cm.Src, cm.Dst, cm.FlowBytes}
	}
	for _, cm := range small {
		ref, ok := byFlow[cm.Flow]
		if !ok {
			t.Fatalf("flow %d only exists at the small scale", cm.Flow)
		}
		if ref != [3]int{cm.Src, cm.Dst, cm.FlowBytes} {
			t.Fatalf("flow %d changed identity across scales: %v vs %v", cm.Flow, ref, [3]int{cm.Src, cm.Dst, cm.FlowBytes})
		}
		if appBig[cm.Flow] != appSmall[cm.Flow] {
			t.Fatalf("flow %d changed application across scales", cm.Flow)
		}
		if cm.FlowBytes != c.Spec.Mix[appSmall[cm.Flow]].FlowBytes {
			t.Fatalf("flow %d payload %d does not match its app profile", cm.Flow, cm.FlowBytes)
		}
	}
	// Counts sum exactly to the requested totals.
	sum := 0
	for _, cm := range big {
		sum += cm.Count
	}
	if sum != 5000 {
		t.Fatalf("big scale apportioned %d flows, want 5000", sum)
	}
	sum = 0
	for _, cm := range small {
		sum += cm.Count
	}
	if sum != 500 {
		t.Fatalf("small scale apportioned %d flows, want 500", sum)
	}
}
