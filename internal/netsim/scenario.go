package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cisp/internal/parallel"
)

// Mode selects the simulation engine a Scenario runs on.
type Mode int

// Engine modes.
const (
	// PacketMode is the discrete-event per-packet engine: full queuing,
	// loss and TCP dynamics, practical up to ~10³-10⁴ flows.
	PacketMode Mode = iota
	// FluidMode is the flow-level max-min engine: no queuing transients,
	// practical up to 10⁵-10⁶ concurrent flows.
	FluidMode
)

func (m Mode) String() string {
	switch m {
	case PacketMode:
		return "packet"
	case FluidMode:
		return "fluid"
	}
	return "unknown"
}

// ParseMode parses "packet" or "fluid".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "packet":
		return PacketMode, nil
	case "fluid":
		return FluidMode, nil
	}
	return 0, fmt.Errorf("netsim: unknown mode %q (want packet or fluid)", s)
}

// Scenario is a declarative bulk-simulation input shared by both engines:
// a topology, routed commodities (each carrying Count concurrent flows of
// FlowBytes payload), and a horizon. The same Scenario can be run in
// packet mode for microscopic fidelity and in fluid mode for scale; both
// route with ComputeRoutes, so per-flow paths are identical across modes
// and per-flow mean rates are directly comparable.
type Scenario struct {
	Nodes  int
	Links  []TopoLink
	Comms  []Commodity
	Scheme Scheme

	// Splits, when non-nil, installs fractional multipath routing for the
	// listed commodities (keyed by Commodity.Flow), as computed by a
	// traffic-engineering control plane (internal/te): each commodity's
	// Count flows are apportioned across its weighted paths by
	// largest-remainder rounding on the fractions and then shuffled with a
	// Seed-deterministic draw, identically in both engine modes — so the
	// per-path flow populations, and therefore the offered load, are the
	// same in packet and fluid runs. Commodities without an entry fall back
	// to Scheme routing.
	Splits map[int][]SplitPath

	FlowBytes   int     // payload per flow (default 100 KB)
	Horizon     float64 // simulated seconds (default 30)
	StartSpread float64 // flow starts drawn uniformly from [0, StartSpread] (0 = all at t=0)
	Seed        int64   // start-time randomness (packet and fluid draw identically)
	Pacing      bool    // packet mode: TCP pacing
	QueueCap    int     // packet mode: per-link queue override (0 = keep TopoLink values)
	RateTol     float64 // fluid mode: reschedule-suppression tolerance
}

// SplitPath is one weighted path of a commodity's fractional multipath
// split.
type SplitPath struct {
	Path []int   // node path from the commodity's Src to its Dst
	Frac float64 // fraction of the commodity's flows riding this path
}

// LinkLoad is one directed link's time-average utilization over a run.
type LinkLoad struct {
	From, To    int
	Utilization float64
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	Flow        int     // commodity flow ID this flow ran on
	Start       float64 // start time, seconds
	FCT         float64 // flow completion time, seconds (0 if incomplete)
	Completed   bool
	MeanRateBps float64 // payload*8/FCT when completed, served*8/elapsed otherwise
}

// ScenarioResult is the outcome of one Scenario run.
type ScenarioResult struct {
	Mode      Mode
	Flows     []FlowResult
	Completed int
	End       float64 // simulation end time

	// LinkLoads is every directed link's time-average utilization over
	// [0, End], sorted by (From, To); MLU is their maximum. In packet mode
	// utilization is transmission busy time (ACK traffic included); in
	// fluid mode it is served bytes over capacity × elapsed.
	LinkLoads []LinkLoad
	MLU       float64
}

// FCTs returns the completion times of all completed flows, in flow order.
func (r *ScenarioResult) FCTs() []float64 {
	var out []float64
	for _, f := range r.Flows {
		if f.Completed {
			out = append(out, f.FCT)
		}
	}
	return out
}

// MeanRateByCommodity averages per-flow mean rates per commodity flow ID.
func (r *ScenarioResult) MeanRateByCommodity() map[int]float64 {
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, f := range r.Flows {
		sum[f.Flow] += f.MeanRateBps
		cnt[f.Flow]++
	}
	out := make(map[int]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	return out
}

func (sc *Scenario) defaults() (flowBytes int, horizon float64) {
	flowBytes = sc.FlowBytes
	if flowBytes == 0 {
		flowBytes = 100 << 10
	}
	horizon = sc.Horizon
	if horizon == 0 {
		horizon = 30
	}
	return
}

// starts draws the per-flow start times; identical in both modes so the
// engines see the same offered load. Flows are ordered commodity-major.
func (sc *Scenario) starts(total int) []float64 {
	out := make([]float64, total)
	if sc.StartSpread <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	for i := range out {
		out[i] = rng.Float64() * sc.StartSpread
	}
	return out
}

// commodityRouting is one commodity's resolved forwarding choice: its
// candidate paths and, for fractional splits, each clone flow's path index
// (nil assign = every flow on paths[0]). nil paths marks an unroutable
// commodity.
type commodityRouting struct {
	paths  [][]int
	assign []int
}

// routeCommodities resolves per-commodity forwarding for a run: commodities
// with a Splits entry get their weighted paths and a deterministic per-flow
// path assignment drawn from Seed; the rest are routed by Scheme via
// ComputeRoutes. Both engines call this with identical inputs, so per-path
// flow populations are identical across modes.
func (sc *Scenario) routeCommodities(links []TopoLink) []commodityRouting {
	var routed []Commodity
	for _, c := range sc.Comms {
		if len(sc.Splits[c.Flow]) == 0 {
			routed = append(routed, c)
		}
	}
	var single map[int][]int
	if len(routed) > 0 {
		single = ComputeRoutes(sc.Nodes, links, routed, sc.Scheme)
	}
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	out := make([]commodityRouting, len(sc.Comms))
	for i, c := range sc.Comms {
		sp := sc.Splits[c.Flow]
		if len(sp) == 0 {
			if p := single[c.Flow]; p != nil {
				out[i].paths = [][]int{p}
			}
			continue
		}
		var paths [][]int
		var fracs []float64
		for _, s := range sp {
			if s.Frac <= 0 {
				continue
			}
			if len(s.Path) < 2 || s.Path[0] != c.Src || s.Path[len(s.Path)-1] != c.Dst {
				panic(fmt.Sprintf("netsim: split path %v does not connect commodity %d (%d->%d)",
					s.Path, c.Flow, c.Src, c.Dst))
			}
			paths = append(paths, s.Path)
			fracs = append(fracs, s.Frac)
		}
		if len(paths) == 0 {
			continue
		}
		out[i].paths = paths
		if len(paths) > 1 {
			out[i].assign = splitAssignments(max(c.Count, 1), fracs, rng)
		}
	}
	return out
}

// splitAssignments apportions n flows across paths in proportion to fracs
// (largest-remainder rounding, so per-path counts are exact) and shuffles
// the assignment vector so clone order carries no path bias. Deterministic
// in the rng state.
func splitAssignments(n int, fracs []float64, rng *rand.Rand) []int {
	tot := 0.0
	for _, f := range fracs {
		tot += f
	}
	counts := make([]int, len(fracs))
	order := make([]int, len(fracs))
	rem := make([]float64, len(fracs))
	assigned := 0
	for i, f := range fracs {
		quota := float64(n) * f / tot
		counts[i] = int(math.Floor(quota))
		rem[i] = quota - float64(counts[i])
		order[i] = i
		assigned += counts[i]
	}
	sort.Slice(order, func(a, b int) bool {
		if rem[order[a]] != rem[order[b]] {
			return rem[order[a]] > rem[order[b]]
		}
		return order[a] < order[b]
	})
	for k := 0; k < n-assigned; k++ {
		counts[order[k]]++
	}
	out := make([]int, 0, n)
	for pi, c := range counts {
		for k := 0; k < c; k++ {
			out = append(out, pi)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// finishLinkLoads sorts the per-link loads by (From, To) and records the
// maximum as the run's MLU.
func (r *ScenarioResult) finishLinkLoads(loads []LinkLoad) {
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].From != loads[j].From {
			return loads[i].From < loads[j].From
		}
		return loads[i].To < loads[j].To
	})
	r.LinkLoads = loads
	for _, l := range loads {
		if l.Utilization > r.MLU {
			r.MLU = l.Utilization
		}
	}
}

// Run executes the scenario on the selected engine.
func (sc *Scenario) Run(mode Mode) *ScenarioResult {
	if mode == FluidMode {
		return sc.runFluid()
	}
	return sc.runPacket()
}

// RunMany fans independent scenario runs out over the shared worker pool
// (internal/parallel), preserving input order. Each run owns its simulator,
// so results are bit-identical to sequential execution at any pool width.
func RunMany(scs []*Scenario, mode Mode) []*ScenarioResult {
	return parallel.Map(len(scs), 1, func(i int) *ScenarioResult {
		return scs[i].Run(mode)
	})
}

func (sc *Scenario) runPacket() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	links := sc.Links
	if sc.QueueCap > 0 {
		links = append([]TopoLink(nil), sc.Links...)
		for i := range links {
			links[i].QueueCap = sc.QueueCap
		}
	}
	var sim Simulator
	nw := NewNetwork(&sim, sc.Nodes)
	BuildTopology(nw, links)
	routings := sc.routeCommodities(links)

	// Flow IDs: each commodity keeps its own ID for its first flow; clones
	// get fresh IDs past the maximum so delivery demux stays per-flow.
	nextID := 0
	for _, c := range sc.Comms {
		if c.Flow >= nextID {
			nextID = c.Flow + 1
		}
	}
	total := 0
	for ci, c := range sc.Comms {
		if routings[ci].paths != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: PacketMode}
	type live struct {
		conn *TCPConn
		idx  int // index into res.Flows
	}
	var conns []live
	fi := 0
	for ci, c := range sc.Comms {
		r := &routings[ci]
		if r.paths == nil {
			continue
		}
		revs := make([][]int, len(r.paths))
		for pi, path := range r.paths {
			rev := make([]int, len(path))
			for i, v := range path {
				rev[len(path)-1-i] = v
			}
			revs[pi] = rev
		}
		for k := 0; k < max(c.Count, 1); k++ {
			id := c.Flow
			if k > 0 {
				id = nextID
				nextID++
			}
			pi := 0
			if r.assign != nil {
				pi = r.assign[k]
			}
			nw.SetFlowPath(id, r.paths[pi])
			nw.SetFlowPath(id, revs[pi])
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			conn := &TCPConn{
				Net: nw, Flow: id, Src: c.Src, Dst: c.Dst,
				FlowSize: flowBytes, Pacing: sc.Pacing,
			}
			conn.Done = func(fct float64) {
				res.Flows[idx].FCT = fct
				res.Flows[idx].Completed = true
				res.Flows[idx].MeanRateBps = float64(flowBytes) * 8 / fct
				res.Completed++
			}
			conns = append(conns, live{conn: conn, idx: idx})
			sim.Schedule(startAt[fi], conn.Start)
			fi++
		}
	}
	sim.Run(horizon)
	res.End = sim.Now()
	for _, l := range conns {
		fr := &res.Flows[l.idx]
		if fr.Completed {
			continue
		}
		if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = float64(l.conn.Acked()) * 8 / el
		}
	}
	loads := make([]LinkLoad, 0, len(nw.Links()))
	for _, l := range nw.Links() {
		loads = append(loads, LinkLoad{From: l.From, To: l.To, Utilization: l.Utilization(res.End)})
	}
	res.finishLinkLoads(loads)
	return res
}

func (sc *Scenario) runFluid() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	f := NewFluid(sc.Nodes, sc.Links)
	f.RateTol = sc.RateTol
	routings := sc.routeCommodities(sc.Links)

	total := 0
	for ci, c := range sc.Comms {
		if routings[ci].paths != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: FluidMode}
	type live struct {
		fid int // fluid flow ID
		idx int
	}
	var flows []live
	fi := 0
	for ci, c := range sc.Comms {
		r := &routings[ci]
		if r.paths == nil {
			continue
		}
		routes := make([]int, len(r.paths))
		for pi, path := range r.paths {
			routes[pi] = f.AddRoute(path)
		}
		for k := 0; k < max(c.Count, 1); k++ {
			pi := 0
			if r.assign != nil {
				pi = r.assign[k]
			}
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			fid := f.StartAt(routes[pi], float64(flowBytes), startAt[fi])
			flows = append(flows, live{fid: fid, idx: idx})
			fi++
		}
	}
	f.Run(horizon)
	res.End = f.Now()
	for _, l := range flows {
		fr := &res.Flows[l.idx]
		if fct, done := f.FCT(l.fid); done {
			fr.FCT = fct
			fr.Completed = true
			fr.MeanRateBps = float64(flowBytes) * 8 / fct
			res.Completed++
		} else if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = f.ServedBytes(l.fid) * 8 / el
		}
	}
	res.finishLinkLoads(f.LinkUtilizations())
	return res
}
