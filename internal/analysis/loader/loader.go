// Package loader parses and type-checks packages of this module from
// source, with no network, no go/packages and no export-data files: the
// standard library resolves through the compiler-independent "source"
// importer (GOROOT source), and module-internal imports resolve by
// recursively type-checking the imported directory. It exists so the
// cisplint analyzers (internal/analysis) can run both standalone — over
// the whole module, in tests and in CI — and over the synthetic packages
// under an analyzer's testdata tree, which `go list` cannot see.
//
// The loader is deliberately minimal: one module, pure-Go files only,
// build tags ignored. That is exactly the shape of this repository, and
// keeping it so is what lets the determinism lint run hermetically.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzed compilation unit: a package's files (plus, when
// requested, its in-package _test.go files) with full type information.
type Package struct {
	// ImportPath is the unit's import path ("cisp/internal/netsim"); for
	// an external test package it carries the "_test" suffix.
	ImportPath string
	// Dir is the directory the files were read from.
	Dir string
	// Fset is the loader-wide file set (shared across all units).
	Fset *token.FileSet
	// Files are the parsed files of the unit, in file-name order.
	Files []*ast.File
	// Types and Info hold the go/types results for the unit.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches packages of a single module.
type Loader struct {
	// ModuleRoot is the absolute directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// GoVersion is the "go X.Y" directive, in types.Config form ("go1.24").
	GoVersion string

	fset  *token.FileSet
	std   types.ImporterFrom       // GOROOT source importer
	cache map[string]*loadedImport // import-path → base (no-test) package
}

type loadedImport struct {
	pkg *types.Package
	err error
}

// New builds a Loader for the module rooted at (or above) dir.
func New(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, goVers, err := readGoMod(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		GoVersion:  goVers,
		fset:       fset,
		std:        std,
		cache:      make(map[string]*loadedImport),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("loader: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	goVersion = "go1.21" // floor if the directive is missing
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("loader: no module directive in %s", path)
	}
	return modPath, goVersion, nil
}

// Fset returns the loader-wide file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths
// type-check recursively from source, everything else is assumed to be
// standard library and resolves from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModulePackage(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// importModulePackage type-checks a module package without its test files
// (the view importers get), memoized per import path.
func (l *Loader) importModulePackage(path string) (*types.Package, error) {
	if c, ok := l.cache[path]; ok {
		return c.pkg, c.err
	}
	// Mark in-progress to fail fast on import cycles instead of recursing
	// forever.
	l.cache[path] = &loadedImport{err: fmt.Errorf("loader: import cycle through %q", path)}
	pkg, err := l.loadUnit(path, l.dirFor(path), unitBase)
	c := &loadedImport{err: err}
	if err == nil {
		c.pkg = pkg.Types
	}
	l.cache[path] = c
	return c.pkg, c.err
}

func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// unit selection: which files of a directory form the compilation unit.
type unitKind int

const (
	unitBase      unitKind = iota // non-test files only
	unitWithTests                 // non-test + in-package _test.go files
	unitXTest                     // external test package (pkg_test) files only
)

// Load type-checks the module package with the given import path,
// including its in-package test files when withTests is set.
func (l *Loader) Load(importPath string, withTests bool) (*Package, error) {
	kind := unitBase
	if withTests {
		kind = unitWithTests
	}
	return l.loadUnit(importPath, l.dirFor(importPath), kind)
}

// LoadXTest type-checks the external test package (package foo_test) of
// the given module package, or returns (nil, nil) when there is none.
func (l *Loader) LoadXTest(importPath string) (*Package, error) {
	dir := l.dirFor(importPath)
	names, err := unitFileNames(dir, unitXTest)
	if err != nil || len(names) == 0 {
		return nil, err
	}
	return l.loadUnit(importPath+"_test", dir, unitXTest)
}

// LoadDir type-checks the single package in dir (outside the module tree,
// e.g. analyzer testdata) under the given import path. Test files in dir
// are included.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadUnit(importPath, dir, unitWithTests)
}

func unitFileNames(dir string, kind unitKind) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		switch kind {
		case unitBase:
			if isTest {
				continue
			}
		case unitXTest:
			if !isTest {
				continue
			}
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) loadUnit(importPath, dir string, kind unitKind) (*Package, error) {
	names, err := unitFileNames(dir, kind)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		switch kind {
		case unitWithTests:
			// An external-test file (package foo_test) is its own unit.
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
		case unitXTest:
			if !strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("loader: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if kind == unitXTest {
			// All _test.go files were in-package: there is no external
			// test package here.
			return nil, nil
		}
		return nil, fmt.Errorf("loader: no Go files for %s in %s", importPath, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := &types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ModulePackages walks the module tree and returns the import path of
// every Go package in it, sorted. testdata trees, hidden directories and
// directories without Go files are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := unitFileNames(path, unitBase)
		if err != nil {
			return err
		}
		hasTests := false
		if len(names) == 0 {
			// Test-only directories still form a unit (e.g. a directory
			// holding only _test.go files).
			all, err := unitFileNames(path, unitWithTests)
			if err != nil {
				return err
			}
			hasTests = len(all) > 0
		}
		if len(names) > 0 || hasTests {
			rel, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			ip := l.ModulePath
			if rel != "." {
				ip += "/" + filepath.ToSlash(rel)
			}
			out = append(out, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
