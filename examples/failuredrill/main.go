// failuredrill is a scripted failure drill on the designed US backbone:
// a convective storm parks over the busiest microwave link and fades part
// of the mesh, then a backhoe cuts the busiest fiber conduit while the
// storm is still overhead — the compound storm+cut scenario the
// resilience subsystem (DESIGN.md §8) exists for. The drill composes the
// weather interval schedule with the hardware cut (resilience.Merge),
// walks the hour analytically for no-protection vs fast-reroute vs full
// reoptimization, and then replays a compressed version of the drill in
// the fluid engine to show what fast reroute buys real flows: the FRR
// plan activates precomputed link-disjoint backups with zero LP solves
// on the event path.
package main

import (
	"fmt"
	"os"

	"cisp"
	"cisp/internal/experiments"
	"cisp/internal/netsim"
	"cisp/internal/resilience"
	"cisp/internal/te"
	"cisp/internal/traffic"
	"cisp/internal/weather"
)

func main() {
	opt := experiments.Options{Scale: cisp.ScaleSmall, Seed: 3, MaxCities: 12}
	fmt.Println("== Designing the US backbone (Steps 1-3 + fiber conduits) ==")
	tt, err := experiments.DesignedTETopology(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	links := tt.Links()
	fmt.Printf("%d sites, %d microwave links, %d fiber links (midpoint transit nodes: %d)\n\n",
		len(tt.Sites), len(tt.Mw), len(tt.Fiber), tt.Nodes-len(tt.Sites))

	demand := traffic.Hotspot(tt.DesignTM, 5, 8, opt.Seed)
	comms := experiments.DemandCommodities(demand, 4000, 250<<10, 30)
	ctrl, err := te.NewController(tt.Nodes, links, comms, te.Config{K: 8, UtilFloor: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	primaries := ctrl.Solution().Splits
	prot, err := resilience.NewProtection(tt.Nodes, links, comms, primaries,
		resilience.Config{K: 8, DetectDelay: 0.05, ReoptDelay: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	disjoint := 0
	for _, bk := range prot.Backups {
		if bk.Shared == 0 {
			disjoint++
		}
	}
	fmt.Printf("== Fast-reroute state ==\n%d commodities carry traffic; %d have precomputed backups (%d fully link-disjoint)\n\n",
		len(primaries), len(prot.Backups), disjoint)

	// The storm: graded conditions parked on the busiest microwave link,
	// held for 30 minutes of the drill hour (two 900 s intervals).
	conds := experiments.StormConditions(tt)
	stormFailed := 0
	for _, c := range conds {
		if c.Failed {
			stormFailed++
		}
	}
	intervals := [][]weather.LinkCondition{nil, conds, conds, nil}
	storm := resilience.WeatherSchedule(intervals, 900, len(links))

	// The cut: the busiest fiber conduit under the installed primaries,
	// severed mid-storm and spliced 30 minutes later.
	cut := busiestFiberLink(tt, comms, primaries)
	hw := &resilience.Schedule{Horizon: 3600, NumLinks: len(links), Outages: []resilience.Outage{
		{Link: cut, Start: 1200, End: 3000},
	}}
	drill, err := resilience.Merge(storm, hw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("== The drill ==\nstorm fades %d/%d microwave links for t=[900,2700)s; fiber link %d (%d-%d) cut for t=[1200,3000)s\n\n",
		stormFailed, len(tt.Mw), cut, links[cut].A, links[cut].B)

	fmt.Println("== Analytic hour (availability, latency stretch of surviving traffic) ==")
	fmt.Printf("%-6s %13s %7s %12s %11s %9s\n", "scheme", "availability", "nines", "meanstretch", "maxstretch", "reroutes")
	for _, mode := range []resilience.Mode{resilience.NoProtection, resilience.FRR, resilience.FRRReopt} {
		st := prot.Availability(drill, mode)
		fmt.Printf("%-6s %12.5f%% %7.2f %12.3f %11.3f %9d\n",
			mode, st.Availability*100, st.Nines, st.MeanStretch, st.MaxStretch, st.Reroutes)
	}

	// Compressed replay: the same failures land inside a 60 s fluid run.
	replay := &resilience.Schedule{Horizon: 60, NumLinks: len(links)}
	for _, o := range drill.Outages {
		replay.Outages = append(replay.Outages, resilience.Outage{
			Link: o.Link, Start: o.Start / 60, End: o.End / 60,
		})
	}
	fmt.Println("\n== Fluid-engine replay (drill compressed 60:1 into a 60 s run) ==")
	fmt.Printf("%-6s %8s %10s %12s %8s %9s\n", "scheme", "flows", "completed", "FCT p99(ms)", "MLU", "LPsolves")
	for _, mode := range []resilience.Mode{resilience.NoProtection, resilience.FRR, resilience.FRRReopt} {
		var planCtrl *te.Controller
		if mode == resilience.FRRReopt {
			planCtrl = ctrl // the background loop reoptimizes the live controller
		}
		plan, err := prot.Plan(replay, mode, planCtrl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc := &netsim.Scenario{
			Nodes: tt.Nodes, Links: links, Comms: comms,
			Splits:      primaries,
			Failures:    plan.Failures,
			Updates:     plan.Updates,
			FlowBytes:   250 << 10,
			Horizon:     60,
			StartSpread: 30,
			Seed:        opt.Seed,
		}
		r := sc.Run(netsim.FluidMode)
		p99 := 0.0
		if fcts := r.FCTs(); len(fcts) > 0 {
			p99 = netsim.Percentile(fcts, 99) * 1000
		}
		fmt.Printf("%-6s %8d %10d %12.1f %8.3f %9d\n",
			mode, len(r.Flows), r.Completed, p99, r.MLU, plan.LPSolves)
	}
	fmt.Println("\nFast reroute held the drill together with zero LP solves on the event path;")
	fmt.Println("run `cispbench -fig avail` for the full year-scale study with reoptimization.")
}

// busiestFiberLink returns the fiber link index carrying the most primary
// load (falls back to the first fiber link if the primaries avoid fiber).
func busiestFiberLink(tt *experiments.TETopology, comms []netsim.Commodity, splits map[int][]netsim.SplitPath) int {
	links := tt.Links()
	load := resilience.SplitLoad(links, comms, splits)
	best := len(tt.Mw)
	for li := len(tt.Mw); li < len(links); li++ {
		if load[li] > load[best] {
			best = li
		}
	}
	return best
}
