// Package hotpathalloc implements the cisplint analyzer that keeps the
// per-event hot paths allocation-free. Functions annotated with a
// //cisp:hotpath doc-comment line — the packet/fluid event loops, the
// incremental-APSP recompute (design.Dynamic), FRR activation — are
// checked AST-side for the allocation shapes that matter per call:
// composite literals that escape, make/new, append growth, implicit
// interface boxing (the container/heap tax), variadic argument slices,
// capturing closures and string building. The check is syntactic and
// per-function: it does not chase callees, and a justified //lint:allow
// acknowledges an amortized or intentional allocation.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"cisp/internal/analysis"
)

// Analyzer flags allocation sites inside //cisp:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flags allocations in //cisp:hotpath functions: composite-literal/make/new/append " +
		"growth, interface boxing, variadic slices, capturing closures and string building",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HotpathMarked(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path heap-allocates: &composite literal")
				}
			}
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path heap-allocates: slice literal")
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path heap-allocates: map literal")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.FuncLit:
			if capture := capturedVar(pass, fn, n); capture != nil {
				pass.Reportf(n.Pos(), "hot path heap-allocates: closure captures %s", capture.Name())
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "hot path heap-allocates: string concatenation")
					}
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins first: make/new always allocate, append may grow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path heap-allocates: make")
			case "new":
				pass.Reportf(call.Pos(), "hot path heap-allocates: new")
			case "append":
				pass.Reportf(call.Pos(), "hot path may heap-allocate: append can grow its backing array")
			}
			return
		}
	}

	// Conversions: string <-> byte/rune slice copies.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.Info.TypeOf(call.Args[0])
		if from != nil && (isStringy(to) != isStringy(from)) && (isStringy(to) || isStringy(from)) {
			pass.Reportf(call.Pos(), "hot path heap-allocates: string/slice conversion copies")
		}
		return
	}

	sig, ok := typeAsSignature(pass.Info.TypeOf(call.Fun))
	if !ok {
		return
	}
	// Variadic calls materialize their argument slice.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "hot path heap-allocates: variadic call builds its argument slice")
	}
	// Implicit interface conversions box non-pointer-shaped arguments —
	// the container/heap tax.
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || isPointerShaped(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path heap-allocates: implicit conversion to interface boxes this %s argument", at.String())
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the effective parameter type for argument i,
// expanding the variadic tail (unless the call passes an explicit slice
// with ...).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && !ellipsis && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// isPointerShaped reports whether values of t fit an interface without a
// heap allocation (single-pointer representation).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns a variable the closure captures from the enclosing
// function (forcing a heap-allocated closure object), or nil. Globals do
// not count: a closure over package state compiles to a static func value.
func capturedVar(pass *analysis.Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) *types.Var {
	var capture *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capture != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared within the enclosing function but outside
		// the literal.
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			capture = v
		}
		return true
	})
	return capture
}
