package analysis

// This file is the multi-package driver: where RunUnit analyzes one
// compilation unit in isolation, a Session analyzes a whole package list —
// in parallel, with cross-package fact propagation — and still produces
// byte-identical output at every worker count.
//
// Determinism comes from three properties, mirroring internal/parallel's
// contract (DESIGN.md §5):
//
//   - the unit of fan-out is the package index, and per-package results
//     are written into a slice slot, never appended concurrently;
//   - findings are merged strictly in package-list order after the pool
//     drains, so scheduling order is invisible in the output;
//   - loaders are pooled, not shared: the source-importer Loader memoizes
//     type-checking in ways that are not safe for concurrent use, so each
//     in-flight package borrows a private Loader and returns it. Which
//     loader analyzes which package varies run to run, but type-checking
//     and analyzer output are pure functions of the source, so the cache
//     assignment cannot leak into results.
//
// Facts flow bottom-up: before a package is analyzed, the facts of its
// module-internal imports are computed (recursively, memoized per loader)
// by running each analyzer's Facts hook over the import's base unit. JSON
// is the interchange form — the same bytes a vet-protocol .vetx file
// carries — so the standalone and `go vet` drivers cannot drift.

import (
	"encoding/json"
	"fmt"
	"strings"

	"cisp/internal/analysis/loader"
	"cisp/internal/parallel"
)

// A Session runs an analyzer suite over module packages with fact
// propagation. Sessions are cheap; create one per driver invocation.
type Session struct {
	root      string
	analyzers []*Analyzer
	pool      chan *sessionWorker
}

// A sessionWorker is one borrowed Loader plus its memoized facts.
type sessionWorker struct {
	l     *loader.Loader
	facts *factRunner
}

// NewSession returns a Session analyzing with the given suite, loading
// module source from root (any directory at or below the module's go.mod).
func NewSession(root string, analyzers []*Analyzer) *Session {
	return &Session{
		root:      root,
		analyzers: analyzers,
		pool:      make(chan *sessionWorker, parallel.Workers()),
	}
}

func (s *Session) borrow() (*sessionWorker, error) {
	select {
	case w := <-s.pool:
		return w, nil
	default:
	}
	l, err := loader.New(s.root)
	if err != nil {
		return nil, err
	}
	return &sessionWorker{l: l, facts: newFactRunner(l, s.analyzers)}, nil
}

func (s *Session) release(w *sessionWorker) {
	select {
	case s.pool <- w:
	default:
	}
}

// pkgResult is one package's findings and errors, merged in list order.
type pkgResult struct {
	findings []Finding
	errs     []error
}

// Run analyzes every listed module package — base unit with in-package
// tests, plus the external test unit when present — and returns all
// findings, suppressed ones included and flagged. Findings appear in
// package-list order, position-sorted within each unit; errors likewise.
// Output is byte-for-byte independent of parallel.Workers().
func (s *Session) Run(importPaths []string) ([]Finding, []error) {
	results := make([]pkgResult, len(importPaths))
	parallel.For(len(importPaths), 1, func(lo, hi int) {
		w, err := s.borrow()
		if err != nil {
			for i := lo; i < hi; i++ {
				results[i].errs = []error{err}
			}
			return
		}
		defer s.release(w)
		for i := lo; i < hi; i++ {
			results[i] = s.runPackage(w, importPaths[i])
		}
	})

	var findings []Finding
	var errs []error
	for _, r := range results {
		findings = append(findings, r.findings...)
		errs = append(errs, r.errs...)
	}
	return findings, errs
}

// runPackage analyzes one package's units with w's loader.
func (s *Session) runPackage(w *sessionWorker, ip string) pkgResult {
	var res pkgResult
	units := make([]*loader.Package, 0, 2)
	p, err := w.l.Load(ip, true)
	if err != nil {
		res.errs = append(res.errs, err)
	} else {
		units = append(units, p)
	}
	x, err := w.l.LoadXTest(ip)
	if err != nil {
		res.errs = append(res.errs, err)
	} else if x != nil {
		units = append(units, x)
	}
	for _, u := range units {
		fs, err := RunUnitAll(u.Fset, u.Files, u.Types, u.Info, s.analyzers, w.facts.source())
		if err != nil {
			res.errs = append(res.errs, fmt.Errorf("%s: %w", u.ImportPath, err))
			continue
		}
		res.findings = append(res.findings, fs...)
	}
	return res
}

// RunDir analyzes the single package in dir (an analyzer's testdata tree)
// under the given import path, with fact propagation for its
// module-internal imports. All findings are returned, suppressed included.
func (s *Session) RunDir(dir, importPath string) ([]Finding, error) {
	w, err := s.borrow()
	if err != nil {
		return nil, err
	}
	defer s.release(w)
	p, err := w.l.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return RunUnitAll(p.Fset, p.Files, p.Types, p.Info, s.analyzers, w.facts.source())
}

// A factRunner computes and memoizes per-package analyzer facts for one
// Loader. Not safe for concurrent use — it inherits the Loader's
// single-goroutine discipline.
type factRunner struct {
	l         *loader.Loader
	analyzers []*Analyzer
	cache     map[string]map[string]json.RawMessage // import path → analyzer → facts
}

func newFactRunner(l *loader.Loader, analyzers []*Analyzer) *factRunner {
	return &factRunner{l: l, analyzers: analyzers, cache: make(map[string]map[string]json.RawMessage)}
}

// source adapts the runner to the FactSource shape RunUnitAll consumes.
// Lookup failures degrade to nil — a missing fact makes the consuming
// analyzer conservative, never wrong — and only module-internal paths are
// ever resolvable.
func (fr *factRunner) source() FactSource {
	return func(analyzer, importPath string) json.RawMessage {
		m, err := fr.factsFor(importPath)
		if err != nil {
			return nil
		}
		return m[analyzer]
	}
}

// factsFor computes every analyzer's facts for the package, after first
// ensuring the facts of its own module-internal imports (bottom-up over
// the import DAG; the in-progress marker fails cycles fast, mirroring the
// loader's own guard).
func (fr *factRunner) factsFor(importPath string) (map[string]json.RawMessage, error) {
	if !fr.moduleInternal(importPath) {
		return nil, nil
	}
	if m, ok := fr.cache[importPath]; ok {
		return m, nil
	}
	fr.cache[importPath] = nil // in progress: imports form a DAG, so a re-entry resolves to "no facts"
	p, err := fr.l.Load(importPath, false)
	if err != nil {
		return nil, err
	}
	for _, imp := range p.Types.Imports() {
		if fr.moduleInternal(imp.Path()) {
			if _, err := fr.factsFor(imp.Path()); err != nil {
				return nil, err
			}
		}
	}
	m := make(map[string]json.RawMessage)
	for _, a := range fr.analyzers {
		if a.Facts == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
		name := a.Name
		pass.ImportFacts = func(ip string) json.RawMessage {
			fm, err := fr.factsFor(ip)
			if err != nil {
				return nil
			}
			return fm[name]
		}
		v := a.Facts(pass)
		if v == nil {
			continue
		}
		data, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("%s: marshaling facts for %s: %w", a.Name, importPath, err)
		}
		m[a.Name] = data
	}
	fr.cache[importPath] = m
	return m, nil
}

func (fr *factRunner) moduleInternal(importPath string) bool {
	return importPath == fr.l.ModulePath || strings.HasPrefix(importPath, fr.l.ModulePath+"/")
}
