package towers

import (
	"math/rand"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
)

func testCities() []cities.City {
	all := cities.USCenters()
	if len(all) > 20 {
		all = all[:20]
	}
	return all
}

func TestGenerateDeterministic(t *testing.T) {
	cs := testCities()
	r1 := Generate(GenConfig{Seed: 5}, cs)
	r2 := Generate(GenConfig{Seed: 5}, cs)
	if r1.Len() != r2.Len() {
		t.Fatalf("same seed produced %d vs %d towers", r1.Len(), r2.Len())
	}
	for i := 0; i < r1.Len(); i++ {
		if r1.Tower(i).Loc != r2.Tower(i).Loc {
			t.Fatalf("tower %d differs across identical seeds", i)
		}
	}
}

func TestGenerateNonTrivial(t *testing.T) {
	r := Generate(GenConfig{Seed: 1}, testCities())
	if r.Len() < 200 {
		t.Fatalf("registry has %d towers, want a substantial set", r.Len())
	}
}

func TestCullHeightRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := []Tower{
		{Loc: geo.Point{Lat: 40, Lon: -100}, Height: 50, Rental: false},  // dropped
		{Loc: geo.Point{Lat: 40, Lon: -100}, Height: 50, Rental: true},   // kept (rental)
		{Loc: geo.Point{Lat: 40, Lon: -100}, Height: 150, Rental: false}, // kept (tall)
	}
	out := Cull(ts, rng)
	if len(out) != 2 {
		t.Fatalf("cull kept %d towers, want 2", len(out))
	}
	for _, tw := range out {
		if !tw.Rental && tw.Height < CullMinHeight {
			t.Errorf("short non-rental tower survived: %+v", tw)
		}
	}
}

func TestCullDensityCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ts []Tower
	for i := 0; i < 200; i++ {
		ts = append(ts, Tower{
			Loc:    geo.Point{Lat: 40.1, Lon: -100.1},
			Height: 150,
		})
	}
	out := Cull(ts, rng)
	if len(out) != CullMaxPerCell {
		t.Fatalf("dense cell kept %d towers, want cap %d", len(out), CullMaxPerCell)
	}
}

func TestRegistryCulled(t *testing.T) {
	r := Generate(GenConfig{Seed: 3}, testCities())
	counts := map[cellKey]int{}
	for _, tw := range r.Towers() {
		if !tw.Rental && tw.Height < CullMinHeight {
			t.Fatalf("registry contains short non-rental tower %+v", tw)
		}
		counts[keyFor(tw.Loc)]++
	}
	for k, n := range counts {
		if n > CullMaxPerCell {
			t.Fatalf("cell %v holds %d towers, cap is %d", k, n, CullMaxPerCell)
		}
	}
}

func TestWithinRange(t *testing.T) {
	ts := []Tower{
		{Loc: geo.Point{Lat: 40, Lon: -100}, Height: 150},
		{Loc: geo.Point{Lat: 40, Lon: -100.5}, Height: 150}, // ~42 km away
		{Loc: geo.Point{Lat: 40, Lon: -103}, Height: 150},   // ~256 km away
	}
	r := NewRegistry(ts)
	got := r.WithinRange(geo.Point{Lat: 40, Lon: -100}, 100e3)
	if len(got) != 2 {
		t.Fatalf("WithinRange found %d towers, want 2", len(got))
	}
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("WithinRange order = %v, want nearest-first [0 1]", got)
	}
}

func TestWithinRangeMatchesBruteForce(t *testing.T) {
	r := Generate(GenConfig{Seed: 7}, testCities())
	center := geo.Point{Lat: 35, Lon: -95}
	const dist = 120e3
	want := map[int]bool{}
	for _, tw := range r.Towers() {
		if center.DistanceTo(tw.Loc) <= dist {
			want[tw.ID] = true
		}
	}
	got := r.WithinRange(center, dist)
	if len(got) != len(want) {
		t.Fatalf("index found %d towers, brute force %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("index returned tower %d outside range", id)
		}
	}
}

func TestPairsVisitsEachOnce(t *testing.T) {
	r := Generate(GenConfig{Seed: 9, RuralPerCell: 0.5}, testCities()[:5])
	seen := map[[2]int]bool{}
	r.Pairs(80e3, func(i, j int) {
		if i >= j {
			t.Fatalf("pair (%d,%d) not ordered", i, j)
		}
		k := [2]int{i, j}
		if seen[k] {
			t.Fatalf("pair %v visited twice", k)
		}
		seen[k] = true
		if d := r.Tower(i).Loc.DistanceTo(r.Tower(j).Loc); d > 80e3 {
			t.Fatalf("pair %v at distance %.0f m exceeds range", k, d)
		}
	})
	if len(seen) == 0 {
		t.Fatal("no pairs found")
	}
}

func TestUrbanDensityExceedsRural(t *testing.T) {
	cs := testCities()
	r := Generate(GenConfig{Seed: 11}, cs)
	nyc := cs[0].Loc
	urban := len(r.WithinRange(nyc, 50e3))
	rural := len(r.WithinRange(geo.Point{Lat: 41.5, Lon: -109.5}, 50e3)) // SW Wyoming
	if urban <= rural {
		t.Fatalf("urban tower count (%d) should exceed rural (%d)", urban, rural)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, sum := 10000, 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3)
	}
	mean := float64(sum) / float64(n)
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("poisson(3) sample mean = %v", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
}

func BenchmarkWithinRange(b *testing.B) {
	r := Generate(GenConfig{Seed: 1}, testCities())
	p := geo.Point{Lat: 40, Lon: -95}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.WithinRange(p, 100e3)
	}
}
