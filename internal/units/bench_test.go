package units_test

import (
	"testing"

	"cisp/internal/units"
)

// The typed units must be zero-cost: a named float64 has the identical
// machine representation, so the same arithmetic over Meters and over raw
// float64 must compile to the same code. These two benchmarks run the
// same distance-accumulation kernel both ways; TestTypedMatchesRaw pins
// bit-identical results, and the ns/op of the pair should be equal to
// noise (compare with `go test -bench TypedVsRaw ./internal/units`).

const benchN = 4096

func rawKernel(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x*1.5 + 250
	}
	return total
}

func typedKernel(xs []units.Meters) units.Meters {
	total := units.Meters(0)
	for _, x := range xs {
		total += x*1.5 + 250
	}
	return total
}

func benchInputs() ([]float64, []units.Meters) {
	raw := make([]float64, benchN)
	typed := make([]units.Meters, benchN)
	for i := range raw {
		v := float64(i%977) * 13.25
		raw[i] = v
		typed[i] = units.Meters(v)
	}
	return raw, typed
}

var (
	sinkRaw   float64
	sinkTyped units.Meters
)

func BenchmarkTypedVsRaw_Raw(b *testing.B) {
	raw, _ := benchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRaw = rawKernel(raw)
	}
}

func BenchmarkTypedVsRaw_Typed(b *testing.B) {
	_, typed := benchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTyped = typedKernel(typed)
	}
}

func TestTypedMatchesRaw(t *testing.T) {
	raw, typed := benchInputs()
	if r, ty := rawKernel(raw), typedKernel(typed); r != float64(ty) {
		t.Errorf("typed kernel diverged from raw: %v vs %v", ty, r)
	}
}
