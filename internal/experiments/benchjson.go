package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"cisp"
	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/te"
)

// scaleName renders a cisp.Scale for the benchmark record.
func scaleName(s cisp.Scale) string {
	switch s {
	case cisp.ScaleSmall:
		return "small"
	case cisp.ScaleMedium:
		return "medium"
	case cisp.ScaleFull:
		return "full"
	}
	return "unknown"
}

// benchSchema names the BENCH_netsim.json document format; the compare
// gate refuses records of any other schema. Schema 2 added the TE block
// (controller reoptimization latency and LP-solve counts read from the
// internal/obs registry).
const benchSchema = "cisp-bench-netsim/2"

// BenchTE is the controller-reoptimization benchmark block: a fixed
// degrade/restore drill over the §6.4 designed backbone, measured through
// the observability registry. LPSolves is seed-deterministic (the same
// drill always solves the same programs); the latency percentiles are
// wall-clock figures for the ratchet.
type BenchTE struct {
	Reopts     int64   // UpdateCapacities calls that re-solved at least one commodity
	LPSolves   int64   // LP programs solved across the drill
	ReoptP50Ms float64 // reoptimization latency, median
	ReoptP99Ms float64 // reoptimization latency, 99th percentile
}

// BenchRecord is the machine-readable benchmark document CI emits
// (BENCH_netsim.json): one §6.4 traffic-mix replay per engine with
// throughput figures (flows/sec, ns/event), plus the TE reoptimization
// drill, for trend tracking across commits.
type BenchRecord struct {
	Schema  string // "cisp-bench-netsim/2"
	Scale   string
	Seed    int64
	Engines []Fig6ScaleResult
	TE      *BenchTE `json:",omitempty"`
}

// benchTEFlows bounds the reopt drill's commodity count: enough site
// pairs to make the warm-start path LPs realistic, small enough that the
// drill stays a few seconds at small scale.
const benchTEFlows = 2000

// benchTE runs the TE reoptimization drill — fail each of a handful of
// links in turn, restore it, re-solve only the affected commodities —
// and reads the outcome from the given registry (which must be the
// active sink's registry while the drill runs).
func benchTE(opt Options, reg *obs.Registry) (*BenchTE, error) {
	links, nodes, designTM, err := DesignedMixTopology(opt)
	if err != nil {
		return nil, err
	}
	comms := MixCommodities(opt, designTM, benchTEFlows)
	ctrl, err := te.NewController(nodes, links, comms, te.Config{})
	if err != nil {
		return nil, err
	}
	rounds := 4
	if rounds > len(links) {
		rounds = len(links)
	}
	for i := 0; i < rounds; i++ {
		mod := append([]netsim.TopoLink(nil), links...)
		mod[i*len(links)/rounds].RateBps = 0 // fail one link
		if _, err := ctrl.UpdateCapacities(mod); err != nil {
			return nil, fmt.Errorf("degrade round %d: %w", i, err)
		}
		if _, err := ctrl.UpdateCapacities(links); err != nil {
			return nil, fmt.Errorf("restore round %d: %w", i, err)
		}
	}
	h := reg.Histogram("cisp_te_reopt_seconds")
	return &BenchTE{
		Reopts:     reg.Counter("cisp_te_reopts_total").Value(),
		LPSolves:   reg.Counter("cisp_te_lp_solves_total").Value(),
		ReoptP50Ms: h.Quantile(0.50) * 1000,
		ReoptP99Ms: h.Quantile(0.99) * 1000,
	}, nil
}

// BenchNetsim replays the designed-backbone traffic mix on both engines,
// runs the TE reoptimization drill, and writes the record to path as
// JSON. Flow counts are per engine (the packet engine clamps itself at
// its practical limit). Any engine that fails to run is simply absent
// from the record. The whole run swaps in a private observability sink,
// so a -obs endpoint running in the same process never sees (or taints)
// benchmark counters.
func BenchNetsim(opt Options, packetFlows, fluidFlows int, path string) error {
	prev := obs.SetActive(&obs.Sink{Reg: obs.NewRegistry(), Clock: obs.WallClock})
	defer obs.SetActive(prev)

	rec := BenchRecord{
		Schema: benchSchema,
		Scale:  scaleName(opt.Scale),
		Seed:   opt.Seed,
	}
	if r := Fig6Scale(opt, netsim.PacketMode, packetFlows); r != nil {
		rec.Engines = append(rec.Engines, *r)
	}
	if r := Fig6Scale(opt, netsim.FluidMode, fluidFlows); r != nil {
		rec.Engines = append(rec.Engines, *r)
	}
	// The drill gets its own registry, so engine-run counters (their
	// scenario solves also touch te) never leak into the TE block.
	teReg := obs.NewRegistry()
	obs.SetActive(&obs.Sink{Reg: teReg, Clock: obs.WallClock})
	teRes, err := benchTE(opt, teReg)
	if err != nil {
		fprintf(opt.out(), "benchnetsim: te drill: %v\n", err)
	} else {
		rec.TE = teRes
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
