// Package aliasimport pins that unitcheck resolves unit types through an
// aliased import: the check keys on the defining package of the named
// type, not the spelling at the use site.
package aliasimport

import u "cisp/internal/units"

func f(km u.Km) u.Meters {
	return u.Meters(km) // want `drops the scale factor`
}
