// Package gaming models the paper's §7.1 thin-client gaming study (Fig 12):
// a speculative-execution client-server loop where the server streams frames
// for every possible player input over conventional (fiber) connectivity,
// and a parallel low-latency (cISP) path carries the player's inputs and the
// tiny "which speculation was right" selection messages. Frame time — input
// to observed output — then tracks the low-latency path instead of the
// conventional one whenever speculation covers the input.
//
// The toy game mirrors the paper's multi-player Pacman variant: four
// possible movement directions, all of which the server speculates on, so
// the hit rate is 1 unless configured otherwise.
package gaming

import "math/rand"

// Config parameterises a session.
type Config struct {
	// ProcessMs is the non-network overhead per frame: server simulation,
	// encode, client decode/render. The paper's "rudimentary implementation"
	// carries substantial overhead; default 140 ms.
	ProcessMs float64

	// Directions is the input fan-out the server speculates over (Pacman: 4).
	Directions int

	// SpecHitRate is the probability the actual input is among the
	// speculated set. With all four directions speculated it is 1; lower it
	// to model richer input spaces.
	SpecHitRate float64

	// Inputs is the number of user inputs to simulate. Default 500.
	Inputs int

	// Seed drives jitter and speculation misses.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.ProcessMs == 0 {
		c.ProcessMs = 140
	}
	if c.Directions == 0 {
		c.Directions = 4
	}
	if c.SpecHitRate == 0 {
		c.SpecHitRate = 1
	}
	if c.Inputs == 0 {
		c.Inputs = 500
	}
}

// Result summarises a simulated session.
type Result struct {
	MeanFrameMs float64
	P95FrameMs  float64
	// BandwidthFactor is the fiber-path bandwidth overhead of speculation
	// relative to streaming a single outcome (≈ Directions on a hit path).
	BandwidthFactor float64
}

// SimulateConventional plays the session over conventional connectivity
// only: every input travels to the server and the resulting frame travels
// back, so frame time = RTT + processing (+ jitter).
func SimulateConventional(convRTTMs float64, cfg Config) Result {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return simulate(cfg, rng, func() float64 {
		return convRTTMs + jitteredProcess(cfg, rng)
	}, 1)
}

// SimulateAugmented plays the session with the low-latency augmentation: the
// server pre-streams speculated frames for each possible input over the
// conventional path, while inputs and selection messages use the cISP path
// at lowRTTMs. On a speculation hit the observed latency is the low path's
// RTT plus processing; on a miss the client must wait for a conventional
// round trip for the corrected frame.
func SimulateAugmented(convRTTMs, lowRTTMs float64, cfg Config) Result {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return simulate(cfg, rng, func() float64 {
		if rng.Float64() < cfg.SpecHitRate {
			return lowRTTMs + jitteredProcess(cfg, rng)
		}
		return convRTTMs + jitteredProcess(cfg, rng)
	}, float64(cfg.Directions))
}

func simulate(cfg Config, rng *rand.Rand, frame func() float64, bwFactor float64) Result {
	times := make([]float64, cfg.Inputs)
	sum := 0.0
	for i := range times {
		times[i] = frame()
		sum += times[i]
	}
	// 95th percentile by partial sort.
	p95 := percentile(times, 0.95)
	return Result{
		MeanFrameMs:     sum / float64(cfg.Inputs),
		P95FrameMs:      p95,
		BandwidthFactor: bwFactor,
	}
}

func jitteredProcess(cfg Config, rng *rand.Rand) float64 {
	return cfg.ProcessMs * (0.9 + 0.2*rng.Float64())
}

func percentile(v []float64, q float64) float64 {
	s := append([]float64(nil), v...)
	// insertion sort is fine at these sizes
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// FrameTimeCurve evaluates mean frame time across a sweep of conventional
// RTTs, with and without the low-latency augmentation at ratio lowFraction
// (the paper uses 1/3). It returns parallel slices: rtts, conventional mean
// frame times, augmented mean frame times — Fig 12's three columns.
func FrameTimeCurve(rttsMs []float64, lowFraction float64, cfg Config) (conv, aug []float64) {
	for _, rtt := range rttsMs {
		conv = append(conv, SimulateConventional(rtt, cfg).MeanFrameMs)
		aug = append(aug, SimulateAugmented(rtt, rtt*lowFraction, cfg).MeanFrameMs)
	}
	return conv, aug
}
