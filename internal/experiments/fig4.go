package experiments

import (
	"math"

	"cisp"
	"cisp/internal/geo"
	"cisp/internal/los"
	"cisp/internal/units"
)

// Fig4aPoint is one (budget, stretch) sample for a hop-range variant.
type Fig4aPoint struct {
	Budget  float64
	Stretch float64
}

// Fig4aResult holds the stretch-vs-budget curves for 70 and 100 km hops.
type Fig4aResult struct {
	Hops100 []Fig4aPoint
	Hops70  []Fig4aPoint
}

// Fig4aStretchVsBudget reproduces Fig 4a: network stretch falls as the
// tower budget grows, for maximum hop lengths of 100 km and 70 km.
func Fig4aStretchVsBudget(opt Options, budgets []float64) *Fig4aResult {
	w := opt.out()
	res := &Fig4aResult{}
	fprintf(w, "Fig 4a — stretch vs budget\n%10s %12s %12s\n", "budget", "100km hops", "70km hops")

	curve := func(rangeM units.Meters) []Fig4aPoint {
		p := los.DefaultParams()
		p.MaxRange = rangeM
		s := cisp.NewScenario(cisp.ScenarioConfig{
			Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, LOS: p, MaxCities: opt.MaxCities,
		})
		tm := s.PopulationTraffic()
		var pts []Fig4aPoint
		for _, b := range budgets {
			top, err := s.DesignGreedy(tm, b)
			if err != nil {
				continue
			}
			pts = append(pts, Fig4aPoint{Budget: b, Stretch: top.MeanStretch()})
		}
		return pts
	}
	res.Hops100 = curve(100e3)
	res.Hops70 = curve(70e3)

	for i := range res.Hops100 {
		v70 := math.NaN()
		if i < len(res.Hops70) {
			v70 = res.Hops70[i].Stretch
		}
		fprintf(w, "%10.0f %12.4f %12.4f\n", res.Hops100[i].Budget, res.Hops100[i].Stretch, v70)
	}
	return res
}

// Fig4bResult holds the tower-disjoint path study for the longest link.
type Fig4bResult struct {
	PairName     string
	Geodesic     float64
	Stretches    []float64 // per disjoint-path iteration
	FiberStretch float64
}

// Fig4bDisjointPaths reproduces Fig 4b: iteratively computing tower-disjoint
// shortest microwave paths between the endpoints of the design's longest
// link (the paper's 2,700 km Illinois-California link) and showing stretch
// grows only gradually — staying far below fiber.
func Fig4bDisjointPaths(opt Options, iterations int) *Fig4bResult {
	w := opt.out()
	s := opt.scenario()
	// Find the most distant microwave-connected city pair.
	bi, bj := -1, -1
	best := units.Meters(0)
	for i := range s.Cities {
		for j := i + 1; j < len(s.Cities); j++ {
			if math.IsInf(float64(s.Links.MWDist(i, j)), 1) {
				continue
			}
			if d := s.Cities[i].Loc.DistanceTo(s.Cities[j].Loc); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	if bi < 0 {
		fprintf(w, "fig4b: no microwave-connected pair\n")
		return nil
	}
	res := &Fig4bResult{
		PairName: s.Cities[bi].Name + " - " + s.Cities[bj].Name,
		Geodesic: float64(best),
	}
	lens := s.Links.DisjointTowerPaths(bi, bj, iterations)
	for _, l := range lens {
		res.Stretches = append(res.Stretches, geo.Stretch(l, best))
	}
	res.FiberStretch = geo.Stretch(s.FiberNet.LatencyDist(bi, bj), best)

	fprintf(w, "Fig 4b — tower-disjoint paths for %s (%.0f km geodesic)\n",
		res.PairName, units.Meters(res.Geodesic).Km())
	for i, st := range res.Stretches {
		fprintf(w, "  iteration %2d: stretch %.4f\n", i+1, st)
	}
	fprintf(w, "  fiber stretch: %.4f\n", res.FiberStretch)
	return res
}

// Fig4cPoint is one (aggregate Gbps, $/GB) sample.
type Fig4cPoint struct {
	AggregateGbps float64
	CostPerGB     float64
}

// Fig4cCostPerGB reproduces Fig 4c: cost per GB falls as the provisioned
// aggregate throughput grows (city-city traffic model).
func Fig4cCostPerGB(opt Options, aggregates []float64) []Fig4cPoint {
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig4c: %v\n", err)
		return nil
	}
	fprintf(w, "Fig 4c — cost per GB vs aggregate throughput (city-city TM)\n%12s %12s\n", "Gbps", "$/GB")
	var out []Fig4cPoint
	for _, agg := range aggregates {
		plan := s.Provision(top, scaleTo(tm, agg))
		c := s.CostPerGB(plan, agg)
		out = append(out, Fig4cPoint{AggregateGbps: agg, CostPerGB: c})
		fprintf(w, "%12.0f %12.3f\n", agg, c)
	}
	return out
}
