package design

import (
	"fmt"
	"math"
	"sort"

	"cisp/internal/ilp"
	"cisp/internal/lp"
)

// FlowStats reports the size of a constructed flow ILP.
type FlowStats struct {
	Vars       int // total LP variables (x + flow)
	FlowVars   int
	PrunedVars int // flow variables eliminated by the structural pruning
	Cons       int
	Nodes      int // branch-and-bound nodes
}

// FlowILPOptions configures the Eq. 1 solve.
type FlowILPOptions struct {
	// Prune enables the paper's structure-exploiting variable elimination:
	// flow variables that can never lie on a route better than pure fiber
	// for their commodity are dropped. This preserves optimality (§3.2:
	// "carefully defined, such constraints preserve optimality").
	Prune bool

	// ILP bounds the branch & bound.
	ILP ilp.Options
}

// edge is one undirected arc of the flow network.
type edge struct {
	i, j    int
	w       float64 // latency-equivalent meters
	mwIndex int     // index into links if microwave, else -1
}

// FlowILP builds and solves the paper's Eq. 1 network-flow formulation.
// Only the x_ij build variables are declared binary: with x integral each
// commodity's subproblem is a shortest-path LP (totally unimodular), so
// optimal flows are automatically unsplittable, exactly as in the paper's
// all-binary formulation but with a much smaller branch space.
func FlowILP(p *Problem, opt FlowILPOptions) (*Topology, *FlowStats, error) {
	prob, links, stats, xIdx := buildFlowLP(p, opt.Prune)
	sol, err := ilp.Solve(&ilp.Problem{LP: *prob, Binary: xIdx}, opt.ILP)
	if err != nil {
		return nil, stats, fmt.Errorf("design: flow ILP: %w", err)
	}
	if sol.Status == ilp.Infeasible || sol.Status == ilp.Unbounded {
		return nil, stats, fmt.Errorf("design: flow ILP %v", sol.Status)
	}
	stats.Nodes = sol.Nodes
	t := NewTopology(p)
	for k, l := range links {
		if sol.X[xIdx[k]] > 0.5 {
			t.AddLink(l.i, l.j)
		}
	}
	return t, stats, nil
}

// LPRounding solves the LP relaxation of Eq. 1 and rounds: links are added
// in decreasing fractional-x order while the budget allows. This is the
// naive baseline the paper reports as both unscalable and sub-optimal.
func LPRounding(p *Problem, prune bool) (*Topology, *FlowStats, error) {
	prob, links, stats, xIdx := buildFlowLP(p, prune)
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, stats, fmt.Errorf("design: LP relaxation: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, stats, fmt.Errorf("design: LP relaxation %v", sol.Status)
	}
	type fx struct {
		k int
		v float64
	}
	fr := make([]fx, len(links))
	for k := range links {
		fr[k] = fx{k: k, v: sol.X[xIdx[k]]}
	}
	sort.Slice(fr, func(a, b int) bool { return fr[a].v > fr[b].v })
	t := NewTopology(p)
	remaining := p.Budget
	for _, f := range fr {
		if f.v <= 1e-9 {
			break
		}
		l := links[f.k]
		c := p.MWCost[l.i][l.j]
		if c <= remaining {
			t.AddLink(l.i, l.j)
			remaining -= c
		}
	}
	return t, stats, nil
}

// buildFlowLP constructs the Eq. 1 LP: variables [x_links..., f_flowvars...].
func buildFlowLP(p *Problem, prune bool) (*lp.Problem, []edge, *FlowStats, []int) {
	base := NewTopology(p)
	fiberD := base.fiberD

	// Candidate microwave links.
	var links []edge
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.usefulLink(i, j, fiberD) {
				links = append(links, edge{i: i, j: j, w: p.MW[i][j], mwIndex: len(links)})
			}
		}
	}
	// Fiber edges: the metric closure gives a complete fiber graph.
	var edges []edge
	edges = append(edges, links...)
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if !math.IsInf(fiberD[i][j], 1) {
				edges = append(edges, edge{i: i, j: j, w: fiberD[i][j], mwIndex: -1})
			}
		}
	}

	// Commodities.
	type comm struct{ s, t int }
	var comms []comm
	for s := 0; s < p.N; s++ {
		for t := s + 1; t < p.N; t++ {
			if p.Traffic[s][t] > 0 {
				comms = append(comms, comm{s, t})
			}
		}
	}

	// Optimistic metric for pruning: every microwave link built for free.
	var optD [][]float64
	if prune {
		optD = make([][]float64, p.N)
		for i := range optD {
			optD[i] = append([]float64(nil), fiberD[i]...)
		}
		for _, l := range links {
			if l.w < optD[l.i][l.j] {
				optD[l.i][l.j] = l.w
				optD[l.j][l.i] = l.w
			}
		}
		floydWarshall(optD)
	}

	// Variable layout: x vars first, then per-(commodity, edge, direction)
	// flow vars, sparsely indexed.
	nx := len(links)
	varIdx := make(map[[3]int]int) // {commodity, edgeIdx, dir} -> var
	next := nx
	pruned := 0
	useVar := func(c, e, dir int) bool {
		if !prune {
			return true
		}
		ed := edges[e]
		s, t := comms[c].s, comms[c].t
		from, to := ed.i, ed.j
		if dir == 1 {
			from, to = ed.j, ed.i
		}
		// Keep the direct fiber fallback unconditionally (feasibility).
		if ed.mwIndex == -1 && ((ed.i == s && ed.j == t) || (ed.i == t && ed.j == s)) {
			return true
		}
		// Best conceivable route through this directed edge vs pure fiber.
		lb := optD[s][from] + ed.w + optD[to][t]
		if lb > fiberD[s][t]+1e-9 {
			pruned++
			return false
		}
		return true
	}
	for c := range comms {
		for e := range edges {
			for dir := 0; dir < 2; dir++ {
				if useVar(c, e, dir) {
					varIdx[[3]int{c, e, dir}] = next
					next++
				}
			}
		}
	}
	total := next

	prob := &lp.Problem{NumVars: total, Objective: make([]float64, total)}
	// Objective: Σ_st (h/d) Σ_e w_e f.
	for key, v := range varIdx {
		c, e := key[0], key[1]
		s, t := comms[c].s, comms[c].t
		prob.Objective[v] = p.Traffic[s][t] / p.Geodesic[s][t] * edges[e].w
	}

	// Flow conservation: for each commodity and node, out - in = supply.
	for c, cm := range comms {
		for v := 0; v < p.N; v++ {
			var vars []int
			var coefs []float64
			for e, ed := range edges {
				// dir 0: i -> j, dir 1: j -> i.
				if ed.i == v || ed.j == v {
					for dir := 0; dir < 2; dir++ {
						idx, ok := varIdx[[3]int{c, e, dir}]
						if !ok {
							continue
						}
						from := ed.i
						if dir == 1 {
							from = ed.j
						}
						if from == v {
							vars = append(vars, idx)
							coefs = append(coefs, 1) // outgoing
						} else {
							vars = append(vars, idx)
							coefs = append(coefs, -1) // incoming
						}
					}
				}
			}
			supply := 0.0
			switch v {
			case cm.s:
				supply = 1
			case cm.t:
				supply = -1
			}
			if len(vars) == 0 && supply == 0 {
				continue
			}
			prob.AddConstraint(vars, coefs, lp.EQ, supply)
		}
	}

	// Coupling: flow on a microwave link requires building it.
	for c := range comms {
		for e, ed := range edges {
			if ed.mwIndex < 0 {
				continue
			}
			var vars []int
			var coefs []float64
			for dir := 0; dir < 2; dir++ {
				if idx, ok := varIdx[[3]int{c, e, dir}]; ok {
					vars = append(vars, idx)
					coefs = append(coefs, 1)
				}
			}
			if len(vars) == 0 {
				continue
			}
			vars = append(vars, ed.mwIndex)
			coefs = append(coefs, -1)
			prob.AddConstraint(vars, coefs, lp.LE, 0)
		}
	}

	// Budget.
	if nx > 0 {
		vars := make([]int, nx)
		coefs := make([]float64, nx)
		for k, l := range links {
			vars[k] = k
			coefs[k] = p.MWCost[l.i][l.j]
		}
		prob.AddConstraint(vars, coefs, lp.LE, p.Budget)
	}
	// x ≤ 1 for the relaxation path (ilp adds these itself, LPRounding needs them).
	for k := 0; k < nx; k++ {
		prob.AddConstraint([]int{k}, []float64{1}, lp.LE, 1)
	}

	xIdx := make([]int, nx)
	for k := range xIdx {
		xIdx[k] = k
	}
	stats := &FlowStats{
		Vars:       total,
		FlowVars:   total - nx,
		PrunedVars: pruned,
		Cons:       len(prob.Cons),
	}
	return prob, links, stats, xIdx
}
