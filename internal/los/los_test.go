package los

import (
	"math"
	"testing"

	"cisp/internal/geo"
	"cisp/internal/terrain"
	"cisp/internal/towers"
)

func towerAt(lat, lon, height float64) towers.Tower {
	return towers.Tower{Loc: geo.Point{Lat: lat, Lon: lon}, Height: height}
}

func flatEval() *Evaluator {
	return NewEvaluator(terrain.Flat(), DefaultParams())
}

func TestShortHopFlatTerrain(t *testing.T) {
	e := flatEval()
	a := towerAt(40, -100, 100)
	b := towerAt(40, -99.8, 100) // ~17 km
	if !e.HopFeasible(a, b) {
		t.Fatal("17 km hop between 100 m towers on flat terrain must be feasible")
	}
}

func TestRangeLimit(t *testing.T) {
	e := flatEval()
	a := towerAt(40, -100, 300)
	b := towerAt(40, -98.5, 300) // ~128 km > 100 km range
	if e.HopFeasible(a, b) {
		t.Fatal("hop beyond MaxRange must be infeasible")
	}
	if m := e.ClearanceMargin(a, b); !math.IsInf(m, -1) {
		t.Fatalf("margin for out-of-range hop = %v, want -Inf", m)
	}
}

func TestEarthBulgeBlocksLongLowHop(t *testing.T) {
	e := flatEval()
	// 95 km hop: midpoint bulge ~ (47.5*47.5)/(12.74*1.3) ≈ 136 m, plus
	// Fresnel ~25 m. Two 60 m towers cannot clear it; two 250 m towers can.
	a, b := towerAt(40, -100, 60), towerAt(40, -98.9, 60)
	if e.HopFeasible(a, b) {
		t.Fatal("60 m towers should not clear a ~94 km hop's Earth bulge")
	}
	a2, b2 := towerAt(40, -100, 250), towerAt(40, -98.9, 250)
	if !e.HopFeasible(a2, b2) {
		t.Fatal("250 m towers should clear a ~94 km hop on flat terrain")
	}
}

func TestMountainBlocksHop(t *testing.T) {
	// A single ridge across the middle of the hop.
	ridge := terrain.Ridge{
		Crest:  []geo.Point{{Lat: 39, Lon: -99.5}, {Lat: 41, Lon: -99.5}},
		Height: 2000, Width: 10e3,
	}
	m := terrain.New(1, []terrain.Ridge{ridge}, nil, 0, 0, 0)
	e := NewEvaluator(m, DefaultParams())
	a, b := towerAt(40, -100, 200), towerAt(40, -99, 200)
	if e.HopFeasible(a, b) {
		t.Fatal("2000 m ridge between towers must block the hop")
	}
	// The same hop on flat ground is fine.
	if !flatEval().HopFeasible(a, b) {
		t.Fatal("control hop without the ridge should be feasible")
	}
}

func TestUsableHeightRestrictionShrinksFeasibility(t *testing.T) {
	// A hop that barely clears with full tower height should fail at 45%.
	p := DefaultParams()
	full := NewEvaluator(terrain.Flat(), p)
	a, b := towerAt(40, -100, 170), towerAt(40, -98.95, 170) // ~89 km
	if !full.HopFeasible(a, b) {
		t.Fatal("baseline hop should be feasible at full height")
	}
	p.UsableHeightFrac = 0.45
	restricted := NewEvaluator(terrain.Flat(), p)
	if restricted.HopFeasible(a, b) {
		t.Fatal("hop should fail when only 45% of tower height is usable")
	}
}

func TestMarginConsistentWithFeasible(t *testing.T) {
	m := terrain.ContiguousUS(3)
	e := NewEvaluator(m, DefaultParams())
	cases := []struct{ a, b towers.Tower }{
		{towerAt(41.8, -87.6, 150), towerAt(41.9, -88.5, 150)},
		{towerAt(39.5, -106.5, 120), towerAt(39.5, -105.5, 120)}, // across the Rockies
		{towerAt(35, -101, 200), towerAt(35, -100.2, 200)},
		{towerAt(40.7, -74.0, 250), towerAt(40.9, -74.8, 250)},
	}
	for i, tc := range cases {
		feasible := e.HopFeasible(tc.a, tc.b)
		margin := e.ClearanceMargin(tc.a, tc.b)
		if feasible != (margin >= 0) {
			t.Errorf("case %d: feasible=%v but margin=%v", i, feasible, margin)
		}
	}
}

func TestTallerTowersNeverHurt(t *testing.T) {
	m := terrain.ContiguousUS(9)
	e := NewEvaluator(m, DefaultParams())
	base := 80.0
	for d := 0.2; d <= 0.9; d += 0.1 {
		a := towerAt(38, -95, base)
		b := towerAt(38, -95+d, base)
		tallA, tallB := a, b
		tallA.Height, tallB.Height = base*3, base*3
		if e.HopFeasible(a, b) && !e.HopFeasible(tallA, tallB) {
			t.Fatalf("raising towers made a feasible hop infeasible at Δlon=%v", d)
		}
		if m1, m2 := e.ClearanceMargin(a, b), e.ClearanceMargin(tallA, tallB); !math.IsInf(m1, -1) && m2 < m1 {
			t.Fatalf("taller towers reduced margin: %v -> %v", m1, m2)
		}
	}
}

func TestZeroDistanceHop(t *testing.T) {
	e := flatEval()
	a := towerAt(40, -100, 100)
	if !e.HopFeasible(a, a) {
		t.Fatal("zero-length hop should be trivially feasible")
	}
}

func TestPointFeasible(t *testing.T) {
	e := flatEval()
	a := geo.Point{Lat: 40, Lon: -100}
	b := geo.Point{Lat: 40, Lon: -99.5}
	if !e.PointFeasible(a, b, 120, 120) {
		t.Fatal("explicit-height hop on flat terrain should pass")
	}
	if e.PointFeasible(a, b, 1, 1) {
		t.Fatal("1 m antennae cannot clear a 43 km hop")
	}
}

func BenchmarkHopFeasible90km(b *testing.B) {
	m := terrain.ContiguousUS(1)
	e := NewEvaluator(m, DefaultParams())
	t1 := towerAt(40, -100, 150)
	t2 := towerAt(40, -98.95, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.HopFeasible(t1, t2)
	}
}
