package netsim

import (
	"math"
	"math/rand"
	"testing"

	"cisp/internal/units"
)

// diamondSplitScenario is the shared fractional-split fixture: a diamond
// with two disjoint equal-capacity paths 0-1-3 and 0-2-3, one commodity
// whose flows are split across them.
func diamondSplitScenario(frac1 float64, count int) *Scenario {
	return &Scenario{
		Nodes: 4,
		Links: []TopoLink{
			{A: 0, B: 1, RateBps: 40e6, PropDelay: 0.002},
			{A: 1, B: 3, RateBps: 40e6, PropDelay: 0.002},
			{A: 0, B: 2, RateBps: 40e6, PropDelay: 0.003},
			{A: 2, B: 3, RateBps: 40e6, PropDelay: 0.003},
		},
		Comms: []Commodity{
			{Flow: 1, Src: 0, Dst: 3, Demand: 10e6, Count: count},
		},
		Splits: map[int][]SplitPath{
			1: {
				{Path: []int{0, 1, 3}, Frac: frac1},
				{Path: []int{0, 2, 3}, Frac: 1 - frac1},
			},
		},
		FlowBytes: 1 << 20,
		Horizon:   60,
		Seed:      7,
	}
}

func TestSplitAssignmentsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	assign := splitAssignments(100, []float64{0.75, 0.25}, rng)
	if len(assign) != 100 {
		t.Fatalf("len = %d, want 100", len(assign))
	}
	counts := map[int]int{}
	for _, pi := range assign {
		counts[pi]++
	}
	if counts[0] != 75 || counts[1] != 25 {
		t.Fatalf("counts = %v, want 75/25", counts)
	}

	// Unnormalized fractions and a non-exact quota: largest remainder keeps
	// the total exact.
	rng = rand.New(rand.NewSource(1))
	assign = splitAssignments(10, []float64{2, 1, 1}, rng)
	counts = map[int]int{}
	for _, pi := range assign {
		counts[pi]++
	}
	if counts[0]+counts[1]+counts[2] != 10 {
		t.Fatalf("total = %d, want 10", counts[0]+counts[1]+counts[2])
	}
	if counts[0] != 5 {
		t.Fatalf("dominant path got %d flows, want 5", counts[0])
	}

	// Deterministic in the rng state.
	a1 := splitAssignments(50, []float64{0.5, 0.5}, rand.New(rand.NewSource(3)))
	a2 := splitAssignments(50, []float64{0.5, 0.5}, rand.New(rand.NewSource(3)))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignment not deterministic at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

// TestScenarioSplitRoutes checks that both engines apportion a commodity's
// flows across its weighted paths exactly and report the resulting link
// loads: with a 75/25 split over two equal disjoint paths, the upper path's
// data links must carry three times the lower path's bytes.
func TestScenarioSplitRoutes(t *testing.T) {
	for _, mode := range []Mode{PacketMode, FluidMode} {
		sc := diamondSplitScenario(0.75, 40)
		res := sc.Run(mode)
		if res.Completed != 40 {
			t.Fatalf("%s: completed %d/40", mode, res.Completed)
		}
		util := map[[2]int]float64{}
		for _, l := range res.LinkLoads {
			util[[2]int{l.From, l.To}] = float64(l.Utilization)
		}
		up, down := util[[2]int{0, 1}], util[[2]int{0, 2}]
		if up <= 0 || down <= 0 {
			t.Fatalf("%s: paths not both used: up=%v down=%v", mode, up, down)
		}
		// Exact apportionment is 30/10 flows; utilization ratio tracks the
		// byte ratio up to protocol overhead and truncation effects.
		if ratio := up / down; ratio < 2.5 || ratio > 3.5 {
			t.Errorf("%s: up/down utilization ratio = %.2f, want ~3", mode, ratio)
		}
		if res.MLU <= 0 {
			t.Errorf("%s: MLU not exported", mode)
		}
		for _, l := range res.LinkLoads {
			if l.Utilization > res.MLU {
				t.Errorf("%s: link %d->%d utilization %.3f exceeds MLU %.3f",
					mode, l.From, l.To, l.Utilization, res.MLU)
			}
		}
	}
}

// TestPacketFluidAgreementOnSplits is the split-route counterpart of
// TestPacketFluidAgreement: per-flow mean rates on fractional splits must
// agree across engines within the shared tolerance.
func TestPacketFluidAgreementOnSplits(t *testing.T) {
	sc := diamondSplitScenario(0.5, 8)
	pkt := sc.Run(PacketMode)
	fl := sc.Run(FluidMode)
	if pkt.Completed != len(pkt.Flows) || fl.Completed != len(fl.Flows) {
		t.Fatalf("incomplete runs: packet %d/%d fluid %d/%d",
			pkt.Completed, len(pkt.Flows), fl.Completed, len(fl.Flows))
	}
	pr := pkt.MeanRateByCommodity()
	fr := fl.MeanRateByCommodity()
	p, f := pr[1], fr[1]
	if p <= 0 || f <= 0 {
		t.Fatalf("non-positive rates packet=%v fluid=%v", p, f)
	}
	if d := math.Abs(p-f) / f; d > packetFluidAgreementTol {
		t.Errorf("split routes: packet %.0f bps vs fluid %.0f bps — %.0f%% apart (tolerance %.0f%%)",
			p, f, d*100, packetFluidAgreementTol*100)
	}
}

// TestScenarioLinkLoadsExported covers the satellite export on the plain
// (non-split) path: per-link utilizations and MLU surface from a run, are
// sorted, and identify the known bottleneck.
func TestScenarioLinkLoadsExported(t *testing.T) {
	sc := agreementScenario()
	for _, mode := range []Mode{PacketMode, FluidMode} {
		res := sc.Run(mode)
		if len(res.LinkLoads) != 4 { // two duplex links
			t.Fatalf("%s: %d link loads, want 4", mode, len(res.LinkLoads))
		}
		for i := 1; i < len(res.LinkLoads); i++ {
			a, b := res.LinkLoads[i-1], res.LinkLoads[i]
			if a.From > b.From || (a.From == b.From && a.To >= b.To) {
				t.Fatalf("%s: link loads not sorted: %v", mode, res.LinkLoads)
			}
		}
		maxU, bottleneck := units.Utilization(0), [2]int{}
		for _, l := range res.LinkLoads {
			if l.Utilization > maxU {
				maxU, bottleneck = l.Utilization, [2]int{l.From, l.To}
			}
		}
		if res.MLU != maxU {
			t.Errorf("%s: MLU = %v, max link utilization = %v", mode, res.MLU, maxU)
		}
		if bottleneck != [2]int{1, 2} {
			t.Errorf("%s: bottleneck = %v, want 1->2", mode, bottleneck)
		}
		// ~6.4 s of transfer over the 60 s horizon: time-average utilization
		// on the bottleneck is ~0.11.
		if res.MLU <= 0.05 {
			t.Errorf("%s: bottleneck utilization %.3f implausibly low", mode, res.MLU)
		}
	}
}

// TestScenarioSplitDeterminism: identical seeds give identical flow results
// and link loads; the per-flow draw is a function of Scenario.Seed.
func TestScenarioSplitDeterminism(t *testing.T) {
	a := diamondSplitScenario(0.6, 30).Run(FluidMode)
	b := diamondSplitScenario(0.6, 30).Run(FluidMode)
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a.Flows[i], b.Flows[i])
		}
	}
	for i := range a.LinkLoads {
		if a.LinkLoads[i] != b.LinkLoads[i] {
			t.Fatalf("link load %d differs: %+v vs %+v", i, a.LinkLoads[i], b.LinkLoads[i])
		}
	}
}

func TestSplitPanicsOnDisconnectedPath(t *testing.T) {
	sc := diamondSplitScenario(0.5, 4)
	sc.Splits[1][0].Path = []int{0, 1} // does not reach Dst 3
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on a split path that misses the commodity destination")
		}
	}()
	sc.Run(FluidMode)
}
