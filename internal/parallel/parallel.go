// Package parallel is the shared worker-pool subsystem behind every
// concurrent hot path in the codebase: Step-1 line-of-sight sweeps
// (internal/linkbuild), the Step-2 design loops (internal/design) and the
// concurrent experiment runner (internal/experiments).
//
// It provides chunked index-range fan-out (For, Map), chunk-ordered
// reduction (Reduce) and a bounded task pool (Run), all with panic
// propagation back to the caller.
//
// Determinism contract: chunk boundaries depend only on the range length n —
// never on the worker count — and Reduce folds per-chunk partials strictly
// in chunk order. Any computation built on these primitives therefore
// produces bit-identical results at every parallelism level, including the
// sequential one-worker path. This is what lets the design solvers claim
// "parallel output == sequential output" exactly, not just approximately.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// poolLabels tags pool goroutines for pprof: profiles scraped from the
// cispbench -obs endpoint group worker samples under pool=cisp-parallel
// instead of anonymous dispatch.func goroutines.
var poolLabels = pprof.Labels("pool", "cisp-parallel")

// maxChunks bounds how many chunks a range is split into. It is a constant
// — not a function of the worker count — so chunk boundaries, and therefore
// any chunk-ordered reduction, are identical at every parallelism level.
// 64 chunks keep the atomic-counter dispatch balanced well past the pool
// widths of commodity machines while staying cheap to fold.
const maxChunks = 64

// workerOverride holds the SetWorkers value; 0 means "use GOMAXPROCS".
var workerOverride atomic.Int64

// Workers returns the pool width used when a call does not specify one: the
// last SetWorkers value, or GOMAXPROCS when unset.
func Workers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default pool width (n <= 0 restores the
// GOMAXPROCS default) and returns the previous override (0 if none was
// set). Intended for CLI flags and determinism tests; safe for concurrent
// use.
func SetWorkers(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// chunkSize returns the deterministic chunk width for a range of n items.
func chunkSize(n int) int {
	return (n + maxChunks - 1) / maxChunks
}

// dispatch runs fn(i) for i in [0,n) on at most `workers` goroutines
// pulling indices from an atomic counter. A panic in fn stops the pool:
// in-flight indices drain, no new ones are dispatched, and the panic is
// re-raised in the caller (the lowest-index panic observed, when several
// in-flight indices fail together). Callers guarantee workers >= 2 and
// n >= 1 — sequential execution is their own inline path, where a panic
// propagates immediately.
func dispatch(n, workers int, fn func(i int)) {
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked bool
		panicIdx int
		panicVal interface{}
	)
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				mu.Lock()
				if !panicked || i < panicIdx {
					panicked, panicIdx, panicVal = true, i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	for w := 0; w < min(workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), poolLabels, func(context.Context) {
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
				}
			})
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// forChunks runs fn over the fixed chunks of [0,n): chunk ci covers
// [ci*size, min((ci+1)*size, n)). Chunks are dispatched to the pool when
// parallel execution is worthwhile (workers > 1 and more indices than
// grain); otherwise they run inline, in chunk order, with panics
// propagating immediately.
func forChunks(n, grain, workers int, fn func(ci, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers <= 0 {
		workers = Workers()
	}
	size := chunkSize(n)
	nchunks := (n + size - 1) / size
	runChunk := func(ci int) {
		lo := ci * size
		fn(ci, lo, min(lo+size, n))
	}
	if workers == 1 || n <= grain {
		for ci := 0; ci < nchunks; ci++ {
			runChunk(ci)
		}
		return
	}
	dispatch(nchunks, workers, runChunk)
}

// For runs fn over disjoint index ranges that exactly cover [0,n), using
// the default pool width. grain is the smallest n worth fanning out —
// ranges of at most grain indices (or a one-worker pool) run inline. fn
// must only touch state owned by its [lo,hi) slice of the range; then the
// result is independent of the worker count by construction.
func For(n, grain int, fn func(lo, hi int)) {
	forChunks(n, grain, 0, func(_, lo, hi int) { fn(lo, hi) })
}

// Map returns out where out[i] = fn(i), with fn calls fanned out across the
// pool. Order and content of the result are independent of the worker
// count.
func Map[T any](n, grain int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Reduce evaluates fn over the fixed chunks of [0,n) and folds the partial
// results strictly in chunk order: merge(...merge(fn(c0), fn(c1))..., fn(ck)).
// Because the chunking depends only on n, the merge tree — and hence the
// floating-point result — is bit-identical at every parallelism level. A
// zero T is returned for an empty range.
func Reduce[T any](n, grain int, fn func(lo, hi int) T, merge func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	size := chunkSize(n)
	parts := make([]T, (n+size-1)/size)
	forChunks(n, grain, 0, func(ci, lo, hi int) { parts[ci] = fn(lo, hi) })
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = merge(acc, p)
	}
	return acc
}

// Run executes the tasks on a pool of at most `workers` goroutines
// (workers <= 0 uses the default width). With a one-worker pool the tasks
// run inline in slice order and a panic propagates immediately, before any
// later task runs — matching For's inline path.
func Run(workers int, tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers == 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	dispatch(len(tasks), workers, func(i int) { tasks[i]() })
}
