// Package ctltest is the in-process integration harness for the control
// plane: it boots a real ctlplane.Daemon with its full HTTP surface on a
// loopback listener, drives it with a virtual clock and deterministic
// event schedules, records the exact snapshot sequence the daemon
// publishes, and asserts the sequence invariants the design promises —
// versions strictly increasing, splits summing to one, zero LP solves on
// the fast-reroute path, and byte-identical sequences for the same seed
// at any worker-pool width. Tests across the repo use it as the one
// honest way to exercise the daemon: nothing is mocked below the HTTP
// client.
package ctltest

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cisp/internal/cities"
	"cisp/internal/ctlplane"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/resilience"
	"cisp/internal/te"
	"cisp/internal/units"
)

// Backbone returns the harness's standard substrate: four population
// centers and one data center, a microwave backbone with route diversity,
// and parallel fiber conduits through midpoint transit nodes at the
// paper's ~1.5× stretch — the same shape the workload pipeline tests use.
func Backbone() *ctlplane.Backbone {
	sites := []cities.City{
		{Name: "A", Loc: geo.Point{Lat: 40, Lon: -75}, Population: 8_000_000},
		{Name: "B", Loc: geo.Point{Lat: 41, Lon: -85}, Population: 4_000_000},
		{Name: "C", Loc: geo.Point{Lat: 39, Lon: -95}, Population: 2_000_000},
		{Name: "D", Loc: geo.Point{Lat: 40, Lon: -105}, Population: 1_000_000},
		{Name: "DC", Loc: geo.Point{Lat: 38, Lon: -90}, Population: 500_000},
	}
	mwPairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {2, 4}}
	b := &ctlplane.Backbone{Sites: sites, Nodes: len(sites)}
	for _, p := range mwPairs {
		d := float64(sites[p[0]].Loc.DistanceTo(sites[p[1]].Loc))
		b.Mw = append(b.Mw, netsim.TopoLink{
			A: p[0], B: p[1],
			RateBps:   units.Gbps(10),
			PropDelay: units.Seconds(d / geo.C),
		})
	}
	for _, p := range mwPairs {
		d := float64(sites[p[0]].Loc.DistanceTo(sites[p[1]].Loc)) * 1.5
		mid := b.Nodes
		b.Nodes++
		b.Fiber = append(b.Fiber,
			netsim.TopoLink{A: p[0], B: mid, RateBps: units.Gbps(40), PropDelay: units.Seconds(d / 2 / geo.C)},
			netsim.TopoLink{A: mid, B: p[1], RateBps: units.Gbps(40), PropDelay: units.Seconds(d / 2 / geo.C)})
	}
	return b
}

// Commodities returns the standard gravity-model demand over Backbone's
// sites, totaling 20 Gbps — enough load that reoptimizations move splits.
func Commodities() []netsim.Commodity {
	return ctlplane.GravityCommodities(Backbone().Sites, 20)
}

// Options tunes a harness boot. The zero value boots the standard
// backbone and commodities under default TE/protection tuning.
type Options struct {
	Backbone     *ctlplane.Backbone
	Comms        []netsim.Commodity
	TE           te.Config
	Prot         resilience.Config
	DisableReopt bool
}

// Harness is one booted daemon plus everything a test needs to drive and
// observe it: the virtual clock, the metrics sink, the HTTP base URL, and
// the recorded publication sequence.
type Harness struct {
	T     testing.TB
	D     *ctlplane.Daemon
	Clock *obs.ManualClock
	Sink  *obs.Sink
	URL   string // http://127.0.0.1:<port>, no trailing slash

	client *http.Client

	mu  sync.Mutex
	seq []*ctlplane.Snapshot
}

// Start boots a daemon with its HTTP surface on a loopback listener and a
// virtual clock at the Unix epoch, installs a fresh metrics sink as the
// process sink for the test's duration, and registers cleanup that drains
// the server. Every published snapshot — including the initial one — is
// recorded in publication order.
func Start(t testing.TB, opts Options) *Harness {
	t.Helper()
	if opts.Backbone == nil {
		opts.Backbone = Backbone()
	}
	if opts.Comms == nil {
		opts.Comms = ctlplane.GravityCommodities(opts.Backbone.Sites, 20)
	}
	h := &Harness{
		T:      t,
		Clock:  obs.NewManualClock(time.Unix(0, 0)),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	h.Sink = &obs.Sink{Reg: obs.NewRegistry(), Clock: h.Clock.Clock()}
	prev := obs.SetActive(h.Sink)
	t.Cleanup(func() { obs.SetActive(prev) })

	d, err := ctlplane.New(ctlplane.Config{
		Backbone:     opts.Backbone,
		Comms:        opts.Comms,
		TE:           opts.TE,
		Prot:         opts.Prot,
		Clock:        h.Clock.Clock(),
		DisableReopt: opts.DisableReopt,
		OnPublish: func(s *ctlplane.Snapshot) {
			h.mu.Lock()
			h.seq = append(h.seq, s)
			h.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("ctltest: booting daemon: %v", err)
	}
	h.D = d
	srv, err := d.Serve("127.0.0.1:0", h.Sink)
	if err != nil {
		d.Close()
		t.Fatalf("ctltest: starting server: %v", err)
	}
	h.URL = "http://" + srv.Addr()
	t.Cleanup(func() { srv.Close() })
	return h
}

// Sequence returns a copy of the publication sequence so far, in version
// order (OnPublish runs synchronously on the event loop).
func (h *Harness) Sequence() []*ctlplane.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*ctlplane.Snapshot(nil), h.seq...)
}

// SequenceBytes returns the canonical JSON encodings of the publication
// sequence — the byte-exact record determinism pins compare.
func (h *Harness) SequenceBytes() [][]byte {
	seq := h.Sequence()
	out := make([][]byte, len(seq))
	for i, s := range seq {
		out[i] = s.JSON()
	}
	return out
}

// Inject POSTs an event batch over HTTP and fails the test unless the
// daemon accepts it. It returns the decoded injection reply version.
func (h *Harness) Inject(events ...ctlplane.Event) uint64 {
	h.T.Helper()
	body, err := json.Marshal(map[string][]ctlplane.Event{"events": events})
	if err != nil {
		h.T.Fatalf("ctltest: encoding events: %v", err)
	}
	status, reply := h.post("/v1/events", string(body))
	if status != http.StatusOK {
		h.T.Fatalf("ctltest: inject: status %d: %s", status, reply)
	}
	var r struct {
		Applied int    `json:"applied"`
		Version uint64 `json:"version"`
		Epoch   uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(reply), &r); err != nil {
		h.T.Fatalf("ctltest: decoding inject reply %q: %v", reply, err)
	}
	return r.Version
}

// InjectRaw POSTs an arbitrary body to the injection endpoint and returns
// the status code and response body — the negative-path probe.
func (h *Harness) InjectRaw(body string) (int, string) {
	h.T.Helper()
	return h.post("/v1/events", body)
}

func (h *Harness) post(path, body string) (int, string) {
	h.T.Helper()
	resp, err := h.client.Post(h.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		h.T.Fatalf("ctltest: POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		h.T.Fatalf("ctltest: reading %s reply: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// Get fetches a daemon URL path and returns status and body.
func (h *Harness) Get(path string) (int, string) {
	h.T.Helper()
	resp, err := h.client.Get(h.URL + path)
	if err != nil {
		h.T.Fatalf("ctltest: GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		h.T.Fatalf("ctltest: reading %s reply: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// GetSnapshot fetches and decodes /v1/snapshot, returning the decoded
// snapshot and the raw bytes served.
func (h *Harness) GetSnapshot() (*ctlplane.Snapshot, []byte) {
	h.T.Helper()
	status, body := h.Get("/v1/snapshot")
	if status != http.StatusOK {
		h.T.Fatalf("ctltest: /v1/snapshot: status %d: %s", status, body)
	}
	var s ctlplane.Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		h.T.Fatalf("ctltest: decoding snapshot: %v", err)
	}
	return &s, []byte(body)
}

// Metrics fetches the Prometheus rendering of the harness sink.
func (h *Harness) Metrics() string {
	h.T.Helper()
	status, body := h.Get("/metrics")
	if status != http.StatusOK {
		h.T.Fatalf("ctltest: /metrics: status %d", status)
	}
	return body
}

// FRRLPSolves returns the cisp_ctlplane_frr_lp_solves gauge — the
// cumulative LP-solve count observed across fast-reroute publications,
// which the design requires to stay exactly zero.
func (h *Harness) FRRLPSolves() float64 {
	return h.Sink.Reg.Gauge("cisp_ctlplane_frr_lp_solves").Value()
}

// AssertInvariants checks the publication sequence against the contract
// every snapshot stream must satisfy, regardless of the event schedule:
// versions strictly increase by one from 1, epochs are monotone, every
// commodity's split fractions sum to one within netsim.SplitSumTol, JSON
// encodings are present and newline-terminated, and no LP solve ever ran
// on a fast-reroute publication.
func (h *Harness) AssertInvariants() {
	h.T.Helper()
	seq := h.Sequence()
	if len(seq) == 0 {
		h.T.Fatalf("ctltest: no snapshots published")
	}
	for i, s := range seq {
		if want := uint64(i + 1); s.Version != want {
			h.T.Fatalf("ctltest: snapshot %d has version %d, want %d (versions must increase by 1)", i, s.Version, want)
		}
		if i > 0 && s.Epoch < seq[i-1].Epoch {
			h.T.Fatalf("ctltest: epoch regressed %d -> %d at version %d", seq[i-1].Epoch, s.Epoch, s.Version)
		}
		if len(s.JSON()) == 0 || s.JSON()[len(s.JSON())-1] != '\n' {
			h.T.Fatalf("ctltest: snapshot v%d encoding missing or unterminated", s.Version)
		}
		for _, cw := range s.Commodities {
			sum := 0.0
			for _, sp := range cw.Splits {
				if sp.Frac <= 0 || math.IsNaN(sp.Frac) || math.IsInf(sp.Frac, 0) {
					h.T.Fatalf("ctltest: snapshot v%d flow %d has bad fraction %v", s.Version, cw.Flow, sp.Frac)
				}
				sum += sp.Frac
			}
			if math.Abs(sum-1) > netsim.SplitSumTol {
				h.T.Fatalf("ctltest: snapshot v%d flow %d splits sum to %v, want 1±%v", s.Version, cw.Flow, sum, netsim.SplitSumTol)
			}
		}
		if math.IsNaN(s.MLU) || math.IsInf(s.MLU, 0) || s.MLU < 0 {
			h.T.Fatalf("ctltest: snapshot v%d has bad MLU %v", s.Version, s.MLU)
		}
	}
	if n := h.FRRLPSolves(); n != 0 {
		h.T.Fatalf("ctltest: %v LP solves observed on the fast-reroute path, want 0", n)
	}
}

// Diff returns a description of the first difference between two recorded
// byte sequences, or "" when identical — the determinism pin's comparator.
func Diff(a, b [][]byte) string {
	if len(a) != len(b) {
		return fmt.Sprintf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return fmt.Sprintf("snapshot %d differs:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	return ""
}
