package design

import (
	"math"
	"sync"

	"cisp/internal/obs"
	"cisp/internal/parallel"
)

// Grain sizes for the pool: a parallel region only fans out goroutines when
// its index range exceeds the grain, so small instances (the exact solvers'
// regime, where AddLink and objective sit inside a branch-and-bound loop)
// keep running inline with zero scheduling overhead. Per-index work in the
// APSP update and the stretch reductions is O(n), so the grain is a row
// count; candidate gains are O(n²) each, so there the grain is 1.
const (
	apsGrain     = 64 // sources per updateAPSP / rows per objective reduction
	gainGrain    = 1  // candidate pairs per gain evaluation
	closureGrain = 16 // Dijkstra sources per fiberClosure fan-out
)

// Link is one built microwave city-city link.
type Link struct {
	I, J int
	Dist float64 // latency-equivalent meters (m_ij)
	Cost float64 // towers (c_ij)
}

// Topology is a (partial) design: the set of built microwave links over the
// always-available fiber substrate, with the hybrid all-pairs shortest
// latency-distance matrix maintained incrementally.
type Topology struct {
	P     *Problem
	Built []Link

	d      [][]float64 // hybrid latency-equivalent APSP
	fiberD [][]float64 // fiber-only metric closure (for pruning/baselines)
	cost   float64

	// built holds the normalized (i<j) pairs of Built for O(1) HasLink.
	// It is materialized from Built on the first query (sync.Once, so
	// concurrent first reads are safe) rather than maintained eagerly:
	// the exact solvers clone topologies once per branch-and-bound node
	// and never call HasLink, so they must not pay for map copies.
	builtOnce sync.Once
	built     map[[2]int]struct{}
}

// NewTopology returns the fiber-only topology for p (no microwave links).
func NewTopology(p *Problem) *Topology {
	fd := p.fiberClosure()
	d := make([][]float64, p.N)
	for i := range d {
		d[i] = make([]float64, p.N)
		copy(d[i], fd[i])
	}
	return &Topology{P: p, d: d, fiberD: fd}
}

// Clone returns an independent copy of the topology.
func (t *Topology) Clone() *Topology {
	c := &Topology{P: t.P, fiberD: t.fiberD, cost: t.cost}
	c.Built = append([]Link(nil), t.Built...)
	c.d = make([][]float64, len(t.d))
	for i := range t.d {
		c.d[i] = append([]float64(nil), t.d[i]...)
	}
	return c
}

// normPair returns the (min,max) normalization of a link key.
func normPair(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// AddLink builds the microwave link (i,j) and updates the APSP matrix in
// O(n²) using the single-edge-insertion identity.
func (t *Topology) AddLink(i, j int) {
	w := t.P.MW[i][j]
	t.Built = append(t.Built, Link{I: i, J: j, Dist: w, Cost: t.P.MWCost[i][j]})
	if t.built != nil {
		t.built[normPair(i, j)] = struct{}{}
	}
	t.cost += t.P.MWCost[i][j]
	obs.Active().Counter("cisp_design_apsp_updates_total").Inc()
	updateAPSP(t.d, i, j, w)
}

// updateAPSP relaxes all pairs through a new edge (i,j) of weight w.
//
// At greedy scale (n > apsGrain) the endpoint rows are snapshotted first,
// so every source relaxes against the pre-insertion distances: the
// single-edge-insertion identity needs nothing newer (a shortest path uses
// the new edge at most once), and it makes the per-source relaxations
// order-independent — the pool fans them out with results bit-identical at
// every worker count. Small instances (the exact solvers' regime, where
// AddLink sits inside a branch-and-bound loop) keep the allocation-free
// in-place scan; the gate depends only on n, never on the worker count.
func updateAPSP(d [][]float64, i, j int, w float64) {
	n := len(d)
	if n <= apsGrain {
		for s := 0; s < n; s++ {
			relaxRow(d[s], d[i], d[j], i, j, w, n)
		}
		return
	}
	di := append([]float64(nil), d[i]...)
	dj := append([]float64(nil), d[j]...)
	parallel.For(n, apsGrain, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			relaxRow(d[s], di, dj, i, j, w, n)
		}
	})
}

// relaxRow relaxes one source row through the new edge (i,j): ds[u] =
// min(ds[u], ds[i]+w+dj[u], ds[j]+w+di[u]), where di/dj are the edge
// endpoints' distance rows.
func relaxRow(ds, di, dj []float64, i, j int, w float64, n int) {
	dsi, dsj := ds[i], ds[j]
	if math.IsInf(dsi, 1) && math.IsInf(dsj, 1) {
		return
	}
	for u := 0; u < n; u++ {
		via1 := dsi + w + dj[u]
		via2 := dsj + w + di[u]
		if via1 < ds[u] {
			ds[u] = via1
		}
		if via2 < ds[u] {
			ds[u] = via2
		}
	}
}

// CostUsed returns the total towers consumed by built links.
func (t *Topology) CostUsed() float64 { return t.cost }

// Dist returns the current hybrid latency-equivalent distance between sites.
func (t *Topology) Dist(i, j int) float64 { return t.d[i][j] }

// FiberDist returns the fiber-only latency-equivalent distance.
func (t *Topology) FiberDist(i, j int) float64 { return t.fiberD[i][j] }

// stretchSum is a partial traffic-weighted stretch accumulation.
type stretchSum struct{ num, den float64 }

// stretchOver reduces Σ h_st·d[s][u]/geo_su (and Σ h_st) over all s<u pairs
// of the given distance matrix. At greedy scale the row sums fan out on the
// pool; the chunk-ordered merge keeps the float result independent of the
// worker count. Small instances (objective() runs per branch-and-bound
// node) take the plain accumulation — the gate depends only on n.
func (p *Problem) stretchOver(d [][]float64) stretchSum {
	if p.N <= apsGrain {
		var acc stretchSum
		for s := 0; s < p.N; s++ {
			acc = acc.addRow(p, d, s)
		}
		return acc
	}
	return parallel.Reduce(p.N, apsGrain, func(lo, hi int) stretchSum {
		var acc stretchSum
		for s := lo; s < hi; s++ {
			acc = acc.addRow(p, d, s)
		}
		return acc
	}, func(a, b stretchSum) stretchSum {
		return stretchSum{a.num + b.num, a.den + b.den}
	})
}

// addRow accumulates source row s of the stretch sum.
func (acc stretchSum) addRow(p *Problem, d [][]float64, s int) stretchSum {
	for u := s + 1; u < p.N; u++ {
		h := p.Traffic[s][u]
		if h == 0 {
			continue
		}
		acc.num += h * d[s][u] / p.Geodesic[s][u]
		acc.den += h
	}
	return acc
}

// MeanStretch returns the traffic-weighted mean stretch,
// Σ h_st · (D_st/d_st) / Σ h_st — the paper's objective normalised per unit
// traffic. Pairs with zero traffic are ignored.
func (t *Topology) MeanStretch() float64 {
	s := t.P.stretchOver(t.d)
	if s.den == 0 {
		return math.NaN()
	}
	return s.num / s.den
}

// objective is the un-normalised Σ h_st·D_st/d_st (what the solvers
// minimise; same argmin as MeanStretch).
func (t *Topology) objective() float64 {
	return t.P.stretchOver(t.d).num
}

// gainOf returns the objective decrease from adding link (i,j) to the
// current topology, in O(n²), without mutating state.
func (t *Topology) gainOf(i, j int) float64 {
	p := t.P
	w := p.MW[i][j]
	gain := 0.0
	d := t.d
	for s := 0; s < p.N; s++ {
		dsi, dsj := d[s][i], d[s][j]
		for u := s + 1; u < p.N; u++ {
			h := p.Traffic[s][u]
			if h == 0 {
				continue
			}
			cur := d[s][u]
			alt := math.Min(dsi+w+d[j][u], dsj+w+d[i][u])
			if alt < cur {
				gain += h * (cur - alt) / p.Geodesic[s][u]
			}
		}
	}
	return gain
}

// HasLink reports whether the (i,j) microwave link is built. O(1) after
// the first call: backed by a set keyed on the normalized pair, built once
// from Built (concurrent first calls are safe; like every other accessor,
// HasLink must not race with AddLink).
func (t *Topology) HasLink(i, j int) bool {
	t.builtOnce.Do(func() {
		m := make(map[[2]int]struct{}, len(t.Built))
		for _, l := range t.Built {
			m[normPair(l.I, l.J)] = struct{}{}
		}
		t.built = m
	})
	_, ok := t.built[normPair(i, j)]
	return ok
}

// MeanFiberStretch returns the traffic-weighted mean stretch of the
// fiber-only baseline (no MW links) — the paper's ~1.93× reference.
func (t *Topology) MeanFiberStretch() float64 {
	s := t.P.stretchOver(t.fiberD)
	if s.den == 0 {
		return math.NaN()
	}
	return s.num / s.den
}
