package cisp

import (
	"math"
	"sync"
	"testing"

	"cisp/internal/los"
)

var usOnce struct {
	sync.Once
	s *Scenario
}

func usScenario(t testing.TB) *Scenario {
	t.Helper()
	usOnce.Do(func() {
		usOnce.s = NewScenario(ScenarioConfig{Region: US, Scale: ScaleSmall, Seed: 7, MaxCities: 15})
	})
	return usOnce.s
}

func TestScenarioConstruction(t *testing.T) {
	s := usScenario(t)
	if len(s.Cities) != 15 {
		t.Fatalf("city count = %d, want 15", len(s.Cities))
	}
	if s.Registry.Len() == 0 {
		t.Fatal("no towers generated")
	}
	if s.Links.FeasibleHops() == 0 {
		t.Fatal("no feasible hops")
	}
}

func TestProblemAssembly(t *testing.T) {
	s := usScenario(t)
	p, err := s.Problem(s.PopulationTraffic(), s.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Budget != 25*15 {
		t.Fatalf("default budget = %v, want 375", p.Budget)
	}
}

func TestProblemRejectsWrongMatrix(t *testing.T) {
	s := usScenario(t)
	bad := make(TrafficMatrix, 3)
	for i := range bad {
		bad[i] = make([]float64, 3)
	}
	if _, err := s.Problem(bad, 100); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestDesignEndToEnd(t *testing.T) {
	s := usScenario(t)
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Built) == 0 {
		t.Fatal("design built nothing")
	}
	stretch := top.MeanStretch()
	fiberStretch := top.MeanFiberStretch()
	if stretch >= fiberStretch {
		t.Fatalf("design stretch %v no better than fiber %v", stretch, fiberStretch)
	}
	// The paper reaches ~1.05–1.2 even at reduced density; accept < 1.5.
	if stretch > 1.5 {
		t.Errorf("design stretch %v unexpectedly high", stretch)
	}
	t.Logf("15-city small-scale design: stretch %.3f (fiber %.3f), %d links, %v towers",
		stretch, fiberStretch, len(top.Built), top.CostUsed())
}

func TestDesignCISPNoWorseThanGreedy(t *testing.T) {
	s := usScenario(t)
	tm := s.PopulationTraffic()
	g, err := s.DesignGreedy(tm, 200)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.DesignCISP(tm, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanStretch() > g.MeanStretch()+1e-9 {
		t.Fatalf("cISP design (%v) worse than greedy (%v)", c.MeanStretch(), g.MeanStretch())
	}
}

func TestProvisionAndCost(t *testing.T) {
	s := usScenario(t)
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	const aggregate = 20.0 // Gbps
	demand := scaleTo(tm, aggregate)
	plan := s.Provision(top, demand)
	if plan.TowersUsed == 0 {
		t.Fatal("plan uses no towers")
	}
	perGB := s.CostPerGB(plan, aggregate)
	if perGB <= 0 {
		t.Fatal("non-positive cost per GB")
	}
	// Order of magnitude: the paper's 100 Gbps full-scale network costs
	// $0.81/GB; reduced scale at lower aggregate may sit higher, but must
	// stay within an order of magnitude.
	if perGB > 10 {
		t.Errorf("cost per GB $%.2f out of plausible range", perGB)
	}
	t.Logf("provisioned %d installs, %d new towers, %d towers used, $%.2f/GB at %v Gbps",
		plan.HopInstalls, plan.NewTowers, plan.TowersUsed, perGB, aggregate)
}

func TestScenarioDeterminism(t *testing.T) {
	a := NewScenario(ScenarioConfig{Scale: ScaleSmall, Seed: 3, MaxCities: 8})
	b := NewScenario(ScenarioConfig{Scale: ScaleSmall, Seed: 3, MaxCities: 8})
	if a.Registry.Len() != b.Registry.Len() || a.Links.FeasibleHops() != b.Links.FeasibleHops() {
		t.Fatal("scenario construction not deterministic")
	}
	for i := range a.Cities {
		for j := range a.Cities {
			if a.Links.MWDist(i, j) != b.Links.MWDist(i, j) {
				t.Fatal("link distances differ across identical seeds")
			}
		}
	}
}

func TestLOSOverride(t *testing.T) {
	// A 60 km range must never find more feasible hops than 100 km.
	p60 := los.DefaultParams()
	p60.MaxRange = 60e3
	short := NewScenario(ScenarioConfig{Scale: ScaleSmall, Seed: 5, MaxCities: 8, LOS: p60})
	long := NewScenario(ScenarioConfig{Scale: ScaleSmall, Seed: 5, MaxCities: 8})
	if short.Links.FeasibleHops() > long.Links.FeasibleHops() {
		t.Fatalf("60 km range found more hops (%d) than 100 km (%d)",
			short.Links.FeasibleHops(), long.Links.FeasibleHops())
	}
}

func TestEuropeScenario(t *testing.T) {
	s := NewScenario(ScenarioConfig{Region: Europe, Scale: ScaleSmall, Seed: 11, MaxCities: 12})
	if len(s.Cities) != 12 {
		t.Fatalf("Europe cities = %d", len(s.Cities))
	}
	top, err := s.DesignGreedy(s.PopulationTraffic(), s.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if top.MeanStretch() >= top.MeanFiberStretch() {
		t.Fatal("Europe design did not improve on fiber")
	}
}

func scaleTo(tm TrafficMatrix, aggregate float64) TrafficMatrix {
	total := tm.Total()
	out := tm.Clone()
	if total == 0 {
		return out
	}
	for i := range out {
		for j := range out[i] {
			out[i][j] *= aggregate / total
		}
	}
	return out
}

func TestScaleToHelper(t *testing.T) {
	s := usScenario(t)
	d := scaleTo(s.PopulationTraffic(), 42)
	if math.Abs(d.Total()-42) > 1e-9 {
		t.Fatalf("scaled total = %v", d.Total())
	}
}
