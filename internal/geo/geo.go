// Package geo provides the geodesic and microwave-propagation primitives the
// cISP design pipeline is built on: great-circle distances on a spherical
// Earth, c-latency computation, and the Fresnel-zone / Earth-bulge clearance
// formulae of §3.1 of the paper.
//
// Conventions: coordinates are degrees (north/east positive), distances are
// typed units.Meters, durations are time.Duration. A Point is a small
// comparable value type, so it can be used directly as a map key.
package geo

import (
	"fmt"
	"math"
	"time"

	"cisp/internal/units"
)

const (
	// EarthRadius is the mean Earth radius in meters (IUGG R1).
	EarthRadius = 6371008.8

	// C is the speed of light in vacuum, in meters per second. Microwave
	// links propagate at essentially this speed; the paper's "c-latency"
	// between two sites is geodesic distance divided by C.
	C = 299792458.0

	// FiberLatencyFactor converts a fiber route length into a c-equivalent
	// distance: light in silica travels at roughly 2/3 c, so the paper
	// multiplies fiber distances by 1.5 when comparing against microwave
	// (§3.2, "which we multiply by 1.5 to account for fiber's higher
	// latency").
	FiberLatencyFactor = 1.5
)

// Point is a position on the Earth's surface in degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.Lat, p.Lon)
}

// Valid reports whether p is a plausible surface coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func rad(deg float64) float64 { return deg * math.Pi / 180 }
func deg(rad float64) float64 { return rad * 180 / math.Pi }

// DistanceTo returns the great-circle (geodesic) distance from p to q,
// using the haversine formula, which is numerically stable for the
// short and medium distances that dominate tower-to-tower hops.
func (p Point) DistanceTo(q Point) units.Meters {
	φ1, φ2 := rad(p.Lat), rad(q.Lat)
	dφ := rad(q.Lat - p.Lat)
	dλ := rad(q.Lon - p.Lon)
	s1 := math.Sin(dφ / 2)
	s2 := math.Sin(dλ / 2)
	a := s1*s1 + math.Cos(φ1)*math.Cos(φ2)*s2*s2
	if a > 1 {
		a = 1
	}
	return units.Meters(2 * EarthRadius * math.Asin(math.Sqrt(a)))
}

// InitialBearingTo returns the initial great-circle bearing from p to q in
// degrees clockwise from north, in [0, 360).
func (p Point) InitialBearingTo(q Point) float64 {
	φ1, φ2 := rad(p.Lat), rad(q.Lat)
	dλ := rad(q.Lon - p.Lon)
	y := math.Sin(dλ) * math.Cos(φ2)
	x := math.Cos(φ1)*math.Sin(φ2) - math.Sin(φ1)*math.Cos(φ2)*math.Cos(dλ)
	θ := deg(math.Atan2(y, x))
	return math.Mod(θ+360, 360)
}

// Destination returns the point reached by travelling dist from p along
// the given initial bearing (degrees clockwise from north).
func (p Point) Destination(bearingDeg float64, dist units.Meters) Point {
	δ := float64(dist) / EarthRadius
	θ := rad(bearingDeg)
	φ1 := rad(p.Lat)
	λ1 := rad(p.Lon)
	sinφ2 := math.Sin(φ1)*math.Cos(δ) + math.Cos(φ1)*math.Sin(δ)*math.Cos(θ)
	φ2 := math.Asin(sinφ2)
	y := math.Sin(θ) * math.Sin(δ) * math.Cos(φ1)
	x := math.Cos(δ) - math.Sin(φ1)*sinφ2
	λ2 := λ1 + math.Atan2(y, x)
	lon := math.Mod(deg(λ2)+540, 360) - 180
	return Point{Lat: deg(φ2), Lon: lon}
}

// Intermediate returns the point a fraction f of the way along the great
// circle from p to q (f=0 yields p, f=1 yields q).
func (p Point) Intermediate(q Point, f float64) Point {
	d := float64(p.DistanceTo(q)) / EarthRadius
	if d == 0 {
		return p
	}
	sinD := math.Sin(d)
	a := math.Sin((1-f)*d) / sinD
	b := math.Sin(f*d) / sinD
	φ1, λ1 := rad(p.Lat), rad(p.Lon)
	φ2, λ2 := rad(q.Lat), rad(q.Lon)
	x := a*math.Cos(φ1)*math.Cos(λ1) + b*math.Cos(φ2)*math.Cos(λ2)
	y := a*math.Cos(φ1)*math.Sin(λ1) + b*math.Cos(φ2)*math.Sin(λ2)
	z := a*math.Sin(φ1) + b*math.Sin(φ2)
	φ := math.Atan2(z, math.Sqrt(x*x+y*y))
	λ := math.Atan2(y, x)
	return Point{Lat: deg(φ), Lon: deg(λ)}
}

// Midpoint returns the point halfway along the great circle from p to q.
func (p Point) Midpoint(q Point) Point { return p.Intermediate(q, 0.5) }

// CLatency returns the one-way speed-of-light travel time over dist — the
// paper's "c-latency" when dist is the geodesic distance between sites.
func CLatency(dist units.Meters) time.Duration {
	return time.Duration(float64(dist) / C * float64(time.Second))
}

// FiberLatency returns the one-way latency of a fiber route of the given
// physical length, accounting for the ~2/3 c propagation speed in silica.
func FiberLatency(routeLen units.Meters) time.Duration {
	return time.Duration(float64(routeLen) * FiberLatencyFactor / C * float64(time.Second))
}

// Stretch returns the ratio of an achieved latency-equivalent path length to
// the geodesic distance — the paper's headline metric. It returns +Inf for a
// zero geodesic to keep callers' min/max logic simple.
func Stretch(pathLen, geodesic units.Meters) float64 {
	if geodesic <= 0 {
		return math.Inf(1)
	}
	return units.Ratio(pathLen, geodesic)
}
