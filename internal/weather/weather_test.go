package weather

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"cisp/internal/cities"
	"cisp/internal/design"
	"cisp/internal/fiber"
	"cisp/internal/geo"
	"cisp/internal/linkbuild"
	"cisp/internal/los"
	"cisp/internal/parallel"
	"cisp/internal/terrain"
	"cisp/internal/towers"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

func TestSpecificAttenuationMonotone(t *testing.T) {
	f := func(r1, r2 float64) bool {
		a := math.Mod(math.Abs(r1), 150)
		b := math.Mod(math.Abs(r2), 150)
		if a > b {
			a, b = b, a
		}
		return SpecificAttenuation(a, 11) <= SpecificAttenuation(b, 11)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpecificAttenuationAnchors(t *testing.T) {
	// At 11 GHz and 50 mm/h the ITU power law gives roughly 2 dB/km
	// (k≈0.017, α≈1.22 → 0.017·50^1.22 ≈ 2).
	got := SpecificAttenuation(50, 11)
	if got < 1 || got > 4 {
		t.Fatalf("γ(50mm/h, 11GHz) = %v dB/km, want ~2", got)
	}
	if SpecificAttenuation(0, 11) != 0 {
		t.Fatal("zero rain must give zero attenuation")
	}
	// Higher frequency attenuates more.
	if SpecificAttenuation(50, 18) <= SpecificAttenuation(50, 6) {
		t.Fatal("attenuation should grow with frequency")
	}
}

func TestFieldDeterministic(t *testing.T) {
	g := &Generator{Seed: 4, MinLat: 30, MaxLat: 45, MinLon: -110, MaxLon: -80}
	a := g.FieldAt(100, 5)
	b := g.FieldAt(100, 5)
	if len(a.Cells) != len(b.Cells) || len(a.Bands) != len(b.Bands) {
		t.Fatal("field generation not deterministic")
	}
	p := geo.Point{Lat: 38, Lon: -95}
	if a.RainRate(p) != b.RainRate(p) {
		t.Fatal("rain rate not deterministic")
	}
}

func TestStormCellProfile(t *testing.T) {
	f := &Field{Cells: []StormCell{{
		Center: geo.Point{Lat: 40, Lon: -100}, Radius: 20e3, PeakMM: 60,
	}}}
	at := f.RainRate(geo.Point{Lat: 40, Lon: -100})
	near := f.RainRate(geo.Point{Lat: 40.2, Lon: -100})
	far := f.RainRate(geo.Point{Lat: 43, Lon: -100})
	if math.Abs(at-60) > 1e-9 {
		t.Fatalf("peak rain = %v, want 60", at)
	}
	if !(near < at && near > 0) {
		t.Fatalf("rain at 22km = %v, want between 0 and peak", near)
	}
	if far != 0 {
		t.Fatalf("rain 330km away = %v, want 0", far)
	}
}

func TestFrontalBand(t *testing.T) {
	f := &Field{Bands: []FrontalBand{{
		A: geo.Point{Lat: 35, Lon: -100}, B: geo.Point{Lat: 45, Lon: -100},
		Width: 50e3, RateMM: 15,
	}}}
	if r := f.RainRate(geo.Point{Lat: 40, Lon: -100}); r != 15 {
		t.Fatalf("in-band rain = %v, want 15", r)
	}
	if r := f.RainRate(geo.Point{Lat: 40, Lon: -95}); r != 0 {
		t.Fatalf("rain 400km off-band = %v, want 0", r)
	}
}

func TestHopFailsUnderHeavyRain(t *testing.T) {
	// A 50 km hop through a 100 mm/h storm core: γ ≈ 0.017·100^1.22 ≈ 5
	// dB/km → way beyond any margin.
	f := &Field{Cells: []StormCell{{
		Center: geo.Point{Lat: 40, Lon: -100}, Radius: 60e3, PeakMM: 100,
	}}}
	a := geo.Point{Lat: 40, Lon: -100.3}
	b := geo.Point{Lat: 40, Lon: -99.7}
	if !f.HopFails(a, b, 11, DefaultFadeMargin) {
		t.Fatal("hop through storm core should fail")
	}
	dry := &Field{}
	if dry.HopFails(a, b, 11, DefaultFadeMargin) {
		t.Fatal("dry hop failed")
	}
}

func TestPathAttenuationAdditive(t *testing.T) {
	// Attenuation over a longer path through uniform rain grows ~linearly.
	f := &Field{Bands: []FrontalBand{{
		A: geo.Point{Lat: 20, Lon: -100}, B: geo.Point{Lat: 60, Lon: -100},
		Width: 500e3, RateMM: 20,
	}}}
	a := geo.Point{Lat: 40, Lon: -100}
	short := f.PathAttenuation(a, geo.Point{Lat: 40.2, Lon: -100}, 11, 1000)
	long := f.PathAttenuation(a, geo.Point{Lat: 40.4, Lon: -100}, 11, 1000)
	if ratio := float64(long / short); math.Abs(ratio-2) > 0.1 {
		t.Fatalf("attenuation ratio = %v, want ~2 for double distance", ratio)
	}
}

var fixtureOnce struct {
	sync.Once
	top   *design.Topology
	links *linkbuild.Links
}

// yearFixture builds (once) the midwest 8-city topology shared by the
// year-analysis tests.
func yearFixture(t testing.TB) (*design.Topology, *linkbuild.Links) {
	t.Helper()
	fixtureOnce.Do(func() {
		all := cities.USCenters()
		names := []string{"Chicago, IL", "Indianapolis, IN", "St. Louis, MO", "Columbus, OH", "Detroit, MI", "Milwaukee, WI", "Louisville, KY", "Cincinnati, OH"}
		var cs []cities.City
		for _, name := range names {
			c, _ := cities.ByName(all, name)
			cs = append(cs, c)
		}
		reg := towers.Generate(towers.GenConfig{Seed: 3, RuralPerCell: 2, CityTowerScale: 12}, cs)
		ev := los.NewEvaluator(terrain.Flat(), los.DefaultParams())
		links := linkbuild.Build(cs, reg, ev, linkbuild.Config{})
		fn := fiber.Synthesize(fiber.Config{Seed: 5}, cs)
		n := len(cs)
		mk := func() [][]float64 {
			m := make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
			}
			return m
		}
		p := &design.Problem{N: n, Budget: 200, Traffic: traffic.PopulationProduct(cs),
			Geodesic: mk(), MW: mk(), MWCost: mk(), FiberLat: mk()}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p.Geodesic[i][j] = float64(cs[i].Loc.DistanceTo(cs[j].Loc))
				p.MW[i][j] = float64(links.MWDist(i, j))
				p.MWCost[i][j] = float64(links.TowerCount(i, j))
				p.FiberLat[i][j] = float64(fn.LatencyDist(i, j))
			}
		}
		fixtureOnce.top = design.Greedy(p, design.GreedyOptions{})
		fixtureOnce.links = links
	})
	return fixtureOnce.top, fixtureOnce.links
}

var yearOnce struct {
	sync.Once
	an *YearAnalysis
}

func yearAnalysis(t testing.TB) *YearAnalysis {
	t.Helper()
	yearOnce.Do(func() {
		top, links := yearFixture(t)
		gen := &Generator{Seed: 11, MinLat: 37, MaxLat: 43, MinLon: -92, MaxLon: -81}
		yearOnce.an = AnalyzeYear(top, links, gen, Config{Days: 120, Seed: 2})
	})
	return yearOnce.an
}

func TestYearAnalysisShape(t *testing.T) {
	an := yearAnalysis(t)
	if len(an.Best) == 0 {
		t.Fatal("no pairs analyzed")
	}
	for i := range an.Best {
		if an.Best[i] > an.P99[i]+1e-9 || an.P99[i] > an.Worst[i]+1e-9 {
			t.Fatalf("pair %d: ordering violated best=%v p99=%v worst=%v",
				i, an.Best[i], an.P99[i], an.Worst[i])
		}
		if an.Worst[i] > an.Fiber[i]+1e-9 {
			t.Fatalf("pair %d: weather stretch %v exceeds fiber fallback %v",
				i, an.Worst[i], an.Fiber[i])
		}
		if an.Best[i] < 1 {
			t.Fatalf("pair %d: best stretch %v < 1", i, an.Best[i])
		}
	}
}

func TestYearAnalysisFig7Property(t *testing.T) {
	// The paper's headline: 99th-percentile latencies are nearly the best,
	// and even the worst weather beats fiber by a wide margin in the median.
	an := yearAnalysis(t)
	mBest, mP99 := Median(an.Best), Median(an.P99)
	if mP99 > mBest*1.35 {
		t.Errorf("median 99th-pctile stretch %v too far above best %v", mP99, mBest)
	}
	mWorst, mFiber := Median(an.Worst), Median(an.Fiber)
	if mWorst >= mFiber {
		t.Errorf("median worst-case %v not better than fiber %v", mWorst, mFiber)
	}
	t.Logf("median stretch: best %.3f, p99 %.3f, worst %.3f, fiber %.3f",
		mBest, mP99, mWorst, mFiber)
}

func TestHFTTraceStatistics(t *testing.T) {
	trace := HFTTrace(1)
	if len(trace) != 2743 {
		t.Fatalf("trace length %d, want 2743 minutes", len(trace))
	}
	sum := 0.0
	s := append([]float64(nil), trace...)
	sort.Float64s(s)
	for _, v := range trace {
		if v < 0 || v > 1 {
			t.Fatalf("loss %v outside [0,1]", v)
		}
		sum += v
	}
	mean := sum / float64(len(trace))
	median := s[len(s)/2]
	// Paper: mean 16.1%, median 1.4%.
	if mean < 0.10 || mean > 0.22 {
		t.Errorf("trace mean loss %v, want ≈0.161", mean)
	}
	if median < 0.005 || median > 0.03 {
		t.Errorf("trace median loss %v, want ≈0.014", median)
	}
	t.Logf("HFT trace: mean %.3f (paper 0.161), median %.3f (paper 0.014)", mean, median)
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty should be NaN")
	}
	if m := Median([]float64{7}); m != 7 {
		t.Fatalf("median of single sample = %v, want 7", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("median of even-length slice = %v, want 2.5", m)
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
	single := []float64{42}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := quantile(single, q); v != 42 {
			t.Fatalf("quantile(%v) of single sample = %v, want 42", q, v)
		}
	}
	s := []float64{1, 2, 3, 4, 5}
	if v := quantile(s, 0); v != 1 {
		t.Fatalf("q=0 should be the minimum, got %v", v)
	}
	if v := quantile(s, 1); v != 5 {
		t.Fatalf("q=1 should be the maximum, got %v", v)
	}
	if v := quantile(s, 0.5); v != 3 {
		t.Fatalf("q=0.5 = %v, want 3", v)
	}
}

func TestCapacityFraction(t *testing.T) {
	const m = DefaultFadeMargin
	if f := CapacityFraction(0, m); f != 1 {
		t.Fatalf("clear sky fraction = %v, want 1", f)
	}
	if f := CapacityFraction(-1, m); f != 1 {
		t.Fatalf("negative attenuation fraction = %v, want 1", f)
	}
	if f := CapacityFraction(m+0.001, m); f != 0 {
		t.Fatalf("past-margin fraction = %v, want 0 (outage)", f)
	}
	if f := CapacityFraction(m, m); f != float64(acmMinBits)/acmMaxBits {
		t.Fatalf("at-margin fraction = %v, want QPSK floor %v", f, float64(acmMinBits)/acmMaxBits)
	}
	// Monotone non-increasing across the ladder.
	prev := 1.0
	for a := units.DB(0); a <= m+3; a += 0.25 {
		f := CapacityFraction(a, m)
		if f > prev+1e-12 {
			t.Fatalf("fraction increased: f(%v)=%v after %v", a, f, prev)
		}
		prev = f
	}
	// A mid-margin fade must land strictly between outage and clear sky.
	if f := CapacityFraction(m/2, m); f <= 0 || f >= 1 {
		t.Fatalf("half-margin fraction = %v, want graded value in (0,1)", f)
	}
}

// TestConditionsMatchHopFails: the graded model's binary verdict must agree
// with the legacy per-hop HopFails rule on the real fixture.
func TestConditionsMatchHopFails(t *testing.T) {
	top, links := yearFixture(t)
	lg := NewLinkGeometry(top, links)
	if lg.NumLinks() != len(top.Built) {
		t.Fatalf("geometry covers %d links, topology built %d", lg.NumLinks(), len(top.Built))
	}
	gen := &Generator{Seed: 11, MinLat: 37, MaxLat: 43, MinLon: -92, MaxLon: -81}
	field := gen.FieldAt(200, 30) // mid-summer: convection likely
	conds := lg.Conditions(field, geo.DefaultFrequencyGHz, DefaultFadeMargin, nil)
	for li, hops := range lg.hops {
		anyFail := false
		for _, h := range hops {
			if field.HopFails(h[0], h[1], geo.DefaultFrequencyGHz, DefaultFadeMargin) {
				anyFail = true
				break
			}
		}
		if anyFail != conds[li].Failed {
			t.Fatalf("link %d: HopFails says %v, Conditions says %v", li, anyFail, conds[li].Failed)
		}
		if conds[li].Failed && conds[li].CapFrac != 0 {
			t.Fatalf("link %d: failed but capacity fraction %v", li, conds[li].CapFrac)
		}
		if !conds[li].Failed && conds[li].CapFrac <= 0 {
			t.Fatalf("link %d: alive but capacity fraction %v", li, conds[li].CapFrac)
		}
	}
}

// TestAnalyzeYearParallelDeterminism: the dynamic engine's determinism
// contract — a wide pool must reproduce the one-worker run bit-for-bit on
// every output field, across multiple seeds (mirroring
// internal/design/parallel_test.go).
func TestAnalyzeYearParallelDeterminism(t *testing.T) {
	top, links := yearFixture(t)
	sameF64 := func(label string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: sequential %v, parallel %v", label, i, a[i], b[i])
			}
		}
	}
	sameInt := func(label string, a, b []int) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: sequential %v, parallel %v", label, i, a[i], b[i])
			}
		}
	}
	for seed := int64(0); seed < 2; seed++ {
		gen := &Generator{Seed: 20 + seed, MinLat: 37, MaxLat: 43, MinLon: -92, MaxLon: -81}
		cfg := Config{Days: 90, Seed: 5 + seed}

		prev := parallel.SetWorkers(1)
		seq := AnalyzeYear(top, links, gen, cfg)
		parallel.SetWorkers(8)
		par := AnalyzeYear(top, links, gen, cfg)
		parallel.SetWorkers(prev)

		sameF64("Best", seq.Best, par.Best)
		sameF64("P99", seq.P99, par.P99)
		sameF64("Worst", seq.Worst, par.Worst)
		sameF64("Fiber", seq.Fiber, par.Fiber)
		sameF64("MeanCapacityPerDay", seq.MeanCapacityPerDay, par.MeanCapacityPerDay)
		sameInt("FailedLinksPerDay", seq.FailedLinksPerDay, par.FailedLinksPerDay)
		sameInt("DegradedLinksPerDay", seq.DegradedLinksPerDay, par.DegradedLinksPerDay)
		sameInt("Intervals", seq.Intervals, par.Intervals)
	}
}

// TestAnalyzeYearGradedStats: the graded record must be shaped and bounded
// like a real fleet log.
func TestAnalyzeYearGradedStats(t *testing.T) {
	an := yearAnalysis(t)
	days := len(an.FailedLinksPerDay)
	if len(an.DegradedLinksPerDay) != days || len(an.MeanCapacityPerDay) != days || len(an.Intervals) != days {
		t.Fatalf("per-day series disagree on length: failed %d, degraded %d, cap %d, intervals %d",
			days, len(an.DegradedLinksPerDay), len(an.MeanCapacityPerDay), len(an.Intervals))
	}
	sawDegraded := false
	for day := 0; day < days; day++ {
		if iv := an.Intervals[day]; iv < 0 || iv > 47 {
			t.Fatalf("day %d: interval %d outside [0,47]", day, iv)
		}
		if c := an.MeanCapacityPerDay[day]; c < 0 || c > 1 {
			t.Fatalf("day %d: mean capacity %v outside [0,1]", day, c)
		}
		if an.FailedLinksPerDay[day] > 0 && an.MeanCapacityPerDay[day] >= 1 {
			t.Fatalf("day %d: %d failures but full fleet capacity", day, an.FailedLinksPerDay[day])
		}
		if an.DegradedLinksPerDay[day] > 0 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("120 midwest days without a single degraded link — graded model is inert")
	}
}
