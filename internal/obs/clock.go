package obs

import (
	"sync"
	"time"
)

// ManualClock is a hand-advanced Clock for tests and deterministic
// harnesses: Now returns the last value set, never the wall clock, so any
// component that takes an obs.Clock — sink timers, the control-plane
// daemon's snapshot stamps — becomes fully reproducible. Safe for
// concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a manual clock pinned at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current reading.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new reading.
// Negative durations are ignored: the clock never runs backwards, so
// timers fed from it observe non-negative elapsed times.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// Set jumps the clock to t when t is later than the current reading (the
// monotone guarantee of Advance holds across both methods).
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Clock adapts the manual clock to the obs.Clock function type.
func (c *ManualClock) Clock() Clock { return c.Now }
