// Package dotimport pins that unitcheck resolves unit types through a
// dot-import, where the use site names the type with no qualifier at all.
package dotimport

import . "cisp/internal/units"

func f(km Km) Meters {
	return Meters(km) // want `drops the scale factor`
}
