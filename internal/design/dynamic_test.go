package design

import (
	"math"
	"math/rand"
	"testing"
)

// rebuildWithout is the ground truth for DistWithout: a full fiber-closure
// rebuild plus re-insertion of every surviving link (what the weather
// analysis did per day before Dynamic existed).
func rebuildWithout(t *Topology, removed []int) *Topology {
	isRemoved := make(map[int]bool, len(removed))
	for _, li := range removed {
		isRemoved[li] = true
	}
	surv := NewTopology(t.P)
	for li, l := range t.Built {
		if !isRemoved[li] {
			surv.AddLink(l.I, l.J)
		}
	}
	return surv
}

func assertDistMatch(t *testing.T, label string, got [][]float64, want *Topology, n int) {
	t.Helper()
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			g, w := got[s][u], want.Dist(s, u)
			if math.IsInf(g, 1) && math.IsInf(w, 1) {
				continue
			}
			tol := 1e-9 * math.Max(1, w)
			if math.Abs(g-w) > tol {
				t.Fatalf("%s: dist(%d,%d) = %v, rebuild gives %v", label, s, u, g, w)
			}
		}
	}
}

// TestDynamicRemovalMatchesRebuild: removing any subset of built links via
// the incremental path must reproduce the full-rebuild distances.
func TestDynamicRemovalMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		p := randomProblem(seed+900, 14, 120)
		top := Greedy(p, GreedyOptions{})
		if len(top.Built) < 3 {
			t.Fatalf("seed %d: greedy built only %d links", seed, len(top.Built))
		}
		dy := NewDynamic(top)
		sc := dy.NewScratch()
		rng := rand.New(rand.NewSource(seed))

		cases := [][]int{
			nil, // no removals: alias of the base matrix
			{0}, // single edge
			{len(top.Built) - 1},
			allIndices(len(top.Built)), // everything down → fiber only
		}
		// A few random subsets, scratch reused across calls.
		for k := 0; k < 4; k++ {
			var sub []int
			for li := range top.Built {
				if rng.Intn(2) == 0 {
					sub = append(sub, li)
				}
			}
			cases = append(cases, sub)
		}
		for ci, removed := range cases {
			got := dy.DistWithout(removed, sc)
			want := rebuildWithout(top, removed)
			assertDistMatch(t, "case", got, want, p.N)
			if ci == 0 && &got[0][0] != &top.d[0][0] {
				t.Fatal("empty removal should alias the topology's own matrix")
			}
		}
	}
}

// TestDynamicConcurrentScratches: one Dynamic, many goroutines, each with
// its own scratch — results must match the sequential ground truth.
func TestDynamicConcurrentScratches(t *testing.T) {
	p := randomProblem(42, 12, 100)
	top := Greedy(p, GreedyOptions{})
	if len(top.Built) == 0 {
		t.Fatal("greedy built nothing")
	}
	dy := NewDynamic(top)
	const workers = 4
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sc := dy.NewScratch()
			for rep := 0; rep < 8; rep++ {
				removed := []int{(w + rep) % len(top.Built)}
				got := dy.DistWithout(removed, sc)
				want := rebuildWithout(top, removed)
				for s := 0; s < p.N; s++ {
					for u := 0; u < p.N; u++ {
						if math.Abs(got[s][u]-want.Dist(s, u)) > 1e-9*math.Max(1, want.Dist(s, u)) {
							done <- errMismatch
							return
						}
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent DistWithout diverged from rebuild")

type errString string

func (e errString) Error() string { return string(e) }

// BenchmarkDynamicRemoval compares incremental edge removal against the
// full fiber-closure rebuild it replaced in the weather engine
// (DESIGN.md §4), at a typical stormy-interval removal count.
func BenchmarkDynamicRemoval(b *testing.B) {
	p := randomProblem(7, 60, 1e9)
	top := Greedy(p, GreedyOptions{})
	if len(top.Built) < 2 {
		b.Fatal("greedy built too few links")
	}
	removed := []int{0, len(top.Built) / 2}
	b.Run("incremental", func(b *testing.B) {
		dy := NewDynamic(top)
		sc := dy.NewScratch()
		for i := 0; i < b.N; i++ {
			dy.DistWithout(removed, sc)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rebuildWithout(top, removed)
		}
	})
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
