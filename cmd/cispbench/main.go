// Command cispbench regenerates the paper's tables and figures as text.
//
// Usage:
//
//	cispbench [-scale small|medium|full] [-seed N] [-fig all|2,3,4a,...]
//
// Each figure's output is the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cisp"
	"cisp/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "scenario scale: small, medium, full")
	seed := flag.Int64("seed", 1, "scenario seed")
	figs := flag.String("fig", "all", "comma-separated figure list (2,3,4a,4b,4c,5,6,7,8,9,10,11,12,13,econ) or 'all'")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Out: os.Stdout}
	switch strings.ToLower(*scale) {
	case "small":
		opt.Scale = cisp.ScaleSmall
	case "medium":
		opt.Scale = cisp.ScaleMedium
	case "full":
		opt.Scale = cisp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"2", "3", "4a", "4b", "4c", "5", "6", "7", "8", "9", "10", "11", "12", "13", "econ", "ext"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	run := func(name string, fn func()) {
		if !want[name] {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("  [%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	budgets := []float64{0, 200, 500, 1000, 2000, 4000}
	aggregates := []float64{20, 50, 100, 200, 500, 1000}
	loads := []float64{10, 30, 50, 70, 90, 110, 140, 170}
	if opt.Scale == cisp.ScaleSmall {
		budgets = []float64{0, 100, 250, 500, 1000}
		aggregates = []float64{10, 25, 50, 100, 200}
	}

	run("2", func() {
		sizes := []int{4, 6, 8, 10, 12}
		if opt.Scale != cisp.ScaleSmall {
			sizes = []int{5, 10, 15, 20, 30, 40, 60}
		}
		experiments.Fig2Scaling(opt, sizes, 12, 5)
	})
	run("3", func() { experiments.Fig3USNetwork(opt) })
	run("4a", func() { experiments.Fig4aStretchVsBudget(opt, budgets) })
	run("4b", func() { experiments.Fig4bDisjointPaths(opt, 20) })
	run("4c", func() { experiments.Fig4cCostPerGB(opt, aggregates) })
	run("5", func() { experiments.Fig5Perturbation(opt, []float64{0, 0.1, 0.3, 0.5}, loads) })
	run("6", func() { experiments.Fig6SpeedMismatch(opt, 10, 3) })
	run("7", func() { experiments.Fig7Weather(opt, 365) })
	run("8", func() { experiments.Fig8Europe(opt) })
	run("9", func() { experiments.Fig9TrafficModels(opt, aggregates) })
	run("10", func() {
		experiments.Fig10TowerConstraints(opt, [][2]float64{
			{100, 0.85}, {80, 1.0}, {100, 0.65}, {70, 1.0}, {100, 0.45},
			{70, 0.45}, {60, 1.0}, {60, 0.65}, {60, 0.45},
		})
	})
	run("11", func() { experiments.Fig11MixDeviation(opt, loads) })
	run("12", func() {
		experiments.Fig12Gaming(opt, []float64{0, 25, 50, 75, 100, 150, 200, 250, 300})
	})
	run("13", func() { experiments.Fig13WebBrowsing(opt, 80) })
	run("econ", func() { experiments.CostBenefit(opt, 0.81) })
	run("ext", func() { experiments.Extensions(opt) })
}
