package netsim

import (
	"fmt"
	"math/rand"

	"cisp/internal/parallel"
)

// Mode selects the simulation engine a Scenario runs on.
type Mode int

// Engine modes.
const (
	// PacketMode is the discrete-event per-packet engine: full queuing,
	// loss and TCP dynamics, practical up to ~10³-10⁴ flows.
	PacketMode Mode = iota
	// FluidMode is the flow-level max-min engine: no queuing transients,
	// practical up to 10⁵-10⁶ concurrent flows.
	FluidMode
)

func (m Mode) String() string {
	switch m {
	case PacketMode:
		return "packet"
	case FluidMode:
		return "fluid"
	}
	return "unknown"
}

// ParseMode parses "packet" or "fluid".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "packet":
		return PacketMode, nil
	case "fluid":
		return FluidMode, nil
	}
	return 0, fmt.Errorf("netsim: unknown mode %q (want packet or fluid)", s)
}

// Scenario is a declarative bulk-simulation input shared by both engines:
// a topology, routed commodities (each carrying Count concurrent flows of
// FlowBytes payload), and a horizon. The same Scenario can be run in
// packet mode for microscopic fidelity and in fluid mode for scale; both
// route with ComputeRoutes, so per-flow paths are identical across modes
// and per-flow mean rates are directly comparable.
type Scenario struct {
	Nodes  int
	Links  []TopoLink
	Comms  []Commodity
	Scheme Scheme

	FlowBytes   int     // payload per flow (default 100 KB)
	Horizon     float64 // simulated seconds (default 30)
	StartSpread float64 // flow starts drawn uniformly from [0, StartSpread] (0 = all at t=0)
	Seed        int64   // start-time randomness (packet and fluid draw identically)
	Pacing      bool    // packet mode: TCP pacing
	QueueCap    int     // packet mode: per-link queue override (0 = keep TopoLink values)
	RateTol     float64 // fluid mode: reschedule-suppression tolerance
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	Flow        int     // commodity flow ID this flow ran on
	Start       float64 // start time, seconds
	FCT         float64 // flow completion time, seconds (0 if incomplete)
	Completed   bool
	MeanRateBps float64 // payload*8/FCT when completed, served*8/elapsed otherwise
}

// ScenarioResult is the outcome of one Scenario run.
type ScenarioResult struct {
	Mode      Mode
	Flows     []FlowResult
	Completed int
	End       float64 // simulation end time
}

// FCTs returns the completion times of all completed flows, in flow order.
func (r *ScenarioResult) FCTs() []float64 {
	var out []float64
	for _, f := range r.Flows {
		if f.Completed {
			out = append(out, f.FCT)
		}
	}
	return out
}

// MeanRateByCommodity averages per-flow mean rates per commodity flow ID.
func (r *ScenarioResult) MeanRateByCommodity() map[int]float64 {
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, f := range r.Flows {
		sum[f.Flow] += f.MeanRateBps
		cnt[f.Flow]++
	}
	out := make(map[int]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	return out
}

func (sc *Scenario) defaults() (flowBytes int, horizon float64) {
	flowBytes = sc.FlowBytes
	if flowBytes == 0 {
		flowBytes = 100 << 10
	}
	horizon = sc.Horizon
	if horizon == 0 {
		horizon = 30
	}
	return
}

// starts draws the per-flow start times; identical in both modes so the
// engines see the same offered load. Flows are ordered commodity-major.
func (sc *Scenario) starts(total int) []float64 {
	out := make([]float64, total)
	if sc.StartSpread <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	for i := range out {
		out[i] = rng.Float64() * sc.StartSpread
	}
	return out
}

// Run executes the scenario on the selected engine.
func (sc *Scenario) Run(mode Mode) *ScenarioResult {
	if mode == FluidMode {
		return sc.runFluid()
	}
	return sc.runPacket()
}

// RunMany fans independent scenario runs out over the shared worker pool
// (internal/parallel), preserving input order. Each run owns its simulator,
// so results are bit-identical to sequential execution at any pool width.
func RunMany(scs []*Scenario, mode Mode) []*ScenarioResult {
	return parallel.Map(len(scs), 1, func(i int) *ScenarioResult {
		return scs[i].Run(mode)
	})
}

func (sc *Scenario) runPacket() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	links := sc.Links
	if sc.QueueCap > 0 {
		links = append([]TopoLink(nil), sc.Links...)
		for i := range links {
			links[i].QueueCap = sc.QueueCap
		}
	}
	var sim Simulator
	nw := NewNetwork(&sim, sc.Nodes)
	BuildTopology(nw, links)
	paths := ComputeRoutes(sc.Nodes, links, sc.Comms, sc.Scheme)

	// Flow IDs: each commodity keeps its own ID for its first flow; clones
	// get fresh IDs past the maximum so delivery demux stays per-flow.
	nextID := 0
	for _, c := range sc.Comms {
		if c.Flow >= nextID {
			nextID = c.Flow + 1
		}
	}
	total := 0
	for _, c := range sc.Comms {
		if paths[c.Flow] != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: PacketMode}
	type live struct {
		conn *TCPConn
		idx  int // index into res.Flows
	}
	var conns []live
	fi := 0
	for _, c := range sc.Comms {
		path := paths[c.Flow]
		if path == nil {
			continue
		}
		rev := make([]int, len(path))
		for i, v := range path {
			rev[len(path)-1-i] = v
		}
		for k := 0; k < max(c.Count, 1); k++ {
			id := c.Flow
			if k > 0 {
				id = nextID
				nextID++
			}
			nw.SetFlowPath(id, path)
			nw.SetFlowPath(id, rev)
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			conn := &TCPConn{
				Net: nw, Flow: id, Src: c.Src, Dst: c.Dst,
				FlowSize: flowBytes, Pacing: sc.Pacing,
			}
			conn.Done = func(fct float64) {
				res.Flows[idx].FCT = fct
				res.Flows[idx].Completed = true
				res.Flows[idx].MeanRateBps = float64(flowBytes) * 8 / fct
				res.Completed++
			}
			conns = append(conns, live{conn: conn, idx: idx})
			sim.Schedule(startAt[fi], conn.Start)
			fi++
		}
	}
	sim.Run(horizon)
	res.End = sim.Now()
	for _, l := range conns {
		fr := &res.Flows[l.idx]
		if fr.Completed {
			continue
		}
		if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = float64(l.conn.Acked()) * 8 / el
		}
	}
	return res
}

func (sc *Scenario) runFluid() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	f := NewFluid(sc.Nodes, sc.Links)
	f.RateTol = sc.RateTol
	paths := ComputeRoutes(sc.Nodes, sc.Links, sc.Comms, sc.Scheme)

	total := 0
	for _, c := range sc.Comms {
		if paths[c.Flow] != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: FluidMode}
	type live struct {
		fid int // fluid flow ID
		idx int
	}
	var flows []live
	fi := 0
	for _, c := range sc.Comms {
		path := paths[c.Flow]
		if path == nil {
			continue
		}
		r := f.AddRoute(path)
		for k := 0; k < max(c.Count, 1); k++ {
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			fid := f.StartAt(r, float64(flowBytes), startAt[fi])
			flows = append(flows, live{fid: fid, idx: idx})
			fi++
		}
	}
	f.Run(horizon)
	res.End = f.Now()
	for _, l := range flows {
		fr := &res.Flows[l.idx]
		if fct, done := f.FCT(l.fid); done {
			fr.FCT = fct
			fr.Completed = true
			fr.MeanRateBps = float64(flowBytes) * 8 / fct
			res.Completed++
		} else if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = f.ServedBytes(l.fid) * 8 / el
		}
	}
	return res
}
