// Command cisplint runs the cisp static-analysis suite (internal/analysis):
// determinism, maporder, hotpathalloc and paraclosure — the invariants
// DESIGN.md §9 documents.
//
// It runs in two modes:
//
//   - Standalone: `cisplint [packages]` loads the named module packages
//     (or ./... patterns) from source and reports findings. This is
//     hermetic — no go list, no export data — and is what the repo-wide
//     meta-test (internal/analysis/suite) mirrors.
//
//   - Vet tool: `go vet -vettool=$(which cisplint) ./...` drives cisplint
//     through cmd/go's unit-checker protocol: cmd/go invokes the tool once
//     per package with a JSON config file argument, and the tool
//     type-checks that unit against the export data cmd/go already built.
//
// Exit status is 1 when any unsuppressed finding is reported, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cisp/internal/analysis"
	"cisp/internal/analysis/loader"
	"cisp/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cisplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	printVersion := fs.String("V", "", "print version and exit (cmd/go protocol; use -V=full)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cisplint [package ...]   (standalone; defaults to ./...)\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which cisplint) ./...\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// cmd/go probes its vet tool with `-V=full` (for the build cache key)
	// and `-flags` (for flag validation) before any unit runs. Both must
	// answer in the exact format cmd/go parses.
	if *printVersion != "" {
		if *printVersion != "full" {
			fmt.Fprintf(stderr, "cisplint: unsupported -V=%s\n", *printVersion)
			return 2
		}
		return versionAndBuildID(stdout, stderr)
	}
	if *printFlags {
		// No analyzer exposes flags; cmd/go accepts an empty JSON array.
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], stderr)
	}
	return standalone(rest, stdout, stderr)
}

// versionAndBuildID implements the `-V=full` handshake: cmd/go caches vet
// results keyed by the tool's content hash, so the line must change
// whenever the binary does.
func versionAndBuildID(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "cisplint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// vetConfig is the JSON cmd/go writes into the unit's .cfg file. Field
// names and shapes follow x/tools' unitchecker protocol.
type vetConfig struct {
	ID                        string            // package ID as known to cmd/go
	Compiler                  string            // "gc"
	Dir                       string            // package directory
	ImportPath                string            //
	GoVersion                 string            // minimum Go version, e.g. "go1.24"
	GoFiles                   []string          // absolute paths of the unit's Go files
	NonGoFiles                []string          //
	IgnoredFiles              []string          //
	ModulePath                string            //
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool   // packages in the standard library
	PackageVetx               map[string]string // package path → vet facts (unused here)
	VetxOnly                  bool              // only facts are needed, not diagnostics
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool              // exit 0 on type errors (go vet std behavior)
}

// vetUnit analyzes one compilation unit under the go vet protocol.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cisplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go requires the facts file to exist even when empty; writing it
	// first also covers every early-return path below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // we export no facts, so dependency-only runs are no-ops
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled,
	// looked up via ImportMap (import path as written → canonical path)
	// then PackageFile (canonical path → .a/.x file).
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}

	findings, err := analysis.RunUnit(fset, files, pkg, info, suite.All())
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// standalone loads packages with the module-source loader and analyzes
// them, test files included.
func standalone(patterns []string, stdout, stderr io.Writer) int {
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	paths, err := expandPatterns(l, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cisplint: %v\n", err)
		return 1
	}
	analyzers := suite.All()
	total := 0
	broken := false
	for _, ip := range paths {
		units := make([]*loader.Package, 0, 2)
		p, err := l.Load(ip, true)
		if err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			broken = true
			continue
		}
		units = append(units, p)
		x, err := l.LoadXTest(ip)
		if err != nil {
			fmt.Fprintf(stderr, "cisplint: %v\n", err)
			broken = true
		} else if x != nil {
			units = append(units, x)
		}
		for _, u := range units {
			findings, err := analysis.RunUnit(u.Fset, u.Files, u.Types, u.Info, analyzers)
			if err != nil {
				fmt.Fprintf(stderr, "cisplint: %v\n", err)
				broken = true
				continue
			}
			for _, f := range findings {
				total++
				fmt.Fprintf(stdout, "%s\n", f)
			}
		}
	}
	if broken || total > 0 {
		return 1
	}
	return 0
}

// expandPatterns resolves command-line package patterns to module import
// paths. Supported: "./...", "pattern/...", import paths, and relative
// directories; no arguments means the whole module.
func expandPatterns(l *loader.Loader, patterns []string) ([]string, error) {
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return all, nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(ip string) {
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	for _, pat := range patterns {
		ip, recursive, err := normalizePattern(l, pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, cand := range all {
			if cand == ip || (recursive && (ip == l.ModulePath || strings.HasPrefix(cand, ip+"/"))) {
				add(cand)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}

// normalizePattern maps one CLI pattern to (import path prefix, recursive).
func normalizePattern(l *loader.Loader, pat string) (string, bool, error) {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "." || pat == "" {
			return l.ModulePath, true, nil
		}
	}
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		abs, err := filepath.Abs(pat)
		if err != nil {
			return "", false, err
		}
		rel, err := filepath.Rel(l.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", false, fmt.Errorf("%s is outside module %s", pat, l.ModulePath)
		}
		if rel == "." {
			return l.ModulePath, recursive, nil
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel), recursive, nil
	}
	return pat, recursive, nil
}
