package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer records nestable stage spans and exports them as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
//
// Determinism: a span's identity is (path, index) — its "/"-joined name
// chain from the root and its occurrence ordinal among same-path spans —
// and its ID is an FNV-64a hash of (seed, path, index). The exported
// layout is derived purely from the tree's structure: siblings are sorted
// by (name, index), a span's duration is 1 + its item count + the sum of
// its children's durations, and timestamps follow from that recursively.
// No clock value ever reaches the trace file, so two same-seed runs of a
// deterministic pipeline export byte-identical traces even though their
// goroutines interleaved differently. The convention that makes the tree
// itself run-independent: spans opened concurrently under one parent must
// carry distinct names (embed the task index or label in the name).
//
// Wall time surfaces only through OnEvent (the -progress feed), stamped by
// the tracer's clock when one is injected.
type Tracer struct {
	// OnEvent, when non-nil, receives a SpanEvent at every span begin and
	// end, outside the tracer's lock. Set it before the first span.
	OnEvent func(SpanEvent)

	mu     sync.Mutex
	seed   int64
	clock  Clock
	roots  []*Span
	occurs map[string]int // path -> occurrences so far
}

// SpanEvent is one span transition, feeding progress reporting.
type SpanEvent struct {
	End     bool          // false: span began; true: span ended
	Path    string        // full "/"-joined span path
	Items   int64         // items recorded on the span (end events)
	Elapsed time.Duration // wall elapsed at end; zero without a clock
}

// NewTracer returns a tracer whose span IDs are seeded with seed. clock
// may be nil: spans then carry no wall time (trace output is unaffected —
// it never contains wall time).
func NewTracer(seed int64, clock Clock) *Tracer {
	return &Tracer{seed: seed, clock: clock, occurs: map[string]int{}}
}

// Span is one traced stage. A nil *Span is a valid no-op (disabled
// tracer), so callers never guard. Spans are not goroutine-safe
// individually: a span is owned by the goroutine that opened it, and
// concurrent work hangs child spans (with distinct names) off one parent.
type Span struct {
	tr       *Tracer
	parent   *Span
	name     string
	path     string
	index    int
	id       uint64
	items    int64
	start    time.Time
	children []*Span
}

// begin opens a span under parent (nil for a root).
func (t *Tracer) begin(parent *Span, name string) *Span {
	sp := &Span{tr: t, parent: parent, name: name}
	if parent != nil {
		sp.path = parent.path + "/" + name
	} else {
		sp.path = name
	}
	t.mu.Lock()
	sp.index = t.occurs[sp.path]
	t.occurs[sp.path]++
	sp.id = spanID(t.seed, sp.path, sp.index)
	if parent != nil {
		parent.children = append(parent.children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	clock, onEvent := t.clock, t.OnEvent
	t.mu.Unlock()
	if clock != nil {
		sp.start = clock()
	}
	if onEvent != nil {
		onEvent(SpanEvent{Path: sp.path})
	}
	return sp
}

// Child opens a nested span. Nil-safe.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.begin(sp, name)
}

// SetItems records the span's work-unit count (events processed, flows
// replayed, links built): it widens the span in the trace layout and
// feeds the items/sec column of progress reporting. Nil-safe.
func (sp *Span) SetItems(n int64) {
	if sp == nil {
		return
	}
	sp.items = n
}

// AddItems adds to the span's work-unit count. Nil-safe.
func (sp *Span) AddItems(n int64) {
	if sp == nil {
		return
	}
	sp.items += n
}

// End closes the span, firing the tracer's OnEvent with wall elapsed when
// a clock is injected. Nil-safe.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	clock, onEvent := sp.tr.clock, sp.tr.OnEvent
	sp.tr.mu.Unlock()
	if onEvent == nil {
		return
	}
	ev := SpanEvent{End: true, Path: sp.path, Items: sp.items}
	if clock != nil && !sp.start.IsZero() {
		ev.Elapsed = clock().Sub(sp.start)
	}
	onEvent(ev)
}

// ID returns the span's deterministic ID (0 on nil).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// spanID hashes (seed, path, index) with FNV-64a.
func spanID(seed int64, path string, index int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(index>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}

// layoutDur returns a span's deterministic duration in trace ticks
// (rendered as microseconds): one tick of own time, plus one tick per
// recorded item, plus its children.
func layoutDur(sp *Span) int64 {
	d := int64(1) + sp.items
	for _, c := range sp.children {
		d += layoutDur(c)
	}
	return d
}

// sortSpans orders siblings by (name, index) — the deterministic sibling
// order the layout and the export walk share.
func sortSpans(spans []*Span) []*Span {
	out := append([]*Span(nil), spans...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].name != out[b].name {
			return out[a].name < out[b].name
		}
		return out[a].index < out[b].index
	})
	return out
}

// WriteTrace exports the tracer's spans as Chrome trace_event JSON
// ("traceEvents" array of complete events). Byte-deterministic: the
// layout is structure-derived (see the Tracer doc), wall time never
// appears. Call after the traced work is done; open spans export like
// closed ones.
func WriteTrace(w io.Writer, t *Tracer) error {
	t.mu.Lock()
	roots := sortSpans(t.roots)
	t.mu.Unlock()
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	var ts int64
	for _, r := range roots {
		if err := writeSpan(w, r, ts, &first); err != nil {
			return err
		}
		ts += layoutDur(r)
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// writeSpan emits one complete event and recurses into sorted children.
func writeSpan(w io.Writer, sp *Span, ts int64, first *bool) error {
	sep := ",\n"
	if *first {
		sep = ""
		*first = false
	}
	line := sep + `{"name":` + strconv.Quote(sp.name) +
		`,"cat":"stage","ph":"X","ts":` + strconv.FormatInt(ts, 10) +
		`,"dur":` + strconv.FormatInt(layoutDur(sp), 10) +
		`,"pid":1,"tid":1,"args":{"id":"` + strconv.FormatUint(sp.id, 16) +
		`","path":` + strconv.Quote(sp.path) +
		`,"items":` + strconv.FormatInt(sp.items, 10) + `}}`
	if _, err := io.WriteString(w, line); err != nil {
		return err
	}
	child := ts + 1
	for _, c := range sortSpans(sp.children) {
		if err := writeSpan(w, c, child, first); err != nil {
			return err
		}
		child += layoutDur(c)
	}
	return nil
}
