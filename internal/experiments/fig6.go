package experiments

import (
	"math/rand"

	"cisp/internal/netsim"
)

// Fig6Case is one speed-mismatch configuration's result.
type Fig6Case struct {
	Name          string
	QueueMedian   float64 // packets at the ingress bottleneck
	Queue95th     float64
	FCTMedianMs   float64
	FCT95thMs     float64
	CompletedFlow int
}

// Fig6SpeedMismatch reproduces Fig 6: several sources send 100 KB TCP flows
// through a middlebox M to a sink D over a fixed 100 Mbps M→D link. The
// source→M links are either 100 Mbps (control) or 10 Gbps (speed mismatch),
// with TCP pacing on or off. Flow arrivals are Poisson at 70% of the
// bottleneck. Pacing removes the persistent ingress queue without hurting
// flow completion times.
func Fig6SpeedMismatch(opt Options, simSeconds float64, runs int) []Fig6Case {
	w := opt.out()
	if simSeconds == 0 {
		simSeconds = 10
	}
	if runs == 0 {
		runs = 3
	}
	fprintf(w, "Fig 6 — ingress speed mismatch (10 × 100KB TCP flows, 70%% load)\n")
	fprintf(w, "%-18s %10s %10s %12s %12s\n", "case", "q median", "q 95th", "FCT med(ms)", "FCT 95(ms)")

	cases := []struct {
		name    string
		ingress float64
		pacing  bool
	}{
		{"100M", 100e6, false},
		{"10G no pacing", 10e9, false},
		{"10G pacing", 10e9, true},
	}
	var out []Fig6Case
	for _, c := range cases {
		var queues []int
		var fcts []float64
		completed := 0
		for run := 0; run < runs; run++ {
			q, f := fig6Run(c.ingress, c.pacing, simSeconds, opt.Seed+int64(run))
			queues = append(queues, q...)
			fcts = append(fcts, f...)
			completed += len(f)
		}
		res := Fig6Case{
			Name:          c.name,
			QueueMedian:   netsim.PercentileInts(queues, 50),
			Queue95th:     netsim.PercentileInts(queues, 95),
			FCTMedianMs:   netsim.Percentile(fcts, 50) * 1000,
			FCT95thMs:     netsim.Percentile(fcts, 95) * 1000,
			CompletedFlow: completed,
		}
		out = append(out, res)
		fprintf(w, "%-18s %10.1f %10.1f %12.1f %12.1f\n",
			res.Name, res.QueueMedian, res.Queue95th, res.FCTMedianMs, res.FCT95thMs)
	}
	return out
}

// fig6Run executes one simulation: 10 sources (nodes 0-9), middlebox M
// (node 10), sink D (node 11); M-D fixed at 100 Mbps with an unbounded
// queue, as in §5's "speed mismatch" study.
func fig6Run(ingressBps float64, pacing bool, simSeconds float64, seed int64) (queueSamples []int, fcts []float64) {
	const (
		nSrc       = 10
		mNode      = 10
		dNode      = 11
		flowBytes  = 100_000
		bottleneck = 100e6
		loadFrac   = 0.70
	)
	var sim netsim.Simulator
	nw := netsim.NewNetwork(&sim, nSrc+2)
	for i := 0; i < nSrc; i++ {
		nw.AddDuplex(i, mNode, ingressBps, 0.002, 0)
	}
	nw.AddDuplex(mNode, dNode, bottleneck, 0.005, 0) // unbounded queue at M

	rng := rand.New(rand.NewSource(seed))
	// Poisson flow arrivals at 70% of the bottleneck.
	arrivalRate := loadFrac * bottleneck / (flowBytes * 8) // flows per second
	flowID := 0
	var schedule func()
	schedule = func() {
		gap := rng.ExpFloat64() / arrivalRate
		sim.Schedule(gap, func() {
			if sim.Now() > simSeconds {
				return
			}
			flowID++
			src := rng.Intn(nSrc)
			id := flowID
			nw.SetFlowPath(id, []int{src, mNode, dNode})
			nw.SetFlowPath(id, []int{dNode, mNode, src})
			conn := &netsim.TCPConn{
				Net: nw, Flow: id, Src: src, Dst: dNode,
				FlowSize: flowBytes, Pacing: pacing, InitRTT: 0.02,
				Done: func(f float64) { fcts = append(fcts, f) },
			}
			conn.Start()
			schedule()
		})
	}
	schedule()

	sampler := &netsim.QueueSampler{Link: nw.Link(mNode, dNode), Period: 0.001}
	sampler.Start(&sim)
	sim.Run(simSeconds + 3) // include drain time
	sampler.Stop()
	return sampler.Samples(), fcts
}
