package cisp

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocLint enforces the repo's documentation floor: every Go
// package — the root library, every internal package, every command and
// every example — must carry a package-level doc comment ("// Package x
// ..." or the command/example narrative form) on at least one of its
// non-test files. A package without one is invisible to godoc and to the
// next person grepping for what a subsystem does, and the README's
// architecture map rots fastest where the packages themselves say nothing.
func TestPackageDocLint(t *testing.T) {
	dirs := []string{"."}
	for _, root := range []string{"internal", "cmd", "examples"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("reading %s: %v", root, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(root, e.Name()))
			}
		}
	}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		var goFiles []string
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				goFiles = append(goFiles, filepath.Join(dir, name))
			}
		}
		if len(goFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		documented := false
		var pkgName string
		for _, f := range goFiles {
			// PackageClauseOnly+ParseComments keeps the lint fast and
			// resilient: a syntactically broken body elsewhere cannot hide a
			// missing doc comment.
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", f, err)
				continue
			}
			pkgName = af.Name.Name
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %q (%s) has no package-level doc comment on any file", pkgName, dir)
		}
	}
}
