package design

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem generates a planar design instance: sites in a ~1000 km box,
// microwave links near-geodesic (some infeasible), fiber ~1.9× latency.
func randomProblem(seed int64, n int, budget float64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 1000e3
		ys[i] = rng.Float64() * 800e3
	}
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	p := &Problem{
		N: n, Traffic: mk(), Geodesic: mk(), MW: mk(), MWCost: mk(), FiberLat: mk(),
		Budget: budget,
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
			if d < 1000 {
				d = 1000
			}
			p.Geodesic[i][j], p.Geodesic[j][i] = d, d
			h := rng.Float64()
			p.Traffic[i][j], p.Traffic[j][i] = h, h
			mw := d * (1.01 + 0.06*rng.Float64())
			cost := math.Ceil(mw / 80e3)
			if rng.Float64() < 0.15 {
				mw, cost = math.Inf(1), 0
			}
			p.MW[i][j], p.MW[j][i] = mw, mw
			p.MWCost[i][j], p.MWCost[j][i] = cost, cost
			fl := d * 1.5 * (1.15 + 0.4*rng.Float64())
			p.FiberLat[i][j], p.FiberLat[j][i] = fl, fl
		}
	}
	return p
}

func TestValidate(t *testing.T) {
	p := randomProblem(1, 6, 10)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	p.Traffic[1][2] = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative traffic accepted")
	}
	p.Traffic[1][2] = 0.5 // asymmetric now
	if err := p.Validate(); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestFiberOnlyTopology(t *testing.T) {
	p := randomProblem(2, 8, 20)
	top := NewTopology(p)
	if got := top.CostUsed(); got != 0 {
		t.Fatalf("fiber-only cost = %v", got)
	}
	s := top.MeanStretch()
	if s < 1.5 || s > 3.5 {
		t.Fatalf("fiber-only mean stretch = %v, want ~1.7-2.9 by construction", s)
	}
	if fs := top.MeanFiberStretch(); fs != s {
		t.Fatalf("MeanFiberStretch (%v) != MeanStretch of empty topology (%v)", fs, s)
	}
}

func TestAddLinkMatchesRecompute(t *testing.T) {
	// Incremental APSP must equal a full Floyd-Warshall over fiber + built links.
	for seed := int64(0); seed < 10; seed++ {
		p := randomProblem(seed, 9, 100)
		top := NewTopology(p)
		rng := rand.New(rand.NewSource(seed + 100))
		var built [][2]int
		for k := 0; k < 5; k++ {
			i, j := rng.Intn(p.N), rng.Intn(p.N)
			if i == j || math.IsInf(p.MW[i][j], 1) {
				continue
			}
			top.AddLink(i, j)
			built = append(built, [2]int{i, j})
		}
		// Recompute from scratch.
		ref := p.fiberClosure()
		for _, b := range built {
			if p.MW[b[0]][b[1]] < ref[b[0]][b[1]] {
				ref[b[0]][b[1]] = p.MW[b[0]][b[1]]
				ref[b[1]][b[0]] = p.MW[b[0]][b[1]]
			}
		}
		floydWarshall(ref)
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if math.Abs(top.Dist(i, j)-ref[i][j]) > 1e-6 {
					t.Fatalf("seed %d: incremental APSP mismatch at (%d,%d): %v vs %v",
						seed, i, j, top.Dist(i, j), ref[i][j])
				}
			}
		}
	}
}

func TestGreedyImprovesAndRespectsBudget(t *testing.T) {
	p := randomProblem(3, 12, 60)
	top := Greedy(p, GreedyOptions{})
	if top.CostUsed() > p.Budget {
		t.Fatalf("greedy used %v towers, budget %v", top.CostUsed(), p.Budget)
	}
	fiberOnly := NewTopology(p).MeanStretch()
	if got := top.MeanStretch(); got >= fiberOnly {
		t.Fatalf("greedy stretch %v did not improve on fiber-only %v", got, fiberOnly)
	}
	if len(top.Built) == 0 {
		t.Fatal("greedy built nothing despite budget")
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	p := randomProblem(4, 8, 0)
	top := Greedy(p, GreedyOptions{})
	if len(top.Built) != 0 {
		t.Fatalf("zero budget built %d links", len(top.Built))
	}
}

func TestGreedyMonotoneInBudget(t *testing.T) {
	// Fig 4a property: more budget, no worse stretch.
	p := randomProblem(5, 12, 0)
	prev := math.Inf(1)
	for _, b := range []float64{0, 20, 40, 80, 160, 320} {
		q := *p
		q.Budget = b
		s := Greedy(&q, GreedyOptions{}).MeanStretch()
		if s > prev+1e-9 {
			t.Fatalf("stretch increased with budget: %v -> %v at budget %v", prev, s, b)
		}
		prev = s
	}
}

func TestGreedyMatchesExactSmall(t *testing.T) {
	// Fig 2b: the cISP heuristic's stretch "matches that of the ILP to two
	// decimal places" on small instances. We require GreedyILP ≤ Exact+0.01
	// and never worse than its own greedy incumbent; plain Greedy's gap is
	// logged for reference.
	for seed := int64(0); seed < 8; seed++ {
		p := randomProblem(seed+50, 7, 25)
		exact := Exact(p, ExactOptions{}).MeanStretch()
		greedy := Greedy(p, GreedyOptions{}).MeanStretch()
		refined := GreedyILP(p, 0).MeanStretch()
		if exact > greedy+1e-9 {
			t.Fatalf("seed %d: exact (%v) worse than greedy (%v)?", seed, exact, greedy)
		}
		if refined-exact > 0.01 {
			t.Errorf("seed %d: GreedyILP %0.4f vs exact %0.4f — gap > 0.01 (two decimal places)", seed, refined, exact)
		}
		if refined > greedy+1e-9 {
			t.Errorf("seed %d: GreedyILP (%v) worse than its own greedy incumbent (%v)", seed, refined, greedy)
		}
		t.Logf("seed %d: exact %0.4f, cISP heuristic %0.4f, plain greedy %0.4f", seed, exact, refined, greedy)
	}
}

func TestFlowILPMatchesExactTiny(t *testing.T) {
	// The Eq. 1 flow formulation and subset B&B must agree — they are the
	// same optimization.
	for seed := int64(0); seed < 4; seed++ {
		p := randomProblem(seed+200, 5, 15)
		exact := Exact(p, ExactOptions{})
		flow, stats, err := FlowILP(p, FlowILPOptions{Prune: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := math.Abs(flow.MeanStretch() - exact.MeanStretch()); d > 1e-6 {
			t.Fatalf("seed %d: flow ILP stretch %v != exact %v (Δ=%v, stats=%+v)",
				seed, flow.MeanStretch(), exact.MeanStretch(), d, stats)
		}
	}
}

func TestFlowILPPruningPreservesOptimum(t *testing.T) {
	p := randomProblem(300, 5, 12)
	with, sWith, err := FlowILP(p, FlowILPOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	without, sWithout, err := FlowILP(p, FlowILPOptions{Prune: false})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(with.MeanStretch() - without.MeanStretch()); d > 1e-6 {
		t.Fatalf("pruning changed the optimum: %v vs %v", with.MeanStretch(), without.MeanStretch())
	}
	if sWith.PrunedVars == 0 {
		t.Error("pruning eliminated no variables on a random instance")
	}
	if sWith.Vars >= sWithout.Vars {
		t.Errorf("pruned problem not smaller: %d vs %d vars", sWith.Vars, sWithout.Vars)
	}
	t.Logf("pruning: %d -> %d vars (%d flow vars eliminated)", sWithout.Vars, sWith.Vars, sWith.PrunedVars)
}

func TestLPRoundingNoBetterThanExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := randomProblem(seed+400, 5, 15)
		exact := Exact(p, ExactOptions{}).MeanStretch()
		rounded, _, err := LPRounding(p, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rounded.CostUsed() > p.Budget {
			t.Fatalf("seed %d: rounding exceeded budget", seed)
		}
		if rounded.MeanStretch() < exact-1e-9 {
			t.Fatalf("seed %d: rounding (%v) beat the optimum (%v)?!", seed, rounded.MeanStretch(), exact)
		}
	}
}

func TestExactRespectsBudget(t *testing.T) {
	p := randomProblem(6, 7, 18)
	top := Exact(p, ExactOptions{})
	if top.CostUsed() > p.Budget {
		t.Fatalf("exact used %v > budget %v", top.CostUsed(), p.Budget)
	}
}

func TestLowerBoundIsLower(t *testing.T) {
	p := randomProblem(7, 10, 40)
	lb := LowerBound(p)
	got := Greedy(p, GreedyOptions{}).MeanStretch()
	if lb > got+1e-9 {
		t.Fatalf("LowerBound (%v) exceeds achievable stretch (%v)", lb, got)
	}
	if lb < 1 {
		t.Fatalf("LowerBound %v < 1 — distances shorter than geodesic?", lb)
	}
}

func TestMeanStretchAtLeastOne(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := randomProblem(seed+500, 10, 50)
		top := Greedy(p, GreedyOptions{})
		if s := top.MeanStretch(); s < 1 {
			t.Fatalf("seed %d: mean stretch %v < 1", seed, s)
		}
	}
}

func TestPerCostGreedyAblation(t *testing.T) {
	// Both scoring rules must produce valid designs; log their difference.
	p := randomProblem(8, 12, 50)
	raw := Greedy(p, GreedyOptions{}).MeanStretch()
	perCost := Greedy(p, GreedyOptions{PerCost: true}).MeanStretch()
	t.Logf("raw-gain greedy %0.4f vs per-cost greedy %0.4f", raw, perCost)
	if perCost < 1 || raw < 1 {
		t.Fatal("invalid stretch")
	}
}

func TestHasLink(t *testing.T) {
	p := randomProblem(9, 6, 100)
	top := NewTopology(p)
	if top.HasLink(0, 1) {
		t.Fatal("empty topology claims a link")
	}
	// Find a feasible pair.
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if !math.IsInf(p.MW[i][j], 1) {
				top.AddLink(i, j)
				if !top.HasLink(i, j) || !top.HasLink(j, i) {
					t.Fatal("HasLink false after AddLink")
				}
				return
			}
		}
	}
}

func BenchmarkGreedy20Cities(b *testing.B) {
	p := randomProblem(1, 20, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(p, GreedyOptions{})
	}
}

func BenchmarkExact7Cities(b *testing.B) {
	p := randomProblem(1, 7, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(p, ExactOptions{})
	}
}

func BenchmarkFlowILP5Cities(b *testing.B) {
	p := randomProblem(1, 5, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FlowILP(p, FlowILPOptions{Prune: true}); err != nil {
			b.Fatal(err)
		}
	}
}
