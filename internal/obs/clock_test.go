package obs

import (
	"testing"
	"time"
)

func TestManualClockAdvanceAndSet(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	c := NewManualClock(t0)
	if got := c.Now(); !got.Equal(t0) {
		t.Fatalf("Now = %v, want %v", got, t0)
	}
	if got := c.Advance(3 * time.Second); !got.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("Advance = %v, want +3s", got)
	}
	// Negative advances and backwards sets are ignored.
	c.Advance(-time.Hour)
	c.Set(t0)
	if got := c.Now(); !got.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("clock ran backwards: %v", got)
	}
	c.Set(t0.Add(time.Minute))
	if got := c.Now(); !got.Equal(t0.Add(time.Minute)) {
		t.Fatalf("Set = %v, want +1m", got)
	}
}

func TestManualClockDrivesSinkTimer(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	s := &Sink{Reg: NewRegistry(), Clock: c.Clock()}
	stop := s.StartTimer("x_seconds")
	c.Advance(250 * time.Millisecond)
	stop()
	h := s.Reg.Histogram("x_seconds")
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got != 0.25 {
		t.Fatalf("sum = %v, want 0.25", got)
	}
}
