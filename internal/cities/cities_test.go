package cities

import (
	"testing"

	"cisp/internal/geo"
)

func TestTopUSCount(t *testing.T) {
	if got := len(TopUS()); got != 200 {
		t.Fatalf("TopUS has %d cities, want 200 (paper's top-200)", got)
	}
}

func TestTopUSValid(t *testing.T) {
	seen := map[string]bool{}
	for _, city := range TopUS() {
		if !city.Loc.Valid() {
			t.Errorf("%s has invalid location %v", city.Name, city.Loc)
		}
		// Contiguous-US bounding box.
		if city.Loc.Lat < 24 || city.Loc.Lat > 50 || city.Loc.Lon < -125 || city.Loc.Lon > -66 {
			t.Errorf("%s at %v is outside the contiguous US", city.Name, city.Loc)
		}
		if city.Population <= 0 {
			t.Errorf("%s has population %d", city.Name, city.Population)
		}
		if seen[city.Name] {
			t.Errorf("duplicate city name %q", city.Name)
		}
		seen[city.Name] = true
	}
}

func TestUSCentersCount(t *testing.T) {
	n := len(USCenters())
	// The paper coalesces the top-200 into 120 population centers; our
	// coordinates are approximate so allow a band around that.
	if n < 100 || n > 140 {
		t.Fatalf("USCenters = %d centers, want ~120", n)
	}
	t.Logf("US centers after 50km coalescing: %d", n)
}

func TestCoalesceMergesSuburbs(t *testing.T) {
	centers := USCenters()
	// Dallas/Fort Worth/Arlington/Plano must all collapse into one center.
	for _, name := range []string{"Fort Worth, TX", "Arlington, TX", "Plano, TX", "Garland, TX"} {
		if _, ok := ByName(centers, name); ok {
			t.Errorf("%s survived coalescing; should merge into the Dallas center", name)
		}
	}
	dallas, ok := ByName(centers, "Dallas, TX")
	if !ok {
		t.Fatal("no Dallas center after coalescing")
	}
	if dallas.Population < 2_500_000 {
		t.Errorf("Dallas center population = %d, want > 2.5M after merging the metroplex", dallas.Population)
	}
}

func TestCoalescePreservesTotalPopulation(t *testing.T) {
	raw := TopUS()
	var want int
	for _, city := range raw {
		want += city.Population
	}
	var got int
	for _, center := range USCenters() {
		got += center.Population
	}
	if got != want {
		t.Fatalf("coalescing changed total population: %d != %d", got, want)
	}
}

func TestCoalesceCentroidWithinCluster(t *testing.T) {
	a := City{Name: "A", Loc: geo.Point{Lat: 40, Lon: -100}, Population: 100}
	b := City{Name: "B", Loc: geo.Point{Lat: 40.1, Lon: -100}, Population: 300}
	out := Coalesce([]City{a, b}, 50e3)
	if len(out) != 1 {
		t.Fatalf("got %d centers, want 1", len(out))
	}
	m := out[0]
	if m.Name != "B" {
		t.Errorf("merged center named %q, want the more populous member B", m.Name)
	}
	// Weighted centroid should be 3/4 of the way toward B.
	wantLat := (40.0*100 + 40.1*300) / 400
	if diff := m.Loc.Lat - wantLat; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("centroid lat = %v, want %v", m.Loc.Lat, wantLat)
	}
}

func TestCoalesceTransitive(t *testing.T) {
	// A-B close, B-C close, A-C far: all three must merge (chain rule).
	a := City{Name: "A", Loc: geo.Point{Lat: 40.0, Lon: -100}, Population: 1}
	b := City{Name: "B", Loc: geo.Point{Lat: 40.4, Lon: -100}, Population: 1}
	cc := City{Name: "C", Loc: geo.Point{Lat: 40.8, Lon: -100}, Population: 1}
	out := Coalesce([]City{a, b, cc}, 50e3)
	if len(out) != 1 {
		t.Fatalf("chained cluster produced %d centers, want 1", len(out))
	}
}

func TestCoalesceIdentityWhenFar(t *testing.T) {
	out := Coalesce([]City{
		{Name: "A", Loc: geo.Point{Lat: 40, Lon: -100}, Population: 5},
		{Name: "B", Loc: geo.Point{Lat: 45, Lon: -90}, Population: 7},
	}, 50e3)
	if len(out) != 2 {
		t.Fatalf("distant cities merged: %d centers", len(out))
	}
	if out[0].Population < out[1].Population {
		t.Error("output not sorted by descending population")
	}
}

func TestEuropeCities(t *testing.T) {
	cs := EuropeCities()
	if len(cs) < 80 {
		t.Fatalf("Europe has %d cities, want a broad set (>80)", len(cs))
	}
	for _, city := range cs {
		if city.Population < 300_000 {
			t.Errorf("%s population %d < 300k threshold", city.Name, city.Population)
		}
		if city.Loc.Lat < 35 || city.Loc.Lat > 62 || city.Loc.Lon < -10 || city.Loc.Lon > 30 {
			t.Errorf("%s at %v outside the Europe study box", city.Name, city.Loc)
		}
	}
}

func TestGoogleDCs(t *testing.T) {
	dcs := GoogleDCs()
	if len(dcs) != 6 {
		t.Fatalf("got %d DCs, want the paper's 6", len(dcs))
	}
	for _, dc := range dcs {
		if dc.Population != 0 {
			t.Errorf("%s: DCs carry no population, got %d", dc.Name, dc.Population)
		}
		if !dc.Loc.Valid() {
			t.Errorf("%s has invalid location", dc.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName(TopUS(), "Chicago, IL"); !ok {
		t.Error("Chicago not found")
	}
	if _, ok := ByName(TopUS(), "Atlantis"); ok {
		t.Error("found a city that should not exist")
	}
}

func TestUSCentersWithinContiguousUS(t *testing.T) {
	for _, center := range USCenters() {
		if center.Loc.Lat < 24 || center.Loc.Lat > 50 {
			t.Errorf("center %s at %v out of range", center.Name, center.Loc)
		}
	}
}

func TestDataCenterIdxAndTZ(t *testing.T) {
	sites := append(USCenters()[:5], GoogleDCs()...)
	idx := DataCenterIdx(sites)
	if len(idx) != len(GoogleDCs()) {
		t.Fatalf("expected %d DC sites, got %v", len(GoogleDCs()), idx)
	}
	for k, i := range idx {
		if i != 5+k {
			t.Fatalf("DC indices should be the appended suffix, got %v", idx)
		}
	}
	// Solar-time offsets: the US east coast is ~UTC-5, the west ~UTC-8,
	// and the ordering follows longitude.
	ny, _ := ByName(sites, "New York")
	la, _ := ByName(sites, "Los Angeles")
	if ny.Name == "" || la.Name == "" {
		t.Skip("expected NY/LA in the top-5 US centers")
	}
	if e, w := TZOffsetHours(ny), TZOffsetHours(la); e <= w || e > -4 || e < -6 || w > -7 || w < -9 {
		t.Fatalf("implausible solar offsets: NY %.2f, LA %.2f", e, w)
	}
}
