package webpage

import (
	"math"
	"sort"
	"testing"
)

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func loadAll(pages []Page, cfg ReplayConfig) (plts, objTimes []float64, c2s, s2c int64) {
	for _, p := range pages {
		r := Replay(p, cfg)
		plts = append(plts, r.PLT)
		objTimes = append(objTimes, r.ObjectTimes...)
		c2s += r.BytesC2S
		s2c += r.BytesS2C
	}
	return
}

func TestCorpusShape(t *testing.T) {
	pages := Corpus(CorpusConfig{Seed: 1})
	if len(pages) != 80 {
		t.Fatalf("corpus has %d pages, want the paper's 80", len(pages))
	}
	var counts []float64
	for _, p := range pages {
		counts = append(counts, float64(len(p.Objects)))
		if p.BaseRTT < 0.02 || p.BaseRTT > 0.15 {
			t.Fatalf("page RTT %v outside recorded range", p.BaseRTT)
		}
		for i, o := range p.Objects {
			if o.Parent >= i {
				t.Fatalf("object %d depends on later object %d", i, o.Parent)
			}
			if o.Origin < 0 || o.Origin >= p.Origins {
				t.Fatalf("object origin out of range")
			}
		}
	}
	m := medianOf(counts)
	if m < 30 || m > 120 {
		t.Fatalf("median objects/page = %v, want Web-like 30-120", m)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(CorpusConfig{Seed: 9})
	b := Corpus(CorpusConfig{Seed: 9})
	for i := range a {
		if len(a[i].Objects) != len(b[i].Objects) || a[i].BaseRTT != b[i].BaseRTT {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestReplayBaselinePositive(t *testing.T) {
	pages := Corpus(CorpusConfig{Seed: 2, Pages: 10})
	for _, p := range pages {
		r := Replay(p, ReplayConfig{})
		if r.PLT <= 0 {
			t.Fatal("non-positive PLT")
		}
		if len(r.ObjectTimes) != len(p.Objects) {
			t.Fatal("missing object timings")
		}
		for _, ot := range r.ObjectTimes {
			if ot <= 0 || ot > r.PLT {
				t.Fatalf("object time %v outside (0, PLT=%v]", ot, r.PLT)
			}
		}
		if r.BytesS2C <= r.BytesC2S {
			t.Fatal("responses should dominate bytes")
		}
	}
}

// TestFig13Reproduction checks the paper's Fig 13 shape: a 66% RTT reduction
// gives a ~31% median PLT reduction (less than the RTT cut because of
// compute), the selective condition is slightly worse (paper: 27%), and
// individual object load times improve more than PLTs (paper: 49%).
func TestFig13Reproduction(t *testing.T) {
	pages := Corpus(CorpusConfig{Seed: 3})
	base, baseObj, _, _ := loadAll(pages, ReplayConfig{})
	cisp, cispObj, _, _ := loadAll(pages, ReplayConfig{RTTScaleC2S: 0.33, RTTScaleS2C: 0.33})
	sel, _, _, _ := loadAll(pages, ReplayConfig{RTTScaleC2S: 0.33, RTTScaleS2C: 1.0})

	pltCut := 1 - medianOf(cisp)/medianOf(base)
	selCut := 1 - medianOf(sel)/medianOf(base)
	objCut := 1 - medianOf(cispObj)/medianOf(baseObj)

	t.Logf("median PLT cut %.0f%% (paper 31%%), selective %.0f%% (paper 27%%), object %.0f%% (paper 49%%)",
		pltCut*100, selCut*100, objCut*100)

	if pltCut < 0.20 || pltCut > 0.50 {
		t.Errorf("cISP PLT reduction %.2f outside the plausible band around the paper's 0.31", pltCut)
	}
	if selCut <= 0 || selCut >= pltCut {
		t.Errorf("selective reduction %.2f should be positive but below full cISP %.2f", selCut, pltCut)
	}
	if objCut <= pltCut {
		t.Errorf("object-level cut %.2f should exceed PLT cut %.2f (compute overhead dilutes PLT)", objCut, pltCut)
	}
	// PLT improvement must be smaller than the 66% RTT improvement.
	if pltCut >= 0.66 {
		t.Errorf("PLT cut %.2f implausibly matches the full RTT cut", pltCut)
	}
}

func TestSelectiveBytesFraction(t *testing.T) {
	// §7.2: the selective mode sends only client→server traffic over cISP —
	// about 8.5% of total bytes in the paper's replay.
	pages := Corpus(CorpusConfig{Seed: 3})
	_, _, c2s, s2c := loadAll(pages, ReplayConfig{})
	frac := float64(c2s) / float64(c2s+s2c)
	t.Logf("client-to-server byte fraction: %.1f%% (paper: 8.5%%)", frac*100)
	if frac <= 0.01 || frac > 0.20 {
		t.Fatalf("upstream byte fraction %.3f outside a single-digit-percent band", frac)
	}
}

func TestSmallObjectsImproveMost(t *testing.T) {
	// Paper: objects under 1460 B improve by 59%, more than large ones whose
	// transfer time is bandwidth-bound. Compare sub-MSS objects against
	// >100 KB objects by mean load time.
	pages := Corpus(CorpusConfig{Seed: 4})
	var smallBase, smallCisp, bigBase, bigCisp float64
	var nSmall, nBig int
	for _, p := range pages {
		rb := Replay(p, ReplayConfig{})
		rc := Replay(p, ReplayConfig{RTTScaleC2S: 0.33, RTTScaleS2C: 0.33})
		for i, o := range p.Objects {
			switch {
			case o.Size < 1460:
				smallBase += rb.ObjectTimes[i]
				smallCisp += rc.ObjectTimes[i]
				nSmall++
			case o.Size > 100_000:
				bigBase += rb.ObjectTimes[i]
				bigCisp += rc.ObjectTimes[i]
				nBig++
			}
		}
	}
	if nSmall == 0 || nBig == 0 {
		t.Skip("degenerate corpus")
	}
	smallCut := 1 - smallCisp/smallBase
	bigCut := 1 - bigCisp/bigBase
	t.Logf("small-object cut %.0f%% (paper 59%%), >100KB-object cut %.0f%%", smallCut*100, bigCut*100)
	if smallCut <= bigCut {
		t.Errorf("small objects (%.2f) should improve more than bandwidth-bound large ones (%.2f)", smallCut, bigCut)
	}
}

func TestRTTScalingMonotone(t *testing.T) {
	pages := Corpus(CorpusConfig{Seed: 5, Pages: 10})
	for _, p := range pages {
		prev := math.Inf(1)
		for _, scale := range []float64{1.0, 0.66, 0.33} {
			r := Replay(p, ReplayConfig{RTTScaleC2S: scale, RTTScaleS2C: scale})
			if r.PLT > prev+1e-12 {
				t.Fatalf("PLT increased when RTT dropped (scale %v)", scale)
			}
			prev = r.PLT
		}
	}
}
