// Package cities embeds the site datasets the paper designs over: the most
// populous cities of the contiguous United States (coalesced into population
// centers as in §4), European cities above 300k inhabitants (§6.2), and the
// six publicly known US Google data-center locations (§6.3).
//
// Populations are 2010-census-era city-proper counts, matching the paper's
// data vintage; coordinates are city centroids. Small inaccuracies are
// irrelevant to the design study — the traffic model only uses population
// products and geodesic distances.
package cities

import (
	"sort"

	"cisp/internal/geo"
	"cisp/internal/units"
)

// City is a design site: a population center, or a data center (Population
// zero) to be interconnected.
type City struct {
	Name       string
	Loc        geo.Point
	Population int // residents; 0 for data centers
}

// CoalesceRadius is the paper's merge distance: "we coalesce suburbs and
// cities within 50 km of each other" (§4).
const CoalesceRadius = 50e3

// USCenters returns the coalesced contiguous-US population centers the paper
// designs for ("ending up with 120 population centers"). The exact count
// depends on the merge order; like the paper we end up with roughly 120.
func USCenters() []City {
	return Coalesce(TopUS(), CoalesceRadius)
}

// EuropeCenters returns the coalesced European sites used for the Fig 8
// study (cities with population more than 300k).
func EuropeCenters() []City {
	return Coalesce(EuropeCities(), CoalesceRadius)
}

// Coalesce merges cities closer than radius into single population
// centers using union-find; each merged center sits at the population-
// weighted centroid of its members and carries their total population. The
// result is sorted by descending population, then name for determinism.
func Coalesce(cs []City, radius units.Meters) []City {
	n := len(cs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cs[i].Loc.DistanceTo(cs[j].Loc) < radius {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([]City, 0, len(groups))
	for _, members := range groups {
		// Name after the most populous member; centroid weighted by pop.
		best := members[0]
		var pop int
		var lat, lon float64
		for _, i := range members {
			pop += cs[i].Population
			w := float64(cs[i].Population)
			if w == 0 {
				w = 1
			}
			lat += cs[i].Loc.Lat * w
			lon += cs[i].Loc.Lon * w
			if cs[i].Population > cs[best].Population {
				best = i
			}
		}
		wTotal := float64(pop)
		if wTotal == 0 {
			wTotal = float64(len(members))
		}
		out = append(out, City{
			Name:       cs[best].Name,
			Loc:        geo.Point{Lat: lat / wTotal, Lon: lon / wTotal},
			Population: pop,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Population != out[j].Population {
			return out[i].Population > out[j].Population
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns the first city with the given name, with ok reporting
// whether it was found.
func ByName(cs []City, name string) (City, bool) {
	for _, c := range cs {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}

// DataCenterIdx returns the indices of the data-center sites in a combined
// site list — the zero-population entries. These are the default serving
// sinks of the workload layer's client-server application classes.
func DataCenterIdx(cs []City) []int {
	var out []int
	for i, c := range cs {
		if c.Population == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TZOffsetHours approximates a site's timezone as solar time: UTC offset =
// longitude / 15°. Within a degree or two of civil time everywhere the
// paper designs for, which is all the diurnal demand model needs —
// timezone-staggered busy hours, not wall clocks.
func TZOffsetHours(c City) float64 { return c.Loc.Lon / 15 }

// GoogleDCs returns the six publicly known contiguous-US Google data-center
// sites the paper uses for the inter-DC and DC-edge traffic models (§6.3).
func GoogleDCs() []City {
	return []City{
		{Name: "Berkeley County, SC", Loc: geo.Point{Lat: 33.06, Lon: -80.04}},
		{Name: "Council Bluffs, IA", Loc: geo.Point{Lat: 41.26, Lon: -95.86}},
		{Name: "Douglas County, GA", Loc: geo.Point{Lat: 33.75, Lon: -84.75}},
		{Name: "Lenoir, NC", Loc: geo.Point{Lat: 35.91, Lon: -81.54}},
		{Name: "Mayes County, OK", Loc: geo.Point{Lat: 36.30, Lon: -95.32}},
		{Name: "The Dalles, OR", Loc: geo.Point{Lat: 45.60, Lon: -121.18}},
	}
}
