package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cisp"
	"cisp/internal/parallel"
	"cisp/internal/workload"
)

// usersTestOpt keeps the scenario-suite tests fast: a 10-city designed
// backbone exercises design → workload compile → TE/FRR → both engines.
func usersTestOpt() Options {
	return Options{Scale: cisp.ScaleSmall, Seed: 1, MaxCities: 10}
}

// usersTestFlows keeps each scenario's replay small enough for the test
// tier while still multiplexing every class onto the backbone.
const usersTestFlows = 600

// TestFigUsersAcceptance is the suite's headline criterion: the sweep
// reports user-visible deltas for all four scenario kinds, every run
// completes its flows, the hybrid's RTT advantage shows up in every
// scenario's QoE, and the disaster scenario reports availability from
// the reoptimizing control loop.
func TestFigUsersAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: four end-to-end scenario replays on a designed backbone")
	}
	var out bytes.Buffer
	opt := usersTestOpt()
	opt.Out = &out
	res := FigUsers(opt, usersTestFlows)
	if res == nil {
		t.Fatalf("FigUsers returned nil:\n%s", out.String())
	}
	if strings.Contains(out.String(), "figusers:") {
		t.Fatalf("sweep reported errors:\n%s", out.String())
	}
	if len(res.Reports) != 4 {
		t.Fatalf("%d reports, want 4", len(res.Reports))
	}
	kinds := map[string]bool{}
	for _, rep := range res.Reports {
		kinds[rep.Kind] = true
		if rep.TotalUsers <= 0 || rep.OfferedGbps <= 0 {
			t.Fatalf("%s: degenerate demand: %+v users, %v Gbps", rep.Name, rep.TotalUsers, rep.OfferedGbps)
		}
		if len(rep.Runs) != 4 {
			t.Fatalf("%s: %d runs, want 4 (2 substrates × 2 engines)", rep.Name, len(rep.Runs))
		}
		// Surged scenarios run congested by design, so a handful of flows
		// may still be draining at the horizon; anything below 95% means
		// the replay is misconfigured, not merely congested.
		for _, run := range rep.Runs {
			if run.Flows == 0 || float64(run.Completed) < 0.95*float64(run.Flows) {
				t.Fatalf("%s %s/%s: completed %d/%d flows", rep.Name, run.Substrate, run.Mode, run.Completed, run.Flows)
			}
		}
		if rep.QoE.GamingFrameMsCISP >= rep.QoE.GamingFrameMsFiber {
			t.Errorf("%s: gaming frame time did not improve on the hybrid", rep.Name)
		}
		if rep.QoE.WebPLTMsCISP >= rep.QoE.WebPLTMsFiber {
			t.Errorf("%s: page-load time did not improve on the hybrid", rep.Name)
		}
	}
	for _, k := range []string{"diurnal", "flashcrowd", "disaster", "cdn"} {
		if !kinds[k] {
			t.Errorf("no %s scenario in the sweep", k)
		}
	}

	dis := res.Report("disaster-storm")
	if dis == nil || !dis.HasFailures {
		t.Fatal("disaster scenario reported no failure section")
	}
	if dis.AvailCISP.Mode.String() != "reopt" || dis.ReroutesCISP == 0 {
		t.Fatalf("disaster availability not from the reoptimizing loop: %+v", dis.AvailCISP)
	}
	if av := dis.AvailCISP.Availability; av <= 0 || av > 1 {
		t.Fatalf("disaster availability %v outside (0, 1]", av)
	}

	cdn := res.Report("cdn-anycast")
	if cdn == nil || len(cdn.Sinks) != 4 {
		t.Fatalf("cdn scenario placed %v sinks, want 4", cdn.Sinks)
	}
}

// TestFigUsersDeterministicAcrossWorkers pins the bit-identical contract
// at the experiment level: the whole sweep — every percentile, rate,
// nine, and bill — is identical at one worker and at eight, and so is
// the rendered text.
func TestFigUsersDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: runs the whole sweep twice")
	}
	run := func(workers int) (*FigUsersResult, string) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		var out bytes.Buffer
		opt := usersTestOpt()
		opt.Out = &out
		return FigUsers(opt, usersTestFlows), out.String()
	}
	seq, seqText := run(1)
	par, parText := run(8)
	if seq == nil || par == nil {
		t.Fatal("FigUsers returned nil")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("sweep results differ across worker counts")
	}
	if seqText != parText {
		t.Fatalf("rendered sweep differs across worker counts:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", seqText, parText)
	}
}

// TestUsersBackboneShape: the adapter must hand the workload layer the
// designed substrate unchanged — sites with populations, microwave
// first, and the fiber conduit graph with its midpoint transit nodes.
func TestUsersBackboneShape(t *testing.T) {
	b, err := UsersBackbone(usersTestOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sites) == 0 || len(b.Mw) == 0 || len(b.Fiber) == 0 {
		t.Fatalf("degenerate backbone: %d sites, %d mw, %d fiber", len(b.Sites), len(b.Mw), len(b.Fiber))
	}
	if b.Nodes <= len(b.Sites) {
		t.Fatalf("no fiber midpoints: nodes = %d, sites = %d", b.Nodes, len(b.Sites))
	}
	pop := 0
	for _, s := range b.Sites {
		pop += s.Population
	}
	if pop <= 0 {
		t.Fatal("sites carry no population — nothing to draw users from")
	}
	h := b.Hybrid()
	if len(h) != len(b.Mw)+len(b.Fiber) {
		t.Fatalf("hybrid has %d links, want %d", len(h), len(b.Mw)+len(b.Fiber))
	}
	for i := range b.Mw {
		if h[i] != b.Mw[i] {
			t.Fatal("hybrid is not microwave-first (weather grading relies on the ordering)")
		}
	}
	if _, err := workload.Compile(workload.Spec{Kind: workload.Diurnal}, b); err != nil {
		t.Fatalf("designed backbone does not compile a workload: %v", err)
	}
}
