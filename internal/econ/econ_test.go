package econ

import (
	"math"
	"testing"
)

func near(got, want, tolFrac float64) bool {
	return math.Abs(got-want) <= want*tolFrac
}

func TestWebSearchMatchesPaper(t *testing.T) {
	at200, at400 := PaperWebSearch()
	// Paper: $1.84/GB at 200 ms, $3.74/GB at 400 ms.
	if !near(at200.Low, 1.84, 0.05) {
		t.Errorf("200ms search value = $%.2f/GB, paper says $1.84", at200.Low)
	}
	if !near(at400.Low, 3.74, 0.06) {
		t.Errorf("400ms search value = $%.2f/GB, paper says $3.74", at400.Low)
	}
}

func TestWebSearchProfitScale(t *testing.T) {
	// The underlying profit numbers: $87M at 200 ms, $177M at 400 ms.
	gb := 12.0 / 8 * secondsPerYear
	profit200 := WebSearchValue(200, 12).Low * gb
	if !near(profit200, 87e6, 0.05) {
		t.Errorf("200ms yearly profit = $%.0f, paper says $87M", profit200)
	}
}

func TestECommerceMatchesPaper(t *testing.T) {
	v := PaperECommerce()
	// Paper: $3.26–$22.82 per GB.
	if !near(v.Low, 3.26, 0.05) {
		t.Errorf("e-commerce low = $%.2f/GB, paper says $3.26", v.Low)
	}
	if !near(v.High, 22.82, 0.05) {
		t.Errorf("e-commerce high = $%.2f/GB, paper says $22.82", v.High)
	}
}

func TestGamingMatchesPaper(t *testing.T) {
	v := PaperGaming()
	// Paper: $4/month over 1.08 GB/month ≈ $3.7/GB.
	if !near(v.Low, 3.7, 0.05) {
		t.Errorf("gaming value = $%.2f/GB, paper says ~$3.7", v.Low)
	}
}

func TestGamingAggregate(t *testing.T) {
	// §6.6: 16M Steam players, 17% US, 10 Kbps → ~27 Gbps.
	got := GamingAggregateGbps(16e6, 0.17, 10)
	if !near(got, 27.2, 0.05) {
		t.Errorf("gaming aggregate = %.1f Gbps, paper says ~27", got)
	}
}

func TestAllValuesExceedCost(t *testing.T) {
	// §8's bottom line: every estimate beats the $0.81/GB network cost.
	at200, _ := PaperWebSearch()
	if !Exceeds(0.81, at200, PaperECommerce(), PaperGaming()) {
		t.Fatal("a value estimate failed to beat the paper's $0.81/GB cost")
	}
	// And sanity: an absurd cost is not exceeded.
	if Exceeds(100, at200) {
		t.Fatal("Exceeds(100) should be false")
	}
}

func TestECommerceScalesWithBytesFraction(t *testing.T) {
	all := ECommerceValue(200, 483, 7.9e9, 1.0)
	tenth := ECommerceValue(200, 483, 7.9e9, 0.1)
	if !near(tenth.Low, all.Low*10, 0.001) {
		t.Error("value per GB should be inversely proportional to bytes carried")
	}
}
