package ctlplane

import (
	"reflect"
	"testing"
)

func streamBackbone() *Backbone {
	return SyntheticBackbone(fourSites(), 2, 10, 40)
}

func TestDrawStreamDeterministicAndValid(t *testing.T) {
	b := streamBackbone()
	cfg := StreamConfig{Seed: 7, Horizon: 7 * 86400, MTBF: 2 * 86400, MTTR: 6 * 3600}
	evs := DrawStream(b, cfg)
	if len(evs) == 0 {
		t.Fatalf("a week with 2-day MTBF drew no events")
	}
	nLinks := len(b.Mw) + len(b.Fiber)
	prev := 0.0
	sawFail := false
	for i, te := range evs {
		if te.At < prev {
			t.Fatalf("event %d at %v after %v: stream not time-sorted", i, te.At, prev)
		}
		prev = te.At
		if err := validateEvent(te.Ev, len(b.Mw), nLinks); err != nil {
			t.Fatalf("stream emitted invalid event %d (%+v): %v", i, te.Ev, err)
		}
		if te.Ev.Type == EventFail {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatalf("no hardware failures in %d events over a week at 2-day MTBF", len(evs))
	}
	if again := DrawStream(streamBackbone(), cfg); !reflect.DeepEqual(evs, again) {
		t.Fatalf("same seed drew a different stream")
	}
	if other := DrawStream(streamBackbone(), StreamConfig{Seed: 8, Horizon: cfg.Horizon, MTBF: cfg.MTBF, MTTR: cfg.MTTR}); reflect.DeepEqual(evs, other) {
		t.Fatalf("different seeds drew identical streams")
	}
}

// Fade events must only ever be emitted on a change of graded fraction,
// so per microwave link consecutive fades always differ.
func TestDrawStreamFadesOnChangeOnly(t *testing.T) {
	b := streamBackbone()
	evs := DrawStream(b, StreamConfig{Seed: 3, Horizon: 14 * 86400})
	last := make(map[int]float64)
	for i := range last {
		last[i] = 1
	}
	for _, te := range evs {
		if te.Ev.Type != EventFade {
			continue
		}
		if prev, ok := last[te.Ev.Link]; ok && prev == te.Ev.CapFrac {
			t.Fatalf("link %d re-emitted unchanged fade %v at t=%v", te.Ev.Link, te.Ev.CapFrac, te.At)
		}
		last[te.Ev.Link] = te.Ev.CapFrac
	}
}
