package experiments

import (
	"math/rand"

	"cisp"
	"cisp/internal/capacity"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// LoadPoint is one (load %, delay ms, loss %) sample of a packet simulation.
type LoadPoint struct {
	LoadPct float64
	DelayMs float64
	LossPct float64
}

// simConfig bundles the packet-level simulation parameters shared by the
// Fig 5 and Fig 11 studies.
type simConfig struct {
	scenario   *cisp.Scenario
	top        *cisp.Topology
	plan       *capacity.Plan
	designGbps float64
	rateScale  float64 // scales all rates down to keep packet counts sane
	simTime    float64 // seconds of simulated time
	queueCap   int
	scheme     netsim.Scheme
	seed       int64
}

// hybridSimLinks builds the site-level link lists for a design, split into
// the microwave layer (built links at provisioned capacity, series² × 1
// Gbps per §3.3, in Built order so per-link weather conditions align) and
// the fiber substrate (plentiful bandwidth, 1.5× propagation penalty;
// conduits parallel to a *live* built microwave link are dropped — the
// node pair is already connected and routing prefers the faster path
// anyway). failed, when non-nil, marks built links (in Built order) that
// are weather-failed: their parallel conduits are kept, since the fiber
// fallback is exactly what the degraded network routes over. Pass nil for
// clear sky.
func hybridSimLinks(s *cisp.Scenario, top *cisp.Topology, plan *capacity.Plan,
	designGbps, rateScale float64, queueCap int, failed []bool) (mw, fiberLs []netsim.TopoLink) {
	mw, fiberLs, _ = hybridLinks(s, top, plan, designGbps, rateScale, queueCap, failed, false)
	return mw, fiberLs
}

// hybridSimLinksParallel is the TE control plane's variant: fiber conduits
// parallel to a live microwave link are kept — carried through a midpoint
// transit node (half the delay per half), since netsim paths are node
// sequences and parallel capacity must be expressed as distinct nodes.
// Returns the total node count including midpoints.
func hybridSimLinksParallel(s *cisp.Scenario, top *cisp.Topology, plan *capacity.Plan,
	designGbps, rateScale float64, queueCap int) (mw, fiberLs []netsim.TopoLink, nodes int) {
	return hybridLinks(s, top, plan, designGbps, rateScale, queueCap, nil, true)
}

// hybridLinks is the shared body behind both variants.
func hybridLinks(s *cisp.Scenario, top *cisp.Topology, plan *capacity.Plan,
	designGbps, rateScale float64, queueCap int, failed []bool, keepParallel bool) (mw, fiberLs []netsim.TopoLink, nodes int) {
	mwPairs := make(map[[2]int]bool)
	for li, l := range top.Built {
		key := [2]int{l.I, l.J}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if failed == nil || !failed[li] {
			mwPairs[key] = true
		}
		series := plan.Series[key]
		if series == 0 {
			series = 1
		}
		capBps := units.Gbps(float64(series*series) * rateScale)
		mw = append(mw, netsim.TopoLink{
			A: l.I, B: l.J,
			RateBps:   capBps,
			PropDelay: units.Seconds(l.Dist / geo.C),
			QueueCap:  queueCap,
		})
	}
	fiberG := s.FiberNet.Graph()
	fiberCap := units.Gbps(designGbps * 2 * rateScale)
	nodes = fiberG.N()
	for u := 0; u < fiberG.N(); u++ {
		for _, e := range fiberG.Neighbors(u) {
			if e.To <= u {
				continue
			}
			delay := units.Seconds(float64(e.Weight) * geo.FiberLatencyFactor / geo.C)
			switch {
			case !mwPairs[[2]int{u, e.To}]:
				fiberLs = append(fiberLs, netsim.TopoLink{
					A: u, B: e.To,
					RateBps:   fiberCap,
					PropDelay: delay,
					QueueCap:  queueCap,
				})
			case keepParallel:
				mid := nodes
				nodes++
				fiberLs = append(fiberLs,
					netsim.TopoLink{A: u, B: mid, RateBps: fiberCap, PropDelay: delay / 2, QueueCap: queueCap},
					netsim.TopoLink{A: mid, B: e.To, RateBps: fiberCap, PropDelay: delay / 2, QueueCap: queueCap})
			}
		}
	}
	return mw, fiberLs, nodes
}

// runPacketSim builds the site-level packet network for the design (built
// microwave links at their provisioned capacities plus the fiber conduit
// graph) and offers the demand matrix, returning mean one-way delay and
// loss after draining.
func runPacketSim(cfg simConfig, demand traffic.Matrix) (delayMs, lossPct float64) {
	s := cfg.scenario
	n := len(s.Cities)
	var sim netsim.Simulator
	nw := netsim.NewNetwork(&sim, n)

	mw, fiberLs := hybridSimLinks(s, cfg.top, cfg.plan, cfg.designGbps, cfg.rateScale, cfg.queueCap, nil)
	links := append(mw, fiberLs...)
	netsim.BuildTopology(nw, links)

	// Commodities from the demand matrix.
	var comms []netsim.Commodity
	flow := 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if demand[i][j] <= 0 {
				continue
			}
			comms = append(comms, netsim.Commodity{
				Flow: flow, Src: i, Dst: j,
				Demand: units.Gbps(demand[i][j] * cfg.rateScale),
			})
			flow++
		}
	}
	netsim.InstallRoutes(nw, links, comms, cfg.scheme)

	mon := netsim.NewFlowMonitor()
	rng := rand.New(rand.NewSource(cfg.seed))
	var sources []*netsim.UDPSource
	for _, c := range comms {
		src := &netsim.UDPSource{
			Net: nw, Flow: c.Flow, Src: c.Src, Dst: c.Dst,
			RateBps: float64(c.Demand), PktSize: 500, Poisson: true, Rng: rng,
			Monitor: mon,
		}
		src.Start()
		sources = append(sources, src)
	}
	sim.Run(cfg.simTime)
	for _, src := range sources {
		src.Stop()
	}
	sim.Run(cfg.simTime + 2) // drain
	return mon.MeanDelay() * 1000, mon.LossRate() * 100
}

// Fig5Result holds one perturbation curve.
type Fig5Result struct {
	Gamma  float64
	Points []LoadPoint
}

// Fig5Perturbation reproduces Fig 5: mean delay and loss versus aggregate
// input rate, with the city populations perturbed by γ ∈ {0 (matching TM),
// 0.1, 0.3, 0.5}. Shortest-path routing, 500-byte UDP packets.
func Fig5Perturbation(opt Options, gammas []float64, loads []float64) []Fig5Result {
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig5: %v\n", err)
		return nil
	}
	designGbps := opt.simAggregateGbps()
	plan := s.Provision(top, scaleTo(tm, designGbps))

	fprintf(w, "Fig 5 — delay & loss vs load under population perturbation\n")
	fprintf(w, "%8s %8s %12s %10s\n", "gamma", "load%", "delay(ms)", "loss%")

	var out []Fig5Result
	for _, gamma := range gammas {
		cities := s.Cities
		if gamma > 0 {
			cities = traffic.PerturbPopulations(cities, gamma, opt.Seed+int64(gamma*100))
		}
		offered := traffic.PopulationProduct(cities)
		res := Fig5Result{Gamma: gamma}
		for _, load := range loads {
			demand := scaleTo(offered, designGbps*load/100)
			d, l := runPacketSim(simConfig{
				scenario: s, top: top, plan: plan, designGbps: designGbps,
				rateScale: 1.0 / 50, simTime: 0.35, queueCap: 100,
				scheme: netsim.ShortestPath, seed: opt.Seed,
			}, demand)
			res.Points = append(res.Points, LoadPoint{LoadPct: load, DelayMs: d, LossPct: l})
			fprintf(w, "%8.1f %8.0f %12.3f %10.3f\n", gamma, load, d, l)
		}
		out = append(out, res)
	}
	return out
}

// Fig11Result holds one traffic-mix curve.
type Fig11Result struct {
	MixName string
	Points  []LoadPoint
}

// Fig11MixDeviation reproduces Fig 11: a network designed for a 4:3:3
// City-City : City-DC : DC-DC mix is offered deviating mixes (5:3:3, 4:4:3,
// 4:3:4); delay and loss stay consistent up to ~70% load.
func Fig11MixDeviation(opt Options, loads []float64) []Fig11Result {
	w := opt.out()
	base := cisp.NewScenario(cisp.ScenarioConfig{Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, MaxCities: opt.MaxCities})
	sites := append([]cisp.City(nil), base.Cities...)
	dcStart := len(sites)
	sites = append(sites, cisp.GoogleDCSites()...)
	s := cisp.NewScenario(cisp.ScenarioConfig{Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, Sites: sites})

	cityIdx := make([]int, dcStart)
	for i := range cityIdx {
		cityIdx[i] = i
	}
	dcIdx := make([]int, len(sites)-dcStart)
	for i := range dcIdx {
		dcIdx[i] = dcStart + i
	}
	cc := traffic.PopulationProduct(sites)
	cd := traffic.CityToDC(sites, cityIdx, dcIdx)
	dd := traffic.UniformPairs(len(sites), dcIdx)

	mix := func(a, b, c float64) traffic.Matrix {
		return traffic.Mix([]float64{a, b, c}, cc, cd, dd)
	}
	designTM := mix(4, 3, 3)
	top, err := s.DesignGreedy(designTM, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig11: %v\n", err)
		return nil
	}
	designGbps := opt.simAggregateGbps()
	plan := s.Provision(top, scaleTo(designTM, designGbps))

	fprintf(w, "Fig 11 — traffic-mix deviations (designed for 4:3:3)\n")
	fprintf(w, "%8s %8s %12s %10s\n", "mix", "load%", "delay(ms)", "loss%")

	mixes := []struct {
		name    string
		a, b, c float64
	}{
		{"4:3:3", 4, 3, 3},
		{"5:3:3", 5, 3, 3},
		{"4:4:3", 4, 4, 3},
		{"4:3:4", 4, 3, 4},
	}
	var out []Fig11Result
	for _, m := range mixes {
		offered := mix(m.a, m.b, m.c)
		res := Fig11Result{MixName: m.name}
		for _, load := range loads {
			demand := scaleTo(offered, designGbps*load/100)
			d, l := runPacketSim(simConfig{
				scenario: s, top: top, plan: plan, designGbps: designGbps,
				rateScale: 1.0 / 50, simTime: 0.35, queueCap: 100,
				scheme: netsim.ShortestPath, seed: opt.Seed,
			}, demand)
			res.Points = append(res.Points, LoadPoint{LoadPct: load, DelayMs: d, LossPct: l})
			fprintf(w, "%8s %8.0f %12.3f %10.3f\n", m.name, load, d, l)
		}
		out = append(out, res)
	}
	return out
}

// RoutingSchemeComparison quantifies §5's observation that non-shortest-path
// schemes sacrifice latency: it returns mean delay at the given load for
// each routing scheme.
func RoutingSchemeComparison(opt Options, loadPct float64) map[string]float64 {
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	top, err := s.DesignGreedy(tm, s.DefaultBudget())
	if err != nil {
		return nil
	}
	designGbps := opt.simAggregateGbps()
	plan := s.Provision(top, scaleTo(tm, designGbps))
	demand := scaleTo(tm, designGbps*loadPct/100)

	out := make(map[string]float64)
	fprintf(w, "Routing schemes at %.0f%% load:\n", loadPct)
	for _, scheme := range []netsim.Scheme{netsim.ShortestPath, netsim.MinMaxUtilization, netsim.ThroughputOptimal} {
		d, l := runPacketSim(simConfig{
			scenario: s, top: top, plan: plan, designGbps: designGbps,
			rateScale: 1.0 / 50, simTime: 0.35, queueCap: 100,
			scheme: scheme, seed: opt.Seed,
		}, demand)
		out[scheme.String()] = d
		fprintf(w, "  %-22s delay %.3f ms, loss %.3f%%\n", scheme.String(), d, l)
	}
	return out
}
