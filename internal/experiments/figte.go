package experiments

import (
	"fmt"
	"io"

	"cisp"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/te"
	"cisp/internal/traffic"
	"cisp/internal/units"
	"cisp/internal/weather"
)

// TETopology is the designed hybrid substrate the TE experiment routes
// over: the provisioned microwave backbone plus the full fiber conduit
// graph, with conduits that parallel a microwave link carried through a
// midpoint transit node — netsim paths are node sequences, so parallel
// capacity must be distinct nodes, and keeping those conduits is exactly
// what gives the control plane a latency-diverse alternative on every
// built link.
type TETopology struct {
	Sites    []cisp.City
	Nodes    int               // sites plus fiber midpoints
	Mw       []netsim.TopoLink // built microwave links (rate-scaled)
	Fiber    []netsim.TopoLink // fiber conduits, incl. midpoint halves
	DesignTM traffic.Matrix    // the 4:3:3 design mix (relative weights)
}

// Links returns the combined simulation link list, microwave first (the
// ordering weather grading and te.Controller updates rely on).
func (t *TETopology) Links() []netsim.TopoLink {
	return append(append([]netsim.TopoLink(nil), t.Mw...), t.Fiber...)
}

// DesignedTETopology builds the §6.4 design point like DesignedMixTopology
// but keeps every fiber conduit — including ones parallel to built
// microwave links, via midpoint transit nodes — so the TE control plane
// can split onto fiber where the microwave layer saturates or rains out.
func DesignedTETopology(opt Options) (*TETopology, error) {
	s, top, designTM, err := designMixPoint(opt)
	if err != nil {
		return nil, err
	}
	plan := s.Provision(top, scaleTo(designTM, opt.simAggregateGbps()))
	mw, fiber, nodes := hybridSimLinksParallel(s, top, plan, opt.simAggregateGbps(), simRateScale, 100)
	return &TETopology{Sites: s.Cities, Nodes: nodes, Mw: mw, Fiber: fiber, DesignTM: designTM}, nil
}

// DemandCommodities converts a demand matrix (any consistent units — only
// the proportions matter) into the commodity list of a Scenario replay:
// totalFlows concurrent flows apportioned across the positive pairs in
// proportion to demand (traffic.FlowCounts), each of flowBytes payload
// arriving inside a window of `window` seconds. Commodity.Demand is set to
// the load the replay then actually offers — Count · flowBytes · 8 /
// window — so the TE planner (and min-max-utilization routing) optimises
// against the very traffic the simulation injects, and the planner's
// predicted MLU is commensurable with the measured one. Flow IDs are
// assigned by row-major pair order over ALL positive pairs — independent
// of totalFlows — so commodity IDs are stable between a clamped packet
// replay and a full-scale fluid replay and one TE solution serves both.
func DemandCommodities(demand traffic.Matrix, totalFlows, flowBytes int, window float64) []netsim.Commodity {
	counts := map[[2]int]int{}
	for _, p := range traffic.FlowCounts(demand, totalFlows) {
		counts[[2]int{p.I, p.J}] = p.Count
	}
	var comms []netsim.Commodity
	flow := 0
	for i := 0; i < demand.N(); i++ {
		for j := i + 1; j < demand.N(); j++ {
			if demand[i][j] <= 0 {
				continue
			}
			flow++
			n := counts[[2]int{i, j}]
			if n == 0 {
				continue
			}
			comms = append(comms, netsim.Commodity{
				Flow: flow, Src: i, Dst: j,
				Demand: units.Bytes(float64(n) * float64(flowBytes)).Per(units.Seconds(window)),
				Count:  n,
			})
		}
	}
	return comms
}

// StormConditions grades every microwave link of the topology under a
// single convective storm parked over the backbone's highest-capacity link
// — the deterministic worst case for a rain study. Links are graded
// city-to-city (one hop; per-tower adaptive modulation is the
// internal/weather year engine's job, not this experiment's).
func StormConditions(tt *TETopology) []weather.LinkCondition {
	best := 0
	for li, l := range tt.Mw {
		if l.RateBps > tt.Mw[best].RateBps ||
			(l.RateBps == tt.Mw[best].RateBps && li < best) {
			best = li
		}
	}
	a := tt.Sites[tt.Mw[best].A].Loc
	b := tt.Sites[tt.Mw[best].B].Loc
	field := &weather.Field{Cells: []weather.StormCell{{
		Center: geo.Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2},
		Radius: 150e3,
		PeakMM: 50,
	}}}
	conds := make([]weather.LinkCondition, len(tt.Mw))
	for li, l := range tt.Mw {
		atten := field.PathAttenuation(tt.Sites[l.A].Loc, tt.Sites[l.B].Loc, geo.DefaultFrequencyGHz, 2000)
		conds[li] = weather.LinkCondition{
			WorstHopDB: atten,
			CapFrac:    weather.CapacityFraction(atten, weather.DefaultFadeMargin),
			Failed:     atten > weather.DefaultFadeMargin,
		}
	}
	return conds
}

// TERow is one (workload, scheme, mode) measurement of the TE comparison.
type TERow struct {
	Workload  string // "hotspot" or "rain"
	Scheme    string // "shortest-path", "min-max-utilization" or "te-splits"
	Mode      string // engine mode
	Flows     int
	Completed int
	MLU       units.Utilization // measured max directed-link utilization
	PredMLU   units.Utilization // TE rows: the control plane's predicted MLU
	MeanFCTMs float64
	P99FCTMs  float64
}

// FigTEResult is the full comparison table.
type FigTEResult struct {
	Rows []TERow
}

// Row returns the first row matching the keys, or nil.
func (r *FigTEResult) Row(workload, scheme, mode string) *TERow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Workload == workload && row.Scheme == scheme && row.Mode == mode {
			return row
		}
	}
	return nil
}

// teSchemeName labels the TE rows.
const teSchemeName = "te-splits"

// maxTEPacketFlows bounds the packet engine in the TE study, as
// maxPacketScaleFlows does for Fig6Scale.
const maxTEPacketFlows = 1500

// TE replay shape: flows of teFlowBytes arrive inside teStartSpread
// seconds and the run is measured to teHorizon. DemandCommodities derives
// commodity demands from the same constants, which is what keeps the
// planner's predicted MLU and the measured one on the same scale (measured
// stays lower — the offered window is a fraction of the horizon and flows
// drain).
const (
	teFlowBytes   = 250 << 10
	teStartSpread = 30.0
	teHorizon     = 60.0
)

// FigTE is the traffic-engineering experiment: on the designed hybrid
// backbone (fiber conduits kept parallel to microwave links), it offers a
// hotspot workload (seeded per-pair demand spikes the design never saw)
// and a rain workload (a storm parked on the busiest link, capacities
// graded by adaptive modulation), and compares single-path shortest-path
// and min-max-utilization routing against the control plane's fractional
// splits — in both engine modes, reporting measured MLU and mean/p99 FCT.
func FigTE(opt Options, totalFlows int) *FigTEResult {
	w := opt.out()
	if totalFlows <= 0 {
		totalFlows = 20_000
	}
	tt, err := DesignedTETopology(opt)
	if err != nil {
		fprintf(w, "figte: %v\n", err)
		return nil
	}
	clearLinks := tt.Links()

	// Workload 1 — hotspot: spike 5 pairs of the design mix ×8 — localized
	// surges the backbone was not provisioned for.
	demandHot := traffic.Hotspot(tt.DesignTM, 5, 8, opt.Seed)
	// Workload 2 — rain: the design-mix demand under a graded storm.
	demandRain := tt.DesignTM
	conds := StormConditions(tt)
	rainMw := weather.GradedRates(tt.Mw, conds)
	rainLinks := liveLinks(append(append([]netsim.TopoLink(nil), rainMw...), tt.Fiber...))

	type workload struct {
		name   string
		demand traffic.Matrix
		links  []netsim.TopoLink // for single-path schemes and simulation
		solve  func(comms []netsim.Commodity) (*te.Solution, error)
	}
	workloads := []workload{
		{
			name:   "hotspot",
			demand: demandHot,
			links:  clearLinks,
			solve: func(comms []netsim.Commodity) (*te.Solution, error) {
				return te.Solve(tt.Nodes, clearLinks, comms, te.Config{})
			},
		},
		{
			name:   "rain",
			demand: demandRain,
			links:  rainLinks,
			solve: func(comms []netsim.Commodity) (*te.Solution, error) {
				// Clear-sky controller, storm-interval warm reoptimization:
				// the production loop a weather feed would drive.
				ctrl, err := te.NewController(tt.Nodes, clearLinks, comms, te.Config{})
				if err != nil {
					return nil, err
				}
				if _, err := weather.ReoptimizeTE(ctrl, tt.Mw, conds, tt.Fiber); err != nil {
					return nil, err
				}
				return ctrl.Solution(), nil
			},
		},
	}

	res := &FigTEResult{}
	fprintf(w, "TE control plane — latency-bounded splits vs single-path routing on the designed backbone\n")
	fprintf(w, "%-8s %-22s %-7s %8s %10s %8s %8s %12s %12s\n",
		"workload", "scheme", "mode", "flows", "completed", "MLU", "predMLU", "FCT mean(ms)", "FCT p99(ms)")
	for _, wl := range workloads {
		fluidComms := DemandCommodities(wl.demand, totalFlows, teFlowBytes, teStartSpread)
		sol, err := wl.solve(fluidComms)
		if err != nil {
			fprintf(w, "figte: %s: %v\n", wl.name, err)
			return nil
		}
		for _, mode := range []netsim.Mode{netsim.PacketMode, netsim.FluidMode} {
			comms := fluidComms
			if mode == netsim.PacketMode && totalFlows > maxTEPacketFlows {
				comms = DemandCommodities(wl.demand, maxTEPacketFlows, teFlowBytes, teStartSpread)
			}
			for _, scheme := range []netsim.Scheme{netsim.ShortestPath, netsim.MinMaxUtilization} {
				row := runTEScenario(tt.Nodes, wl.links, comms, scheme, nil, mode, opt.Seed)
				row.Workload, row.Scheme = wl.name, scheme.String()
				res.Rows = append(res.Rows, row)
				printTERow(w, &res.Rows[len(res.Rows)-1])
			}
			row := runTEScenario(tt.Nodes, wl.links, comms, netsim.ShortestPath, sol.Splits, mode, opt.Seed)
			row.Workload, row.Scheme, row.PredMLU = wl.name, teSchemeName, sol.MLU
			res.Rows = append(res.Rows, row)
			printTERow(w, &res.Rows[len(res.Rows)-1])
		}
	}
	return res
}

// liveLinks drops zero-rate (failed) links: simulation engines have no use
// for a 0 bps link, and shortest-path routing must not ride one.
func liveLinks(links []netsim.TopoLink) []netsim.TopoLink {
	var out []netsim.TopoLink
	for _, l := range links {
		if l.RateBps > 0 {
			out = append(out, l)
		}
	}
	return out
}

func runTEScenario(nodes int, links []netsim.TopoLink, comms []netsim.Commodity,
	scheme netsim.Scheme, splits map[int][]netsim.SplitPath, mode netsim.Mode, seed int64) TERow {
	sc := &netsim.Scenario{
		Nodes: nodes, Links: links, Comms: comms,
		Scheme:      scheme,
		Splits:      splits,
		FlowBytes:   teFlowBytes,
		Horizon:     teHorizon,
		StartSpread: teStartSpread,
		Seed:        seed,
	}
	r := sc.Run(mode)
	row := TERow{
		Mode:      mode.String(),
		Flows:     len(r.Flows),
		Completed: r.Completed,
		MLU:       r.MLU,
	}
	if fcts := r.FCTs(); len(fcts) > 0 {
		sum := 0.0
		for _, f := range fcts {
			sum += f
		}
		row.MeanFCTMs = sum / float64(len(fcts)) * 1000
		row.P99FCTMs = netsim.Percentile(fcts, 99) * 1000
	}
	return row
}

func printTERow(w io.Writer, r *TERow) {
	pred := "-"
	if r.PredMLU > 0 {
		pred = fmt.Sprintf("%.3f", r.PredMLU)
	}
	fprintf(w, "%-8s %-22s %-7s %8d %10d %8.3f %8s %12.1f %12.1f\n",
		r.Workload, r.Scheme, r.Mode, r.Flows, r.Completed, r.MLU, pred, r.MeanFCTMs, r.P99FCTMs)
}
