// Quickstart: design a small speed-of-light network over the US Midwest and
// print its headline numbers. This walks the paper's full pipeline — tower
// feasibility (Step 1), topology design (Step 2), capacity provisioning
// (Step 3) — in under a minute.
package main

import (
	"fmt"
	"log"

	"cisp"
)

func main() {
	// Step 0+1: synthesize the world and find feasible microwave links.
	// ScaleSmall keeps this quick: ~25 cities and a sparse tower registry.
	scenario := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US,
		Scale:  cisp.ScaleSmall,
		Seed:   42,
	})
	fmt.Printf("scenario: %d cities, %d towers, %d feasible tower-tower hops\n",
		len(scenario.Cities), scenario.Registry.Len(), scenario.Links.FeasibleHops())

	// Step 2: choose which city-city microwave links to build under a tower
	// budget, minimising traffic-weighted latency stretch. The traffic
	// model is the paper's population product.
	tm := scenario.PopulationTraffic()
	topology, err := scenario.DesignCISP(tm, scenario.DefaultBudget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d microwave links using %.0f towers\n",
		len(topology.Built), topology.CostUsed())
	fmt.Printf("mean latency stretch: %.3f x c-latency (fiber-only: %.3f)\n",
		topology.MeanStretch(), topology.MeanFiberStretch())

	// Step 3: provision for 10 Gbps of aggregate demand and price it.
	const aggregateGbps = 10
	demand := cisp.ScaleTraffic(tm, aggregateGbps)
	plan := scenario.Provision(topology, demand)
	fmt.Printf("provisioning for %d Gbps: %d hop installs, %d new towers, %d towers rented\n",
		aggregateGbps, plan.HopInstalls, plan.NewTowers, plan.TowersUsed)
	fmt.Printf("amortised cost: $%.2f per GB (the paper's full-scale network: $0.81)\n",
		scenario.CostPerGB(plan, aggregateGbps))
}
