package weather

import (
	"cisp/internal/design"
	"cisp/internal/geo"
	"cisp/internal/linkbuild"
	"cisp/internal/units"
)

// attenStep is the great-circle sampling step for per-hop path
// attenuation, matching HopFails' historical 2 km grid.
const attenStep units.Meters = 2000

// LinkCondition is the graded state of one built city-city link during a
// precipitation interval. A link is a series of tower-tower hops; the hop
// radios adapt their modulation independently, and the link runs at the
// rate of its worst hop.
type LinkCondition struct {
	WorstHopDB units.DB // highest per-hop path attenuation
	CapFrac    float64  // adaptive-modulation capacity fraction (0 = outage)
	Failed     bool     // worst hop exceeded the fade margin (binary model)
}

// LinkGeometry caches the physical tower-hop endpoints of every built link
// of a topology, so per-interval condition evaluation touches no registry
// state. Immutable after construction; safe for concurrent use.
type LinkGeometry struct {
	hops [][][2]geo.Point // per built link, per hop: endpoint coordinates
}

// NewLinkGeometry extracts hop geometry for every built link of top from
// the Step-1 link structure.
func NewLinkGeometry(top *design.Topology, links *linkbuild.Links) *LinkGeometry {
	lg := &LinkGeometry{hops: make([][][2]geo.Point, len(top.Built))}
	for li, l := range top.Built {
		for _, h := range links.Hops(l.I, l.J) {
			lg.hops[li] = append(lg.hops[li], [2]geo.Point{
				links.Reg.Tower(h[0]).Loc,
				links.Reg.Tower(h[1]).Loc,
			})
		}
	}
	return lg
}

// NumLinks returns the number of built links covered.
func (lg *LinkGeometry) NumLinks() int { return len(lg.hops) }

// Conditions evaluates every built link's graded state under the
// precipitation field: worst-hop attenuation, adaptive-modulation capacity
// fraction, and the paper's binary failure verdict. The out slice is
// reused when it has the right length (pass nil to allocate).
func (lg *LinkGeometry) Conditions(f *Field, fGHz float64, fadeMargin units.DB, out []LinkCondition) []LinkCondition {
	if len(out) != len(lg.hops) {
		out = make([]LinkCondition, len(lg.hops))
	}
	for li, hops := range lg.hops {
		worst := units.DB(0)
		for _, h := range hops {
			if a := f.PathAttenuation(h[0], h[1], fGHz, attenStep); a > worst {
				worst = a
			}
		}
		out[li] = LinkCondition{
			WorstHopDB: worst,
			CapFrac:    CapacityFraction(worst, fadeMargin),
			Failed:     worst > fadeMargin,
		}
	}
	return out
}
