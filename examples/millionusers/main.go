// millionusers is the population-driven disaster drill: the evening-peak
// subscriber base of the designed US backbone is drawn city by city from
// census populations (DESIGN.md §10), then a disaster strikes the most
// populous site — an evacuation surge multiplies demand around the
// epicenter while a storm parked overhead fades the microwave mesh and a
// fiber conduit is cut mid-drill. The workload pipeline compiles the
// surge into per-application traffic, plans TE splits and warm-reopt
// fast reroute on the hybrid backbone against a fiber-only baseline,
// walks the hour-long drill analytically for availability, and replays
// a compressed image of it in the fluid engine to show what the users
// see: per-application completion, goodput, and the QoE gap.
package main

import (
	"fmt"
	"os"

	"cisp"
	"cisp/internal/experiments"
	"cisp/internal/workload"
)

func main() {
	opt := experiments.Options{Scale: cisp.ScaleSmall, Seed: 1, MaxCities: 10}
	b, err := experiments.UsersBackbone(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("designed backbone: %d sites, %d microwave links, %d fiber conduits\n",
		len(b.Sites), len(b.Mw), len(b.Fiber))

	c, err := workload.Compile(workload.Spec{
		Name: "evacuation-drill",
		Kind: workload.Disaster,
		Seed: opt.Seed,
	}, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("drill: %.2fM users active at the evening peak, %.2f Gbps offered\n",
		c.TotalUsers/1e6, c.OfferedGbps)
	fmt.Printf("storm over %s fades %d microwave links; fiber link %d cut mid-drill\n",
		b.Sites[c.Spec.EventSite].Name, c.StormFadedLinks, c.CutLink)

	p := workload.Pipeline{Backbone: b, TotalFlows: 2000, Seed: opt.Seed}
	rep, err := p.Run(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\navailability over the drill hour (fast reroute + warm reoptimization):\n")
	fmt.Printf("  hybrid: %.7f (%.2f nines, %d reroutes)\n",
		rep.AvailCISP.Availability, rep.AvailCISP.Nines, rep.ReroutesCISP)
	fmt.Printf("  fiber:  %.7f (%.2f nines, %d reroutes)\n",
		rep.AvailFiber.Availability, rep.AvailFiber.Nines, rep.ReroutesFiber)

	fmt.Printf("\ncompressed fluid replay of the drill:\n")
	for _, sub := range []string{workload.SubstrateCISP, workload.SubstrateFiber} {
		run := rep.Run(sub, "fluid")
		if run == nil {
			fmt.Fprintln(os.Stderr, "missing fluid run for", sub)
			os.Exit(1)
		}
		fmt.Printf("  %-5s completed %d/%d flows, measured MLU %.3f\n",
			sub, run.Completed, run.Flows, run.MLU)
		for _, a := range run.Apps {
			if a.Flows == 0 {
				continue
			}
			fmt.Printf("        %-7s p50 FCT %8.1f ms   goodput %8.0f kbps   RTT %6.2f ms\n",
				a.App, a.P50FCTMs, a.GoodputKbps, a.RTTMs)
		}
	}

	fmt.Printf("\nwhat users notice: gaming frame %.2f -> %.2f ms, page load %.0f -> %.0f ms on the hybrid\n",
		rep.QoE.GamingFrameMsFiber, rep.QoE.GamingFrameMsCISP,
		rep.QoE.WebPLTMsFiber, rep.QoE.WebPLTMsCISP)
}
