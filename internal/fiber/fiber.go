// Package fiber provides a synthetic long-haul fiber-conduit network
// standing in for the InterTubes dataset (§4). The paper uses fiber two
// ways: as the cheap, plentiful-bandwidth fallback the hybrid design mixes
// with microwave, and as the latency baseline (shortest-path fiber is 1.93×
// c-latency: ~1.3× route circuitousness times the 1.5× refractive penalty).
//
// The synthetic conduit graph connects each city to a handful of nearby
// cities with circuitous edges (conduits follow roads and rail, not great
// circles), plus spanning edges to guarantee connectivity. Per-edge detour
// factors are deterministic in the seed. The calibration target — mean
// latency inflation over city pairs of ≈1.9× c-latency — is asserted by the
// package tests, matching the paper's measured fiber baseline.
package fiber

import (
	"math"
	"math/rand"
	"sort"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/graph"
	"cisp/internal/units"
)

// Network is an immutable fiber-conduit network over a fixed city set, with
// all-pairs shortest conduit routes precomputed.
type Network struct {
	cities []cities.City
	g      *graph.Graph[units.Meters]
	dist   [][]units.Meters // physical route length
}

// Config parameterises synthesis.
type Config struct {
	Seed      int64
	Neighbors int     // conduits per city to nearest neighbors (default 4)
	MinDetour float64 // minimum conduit circuitousness (default 1.15)
	MaxDetour float64 // maximum conduit circuitousness (default 1.55)
}

func (c *Config) setDefaults() {
	if c.Neighbors == 0 {
		c.Neighbors = 6
	}
	if c.MinDetour == 0 {
		c.MinDetour = 1.08
	}
	if c.MaxDetour == 0 {
		c.MaxDetour = 1.35
	}
}

// Synthesize builds the conduit network for the given cities.
func Synthesize(cfg Config, cs []cities.City) *Network {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(cs)
	g := graph.New[units.Meters](n)
	added := make(map[[2]int]bool)

	addEdge := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		k := [2]int{i, j}
		if added[k] {
			return
		}
		added[k] = true
		detour := cfg.MinDetour + rng.Float64()*(cfg.MaxDetour-cfg.MinDetour)
		g.AddEdge(i, j, units.Meters(float64(cs[i].Loc.DistanceTo(cs[j].Loc))*detour))
	}

	// k-nearest-neighbor conduits.
	for i := 0; i < n; i++ {
		type nb struct {
			j int
			d units.Meters
		}
		nbs := make([]nb, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				nbs = append(nbs, nb{j, cs[i].Loc.DistanceTo(cs[j].Loc)})
			}
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
		for k := 0; k < cfg.Neighbors && k < len(nbs); k++ {
			addEdge(i, nbs[k].j)
		}
	}

	// Guarantee a single component: greedily join components by their
	// closest city pair until connected.
	for {
		comp := components(g)
		if maxComp(comp) == 0 { // single component (all zero) or empty
			break
		}
		bi, bj, bd := -1, -1, units.Meters(math.Inf(1))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp[i] != comp[j] {
					if d := cs[i].Loc.DistanceTo(cs[j].Loc); d < bd {
						bi, bj, bd = i, j, d
					}
				}
			}
		}
		if bi < 0 {
			break
		}
		addEdge(bi, bj)
	}

	// Precompute all-pairs conduit routes; mirror the upper triangle so
	// lengths are exactly symmetric despite float summation order.
	dist := make([][]units.Meters, n)
	for i := 0; i < n; i++ {
		d, _ := g.Dijkstra(i)
		dist[i] = d
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist[j][i] = dist[i][j]
		}
	}
	return &Network{cities: cs, g: g, dist: dist}
}

// components labels nodes by connected component (0-based).
func components(g *graph.Graph[units.Meters]) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		stack := []int{i}
		comp[i] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Neighbors(u) {
				if comp[e.To] == -1 {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return comp
}

func maxComp(comp []int) int {
	m := 0
	for _, c := range comp {
		if c > m {
			m = c
		}
	}
	return m
}

// Cities returns the city set the network was built over.
func (nw *Network) Cities() []cities.City { return nw.cities }

// Graph exposes the conduit graph (for weather rerouting and tests).
func (nw *Network) Graph() *graph.Graph[units.Meters] { return nw.g }

// RouteLen returns the physical length of the shortest conduit route
// between cities i and j, or +Inf if disconnected.
func (nw *Network) RouteLen(i, j int) units.Meters { return nw.dist[i][j] }

// LatencyDist returns the latency-equivalent distance of the fiber route:
// physical length times the 1.5× refractive penalty. This is the o_ij × 1.5
// input to the design optimizer.
func (nw *Network) LatencyDist(i, j int) units.Meters {
	return nw.dist[i][j] * geo.FiberLatencyFactor
}

// MeanStretch returns the traffic-unweighted mean, over distinct city pairs,
// of fiber latency-distance over geodesic distance — the paper's "1.93×
// c-latency" fiber baseline metric.
func (nw *Network) MeanStretch() float64 {
	n := len(nw.cities)
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			geod := nw.cities[i].Loc.DistanceTo(nw.cities[j].Loc)
			if geod <= 0 || math.IsInf(float64(nw.dist[i][j]), 1) {
				continue
			}
			sum += units.Ratio(nw.LatencyDist(i, j), geod)
			cnt++
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}
