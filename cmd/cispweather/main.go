// Command cispweather runs the §6.1 year-long weather impairment study
// (Fig 7): daily random 30-minute precipitation intervals fail microwave
// links past the ITU-R P.838 fade margin; traffic reroutes over surviving
// links and fiber.
//
// Usage:
//
//	cispweather [-scale small|medium|full] [-seed N] [-days 365]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cisp"
	"cisp/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "small, medium or full")
	seed := flag.Int64("seed", 1, "seed")
	days := flag.Int("days", 365, "days to sample (one 30-minute interval each)")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Out: os.Stdout}
	switch strings.ToLower(*scale) {
	case "medium":
		opt.Scale = cisp.ScaleMedium
	case "full":
		opt.Scale = cisp.ScaleFull
	default:
		opt.Scale = cisp.ScaleSmall
	}
	res := experiments.Fig7Weather(opt, *days)
	if res == nil {
		os.Exit(1)
	}
	// Failure histogram summary.
	max, sum := 0, 0
	for _, f := range res.Analysis.FailedLinksPerDay {
		sum += f
		if f > max {
			max = f
		}
	}
	fmt.Printf("link failures: %.2f per sampled interval on average, %d worst-day\n",
		float64(sum)/float64(len(res.Analysis.FailedLinksPerDay)), max)
}
