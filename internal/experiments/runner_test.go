package experiments

import (
	"bytes"
	"regexp"
	"testing"
)

// TestRunAllMatchesSequential: the concurrent runner must produce the same
// figure output as back-to-back runs, flushed in spec order, at any pool
// width.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: runs the same figures at three pool widths")
	}
	specs := []Spec{
		{Name: "4c", Run: func(o Options) { Fig4cCostPerGB(o, []float64{5, 20}) }},
		{Name: "12", Run: func(o Options) { Fig12Gaming(o, []float64{0, 150}) }},
		{Name: "econ", Run: func(o Options) { CostBenefit(o, 0.81) }},
	}
	run := func(parallelism int) string {
		var buf bytes.Buffer
		opt := testOpts(21)
		opt.Out = &buf
		opt.Parallelism = parallelism
		times := RunAll(opt, specs)
		if len(times) != len(specs) {
			t.Fatalf("parallelism %d: %d timings for %d specs", parallelism, len(times), len(specs))
		}
		for k, tm := range times {
			if tm.Name != specs[k].Name || tm.Seconds <= 0 {
				t.Fatalf("parallelism %d: bad timing %+v for spec %q", parallelism, tm, specs[k].Name)
			}
		}
		// Timing lines vary run to run; strip them before comparing.
		return regexp.MustCompile(`(?m)^  \[.* done in .*\]\n`).ReplaceAllString(buf.String(), "")
	}
	seq := run(1)
	par := run(4)
	if seq == "" {
		t.Fatal("sequential run produced no output")
	}
	if seq != par {
		t.Errorf("concurrent output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
