package weather

import "math/rand"

// HFTTrace synthesises the §2 Chicago–New Jersey microwave loss dataset:
// 2,743 one-minute loss-rate samples spanning trading hours over ~11 days,
// including a 4-day hurricane disruption (Sandy). The published statistics
// are a 16.1% mean against a 1.4% median — heavy weather tail over a low
// fair-weather floor. The generator reproduces that shape: log-normal-ish
// fair-weather losses with a small number of near-outage hurricane minutes.
func HFTTrace(seed int64) []float64 {
	const minutes = 2743
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, minutes)

	// ~11 trading days × ~250 minutes; days 5-7 are the hurricane window.
	day := 0
	for len(out) < minutes {
		hurricane := day >= 5 && day <= 7
		for m := 0; m < 250 && len(out) < minutes; m++ {
			var loss float64
			if hurricane {
				// Widespread disruption: long stretches of heavy loss.
				if rng.Float64() < 0.75 {
					loss = 0.35 + 0.6*rng.Float64()
				} else {
					loss = 0.05 + 0.2*rng.Float64()
				}
			} else {
				// Fair weather: exponential with a ~1% median plus rare
				// fade events; the hurricane share lifts the overall
				// median toward the paper's 1.4%.
				loss = 0.010 * rng.ExpFloat64() / 0.693
				if rng.Float64() < 0.02 {
					loss += 0.1 + 0.3*rng.Float64()
				}
				if loss > 1 {
					loss = 1
				}
			}
			out = append(out, loss)
		}
		day++
	}
	return out
}
