// Package analysis is the repository's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) plus the //lint:allow suppression protocol
// shared by every cisplint analyzer. The x/tools module is deliberately not
// vendored — the framework runs entirely on go/ast and go/types, so the
// lint suite builds offline and adds nothing to go.mod.
//
// The four analyzers (internal/analysis/determinism, maporder,
// hotpathalloc, paraclosure) enforce the determinism contract documented
// in DESIGN.md §9: bit-identical results at any worker count, all
// randomness threaded through an explicit Seed, and allocation-free
// per-event hot paths. cmd/cisplint wires them into `go vet -vettool`.
//
// Suppression: a finding is silenced by a directive on the same line or
// the line directly above:
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// The justification is mandatory; a directive without one is itself
// reported and cannot be suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one unit, reporting through the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one compilation unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Finding is a post-suppression diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunUnit applies every analyzer to one type-checked unit and returns the
// findings that survive //lint:allow suppression, sorted by position.
// Malformed suppression directives (no "-- justification") are reported as
// findings of the pseudo-analyzer "lintallow" and cannot be suppressed.
func RunUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allows, malformed := collectAllows(fset, files)

	var out []Finding
	for _, m := range malformed {
		out = append(out, Finding{Analyzer: "lintallow", Pos: m.pos, Message: m.msg})
	}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			posn := fset.Position(d.Pos)
			if allows.covers(a.Name, posn) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowKey addresses one source line of one file.
type allowKey struct {
	file string
	line int
}

// allowSet maps a line to the analyzer names allowed there.
type allowSet map[allowKey]map[string]bool

// covers reports whether a finding by the named analyzer at posn is
// suppressed by a directive on its line or the line above.
func (s allowSet) covers(name string, posn token.Position) bool {
	for _, line := range []int{posn.Line, posn.Line - 1} {
		if names, ok := s[allowKey{posn.Filename, line}]; ok && names[name] {
			return true
		}
	}
	return false
}

type malformedAllow struct {
	pos token.Position
	msg string
}

const allowPrefix = "lint:allow"

// collectAllows scans every comment for //lint:allow directives, returning
// the well-formed ones as a line-indexed set and the malformed ones as
// reportable findings.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []malformedAllow) {
	allows := make(allowSet)
	var bad []malformedAllow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				names, justification, found := strings.Cut(text, "--")
				if !found || strings.TrimSpace(justification) == "" {
					bad = append(bad, malformedAllow{pos: posn,
						msg: "suppression is missing its justification: want //lint:allow <analyzer> -- <why this is safe>"})
					continue
				}
				nameList := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(nameList) == 0 {
					bad = append(bad, malformedAllow{pos: posn,
						msg: "suppression names no analyzer: want //lint:allow <analyzer> -- <why this is safe>"})
					continue
				}
				key := allowKey{posn.Filename, posn.Line}
				if allows[key] == nil {
					allows[key] = make(map[string]bool)
				}
				for _, n := range nameList {
					allows[key][n] = true
				}
			}
		}
	}
	return allows, bad
}

// HotpathMarked reports whether a function declaration's doc comment
// carries the //cisp:hotpath annotation that opts it into the
// hotpathalloc analyzer.
func HotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//cisp:hotpath") {
			return true
		}
	}
	return false
}

// WithStack walks the AST rooted at root, calling fn for every node with
// the path of ancestors (outermost first, not including the node itself).
// If fn returns false the node's children are skipped.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // children skipped; Inspect sends no pop for n
		}
		stack = append(stack, n)
		return true
	})
}
