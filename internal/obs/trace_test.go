package obs

import (
	"strings"
	"testing"
	"time"
)

// buildSpanTree records one fixed span tree. order flips the creation
// order of two concurrent-style siblings — the export must not care.
func buildSpanTree(tr *Tracer, flipped bool) {
	s := &Sink{Tr: tr}
	fig := s.Span("fig:users")
	names := []string{"replay:cisp/fluid", "replay:fiber/fluid"}
	if flipped {
		names[0], names[1] = names[1], names[0]
	}
	for _, n := range names {
		c := fig.Child(n)
		c.SetItems(3)
		c.End()
	}
	te := fig.Child("te-solve")
	te.AddItems(2)
	te.End()
	fig.SetItems(0)
	fig.End()
	// A second run of the same stage: same path, next index, distinct ID.
	again := s.Span("fig:users")
	again.End()
}

func traceString(t *testing.T, tr *Tracer) string {
	t.Helper()
	var b strings.Builder
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTraceDeterministicAcrossCreationOrder(t *testing.T) {
	a := NewTracer(42, nil)
	buildSpanTree(a, false)
	b := NewTracer(42, nil)
	buildSpanTree(b, true)
	if ta, tb := traceString(t, a), traceString(t, b); ta != tb {
		t.Errorf("trace depends on sibling creation order:\n--- a ---\n%s--- b ---\n%s", ta, tb)
	}
}

func TestTraceSeedChangesIDsOnly(t *testing.T) {
	a := NewTracer(1, nil)
	buildSpanTree(a, false)
	b := NewTracer(2, nil)
	buildSpanTree(b, false)
	ta, tb := traceString(t, a), traceString(t, b)
	if ta == tb {
		t.Error("different seeds produced identical traces (IDs should differ)")
	}
}

func TestTraceGolden(t *testing.T) {
	tr := NewTracer(7, nil)
	s := &Sink{Tr: tr}
	root := s.Span("root")
	c := root.Child("work")
	c.SetItems(2)
	c.End()
	root.End()
	got := traceString(t, tr)
	want := `{"displayTimeUnit":"ms","traceEvents":[
{"name":"root","cat":"stage","ph":"X","ts":0,"dur":4,"pid":1,"tid":1,"args":{"id":"` +
		hex16(spanID(7, "root", 0)) + `","path":"root","items":0}},
{"name":"work","cat":"stage","ph":"X","ts":1,"dur":3,"pid":1,"tid":1,"args":{"id":"` +
		hex16(spanID(7, "root/work", 0)) + `","path":"root/work","items":2}}
]}
`
	if got != want {
		t.Errorf("trace golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return strings.TrimLeft(string(b[:]), "0")
}

func TestSpanIDDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, k := range []struct {
		seed  int64
		path  string
		index int
	}{{1, "a", 0}, {1, "a", 1}, {1, "b", 0}, {2, "a", 0}, {1, "a/b", 0}} {
		id := spanID(k.seed, k.path, k.index)
		if prev, dup := seen[id]; dup {
			t.Errorf("ID collision between %v and %s", k, prev)
		}
		seen[id] = k.path
	}
}

func TestSpanEventsDriveProgress(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { now = now.Add(250 * time.Millisecond); return now }
	tr := NewTracer(0, clock)
	var events []SpanEvent
	tr.OnEvent = func(ev SpanEvent) { events = append(events, ev) }
	s := &Sink{Tr: tr}
	sp := s.Span("stage")
	sp.SetItems(500)
	sp.End()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (begin+end)", len(events))
	}
	if events[0].End || events[0].Path != "stage" {
		t.Errorf("begin event = %+v", events[0])
	}
	end := events[1]
	if !end.End || end.Items != 500 || end.Path != "stage" {
		t.Errorf("end event = %+v", end)
	}
	if end.Elapsed != 250*time.Millisecond {
		t.Errorf("elapsed = %v, want 250ms", end.Elapsed)
	}
}

func TestTimerObservesClock(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { now = now.Add(30 * time.Millisecond); return now }
	s := &Sink{Reg: NewRegistry(), Clock: clock}
	stop := s.StartTimer("op_seconds")
	stop()
	h := s.Histogram("op_seconds")
	if h.Count() != 1 {
		t.Fatalf("timer recorded %d samples, want 1", h.Count())
	}
	if got := h.Sum(); got != 0.03 {
		t.Errorf("timer observed %v, want 0.03", got)
	}
}
