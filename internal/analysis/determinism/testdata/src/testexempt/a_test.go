// Package testexempt is golden testdata: _test.go files are exempt from
// the determinism analyzer, so nothing here is reported.
package testexempt

import (
	"math/rand"
	"testing"
	"time"
)

func TestUsesWallClock(t *testing.T) {
	_ = rand.Intn(10) // test files are exempt: no finding
	_ = time.Now()    // test files are exempt: no finding
}
