// Package graph implements the weighted-graph algorithms the cISP pipeline
// needs: heap-based Dijkstra over large sparse tower graphs, shortest-path
// extraction, node-blocked searches for tower-disjoint routing (Fig 4b of
// the paper), and all-pairs helpers for small site graphs.
//
// Nodes are dense integer IDs; edges are undirected with non-negative
// weights. The weight type is generic over ~float64 so each instantiation
// carries its own physical dimension (units.Meters for the tower and
// fiber graphs, raw float64 for dimension-neutral matrices): the graph
// layer is a dimension-polymorphic carrier — it never mixes two weight
// units, and the cisplint unitcheck analyzer checks the call sites that
// instantiate it.
package graph

import (
	"fmt"
	"math"

	"cisp/internal/xheap"
)

// Edge is a directed half-edge in an adjacency list.
type Edge[W ~float64] struct {
	To     int
	Weight W
}

// Graph is an undirected weighted graph. The zero value is an empty graph;
// use New for a pre-sized one.
type Graph[W ~float64] struct {
	adj [][]Edge[W]
}

// New returns a graph with n isolated nodes.
func New[W ~float64](n int) *Graph[W] {
	return &Graph[W]{adj: make([][]Edge[W], n)}
}

// N returns the number of nodes.
func (g *Graph[W]) N() int { return len(g.adj) }

// Edges returns the total number of undirected edges.
func (g *Graph[W]) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddNode appends an isolated node and returns its ID.
func (g *Graph[W]) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds an undirected edge of the given non-negative weight. It
// panics on out-of-range nodes or negative weight — both are programming
// errors in this codebase, not runtime conditions.
func (g *Graph[W]) AddEdge(u, v int, w W) {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, len(g.adj)))
	}
	if w < 0 || math.IsNaN(float64(w)) {
		panic(fmt.Sprintf("graph: negative or NaN weight %v", w))
	}
	g.adj[u] = append(g.adj[u], Edge[W]{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Edge[W]{To: u, Weight: w})
}

// Neighbors returns the adjacency list of u. The slice is shared with the
// graph and must not be modified.
func (g *Graph[W]) Neighbors(u int) []Edge[W] { return g.adj[u] }

// item is a heap entry; stale duplicates are skipped on pop.
type item[W ~float64] struct {
	node int
	dist W
}

// itemLess orders the Dijkstra frontier by tentative distance. Equal
// distances pop in heap order, which is deterministic for a given input;
// dist/prev results do not depend on how such ties break.
func itemLess[W ~float64](a, b item[W]) bool { return a.dist < b.dist }

// Dijkstra computes single-source shortest distances from src. Unreachable
// nodes get +Inf distance and prev -1. prev[src] is -1.
func (g *Graph[W]) Dijkstra(src int) (dist []W, prev []int) {
	return g.dijkstra(src, -1, nil)
}

// DijkstraBlocked is Dijkstra with a set of unusable nodes (blocked[i] true
// means node i may not be traversed; src itself is never blocked). Used for
// tower-disjoint path iteration.
func (g *Graph[W]) DijkstraBlocked(src int, blocked []bool) (dist []W, prev []int) {
	return g.dijkstra(src, -1, blocked)
}

// dijkstra runs until exhaustion or until target is settled (target=-1 to
// settle all nodes).
//
//cisp:hotpath
func (g *Graph[W]) dijkstra(src, target int, blocked []bool) ([]W, []int) {
	n := len(g.adj)
	// Once-per-call result and frontier setup, amortized over O(E log V)
	// relaxations; the relaxation loop below is allocation-free.
	dist := make([]W, n)    //lint:allow hotpathalloc -- once-per-call setup, also the return value
	prev := make([]int, n)  //lint:allow hotpathalloc -- once-per-call setup, also the return value
	done := make([]bool, n) //lint:allow hotpathalloc -- once-per-call setup
	for i := range dist {
		dist[i] = W(math.Inf(1))
		prev[i] = -1
	}
	dist[src] = 0
	q := []item[W]{{node: src, dist: 0}} //lint:allow hotpathalloc -- once-per-call frontier seed
	for len(q) > 0 {
		it := xheap.Pop(&q, itemLess[W])
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == target {
			break
		}
		for _, e := range g.adj[u] {
			v := e.To
			if done[v] || (blocked != nil && blocked[v]) {
				continue
			}
			if nd := dist[u] + e.Weight; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				xheap.Push(&q, item[W]{node: v, dist: nd}, itemLess[W])
			}
		}
	}
	return dist, prev
}

// ShortestPath returns the node sequence (src..dst inclusive) and length of
// the shortest path, or (nil, +Inf) if dst is unreachable.
func (g *Graph[W]) ShortestPath(src, dst int) ([]int, W) {
	return g.ShortestPathBlocked(src, dst, nil)
}

// ShortestPathBlocked is ShortestPath avoiding blocked nodes.
func (g *Graph[W]) ShortestPathBlocked(src, dst int, blocked []bool) ([]int, W) {
	if src == dst {
		return []int{src}, 0
	}
	dist, prev := g.dijkstra(src, dst, blocked)
	if math.IsInf(float64(dist[dst]), 1) {
		return nil, W(math.Inf(1))
	}
	return extractPath(prev, src, dst), dist[dst]
}

func extractPath(prev []int, src, dst int) []int {
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DisjointPaths returns up to k node-disjoint shortest paths between src and
// dst, found iteratively: after each path is extracted, its interior nodes
// are blocked and the search repeats (the paper's Fig 4b "tower-disjoint
// shortest paths" procedure). It stops early when no further path exists.
func (g *Graph[W]) DisjointPaths(src, dst, k int) (paths [][]int, lengths []W) {
	blocked := make([]bool, len(g.adj))
	for i := 0; i < k; i++ {
		path, length := g.ShortestPathBlocked(src, dst, blocked)
		if path == nil {
			break
		}
		paths = append(paths, path)
		lengths = append(lengths, length)
		for _, v := range path {
			if v != src && v != dst {
				blocked[v] = true
			}
		}
	}
	return paths, lengths
}

// PathLength sums edge weights along the node sequence, returning +Inf if a
// consecutive pair is not connected.
func (g *Graph[W]) PathLength(path []int) W {
	total := W(0)
	for i := 0; i+1 < len(path); i++ {
		w := W(math.Inf(1))
		for _, e := range g.adj[path[i]] {
			if e.To == path[i+1] && e.Weight < w {
				w = e.Weight
			}
		}
		if math.IsInf(float64(w), 1) {
			return w
		}
		total += w
	}
	return total
}

// DenseSourceShortest computes single-source shortest distances from src
// over a complete weight matrix w (w[u][v] = +Inf where no edge; the
// diagonal is ignored). It is the dense counterpart of Dijkstra: an O(n²)
// scan-for-minimum with no heap and one allocation, which matches
// Floyd-Warshall's per-source cost on complete graphs where the heap
// version pays an extra log factor. Ties settle at the lowest node index,
// and the resulting distances are bit-identical to heap Dijkstra's (each
// dist[v] is a min over the same sums, and min is order-independent).
func DenseSourceShortest[W ~float64](w [][]W, src int) []W {
	n := len(w)
	dist := make([]W, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = W(math.Inf(1))
	}
	dist[src] = 0
	for range n {
		u, best := -1, W(math.Inf(1))
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break // remaining nodes unreachable
		}
		done[u] = true
		wu := w[u]
		for v := 0; v < n; v++ {
			if done[v] || v == u {
				continue
			}
			if nd := best + wu[v]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	return dist
}

// Connected reports whether dst is reachable from src. Reachability needs
// neither edge weights nor path reconstruction, so this is a plain
// breadth-first search that exits as soon as dst is seen — no heap, no
// prev array, no full-graph settle.
func (g *Graph[W]) Connected(src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.adj))
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.To == dst {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return false
}
