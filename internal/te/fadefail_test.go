package te

import (
	"math"
	"testing"

	"cisp/internal/netsim"
	"cisp/internal/units"
)

// TestWarmReoptFadeThenFailSameLink is the regression for the control
// plane's composed link state: the same link graded down by weather, then
// hard-failed while faded, then repaired back to its *graded* rate (not
// clear sky), then cleared. Every transition must re-solve cleanly, every
// intermediate solution must avoid zero-capacity links and keep split
// fractions summing to one, and the dead link's paths must return once it
// does.
func TestWarmReoptFadeThenFailSameLink(t *testing.T) {
	links := diamond()
	comms := []netsim.Commodity{{Flow: 7, Src: 0, Dst: 3, Demand: 16e6}}
	ctrl, err := NewController(4, links, comms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 16 Mbps over two 10 Mbps arms: clear sky must use both.
	if got := len(ctrl.Solution().Splits[7]); got != 2 {
		t.Fatalf("clear sky uses %d paths, want 2", got)
	}

	crossesDead := func(splits map[int][]netsim.SplitPath, a, b int) bool {
		for _, sp := range splits[7] {
			for i := 0; i+1 < len(sp.Path); i++ {
				u, v := sp.Path[i], sp.Path[i+1]
				if (u == a && v == b) || (u == b && v == a) {
					return true
				}
			}
		}
		return false
	}
	checkSum := func(stage string) {
		t.Helper()
		sum := 0.0
		for _, sp := range ctrl.Solution().Splits[7] {
			if sp.Frac <= 0 {
				t.Fatalf("%s: non-positive fraction %v", stage, sp.Frac)
			}
			sum += sp.Frac
		}
		if math.Abs(sum-1) > netsim.SplitSumTol {
			t.Fatalf("%s: splits sum to %v, want 1", stage, sum)
		}
	}
	update := func(stage string, rate01 units.BitsPerSecond, wantAffected bool) {
		t.Helper()
		upd := diamond()
		upd[0].RateBps = rate01
		affected, err := ctrl.UpdateCapacities(upd)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if wantAffected && (len(affected) != 1 || affected[0] != 7) {
			t.Fatalf("%s: affected = %v, want [7]", stage, affected)
		}
		checkSum(stage)
	}

	// Weather grades link 0-1 to half rate: both arms stay in play (the
	// faded arm still has capacity), but the solution must remain feasible.
	update("fade to 5 Mbps", 5e6, true)
	fadedMLU := float64(ctrl.Solution().MLU)
	if crossed := crossesDead(ctrl.Solution().Splits, 0, 1); !crossed {
		t.Fatalf("fade alone should not evacuate the graded link")
	}

	// The faded link now hard-fails — the simultaneous state the control
	// plane composes. Everything must evacuate it.
	update("fail while faded", 0, true)
	if crossesDead(ctrl.Solution().Splits, 0, 1) {
		t.Fatalf("splits still traverse the failed link 0-1")
	}
	failedMLU := float64(ctrl.Solution().MLU)
	if failedMLU <= fadedMLU {
		t.Fatalf("one-arm MLU %v not worse than faded two-arm MLU %v", failedMLU, fadedMLU)
	}

	// Repair returns the link at its graded rate, not clear sky.
	update("repair to graded rate", 5e6, true)
	if !crossesDead(ctrl.Solution().Splits, 0, 1) {
		t.Fatalf("repaired (graded) link not reused")
	}
	if got := float64(ctrl.Solution().MLU); got > failedMLU {
		t.Fatalf("graded repair MLU %v worse than single-arm MLU %v", got, failedMLU)
	}

	// The fade clears: back to the clear-sky capacity vector; the solution
	// must again be feasible at MLU ≤ 1.
	update("fade clears", 10e6, true)
	if got := float64(ctrl.Solution().MLU); got > 1+1e-9 {
		t.Fatalf("clear-sky MLU %v after the episode, want ≤ 1", got)
	}

	// Re-installing identical capacities is a no-op: nothing affected.
	if affected, err := ctrl.UpdateCapacities(diamond()); err != nil || affected != nil {
		t.Fatalf("idempotent update: affected %v, err %v", affected, err)
	}
}
