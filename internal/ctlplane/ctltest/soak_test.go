package ctltest

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"cisp/internal/ctlplane"
	"cisp/internal/netsim"
)

// soakSchedule builds the deterministic 1000-event soak input: a month of
// seeded weather gradings and hardware failures from DrawStream (MTBF
// shortened so outages actually occur), padded past the horizon with a
// synthetic fade/fail/repair rotation if the drawn weather was too calm.
// Pure function of its arguments.
func soakSchedule(b *ctlplane.Backbone, n int) []ctlplane.TimedEvent {
	const horizon = 30 * 86400
	evs := ctlplane.DrawStream(b, ctlplane.StreamConfig{
		Seed:    42,
		Horizon: horizon,
		MTBF:    5 * 86400,
		MTTR:    8 * 3600,
	})
	if len(evs) > n {
		evs = evs[:n]
	}
	at := float64(horizon)
	nLinks := len(b.Mw) + len(b.Fiber)
	fracs := []float64{0.75, 0.5, 0.25, 1}
	for i := 0; len(evs) < n; i++ {
		at += 60
		var ev ctlplane.Event
		switch i % 6 {
		case 4:
			ev = ctlplane.Event{Type: ctlplane.EventFail, Link: i % nLinks}
		case 5:
			ev = ctlplane.Event{Type: ctlplane.EventRepair, Link: i % nLinks}
		default:
			ev = ctlplane.Event{Type: ctlplane.EventFade, Link: i % len(b.Mw), CapFrac: fracs[i%len(fracs)]}
		}
		evs = append(evs, ctlplane.TimedEvent{At: at, Ev: ev})
	}
	return evs
}

// TestSoakThousandEvents is the tier-2 endurance run: a thousand
// virtual-clock events stream through the full HTTP surface while
// concurrent readers hammer the snapshot endpoint, and every sequence
// invariant must hold at the end. Run under -race in CI's full tier; the
// short tier skips it.
func TestSoakThousandEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 soak: skipped with -short")
	}
	const nEvents = 1000
	h := Start(t, Options{})
	schedule := soakSchedule(Backbone(), nEvents)
	if len(schedule) != nEvents {
		t.Fatalf("schedule has %d events, want %d", len(schedule), nEvents)
	}

	const readers = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(h.URL + "/v1/snapshot")
				if err != nil {
					t.Errorf("soak reader: %v", err)
					return
				}
				var s ctlplane.Snapshot
				derr := json.NewDecoder(resp.Body).Decode(&s)
				resp.Body.Close()
				if derr != nil {
					t.Errorf("soak reader decode: %v", derr)
					return
				}
				if s.Version < lastVersion {
					t.Errorf("soak reader: version %d after %d", s.Version, lastVersion)
					return
				}
				lastVersion = s.Version
				for _, cw := range s.Commodities {
					sum := 0.0
					for _, sp := range cw.Splits {
						sum += sp.Frac
					}
					if math.Abs(sum-1) > netsim.SplitSumTol {
						t.Errorf("soak reader: torn v%d flow %d sum %v", s.Version, cw.Flow, sum)
						return
					}
				}
			}
		}()
	}

	start := time.Unix(0, 0)
	for _, te := range schedule {
		h.Clock.Set(start.Add(time.Duration(te.At * float64(time.Second))))
		h.Inject(te.Ev)
	}
	close(done)
	wg.Wait()

	h.AssertInvariants()
	seq := h.Sequence()
	// Every event publishes at least one snapshot (fail/repair publish two
	// when reopt is enabled), on top of the initial one.
	if len(seq) < nEvents+1 {
		t.Fatalf("%d publications for %d events, want > %d", len(seq), nEvents, nEvents)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].TimeUnix < seq[i-1].TimeUnix {
			t.Fatalf("virtual clock regressed across publications: %d after %d (v%d)",
				seq[i].TimeUnix, seq[i-1].TimeUnix, seq[i].Version)
		}
	}
	t.Logf("soak: %d events, %d snapshots, final MLU %.3f", nEvents, len(seq), seq[len(seq)-1].MLU)
}
