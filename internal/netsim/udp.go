package netsim

import (
	"math/rand"
	"sort"
)

// FlowStats accumulates FlowMonitor-style per-flow metrics.
type FlowStats struct {
	TxPackets int64
	RxPackets int64
	DelaySum  float64 // seconds, summed over delivered packets
}

// MeanDelay returns the mean one-way delay of delivered packets in seconds.
func (f *FlowStats) MeanDelay() float64 {
	if f.RxPackets == 0 {
		return 0
	}
	return f.DelaySum / float64(f.RxPackets)
}

// LossRate returns 1 - delivered/sent (0 when nothing was sent).
func (f *FlowStats) LossRate() float64 {
	if f.TxPackets == 0 {
		return 0
	}
	return 1 - float64(f.RxPackets)/float64(f.TxPackets)
}

// FlowMonitor aggregates per-flow stats, mirroring ns-3's FlowMonitor.
type FlowMonitor struct {
	flows map[int]*FlowStats
}

// NewFlowMonitor returns an empty monitor.
func NewFlowMonitor() *FlowMonitor { return &FlowMonitor{flows: make(map[int]*FlowStats)} }

// Flow returns (allocating if needed) the stats for a flow ID.
func (m *FlowMonitor) Flow(id int) *FlowStats {
	f := m.flows[id]
	if f == nil {
		f = &FlowStats{}
		m.flows[id] = f
	}
	return f
}

// Aggregate sums all per-flow stats. Flows are folded in ID order so the
// float DelaySum is bit-identical run to run (map order is randomized and
// float addition is not associative).
func (m *FlowMonitor) Aggregate() FlowStats {
	var a FlowStats
	ids := make([]int, 0, len(m.flows))
	for id := range m.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f := m.flows[id]
		a.TxPackets += f.TxPackets
		a.RxPackets += f.RxPackets
		a.DelaySum += f.DelaySum
	}
	return a
}

// MeanDelay returns the packet-weighted mean delay across flows, seconds.
func (m *FlowMonitor) MeanDelay() float64 {
	a := m.Aggregate()
	return a.MeanDelay()
}

// LossRate returns the aggregate loss rate across flows.
func (m *FlowMonitor) LossRate() float64 {
	a := m.Aggregate()
	return a.LossRate()
}

// UDPSource generates fixed-size datagrams at a target rate, either with
// constant spacing or Poisson (exponential) inter-arrivals, stamping and
// counting through a FlowMonitor. The paper's §5 experiments use uniform
// 500-byte packets.
type UDPSource struct {
	Net     *Network
	Flow    int
	Src     int
	Dst     int
	RateBps float64
	PktSize int // bytes
	Poisson bool
	Rng     *rand.Rand // required when Poisson
	Monitor *FlowMonitor

	seq     int64
	stopped bool
}

// Start begins sending at sim time now and keeps sending until Stop or the
// simulation ends.
func (u *UDPSource) Start() {
	u.Net.OnDeliver(u.Flow, func(p *Packet) {
		f := u.Monitor.Flow(u.Flow)
		f.RxPackets++
		f.DelaySum += u.Net.Sim.Now() - p.SentAt
	})
	u.scheduleNext()
}

// Stop halts future sends.
func (u *UDPSource) Stop() { u.stopped = true }

func (u *UDPSource) interval() float64 {
	mean := float64(u.PktSize) * 8 / u.RateBps
	if !u.Poisson {
		return mean
	}
	return u.Rng.ExpFloat64() * mean
}

func (u *UDPSource) scheduleNext() {
	if u.stopped || u.RateBps <= 0 {
		return
	}
	u.Net.Sim.Schedule(u.interval(), func() {
		if u.stopped {
			return
		}
		u.seq++
		u.Monitor.Flow(u.Flow).TxPackets++
		p := u.Net.newPacket()
		p.Flow, p.Seq, p.Kind, p.Size = u.Flow, u.seq, Data, u.PktSize
		p.Src, p.Dst = u.Src, u.Dst
		u.Net.Inject(p)
		u.scheduleNext()
	})
}

// QueueSampler records a link's queue length at a fixed period, for the
// Fig 6 queue-occupancy distributions.
type QueueSampler struct {
	Link    *Link
	Period  float64
	samples []int
	stopped bool
}

// Start begins sampling.
func (q *QueueSampler) Start(sim *Simulator) {
	var tick func()
	tick = func() {
		if q.stopped {
			return
		}
		q.samples = append(q.samples, q.Link.QueueLen())
		sim.Schedule(q.Period, tick)
	}
	sim.Schedule(q.Period, tick)
}

// Stop halts sampling.
func (q *QueueSampler) Stop() { q.stopped = true }

// Samples returns the raw samples.
func (q *QueueSampler) Samples() []int { return q.samples }

// Percentile returns the p-th percentile (0-100) of sampled queue lengths.
func (q *QueueSampler) Percentile(p float64) float64 {
	if len(q.samples) == 0 {
		return 0
	}
	return PercentileInts(q.samples, p)
}
