package maporder_test

import (
	"testing"

	"cisp/internal/analysis/analysistest"
	"cisp/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "mapordertest")
}
