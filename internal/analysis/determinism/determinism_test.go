package determinism_test

import (
	"testing"

	"cisp/internal/analysis/analysistest"
	"cisp/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"determinismtest", "mainexempt", "testexempt")
}
