package experiments

import (
	"math"

	"cisp/internal/acquisition"
	"cisp/internal/media"
	"cisp/internal/units"
)

// ExtensionsResult carries the two beyond-the-figures studies the paper
// sketches: the §3.4/§4 media comparison and the §6.5 probabilistic
// tower-acquisition refinement.
type ExtensionsResult struct {
	// MMWCrossoverGbps is the bandwidth where millimeter wave beats
	// microwave on a 500 km link; FSOCrossoverGbps likewise for free-space
	// optics.
	MMWCrossoverGbps float64
	FSOCrossoverGbps float64

	// Acquisition refinement on the scenario's longest microwave link.
	AcqFeasibleRate float64
	AcqMedianKm     float64
	AcqAfterConfirm float64 // feasible rate after confirming priority towers
}

// Extensions runs the §3.4 media-crossover analysis and a §6.5 acquisition
// refinement demo on the current scenario.
func Extensions(opt Options) *ExtensionsResult {
	w := opt.out()
	res := &ExtensionsResult{}

	// Media: where do shorter-range, higher-rate technologies overtake
	// parallel microwave series (§4's closing observation)?
	const linkLen = 500e3
	res.MMWCrossoverGbps = media.CrossoverGbps(media.Microwave(), media.MillimeterWave(), linkLen, 100_000, 1<<20)
	res.FSOCrossoverGbps = media.CrossoverGbps(media.Microwave(), media.FreeSpaceOptics(), linkLen, 100_000, 1<<20)
	fprintf(w, "Extensions — §3.4 media generality (500 km link)\n")
	fprintf(w, "  MMW overtakes microwave at ~%.0f Gbps; FSO at ~%.0f Gbps\n",
		res.MMWCrossoverGbps, res.FSOCrossoverGbps)
	for _, g := range []float64{1, 10, 100} {
		plans := media.Cheapest(linkLen, g, 100_000)
		fprintf(w, "  at %5.0f Gbps the cheapest medium is %-9s ($%.1fM capex)\n",
			g, plans[0].Medium.Name, plans[0].Capex/1e6)
	}

	// Acquisition refinement (§6.5) on the longest MW-connected pair.
	s := opt.scenario()
	bi, bj, best := -1, -1, units.Meters(0)
	for i := range s.Cities {
		for j := i + 1; j < len(s.Cities); j++ {
			if math.IsInf(float64(s.Links.MWDist(i, j)), 1) {
				continue
			}
			if d := s.Cities[i].Loc.DistanceTo(s.Cities[j].Loc); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	if bi < 0 {
		return res
	}
	req := acquisition.Request{
		A: s.Cities[bi].Loc, B: s.Cities[bj].Loc,
		Samples: 60, Seed: opt.Seed,
	}
	model := acquisition.Model{}
	r1 := acquisition.Refine(s.Registry, s.Eval, model, req)
	res.AcqFeasibleRate = r1.FeasibleRate()
	res.AcqMedianKm = float64(r1.MedianLength().Km())

	confirmed := map[int]acquisition.Status{}
	for _, id := range acquisition.PriorityTowers(r1, confirmed, 10) {
		confirmed[id] = acquisition.Acquired
	}
	req.Confirmed = confirmed
	r2 := acquisition.Refine(s.Registry, s.Eval, model, req)
	res.AcqAfterConfirm = r2.FeasibleRate()

	fprintf(w, "Extensions — §6.5 acquisition refinement (%s ↔ %s, %.0f km)\n",
		s.Cities[bi].Name, s.Cities[bj].Name, best.Km())
	fprintf(w, "  buildable in %.0f%% of acquisition samples (median route %.0f km)\n",
		res.AcqFeasibleRate*100, res.AcqMedianKm)
	fprintf(w, "  after confirming the 10 highest-value towers: %.0f%%\n",
		res.AcqAfterConfirm*100)
	return res
}
