package netsim

import (
	"fmt"
	"math"

	"cisp/internal/units"
	"cisp/internal/xheap"
)

// FluidSim is the flow-level counterpart of the packet simulator: instead of
// individual packets it models each flow as a fluid stream whose rate is the
// weighted max-min fair share of its path (progressive filling, the
// steady-state allocation TCP approximates), recomputed event-driven on
// every flow arrival and departure. This is what lets §6.4-style traffic
// mixes from internal/traffic be replayed with 10⁵–10⁶ concurrent flows
// over full designed topologies — far beyond what per-packet simulation
// reaches.
//
// Flows that share a route are grouped: the allocator works on routes
// (bounded by distinct commodity paths, ~10⁴ on a 100-node design), not
// individual flows, and each group tracks its members' departures through a
// cumulative service accumulator — a flow of B bytes arriving when the
// group has served S bytes per flow departs when the accumulator reaches
// S + B. Per-event cost is therefore O(links² + Σ route lengths),
// independent of the number of concurrent flows.
//
// The simulation is deterministic: allocation iterates links and routes in
// index order and all heap orderings carry explicit tie-breaks.
type FluidSim struct {
	// RateTol suppresses departure-event rescheduling for groups whose
	// per-flow rate changed by at most this relative fraction in a
	// recomputation (their rate is still updated). 0 (the default) tracks
	// every change exactly; small values (e.g. 1e-3) trade bounded rate
	// staleness for fewer heap operations on huge runs.
	RateTol float64

	nNodes     int
	processed  int64 // events executed (live departures + arrivals)
	maxPending int   // arrivals+departures heap high-water mark
	links      []fluidLink
	linkIdx    map[[2]int]int32
	groups     []fluidGroup
	now        float64

	// Per-flow state, indexed by flow ID (assigned densely by StartAt).
	flowRoute []int32
	flowBytes []float64
	flowThr   []float64 // departure threshold on the group's service axis
	flowStart []float64
	flowFCT   []float64 // -1 until completed

	// Reroute bookkeeping for utilization attribution: bytes a flow served
	// on routes it has since left are credited to those links at the moment
	// of the move (linkServed), and flowCredited records how much of each
	// flow's service has been credited so far — the uncredited remainder
	// belongs to the flow's current route.
	flowCredited []float64
	linkServed   []float64

	active    int // currently running flows
	activeG   int // groups with at least one running flow
	completed int

	arrivals []arrivalItem
	deps     []depItem

	// Allocator state. linkW is maintained incrementally (active flows per
	// link); scratch arrays are reused across recomputations.
	linkW    []float64
	scratchW []float64
	scratchR []float64
	frozenAt []int64
	epoch    int64
}

type fluidLink struct {
	from, to int
	capBps   float64 // current capacity; 0 = link down
	origCap  float64 // construction-time (clear-sky) capacity, for utilization reporting
	groups   []int32 // routes crossing this link (grows with AddRoute)
}

type fluidGroup struct {
	links    []int32
	n        int       // active flows
	rate     float64   // per-flow rate, bps
	svc      float64   // cumulative per-flow service, bytes
	lastT    float64   // time svc was last advanced to
	thr      []thrItem // pending departure thresholds, min first
	gen      int64     // invalidates stale departure events
	hasEvent bool      // a departure event with the current gen is queued
}

type thrItem struct {
	thr  float64
	flow int32
}

// thrLess orders departure thresholds min-first, flow ID as tie-break.
// Top-level so xheap call sites stay allocation-free (DESIGN.md §9).
func thrLess(a, b thrItem) bool {
	if a.thr != b.thr {
		return a.thr < b.thr
	}
	return a.flow < b.flow
}

type depItem struct {
	t   float64
	g   int32
	gen int64
}

// depLess orders departure events by time, group index as tie-break.
func depLess(a, b depItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.g < b.g
}

type arrivalItem struct {
	t    float64
	flow int32
}

// arrivalLess orders arrivals by time, flow ID as tie-break.
func arrivalLess(a, b arrivalItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.flow < b.flow
}

// NewFluid builds a fluid simulator over the duplex topology (two directed
// fluid links per TopoLink; queue capacities are meaningless at the fluid
// level and ignored).
func NewFluid(nNodes int, links []TopoLink) *FluidSim {
	f := &FluidSim{nNodes: nNodes, linkIdx: make(map[[2]int]int32, 2*len(links))}
	add := func(a, b int, capBps float64) {
		key := [2]int{a, b}
		if _, dup := f.linkIdx[key]; dup {
			panic(fmt.Sprintf("netsim: duplicate fluid link %d->%d", a, b))
		}
		f.linkIdx[key] = int32(len(f.links))
		f.links = append(f.links, fluidLink{from: a, to: b, capBps: capBps, origCap: capBps})
	}
	for _, l := range links {
		add(l.A, l.B, float64(l.RateBps))
		add(l.B, l.A, float64(l.RateBps))
	}
	f.linkW = make([]float64, len(f.links))
	f.scratchW = make([]float64, len(f.links))
	f.scratchR = make([]float64, len(f.links))
	f.linkServed = make([]float64, len(f.links))
	return f
}

// AddRoute registers a directed route (a node path of length >= 2) and
// returns its ID. All flows started on the same route share one allocation
// group. Panics if a hop has no link.
func (f *FluidSim) AddRoute(path []int) int {
	if len(path) < 2 {
		panic("netsim: fluid route must have at least two nodes")
	}
	gid := int32(len(f.groups))
	g := fluidGroup{links: make([]int32, len(path)-1)}
	for i := 0; i+1 < len(path); i++ {
		li, ok := f.linkIdx[[2]int{path[i], path[i+1]}]
		if !ok {
			panic(fmt.Sprintf("netsim: no fluid link %d->%d on route", path[i], path[i+1]))
		}
		g.links[i] = li
		f.links[li].groups = append(f.links[li].groups, gid)
	}
	f.groups = append(f.groups, g)
	f.frozenAt = append(f.frozenAt, 0)
	return int(gid)
}

// StartAt schedules a flow of the given payload on a registered route,
// arriving at time at (>= the current simulation time), and returns its
// flow ID. FCTs are measured from at.
func (f *FluidSim) StartAt(route int, bytes float64, at float64) int {
	if at < f.now {
		at = f.now
	}
	if bytes <= 0 {
		bytes = 1
	}
	id := int32(len(f.flowRoute))
	f.flowRoute = append(f.flowRoute, int32(route))
	f.flowBytes = append(f.flowBytes, bytes)
	f.flowThr = append(f.flowThr, 0)
	f.flowStart = append(f.flowStart, at)
	f.flowFCT = append(f.flowFCT, -1)
	f.flowCredited = append(f.flowCredited, 0)
	xheap.Push(&f.arrivals, arrivalItem{t: at, flow: id}, arrivalLess)
	return int(id)
}

// Start schedules a flow arriving now.
func (f *FluidSim) Start(route int, bytes float64) int {
	return f.StartAt(route, bytes, f.now)
}

// Now returns the current simulation time in seconds.
func (f *FluidSim) Now() float64 { return f.now }

// Processed returns the number of events executed (live departure and
// arrival events; stale, superseded departures are not counted). The
// benchmark harness divides wall time by it to report ns/event.
func (f *FluidSim) Processed() int64 { return f.processed }

// MaxPending returns the high-water mark of queued arrival+departure
// events — the observability layer's heap-depth figure.
func (f *FluidSim) MaxPending() int { return f.maxPending }

// Active returns the number of currently running flows.
func (f *FluidSim) Active() int { return f.active }

// Completed returns the number of finished flows.
func (f *FluidSim) Completed() int { return f.completed }

// FCT returns a flow's completion time in seconds (measured from its
// arrival) and whether it has completed.
func (f *FluidSim) FCT(flow int) (float64, bool) {
	v := f.flowFCT[flow]
	return v, v >= 0
}

// ServedBytes returns how much of a flow's payload has been transferred.
func (f *FluidSim) ServedBytes(flow int) float64 {
	if f.flowFCT[flow] >= 0 {
		return f.flowBytes[flow]
	}
	if f.flowThr[flow] == 0 {
		return 0 // scheduled but not yet admitted (thresholds are always > 0)
	}
	g := &f.groups[f.flowRoute[flow]]
	svc := g.svc + g.rate/8*(f.now-g.lastT)
	served := f.flowBytes[flow] - (f.flowThr[flow] - svc)
	if served < 0 {
		return 0
	}
	if served > f.flowBytes[flow] {
		return f.flowBytes[flow]
	}
	return served
}

// RouteRate returns the current per-flow max-min rate (bps) on a route.
func (f *FluidSim) RouteRate(route int) float64 { return f.groups[route].rate }

// LinkUtilizations returns every directed link's time-average utilization
// over [0, Now()]: bytes served across the link (completed and in-progress
// flows both counted) divided by capacity × elapsed time. A rerouted
// flow's service is split between routes: bytes served before each move
// were credited to the old route's links at Reroute time, and only the
// uncredited remainder counts against the current route. Links appear in
// construction order (A→B then B→A per TopoLink). Cost is
// O(links + flows × path length), intended for end-of-run reporting.
func (f *FluidSim) LinkUtilizations() []LinkLoad {
	served := append([]float64(nil), f.linkServed...)
	for id := range f.flowRoute {
		sb := f.ServedBytes(id) - f.flowCredited[id]
		if sb <= 0 {
			continue
		}
		for _, li := range f.groups[f.flowRoute[id]].links {
			served[li] += sb
		}
	}
	out := make([]LinkLoad, len(f.links))
	for li := range f.links {
		l := &f.links[li]
		u := 0.0
		// Utilization is measured against the construction-time capacity, so
		// a link that spent part of the run failed (capBps 0) still reports
		// the load it actually carried.
		if f.now > 0 && l.origCap > 0 {
			u = served[li] * 8 / (l.origCap * f.now)
			if u > 1 {
				u = 1
			}
		}
		out[li] = LinkLoad{From: l.from, To: l.to, Utilization: units.Utilization(u)}
	}
	return out
}

// SetLinkRate updates a directed link's capacity mid-run: 0 takes the link
// down (flows crossing it re-rate to zero and stall), a positive rate
// restores or resizes it. Edits do not take effect until the next
// Recompute — batch a set of SetLinkRate/Reroute calls and recompute once.
func (f *FluidSim) SetLinkRate(from, to int, capBps float64) {
	li, ok := f.linkIdx[[2]int{from, to}]
	if !ok {
		panic(fmt.Sprintf("netsim: no fluid link %d->%d", from, to))
	}
	f.links[li].capBps = capBps
}

// Recompute re-runs the max-min allocation and reschedules departure
// events. Call once after a batch of SetLinkRate / Reroute edits; arrivals
// and departures processed by Run recompute on their own.
func (f *FluidSim) Recompute() { f.recompute() }

// Reroute moves a flow onto another registered route, carrying its
// remaining bytes: the flow departs when the new group has served them.
// Pending (not yet admitted) flows simply start on the new route; completed
// flows and no-op moves are ignored. A flow whose remaining payload is
// already zero (its departure event just hasn't fired) completes in place.
// Like SetLinkRate, the rate effect lands at the next Recompute.
func (f *FluidSim) Reroute(flow, route int) {
	if route < 0 || route >= len(f.groups) {
		panic(fmt.Sprintf("netsim: reroute of flow %d onto unregistered route %d", flow, route))
	}
	if f.flowFCT[flow] >= 0 || int(f.flowRoute[flow]) == route {
		return
	}
	if f.flowThr[flow] == 0 { // pending: admit reads flowRoute at arrival time
		f.flowRoute[flow] = int32(route)
		return
	}
	g := &f.groups[f.flowRoute[flow]]
	f.advance(g)
	remaining := f.flowThr[flow] - g.svc

	// Credit the bytes served on the route being left, so utilization
	// reporting attributes them to the links that actually carried them.
	served := f.flowBytes[flow] - math.Max(remaining, 0)
	if delta := served - f.flowCredited[flow]; delta > 0 {
		for _, li := range g.links {
			f.linkServed[li] += delta
		}
		f.flowCredited[flow] = served
	}

	// Detach from the old group.
	for i := range g.thr {
		if g.thr[i].flow == int32(flow) {
			xheap.Remove(&g.thr, i, thrLess)
			break
		}
	}
	g.n--
	for _, li := range g.links {
		f.linkW[li]--
	}
	if g.n == 0 {
		f.activeG--
		g.rate = 0
	}
	g.gen++
	g.hasEvent = false

	if remaining <= 0 {
		// Fully served; its departure event was pending. Complete in place.
		f.flowFCT[flow] = f.now - f.flowStart[flow]
		f.completed++
		f.active--
		return
	}

	// Attach to the new group with the remaining payload.
	ng := &f.groups[route]
	f.advance(ng)
	if ng.n == 0 {
		f.activeG++
	}
	ng.n++
	ng.gen++
	ng.hasEvent = false
	f.flowRoute[flow] = int32(route)
	f.flowThr[flow] = ng.svc + remaining
	xheap.Push(&ng.thr, thrItem{thr: ng.svc + remaining, flow: int32(flow)}, thrLess)
	for _, li := range ng.links {
		f.linkW[li]++
	}
}

// advance accrues a group's service up to the current time.
//
//cisp:hotpath
func (f *FluidSim) advance(g *fluidGroup) {
	if f.now > g.lastT {
		g.svc += g.rate / 8 * (f.now - g.lastT)
	}
	g.lastT = f.now
}

// Run processes arrivals and departures until the event queues drain or
// simulated time reaches until (inclusive). Rates are recomputed after each
// batch of same-time events.
//
//cisp:hotpath
func (f *FluidSim) Run(until float64) {
	for {
		if n := len(f.arrivals) + len(f.deps); n > f.maxPending {
			f.maxPending = n
		}
		tA, tD := math.Inf(1), math.Inf(1)
		if len(f.arrivals) > 0 {
			tA = f.arrivals[0].t
		}
		// Skip stale departure events (superseded by a newer reschedule).
		for len(f.deps) > 0 {
			top := f.deps[0]
			if g := &f.groups[top.g]; g.gen != top.gen {
				xheap.Pop(&f.deps, depLess)
				continue
			}
			tD = top.t
			break
		}
		t := math.Min(tA, tD)
		if t > until || math.IsInf(t, 1) {
			break
		}
		if t > f.now {
			f.now = t
		}
		changed := false
		// Departures first: their service accrual is closed at t before any
		// same-instant arrival perturbs the group.
		for len(f.deps) > 0 && f.deps[0].t <= f.now {
			it := xheap.Pop(&f.deps, depLess)
			g := &f.groups[it.g]
			if g.gen != it.gen {
				continue
			}
			f.departGroup(it.g)
			f.processed++
			changed = true
		}
		for len(f.arrivals) > 0 && f.arrivals[0].t <= f.now {
			it := xheap.Pop(&f.arrivals, arrivalLess)
			f.admit(it)
			f.processed++
			changed = true
		}
		if changed {
			f.recompute()
		}
	}
	if f.now < until {
		f.now = until
	}
	// Close service accrual so rate/progress queries at the horizon are
	// consistent.
	for gi := range f.groups {
		if f.groups[gi].n > 0 {
			f.advance(&f.groups[gi])
		}
	}
}

// admit activates an arrived flow on its current route (flowRoute is read
// at admission, not at StartAt, so a Reroute of a still-pending flow takes
// effect when the flow starts).
//
//cisp:hotpath
func (f *FluidSim) admit(it arrivalItem) {
	g := &f.groups[f.flowRoute[it.flow]]
	f.advance(g)
	if g.n == 0 {
		f.activeG++
	}
	g.n++
	g.gen++ // the pending-departure minimum may have changed
	g.hasEvent = false
	bytes := f.flowBytes[it.flow]
	f.flowThr[it.flow] = g.svc + bytes
	xheap.Push(&g.thr, thrItem{thr: g.svc + bytes, flow: it.flow}, thrLess)
	for _, li := range g.links {
		f.linkW[li]++
	}
	f.active++
}

// departGroup completes every flow of the group whose threshold has been
// reached at the current time.
//
//cisp:hotpath
func (f *FluidSim) departGroup(gi int32) {
	g := &f.groups[gi]
	f.advance(g)
	// The fired event corresponds to the minimum threshold under the rates
	// it was computed with; floating-point round-trip can leave svc a hair
	// short. Snap forward so the due flow always departs.
	if len(g.thr) > 0 && g.svc < g.thr[0].thr {
		g.svc = g.thr[0].thr
	}
	for len(g.thr) > 0 && g.thr[0].thr <= g.svc {
		it := xheap.Pop(&g.thr, thrLess)
		f.flowFCT[it.flow] = f.now - f.flowStart[it.flow]
		f.completed++
		f.active--
		g.n--
		for _, li := range g.links {
			f.linkW[li]--
		}
	}
	if g.n == 0 {
		f.activeG--
		g.rate = 0
	}
	g.gen++
	g.hasEvent = false
}

// recompute reruns weighted progressive filling: repeatedly find the link
// with the smallest fair share (residual capacity / unfrozen flow count),
// freeze every route through it at that per-flow rate, and subtract the
// frozen routes from their other links. Groups whose rate changed (beyond
// RateTol) or whose pending event was invalidated get a fresh departure
// event.
//
//cisp:hotpath
func (f *FluidSim) recompute() {
	f.epoch++
	for li := range f.links {
		f.scratchW[li] = f.linkW[li]
		f.scratchR[li] = f.links[li].capBps
	}
	remaining := f.activeG
	for remaining > 0 {
		best, bestShare := int32(-1), math.Inf(1)
		for li := range f.links {
			if f.scratchW[li] > 0 {
				share := f.scratchR[li] / f.scratchW[li]
				if share < 0 {
					share = 0
				}
				if share < bestShare {
					best, bestShare = int32(li), share
				}
			}
		}
		if best < 0 {
			break // defensive: every active group weights some link
		}
		for _, gi := range f.links[best].groups {
			g := &f.groups[gi]
			if g.n == 0 || f.frozenAt[gi] == f.epoch {
				continue
			}
			f.frozenAt[gi] = f.epoch
			remaining--
			f.setRate(gi, bestShare)
			w := float64(g.n)
			for _, li := range g.links {
				f.scratchW[li] -= w
				f.scratchR[li] -= bestShare * w
				if f.scratchW[li] < 1e-9 {
					f.scratchW[li] = 0
				}
				if f.scratchR[li] < 0 {
					f.scratchR[li] = 0
				}
			}
		}
	}
}

// setRate applies a group's new allocation and (re)schedules its next
// departure event when needed. The rate itself is always applied; RateTol
// only suppresses the event reschedule for sub-tolerance changes (the
// outstanding event then fires up to tolerance-early or -late, which
// departGroup absorbs).
//
//cisp:hotpath
func (f *FluidSim) setRate(gi int32, r float64) {
	g := &f.groups[gi]
	reschedule := r != g.rate
	if reschedule {
		f.advance(g)
		if g.rate > 0 && r > 0 && math.Abs(r-g.rate) <= f.RateTol*g.rate {
			reschedule = false
		}
		g.rate = r
	}
	if (reschedule || !g.hasEvent) && g.n > 0 {
		g.gen++
		g.hasEvent = false
		if len(g.thr) > 0 && g.rate > 0 {
			dt := (g.thr[0].thr - g.svc) * 8 / g.rate
			if dt < 0 {
				dt = 0
			}
			xheap.Push(&f.deps, depItem{t: g.lastT + dt, g: gi, gen: g.gen}, depLess)
			g.hasEvent = true
		}
	}
}
