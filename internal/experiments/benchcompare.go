package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadBenchRecord reads a BenchRecord from the JSON file BenchNetsim
// writes, rejecting documents of any other schema.
func LoadBenchRecord(path string) (*BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, benchSchema)
	}
	return &rec, nil
}

// BenchRegression is one engine metric that got worse than the compare
// tolerance allows: throughput (flows/sec) dropping or per-event cost
// (ns/event) rising.
type BenchRegression struct {
	Mode   string  // engine ("packet", "fluid")
	Metric string  // "flows/sec" or "ns/event"
	Old    float64 // baseline value
	New    float64
	Change float64 // relative change, >0 means worse
}

func (r BenchRegression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%%: %.1f -> %.1f", r.Mode, r.Metric, r.Change*100, r.Old, r.New)
}

// CompareBenchRecords checks a new benchmark record against a baseline:
// for every engine the baseline measured, throughput must not drop and
// per-event cost must not rise by more than the tolerance fraction
// (0.10 = 10%). An engine missing from the new record is an error — a
// silently vanished engine must not read as "no regression". Engines
// only the new record has are ignored (new engines have no baseline).
// Improvements are never regressions. The regressions come back in
// baseline engine order, throughput before per-event cost.
//
// When the baseline carries a TE block, the new record must too (same
// vanishing-measurement rule), and the TE ratchets apply after the
// engines': reopt latency percentiles must not rise past the tolerance,
// and the drill's LP-solve count — which is seed-deterministic, not a
// wall-clock figure — must not rise at all.
func CompareBenchRecords(old, new *BenchRecord, tolerance float64) ([]BenchRegression, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("negative tolerance %v", tolerance)
	}
	if len(old.Engines) == 0 {
		return nil, fmt.Errorf("baseline record has no engine measurements")
	}
	byMode := map[string]*Fig6ScaleResult{}
	for i := range new.Engines {
		byMode[new.Engines[i].Mode] = &new.Engines[i]
	}
	var regs []BenchRegression
	for i := range old.Engines {
		o := &old.Engines[i]
		n, ok := byMode[o.Mode]
		if !ok {
			return nil, fmt.Errorf("engine %q measured in the baseline is missing from the new record", o.Mode)
		}
		if o.FlowsPerSec > 0 {
			if drop := 1 - n.FlowsPerSec/o.FlowsPerSec; drop > tolerance {
				regs = append(regs, BenchRegression{
					Mode: o.Mode, Metric: "flows/sec", Old: o.FlowsPerSec, New: n.FlowsPerSec, Change: drop,
				})
			}
		}
		if o.NsPerEvent > 0 {
			if rise := n.NsPerEvent/o.NsPerEvent - 1; rise > tolerance {
				regs = append(regs, BenchRegression{
					Mode: o.Mode, Metric: "ns/event", Old: o.NsPerEvent, New: n.NsPerEvent, Change: rise,
				})
			}
		}
	}
	if old.TE != nil {
		if new.TE == nil {
			return nil, fmt.Errorf("TE drill measured in the baseline is missing from the new record")
		}
		o, n := old.TE, new.TE
		if o.LPSolves > 0 && n.LPSolves > o.LPSolves {
			regs = append(regs, BenchRegression{
				Mode: "te", Metric: "lp solves",
				Old: float64(o.LPSolves), New: float64(n.LPSolves),
				Change: float64(n.LPSolves)/float64(o.LPSolves) - 1,
			})
		}
		// The latency ratchets additionally require an absolute rise of
		// teLatencyFloorMs: the percentiles are histogram-interpolated,
		// and below a millisecond that estimate wobbles by whole bucket
		// widths run to run. A regression that matters clears the floor.
		if o.ReoptP50Ms > 0 && n.ReoptP50Ms-o.ReoptP50Ms > teLatencyFloorMs {
			if rise := n.ReoptP50Ms/o.ReoptP50Ms - 1; rise > tolerance {
				regs = append(regs, BenchRegression{
					Mode: "te", Metric: "reopt p50 ms", Old: o.ReoptP50Ms, New: n.ReoptP50Ms, Change: rise,
				})
			}
		}
		if o.ReoptP99Ms > 0 && n.ReoptP99Ms-o.ReoptP99Ms > teLatencyFloorMs {
			if rise := n.ReoptP99Ms/o.ReoptP99Ms - 1; rise > tolerance {
				regs = append(regs, BenchRegression{
					Mode: "te", Metric: "reopt p99 ms", Old: o.ReoptP99Ms, New: n.ReoptP99Ms, Change: rise,
				})
			}
		}
	}
	return regs, nil
}

// teLatencyFloorMs is the absolute-rise floor for the TE latency
// ratchets, in milliseconds.
const teLatencyFloorMs = 1.0
