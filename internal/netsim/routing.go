package netsim

import (
	"fmt"
	"math"
	"sort"

	"cisp/internal/units"
)

// TopoLink describes one duplex link of a simulation topology.
type TopoLink struct {
	A, B      int
	RateBps   units.BitsPerSecond
	PropDelay units.Seconds
	QueueCap  int
}

// Commodity is one routed demand.
type Commodity struct {
	Flow     int
	Src, Dst int
	Demand   units.BitsPerSecond // used by utilization-aware schemes

	// Count is how many concurrent flows the Scenario driver runs on this
	// commodity's path (0 and 1 both mean one). Routing ignores it.
	Count int

	// FlowBytes overrides Scenario.FlowBytes for this commodity's flows
	// when > 0 — how a workload mixes thin gaming flows with bulk media
	// transfers in one replay. Both engines honor it identically.
	FlowBytes int
}

// Scheme selects a routing algorithm, mirroring §5: ns-3's default shortest
// path, minimise-max-link-utilization (common ISP traffic engineering), and
// throughput-optimal (widest-path) routing.
type Scheme int

// Routing schemes.
const (
	ShortestPath Scheme = iota
	MinMaxUtilization
	ThroughputOptimal
)

func (s Scheme) String() string {
	switch s {
	case ShortestPath:
		return "shortest-path"
	case MinMaxUtilization:
		return "min-max-utilization"
	case ThroughputOptimal:
		return "throughput-optimal"
	}
	return "unknown"
}

// BuildTopology adds every duplex link to the network.
func BuildTopology(nw *Network, links []TopoLink) {
	for _, l := range links {
		nw.AddDuplex(l.A, l.B, float64(l.RateBps), float64(l.PropDelay), l.QueueCap)
	}
}

// SplitSumTol is the tolerance ValidateSplits allows on each commodity's
// fraction sum: TE solutions drop sub-1e-6 fractions path by path, so a
// K-way split can drift a few parts per million from exactly 1.
const SplitSumTol = 1e-5

// ValidateSplits checks a split set against the topology before it is
// installed or published: every listed commodity must exist, each of its
// paths must run Src→Dst over topology links (either direction of a duplex
// TopoLink), every fraction must be positive and finite, and the fractions
// must sum to 1 within SplitSumTol. This is the wire-format gate the
// control-plane daemon runs before swapping a snapshot in, and the same
// contract Scenario.Run assumes of its Splits field.
func ValidateSplits(n int, links []TopoLink, comms []Commodity, splits map[int][]SplitPath) error {
	have := make(map[[2]int]bool, 2*len(links))
	for _, l := range links {
		have[[2]int{l.A, l.B}] = true
		have[[2]int{l.B, l.A}] = true
	}
	byFlow := make(map[int]Commodity, len(comms))
	for _, c := range comms {
		byFlow[c.Flow] = c
	}
	flows := make([]int, 0, len(splits))
	for flow := range splits {
		flows = append(flows, flow)
	}
	sort.Ints(flows)
	for _, flow := range flows {
		c, ok := byFlow[flow]
		if !ok {
			return fmt.Errorf("netsim: splits for unknown commodity %d", flow)
		}
		sps := splits[flow]
		if len(sps) == 0 {
			return fmt.Errorf("netsim: commodity %d has an empty split set", flow)
		}
		sum := 0.0
		for _, sp := range sps {
			if !(sp.Frac > 0) || math.IsInf(sp.Frac, 0) {
				return fmt.Errorf("netsim: commodity %d has non-positive or non-finite fraction %v", flow, sp.Frac)
			}
			sum += sp.Frac
			if len(sp.Path) < 2 {
				return fmt.Errorf("netsim: commodity %d has a degenerate path %v", flow, sp.Path)
			}
			if sp.Path[0] != c.Src || sp.Path[len(sp.Path)-1] != c.Dst {
				return fmt.Errorf("netsim: commodity %d path %v does not run %d→%d", flow, sp.Path, c.Src, c.Dst)
			}
			for i := 0; i+1 < len(sp.Path); i++ {
				a, b := sp.Path[i], sp.Path[i+1]
				if a < 0 || a >= n || b < 0 || b >= n {
					return fmt.Errorf("netsim: commodity %d path hop %d→%d outside node range [0,%d)", flow, a, b, n)
				}
				if !have[[2]int{a, b}] {
					return fmt.Errorf("netsim: commodity %d path hop %d→%d is not a topology link", flow, a, b)
				}
			}
		}
		if math.Abs(sum-1) > SplitSumTol {
			return fmt.Errorf("netsim: commodity %d fractions sum to %.9f, want 1±%g", flow, sum, SplitSumTol)
		}
	}
	return nil
}

// InstallRoutes computes a path per commodity under the scheme and installs
// forwarding state. It returns the chosen paths keyed by flow ID.
// Commodities are processed in decreasing demand for the utilization-aware
// schemes, which route sequentially against the residual network.
func InstallRoutes(nw *Network, links []TopoLink, comms []Commodity, scheme Scheme) map[int][]int {
	paths := ComputeRoutes(nw.N(), links, comms, scheme)
	for flow, path := range paths {
		nw.SetFlowPath(flow, path)
	}
	return paths
}

// ComputeRoutes is the pure routing core behind InstallRoutes: it computes
// a path per commodity under the scheme without touching a Network, so the
// packet and fluid engines can share identical paths. The returned map is
// keyed by flow ID; unroutable commodities are omitted.
func ComputeRoutes(n int, links []TopoLink, comms []Commodity, scheme Scheme) map[int][]int {
	adj := make([][]halfLink, n)
	for _, l := range links {
		fw, bw := new(float64), new(float64)
		adj[l.A] = append(adj[l.A], halfLink{to: l.B, delay: float64(l.PropDelay), cap: float64(l.RateBps), load: fw})
		adj[l.B] = append(adj[l.B], halfLink{to: l.A, delay: float64(l.PropDelay), cap: float64(l.RateBps), load: bw})
	}

	order := make([]Commodity, len(comms))
	copy(order, comms)
	if scheme != ShortestPath {
		sort.Slice(order, func(i, j int) bool { return order[i].Demand > order[j].Demand })
	}

	paths := make(map[int][]int, len(comms))
	for _, c := range order {
		var path []int
		switch scheme {
		case ShortestPath:
			path = dijkstraDelay(adj, c.Src, c.Dst)
		case MinMaxUtilization:
			path = minimaxPath(adj, c.Src, c.Dst, func(h halfLink) float64 {
				return (*h.load + float64(c.Demand)) / h.cap
			})
		case ThroughputOptimal:
			path = minimaxPath(adj, c.Src, c.Dst, func(h halfLink) float64 {
				// Maximise residual capacity == minimise its negation.
				return -(h.cap - *h.load - float64(c.Demand))
			})
		}
		if path == nil {
			continue
		}
		paths[c.Flow] = path
		// Account the demand on each traversed half-link.
		for i := 0; i+1 < len(path); i++ {
			for k := range adj[path[i]] {
				if adj[path[i]][k].to == path[i+1] {
					*adj[path[i]][k].load += float64(c.Demand)
					break
				}
			}
		}
	}
	return paths
}

// halfLink is one direction of a topology link with a shared load counter.
type halfLink struct {
	to    int
	delay float64
	cap   float64
	load  *float64
}

// dijkstraDelay finds the minimum propagation-delay path.
func dijkstraDelay(adj [][]halfLink, src, dst int) []int {
	n := len(adj)
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for _, h := range adj[u] {
			if nd := dist[u] + h.delay; nd < dist[h.to] {
				dist[h.to] = nd
				prev[h.to] = u
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	return unwind(prev, src, dst)
}

// minimaxPath finds the path minimising the maximum of cost(halfLink) over
// its links, breaking ties by total propagation delay.
func minimaxPath(adj [][]halfLink, src, dst int, cost func(halfLink) float64) []int {
	n := len(adj)
	bottleneck := make([]float64, n)
	delay := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range bottleneck {
		bottleneck[i] = math.Inf(1)
		delay[i] = math.Inf(1)
		prev[i] = -1
	}
	bottleneck[src] = math.Inf(-1)
	delay[src] = 0
	for {
		u := -1
		bb, bd := math.Inf(1), math.Inf(1)
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			if bottleneck[v] < bb || (bottleneck[v] == bb && delay[v] < bd) {
				u, bb, bd = v, bottleneck[v], delay[v]
			}
		}
		if u < 0 || math.IsInf(bottleneck[u], 1) || u == dst {
			break
		}
		done[u] = true
		for _, h := range adj[u] {
			nb := math.Max(bottleneck[u], cost(h))
			ndel := delay[u] + h.delay
			if nb < bottleneck[h.to] || (nb == bottleneck[h.to] && ndel < delay[h.to]) {
				bottleneck[h.to] = nb
				delay[h.to] = ndel
				prev[h.to] = u
			}
		}
	}
	if math.IsInf(bottleneck[dst], 1) {
		return nil
	}
	return unwind(prev, src, dst)
}

func unwind(prev []int, src, dst int) []int {
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
