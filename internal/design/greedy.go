package design

import (
	"container/heap"

	"cisp/internal/obs"
	"cisp/internal/parallel"
)

// GreedyOptions tunes the heuristic.
type GreedyOptions struct {
	// BudgetFactor inflates the budget during candidate selection; the
	// paper's heuristic runs at 2× to generate candidates for the final
	// optimization. Greedy itself uses factor 1. Zero means 1.
	BudgetFactor float64

	// PerCost scores candidates by gain per tower rather than raw gain.
	// The paper's description ("decreases average stretch the most") is raw
	// gain; per-cost is provided for ablation.
	PerCost bool

	// RefreshEvery forces a full re-evaluation of all candidate gains after
	// this many links are built, bounding the drift lazy evaluation can
	// accumulate on this non-submodular objective. 0 means the default (2);
	// negative disables periodic refreshes (pure lazy).
	RefreshEvery int
}

type heapEntry struct {
	i, j  int
	gain  float64 // possibly stale
	epoch int     // epoch at which gain was computed
}

type gainHeap struct {
	entries []heapEntry
	perCost bool
	costOf  func(i, j int) float64
}

func (h *gainHeap) score(e heapEntry) float64 {
	if h.perCost {
		return e.gain / h.costOf(e.i, e.j)
	}
	return e.gain
}
func (h *gainHeap) Len() int           { return len(h.entries) }
func (h *gainHeap) Less(a, b int) bool { return h.score(h.entries[a]) > h.score(h.entries[b]) }
func (h *gainHeap) Swap(a, b int)      { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }
func (h *gainHeap) Push(x interface{}) { h.entries = append(h.entries, x.(heapEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// Greedy runs the marginal-gain heuristic: repeatedly build the affordable
// microwave link that most decreases the traffic-weighted mean stretch,
// until no link yields positive gain or the budget is exhausted.
//
// It uses lazy ("accelerated") greedy: candidate gains are kept in a
// max-heap and only the top entry is re-evaluated against the current
// topology, cutting complexity from O(iterations · candidates · n²) toward
// O(candidates · n² + iterations · re-evals · n²). This objective is not
// submodular — building a link can *raise* another link's marginal gain
// (microwave segments chain) — so candidates are never discarded on a
// non-positive gain, and whenever the heap's fresh maximum is non-positive
// every candidate is re-evaluated once before concluding that no link
// helps. The result tracks exhaustive greedy closely (ablation_test.go)
// and the candidate-ILP refinement in GreedyILP recovers any residue.
func Greedy(p *Problem, opt GreedyOptions) *Topology {
	factor := opt.BudgetFactor
	if factor <= 0 {
		factor = 1
	}
	budget := p.Budget * factor

	t := NewTopology(p)
	h := &gainHeap{perCost: opt.PerCost, costOf: func(i, j int) float64 { return p.MWCost[i][j] }}

	// Seed the heap with every useful link, positive gain or not (synergy
	// can activate them later). Collecting the candidate pairs is cheap and
	// stays inline; the O(n²)-per-pair gain evaluations fan out on the pool,
	// indexed by pair so the entry order — and hence the heap — is identical
	// to a sequential scan.
	var pairs [][2]int
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if !p.usefulLink(i, j, t.fiberD) || p.MWCost[i][j] > budget {
				continue
			}
			pairs = append(pairs, [2]int{i, j})
		}
	}
	h.entries = make([]heapEntry, len(pairs))
	for k, ij := range pairs {
		h.entries[k] = heapEntry{i: ij[0], j: ij[1], epoch: 0}
	}
	gainEvals := int64(len(h.entries))
	parallel.For(len(h.entries), gainGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			h.entries[k].gain = t.gainOf(h.entries[k].i, h.entries[k].j)
		}
	})
	heap.Init(h)

	refreshEvery := opt.RefreshEvery
	if refreshEvery == 0 {
		refreshEvery = 2
	}
	epoch := 0
	remaining := budget
	refreshAll := func() {
		gainEvals += int64(len(h.entries))
		parallel.For(len(h.entries), gainGrain, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				h.entries[k].gain = t.gainOf(h.entries[k].i, h.entries[k].j)
				h.entries[k].epoch = epoch
			}
		})
		heap.Init(h)
	}
	for h.Len() > 0 {
		top := h.entries[0]
		if p.MWCost[top.i][top.j] > remaining {
			heap.Pop(h) // can never become affordable again; discard
			continue
		}
		if top.epoch < epoch {
			// Stale: recompute against the current topology and re-sift.
			gainEvals++
			h.entries[0].gain = t.gainOf(top.i, top.j)
			h.entries[0].epoch = epoch
			heap.Fix(h, 0)
			continue
		}
		if top.gain <= 0 {
			// The fresh maximum does not help. Stale entries below may have
			// grown (non-submodularity): refresh everything once and only
			// stop if nothing positive remains.
			refreshAll()
			if h.Len() == 0 || h.entries[0].gain <= 0 || h.entries[0].epoch < epoch {
				break
			}
			continue
		}
		// Fresh positive maximum: build it.
		heap.Pop(h)
		t.AddLink(top.i, top.j)
		remaining -= p.MWCost[top.i][top.j]
		epoch++
		if refreshEvery > 0 && epoch%refreshEvery == 0 {
			refreshAll()
		}
	}
	snk := obs.Active()
	snk.Counter("cisp_design_step2_iterations_total").Add(int64(epoch))
	snk.Counter("cisp_design_gain_evals_total").Add(gainEvals)
	return t
}

// GreedyILP is the paper's "cISP" design method (§3.2 Solution approach):
// the greedy heuristic run at an inflated 2× budget proposes candidate
// links, and an exact branch-and-bound over just those candidates (with the
// true budget) picks the final set. To keep the candidate pool rich in both
// high-impact and high-efficiency links, candidates are the union of the
// raw-gain and gain-per-tower greedy passes; the better 1×-budget greedy
// seeds the incumbent, so the result is never worse than plain Greedy.
// maxNodes bounds the refinement search (0 = default).
func GreedyILP(p *Problem, maxNodes int) *Topology {
	// On small instances candidate pruning is unnecessary: hand every
	// useful link to the selector and the result is the exact optimum
	// (Fig 2b's regime).
	base := NewTopology(p)
	var all [][2]int
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if p.usefulLink(i, j, base.fiberD) {
				all = append(all, [2]int{i, j})
			}
		}
	}
	incumbent := Greedy(p, GreedyOptions{})
	if alt := Greedy(p, GreedyOptions{PerCost: true}); alt.objective() < incumbent.objective() {
		incumbent = alt
	}
	if len(all) <= 48 {
		return exactOverCandidates(p, all, incumbent, maxNodes)
	}
	// At scale: the paper's pruning — candidates from greedy at 2× budget,
	// under both scoring rules to keep high-impact and high-efficiency
	// links in the pool.
	seen := map[[2]int]bool{}
	var cands [][2]int
	for _, opt := range []GreedyOptions{
		{BudgetFactor: 2},
		{BudgetFactor: 2, PerCost: true},
	} {
		for _, l := range Greedy(p, opt).Built {
			k := [2]int{l.I, l.J}
			if !seen[k] {
				seen[k] = true
				cands = append(cands, k)
			}
		}
	}
	return exactOverCandidates(p, cands, incumbent, maxNodes)
}
