package experiments

import (
	"io"

	"cisp/internal/workload"
)

// FigUsersResult is the full million-user scenario sweep: one end-to-end
// report per scenario, in the order they ran.
type FigUsersResult struct {
	Reports []*workload.ScenarioReport
}

// Report returns the named scenario's report, or nil.
func (r *FigUsersResult) Report(name string) *workload.ScenarioReport {
	for _, rep := range r.Reports {
		if rep.Name == name {
			return rep
		}
	}
	return nil
}

// UsersBackbone adapts the §6.4 designed hybrid substrate into the
// workload layer's backbone form: the same sites, microwave links, and
// fiber conduit graph DesignedTETopology builds for the TE and
// availability studies, so every scenario's population draw rides the
// very backbone the design layer provisioned.
func UsersBackbone(opt Options) (*workload.Backbone, error) {
	tt, err := DesignedTETopology(opt)
	if err != nil {
		return nil, err
	}
	return &workload.Backbone{Sites: tt.Sites, Nodes: tt.Nodes, Mw: tt.Mw, Fiber: tt.Fiber}, nil
}

// usersScenarios is the published sweep: a timezone-staggered evening
// peak, a flash crowd converging on the most populous site, a regional
// disaster compounding an evacuation surge with a storm and a fiber
// cut, and CDN replica placement with its provisioning bill.
func usersScenarios(seed int64) []workload.Spec {
	return []workload.Spec{
		{Name: "evening-peak", Kind: workload.Diurnal, Seed: seed},
		{Name: "flash-crowd", Kind: workload.FlashCrowd, Seed: seed},
		{Name: "disaster-storm", Kind: workload.Disaster, Seed: seed},
		{Name: "cdn-anycast", Kind: workload.CDNPlacement, Seed: seed, SinkCount: 4},
	}
}

// FigUsers is the million-user scenario suite: population-driven
// workloads compiled from the city set (per-application demand, diurnal
// activity, surges, failures) and replayed end to end — TE splits on the
// hybrid backbone against shortest-path routing on the fiber baseline,
// both engines on each substrate — reporting the user-visible deltas:
// per-application FCT percentiles and goodput, availability nines when
// the scenario schedules failures, the QoE translation of the RTT gap,
// and the CDN bill when replicas are placed. Reports are bit-identical
// at every worker count.
func FigUsers(opt Options, totalFlows int) *FigUsersResult {
	w := opt.out()
	b, err := UsersBackbone(opt)
	if err != nil {
		fprintf(w, "figusers: %v\n", err)
		return nil
	}
	p := workload.Pipeline{Backbone: b, TotalFlows: totalFlows, Seed: opt.Seed}

	fprintf(w, "Million-user scenarios — population-driven workloads on the designed backbone (%d sites)\n",
		len(b.Sites))
	res := &FigUsersResult{}
	for _, spec := range usersScenarios(opt.Seed) {
		scSp := opt.spanOrRoot("scenario:" + spec.Name)
		c, err := workload.Compile(spec, b)
		if err != nil {
			fprintf(w, "figusers: %s: %v\n", spec.Name, err)
			return nil
		}
		p.Span = scSp
		rep, err := p.Run(c)
		if err != nil {
			fprintf(w, "figusers: %s: %v\n", spec.Name, err)
			return nil
		}
		scSp.SetItems(int64(totalFlows))
		scSp.End()
		res.Reports = append(res.Reports, rep)
		printUsersReport(w, rep)
	}
	return res
}

func printUsersReport(w io.Writer, r *workload.ScenarioReport) {
	fprintf(w, "\n%s (%s): %.2fM active users, %.2f Gbps offered, predicted MLU cisp %.3f / fiber %.3f\n",
		r.Name, r.Kind, r.TotalUsers/1e6, r.OfferedGbps, r.PredMLUCISP, r.PredMLUFiber)
	fprintf(w, "%-6s %-7s %-7s %6s %6s %12s %12s %12s %8s\n",
		"subst", "mode", "app", "flows", "done", "FCT p50(ms)", "FCT p99(ms)", "goodput(kbps)", "RTT(ms)")
	for i := range r.Runs {
		run := &r.Runs[i]
		for _, a := range run.Apps {
			if a.Flows == 0 {
				continue
			}
			fprintf(w, "%-6s %-7s %-7s %6d %6d %12.1f %12.1f %12.0f %8.2f\n",
				run.Substrate, run.Mode, a.App, a.Flows, a.Completed,
				a.P50FCTMs, a.P99FCTMs, a.GoodputKbps, a.RTTMs)
		}
	}
	if r.HasFailures {
		fprintf(w, "availability under %s: cisp %.7f (%.2f nines, %d reroutes) vs fiber %.7f (%.2f nines, %d reroutes)\n",
			r.AvailCISP.Mode, r.AvailCISP.Availability, r.AvailCISP.Nines, r.ReroutesCISP,
			r.AvailFiber.Availability, r.AvailFiber.Nines, r.ReroutesFiber)
	}
	fprintf(w, "QoE: gaming frame %.2f→%.2f ms, page load %.0f→%.0f ms, value $%.2f/GB search + $%.2f/GB gaming (beats cost: %v)\n",
		r.QoE.GamingFrameMsFiber, r.QoE.GamingFrameMsCISP,
		r.QoE.WebPLTMsFiber, r.QoE.WebPLTMsCISP,
		r.QoE.SearchValuePerGB, r.QoE.GamingValuePerGB, r.QoE.BeatsCost)
	if len(r.SinkBills) > 0 {
		fprintf(w, "replicas at sites %v: total backhaul capex $%.0f\n", r.Sinks, r.SinkCapex)
		for _, sb := range r.SinkBills {
			fprintf(w, "  site %d: %.3f Gbps egress, %.0f km backhaul on %s, $%.0f\n",
				sb.Site, sb.EgressGbps, sb.BackhaulKm, sb.Medium, sb.Capex)
		}
	}
}
