package weather

import (
	"testing"

	"cisp/internal/netsim"
)

// fctFixture is a 3-node line: a fast microwave link 0-1 and a fiber
// detour 0-2-1 with generous capacity but higher delay.
func fctFixture() (mw, fiber []netsim.TopoLink, comms []netsim.Commodity) {
	mw = []netsim.TopoLink{{A: 0, B: 1, RateBps: 100e6, PropDelay: 0.002, QueueCap: 100}}
	fiber = []netsim.TopoLink{
		{A: 0, B: 2, RateBps: 1e9, PropDelay: 0.01, QueueCap: 100},
		{A: 2, B: 1, RateBps: 1e9, PropDelay: 0.01, QueueCap: 100},
	}
	comms = []netsim.Commodity{{Flow: 1, Src: 0, Dst: 1, Demand: 50e6}}
	return
}

func TestMeasureFCTCompletesAndDegrades(t *testing.T) {
	mw, fiber, comms := fctFixture()
	schemes := []netsim.Scheme{netsim.ShortestPath}
	cfg := FCTConfig{FlowBytes: 200_000, SimTime: 30}

	clean := MeasureFCT(3, mw, nil, fiber, comms, schemes, cfg)
	if len(clean) != 1 || clean[0].Completed != 1 {
		t.Fatalf("clean run: %+v, want 1 completed flow", clean)
	}

	// Deep fade: the microwave link survives at the QPSK floor (1/6 rate),
	// so the same transfer takes ~6x the serialization time.
	degraded := MeasureFCT(3, mw,
		[]LinkCondition{{WorstHopDB: DefaultFadeMargin, CapFrac: CapacityFraction(DefaultFadeMargin, DefaultFadeMargin)}},
		fiber, comms, schemes, cfg)
	if degraded[0].Completed != 1 {
		t.Fatalf("degraded run did not complete: %+v", degraded[0])
	}
	if degraded[0].MeanMs <= clean[0].MeanMs*1.5 {
		t.Fatalf("deep fade FCT %v ms not meaningfully above clear-sky %v ms",
			degraded[0].MeanMs, clean[0].MeanMs)
	}

	// Outage: the flow must reroute over fiber and still complete, slower
	// than microwave in propagation but at full rate.
	failed := MeasureFCT(3, mw,
		[]LinkCondition{{Failed: true}},
		fiber, comms, schemes, cfg)
	if failed[0].Completed != 1 {
		t.Fatalf("outage run did not complete over fiber: %+v", failed[0])
	}
	if failed[0].MeanMs <= clean[0].MeanMs {
		t.Fatalf("fiber-detour FCT %v ms should exceed microwave %v ms",
			failed[0].MeanMs, clean[0].MeanMs)
	}
}

func TestMeasureFCTDeterministic(t *testing.T) {
	mw, fiber, comms := fctFixture()
	schemes := []netsim.Scheme{netsim.ShortestPath, netsim.MinMaxUtilization, netsim.ThroughputOptimal}
	cfg := FCTConfig{FlowBytes: 100_000, SimTime: 30}
	conds := []LinkCondition{{WorstHopDB: 12, CapFrac: CapacityFraction(12, DefaultFadeMargin)}}
	a := MeasureFCT(3, mw, conds, fiber, comms, schemes, cfg)
	b := MeasureFCT(3, mw, conds, fiber, comms, schemes, cfg)
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scheme %s: run 1 %+v, run 2 %+v", a[i].Scheme, a[i], b[i])
		}
	}
}
