package geo

import "math"

// Microwave link-engineering constants used throughout the paper's §3.1.
const (
	// DefaultFrequencyGHz is the microwave carrier frequency assumed by the
	// paper's hop-feasibility study (f = 11 GHz, in the lightly licensed
	// 6–18 GHz band).
	DefaultFrequencyGHz = 11.0

	// DefaultRefraction is the effective Earth-radius factor K accounting
	// for atmospheric refraction (the paper adopts K = 1.3).
	DefaultRefraction = 1.3

	// MaxHopRange is the paper's practicable maximum tower-to-tower hop
	// length in meters ("a maximum range of around 100 km is practicable").
	MaxHopRange = 100e3
)

// FresnelRadius returns the first Fresnel-zone radius in meters at a point
// d1 meters from one antenna and d2 meters from the other, for a carrier at
// fGHz gigahertz. A microwave hop needs this ellipsoidal region clear of
// obstructions. At the midpoint of a hop of length D this reduces to the
// paper's hFres ≈ 8.7 m · sqrt(D/1km) · (f/1GHz)^(-1/2).
func FresnelRadius(d1, d2 float64, fGHz float64) float64 {
	total := d1 + d2
	if total <= 0 || fGHz <= 0 {
		return 0
	}
	// r = 17.32 m * sqrt((d1km * d2km) / (Dkm * fGHz))
	d1km, d2km, dkm := d1/1000, d2/1000, total/1000
	return 17.32 * math.Sqrt(d1km*d2km/(dkm*fGHz))
}

// FresnelMid returns the first Fresnel-zone radius at the midpoint of a hop
// of length d meters (the paper's hFres formula).
func FresnelMid(d float64, fGHz float64) float64 {
	return FresnelRadius(d/2, d/2, fGHz)
}

// EarthBulge returns the height in meters by which the Earth's curvature
// rises above the straight sight-line at a point d1 meters from one end of a
// hop and d2 from the other, using effective Earth-radius factor k. At the
// midpoint of a hop of length D this reduces to the paper's
// hEarth ≈ (1 m / 50K) · (D/1km)².
func EarthBulge(d1, d2, k float64) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	// h[m] = d1[km] * d2[km] / (12.74 * k)
	return (d1 / 1000) * (d2 / 1000) / (12.74 * k)
}

// EarthBulgeMid returns the curvature bulge at the midpoint of a hop of
// length d meters.
func EarthBulgeMid(d, k float64) float64 { return EarthBulge(d/2, d/2, k) }

// RequiredClearanceMid returns the total height in meters that a hop of
// length d must clear at its midpoint: Earth bulge plus a full first Fresnel
// zone (the paper requires a fully clear Fresnel zone).
func RequiredClearanceMid(d, fGHz, k float64) float64 {
	return EarthBulgeMid(d, k) + FresnelMid(d, fGHz)
}
