package ctlplane

import (
	"sort"

	"cisp/internal/geo"
	"cisp/internal/resilience"
	"cisp/internal/units"
	"cisp/internal/weather"
)

// StreamConfig parameterizes a seeded event stream. The zero value gets
// sensible defaults: half-hour fade re-evaluation, six-month link MTBF,
// four-hour MTTR, the default radio frequency and fade margin.
type StreamConfig struct {
	Seed        int64
	Horizon     float64 // modeled seconds covered by the stream
	StepSeconds float64 // fade re-evaluation cadence; default 1800

	MTBF, MTTR units.Seconds // hardware lifetime draws; defaults below
	FreqGHz    float64       // microwave carrier; default geo.DefaultFrequencyGHz
	FadeMargin units.DB      // ACM ladder depth; default weather.DefaultFadeMargin
}

// Stream defaults, applied by DrawStream for zero fields.
const (
	defaultStreamStep float64       = 1800            // half-hour weather intervals
	defaultStreamMTBF units.Seconds = 180 * 24 * 3600 // six months between hard failures
	defaultStreamMTTR units.Seconds = 4 * 3600        // four-hour repairs
	// fadeSampleStep is the great-circle sampling step for path
	// attenuation, matching internal/weather's grading resolution.
	fadeSampleStep units.Meters = 2000
)

// DrawStream renders a deterministic control-event timeline for a
// backbone: hardware fail/repair transitions drawn from the resilience
// lifetime model, interleaved with microwave fade gradings sampled from
// the seeded regional rain field every StepSeconds. Fade events are
// emitted only when a link's graded fraction changes, so a calm stream is
// short. The result is sorted by (time, type, link) and is a pure
// function of (backbone, config) — the replay substrate for the soak
// test and cmd/cispd's demo mode.
func DrawStream(b *Backbone, cfg StreamConfig) []TimedEvent {
	if cfg.StepSeconds <= 0 {
		cfg.StepSeconds = defaultStreamStep
	}
	if cfg.MTBF <= 0 {
		cfg.MTBF = defaultStreamMTBF
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = defaultStreamMTTR
	}
	if cfg.FreqGHz == 0 {
		cfg.FreqGHz = geo.DefaultFrequencyGHz
	}
	if cfg.FadeMargin == 0 {
		cfg.FadeMargin = weather.DefaultFadeMargin
	}

	var out []TimedEvent

	// Hardware transitions over the hybrid link list.
	nLinks := len(b.Mw) + len(b.Fiber)
	els := resilience.LinkElements(nLinks, cfg.MTBF, cfg.MTTR)
	sched := resilience.DrawSchedule(els, nLinks, cfg.Horizon, cfg.Seed)
	for _, fe := range sched.Events() {
		typ := EventFail
		if fe.Up {
			typ = EventRepair
		}
		out = append(out, TimedEvent{At: fe.Time, Ev: Event{Type: typ, Link: fe.Link}})
	}

	// Weather gradings over the microwave prefix: sample the rain field at
	// each step and emit a fade only when the graded fraction moves.
	pts := make([]geo.Point, len(b.Sites))
	for i, c := range b.Sites {
		pts[i] = c.Loc
	}
	gen := weather.NewRegionGenerator(cfg.Seed, pts)
	last := make([]float64, len(b.Mw))
	for i := range last {
		last[i] = 1
	}
	for t := cfg.StepSeconds; t < cfg.Horizon; t += cfg.StepSeconds {
		day := int(t / 86400)
		interval := int(t/1800) % 48
		field := gen.FieldAt(day, interval)
		for li, l := range b.Mw {
			atten := field.PathAttenuation(pts[l.A], pts[l.B], cfg.FreqGHz, fadeSampleStep)
			frac := weather.CapacityFraction(atten, cfg.FadeMargin)
			if frac != last[li] {
				last[li] = frac
				out = append(out, TimedEvent{At: t, Ev: Event{Type: EventFade, Link: li, CapFrac: frac}})
			}
		}
	}

	sort.SliceStable(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		if out[a].Ev.Type != out[b].Ev.Type {
			return out[a].Ev.Type < out[b].Ev.Type
		}
		return out[a].Ev.Link < out[b].Ev.Link
	})
	return out
}
