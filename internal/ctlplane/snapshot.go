package ctlplane

import (
	"encoding/json"
	"fmt"
	"sort"

	"cisp/internal/netsim"
)

// Snapshot kinds, in publication order of a typical failure episode.
const (
	KindInitial = "initial" // first solve at boot
	KindFRR     = "frr"     // fast-reroute patch: zero LP solves
	KindReopt   = "reopt"   // warm TE reoptimization swapped in
	KindReload  = "reload"  // config reload rebuilt the control plane
)

// SplitWire is one weighted path of a published commodity.
type SplitWire struct {
	Path []int   `json:"path"`
	Frac float64 `json:"frac"`
}

// CommodityWire is one commodity's published forwarding entry.
type CommodityWire struct {
	Flow      int         `json:"flow"`
	Src       int         `json:"src"`
	Dst       int         `json:"dst"`
	DemandBps float64     `json:"demand_bps"`
	Splits    []SplitWire `json:"splits"`
}

// BackupWire is one commodity's precomputed fast-reroute path.
type BackupWire struct {
	Flow int   `json:"flow"`
	Path []int `json:"path"`
}

// Snapshot is one immutable, versioned forwarding state: what the daemon
// serves to the data plane. Versions increase strictly by 1 per publish;
// Epoch increments only when a config reload rebuilds the control plane.
// A snapshot is never mutated after Publish — readers hold it without
// locks, and its JSON encoding is computed once and byte-stable
// (commodities sorted by flow, down links sorted ascending).
type Snapshot struct {
	Version     uint64          `json:"version"`
	Epoch       uint64          `json:"epoch"`
	Kind        string          `json:"kind"`
	TimeUnix    int64           `json:"time_unix"`
	Method      string          `json:"method"` // te Solution.Method of the underlying solve
	MLU         float64         `json:"mlu"`
	DownLinks   []int           `json:"down_links"`
	Commodities []CommodityWire `json:"commodities"`
	Backups     []BackupWire    `json:"backups"`

	encoded []byte
}

// JSON returns the snapshot's canonical wire encoding (newline-terminated),
// computed once at publish time — serving a snapshot at high QPS is a
// pointer load plus a buffer write.
func (s *Snapshot) JSON() []byte { return s.encoded }

// buildSnapshot assembles the deterministic wire form: splits sorted by
// flow ID, down-set sorted ascending, then one json.Marshal.
func buildSnapshot(version, epoch uint64, kind string, unixSec int64, method string,
	mlu float64, down []bool, comms []netsim.Commodity,
	splits map[int][]netsim.SplitPath, backups []BackupWire) (*Snapshot, error) {

	s := &Snapshot{
		Version:  version,
		Epoch:    epoch,
		Kind:     kind,
		TimeUnix: unixSec,
		Method:   method,
		MLU:      mlu,
		Backups:  backups,
	}
	for li, d := range down {
		if d {
			s.DownLinks = append(s.DownLinks, li)
		}
	}
	byFlow := make(map[int]netsim.Commodity, len(comms))
	for _, c := range comms {
		byFlow[c.Flow] = c
	}
	flows := make([]int, 0, len(splits))
	for flow := range splits {
		flows = append(flows, flow)
	}
	sort.Ints(flows)
	for _, flow := range flows {
		c, ok := byFlow[flow]
		if !ok {
			return nil, fmt.Errorf("ctlplane: snapshot split for unknown commodity %d", flow)
		}
		cw := CommodityWire{Flow: flow, Src: c.Src, Dst: c.Dst, DemandBps: float64(c.Demand)}
		for _, sp := range splits[flow] {
			cw.Splits = append(cw.Splits, SplitWire{Path: sp.Path, Frac: sp.Frac})
		}
		s.Commodities = append(s.Commodities, cw)
	}
	enc, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: encoding snapshot: %w", err)
	}
	s.encoded = append(enc, '\n')
	return s, nil
}

// Splits reconstructs the snapshot's split map in netsim form — the
// installable image for Scenario.Splits. The returned map is fresh; paths
// are shared with the snapshot and must be treated as read-only.
func (s *Snapshot) Splits() map[int][]netsim.SplitPath {
	out := make(map[int][]netsim.SplitPath, len(s.Commodities))
	for _, cw := range s.Commodities {
		sps := make([]netsim.SplitPath, len(cw.Splits))
		for i, sw := range cw.Splits {
			sps[i] = netsim.SplitPath{Path: sw.Path, Frac: sw.Frac}
		}
		out[cw.Flow] = sps
	}
	return out
}

// Install validates the snapshot against a scenario's topology and
// commodity list and installs its splits — the bridge from a live
// control-plane snapshot to a netsim replay. The scenario's Nodes, Links,
// and Comms must already be set.
func (s *Snapshot) Install(sc *netsim.Scenario) error {
	splits := s.Splits()
	if err := netsim.ValidateSplits(sc.Nodes, sc.Links, sc.Comms, splits); err != nil {
		return fmt.Errorf("ctlplane: snapshot v%d does not fit scenario: %w", s.Version, err)
	}
	sc.Splits = splits
	return nil
}
