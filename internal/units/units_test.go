package units_test

import (
	"math"
	"testing"
	"time"

	"cisp/internal/units"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }

func TestLengthConversions(t *testing.T) {
	if got := units.Km(2.5).Meters(); got != 2500 {
		t.Errorf("Km(2.5).Meters() = %v, want 2500", got)
	}
	if got := units.Meters(1500).Km(); got != 1.5 {
		t.Errorf("Meters(1500).Km() = %v, want 1.5", got)
	}
	if got := units.MetersOf(42); got != 42 {
		t.Errorf("MetersOf(42) = %v", got)
	}
	if got := units.Ratio(units.Meters(300), units.Meters(200)); got != 1.5 {
		t.Errorf("Ratio = %v, want 1.5", got)
	}
}

func TestTimeConversions(t *testing.T) {
	if got := units.Seconds(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5).Duration() = %v", got)
	}
	if got := units.DurationSeconds(250 * time.Millisecond); got != 0.25 {
		t.Errorf("DurationSeconds = %v", got)
	}
	if got := units.Millis(250); got != 0.25 {
		t.Errorf("Millis(250) = %v", got)
	}
	if got := units.Seconds(0.25).Millis(); got != 250 {
		t.Errorf("Seconds(0.25).Millis() = %v", got)
	}
}

func TestDataAndRateConversions(t *testing.T) {
	if got := units.Bytes(100); got != 800 {
		t.Errorf("Bytes(100) = %v bits", got)
	}
	if got := units.Bits(800).Bytes(); got != 100 {
		t.Errorf("Bits(800).Bytes() = %v", got)
	}
	if got := units.Gbps(2); got != 2e9 {
		t.Errorf("Gbps(2) = %v", got)
	}
	if got := units.Gbps(2).Gbps(); got != 2 {
		t.Errorf("round trip Gbps = %v", got)
	}
	if got := units.Mbps(8); got != 8e6 {
		t.Errorf("Mbps(8) = %v", got)
	}
	if got := units.Mbps(8).Mbps(); got != 8 {
		t.Errorf("round trip Mbps = %v", got)
	}
	if got := units.Bytes(1e6).Per(units.Seconds(2)); !almost(float64(got), 4e6) {
		t.Errorf("Bytes(1e6).Per(2s) = %v, want 4e6 bps", got)
	}
	if got := units.Mbps(8).Time(units.Bytes(1e6)); !almost(float64(got), 1) {
		t.Errorf("8 Mbps over 1 MB = %v, want 1 s", got)
	}
	if got := units.Of(units.Gbps(1), units.Gbps(4)); got != 0.25 {
		t.Errorf("Of(1G, 4G) = %v, want 0.25", got)
	}
}
