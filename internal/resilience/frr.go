package resilience

import (
	"fmt"
	"sort"

	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/te"
)

// Config tunes the protection layer. The zero value selects defaults.
type Config struct {
	// K and Stretch bound the backup search: backups are chosen from the
	// same Yen candidate pool the TE control plane enumerates, at most K
	// paths per commodity within Stretch × its shortest-path delay —
	// fast reroute never leaves the latency envelope the design promised.
	// Defaults 8 and 1.5 (the te.Config default stretch).
	K       int
	Stretch float64

	// DetectDelay is the failure-detection plus local-repair activation
	// latency: backup paths install this long after a failure event
	// (default 50 ms). Traffic on a failed primary is down for this window.
	DetectDelay float64

	// ReoptDelay is how long the background full reoptimization takes
	// before its solution swaps in (default 1 s). Only FRRReopt plans use
	// it.
	ReoptDelay float64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Stretch <= 0 {
		c.Stretch = 1.5
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = 0.05
	}
	if c.DetectDelay < 0 {
		c.DetectDelay = 0
	}
	if c.ReoptDelay == 0 {
		c.ReoptDelay = 1.0
	}
	if c.ReoptDelay < 0 {
		c.ReoptDelay = 0
	}
	return c
}

// Mode selects a protection strategy.
type Mode int

// Protection modes, in increasing sophistication.
const (
	// NoProtection installs nothing: traffic on a failed path stalls until
	// the link is repaired.
	NoProtection Mode = iota
	// FRR activates precomputed link-disjoint backup paths DetectDelay
	// after each failure event — pure table lookups, zero LP solves on the
	// event path — and reverts when links are repaired.
	FRR
	// FRRReopt is FRR plus the production control loop: a te.Controller
	// warm-reoptimizes the full split set in the background and its
	// solution swaps in ReoptDelay after each event.
	FRRReopt
)

func (m Mode) String() string {
	switch m {
	case NoProtection:
		return "none"
	case FRR:
		return "frr"
	case FRRReopt:
		return "reopt"
	}
	return "unknown"
}

// Backup is one commodity's precomputed fast-reroute path.
type Backup struct {
	Path   []int
	Delay  float64 // end-to-end propagation delay, seconds
	Shared int     // undirected links shared with the commodity's primary paths
}

// Protection precomputes everything fast reroute needs before any failure
// happens: per-commodity backup paths maximally link-disjoint from the
// installed primaries, the link index for down-set mapping, and each
// commodity's clear-sky shortest delay for stretch accounting.
type Protection struct {
	// Backups holds each protected commodity's backup path, keyed by flow
	// ID. Commodities whose only candidates are their primaries have no
	// entry (nothing disjoint to fall back on).
	Backups map[int]Backup

	cfg       Config
	nodes     int
	links     []netsim.TopoLink
	comms     []netsim.Commodity
	commBy    map[int]*netsim.Commodity // by flow ID
	primaries map[int][]netsim.SplitPath
	shortest  map[int]float64 // clear-sky shortest-path delay per flow
	linkIdx   map[[2]int]int  // undirected node pair -> index into links
}

// NewProtection builds the fast-reroute state for the commodities over the
// clear-sky topology. primaries is the installed routing decision — a TE
// solution's Splits, or single paths wrapped as one-element splits; flows
// without an entry are unprotected. For every commodity it enumerates the
// TE candidate pool (same K/Stretch semantics as the control plane) and
// picks the candidate sharing the fewest undirected links with the
// commodity's primaries, ties broken toward lower delay — maximal link
// disjointness subject to the latency cap.
func NewProtection(nodes int, links []netsim.TopoLink, comms []netsim.Commodity,
	primaries map[int][]netsim.SplitPath, cfg Config) (*Protection, error) {
	cfg = cfg.withDefaults()
	p := &Protection{
		Backups:   make(map[int]Backup),
		cfg:       cfg,
		nodes:     nodes,
		links:     links,
		comms:     comms,
		commBy:    make(map[int]*netsim.Commodity, len(comms)),
		primaries: primaries,
		shortest:  make(map[int]float64, len(comms)),
		linkIdx:   make(map[[2]int]int, len(links)),
	}
	for li, l := range links {
		p.linkIdx[pairKey(l.A, l.B)] = li
	}
	for i := range comms {
		p.commBy[comms[i].Flow] = &comms[i]
	}
	cands, err := te.Candidates(nodes, links, comms, te.Config{K: cfg.K, Stretch: cfg.Stretch})
	if err != nil {
		return nil, err
	}
	for i, c := range comms {
		pool := cands[i]
		if len(pool) == 0 {
			continue
		}
		p.shortest[c.Flow] = pool[0].Delay
		prim := primaries[c.Flow]
		if len(prim) == 0 {
			continue
		}
		primLinks := map[int]bool{}
		primKeys := map[string]bool{}
		for _, sp := range prim {
			if sp.Frac <= 0 {
				continue
			}
			lis, err := p.pathLinks(sp.Path)
			if err != nil {
				return nil, fmt.Errorf("resilience: commodity %d primary: %w", c.Flow, err)
			}
			for _, li := range lis {
				primLinks[li] = true
			}
			primKeys[netsim.PathKey(sp.Path)] = true
		}
		best, bestShared := -1, 0
		for pi, cand := range pool {
			if primKeys[netsim.PathKey(cand.Nodes)] {
				continue // a primary is no backup for itself
			}
			shared := 0
			lis, err := p.pathLinks(cand.Nodes)
			if err != nil {
				return nil, fmt.Errorf("resilience: commodity %d candidate: %w", c.Flow, err)
			}
			for _, li := range lis {
				if primLinks[li] {
					shared++
				}
			}
			// The pool is delay-sorted, so strict improvement keeps the
			// lowest-delay path among equally disjoint candidates.
			if best < 0 || shared < bestShared {
				best, bestShared = pi, shared
			}
		}
		if best < 0 {
			continue
		}
		p.Backups[c.Flow] = Backup{
			Path:   pool[best].Nodes,
			Delay:  pool[best].Delay,
			Shared: bestShared,
		}
	}
	return p, nil
}

// Primaries returns the installed clear-sky routing decision the
// protection was built over.
func (p *Protection) Primaries() map[int][]netsim.SplitPath { return p.primaries }

// ShortestDelay returns a commodity's clear-sky shortest-path delay (the
// stretch baseline) and whether the commodity is routable.
func (p *Protection) ShortestDelay(flow int) (float64, bool) {
	d, ok := p.shortest[flow]
	return d, ok
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SplitLoad returns each topology link's offered load under the splits —
// demand × fraction summed over every split path crossing the link, both
// directions folded onto the undirected link. The shared accounting for
// "which links carry the plan's traffic" (drill selection in
// experiments.FigAvail, the failuredrill example); path hops that are not
// topology links are ignored.
func SplitLoad(links []netsim.TopoLink, comms []netsim.Commodity, splits map[int][]netsim.SplitPath) []float64 {
	idx := make(map[[2]int]int, len(links))
	for li, l := range links {
		idx[pairKey(l.A, l.B)] = li
	}
	load := make([]float64, len(links))
	for _, c := range comms {
		for _, sp := range splits[c.Flow] {
			for i := 0; i+1 < len(sp.Path); i++ {
				if li, ok := idx[pairKey(sp.Path[i], sp.Path[i+1])]; ok {
					load[li] += float64(c.Demand) * sp.Frac
				}
			}
		}
	}
	return load
}

// pathLinks maps a node path to topology link indices.
func (p *Protection) pathLinks(path []int) ([]int, error) {
	out := make([]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		li, ok := p.linkIdx[pairKey(path[i], path[i+1])]
		if !ok {
			return nil, fmt.Errorf("hop %d-%d not in topology", path[i], path[i+1])
		}
		out = append(out, li)
	}
	return out, nil
}

// pathUp reports whether every link of the path is up.
func (p *Protection) pathUp(path []int, down []bool) bool {
	for i := 0; i+1 < len(path); i++ {
		if li, ok := p.linkIdx[pairKey(path[i], path[i+1])]; ok && down[li] {
			return false
		}
	}
	return true
}

// patchOne applies fast reroute to one commodity's split under a down-set:
// fractions on failed paths move to the backup when it exists and is up,
// merging with a surviving path if the backup coincides with one. Fractions
// with nowhere to go stay on their dead path (they stall; availability
// accounting charges them). Returns base itself when nothing crosses a
// down link.
func (p *Protection) patchOne(flow int, base []netsim.SplitPath, down []bool) []netsim.SplitPath {
	deadFrac := 0.0
	for _, sp := range base {
		if !p.pathUp(sp.Path, down) {
			deadFrac += sp.Frac
		}
	}
	if deadFrac == 0 {
		return base
	}
	bk, ok := p.Backups[flow]
	if !ok || !p.pathUp(bk.Path, down) {
		return base // nothing to rescue with
	}
	out := make([]netsim.SplitPath, 0, len(base)+1)
	bkKey := netsim.PathKey(bk.Path)
	merged := false
	for _, sp := range base {
		if !p.pathUp(sp.Path, down) {
			continue
		}
		if netsim.PathKey(sp.Path) == bkKey {
			sp.Frac += deadFrac
			merged = true
		}
		out = append(out, sp)
	}
	if !merged {
		out = append(out, netsim.SplitPath{Path: bk.Path, Frac: deadFrac})
	}
	return out
}

// Patched returns the split set fast reroute holds in force under a
// down-set, starting from the installed primaries — the planning-side view
// for MLU evaluation (te.MLUOf) without compiling a full Plan.
func (p *Protection) Patched(down []bool) map[int][]netsim.SplitPath {
	return p.PatchedFrom(p.primaries, down)
}

// PatchedFrom applies fast reroute against an arbitrary installed base —
// the latest reoptimized solution of a live control plane rather than the
// clear-sky primaries. Flows the base dropped as unroutable fall back to
// their primaries (the last physical paths the network held), matching the
// Plan compiler's convention. The down-set indexes the clear-sky link list
// the protection was built over. Pure table lookups: no LP solves.
func (p *Protection) PatchedFrom(base map[int][]netsim.SplitPath, down []bool) map[int][]netsim.SplitPath {
	out := make(map[int][]netsim.SplitPath, len(p.primaries))
	for flow, prim := range p.primaries {
		bs := base[flow]
		if len(bs) == 0 {
			bs = prim
		}
		out[flow] = p.patchOne(flow, bs, down)
	}
	return out
}

// Plan is a compiled failure response, ready to install on a
// netsim.Scenario: the schedule's link events plus the timed path updates
// the protection mode issues in response.
type Plan struct {
	Mode     Mode
	Failures []netsim.FailureEvent
	Updates  []netsim.PathUpdate

	// Reroutes counts per-commodity routing changes the plan issues.
	Reroutes int

	// LPSolves is the number of simplex solves performed while compiling
	// the event responses, sampled from te.LPSolves. FRR plans pin this at
	// zero — backup activation is a table lookup; FRRReopt plans spend
	// their solves in the background controller, never on the DetectDelay
	// activation path. The counter is process-wide, so the number is only
	// attributable when no concurrent TE solving is running.
	LPSolves int64
}

// Plan compiles the protection mode's response to a failure schedule. For
// FRRReopt, ctrl must be a controller built over the same (nodes, links,
// comms) at clear sky; the compilation drives it through the schedule's
// capacity states (warm reoptimization) and leaves it at the schedule's
// final state. ctrl is ignored for the other modes.
func (p *Protection) Plan(sched *Schedule, mode Mode, ctrl *te.Controller) (*Plan, error) {
	if sched.NumLinks != len(p.links) {
		return nil, fmt.Errorf("resilience: schedule covers %d links, topology has %d", sched.NumLinks, len(p.links))
	}
	plan := &Plan{Mode: mode, Failures: sched.Events()}
	if mode == NoProtection {
		return plan, nil
	}
	if mode == FRRReopt && ctrl == nil {
		return nil, fmt.Errorf("resilience: FRRReopt plan needs a te.Controller")
	}
	solvesBefore := te.LPSolves()

	// Batch the schedule's events by time, then build the decision list:
	// a fast-reroute patch DetectDelay after every batch and, for FRRReopt,
	// the background solution swap ReoptDelay after it.
	type decision struct {
		t    float64
		swap map[int][]netsim.SplitPath // non-nil: reopt solution to swap in
	}
	var decisions []decision
	batchSweep := newDownSweep(sched)
	for bi := 0; bi < len(plan.Failures); {
		t := plan.Failures[bi].Time
		for ; bi < len(plan.Failures) && plan.Failures[bi].Time == t; bi++ {
		}
		decisions = append(decisions, decision{t: t + p.cfg.DetectDelay})
		if mode == FRRReopt {
			graded := gradedLinks(p.links, batchSweep.advance(t))
			if _, err := ctrl.UpdateCapacities(graded); err != nil {
				return nil, fmt.Errorf("resilience: reoptimizing at t=%.3f: %w", t, err)
			}
			decisions = append(decisions, decision{t: t + p.cfg.ReoptDelay, swap: copySplits(ctrl.Solution().Splits)})
		}
	}
	sort.SliceStable(decisions, func(a, b int) bool { return decisions[a].t < decisions[b].t })

	// Walk the decisions chronologically, emitting an update whenever a
	// commodity's in-force split changes. base is the latest swapped-in
	// solution (initially the primaries); installed tracks what the network
	// is actually forwarding on.
	base := p.primaries
	installed := make(map[int]string, len(p.primaries))
	for flow, sp := range p.primaries {
		installed[flow] = splitsKey(sp)
	}
	flows := make([]int, 0, len(p.primaries))
	for flow := range p.primaries {
		flows = append(flows, flow)
	}
	sort.Ints(flows)
	decSweep := newDownSweep(sched)
	for di := 0; di < len(decisions); {
		t := decisions[di].t
		for ; di < len(decisions) && decisions[di].t == t; di++ {
			if decisions[di].swap != nil {
				base = decisions[di].swap
			}
		}
		down := decSweep.advance(t)
		for _, flow := range flows {
			bs := base[flow]
			if len(bs) == 0 {
				bs = p.primaries[flow] // reopt dropped it as unroutable; keep the last physical paths
			}
			desired := p.patchOne(flow, bs, down)
			key := splitsKey(desired)
			if key == installed[flow] {
				continue
			}
			installed[flow] = key
			plan.Updates = append(plan.Updates, netsim.PathUpdate{Time: t, Flow: flow, Paths: desired})
			plan.Reroutes++
		}
	}
	plan.LPSolves = te.LPSolves() - solvesBefore
	snk := obs.Active()
	snk.Counter("cisp_resilience_frr_activations_total", "mode", mode.String()).Add(int64(plan.Reroutes))
	// The event-path pin, as a scrapeable gauge: pure-FRR plans promise
	// zero LP solves while compiling event responses (FRRReopt plans do
	// their solving in the modelled background controller).
	snk.Gauge("cisp_resilience_plan_lp_solves", "mode", mode.String()).Set(float64(plan.LPSolves))
	return plan, nil
}

// gradedLinks zeroes the rate of down links, positionally.
func gradedLinks(links []netsim.TopoLink, down []bool) []netsim.TopoLink {
	out := append([]netsim.TopoLink(nil), links...)
	for li := range out {
		if down[li] {
			out[li].RateBps = 0
		}
	}
	return out
}

func copySplits(m map[int][]netsim.SplitPath) map[int][]netsim.SplitPath {
	out := make(map[int][]netsim.SplitPath, len(m))
	for k, v := range m {
		out[k] = append([]netsim.SplitPath(nil), v...)
	}
	return out
}

// splitsKey canonicalizes a split set for change detection: path order is
// normalized and fractions rounded well below any meaningful difference.
func splitsKey(sps []netsim.SplitPath) string {
	keys := make([]string, 0, len(sps))
	for _, sp := range sps {
		keys = append(keys, fmt.Sprintf("%s=%.9f", netsim.PathKey(sp.Path), sp.Frac))
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, ';')
	}
	return string(b)
}
