// europe reproduces the paper's §6.2 question — "is the US geography
// special?" — by designing a cISP over European cities above 300k
// population with the identical methodology (Fig 8) and comparing the two
// continents' headline numbers.
package main

import (
	"fmt"
	"log"

	"cisp"
)

func main() {
	run := func(region cisp.Region, name string) (stretch, fiber float64, towers float64) {
		s := cisp.NewScenario(cisp.ScenarioConfig{
			Region: region,
			Scale:  cisp.ScaleSmall,
			Seed:   7,
		})
		tm := s.PopulationTraffic()
		top, err := s.DesignCISP(tm, s.DefaultBudget())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %3d cities, %5.0f towers -> stretch %.4f (fiber %.4f)\n",
			name, len(s.Cities), top.CostUsed(), top.MeanStretch(), top.MeanFiberStretch())
		return top.MeanStretch(), top.MeanFiberStretch(), top.CostUsed()
	}

	usStretch, _, _ := run(cisp.US, "US")
	euStretch, _, _ := run(cisp.Europe, "Europe")

	fmt.Printf("\nratio Europe/US stretch: %.3f — the paper finds the two nearly identical\n",
		euStretch/usStretch)
	fmt.Println("(paper: 1.04x for Europe vs 1.05x for the US at full scale)")
}
