package experiments

import "sort"

// Fig3Result summarises the flagship network (Fig 3 in the paper: a 3,000
// tower, 100 Gbps, 1.05×-stretch network over 120 US population centers).
type Fig3Result struct {
	Cities        int
	Budget        float64
	TowersUsed    float64 // towers consumed by the design (Step-2 budget)
	Links         int
	MeanStretch   float64
	FiberStretch  float64
	AggregateGbps float64

	// Hop augmentation histogram: extra towers per end → hop count
	// (paper: 1,660 need none, 552 need one, 86 need two).
	HopHistogram map[int]int
	NewTowers    int
	CostPerGB    float64
}

// Fig3USNetwork designs, provisions and prices the flagship US network.
func Fig3USNetwork(opt Options) *Fig3Result {
	w := opt.out()
	s := opt.scenario()
	tm := s.PopulationTraffic()
	budget := s.DefaultBudget()
	top, err := s.DesignCISP(tm, budget)
	if err != nil {
		fprintf(w, "fig3: %v\n", err)
		return nil
	}
	agg := opt.aggregateGbps()
	plan := s.Provision(top, scaleTo(tm, agg))
	res := &Fig3Result{
		Cities:        len(s.Cities),
		Budget:        budget,
		TowersUsed:    top.CostUsed(),
		Links:         len(top.Built),
		MeanStretch:   top.MeanStretch(),
		FiberStretch:  top.MeanFiberStretch(),
		AggregateGbps: agg,
		HopHistogram:  plan.HopHistogram,
		NewTowers:     plan.NewTowers,
		CostPerGB:     s.CostPerGB(plan, agg),
	}

	fprintf(w, "Fig 3 — US network (paper: 3,000 towers, 1.05x stretch, $0.81/GB at 100 Gbps)\n")
	fprintf(w, "  cities %d, budget %.0f towers (used %.0f), %d MW links\n",
		res.Cities, res.Budget, res.TowersUsed, res.Links)
	fprintf(w, "  mean stretch %.3f (fiber-only baseline %.3f)\n", res.MeanStretch, res.FiberStretch)
	fprintf(w, "  provisioned for %.0f Gbps: hop augmentation histogram (extra towers/end -> hops):\n", agg)
	keys := make([]int, 0, len(res.HopHistogram))
	for k := range res.HopHistogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fprintf(w, "    %d extra: %d hops\n", k, res.HopHistogram[k])
	}
	fprintf(w, "  new towers built: %d, cost: $%.2f/GB\n", res.NewTowers, res.CostPerGB)
	return res
}
