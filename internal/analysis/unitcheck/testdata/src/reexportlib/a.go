// Package reexportlib re-exports unit types under local alias names — the
// vendored-style indirection some repositories layer over a shared units
// package. Aliases are transparent to types.Unalias, so unitcheck sees
// the original dimensions.
package reexportlib

import "cisp/internal/units"

type (
	Meters = units.Meters
	Km     = units.Km
)
