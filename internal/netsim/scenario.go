package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cisp/internal/obs"
	"cisp/internal/parallel"
	"cisp/internal/units"
)

// Mode selects the simulation engine a Scenario runs on.
type Mode int

// Engine modes.
const (
	// PacketMode is the discrete-event per-packet engine: full queuing,
	// loss and TCP dynamics, practical up to ~10³-10⁴ flows.
	PacketMode Mode = iota
	// FluidMode is the flow-level max-min engine: no queuing transients,
	// practical up to 10⁵-10⁶ concurrent flows.
	FluidMode
)

func (m Mode) String() string {
	switch m {
	case PacketMode:
		return "packet"
	case FluidMode:
		return "fluid"
	}
	return "unknown"
}

// ParseMode parses "packet" or "fluid".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "packet":
		return PacketMode, nil
	case "fluid":
		return FluidMode, nil
	}
	return 0, fmt.Errorf("netsim: unknown mode %q (want packet or fluid)", s)
}

// Scenario is a declarative bulk-simulation input shared by both engines:
// a topology, routed commodities (each carrying Count concurrent flows of
// FlowBytes payload), and a horizon. The same Scenario can be run in
// packet mode for microscopic fidelity and in fluid mode for scale; both
// route with ComputeRoutes, so per-flow paths are identical across modes
// and per-flow mean rates are directly comparable.
type Scenario struct {
	Nodes  int
	Links  []TopoLink
	Comms  []Commodity
	Scheme Scheme

	// Splits, when non-nil, installs fractional multipath routing for the
	// listed commodities (keyed by Commodity.Flow), as computed by a
	// traffic-engineering control plane (internal/te): each commodity's
	// Count flows are apportioned across its weighted paths by
	// largest-remainder rounding on the fractions and then shuffled with a
	// Seed-deterministic draw, identically in both engine modes — so the
	// per-path flow populations, and therefore the offered load, are the
	// same in packet and fluid runs. Commodities without an entry fall back
	// to Scheme routing.
	Splits map[int][]SplitPath

	// Failures is a timed link outage schedule applied during the run, in
	// both engine modes: at each event's Time, the duplex link
	// Links[Event.Link] goes down (queued and in-flight packets are lost,
	// fluid flows crossing it re-rate to zero) or comes back up. Events at
	// the same instant apply before any Updates at that instant.
	Failures []FailureEvent

	// Updates re-route commodities mid-run, identically in both engine
	// modes: at each update's Time, the commodity's clone flows are
	// re-apportioned across the update's weighted paths with the same
	// largest-remainder + seeded-shuffle draw used at setup (the draw
	// depends only on Seed and the update's index, so packet and fluid runs
	// stay flow-for-flow comparable). In packet mode in-flight packets
	// finish (or die) on the old path and retransmissions take the new one;
	// in fluid mode remaining bytes carry over. This is the installation
	// hook for fast-reroute and reoptimization plans
	// (internal/resilience).
	Updates []PathUpdate

	FlowBytes   int     // payload per flow (default 100 KB)
	Horizon     float64 // simulated seconds (default 30)
	StartSpread float64 // flow starts drawn uniformly from [0, StartSpread] (0 = all at t=0)
	Seed        int64   // start-time randomness (packet and fluid draw identically)
	Pacing      bool    // packet mode: TCP pacing
	QueueCap    int     // packet mode: per-link queue override (0 = keep TopoLink values)
	RateTol     float64 // fluid mode: reschedule-suppression tolerance
}

// FailureEvent is one timed topology transition of a Scenario run: the
// duplex link at index Link in Scenario.Links fails (Up false) or is
// restored (Up true) at Time seconds.
type FailureEvent struct {
	Time float64
	Link int
	Up   bool
}

// PathUpdate is one timed re-routing command: at Time, the commodity with
// flow ID Flow has its clone flows re-apportioned across Paths. An empty
// Paths is invalid; to model an unprotected commodity simply omit updates
// for it and let its flows stall on the dead path.
type PathUpdate struct {
	Time  float64
	Flow  int
	Paths []SplitPath
}

// SplitPath is one weighted path of a commodity's fractional multipath
// split.
type SplitPath struct {
	Path []int   // node path from the commodity's Src to its Dst
	Frac float64 // fraction of the commodity's flows riding this path
}

// LinkLoad is one directed link's time-average utilization over a run.
type LinkLoad struct {
	From, To    int
	Utilization units.Utilization
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	Flow        int     // commodity flow ID this flow ran on
	Start       float64 // start time, seconds
	FCT         float64 // flow completion time, seconds (0 if incomplete)
	Completed   bool
	MeanRateBps float64 // payload*8/FCT when completed, served*8/elapsed otherwise
}

// ScenarioResult is the outcome of one Scenario run.
type ScenarioResult struct {
	Mode      Mode
	Flows     []FlowResult
	Completed int
	End       float64 // simulation end time

	// LinkLoads is every directed link's time-average utilization over
	// [0, End], sorted by (From, To); MLU is their maximum. In packet mode
	// utilization is transmission busy time (ACK traffic included); in
	// fluid mode it is served bytes over capacity × elapsed.
	LinkLoads []LinkLoad
	MLU       units.Utilization

	// EventsProcessed counts simulator events executed during the run: all
	// discrete events in packet mode, live arrival/departure events in
	// fluid mode. Benchmarks report wall time / EventsProcessed as
	// ns/event.
	EventsProcessed int64
}

// FCTs returns the completion times of all completed flows, in flow order.
func (r *ScenarioResult) FCTs() []float64 {
	var out []float64
	for _, f := range r.Flows {
		if f.Completed {
			out = append(out, f.FCT)
		}
	}
	return out
}

// MeanRateByCommodity averages per-flow mean rates per commodity flow ID.
func (r *ScenarioResult) MeanRateByCommodity() map[int]float64 {
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, f := range r.Flows {
		sum[f.Flow] += f.MeanRateBps
		cnt[f.Flow]++
	}
	out := make(map[int]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	return out
}

func (sc *Scenario) defaults() (flowBytes int, horizon float64) {
	flowBytes = sc.FlowBytes
	if flowBytes == 0 {
		flowBytes = 100 << 10
	}
	horizon = sc.Horizon
	if horizon == 0 {
		horizon = 30
	}
	return
}

// starts draws the per-flow start times; identical in both modes so the
// engines see the same offered load. Flows are ordered commodity-major.
func (sc *Scenario) starts(total int) []float64 {
	out := make([]float64, total)
	if sc.StartSpread <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	for i := range out {
		out[i] = rng.Float64() * sc.StartSpread
	}
	return out
}

// commodityRouting is one commodity's resolved forwarding choice: its
// candidate paths and, for fractional splits, each clone flow's path index
// (nil assign = every flow on paths[0]). nil paths marks an unroutable
// commodity.
type commodityRouting struct {
	paths  [][]int
	assign []int
}

// routeCommodities resolves per-commodity forwarding for a run: commodities
// with a Splits entry get their weighted paths and a deterministic per-flow
// path assignment drawn from Seed; the rest are routed by Scheme via
// ComputeRoutes. Both engines call this with identical inputs, so per-path
// flow populations are identical across modes.
func (sc *Scenario) routeCommodities(links []TopoLink) []commodityRouting {
	var routed []Commodity
	for _, c := range sc.Comms {
		if len(sc.Splits[c.Flow]) == 0 {
			routed = append(routed, c)
		}
	}
	var single map[int][]int
	if len(routed) > 0 {
		single = ComputeRoutes(sc.Nodes, links, routed, sc.Scheme)
	}
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	out := make([]commodityRouting, len(sc.Comms))
	for i, c := range sc.Comms {
		sp := sc.Splits[c.Flow]
		if len(sp) == 0 {
			if p := single[c.Flow]; p != nil {
				out[i].paths = [][]int{p}
			}
			continue
		}
		paths, fracs := splitPaths(c, sp)
		if len(paths) == 0 {
			continue
		}
		out[i].paths = paths
		if len(paths) > 1 {
			out[i].assign = splitAssignments(max(c.Count, 1), fracs, rng)
		}
	}
	return out
}

// splitPaths validates a commodity's weighted paths and extracts the
// positive-fraction ones. Panics on a path that does not connect the
// commodity's endpoints — a planning-layer bug, not a runtime condition.
func splitPaths(c Commodity, sp []SplitPath) (paths [][]int, fracs []float64) {
	for _, s := range sp {
		if s.Frac <= 0 {
			continue
		}
		if len(s.Path) < 2 || s.Path[0] != c.Src || s.Path[len(s.Path)-1] != c.Dst {
			panic(fmt.Sprintf("netsim: split path %v does not connect commodity %d (%d->%d)",
				s.Path, c.Flow, c.Src, c.Dst))
		}
		paths = append(paths, s.Path)
		fracs = append(fracs, s.Frac)
	}
	return paths, fracs
}

// updateAssign draws the per-clone path assignment for the ui-th update.
// The source depends only on (Seed, ui), never on engine state, so packet
// and fluid runs re-apportion clone-for-clone identically.
func (sc *Scenario) updateAssign(ui, nClones int, fracs []float64) []int {
	if len(fracs) <= 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1_000_003*int64(ui+1)))
	return splitAssignments(nClones, fracs, rng)
}

// checkFailures bounds-checks the failure schedule against the link list.
func (sc *Scenario) checkFailures(links []TopoLink) {
	for _, ev := range sc.Failures {
		if ev.Link < 0 || ev.Link >= len(links) {
			panic(fmt.Sprintf("netsim: failure event link %d outside [0,%d)", ev.Link, len(links)))
		}
	}
}

// splitAssignments apportions n flows across paths in proportion to fracs
// (largest-remainder rounding, so per-path counts are exact) and shuffles
// the assignment vector so clone order carries no path bias. Deterministic
// in the rng state.
func splitAssignments(n int, fracs []float64, rng *rand.Rand) []int {
	tot := 0.0
	for _, f := range fracs {
		tot += f
	}
	counts := make([]int, len(fracs))
	order := make([]int, len(fracs))
	rem := make([]float64, len(fracs))
	assigned := 0
	for i, f := range fracs {
		quota := float64(n) * f / tot
		counts[i] = int(math.Floor(quota))
		rem[i] = quota - float64(counts[i])
		order[i] = i
		assigned += counts[i]
	}
	sort.Slice(order, func(a, b int) bool {
		if rem[order[a]] != rem[order[b]] {
			return rem[order[a]] > rem[order[b]]
		}
		return order[a] < order[b]
	})
	for k := 0; k < n-assigned; k++ {
		counts[order[k]]++
	}
	out := make([]int, 0, n)
	for pi, c := range counts {
		for k := 0; k < c; k++ {
			out = append(out, pi)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// finishLinkLoads sorts the per-link loads by (From, To) and records the
// maximum as the run's MLU.
func (r *ScenarioResult) finishLinkLoads(loads []LinkLoad) {
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].From != loads[j].From {
			return loads[i].From < loads[j].From
		}
		return loads[i].To < loads[j].To
	})
	r.LinkLoads = loads
	for _, l := range loads {
		if l.Utilization > r.MLU {
			r.MLU = l.Utilization
		}
	}
}

// Run executes the scenario on the selected engine.
func (sc *Scenario) Run(mode Mode) *ScenarioResult {
	if mode == FluidMode {
		return sc.runFluid()
	}
	return sc.runPacket()
}

// RunMany fans independent scenario runs out over the shared worker pool
// (internal/parallel), preserving input order. Each run owns its simulator,
// so results are bit-identical to sequential execution at any pool width.
// With an active obs sink, each run gets a span (named by its index, so
// concurrent siblings stay distinct) and a panic inside a run is re-raised
// carrying the run's index, seed and mode — a bulk sweep's crash report
// names the scenario that died instead of an anonymous worker goroutine.
func RunMany(scs []*Scenario, mode Mode) []*ScenarioResult {
	snk := obs.Active()
	return parallel.Map(len(scs), 1, func(i int) *ScenarioResult {
		defer func() {
			if r := recover(); r != nil {
				panic(fmt.Sprintf("netsim: scenario %d of %d (seed %d, mode %s) panicked: %v",
					i, len(scs), scs[i].Seed, mode, r))
			}
		}()
		sp := snk.Span(fmt.Sprintf("netsim:run[%d]:%s", i, mode))
		res := scs[i].Run(mode)
		sp.SetItems(res.EventsProcessed)
		sp.End()
		return res
	})
}

func (sc *Scenario) runPacket() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	links := sc.Links
	if sc.QueueCap > 0 {
		links = append([]TopoLink(nil), sc.Links...)
		for i := range links {
			links[i].QueueCap = sc.QueueCap
		}
	}
	var sim Simulator
	nw := NewNetwork(&sim, sc.Nodes)
	BuildTopology(nw, links)
	routings := sc.routeCommodities(links)

	// Flow IDs: each commodity keeps its own ID for its first flow; clones
	// get fresh IDs past the maximum so delivery demux stays per-flow.
	nextID := 0
	for _, c := range sc.Comms {
		if c.Flow >= nextID {
			nextID = c.Flow + 1
		}
	}
	total := 0
	for ci, c := range sc.Comms {
		if routings[ci].paths != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: PacketMode}
	type live struct {
		conn *TCPConn
		idx  int // index into res.Flows
	}
	var conns []live
	cloneIDs := make(map[int][]int) // commodity flow ID -> clone netsim flow IDs
	commOf := make(map[int]Commodity, len(sc.Comms))
	fi := 0
	for ci, c := range sc.Comms {
		r := &routings[ci]
		if r.paths == nil {
			continue
		}
		commOf[c.Flow] = c
		fb := flowBytes
		if c.FlowBytes > 0 {
			fb = c.FlowBytes
		}
		revs := make([][]int, len(r.paths))
		for pi, path := range r.paths {
			revs[pi] = reversePath(path)
		}
		for k := 0; k < max(c.Count, 1); k++ {
			id := c.Flow
			if k > 0 {
				id = nextID
				nextID++
			}
			pi := 0
			if r.assign != nil {
				pi = r.assign[k]
			}
			nw.SetFlowPath(id, r.paths[pi])
			nw.SetFlowPath(id, revs[pi])
			cloneIDs[c.Flow] = append(cloneIDs[c.Flow], id)
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			conn := &TCPConn{
				Net: nw, Flow: id, Src: c.Src, Dst: c.Dst,
				FlowSize: fb, Pacing: sc.Pacing,
			}
			conn.Done = func(fct float64) {
				res.Flows[idx].FCT = fct
				res.Flows[idx].Completed = true
				res.Flows[idx].MeanRateBps = float64(fb) * 8 / fct
				res.Completed++
			}
			conns = append(conns, live{conn: conn, idx: idx})
			sim.Schedule(startAt[fi], conn.Start)
			fi++
		}
	}

	// Failure schedule: flip both directions of the duplex link. Scheduled
	// before updates, so same-instant failures apply first (matching the
	// fluid engine's action ordering).
	sc.checkFailures(links)
	for _, ev := range sc.Failures {
		down := !ev.Up
		ab := nw.Link(links[ev.Link].A, links[ev.Link].B)
		ba := nw.Link(links[ev.Link].B, links[ev.Link].A)
		sim.Schedule(ev.Time, func() {
			ab.SetDown(down)
			ba.SetDown(down)
		})
	}
	// Path updates: re-install forwarding (and the reverse ACK path) for
	// every clone of the commodity. In-flight packets keep their resolved
	// hops; retransmissions pick up the new route.
	for ui, u := range sc.Updates {
		ids := cloneIDs[u.Flow]
		if len(ids) == 0 {
			continue // commodity unroutable at setup: no clones to move
		}
		paths, fracs := splitPaths(commOf[u.Flow], u.Paths)
		if len(paths) == 0 {
			panic(fmt.Sprintf("netsim: path update for commodity %d has no usable path", u.Flow))
		}
		revs := make([][]int, len(paths))
		for pi, path := range paths {
			revs[pi] = reversePath(path)
		}
		assign := sc.updateAssign(ui, len(ids), fracs)
		sim.Schedule(u.Time, func() {
			for k, fid := range ids {
				pi := 0
				if assign != nil {
					pi = assign[k]
				}
				nw.SetFlowPath(fid, paths[pi])
				nw.SetFlowPath(fid, revs[pi])
			}
		})
	}
	sim.Run(horizon)
	res.End = sim.Now()
	res.EventsProcessed = sim.Processed()
	for _, l := range conns {
		fr := &res.Flows[l.idx]
		if fr.Completed {
			continue
		}
		if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = float64(l.conn.Acked()) * 8 / el
		}
	}
	loads := make([]LinkLoad, 0, len(nw.Links()))
	drops := int64(0)
	for _, l := range nw.Links() {
		//lint:allow maporder -- finishLinkLoads sorts loads by (From, To) before recording; drops is an order-free integer sum
		loads = append(loads, LinkLoad{From: l.From, To: l.To, Utilization: units.Utilization(l.Utilization(res.End))})
		drops += l.Drops
	}
	res.finishLinkLoads(loads)
	publishObs(res, sim.MaxPending(), drops)
	return res
}

// reversePath returns the node path reversed (the ACK direction).
func reversePath(path []int) []int {
	rev := make([]int, len(path))
	for i, v := range path {
		rev[len(path)-1-i] = v
	}
	return rev
}

// PathKey canonicalizes a node path as a comparable string — the shared
// key for route deduplication here and split change-detection in the
// resilience layer.
func PathKey(path []int) string {
	var b []byte
	for _, v := range path {
		b = fmt.Appendf(b, "%d,", v)
	}
	return string(b)
}

func (sc *Scenario) runFluid() *ScenarioResult {
	flowBytes, horizon := sc.defaults()
	f := NewFluid(sc.Nodes, sc.Links)
	f.RateTol = sc.RateTol
	routings := sc.routeCommodities(sc.Links)

	total := 0
	for ci, c := range sc.Comms {
		if routings[ci].paths != nil {
			total += max(c.Count, 1)
		}
	}
	startAt := sc.starts(total)

	res := &ScenarioResult{Mode: FluidMode}
	type live struct {
		fid   int // fluid flow ID
		idx   int
		bytes int // payload, after any per-commodity override
	}
	var flows []live
	cloneFids := make(map[int][]int)         // commodity flow ID -> clone fluid flow IDs
	routesOf := make(map[int]map[string]int) // commodity flow ID -> path key -> route ID
	commOf := make(map[int]Commodity, len(sc.Comms))
	fi := 0
	for ci, c := range sc.Comms {
		r := &routings[ci]
		if r.paths == nil {
			continue
		}
		commOf[c.Flow] = c
		fb := flowBytes
		if c.FlowBytes > 0 {
			fb = c.FlowBytes
		}
		routesOf[c.Flow] = make(map[string]int, len(r.paths))
		routes := make([]int, len(r.paths))
		for pi, path := range r.paths {
			routes[pi] = f.AddRoute(path)
			routesOf[c.Flow][PathKey(path)] = routes[pi]
		}
		for k := 0; k < max(c.Count, 1); k++ {
			pi := 0
			if r.assign != nil {
				pi = r.assign[k]
			}
			idx := len(res.Flows)
			res.Flows = append(res.Flows, FlowResult{Flow: c.Flow, Start: startAt[fi]})
			fid := f.StartAt(routes[pi], float64(fb), startAt[fi])
			cloneFids[c.Flow] = append(cloneFids[c.Flow], fid)
			flows = append(flows, live{fid: fid, idx: idx, bytes: fb})
			fi++
		}
	}

	// Interleave failure events and path updates with the fluid run: advance
	// to each action time, apply the batch, recompute once. Failures sort
	// before updates at the same instant, matching the packet engine's
	// scheduling order.
	sc.checkFailures(sc.Links)
	type action struct {
		t    float64
		fail int // index into sc.Failures, or -1
		upd  int // index into sc.Updates, or -1
	}
	var acts []action
	for i, ev := range sc.Failures {
		acts = append(acts, action{t: ev.Time, fail: i, upd: -1})
	}
	for i, u := range sc.Updates {
		acts = append(acts, action{t: u.Time, fail: -1, upd: i})
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].t < acts[j].t })
	for ai := 0; ai < len(acts); {
		t := acts[ai].t
		if t > horizon {
			break
		}
		f.Run(t)
		for ; ai < len(acts) && acts[ai].t == t; ai++ {
			a := acts[ai]
			if a.fail >= 0 {
				ev := sc.Failures[a.fail]
				l := sc.Links[ev.Link]
				rate := 0.0
				if ev.Up {
					rate = float64(l.RateBps)
				}
				f.SetLinkRate(l.A, l.B, rate)
				f.SetLinkRate(l.B, l.A, rate)
				continue
			}
			u := sc.Updates[a.upd]
			fids := cloneFids[u.Flow]
			if len(fids) == 0 {
				continue // commodity unroutable at setup: no clones to move
			}
			paths, fracs := splitPaths(commOf[u.Flow], u.Paths)
			if len(paths) == 0 {
				panic(fmt.Sprintf("netsim: path update for commodity %d has no usable path", u.Flow))
			}
			routes := make([]int, len(paths))
			for pi, path := range paths {
				key := PathKey(path)
				rid, ok := routesOf[u.Flow][key]
				if !ok {
					rid = f.AddRoute(path)
					routesOf[u.Flow][key] = rid
				}
				routes[pi] = rid
			}
			assign := sc.updateAssign(a.upd, len(fids), fracs)
			for k, fid := range fids {
				pi := 0
				if assign != nil {
					pi = assign[k]
				}
				f.Reroute(fid, routes[pi])
			}
		}
		f.Recompute()
	}
	f.Run(horizon)
	res.End = f.Now()
	res.EventsProcessed = f.Processed()
	for _, l := range flows {
		fr := &res.Flows[l.idx]
		if fct, done := f.FCT(l.fid); done {
			fr.FCT = fct
			fr.Completed = true
			fr.MeanRateBps = float64(l.bytes) * 8 / fct
			res.Completed++
		} else if el := res.End - fr.Start; el > 0 {
			fr.MeanRateBps = f.ServedBytes(l.fid) * 8 / el
		}
	}
	res.finishLinkLoads(f.LinkUtilizations())
	publishObs(res, f.MaxPending(), 0)
	return res
}

// publishObs records a finished run's figures on the active obs sink:
// cumulative event/flow/drop counters, the event heap's high-water depth,
// and per-link utilization gauges — all labelled by engine mode. Engine
// hot loops never touch obs; everything here is read from plain engine
// counters once per run, so the disabled path costs nothing and the
// enabled path costs O(links) at run end.
func publishObs(res *ScenarioResult, maxPending int, drops int64) {
	snk := obs.Active()
	if snk == nil {
		return
	}
	mode := res.Mode.String()
	snk.Counter("cisp_netsim_runs_total", "mode", mode).Inc()
	snk.Counter("cisp_netsim_events_total", "mode", mode).Add(res.EventsProcessed)
	snk.Counter("cisp_netsim_flows_total", "mode", mode).Add(int64(len(res.Flows)))
	snk.Counter("cisp_netsim_flows_completed_total", "mode", mode).Add(int64(res.Completed))
	snk.Counter("cisp_netsim_drops_total", "mode", mode).Add(drops)
	snk.Gauge("cisp_netsim_heap_depth_max", "mode", mode).SetMax(float64(maxPending))
	snk.Gauge("cisp_netsim_mlu", "mode", mode).Set(float64(res.MLU))
	for _, l := range res.LinkLoads {
		snk.Gauge("cisp_netsim_link_utilization",
			"link", fmt.Sprintf("%d-%d", l.From, l.To), "mode", mode).Set(float64(l.Utilization))
	}
}
