// Package resilience is the failure-resilience subsystem of the hybrid
// cISP backbone: where internal/weather models gradual precipitation
// impairment, this package models hard failures — a tower down, a conduit
// cut, a city offline — and the machinery that keeps traffic flowing
// through them.
//
// It has three layers. The failure engine draws deterministic, seeded
// outage schedules from per-element MTBF/MTTR distributions (Element,
// DrawSchedule); elements can be single links, tower-count-weighted
// microwave paths, or whole cities, and schedules compose with the weather
// interval schedule (WeatherSchedule, Merge). The fast-reroute layer
// (Protection) precomputes, for every commodity, a backup path that is
// maximally link-disjoint from the primaries the TE control plane
// installed — chosen from the exact candidate pool internal/te enumerates,
// so backups honor the same latency-stretch cap — and compiles a Plan of
// timed netsim path updates that activates backups on failure events with
// zero LP solves on the event path, optionally followed by a
// te.Controller's warm full reoptimization swapping in when ready. The
// analysis layer (Availability) walks a schedule analytically — year-scale
// horizons cost milliseconds, no packet simulation — and reports
// availability, nines, and latency stretch under failure for each
// protection mode. See DESIGN.md §8.
package resilience

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/units"
	"cisp/internal/weather"
)

// Element is one independently failing piece of infrastructure. When it
// fails, every topology link it covers goes down together — a link element
// covers just itself, a city element covers every link incident to the
// city, a regional element can cover an arbitrary correlated set.
type Element struct {
	Name  string
	Links []int         // indices into the topology's link list
	MTBF  units.Seconds // mean up time between failures
	MTTR  units.Seconds // mean time to repair
}

// Outage is one contiguous down interval of a single link.
type Outage struct {
	Link       int
	Start, End float64 // [Start, End) seconds; End is capped at the horizon
}

// Schedule is a deterministic link outage timetable over a horizon:
// per-link merged down intervals, ready to drive both netsim engines
// (Events) and the analytic availability walk. The zero schedule (no
// outages) is valid.
type Schedule struct {
	Horizon  float64
	NumLinks int
	Outages  []Outage // sorted by (Start, Link), non-overlapping per link
}

// DrawSchedule samples every element's alternating up/down lifetime
// (exponential with means MTBF and MTTR) over the horizon and folds the
// failures onto the links they cover. Element i draws from a source seeded
// by (seed, i), so the same seed always yields the same schedule and
// appending new elements never perturbs existing timelines (removing or
// reordering earlier elements shifts the indices — and therefore the
// draws — of everything after them).
func DrawSchedule(els []Element, nLinks int, horizon float64, seed int64) *Schedule {
	perLink := make([][]Outage, nLinks)
	for i, el := range els {
		if el.MTBF <= 0 || el.MTTR <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed + 7919*int64(i+1)))
		for t := rng.ExpFloat64() * float64(el.MTBF); t < horizon; {
			end := t + rng.ExpFloat64()*float64(el.MTTR)
			if end > horizon {
				end = horizon
			}
			for _, li := range el.Links {
				if li >= 0 && li < nLinks {
					perLink[li] = append(perLink[li], Outage{Link: li, Start: t, End: end})
				}
			}
			t = end + rng.ExpFloat64()*float64(el.MTBF)
		}
	}
	return scheduleFromPerLink(perLink, nLinks, horizon)
}

// scheduleFromPerLink merges each link's raw intervals and assembles the
// sorted schedule.
func scheduleFromPerLink(perLink [][]Outage, nLinks int, horizon float64) *Schedule {
	s := &Schedule{Horizon: horizon, NumLinks: nLinks}
	for li := range perLink {
		ivs := perLink[li]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
		for _, iv := range ivs {
			if n := len(s.Outages); n > 0 && s.Outages[n-1].Link == li && iv.Start <= s.Outages[n-1].End {
				if iv.End > s.Outages[n-1].End {
					s.Outages[n-1].End = iv.End
				}
				continue
			}
			s.Outages = append(s.Outages, iv)
		}
	}
	sort.Slice(s.Outages, func(a, b int) bool {
		if s.Outages[a].Start != s.Outages[b].Start {
			return s.Outages[a].Start < s.Outages[b].Start
		}
		return s.Outages[a].Link < s.Outages[b].Link
	})
	return s
}

// Events renders the schedule as the netsim failure-event list: one down
// event per outage start and one up event per repair that completes inside
// the horizon, time-sorted.
func (s *Schedule) Events() []netsim.FailureEvent {
	var evs []netsim.FailureEvent
	for _, o := range s.Outages {
		evs = append(evs, netsim.FailureEvent{Time: o.Start, Link: o.Link, Up: false})
		if o.End < s.Horizon {
			evs = append(evs, netsim.FailureEvent{Time: o.End, Link: o.Link, Up: true})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	return evs
}

// DownAt returns the per-link down indicator at time t. Cost is one scan
// of the outage list; callers probing many monotonically increasing times
// should use a downSweep instead.
func (s *Schedule) DownAt(t float64) []bool {
	down := make([]bool, s.NumLinks)
	for _, o := range s.Outages {
		if o.Start <= t && t < o.End {
			down[o.Link] = true
		}
	}
	return down
}

// downSweep replays a schedule's events incrementally for monotonically
// increasing probe times — the linear-time replacement for repeated
// DownAt scans in the plan compiler and the availability walk.
type downSweep struct {
	events []netsim.FailureEvent
	idx    int
	down   []bool
}

func newDownSweep(s *Schedule) *downSweep {
	return &downSweep{events: s.Events(), down: make([]bool, s.NumLinks)}
}

// advance applies every event at or before t and returns the down-set.
// The slice is owned by the sweep and only valid until the next advance;
// t must not decrease across calls.
func (d *downSweep) advance(t float64) []bool {
	for d.idx < len(d.events) && d.events[d.idx].Time <= t {
		d.down[d.events[d.idx].Link] = !d.events[d.idx].Up
		d.idx++
	}
	return d.down
}

// DownSeconds returns each link's total scheduled downtime.
func (s *Schedule) DownSeconds() []float64 {
	out := make([]float64, s.NumLinks)
	for _, o := range s.Outages {
		out[o.Link] += o.End - o.Start
	}
	return out
}

// Merge overlays two schedules over the same link list: a link is down in
// the result whenever it is down in either input — how a hardware outage
// timetable composes with a weather one. The horizon is the larger of the
// two.
func Merge(a, b *Schedule) (*Schedule, error) {
	if a.NumLinks != b.NumLinks {
		return nil, fmt.Errorf("resilience: merging schedules over %d and %d links", a.NumLinks, b.NumLinks)
	}
	perLink := make([][]Outage, a.NumLinks)
	for _, s := range []*Schedule{a, b} {
		for _, o := range s.Outages {
			perLink[o.Link] = append(perLink[o.Link], o)
		}
	}
	return scheduleFromPerLink(perLink, a.NumLinks, math.Max(a.Horizon, b.Horizon)), nil
}

// Remap projects the schedule onto a different link list: outage link
// indices are rewritten through mapLink, and outages mapped to a negative
// index are dropped. This is how a schedule drawn over a hybrid topology
// (microwave prefix + fiber suffix) restricts to a fiber-only baseline
// whose link list is the suffix alone — microwave outages vanish, conduit
// cuts keep biting.
func (s *Schedule) Remap(nLinks int, mapLink func(int) int) *Schedule {
	perLink := make([][]Outage, nLinks)
	for _, o := range s.Outages {
		li := mapLink(o.Link)
		if li >= 0 && li < nLinks {
			perLink[li] = append(perLink[li], Outage{Link: li, Start: o.Start, End: o.End})
		}
	}
	return scheduleFromPerLink(perLink, nLinks, s.Horizon)
}

// WeatherSchedule bridges the weather interval schedule into the failure
// engine: conds[k][li] grades link li during the k-th interval of
// intervalSec seconds (the shape internal/weather's year analysis and
// StormConditions produce), and a link is out while its worst hop exceeds
// the fade margin (LinkCondition.Failed). Links beyond the graded prefix —
// fiber conduits ride behind the microwave list — are never failed.
// Compose the result with a hardware schedule via Merge.
func WeatherSchedule(conds [][]weather.LinkCondition, intervalSec float64, nLinks int) *Schedule {
	perLink := make([][]Outage, nLinks)
	for k, cs := range conds {
		start, end := float64(k)*intervalSec, float64(k+1)*intervalSec
		for li, c := range cs {
			if li < nLinks && c.Failed {
				perLink[li] = append(perLink[li], Outage{Link: li, Start: start, End: end})
			}
		}
	}
	return scheduleFromPerLink(perLink, nLinks, float64(len(conds))*intervalSec)
}

// LinkElements models independent per-link hardware failure: one element
// per link, identical MTBF/MTTR. Covers fiber conduits as well as
// microwave links if given the full list.
func LinkElements(nLinks int, mtbf, mttr units.Seconds) []Element {
	els := make([]Element, nLinks)
	for i := range els {
		els[i] = Element{Name: fmt.Sprintf("link-%d", i), Links: []int{i}, MTBF: mtbf, MTTR: mttr}
	}
	return els
}

// TowerElements models microwave-relay hardware failure: a link carried by
// more towers fails more often, so each link's element gets MTBF =
// perTowerMTBF / towers, with the tower count estimated from the link's
// propagation distance (PropDelay × c) at hopSpacing per relay hop (the
// paper's ~100 km spacing). mwLinks must be the microwave prefix of the
// topology's link list — element link indices are positional.
func TowerElements(mwLinks []netsim.TopoLink, hopSpacing units.Meters, perTowerMTBF, mttr units.Seconds) []Element {
	els := make([]Element, len(mwLinks))
	for i, l := range mwLinks {
		towers := int(math.Ceil(float64(l.PropDelay) * geo.C / float64(hopSpacing)))
		if towers < 1 {
			towers = 1
		}
		els[i] = Element{
			Name:  fmt.Sprintf("mw-%d(%d towers)", i, towers),
			Links: []int{i},
			MTBF:  units.Seconds(float64(perTowerMTBF) / float64(towers)),
			MTTR:  mttr,
		}
	}
	return els
}

// CityElements models whole-site outages — power loss, a city offline:
// one element per listed node, covering every topology link incident to
// it. Pass only real sites (not fiber midpoint transit nodes).
func CityElements(links []netsim.TopoLink, cities []int, mtbf, mttr units.Seconds) []Element {
	els := make([]Element, 0, len(cities))
	for _, v := range cities {
		var covered []int
		for li, l := range links {
			if l.A == v || l.B == v {
				covered = append(covered, li)
			}
		}
		if len(covered) == 0 {
			continue
		}
		els = append(els, Element{
			Name:  fmt.Sprintf("city-%d", v),
			Links: covered,
			MTBF:  mtbf,
			MTTR:  mttr,
		})
	}
	return els
}
