// Package analysistest is the golden-test harness for cisplint analyzers,
// mirroring the x/tools package of the same name on the repo's own
// stdlib-only framework. A test package lives under
// <analyzer>/testdata/src/<pkg>/ and marks expected findings with
// trailing comments:
//
//	x = append(x, k) // want `append to x during range over map`
//
// Each back-quoted (or double-quoted) string is a regular expression that
// must match, in order, the messages reported on that line; lines without
// a want comment must report nothing. //lint:allow directives in testdata
// are honored exactly as in production, so golden tests cover the escape
// hatch too.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cisp/internal/analysis"
	"cisp/internal/analysis/loader"
)

// Run loads each named package from testdata/src/<pkg>, applies the
// analyzer, and compares findings against // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("analysistest: creating loader: %v", err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		p, err := l.LoadDir(dir, pkg)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", dir, err)
			continue
		}
		findings, err := analysis.RunUnit(p.Fset, p.Files, p.Types, p.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, pkg, err)
			continue
		}
		checkExpectations(t, p, findings)
	}
}

// RunWithFacts is Run driven through an analysis.Session: packages whose
// expectations depend on cross-package fact propagation (unitcheck's
// dimension signatures) see the facts of their module-internal imports,
// exactly as the standalone cisplint driver provides them. Suppressed
// findings are filtered as in production.
func RunWithFacts(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	s := analysis.NewSession(".", []*analysis.Analyzer{a})
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("analysistest: creating loader: %v", err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		all, err := s.RunDir(dir, pkg)
		if err != nil {
			t.Errorf("analysistest: analyzing %s: %v", dir, err)
			continue
		}
		findings := all[:0]
		for _, f := range all {
			if !f.Suppressed {
				findings = append(findings, f)
			}
		}
		// The want comments come from an independent parse; line numbers
		// and base filenames agree across file sets.
		p, err := l.LoadDir(dir, pkg)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", dir, err)
			continue
		}
		checkExpectations(t, p, findings)
	}
}

// expectation is one want-regex on one line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkExpectations(t *testing.T, p *loader.Package, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, p)

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("%s: unexpected finding [%s]: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func collectWants(t *testing.T, p *loader.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := p.Fset.Position(c.Pos())
				for _, quoted := range wantRE.FindAllString(text, -1) {
					pattern, err := unquote(quoted)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pattern, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(posn.Filename),
						line: posn.Line,
						re:   re,
						raw:  pattern,
					})
				}
			}
		}
	}
	return wants
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// Findings runs the analyzer over a single testdata package and returns
// the surviving findings; for tests that assert on the result set
// directly rather than through want comments.
func Findings(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) []analysis.Finding {
	t.Helper()
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("analysistest: creating loader: %v", err)
	}
	dir := filepath.Join(testdata, "src", pkg)
	p, err := l.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	findings, err := analysis.RunUnit(p.Fset, p.Files, p.Types, p.Info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, pkg, err)
	}
	return findings
}

// Pos formats a finding position compactly for test failure messages.
func Pos(p token.Position) string { return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line) }
