package te

import (
	"fmt"
	"sync/atomic"

	"cisp/internal/lp"
	"cisp/internal/obs"
)

// lpSolves counts simplex invocations process-wide. Fast-reroute promises
// zero LP work on its event path; the counter is what lets tests and the
// availability experiment pin that promise instead of trusting it.
var lpSolves atomic.Int64

// LPSolves returns the cumulative number of simplex solves the package has
// performed in this process. Sample it before and after an operation to
// count the solves the operation triggered.
func LPSolves() int64 { return lpSolves.Load() }

// tieEps weights the delay tie-break in the LP objective. The delay term is
// normalised to at most 1 in total, so the reported MLU sits within tieEps
// of the true optimum while the solver prefers low-latency splits among
// MLU-equal optima (that is what keeps p99 FCT from drifting when parallel
// capacity is plentiful).
const tieEps = 1e-3

// solveLP solves the path-assignment LP for the given commodity subset
// against residual capacities. Writing θ for the max link utilization and
// φ = max(0, θ − u0) for its overload above the uncongested hinge u0
// (Config.UtilFloor), it solves
//
//	minimise   φ + tieEps · Σ (d_c/ΣD) (delay_p/maxDelay) x_{c,p}
//	subject to Σ_p x_{c,p} = 1                            for each commodity
//	           Σ d_c x_{c,p}[e ∈ p] − cap_e φ ≤ cap_e u0 − base_e  per edge
//	           φ ≥ floor − u0
//	           x, φ ≥ 0
//
// so congested instances get the classic min-MLU splits while links under
// u0 exert no spreading pressure — there the delay term keeps traffic on
// the lowest-latency candidates. base carries the pinned load of
// commodities outside the subset and floor the utilization those pinned
// loads already force somewhere in the network (headroom the subset may use
// for free). Returns per-commodity path fractions and the solved θ.
// Infeasibility or unboundedness indicate a formulation bug and fail
// loudly; they never return garbage splits.
func solveLP(g *graph, cs []*teComm, base []float64, floor, u0 float64) ([][]float64, float64, error) {
	lpSolves.Add(1)
	obs.Active().Counter("cisp_te_lp_solves_total").Inc()
	nx := 0
	varAt := make([]int, len(cs)+1)
	totD, maxDelay := 0.0, 0.0
	for i, c := range cs {
		varAt[i] = nx
		nx += len(c.cands)
		totD += c.demand
		for _, p := range c.cands {
			if p.Delay > maxDelay {
				maxDelay = p.Delay
			}
		}
	}
	varAt[len(cs)] = nx
	phi := nx
	p := &lp.Problem{NumVars: nx + 1, Objective: make([]float64, nx+1)}
	p.Objective[phi] = 1
	if totD > 0 && maxDelay > 0 {
		for i, c := range cs {
			for pi, cand := range c.cands {
				p.Objective[varAt[i]+pi] = tieEps * (c.demand / totD) * (cand.Delay / maxDelay)
			}
		}
	}

	// Per-commodity conservation.
	for i, c := range cs {
		vars := make([]int, len(c.cands))
		ones := make([]float64, len(c.cands))
		for pi := range c.cands {
			vars[pi] = varAt[i] + pi
			ones[pi] = 1
		}
		p.AddConstraint(vars, ones, lp.EQ, 1)
	}

	// Per-edge capacity, only for edges some candidate touches.
	type row struct {
		vars   []int
		coeffs []float64
	}
	rows := map[int32]*row{}
	var used []int32
	for i, c := range cs {
		for pi, cand := range c.cands {
			for _, ei := range cand.edges {
				r := rows[ei]
				if r == nil {
					r = &row{}
					rows[ei] = r
					used = append(used, ei)
				}
				r.vars = append(r.vars, varAt[i]+pi)
				r.coeffs = append(r.coeffs, c.demand)
			}
		}
	}
	for _, ei := range used {
		// Normalize each row to utilization units (divide by the edge
		// capacity): demands and capacities arrive in bps at 1e6–1e9
		// magnitudes, and the dense simplex's absolute pivot tolerances
		// degrade badly at that scale — warm reoptimization over a
		// part-failed topology was reported infeasible before this. Every
		// used edge has positive capacity (candidates crossing a downed
		// link are masked before the LP is built).
		r := rows[ei]
		cap := g.edges[ei].capBps
		for k := range r.coeffs {
			r.coeffs[k] /= cap
		}
		r.vars = append(r.vars, phi)
		r.coeffs = append(r.coeffs, -1)
		p.AddConstraint(r.vars, r.coeffs, lp.LE, u0-base[ei]/cap)
	}
	if floor > u0 {
		p.AddConstraint([]int{phi}, []float64{1}, lp.GE, floor-u0)
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, 0, fmt.Errorf("te: simplex failed on %d commodities × %d paths: %w", len(cs), nx, err)
	}
	if sol.Status != lp.Optimal {
		// With Σx=1 always satisfiable and θ free to grow, neither status
		// can arise from a well-formed instance.
		return nil, 0, fmt.Errorf("te: LP reported %v on %d commodities (formulation bug)", sol.Status, len(cs))
	}
	fracs := make([][]float64, len(cs))
	for i := range cs {
		f := make([]float64, varAt[i+1]-varAt[i])
		sum := 0.0
		for pi := range f {
			v := sol.X[varAt[i]+pi]
			if v < 0 {
				v = 0
			}
			f[pi] = v
			sum += v
		}
		if sum <= 0 {
			return nil, 0, fmt.Errorf("te: LP returned a zero split for commodity %d (formulation bug)", cs[i].flow)
		}
		for pi := range f {
			f[pi] /= sum
		}
		fracs[i] = f
	}
	return fracs, u0 + sol.X[phi], nil
}
