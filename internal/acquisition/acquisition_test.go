package acquisition

import (
	"math"
	"sync"
	"testing"

	"cisp/internal/geo"
	"cisp/internal/los"
	"cisp/internal/terrain"
	"cisp/internal/towers"
)

var fixture struct {
	sync.Once
	reg *towers.Registry
	ev  *los.Evaluator
	a   geo.Point
	b   geo.Point
}

// setup builds a dense synthetic corridor between two nearby sites on flat
// terrain so paths are plentiful.
func setup(t testing.TB) (*towers.Registry, *los.Evaluator, geo.Point, geo.Point) {
	t.Helper()
	fixture.Do(func() {
		a := geo.Point{Lat: 40.0, Lon: -100.0}
		b := geo.Point{Lat: 40.0, Lon: -97.0} // ~256 km apart
		var ts []towers.Tower
		// A ladder of towers every ~20 km along the corridor, two rows.
		for i := 0; i <= 13; i++ {
			p := a.Intermediate(b, float64(i)/13)
			ts = append(ts,
				towers.Tower{Loc: p.Destination(0, 3e3), Height: 200, Rental: true},
				towers.Tower{Loc: p.Destination(180, 6e3), Height: 180, Rental: false},
			)
		}
		fixture.reg = towers.NewRegistry(ts)
		fixture.ev = los.NewEvaluator(terrain.Flat(), los.DefaultParams())
		fixture.a, fixture.b = a, b
	})
	return fixture.reg, fixture.ev, fixture.a, fixture.b
}

func TestRefineFindsPaths(t *testing.T) {
	reg, ev, a, b := setup(t)
	res := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 100, Seed: 1})
	if res.Samples != 100 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.FeasibleRate() < 0.3 {
		t.Fatalf("feasible rate %.2f too low on a dense flat corridor", res.FeasibleRate())
	}
	geod := a.DistanceTo(b)
	if res.BestLength < geod {
		t.Fatalf("best length %.0f below geodesic %.0f", res.BestLength, geod)
	}
	if res.BestLength > geod*1.3 {
		t.Fatalf("best length %.0f too circuitous (geodesic %.0f)", res.BestLength, geod)
	}
	if res.WorstLength < res.BestLength {
		t.Fatal("worst < best")
	}
	if m := res.MedianLength(); m < res.BestLength || m > res.WorstLength {
		t.Fatalf("median %v outside [best, worst]", m)
	}
}

func TestRefineDeterministic(t *testing.T) {
	reg, ev, a, b := setup(t)
	r1 := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 50, Seed: 9})
	r2 := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 50, Seed: 9})
	if r1.Feasible != r2.Feasible || r1.BestLength != r2.BestLength {
		t.Fatal("refinement not deterministic")
	}
}

func TestConfirmationsRaiseFeasibility(t *testing.T) {
	reg, ev, a, b := setup(t)
	base := Refine(reg, ev, Model{OtherProb: 0.4, RentalProb: 0.5}, Request{A: a, B: b, Samples: 150, Seed: 2})
	// Confirm every tower as acquired: feasibility can only improve.
	confirmed := map[int]Status{}
	for _, tw := range reg.Towers() {
		confirmed[tw.ID] = Acquired
	}
	all := Refine(reg, ev, Model{OtherProb: 0.4, RentalProb: 0.5}, Request{A: a, B: b, Samples: 150, Seed: 2, Confirmed: confirmed})
	if all.FeasibleRate() < base.FeasibleRate() {
		t.Fatalf("confirming all towers reduced feasibility: %.2f -> %.2f",
			base.FeasibleRate(), all.FeasibleRate())
	}
	if all.FeasibleRate() < 0.95 {
		t.Fatalf("with all towers acquired, feasibility = %.2f, want ~1", all.FeasibleRate())
	}
}

func TestRefusalsKillRoutes(t *testing.T) {
	reg, ev, a, b := setup(t)
	confirmed := map[int]Status{}
	for _, tw := range reg.Towers() {
		confirmed[tw.ID] = Refused
	}
	res := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 40, Seed: 3, Confirmed: confirmed})
	if res.Feasible != 0 {
		t.Fatalf("all towers refused but %d samples feasible", res.Feasible)
	}
	if !math.IsNaN(float64(res.MedianLength())) {
		t.Fatal("median of empty distribution should be NaN")
	}
}

func TestTowerUseRates(t *testing.T) {
	reg, ev, a, b := setup(t)
	res := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 120, Seed: 4})
	if len(res.TowerUseRate) == 0 {
		t.Fatal("no tower use rates recorded")
	}
	for id, rate := range res.TowerUseRate {
		if rate <= 0 || rate > 1+1e-9 {
			t.Fatalf("tower %d use rate %v outside (0,1]", id, rate)
		}
	}
}

func TestPriorityTowers(t *testing.T) {
	reg, ev, a, b := setup(t)
	res := Refine(reg, ev, Model{}, Request{A: a, B: b, Samples: 120, Seed: 5})
	pri := PriorityTowers(res, map[int]Status{}, 3)
	if len(pri) == 0 {
		t.Fatal("no priority towers")
	}
	if len(pri) > 3 {
		t.Fatalf("asked for 3, got %d", len(pri))
	}
	// Rates must be non-increasing.
	for i := 1; i < len(pri); i++ {
		if res.TowerUseRate[pri[i]] > res.TowerUseRate[pri[i-1]]+1e-12 {
			t.Fatal("priority towers not sorted by use rate")
		}
	}
	// Confirmed towers must be excluded.
	conf := map[int]Status{pri[0]: Acquired}
	pri2 := PriorityTowers(res, conf, 3)
	for _, id := range pri2 {
		if id == pri[0] {
			t.Fatal("confirmed tower still in priority list")
		}
	}
}

func TestProgressiveRefinementLoop(t *testing.T) {
	// The paper's workflow: refine, confirm the highest-value towers,
	// repeat. Feasibility should not degrade as confirmations accumulate
	// positively.
	reg, ev, a, b := setup(t)
	model := Model{OtherProb: 0.5, RentalProb: 0.7}
	confirmed := map[int]Status{}
	prevRate := -1.0
	for round := 0; round < 3; round++ {
		res := Refine(reg, ev, model, Request{A: a, B: b, Samples: 150, Seed: 6, Confirmed: confirmed})
		rate := res.FeasibleRate()
		if prevRate >= 0 && rate < prevRate-0.1 {
			t.Fatalf("round %d: feasibility regressed %.2f -> %.2f", round, prevRate, rate)
		}
		prevRate = rate
		for _, id := range PriorityTowers(res, confirmed, 4) {
			confirmed[id] = Acquired
		}
	}
	if prevRate < 0.5 {
		t.Fatalf("after confirmations, feasibility only %.2f", prevRate)
	}
}

func TestEmptyCorridor(t *testing.T) {
	reg := towers.NewRegistry(nil)
	ev := los.NewEvaluator(terrain.Flat(), los.DefaultParams())
	res := Refine(reg, ev, Model{}, Request{
		A: geo.Point{Lat: 40, Lon: -100}, B: geo.Point{Lat: 40, Lon: -99},
		Samples: 10, Seed: 1,
	})
	if res.Feasible != 0 {
		t.Fatal("paths found with no towers")
	}
}

func BenchmarkRefine100Samples(b *testing.B) {
	reg, ev, a, bb := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(reg, ev, Model{}, Request{A: a, B: bb, Samples: 100, Seed: int64(i)})
	}
}
