// usbackbone reproduces the paper's flagship result (Fig 3): a microwave +
// fiber hybrid across US population centers achieving near speed-of-light
// mean latency, provisioned for bulk throughput and priced per gigabyte.
// It also sweeps the budget to show the stretch/cost trade-off (Fig 4a).
package main

import (
	"fmt"
	"log"

	"cisp"
)

func main() {
	scenario := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US,
		Scale:  cisp.ScaleSmall, // switch to ScaleFull for the 120-center run
		Seed:   1,
	})
	tm := scenario.PopulationTraffic()
	fmt.Printf("US scenario: %d population centers, %d towers\n",
		len(scenario.Cities), scenario.Registry.Len())

	// Budget sweep (Fig 4a): more towers, less stretch.
	fmt.Println("\nbudget sweep (stretch vs towers):")
	for _, budget := range []float64{100, 250, 500, 1000} {
		top, err := scenario.DesignGreedy(tm, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.0f towers -> stretch %.4f (%d links)\n",
			budget, top.MeanStretch(), len(top.Built))
	}

	// The flagship design at the paper's per-city budget.
	top, err := scenario.DesignCISP(tm, scenario.DefaultBudget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflagship design: stretch %.4f with %.0f towers\n",
		top.MeanStretch(), top.CostUsed())

	// Provision across aggregate throughputs (Fig 4c): cost falls per GB.
	fmt.Println("\ncost per GB vs aggregate throughput:")
	for _, agg := range []float64{10, 25, 50, 100} {
		plan := scenario.Provision(top, cisp.ScaleTraffic(tm, agg))
		fmt.Printf("  %5.0f Gbps -> $%.2f/GB (%d new towers)\n",
			agg, scenario.CostPerGB(plan, agg), plan.NewTowers)
	}
}
