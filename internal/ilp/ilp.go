// Package ilp solves small mixed binary integer programs by LP-relaxation
// branch & bound over the in-repo simplex (package lp). Together they stand
// in for Gurobi in the paper's Step-2 topology design: exact on the same
// formulation, with the expected exponential scaling that Fig 2a documents.
package ilp

import (
	"errors"
	"math"
	"time"

	"cisp/internal/lp"
)

// Problem is a minimisation LP plus a set of binary variables (restricted to
// {0,1}; the solver adds the x ≤ 1 bound internally).
type Problem struct {
	LP     lp.Problem
	Binary []int // indices of binary variables
}

// Options bounds the search.
type Options struct {
	MaxNodes int           // 0 = default 200k
	Timeout  time.Duration // 0 = none
}

// Status of an ILP solve.
type Status int

// ILP solve outcomes.
const (
	Optimal    Status = iota // proved optimal
	Feasible                 // stopped early with an incumbent (node/time budget)
	Infeasible               // no integer-feasible point
	Unbounded
)

// Solution is a solved ILP.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int // branch-and-bound nodes explored
}

// ErrNoProgress indicates the underlying LP solver failed.
var ErrNoProgress = errors.New("ilp: LP solver failure")

const intTol = 1e-6

// Solve runs best-first branch & bound. Binary variables are branched by
// fixing them to 0 or 1 via equality constraints.
func Solve(p *Problem, opt Options) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}
	deadline := time.Time{}
	if opt.Timeout > 0 {
		// A wall-clock budget makes the incumbent returned at timeout
		// machine-dependent; callers wanting bit-identical results must
		// bound by MaxNodes instead (the default) and leave Timeout zero.
		deadline = time.Now().Add(opt.Timeout) //lint:allow determinism -- opt-in solver budget; deterministic runs use MaxNodes
	}

	// Base problem with 0 ≤ x_b ≤ 1 bounds for binaries.
	base := p.LP
	base.Cons = append([]lp.Constraint(nil), p.LP.Cons...)
	for _, b := range p.Binary {
		base.AddConstraint([]int{b}, []float64{1}, lp.LE, 1)
	}

	type node struct {
		fixed map[int]float64
		bound float64 // parent LP objective (lower bound)
	}
	// DFS stack; best-bound ordering would need a heap — DFS finds
	// incumbents fast, which matters more with good pruning.
	stack := []node{{fixed: map[int]float64{}, bound: math.Inf(-1)}}

	var best *Solution
	bestObj := math.Inf(1)
	nodes := 0
	sawFeasibleLP := false

	for len(stack) > 0 {
		if nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) { //lint:allow determinism -- opt-in solver budget; deterministic runs use MaxNodes
			if best != nil {
				best.Status = Feasible
				best.Nodes = nodes
				return best, nil
			}
			return &Solution{Status: Infeasible, Nodes: nodes}, nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.bound >= bestObj-1e-9 {
			continue // cannot improve
		}
		nodes++

		// Solve the node LP with fixings.
		sub := base
		sub.Cons = append([]lp.Constraint(nil), base.Cons...)
		for v, val := range nd.fixed {
			sub.AddConstraint([]int{v}, []float64{1}, lp.EQ, val)
		}
		sol, err := lp.Solve(&sub)
		if err != nil {
			return nil, errors.Join(ErrNoProgress, err)
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// With all binaries bounded this means the continuous part is
			// unbounded; propagate.
			return &Solution{Status: Unbounded, Nodes: nodes}, nil
		}
		sawFeasibleLP = true
		if sol.Objective >= bestObj-1e-9 {
			continue
		}

		// Most-fractional branching.
		branch := -1
		worst := intTol
		for _, b := range p.Binary {
			f := sol.X[b] - math.Floor(sol.X[b])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branch = b
			}
		}
		if branch < 0 {
			// Integer feasible: new incumbent.
			x := make([]float64, len(sol.X))
			copy(x, sol.X)
			for _, b := range p.Binary {
				x[b] = math.Round(x[b])
			}
			best = &Solution{Status: Optimal, X: x, Objective: sol.Objective}
			bestObj = sol.Objective
			continue
		}
		// Children: try the rounding-friendly side last so DFS pops it first.
		near := math.Round(sol.X[branch])
		far := 1 - near
		childFixed := func(v float64) map[int]float64 {
			m := make(map[int]float64, len(nd.fixed)+1)
			for k, val := range nd.fixed {
				m[k] = val
			}
			m[branch] = v
			return m
		}
		stack = append(stack, node{fixed: childFixed(far), bound: sol.Objective})
		stack = append(stack, node{fixed: childFixed(near), bound: sol.Objective})
	}

	if best != nil {
		best.Nodes = nodes
		return best, nil
	}
	if !sawFeasibleLP {
		return &Solution{Status: Infeasible, Nodes: nodes}, nil
	}
	return &Solution{Status: Infeasible, Nodes: nodes}, nil
}
