// Package terrain provides a deterministic synthetic elevation and ground
// clutter model standing in for the NASA SRTM + NED dataset the paper uses
// for line-of-sight assessment (§3.1, §4).
//
// The model is the sum of three parts:
//
//   - a smooth regional base surface (e.g. the US high plains rising west
//     toward the Rockies),
//   - parameterised mountain ranges, each a polyline crest with a Gaussian
//     cross-section (Rockies, Sierra Nevada, Cascades, Appalachians; the
//     Alps, Pyrenees, Carpathians, Apennines for Europe), and
//   - multi-octave value noise for local relief, seeded and fully
//     deterministic.
//
// Ground clutter (tree canopy, buildings) is modelled as a separate
// low-amplitude noise field, because the paper's dataset "includes buildings
// and ground clutter, and effectively incorporates the height of the tree
// canopy". Line-of-sight code should test clearance against SurfaceHeight,
// which includes clutter, exactly as the paper tests against its combined
// dataset.
//
// The substitution preserves what matters to the cISP design study: hop
// feasibility degrades in mountainous regions, so tower paths detour there
// (e.g. the Illinois-California link of Fig 4b crosses the Rockies), while
// the plains and the eastern seaboard are easy.
package terrain

import (
	"math"

	"cisp/internal/geo"
)

// Sample is one point of a terrain profile between two endpoints.
type Sample struct {
	Dist    float64 // meters from the start of the profile
	Ground  float64 // bare-earth elevation, meters above sea level
	Clutter float64 // additional clutter height (trees, buildings), meters
}

// Surface returns the obstruction height at the sample: ground plus clutter.
func (s Sample) Surface() float64 { return s.Ground + s.Clutter }

// Ridge is a mountain range: a crest polyline with a Gaussian cross-section.
type Ridge struct {
	Crest  []geo.Point // waypoints along the range's spine
	Height float64     // peak height above the base surface, meters
	Width  float64     // Gaussian sigma of the cross-section, meters
}

// Model is a deterministic synthetic terrain. The zero value is a flat,
// clutter-free plain at sea level, ready to use in tests.
type Model struct {
	seed        int64
	ridges      []Ridge
	base        func(geo.Point) float64
	noiseAmp    float64 // amplitude of the relief noise, meters
	noiseScale  float64 // degrees per noise cell at the first octave
	clutterAmp  float64 // max clutter height, meters
	clutterFrac float64 // fraction of terrain carrying significant clutter
}

// Flat returns a featureless sea-level terrain with no clutter. Useful in
// tests and as a best-case bound for hop feasibility.
func Flat() *Model { return &Model{} }

// New constructs a synthetic terrain with the given ranges and noise
// parameters. base may be nil for a sea-level base surface.
func New(seed int64, ridges []Ridge, base func(geo.Point) float64, noiseAmp, noiseScale, clutterAmp float64) *Model {
	return &Model{
		seed:        seed,
		ridges:      ridges,
		base:        base,
		noiseAmp:    noiseAmp,
		noiseScale:  noiseScale,
		clutterAmp:  clutterAmp,
		clutterFrac: 0.6,
	}
}

// Elevation returns the bare-earth elevation in meters at p.
func (m *Model) Elevation(p geo.Point) float64 {
	e := 0.0
	if m.base != nil {
		e = m.base(p)
	}
	for i := range m.ridges {
		e += m.ridges[i].contribution(p)
	}
	if m.noiseAmp > 0 {
		e += m.noiseAmp * m.fractalNoise(p, 0)
	}
	if e < 0 {
		e = 0
	}
	return e
}

// ClutterHeight returns the obstruction height above ground (tree canopy,
// buildings) at p.
func (m *Model) ClutterHeight(p geo.Point) float64 {
	if m.clutterAmp == 0 {
		return 0
	}
	n := m.fractalNoise(p, 1) // in [-1, 1]
	v := (n + 1) / 2          // [0, 1]
	if v < 1-m.clutterFrac {  // bare patches
		return 0
	}
	return m.clutterAmp * (v - (1 - m.clutterFrac)) / m.clutterFrac
}

// SurfaceHeight returns ground elevation plus clutter at p — the height a
// microwave sight-line must clear.
func (m *Model) SurfaceHeight(p geo.Point) float64 {
	return m.Elevation(p) + m.ClutterHeight(p)
}

// Profile samples the surface along the great circle from a to b every step
// meters (clamped to at least 2 samples, endpoints included).
func (m *Model) Profile(a, b geo.Point, step float64) []Sample {
	total := float64(a.DistanceTo(b))
	n := int(total/step) + 1
	if n < 2 {
		n = 2
	}
	out := make([]Sample, n+1)
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		p := a.Intermediate(b, f)
		out[i] = Sample{
			Dist:    f * total,
			Ground:  m.Elevation(p),
			Clutter: m.ClutterHeight(p),
		}
	}
	return out
}

// contribution evaluates the ridge's Gaussian cross-section at p using the
// distance to the nearest crest segment.
func (r *Ridge) contribution(p geo.Point) float64 {
	if len(r.Crest) == 0 || r.Width <= 0 {
		return 0
	}
	d := distToPolyline(p, r.Crest)
	x := d / r.Width
	if x > 4 { // beyond 4 sigma the range is negligible
		return 0
	}
	return r.Height * math.Exp(-0.5*x*x)
}

// distToPolyline approximates the distance in meters from p to the polyline,
// using a local equirectangular projection per segment (adequate at mountain-
// range scale).
func distToPolyline(p geo.Point, line []geo.Point) float64 {
	if len(line) == 1 {
		return float64(p.DistanceTo(line[0]))
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(line); i++ {
		if d := distToSegment(p, line[i], line[i+1]); d < best {
			best = d
		}
	}
	return best
}

func distToSegment(p, a, b geo.Point) float64 {
	// Project into a local plane centred at a; meters per degree.
	const mPerDegLat = 111194.9
	cosLat := math.Cos(a.Lat * math.Pi / 180)
	ax, ay := 0.0, 0.0
	bx := (b.Lon - a.Lon) * mPerDegLat * cosLat
	by := (b.Lat - a.Lat) * mPerDegLat
	px := (p.Lon - a.Lon) * mPerDegLat * cosLat
	py := (p.Lat - a.Lat) * mPerDegLat
	dx, dy := bx-ax, by-ay
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((px-ax)*dx + (py-ay)*dy) / l2
		t = math.Max(0, math.Min(1, t))
	}
	cx, cy := ax+t*dx, ay+t*dy
	return math.Hypot(px-cx, py-cy)
}

// fractalNoise returns deterministic multi-octave value noise in [-1, 1] for
// the given channel (0 = relief, 1 = clutter).
func (m *Model) fractalNoise(p geo.Point, channel int64) float64 {
	scale := m.noiseScale
	if scale <= 0 {
		scale = 0.5
	}
	sum, amp, norm := 0.0, 1.0, 0.0
	x, y := p.Lon/scale, p.Lat/scale
	for oct := int64(0); oct < 4; oct++ {
		sum += amp * valueNoise(x, y, m.seed*1000003+channel*7919+oct)
		norm += amp
		amp *= 0.5
		x *= 2.03
		y *= 2.03
	}
	return sum / norm
}

// valueNoise is lattice value noise with smoothstep interpolation, in [-1,1].
func valueNoise(x, y float64, seed int64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := x-x0, y-y0
	ix, iy := int64(x0), int64(y0)
	v00 := latticeValue(ix, iy, seed)
	v10 := latticeValue(ix+1, iy, seed)
	v01 := latticeValue(ix, iy+1, seed)
	v11 := latticeValue(ix+1, iy+1, seed)
	sx, sy := smoothstep(fx), smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// latticeValue hashes an integer lattice point to a deterministic value in
// [-1, 1] (splitmix64 finaliser).
func latticeValue(x, y, seed int64) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53)*2 - 1
}
