package ctlplane

import (
	"math"
	"reflect"
	"testing"

	"cisp/internal/cities"
	"cisp/internal/geo"
)

func fourSites() []cities.City {
	return []cities.City{
		{Name: "A", Loc: geo.Point{Lat: 40, Lon: -75}, Population: 8_000_000},
		{Name: "B", Loc: geo.Point{Lat: 41, Lon: -85}, Population: 4_000_000},
		{Name: "C", Loc: geo.Point{Lat: 39, Lon: -95}, Population: 2_000_000},
		{Name: "DC", Loc: geo.Point{Lat: 38, Lon: -90}, Population: 0},
	}
}

func TestSyntheticBackboneShape(t *testing.T) {
	b := SyntheticBackbone(fourSites(), 2, 10, 40)
	if err := b.validate(); err != nil {
		t.Fatalf("synthetic backbone invalid: %v", err)
	}
	if len(b.Mw) == 0 || len(b.Fiber) != 2*len(b.Mw) {
		t.Fatalf("got %d microwave and %d fiber links, want fiber = 2×mw conduit halves", len(b.Mw), len(b.Fiber))
	}
	if want := len(b.Sites) + len(b.Mw); b.Nodes != want {
		t.Fatalf("Nodes = %d, want %d (sites + one transit node per conduit)", b.Nodes, want)
	}
	hybrid := b.Hybrid()
	if len(hybrid) != len(b.Mw)+len(b.Fiber) {
		t.Fatalf("Hybrid length %d, want %d", len(hybrid), len(b.Mw)+len(b.Fiber))
	}
	for i, l := range hybrid[:len(b.Mw)] {
		if l != b.Mw[i] {
			t.Fatalf("hybrid[%d] != Mw[%d]: microwave prefix ordering broken", i, i)
		}
	}
	// Fiber conduits must run ~1.5× the microwave propagation delay.
	for i, mw := range b.Mw {
		fiber := float64(b.Fiber[2*i].PropDelay + b.Fiber[2*i+1].PropDelay)
		if ratio := fiber / float64(mw.PropDelay); math.Abs(ratio-1.5) > 1e-9 {
			t.Fatalf("conduit %d delay ratio %v, want 1.5", i, ratio)
		}
	}
	// Determinism: same inputs, same backbone.
	if again := SyntheticBackbone(fourSites(), 2, 10, 40); !reflect.DeepEqual(b, again) {
		t.Fatalf("SyntheticBackbone is not deterministic")
	}
}

func TestGravityCommodities(t *testing.T) {
	sites := fourSites()
	comms := GravityCommodities(sites, 20)
	if len(comms) != 3 {
		t.Fatalf("got %d commodities, want 3 (pairs among the populated sites)", len(comms))
	}
	var total float64
	seen := map[int]bool{}
	for _, c := range comms {
		if c.Demand <= 0 {
			t.Fatalf("flow %d has non-positive demand %v", c.Flow, c.Demand)
		}
		if seen[c.Flow] {
			t.Fatalf("duplicate flow ID %d", c.Flow)
		}
		seen[c.Flow] = true
		if sites[c.Src].Population == 0 || sites[c.Dst].Population == 0 {
			t.Fatalf("flow %d touches the zero-population site", c.Flow)
		}
		total += float64(c.Demand)
	}
	if math.Abs(total-20e9) > 1 {
		t.Fatalf("total demand %v bps, want 20 Gbps", total)
	}
	// The largest-population pair must carry the most demand.
	if comms[0].Src != 0 || comms[0].Dst != 1 {
		t.Fatalf("first commodity is %d->%d, want 0->1", comms[0].Src, comms[0].Dst)
	}
	// All-zero populations yield no commodities rather than NaN shares.
	zero := []cities.City{{Name: "X"}, {Name: "Y"}}
	if got := GravityCommodities(zero, 20); got != nil {
		t.Fatalf("zero-population commodity list = %+v, want nil", got)
	}
}
