package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux returns the observability HTTP handler for a sink:
//
//	/metrics       Prometheus text exposition of the sink's registry
//	/metrics.json  the same registry as deterministic JSON
//	/trace         Chrome trace_event JSON of spans recorded so far
//	/healthz       "ok" (liveness)
//	/debug/pprof/  the standard net/http/pprof handlers (profiles run
//	               with goroutine labels from internal/parallel workers)
//
// All handlers are safe while the instrumented run is still executing;
// /trace of an in-flight run is a valid partial trace.
func NewMux(s *Sink) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var reg *Registry
		if s != nil {
			reg = s.Reg
		}
		WriteProm(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var reg *Registry
		if s != nil {
			reg = s.Reg
		}
		WriteJSON(w, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s == nil || s.Tr == nil {
			io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\n]}\n")
			return
		}
		WriteTrace(w, s.Tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090"; ":0"
// picks a free port) in a background goroutine and returns immediately.
func Serve(addr string, s *Sink) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(s)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
