package experiments

import (
	"cisp"
	"cisp/internal/los"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// Fig8Result summarises the European design (Fig 8: 1.04× stretch, ~3k
// towers, cost similar to the US network).
type Fig8Result struct {
	Cities       int
	MeanStretch  float64
	FiberStretch float64
	TowersUsed   float64
	CostPerGB    float64
}

// Fig8Europe designs a European cISP with the same methodology and compares
// its headline numbers against the US design.
func Fig8Europe(opt Options) *Fig8Result {
	w := opt.out()
	s := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.Europe, Scale: opt.Scale, Seed: opt.Seed, MaxCities: opt.MaxCities,
	})
	tm := s.PopulationTraffic()
	top, err := s.DesignCISP(tm, s.DefaultBudget())
	if err != nil {
		fprintf(w, "fig8: %v\n", err)
		return nil
	}
	agg := opt.aggregateGbps()
	plan := s.Provision(top, scaleTo(tm, agg))
	res := &Fig8Result{
		Cities:       len(s.Cities),
		MeanStretch:  top.MeanStretch(),
		FiberStretch: top.MeanFiberStretch(),
		TowersUsed:   top.CostUsed(),
		CostPerGB:    s.CostPerGB(plan, agg),
	}
	fprintf(w, "Fig 8 — Europe cISP (paper: 1.04x stretch, ~3k towers)\n")
	fprintf(w, "  %d cities, %.0f towers, stretch %.3f (fiber %.3f), $%.2f/GB at %.0f Gbps\n",
		res.Cities, res.TowersUsed, res.MeanStretch, res.FiberStretch, res.CostPerGB, agg)
	return res
}

// Fig9Row is one traffic-model cost curve.
type Fig9Row struct {
	Model  string
	Points []Fig4cPoint
}

// Fig9TrafficModels reproduces Fig 9: cost per GB across aggregate
// throughput for the City-City, DC-DC and City-DC traffic models. The
// city-city model needs the widest footprint and is the most expensive.
func Fig9TrafficModels(opt Options, aggregates []float64) []Fig9Row {
	w := opt.out()
	// A combined site list: cities plus the six Google DC locations.
	base := cisp.NewScenario(cisp.ScenarioConfig{Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, MaxCities: opt.MaxCities})
	sites := append([]cisp.City(nil), base.Cities...)
	dcStart := len(sites)
	sites = append(sites, dcSites()...)
	s := cisp.NewScenario(cisp.ScenarioConfig{
		Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, Sites: sites,
	})

	cityIdx := make([]int, dcStart)
	for i := range cityIdx {
		cityIdx[i] = i
	}
	dcIdx := make([]int, len(sites)-dcStart)
	for i := range dcIdx {
		dcIdx[i] = dcStart + i
	}

	models := []struct {
		name string
		tm   traffic.Matrix
	}{
		{"City-City", traffic.PopulationProduct(sites)},
		{"DC-DC", traffic.UniformPairs(len(sites), dcIdx)},
		{"City-DC", traffic.CityToDC(sites, cityIdx, dcIdx)},
	}

	fprintf(w, "Fig 9 — cost per GB by traffic model\n")
	var rows []Fig9Row
	for _, m := range models {
		top, err := s.DesignGreedy(m.tm, s.DefaultBudget())
		if err != nil {
			fprintf(w, "fig9 %s: %v\n", m.name, err)
			continue
		}
		row := Fig9Row{Model: m.name}
		for _, agg := range aggregates {
			plan := s.Provision(top, scaleTo(m.tm, agg))
			row.Points = append(row.Points, Fig4cPoint{
				AggregateGbps: agg,
				CostPerGB:     s.CostPerGB(plan, agg),
			})
		}
		rows = append(rows, row)
		fprintf(w, "  %-10s:", m.name)
		for _, pt := range row.Points {
			fprintf(w, " %6.0fGbps=$%.3f", pt.AggregateGbps, pt.CostPerGB)
		}
		fprintf(w, "\n")
	}
	return rows
}

func dcSites() []cisp.City {
	return cisp.GoogleDCSites()
}

// Fig10Row is one tower-constraint combination.
type Fig10Row struct {
	RangeKm      float64
	UsableHeight float64
	CostIncrPct  float64
	StretchIncr  float64 // percent
	MWShare      float64 // fraction of demand carried over microwave
}

// Fig10TowerConstraints reproduces Fig 10: cost and stretch increase as the
// maximum hop range shrinks and the usable antenna height on towers is
// restricted (paper: at worst +11% cost and +10% stretch).
func Fig10TowerConstraints(opt Options, combos [][2]float64) []Fig10Row {
	w := opt.out()
	fprintf(w, "Fig 10 — tower height & range constraints (increase vs 100km/1.0 baseline)\n")
	fprintf(w, "%10s %8s %10s %12s %10s\n", "range(km)", "height", "cost+%", "stretch+%", "MW share")

	// Cost is charged per microwave-served gigabyte: when constraints push
	// demand onto fiber, the microwave network serves fewer bytes for its
	// towers — exactly the "more expensive" effect the paper measures.
	eval := func(rangeKm, height float64) (costPerGB, stretch, mwShare float64, ok bool) {
		p := los.DefaultParams()
		p.MaxRange = units.Km(rangeKm).Meters()
		p.UsableHeightFrac = height
		s := cisp.NewScenario(cisp.ScenarioConfig{
			Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, LOS: p, MaxCities: opt.MaxCities,
		})
		tm := s.PopulationTraffic()
		top, err := s.DesignGreedy(tm, s.DefaultBudget())
		if err != nil {
			return 0, 0, 0, false
		}
		agg := opt.aggregateGbps()
		plan := s.Provision(top, scaleTo(tm, agg))
		served := agg - plan.FiberFallback.Gbps()
		if served <= 0 {
			return 0, top.MeanStretch(), 0, false
		}
		return s.CostPerGB(plan, served), top.MeanStretch(), served / agg, true
	}

	baseCost, baseStretch, _, ok := eval(100, 1.0)
	if !ok {
		fprintf(w, "fig10: baseline failed\n")
		return nil
	}
	var rows []Fig10Row
	for _, c := range combos {
		cost, stretch, share, ok := eval(c[0], c[1])
		if !ok {
			continue
		}
		row := Fig10Row{
			RangeKm:      c[0],
			UsableHeight: c[1],
			CostIncrPct:  (cost/baseCost - 1) * 100,
			StretchIncr:  (stretch/baseStretch - 1) * 100,
			MWShare:      share,
		}
		rows = append(rows, row)
		fprintf(w, "%10.0f %8.2f %10.1f %12.1f %9.0f%%\n",
			row.RangeKm, row.UsableHeight, row.CostIncrPct, row.StretchIncr, row.MWShare*100)
	}
	return rows
}
