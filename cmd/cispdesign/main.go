// Command cispdesign designs a cISP topology and prints it, optionally as
// GeoJSON for mapping (the paper's Fig 3 / Fig 8 views).
//
// Usage:
//
//	cispdesign [-region us|europe] [-scale small|medium|full] [-seed N]
//	           [-budget towers] [-aggregate gbps] [-geojson] [-workers N]
//
// -workers bounds the worker pool the link-build and design hot paths fan
// out on (0 = GOMAXPROCS); the designed topology is identical at every
// width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cisp"
	"cisp/internal/parallel"
)

func main() {
	region := flag.String("region", "us", "us or europe")
	scale := flag.String("scale", "small", "small, medium or full")
	seed := flag.Int64("seed", 1, "scenario seed")
	budget := flag.Float64("budget", 0, "tower budget (0 = 25 per city, as in the paper)")
	aggregate := flag.Float64("aggregate", 0, "aggregate Gbps to provision (0 = scale default)")
	geojson := flag.Bool("geojson", false, "emit the topology as GeoJSON on stdout")
	workers := flag.Int("workers", 0, "worker-pool width for the design/link-build hot paths (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	cfg := cisp.ScenarioConfig{Seed: *seed}
	switch strings.ToLower(*region) {
	case "europe":
		cfg.Region = cisp.Europe
	default:
		cfg.Region = cisp.US
	}
	switch strings.ToLower(*scale) {
	case "medium":
		cfg.Scale = cisp.ScaleMedium
	case "full":
		cfg.Scale = cisp.ScaleFull
	default:
		cfg.Scale = cisp.ScaleSmall
	}

	fmt.Fprintf(os.Stderr, "building scenario (%s, %s, seed %d)...\n", *region, *scale, *seed)
	s := cisp.NewScenario(cfg)
	fmt.Fprintf(os.Stderr, "  %d cities, %d towers, %d feasible hops\n",
		len(s.Cities), s.Registry.Len(), s.Links.FeasibleHops())

	b := *budget
	if b == 0 {
		b = s.DefaultBudget()
	}
	tm := s.PopulationTraffic()
	fmt.Fprintf(os.Stderr, "designing (budget %.0f towers)...\n", b)
	top, err := s.DesignCISP(tm, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	agg := *aggregate
	if agg == 0 {
		switch cfg.Scale {
		case cisp.ScaleFull:
			agg = 100
		case cisp.ScaleMedium:
			agg = 40
		default:
			agg = 10
		}
	}
	demand := cisp.ScaleTraffic(tm, agg)
	plan := s.Provision(top, demand)

	if *geojson {
		emitGeoJSON(s, top)
		return
	}

	fmt.Printf("cISP design: %d cities, budget %.0f towers (used %.0f)\n",
		len(s.Cities), b, top.CostUsed())
	fmt.Printf("mean stretch: %.4f   fiber-only: %.4f\n", top.MeanStretch(), top.MeanFiberStretch())
	fmt.Printf("microwave links built: %d\n", len(top.Built))

	type row struct {
		name string
		st   float64
	}
	var rows []row
	for _, l := range top.Built {
		geod := s.Cities[l.I].Loc.DistanceTo(s.Cities[l.J].Loc)
		rows = append(rows, row{
			name: fmt.Sprintf("%s <-> %s", s.Cities[l.I].Name, s.Cities[l.J].Name),
			st:   l.Dist / float64(geod),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Printf("  %-55s stretch %.3f\n", r.name, r.st)
	}
	fmt.Printf("provisioned for %.0f Gbps: %d hop installs, %d new towers, %d towers used\n",
		agg, plan.HopInstalls, plan.NewTowers, plan.TowersUsed)
	fmt.Printf("cost: $%.2f/GB\n", s.CostPerGB(plan, agg))
}

// emitGeoJSON writes a FeatureCollection: city points plus built links.
func emitGeoJSON(s *cisp.Scenario, top *cisp.Topology) {
	type feature struct {
		Type       string                 `json:"type"`
		Geometry   map[string]interface{} `json:"geometry"`
		Properties map[string]interface{} `json:"properties"`
	}
	var features []feature
	for _, c := range s.Cities {
		features = append(features, feature{
			Type: "Feature",
			Geometry: map[string]interface{}{
				"type":        "Point",
				"coordinates": []float64{c.Loc.Lon, c.Loc.Lat},
			},
			Properties: map[string]interface{}{"name": c.Name, "population": c.Population},
		})
	}
	for _, l := range top.Built {
		a, b := s.Cities[l.I], s.Cities[l.J]
		features = append(features, feature{
			Type: "Feature",
			Geometry: map[string]interface{}{
				"type": "LineString",
				"coordinates": [][]float64{
					{a.Loc.Lon, a.Loc.Lat}, {b.Loc.Lon, b.Loc.Lat},
				},
			},
			Properties: map[string]interface{}{
				"kind": "microwave", "towers": l.Cost, "meters": l.Dist,
			},
		})
	}
	out := map[string]interface{}{"type": "FeatureCollection", "features": features}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
