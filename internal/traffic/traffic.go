// Package traffic builds the demand matrices the paper designs for and
// stresses against: the city-city population-product model (§4), the
// inter-data-center and city-to-data-center models (§6.3), weighted mixes of
// the three (§6.4), and the γ population perturbations of §5.
//
// A Matrix is symmetric with a zero diagonal; units are either the paper's
// relative weights h_st ∈ [0,1] or absolute Gbps after ScaleToAggregate.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cisp/internal/cities"
	"cisp/internal/units"
)

// Matrix is a symmetric demand matrix over a site list.
type Matrix [][]float64

// New returns an n×n zero matrix.
func New(n int) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// N returns the number of sites.
func (m Matrix) N() int { return len(m) }

// Set sets the symmetric demand between i and j.
func (m Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m[i][j], m[j][i] = v, v
}

// Total returns Σ_{s<t} demand.
func (m Matrix) Total() float64 {
	sum := 0.0
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			sum += m[i][j]
		}
	}
	return sum
}

// Clone returns an independent copy.
func (m Matrix) Clone() Matrix {
	c := New(len(m))
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}

// Validate checks symmetry, non-negativity and a zero diagonal.
func (m Matrix) Validate() error {
	for i := range m {
		if len(m[i]) != len(m) {
			return fmt.Errorf("traffic: row %d has %d cols, want %d", i, len(m[i]), len(m))
		}
		if m[i][i] != 0 {
			return fmt.Errorf("traffic: non-zero diagonal at %d", i)
		}
		for j := range m[i] {
			if m[i][j] < 0 || math.IsNaN(m[i][j]) {
				return fmt.Errorf("traffic: invalid demand %v at (%d,%d)", m[i][j], i, j)
			}
			if m[i][j] != m[j][i] {
				return fmt.Errorf("traffic: asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// PopulationProduct returns the paper's §4 model: h_ij proportional to the
// product of site populations, normalised so the largest entry is 1.
func PopulationProduct(cs []cities.City) Matrix {
	n := len(cs)
	m := New(n)
	maxV := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(cs[i].Population) * float64(cs[j].Population)
			m.Set(i, j, v)
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV > 0 {
		for i := range m {
			for j := range m[i] {
				m[i][j] /= maxV
			}
		}
	}
	return m
}

// Gravity generalizes PopulationProduct to arbitrary per-site weights
// (active users, offered bps, revenue): h_ij = w_i · w_j, normalised so the
// largest entry is 1. Sites with zero weight contribute no demand.
func Gravity(weights []float64) Matrix {
	n := len(weights)
	m := New(n)
	maxV := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := weights[i] * weights[j]
			m.Set(i, j, v)
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV > 0 {
		for i := range m {
			for j := range m[i] {
				m[i][j] /= maxV
			}
		}
	}
	return m
}

// WeightedNearest generalizes CityToDC to arbitrary weights and sink sets:
// every site i with weights[i] > 0 sends its full weight to the
// geodesically nearest sink (ties to the lower sink index). Unlike
// CityToDC the weights are NOT normalised — callers pass absolute units
// (bps, users) and get them back — and a site that is itself a sink sends
// nothing (its demand is served locally). This is the CDN/anycast demand
// shape: each user population pulls from its closest replica.
func WeightedNearest(cs []cities.City, weights []float64, sinks []int) Matrix {
	m := New(len(cs))
	isSink := make(map[int]bool, len(sinks))
	for _, s := range sinks {
		isSink[s] = true
	}
	for i := range cs {
		if weights[i] <= 0 || isSink[i] {
			continue
		}
		best, bestD := -1, units.Meters(math.Inf(1))
		for _, s := range sinks {
			d := cs[i].Loc.DistanceTo(cs[s].Loc)
			if d < bestD || (d == bestD && s < best) {
				best, bestD = s, d
			}
		}
		if best >= 0 {
			m.Set(i, best, m[i][best]+weights[i])
		}
	}
	return m
}

// UniformPairs returns equal demand between every pair of the given site
// indices (the paper's inter-DC model: "we provision equal capacity between
// each DC-pair"), zero elsewhere, over n total sites.
func UniformPairs(n int, sites []int) Matrix {
	m := New(n)
	for a := 0; a < len(sites); a++ {
		for b := a + 1; b < len(sites); b++ {
			m.Set(sites[a], sites[b], 1)
		}
	}
	return m
}

// CityToDC returns the paper's DC-edge model: each city sends to its closest
// data center, with demand proportional to the city's population. cityIdx
// and dcIdx index into the combined site list cs.
func CityToDC(cs []cities.City, cityIdx, dcIdx []int) Matrix {
	m := New(len(cs))
	maxPop := 0
	for _, ci := range cityIdx {
		if cs[ci].Population > maxPop {
			maxPop = cs[ci].Population
		}
	}
	if maxPop == 0 {
		return m
	}
	for _, ci := range cityIdx {
		best, bestD := -1, units.Meters(math.Inf(1))
		for _, di := range dcIdx {
			if d := cs[ci].Loc.DistanceTo(cs[di].Loc); d < bestD {
				best, bestD = di, d
			}
		}
		if best >= 0 {
			m.Set(ci, best, float64(cs[ci].Population)/float64(maxPop))
		}
	}
	return m
}

// Mix returns Σ w_k · normalised(m_k): each component is first scaled to
// unit total demand so the weights express the §6.4 traffic proportions
// (e.g. 4:3:3), then combined. Panics on length mismatch.
func Mix(weights []float64, ms ...Matrix) Matrix {
	if len(weights) != len(ms) {
		panic("traffic: Mix weights/matrices length mismatch")
	}
	if len(ms) == 0 {
		return New(0)
	}
	n := ms[0].N()
	out := New(n)
	for k, m := range ms {
		tot := m.Total()
		if tot == 0 {
			continue
		}
		f := weights[k] / tot
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out[i][j] += m[i][j] * f
				out[j][i] = out[i][j]
			}
		}
	}
	return out
}

// ScaleToAggregate scales m so Σ_{s<t} equals the aggregate demand,
// returning a copy. Entries remain in the matrix's Gbps convention —
// only the target total is stated in explicit rate units.
func ScaleToAggregate(m Matrix, aggregate units.BitsPerSecond) Matrix {
	tot := m.Total()
	out := m.Clone()
	if tot == 0 {
		return out
	}
	f := aggregate.Gbps() / tot
	for i := range out {
		for j := range out[i] {
			out[i][j] *= f
		}
	}
	return out
}

// PairFlows is one site pair's share of a concurrent-flow population.
type PairFlows struct {
	I, J  int
	Count int
}

// FlowCounts apportions total concurrent flows across the positive entries
// of m in proportion to demand, using largest-remainder rounding so the
// counts sum exactly to total (when at least one entry is positive). Pairs
// are emitted in (i, j) row-major order with i < j; zero-count pairs are
// dropped. This is how a §6.4 traffic mix becomes the flow population of a
// packet- or fluid-mode replay: each pair's flow count stands in for its
// user population. Deterministic in m and total.
func FlowCounts(m Matrix, total int) []PairFlows {
	tot := m.Total()
	if tot <= 0 || total <= 0 {
		return nil
	}
	type entry struct {
		pf   PairFlows
		frac float64
		ord  int
	}
	var entries []entry
	assigned := 0
	for i := 0; i < len(m); i++ {
		for j := i + 1; j < len(m); j++ {
			if m[i][j] <= 0 {
				continue
			}
			quota := float64(total) * m[i][j] / tot
			whole := int(math.Floor(quota))
			assigned += whole
			entries = append(entries, entry{
				pf:   PairFlows{I: i, J: j, Count: whole},
				frac: quota - float64(whole),
				ord:  len(entries),
			})
		}
	}
	// Hand the remainder to the largest fractional parts (pair order on
	// ties) so Σ counts == total.
	rem := total - assigned
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := &entries[order[a]], &entries[order[b]]
		if ea.frac != eb.frac {
			return ea.frac > eb.frac
		}
		return ea.ord < eb.ord
	})
	for k := 0; k < rem && k < len(order); k++ {
		entries[order[k]].pf.Count++
	}
	var out []PairFlows
	for _, e := range entries {
		if e.pf.Count > 0 {
			out = append(out, e.pf)
		}
	}
	return out
}

// Hotspot returns a copy of m with nPairs of its positive entries scaled by
// factor: a per-pair spike profile modelling localized surges (a flash
// crowd, a failure shifting load) the backbone was not designed for. Spiked
// pairs are drawn uniformly without replacement from the positive entries,
// deterministic in seed; if fewer than nPairs entries are positive, all of
// them spike.
func Hotspot(m Matrix, nPairs int, factor float64, seed int64) Matrix {
	out := m.Clone()
	if nPairs <= 0 || factor == 1 {
		return out
	}
	var pairs [][2]int
	for i := 0; i < len(m); i++ {
		for j := i + 1; j < len(m); j++ {
			if m[i][j] > 0 {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	if nPairs > len(pairs) {
		nPairs = len(pairs)
	}
	for _, p := range pairs[:nPairs] {
		out.Set(p[0], p[1], m[p[0]][p[1]]*factor)
	}
	return out
}

// Diurnal scales m by a sinusoidal day profile: each site carries a phase
// φ_i ∈ [0, 1) (drawn uniformly, deterministic in seed — a stand-in for its
// timezone), and the pair (i, j) is scaled by
//
//	1 + amplitude · (sin 2π(hour/24 − φ_i) + sin 2π(hour/24 − φ_j)) / 2
//
// clamped at zero, so demand between two sites peaks when both are near
// their local busy hour. The 24-hour mean of every entry is the base value,
// which keeps diurnal sweeps comparable to their static matrix.
func Diurnal(m Matrix, hour, amplitude float64, seed int64) Matrix {
	out := m.Clone()
	if amplitude == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	phase := make([]float64, len(m))
	for i := range phase {
		phase[i] = rng.Float64()
	}
	for i := 0; i < len(m); i++ {
		for j := i + 1; j < len(m); j++ {
			si := math.Sin(2 * math.Pi * (hour/24 - phase[i]))
			sj := math.Sin(2 * math.Pi * (hour/24 - phase[j]))
			f := 1 + amplitude*(si+sj)/2
			if f < 0 {
				f = 0
			}
			out.Set(i, j, m[i][j]*f)
		}
	}
	return out
}

// PerturbPopulations applies §5's population perturbation: each city's
// population is re-weighted by an independent factor drawn uniformly from
// [1-γ, 1+γ]. Deterministic in seed.
func PerturbPopulations(cs []cities.City, gamma float64, seed int64) []cities.City {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cities.City, len(cs))
	copy(out, cs)
	for i := range out {
		f := 1 - gamma + 2*gamma*rng.Float64()
		out[i].Population = int(float64(out[i].Population) * f)
		if out[i].Population < 0 {
			out[i].Population = 0
		}
	}
	return out
}
