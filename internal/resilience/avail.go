package resilience

import (
	"math"
	"sort"

	"cisp/internal/netsim"
)

// Stats is the analytic outcome of running a protection mode against a
// failure schedule — computed by walking the schedule's piecewise-constant
// topology states, so year-scale horizons cost milliseconds.
type Stats struct {
	Mode Mode

	// Availability is the demand-weighted fraction of (time × traffic)
	// with a live forwarding path, over all protected commodities and the
	// whole horizon. Detection and reoptimization delays are charged as
	// downtime.
	Availability float64

	// Nines is -log10(1 - Availability), capped at 9 (a schedule with no
	// downtime would otherwise be infinite).
	Nines float64

	// MeanStretch and MaxStretch describe the latency cost of surviving:
	// the demand-weighted mean (and worst) ratio of the in-force path's
	// delay to the commodity's clear-sky shortest delay, over live traffic
	// during periods when any link is down. 1.0 = failures never pushed
	// live traffic off shortest paths; 0 = the schedule has no failures.
	MeanStretch float64
	MaxStretch  float64

	// Reroutes counts the per-commodity routing changes the mode issued.
	Reroutes int
}

// split is a weighted path with its delay resolved once.
type split struct {
	path  []int
	frac  float64
	delay float64
}

func (p *Protection) toSplits(sps []netsim.SplitPath) []split {
	out := make([]split, len(sps))
	for i, sp := range sps {
		out[i] = split{path: sp.Path, frac: sp.Frac, delay: p.pathDelay(sp.Path)}
	}
	return out
}

// deadFrac sums the fractions of a split set whose path crosses a down link.
func (p *Protection) deadFrac(sps []split, down []bool) float64 {
	dead := 0.0
	for _, sp := range sps {
		if !p.pathUp(sp.path, down) {
			dead += sp.frac
		}
	}
	return dead
}

// Availability analytically evaluates a protection mode against a failure
// schedule. NoProtection leaves traffic where the primaries put it; FRR
// moves failed fractions to the precomputed backup DetectDelay after each
// event; FRRReopt additionally rescues fractions whose primary and backup
// are both dead, provided the residual topology still connects the
// commodity, ReoptDelay after the event — the connectivity-level effect of
// the background full reoptimization (load shaping, the LP's actual
// output, is the simulation study's concern, not availability's). A
// rescue, once installed, keeps carrying the commodity's dead fractions
// until its own links die or the primaries recover.
func (p *Protection) Availability(sched *Schedule, mode Mode) Stats {
	st := Stats{Mode: mode}

	// Decisions: every event batch triggers its own FRR patch DetectDelay
	// later and (FRRReopt) its own rescue evaluation ReoptDelay later —
	// the exact timing Plan compiles, so the analytic walk and the
	// simulated replay describe the same response.
	events := sched.Events()
	type decision struct {
		t      float64
		rescue bool
	}
	var decisions []decision
	for ei := 0; ei < len(events); {
		bt := events[ei].Time
		for ; ei < len(events) && events[ei].Time == bt; ei++ {
		}
		if mode != NoProtection {
			decisions = append(decisions, decision{t: bt + p.cfg.DetectDelay})
		}
		if mode == FRRReopt {
			decisions = append(decisions, decision{t: bt + p.cfg.ReoptDelay, rescue: true})
		}
	}
	sort.SliceStable(decisions, func(a, b int) bool { return decisions[a].t < decisions[b].t })

	// Boundaries: every topology change and every decision. Between
	// consecutive boundaries both the down-set and the in-force routing
	// are constant.
	bset := map[float64]bool{0: true, sched.Horizon: true}
	for _, ev := range events {
		bset[ev.Time] = true
	}
	for _, d := range decisions {
		if d.t <= sched.Horizon {
			bset[d.t] = true
		}
	}
	var bounds []float64
	for t := range bset {
		if t <= sched.Horizon {
			bounds = append(bounds, t)
		}
	}
	sort.Float64s(bounds)

	type rescue struct {
		path  []int
		delay float64
	}
	installed := make(map[int]string, len(p.primaries))
	inForce := make(map[int][]split, len(p.primaries))
	for flow, sp := range p.primaries {
		installed[flow] = splitsKey(sp)
		inForce[flow] = p.toSplits(sp)
	}
	rescues := map[int]rescue{}

	flows := make([]int, 0, len(p.primaries))
	for flow := range p.primaries {
		if p.commBy[flow] != nil {
			flows = append(flows, flow)
		}
	}
	sort.Ints(flows)

	demandTime, liveTime := 0.0, 0.0
	stretchW, stretchSum := 0.0, 0.0
	sweep := newDownSweep(sched)
	decIdx := 0
	for bi := 0; bi+1 < len(bounds); bi++ {
		t, next := bounds[bi], bounds[bi+1]
		down := sweep.advance(t)
		anyDown := false
		for _, d := range down {
			if d {
				anyDown = true
				break
			}
		}

		// Apply the decisions landing at this boundary (their times are
		// boundaries by construction).
		patch, rescueEval := false, false
		for ; decIdx < len(decisions) && decisions[decIdx].t <= t; decIdx++ {
			if decisions[decIdx].rescue {
				rescueEval = true
			} else {
				patch = true
			}
		}
		if patch {
			for _, flow := range flows {
				desired := p.patchOne(flow, p.primaries[flow], down)
				if key := splitsKey(desired); key != installed[flow] {
					installed[flow] = key
					inForce[flow] = p.toSplits(desired)
					st.Reroutes++
				}
			}
		}
		// Rescues die with the links they ride or when the patched split
		// recovers on its own.
		for flow, r := range rescues {
			if !p.pathUp(r.path, down) || p.deadFrac(inForce[flow], down) == 0 {
				delete(rescues, flow)
			}
		}
		if rescueEval {
			for _, flow := range flows {
				if _, have := rescues[flow]; have {
					continue
				}
				if p.deadFrac(inForce[flow], down) == 0 {
					continue
				}
				c := p.commBy[flow]
				if path, delay := p.residualShortest(c.Src, c.Dst, down); path != nil {
					rescues[flow] = rescue{path: path, delay: delay}
					st.Reroutes++
				}
			}
		}

		dt := next - t
		if dt <= 0 {
			continue
		}
		for _, flow := range flows {
			demand := float64(p.commBy[flow].Demand)
			if demand <= 0 {
				demand = 1 // count zero-demand commodities uniformly
			}
			demandTime += demand * dt
			for _, sp := range inForce[flow] {
				delay := sp.delay
				live := p.pathUp(sp.path, down)
				if !live {
					if r, ok := rescues[flow]; ok {
						live, delay = true, r.delay
					}
				}
				if !live {
					continue
				}
				liveTime += demand * sp.frac * dt
				if anyDown {
					if s0, ok := p.shortest[flow]; ok && s0 > 0 {
						str := delay / s0
						w := demand * sp.frac * dt
						stretchW += w
						stretchSum += w * str
						if str > st.MaxStretch {
							st.MaxStretch = str
						}
					}
				}
			}
		}
	}
	if demandTime > 0 {
		st.Availability = liveTime / demandTime
	}
	if st.Availability >= 1 {
		st.Availability, st.Nines = 1, 9
	} else {
		st.Nines = math.Min(9, -math.Log10(1-st.Availability))
	}
	if stretchW > 0 {
		st.MeanStretch = stretchSum / stretchW
	}
	return st
}

func (p *Protection) pathDelay(path []int) float64 {
	d := 0.0
	for i := 0; i+1 < len(path); i++ {
		if li, ok := p.linkIdx[pairKey(path[i], path[i+1])]; ok {
			d += float64(p.links[li].PropDelay)
		}
	}
	return d
}

// residualShortest finds the minimum-delay src→dst path over the up links,
// or nil if the residual topology disconnects the pair.
func (p *Protection) residualShortest(src, dst int, down []bool) ([]int, float64) {
	type half struct {
		to    int
		delay float64
	}
	adj := make([][]half, p.nodes)
	for li, l := range p.links {
		if down[li] {
			continue
		}
		adj[l.A] = append(adj[l.A], half{to: l.B, delay: float64(l.PropDelay)})
		adj[l.B] = append(adj[l.B], half{to: l.A, delay: float64(l.PropDelay)})
	}
	dist := make([]float64, p.nodes)
	prev := make([]int, p.nodes)
	done := make([]bool, p.nodes)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < p.nodes; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for _, h := range adj[u] {
			if nd := dist[u] + h.delay; nd < dist[h.to] {
				dist[h.to] = nd
				prev[h.to] = u
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil, 0
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}
