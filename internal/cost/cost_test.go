package cost

import (
	"math"
	"testing"
)

func TestDefaultModelMatchesPaper(t *testing.T) {
	m := DefaultModel()
	if m.LinkInstall1G != 150_000 || m.LinkInstall500M != 75_000 {
		t.Fatal("link install costs differ from §2")
	}
	if m.NewTower != 100_000 {
		t.Fatal("new tower cost differs from §2")
	}
	if m.TowerRentYear < 25_000 || m.TowerRentYear > 50_000 {
		t.Fatal("rent outside the paper's $25-50K range")
	}
	if m.AmortYears != 5 {
		t.Fatal("amortisation differs from §2's 5 years")
	}
}

func TestComputeAndTotal(t *testing.T) {
	m := DefaultModel()
	b := m.Compute(10, 2, 100)
	if b.Capex != 10*150_000+2*100_000 {
		t.Fatalf("capex = %v", b.Capex)
	}
	if b.OpexYear != 100*37_500 {
		t.Fatalf("opex = %v", b.OpexYear)
	}
	if got, want := m.Total(b), b.Capex+5*b.OpexYear; got != want {
		t.Fatalf("total = %v, want %v", got, want)
	}
}

func TestCostPerGBPaperScale(t *testing.T) {
	// Sanity-check against the paper's headline: a ~3,000-tower 100 Gbps
	// network with ~2,300 hops and ~1,500 extra-series towers comes out
	// around $0.8/GB. Reconstruct roughly Fig 3's accounting:
	// 1,660+552+86 = 2,298 base hops; augmented series ≈ 552·1+86·2 extra
	// hop-installs ≈ 2,300 + 724 ≈ 3,022 installs; new towers
	// 552·2+86·4 = 1,448; towers rented ≈ 3,000 + 1,448.
	m := DefaultModel()
	b := m.Compute(3022, 1448, 4448)
	perGB := m.CostPerGB(b, 100)
	if perGB < 0.4 || perGB > 1.3 {
		t.Fatalf("cost per GB = $%.2f, want in the ballpark of the paper's $0.81", perGB)
	}
	t.Logf("reconstructed Fig 3 cost: $%.2f/GB (paper: $0.81)", perGB)
}

func TestCostPerGBScalesInversely(t *testing.T) {
	m := DefaultModel()
	b := m.Compute(1000, 100, 2000)
	c100 := m.CostPerGB(b, 100)
	c200 := m.CostPerGB(b, 200)
	if math.Abs(c100/c200-2) > 1e-9 {
		t.Fatalf("cost/GB should halve when throughput doubles: %v vs %v", c100, c200)
	}
}

func TestCostPerGBZeroThroughput(t *testing.T) {
	m := DefaultModel()
	if got := m.CostPerGB(Bill{}, 0); got != 0 {
		t.Fatalf("zero throughput cost = %v, want 0 sentinel", got)
	}
}
