package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds a path graph 0-1-2-...-(n-1) with unit weights.
func line(n int) *Graph[float64] {
	g := New[float64](n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	path, d := g.ShortestPath(0, 4)
	if d != 4 {
		t.Fatalf("distance = %v, want 4", d)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathPrefersLighter(t *testing.T) {
	g := New[float64](3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 10)
	_, d := g.ShortestPath(0, 2)
	if d != 2 {
		t.Fatalf("distance = %v, want 2 (via middle node)", d)
	}
}

func TestUnreachable(t *testing.T) {
	g := New[float64](4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	path, d := g.ShortestPath(0, 3)
	if path != nil || !math.IsInf(d, 1) {
		t.Fatalf("got path %v dist %v, want unreachable", path, d)
	}
	if g.Connected(0, 3) {
		t.Error("Connected(0,3) = true across components")
	}
	if !g.Connected(0, 1) {
		t.Error("Connected(0,1) = false within component")
	}
}

func TestDenseSourceShortestMatchesDijkstra(t *testing.T) {
	// The heap-free dense Dijkstra must produce bit-identical distances to
	// the adjacency-list one on random dense matrices (with some +Inf
	// holes and an unreachable node).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(30)
		w := make([][]float64, n+1)
		for i := range w {
			w[i] = make([]float64, n+1)
			for j := range w[i] {
				w[i][j] = math.Inf(1)
			}
		}
		g := New[float64](n + 1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					continue // no edge
				}
				x := rng.Float64()*10 + 0.1
				w[i][j], w[j][i] = x, x
				g.AddEdge(i, j, x)
			}
		}
		// Node n stays isolated in both representations.
		for src := 0; src <= n; src++ {
			dist, _ := g.Dijkstra(src)
			dense := DenseSourceShortest(w, src)
			for v := 0; v <= n; v++ {
				if dist[v] != dense[v] && !(math.IsInf(dist[v], 1) && math.IsInf(dense[v], 1)) {
					t.Fatalf("trial %d src %d: dense[%d] = %v, Dijkstra %v", trial, src, v, dense[v], dist[v])
				}
			}
		}
	}
}

func TestConnectedAgainstDijkstra(t *testing.T) {
	// The BFS reachability fast path must agree with full Dijkstra on
	// random graphs, including isolated nodes and src == dst.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		g := randomGraph(rng, n)
		g.AddNode() // isolated: unreachable from everyone else
		for q := 0; q < 30; q++ {
			src, dst := rng.Intn(g.N()), rng.Intn(g.N())
			dist, _ := g.Dijkstra(src)
			if got, want := g.Connected(src, dst), !math.IsInf(dist[dst], 1); got != want {
				t.Fatalf("trial %d: Connected(%d,%d) = %v, Dijkstra says %v", trial, src, dst, got, want)
			}
		}
	}
	g := New[float64](2)
	if !g.Connected(1, 1) {
		t.Fatal("Connected(v,v) = false on isolated node")
	}
}

func TestSelfPath(t *testing.T) {
	g := line(3)
	path, d := g.ShortestPath(1, 1)
	if d != 0 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v/%v, want [1]/0", path, d)
	}
}

func TestDijkstraAllDistances(t *testing.T) {
	g := line(6)
	dist, prev := g.Dijkstra(2)
	for i, want := range []float64{2, 1, 0, 1, 2, 3} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want)
		}
	}
	if prev[2] != -1 {
		t.Errorf("prev[src] = %d, want -1", prev[2])
	}
}

func TestBlockedForcesDetour(t *testing.T) {
	// Diamond: 0-1-3 (len 2) and 0-2-3 (len 4); block node 1.
	g := New[float64](4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	blocked := make([]bool, 4)
	blocked[1] = true
	path, d := g.ShortestPathBlocked(0, 3, blocked)
	if d != 4 {
		t.Fatalf("blocked distance = %v, want 4", d)
	}
	for _, v := range path {
		if v == 1 {
			t.Fatal("path traverses blocked node")
		}
	}
}

func TestDisjointPaths(t *testing.T) {
	// Three parallel 2-hop routes of lengths 2, 4, 6 between 0 and 4.
	g := New[float64](5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 4, 2)
	g.AddEdge(0, 3, 3)
	g.AddEdge(3, 4, 3)
	paths, lens := g.DisjointPaths(0, 4, 10)
	if len(paths) != 3 {
		t.Fatalf("found %d disjoint paths, want 3", len(paths))
	}
	for i, want := range []float64{2, 4, 6} {
		if lens[i] != want {
			t.Errorf("path %d length %v, want %v (ordered by increasing length)", i, lens[i], want)
		}
	}
	// Interior nodes must not repeat across paths.
	seen := map[int]bool{}
	for _, p := range paths {
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Fatalf("node %d reused across disjoint paths", v)
			}
			seen[v] = true
		}
	}
}

func TestDisjointPathsExhausted(t *testing.T) {
	g := line(3) // only one interior node, so only one path
	paths, _ := g.DisjointPaths(0, 2, 5)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
}

func TestPathLength(t *testing.T) {
	g := line(4)
	if l := g.PathLength([]int{0, 1, 2, 3}); l != 3 {
		t.Errorf("PathLength = %v, want 3", l)
	}
	if l := g.PathLength([]int{0, 2}); !math.IsInf(l, 1) {
		t.Errorf("PathLength over missing edge = %v, want +Inf", l)
	}
	if l := g.PathLength([]int{1}); l != 0 {
		t.Errorf("single-node path length = %v, want 0", l)
	}
}

func TestAddNode(t *testing.T) {
	g := New[float64](2)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode = %d (n=%d), want 2 (n=3)", id, g.N())
	}
}

func TestEdgeCount(t *testing.T) {
	g := line(5)
	if g.Edges() != 4 {
		t.Fatalf("Edges = %d, want 4", g.Edges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	New[float64](2).AddEdge(0, 5, 1)
}

func TestAddEdgeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	New[float64](2).AddEdge(0, 1, -1)
}

// randomGraph builds a connected random graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph[float64] {
	g := New[float64](n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), rng.Float64()*10+0.1)
	}
	extra := n * 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, rng.Float64()*10+0.1)
		}
	}
	return g
}

func TestDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		g := randomGraph(rng, n)
		src := rng.Intn(n)
		dist, _ := g.Dijkstra(src)
		// Shortest-path optimality: for every edge (u,v), dist[v] <= dist[u]+w.
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				if dist[e.To] > dist[u]+e.Weight+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathMatchesDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		g := randomGraph(rng, n)
		src, dst := rng.Intn(n), rng.Intn(n)
		path, d := g.ShortestPath(src, dst)
		if math.IsInf(d, 1) {
			return path == nil
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		return math.Abs(g.PathLength(path)-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointPathsMonotoneLengths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		g := randomGraph(rng, n)
		src, dst := 0, n-1
		_, lens := g.DisjointPaths(src, dst, 5)
		for i := 1; i < len(lens); i++ {
			if lens[i] < lens[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstra1kNodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % 1000)
	}
}
