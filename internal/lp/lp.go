// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {≤,=,≥} b_i   for each constraint i
//	            x ≥ 0
//
// It is the in-repo substitute for the commercial solver (Gurobi) the paper
// uses for its Step-2 ILP: exact on the same formulations, merely slower.
// Problems are stated with sparse constraint rows but solved on a dense
// tableau, which is simple and adequate at the scales the cISP flow ILP
// reaches before its exponential blow-up makes any solver irrelevant
// (Fig 2a).
package lp

import (
	"errors"
	"fmt"
	"math"

	"cisp/internal/obs"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a sparse linear constraint.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a minimisation LP over n non-negative variables.
type Problem struct {
	NumVars   int
	Objective []float64 // length NumVars; minimised
	Cons      []Constraint

	// maximize records that Objective holds the negated coefficients of a
	// Maximize call, so Solve can report the objective value in the
	// maximisation sense.
	maximize bool
}

// Maximize sets the objective to maximise c·x. The coefficients are stored
// negated (simplex minimises), and Solve reports Solution.Objective in the
// maximisation sense.
func (p *Problem) Maximize(c []float64) {
	p.Objective = make([]float64, len(c))
	for i, v := range c {
		p.Objective[i] = -v
	}
	p.maximize = true
}

// AddConstraint appends a constraint built from parallel slices.
func (p *Problem) AddConstraint(vars []int, coeffs []float64, s Sense, rhs float64) {
	if len(vars) != len(coeffs) {
		panic("lp: vars/coeffs length mismatch")
	}
	terms := make([]Term, len(vars))
	for i := range vars {
		terms[i] = Term{Var: vars[i], Coeff: coeffs[i]}
	}
	p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: s, RHS: rhs})
}

// Status describes a solve outcome.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Solution is a solved LP.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64

	// Pivots counts the simplex pivots the solve performed (both phases);
	// the observability layer tracks it as a measure of solver effort.
	Pivots int
}

const eps = 1e-9

// ErrIterationLimit is returned when the simplex fails to terminate within
// its iteration budget (cycling or a pathological instance).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// Solve runs two-phase simplex and returns the solution. The returned error
// is non-nil only for internal failures (iteration limit); infeasibility and
// unboundedness are reported via Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	m := len(p.Cons)
	n := p.NumVars

	pivots := 0
	snk := obs.Active()
	stop := snk.StartTimer("cisp_lp_solve_seconds")
	defer func() {
		stop()
		snk.Counter("cisp_lp_solves_total").Inc()
		snk.Counter("cisp_lp_pivots_total").Add(int64(pivots))
	}()

	// Normalise to b ≥ 0, count slack/artificial columns.
	type rowSpec struct {
		terms []Term
		sense Sense
		rhs   float64
	}
	rows := make([]rowSpec, m)
	for i, c := range p.Cons {
		r := rowSpec{terms: c.Terms, sense: c.Sense, rhs: c.RHS}
		if r.rhs < 0 {
			neg := make([]Term, len(r.terms))
			for k, t := range r.terms {
				neg[k] = Term{Var: t.Var, Coeff: -t.Coeff}
			}
			r.terms = neg
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows[i] = r
	}

	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++ // GE and EQ rows need artificials
		}
	}

	total := n + nSlack + nArt
	// Tableau: m rows × (total+1) cols (last col = RHS), plus objective row.
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)

	slackAt := n
	artAt := n + nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		for _, t := range r.terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("lp: constraint %d references variable %d out of range [0,%d)", i, t.Var, n)
			}
			tab[i][t.Var] += t.Coeff
		}
		tab[i][total] = r.rhs
		switch r.sense {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	// Phase 1: minimise sum of artificials.
	if nArt > 0 {
		obj := tab[m]
		for j := range obj {
			obj[j] = 0
		}
		for _, j := range artCols {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i, b := range basis {
			if obj[b] != 0 {
				f := obj[b]
				for j := 0; j <= total; j++ {
					obj[j] -= f * tab[i][j]
				}
			}
		}
		st, np, err := simplex(tab, basis, total)
		pivots += np
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			return nil, errors.New("lp: phase-1 unbounded (internal error)")
		}
		if -tab[m][total] > 1e-7 {
			return &Solution{Status: Infeasible, Pivots: pivots}, nil
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i, b := range basis {
			if !isArt(b, n+nSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, total)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial at zero.
				_ = i
			}
		}
	}

	// Phase 2: original objective; forbid artificial columns.
	obj := tab[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n && j < len(p.Objective); j++ {
		obj[j] = p.Objective[j]
	}
	// Blank out artificial columns so they can never re-enter.
	for _, j := range artCols {
		for i := 0; i <= m; i++ {
			tab[i][j] = 0
		}
	}
	for i, b := range basis {
		if obj[b] != 0 {
			f := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= f * tab[i][j]
			}
		}
	}
	st, np, err := simplex(tab, basis, total)
	pivots += np
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Pivots: pivots}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n && j < len(p.Objective); j++ {
		objVal += p.Objective[j] * x[j]
	}
	if p.maximize {
		objVal = -objVal
	}
	return &Solution{Status: Optimal, X: x, Objective: objVal, Pivots: pivots}, nil
}

func isArt(col, artStart int) bool { return col >= artStart }

// simplex runs primal simplex iterations on the tableau until optimality or
// unboundedness, also reporting how many pivots it performed. Dantzig
// pricing with a Bland fallback to guarantee termination on degenerate
// problems.
func simplex(tab [][]float64, basis []int, total int) (Status, int, error) {
	m := len(basis)
	maxIter := 200 * (m + total + 10)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		obj := tab[m]
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < total; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < total; j++ { // Bland: first negative
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iter, nil
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > eps {
				r := tab[i][total] / a
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iter, nil
		}
		pivot(tab, basis, leave, enter, total)
	}
	return Optimal, maxIter, ErrIterationLimit
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter, total int) {
	m := len(basis)
	pr := tab[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	for i := 0; i <= m; i++ {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		row := tab[i]
		for j := 0; j <= total; j++ {
			row[j] -= f * pr[j]
		}
	}
	basis[leave] = enter
}
