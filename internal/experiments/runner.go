package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"cisp/internal/obs"
	"cisp/internal/parallel"
)

// runSpec executes one spec with a trace span and panic context: a
// worker that dies names the figure it died in instead of unwinding as
// an anonymous pool goroutine.
func runSpec(s Spec, o Options) {
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("experiments: figure %q panicked: %v", s.Name, r))
		}
	}()
	sp := obs.Active().Span("fig:" + s.Name)
	o.Span = sp
	s.Run(o)
	sp.End()
}

// Spec names one experiment invocation for the concurrent runner. Run
// receives an Options copy whose Out points at a per-spec buffer, so specs
// never interleave writes.
type Spec struct {
	Name string
	Run  func(Options)
}

// Timing records one completed spec, in spec order.
type Timing struct {
	Name    string
	Seconds float64
}

// RunAll executes independent figure reproductions in a bounded pool of
// opt.Parallelism workers (GOMAXPROCS when 0 — deliberately not the
// parallel.SetWorkers override, which bounds the inner design/link-build
// pool and is an independent knob) instead of back-to-back.
//
// With one worker, specs write straight to opt.Out, streaming within each
// figure exactly like a back-to-back run. With more, every spec gets a
// private copy of opt with an in-memory Out and a flusher streams the
// buffers to opt.Out strictly in spec order, each as soon as it and all
// earlier specs have finished — at any pool width the combined output is
// identical to the sequential run regardless of which spec completes
// first. Experiments build their scenarios from Options alone and share
// no mutable state, which is what makes the fan-out safe. Note that
// figures whose *output* is a wall-clock measurement (Fig 2's runtime
// columns, the timing lines) are only trustworthy at Parallelism 1:
// concurrent figures contend for the same cores.
func RunAll(opt Options, specs []Spec) []Timing {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(specs) == 1 {
		// Sequential: write straight to opt.Out so long figures stream row
		// by row as they compute, exactly like a back-to-back run.
		times := make([]Timing, len(specs))
		w := opt.out()
		for k, s := range specs {
			o := opt
			o.Out = w
			start := time.Now() //lint:allow determinism -- progress-log timing of the experiment process; results are seed-driven
			runSpec(s, o)
			times[k] = Timing{Name: s.Name, Seconds: time.Since(start).Seconds()} //lint:allow determinism -- progress-log timing of the experiment process; results are seed-driven
			fprintf(w, "  [%s done in %.3fs]\n\n", s.Name, times[k].Seconds)
		}
		return times
	}
	bufs := make([]*bytes.Buffer, len(specs))
	times := make([]Timing, len(specs))
	ok := make([]bool, len(specs)) // spec finished without panicking
	done := make([]chan struct{}, len(specs))
	tasks := make([]func(), len(specs))
	for k := range specs {
		k := k
		bufs[k] = &bytes.Buffer{}
		done[k] = make(chan struct{})
		tasks[k] = func() {
			defer close(done[k]) // even on panic, so the flusher never hangs
			o := opt
			o.Out = bufs[k]
			start := time.Now() //lint:allow determinism -- progress-log timing of the experiment process; results are seed-driven
			runSpec(specs[k], o)
			times[k] = Timing{Name: specs[k].Name, Seconds: time.Since(start).Seconds()} //lint:allow determinism -- progress-log timing of the experiment process; results are seed-driven
			ok[k] = true
		}
	}

	// The flusher streams completed buffers in spec order, stopping at the
	// first spec that panicked (ok[k] false: its truncated buffer and a
	// bogus timing line are suppressed) or, via quit, at the first spec
	// that never ran because a panic stopped the pool. The deferred join
	// waits for it either way, so opt.Out is never written concurrently
	// with (or after) RunAll's unwind.
	flushed := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		defer close(flushed)
		w := opt.out()
		for k := range specs {
			select {
			case <-done[k]:
			case <-quit:
				select {
				case <-done[k]: // finished after all; keep flushing
				default:
					return
				}
			}
			if !ok[k] {
				return
			}
			w.Write(bufs[k].Bytes())
			fprintf(w, "  [%s done in %.3fs]\n\n", specs[k].Name, times[k].Seconds)
		}
	}()
	defer func() {
		close(quit)
		<-flushed
	}()
	parallel.Run(workers, tasks)
	return times
}
