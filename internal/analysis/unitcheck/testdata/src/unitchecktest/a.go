// Package unitchecktest exercises the unitcheck core rules: mistyped
// products, direct unit-to-unit casts, Duration casts, and dimension
// mismatches that arrive through intra-package signature inference.
package unitchecktest

import (
	"time"

	"cisp/internal/units"
)

func products(a, b units.Meters) {
	area := a * b // want `\* expression computes length\^2 but has static type units\.Meters`
	_ = area
	ratio := a / b // want `/ expression computes dimensionless but has static type units\.Meters`
	_ = ratio
	_ = int(a/b) + 1   // the erasing conversion marks the ratio
	_ = float64(a * b) // likewise
	_ = units.Ratio(a, b)
	_ = a * 2 // scalar multiples keep the dimension
	_ = a / 2
	_ = a + b
	_ = a + 3
}

func mixedArithmetic(a, b units.Meters) {
	_ = a*b + a // want `\* expression computes length\^2` `\+ mixes length\^2 and length operands`
	_ = a/b > a // want `/ expression computes dimensionless` `> mixes dimensionless and length operands`
}

func conversions(km units.Km, m units.Meters, rate units.BitsPerSecond, s units.Seconds, d time.Duration) {
	_ = units.Meters(km) // want `direct conversion units\.Meters\(units\.Km value\) drops the scale factor`
	_ = km.Meters()
	_ = units.Utilization(rate) // want `relabels data rate as dimensionless`
	_ = units.Utilization(float64(rate) / float64(rate))
	_ = units.Utilization(rate / rate) // a genuine ratio: its static type is a stale label
	_ = units.Seconds(d)               // want `reads nanoseconds as time`
	_ = time.Duration(s)               // want `reinterprets time as a nanosecond count`
	_ = s.Duration()
	_ = units.DurationSeconds(d)
	_ = units.Seconds(float64(m)) // erased: the programmer takes responsibility at the boundary
}

// spanM returns a length-dimensioned float64: inference sees through the
// erasing conversion when computing signatures.
func spanM(a, b units.Meters) float64 { return float64(a + b) }

// elapsed returns a time-dimensioned float64.
func elapsed(s units.Seconds) float64 { return float64(s) }

// scaleLen's parameter is a length: the body's direct conversion states it.
func scaleLen(v float64) units.Meters { return units.Meters(v) * 2 }

func inferredMisuse() {
	_ = units.Meters(spanM(1, 2))
	_ = units.Seconds(spanM(1, 2)) // want `conversion units\.Seconds\(\.\.\.\) of a length-dimensioned expression`
	_ = spanM(1, 2) + elapsed(3)   // want `\+ mixes length and time operands`
	_ = scaleLen(spanM(1, 2))
	_ = scaleLen(elapsed(3)) // want `argument 1 to scaleLen carries time; its dimension signature expects length`
}

func compound(a, b units.Meters, u units.Utilization) {
	a += b
	a -= 3
	a *= 2
	u *= u
	a *= b // want `\*= by a length value changes the dimension of the length target`
	a /= b // want `/= by a length value changes the dimension of the length target`
}

func suppressedProduct(a, b units.Meters) float64 {
	area := a * b //lint:allow unitcheck -- area intermediate, erased on the next line
	return float64(area)
}
