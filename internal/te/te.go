// Package te is the traffic-engineering control plane over the hybrid
// cISP backbone: where the design pipeline (Steps 1–3) decides which links
// to build and how much capacity to provision, and internal/netsim forwards
// each commodity on a single path, te decides how offered traffic is
// *split* across the built capacity.
//
// For every commodity it enumerates k latency-diverse candidate paths
// (Yen's algorithm, capped at a configurable stretch of the commodity's
// shortest path, so no split ever leaves the paper's latency envelope),
// then solves a path-based multi-commodity flow program on internal/lp that
// minimises the maximum link utilization subject to demand satisfaction —
// the classic min-MLU TE objective of centralized SDN controllers. Large
// instances are sharded into commodity blocks refined Jacobi-style over
// internal/parallel, and instances past the dense simplex entirely fall
// back to a deterministic greedy water-filling. The result installs into
// both netsim engines as netsim.Scenario.Splits, and a Controller supports
// warm-started reoptimization when weather degrades link capacities
// (internal/weather feeds graded CapFrac rates in; only commodities whose
// candidate paths cross a changed link are re-solved). See DESIGN.md §7.
package te

import (
	"fmt"
	"math"
	"sort"

	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/parallel"
	"cisp/internal/units"
)

// Config tunes the control plane. The zero value selects sensible defaults.
type Config struct {
	K       int     // candidate paths per commodity (default 4)
	Stretch float64 // candidate delay cap, × the commodity's shortest-path delay (default 1.5)

	// UtilFloor is the utilization hinge below which a link counts as
	// uncongested: the LP objective only charges for the worst utilization
	// *above* this level, so light traffic stays on its lowest-latency
	// candidate instead of spreading for marginal MLU gains. Default 0.5;
	// set to 1 to spread only under genuine overload, or to a negative
	// value for the classic always-minimise-MLU objective.
	UtilFloor units.Utilization

	// LPVarLimit is the largest variable count handed to one dense simplex
	// solve (default 1500). Instances above it are sharded into commodity
	// blocks of BlockSize refined for BlockRounds Jacobi rounds; instances
	// whose blocks would still exceed the limit fall back to greedy
	// water-filling with WaterQuanta demand quanta per commodity.
	LPVarLimit  int // default 1500
	BlockSize   int // commodities per block (default 48)
	BlockRounds int // Jacobi refinement rounds (default 3)
	WaterQuanta int // greedy fallback quanta (default 8)
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Stretch <= 0 {
		c.Stretch = 1.5
	}
	switch {
	case c.UtilFloor == 0:
		c.UtilFloor = 0.5
	case c.UtilFloor < 0:
		c.UtilFloor = 0
	}
	if c.LPVarLimit <= 0 {
		c.LPVarLimit = 1500
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 48
	}
	if c.BlockRounds <= 0 {
		c.BlockRounds = 3
	}
	if c.WaterQuanta <= 0 {
		c.WaterQuanta = 8
	}
	return c
}

// teComm is the control plane's view of one commodity.
type teComm struct {
	flow     int
	src, dst int
	demand   float64
	cands    []Path
	fracs    []float64 // current split, aligned with cands
}

// Solution is an installed-able TE routing decision.
type Solution struct {
	// Splits maps commodity flow IDs to weighted paths, ready for
	// netsim.Scenario.Splits. Commodities with no path on the current
	// topology are absent.
	Splits map[int][]netsim.SplitPath
	// MLU is the predicted maximum directed-link utilization under the
	// splits (offered demand over capacity, queuing ignored).
	MLU units.Utilization
	// Method records how the splits were computed: "lp" (one global
	// simplex), "block-lp" (sharded Jacobi refinement) or "greedy"
	// (water-filling fallback).
	Method string
}

// Solve computes latency-bounded fractional splits for the commodities over
// the duplex topology: the one-shot entry point when no weather
// reoptimization is needed.
func Solve(n int, links []netsim.TopoLink, comms []netsim.Commodity, cfg Config) (*Solution, error) {
	ctrl, err := NewController(n, links, comms, cfg)
	if err != nil {
		return nil, err
	}
	return ctrl.Solution(), nil
}

// SolveShortest routes every commodity on its single lowest-delay path,
// wrapped as one-element splits — the degenerate TE solution (K=1). It is
// the baseline the workload pipeline installs on the fiber-only substrate:
// today's Internet routes on one path, and wrapping it as a Solution keeps
// the protection layer (resilience.NewProtection wants primaries) and MLU
// accounting uniform across substrates.
func SolveShortest(n int, links []netsim.TopoLink, comms []netsim.Commodity) (*Solution, error) {
	return Solve(n, links, comms, Config{K: 1})
}

// Controller holds the control-plane state between reoptimizations: the TE
// graph, each commodity's candidate paths (enumerated once, on the
// clear-sky topology) and the current splits.
type Controller struct {
	cfg    Config
	g      *graph
	comms  []teComm
	sol    *Solution
	method string
}

// NewController builds the TE graph, enumerates candidate paths for every
// commodity in parallel, and solves the initial splits.
func NewController(n int, links []netsim.TopoLink, comms []netsim.Commodity, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	g, err := buildGraph(n, links)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, g: g}
	cands := enumerate(g, comms, cfg)
	c.comms = make([]teComm, len(comms))
	for i, cm := range comms {
		c.comms[i] = teComm{flow: cm.Flow, src: cm.Src, dst: cm.Dst, demand: float64(cm.Demand), cands: cands[i]}
	}
	if err := c.reroute(allIndices(len(c.comms))); err != nil {
		return nil, err
	}
	return c, nil
}

// Solution returns the current routing decision. The returned value is
// shared; treat it as read-only.
func (c *Controller) Solution() *Solution { return c.sol }

// UpdateCapacities installs new per-link capacities (the link list must
// match the constructor's positionally — same endpoints, new RateBps; a
// rate of 0 marks a failed link) and re-solves only the affected
// commodities: those with a candidate path crossing a changed link. The
// others keep their splits, entering the re-solve as pinned load — a warm
// start that keeps storm-interval reoptimization cheap. Returns the sorted
// affected commodity flow IDs.
func (c *Controller) UpdateCapacities(links []netsim.TopoLink) ([]int, error) {
	snk := obs.Active()
	stop := snk.StartTimer("cisp_te_reopt_seconds")
	defer stop()
	if 2*len(links) != len(c.g.edges) {
		return nil, fmt.Errorf("te: capacity update has %d links, controller topology has %d", len(links), len(c.g.edges)/2)
	}
	// Validate the whole list before touching any capacity: a partial
	// mutation on a rejected update would desync the controller's graph
	// from its installed splits.
	for i, l := range links {
		for dir := 0; dir < 2; dir++ {
			e := &c.g.edges[2*i+dir]
			from, to := l.A, l.B
			if dir == 1 {
				from, to = l.B, l.A
			}
			if e.from != from || e.to != to {
				return nil, fmt.Errorf("te: capacity update link %d is %d-%d, controller has %d-%d", i, l.A, l.B, e.from, e.to)
			}
		}
	}
	changed := make([]bool, len(c.g.edges))
	anyChanged := false
	for i, l := range links {
		for dir := 0; dir < 2; dir++ {
			e := &c.g.edges[2*i+dir]
			if e.capBps != float64(l.RateBps) {
				changed[2*i+dir] = true
				anyChanged = true
				e.capBps = float64(l.RateBps)
			}
		}
	}
	if !anyChanged {
		return nil, nil
	}
	var affected []int
	for i := range c.comms {
		cm := &c.comms[i]
		hit := false
		for _, p := range cm.cands {
			for _, ei := range p.edges {
				if changed[ei] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			affected = append(affected, i)
		}
	}
	if err := c.reroute(affected); err != nil {
		return nil, err
	}
	snk.Counter("cisp_te_reopts_total").Inc()
	snk.Counter("cisp_te_reopt_commodities_total").Add(int64(len(affected)))
	ids := make([]int, len(affected))
	for k, i := range affected {
		ids[k] = c.comms[i].flow
	}
	sort.Ints(ids)
	return ids, nil
}

// reroute recomputes splits for the commodity indices in idxs, keeping
// every other commodity's current split pinned as base load. Candidates
// crossing a downed (zero-capacity) link are masked; a commodity left with
// no usable candidate is re-enumerated on the degraded topology.
func (c *Controller) reroute(idxs []int) error {
	inSet := make([]bool, len(c.comms))
	for _, i := range idxs {
		inSet[i] = true
	}
	base := make([]float64, len(c.g.edges))
	for i := range c.comms {
		if !inSet[i] {
			c.comms[i].addLoad(base)
		}
	}

	// The full candidate set is kept for the controller's lifetime (so a
	// restored link's paths come back after a storm); each reroute works on
	// the usable subset — candidates whose every edge is up. A commodity
	// with no usable candidate is re-enumerated on the degraded topology
	// and keeps any new paths for later.
	var scratch *dijkstraScratch
	usableOf := func(cm *teComm) []int {
		var usable []int
		for pi, p := range cm.cands {
			up := true
			for _, ei := range p.edges {
				if c.g.edges[ei].capBps <= 0 {
					up = false
					break
				}
			}
			if up {
				usable = append(usable, pi)
			}
		}
		return usable
	}

	// Partition the re-solved set: zero-demand or single-candidate
	// commodities are fixed on their best usable path (their load joins the
	// base); the rest go to the optimizer via shadow commodities holding
	// just the usable candidates.
	var (
		shadows []*teComm
		owners  []*teComm
		usables [][]int
	)
	for _, i := range idxs {
		cm := &c.comms[i]
		cm.fracs = nil
		usable := usableOf(cm)
		if len(usable) == 0 {
			if scratch == nil {
				scratch = newScratch(c.g)
			}
			for _, p := range yen(c.g, scratch, cm.src, cm.dst, c.cfg.K, c.cfg.Stretch) {
				dup := false
				for _, q := range cm.cands {
					if sameEdges(p.edges, q.edges) {
						dup = true
						break
					}
				}
				if !dup {
					cm.cands = append(cm.cands, p)
				}
			}
			usable = usableOf(cm)
		}
		if len(usable) == 0 {
			continue // unroutable on the current topology
		}
		if len(usable) == 1 || cm.demand <= 0 {
			cm.fracs = make([]float64, len(cm.cands))
			cm.fracs[usable[0]] = 1
			cm.addLoad(base)
			continue
		}
		sub := make([]Path, len(usable))
		for k, pi := range usable {
			sub[k] = cm.cands[pi]
		}
		shadows = append(shadows, &teComm{flow: cm.flow, src: cm.src, dst: cm.dst, demand: cm.demand, cands: sub})
		owners = append(owners, cm)
		usables = append(usables, usable)
	}

	if len(shadows) > 0 {
		nx := 1
		for _, cm := range shadows {
			nx += len(cm.cands)
		}
		var (
			fracs  [][]float64
			method string
			err    error
		)
		switch {
		case nx <= c.cfg.LPVarLimit:
			method = "lp"
			floor := maxUtil(c.g, base)
			fracs, _, err = solveLP(c.g, shadows, base, floor, float64(c.cfg.UtilFloor))
		case c.cfg.BlockSize*c.cfg.K+1 <= c.cfg.LPVarLimit:
			method = "block-lp"
			fracs, err = c.solveBlocks(shadows, base)
		default:
			method = "greedy"
			fracs = waterfill(c.g, shadows, base, c.cfg.WaterQuanta)
		}
		if err != nil {
			return err
		}
		for k, cm := range owners {
			cm.fracs = make([]float64, len(cm.cands))
			for j, pi := range usables[k] {
				cm.fracs[pi] = fracs[k][j]
			}
		}
		c.method = method
	} else if c.method == "" {
		c.method = "lp"
	}

	c.rebuildSolution()
	return nil
}

// solveBlocks shards the commodities into demand-balanced blocks and
// refines them Jacobi-style: each round, every block re-solves its own LP
// against a snapshot of the other blocks' load from the previous round,
// fanned out over the shared worker pool. The snapshot discipline makes the
// result independent of the worker count.
func (c *Controller) solveBlocks(lpComms []*teComm, fixed []float64) ([][]float64, error) {
	order := sortByDemand(lpComms)
	nb := (len(lpComms) + c.cfg.BlockSize - 1) / c.cfg.BlockSize
	blocks := make([][]int, nb) // indices into lpComms
	for k, ci := range order {
		blocks[k%nb] = append(blocks[k%nb], ci)
	}

	// Initial iterate: everything on its shortest candidate.
	fracs := make([][]float64, len(lpComms))
	for i, cm := range lpComms {
		f := make([]float64, len(cm.cands))
		f[0] = 1
		fracs[i] = f
	}

	loadOf := func(fr [][]float64) []float64 {
		load := make([]float64, len(c.g.edges))
		copy(load, fixed)
		for i, cm := range lpComms {
			cm.addLoadFracs(load, fr[i])
		}
		return load
	}

	for round := 0; round < c.cfg.BlockRounds; round++ {
		load := loadOf(fracs)
		type blockResult struct {
			fracs [][]float64
			err   error
		}
		results := parallel.Map(nb, 1, func(b int) blockResult {
			base := make([]float64, len(load))
			copy(base, load)
			cs := make([]*teComm, len(blocks[b]))
			for k, ci := range blocks[b] {
				cs[k] = lpComms[ci]
				cs[k].subLoadFracs(base, fracs[ci])
			}
			floor := maxUtil(c.g, base)
			f, _, err := solveLP(c.g, cs, base, floor, float64(c.cfg.UtilFloor))
			return blockResult{fracs: f, err: err}
		})
		next := make([][]float64, len(lpComms))
		for b, r := range results {
			if r.err != nil {
				return nil, fmt.Errorf("te: block %d round %d: %w", b, round, r.err)
			}
			for k, ci := range blocks[b] {
				next[ci] = r.fracs[k]
			}
		}
		if round > 0 {
			// Damp later rounds: simultaneous block moves onto the same
			// alternate capacity would otherwise oscillate.
			for i := range next {
				for pi := range next[i] {
					next[i][pi] = 0.5*next[i][pi] + 0.5*fracs[i][pi]
				}
			}
		}
		fracs = next
	}
	return fracs, nil
}

// rebuildSolution reassembles Splits and the predicted MLU from the
// commodity table.
func (c *Controller) rebuildSolution() {
	load := make([]float64, len(c.g.edges))
	splits := make(map[int][]netsim.SplitPath, len(c.comms))
	for i := range c.comms {
		cm := &c.comms[i]
		if cm.fracs == nil {
			continue
		}
		cm.addLoad(load)
		var sp []netsim.SplitPath
		for pi, f := range cm.fracs {
			if f < 1e-6 {
				continue
			}
			sp = append(sp, netsim.SplitPath{Path: cm.cands[pi].Nodes, Frac: f})
		}
		if len(sp) > 0 {
			splits[cm.flow] = sp
		}
	}
	c.sol = &Solution{Splits: splits, MLU: units.Utilization(maxUtil(c.g, load)), Method: c.method}
}

// addLoad accrues the commodity's current split load onto the edge vector.
func (cm *teComm) addLoad(load []float64) { cm.addLoadFracs(load, cm.fracs) }

func (cm *teComm) addLoadFracs(load []float64, fracs []float64) {
	for pi, f := range fracs {
		if f <= 0 {
			continue
		}
		for _, ei := range cm.cands[pi].edges {
			load[ei] += cm.demand * f
		}
	}
}

func (cm *teComm) subLoadFracs(load []float64, fracs []float64) {
	for pi, f := range fracs {
		if f <= 0 {
			continue
		}
		for _, ei := range cm.cands[pi].edges {
			load[ei] -= cm.demand * f
			if load[ei] < 0 {
				load[ei] = 0
			}
		}
	}
}

func maxUtil(g *graph, load []float64) float64 {
	mlu := 0.0
	for ei := range g.edges {
		if c := g.edges[ei].capBps; c > 0 {
			if u := load[ei] / c; u > mlu {
				mlu = u
			}
		}
	}
	return mlu
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// MLUOf evaluates the predicted maximum link utilization of an arbitrary
// split set over the topology — the planning-side counterpart of
// netsim.ScenarioResult.MLU, useful for comparing a TE solution against
// single-path routing before simulating either.
func MLUOf(n int, links []netsim.TopoLink, comms []netsim.Commodity, splits map[int][]netsim.SplitPath) (units.Utilization, error) {
	g, err := buildGraph(n, links)
	if err != nil {
		return 0, err
	}
	idx := make(map[[2]int]int32, len(g.edges))
	for ei, e := range g.edges {
		idx[[2]int{e.from, e.to}] = int32(ei)
	}
	load := make([]float64, len(g.edges))
	for _, cm := range comms {
		for _, sp := range splits[cm.Flow] {
			for i := 0; i+1 < len(sp.Path); i++ {
				ei, ok := idx[[2]int{sp.Path[i], sp.Path[i+1]}]
				if !ok {
					return 0, fmt.Errorf("te: split path hop %d->%d not in topology", sp.Path[i], sp.Path[i+1])
				}
				load[ei] += float64(cm.Demand) * sp.Frac
			}
		}
	}
	mlu := maxUtil(g, load)
	if math.IsNaN(mlu) {
		return 0, fmt.Errorf("te: NaN utilization")
	}
	return units.Utilization(mlu), nil
}
