package netsim

import (
	"bytes"
	"strings"
	"testing"

	"cisp/internal/obs"
	"cisp/internal/parallel"
)

// traceOneRun executes a same-seed RunMany fan-out under a fresh sink
// and returns the exported trace bytes plus the registry.
func traceOneRun(t *testing.T, workers int) ([]byte, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(42, nil)
	prev := obs.SetActive(&obs.Sink{Reg: reg, Tr: tr})
	defer obs.SetActive(prev)

	prevW := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prevW)

	scs := make([]*Scenario, 4)
	for i := range scs {
		scs[i] = agreementScenario()
		scs[i].Seed = int64(i)
	}
	RunMany(scs, FluidMode)

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg
}

// TestTraceDeterminismPin is the repo-wide determinism pin for the
// observability layer: two same-seed RunMany fan-outs — at different
// worker counts, so goroutines interleave differently — must export
// byte-identical trace JSON.
func TestTraceDeterminismPin(t *testing.T) {
	a, regA := traceOneRun(t, 1)
	b, regB := traceOneRun(t, 4)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", a, b)
	}
	for _, want := range []string{`"name":"netsim:run[0]:fluid"`, `"name":"netsim:run[3]:fluid"`} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("trace missing %s:\n%s", want, a)
		}
	}
	// The metric side of the same pin: counters are worker-count
	// independent too.
	for _, name := range []string{"cisp_netsim_runs_total", "cisp_netsim_events_total", "cisp_netsim_flows_total"} {
		va := regA.Counter(name, "mode", "fluid").Value()
		vb := regB.Counter(name, "mode", "fluid").Value()
		if va == 0 || va != vb {
			t.Fatalf("%s: workers=1 got %d, workers=4 got %d", name, va, vb)
		}
	}
}

// TestRunManyPublishesObs: one scenario run populates the netsim metric
// family — run/event/flow counters, the heap high-water gauge, MLU and
// per-link utilization.
func TestRunManyPublishesObs(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetActive(&obs.Sink{Reg: reg})
	defer obs.SetActive(prev)

	res := RunMany([]*Scenario{agreementScenario()}, PacketMode)[0]
	if got := reg.Counter("cisp_netsim_runs_total", "mode", "packet").Value(); got != 1 {
		t.Fatalf("runs_total = %d, want 1", got)
	}
	if got := reg.Counter("cisp_netsim_events_total", "mode", "packet").Value(); got != res.EventsProcessed {
		t.Fatalf("events_total = %d, want %d", got, res.EventsProcessed)
	}
	if got := reg.Gauge("cisp_netsim_heap_depth_max", "mode", "packet").Value(); got <= 0 {
		t.Fatalf("heap_depth_max = %v, want > 0", got)
	}
	if got := reg.Gauge("cisp_netsim_link_utilization", "link", "1-2", "mode", "packet").Value(); got <= 0 {
		t.Fatalf("bottleneck link utilization = %v, want > 0", got)
	}
}

// TestRunManyPanicNamesScenario: a worker panic must surface the index,
// seed and mode of the scenario that died, not an anonymous unwind.
func TestRunManyPanicNamesScenario(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("broken scenario did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "scenario 1 of 2 (seed 77, mode fluid)") {
			t.Fatalf("panic %v does not name the scenario", r)
		}
	}()
	good := agreementScenario()
	bad := agreementScenario()
	bad.Seed = 77
	bad.Comms[0].Src = 99 // out of range: Run panics indexing the graph
	RunMany([]*Scenario{good, bad}, FluidMode)
}
