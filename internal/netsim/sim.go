// Package netsim is a two-mode network simulation engine — the in-repo
// substitute for ns-3 in the paper's routing and queuing study (§5) and
// traffic-mix study (§6.4); see DESIGN.md §6.
//
// Packet mode is a discrete-event packet-level simulator: store-and-forward
// routers with FIFO queues, fixed-rate links with propagation delay, UDP
// constant-rate and Poisson sources, a simplified TCP Reno with fast
// recovery and optional pacing (for the Fig 6 speed-mismatch experiment),
// per-flow delay/loss accounting (FlowMonitor-equivalent), and per-link
// utilization monitoring.
//
// Fluid mode (FluidSim) is a flow-level simulator that advances each flow
// at the max-min fair share of its path with event-driven rate
// recomputation on arrival/departure, scaling the same scenarios to
// 10⁵–10⁶ concurrent flows.
//
// Both modes run from a shared declarative Scenario and route identically
// (ComputeRoutes) under the three §5 schemes: latency-shortest paths,
// minimise-maximum-link-utilization, and throughput-optimal (widest-path)
// routing. Bulk runs fan out over internal/parallel via RunMany.
package netsim

import "container/heap"

// Simulator is a discrete-event scheduler. The zero value is ready to use.
type Simulator struct {
	now    float64 // seconds
	seq    int64
	events eventHeap
}

type event struct {
	at  float64
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// are clamped to zero (run "now", after pending same-time events).
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue drains or simulated time reaches
// until (inclusive of events scheduled exactly at until).
func (s *Simulator) Run(until float64) {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		if e.at > s.now {
			s.now = e.at
		}
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (useful in tests).
func (s *Simulator) Pending() int { return len(s.events) }
