package loader

import (
	"go/types"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if l.ModulePath != "cisp" {
		t.Fatalf("module path = %q, want cisp", l.ModulePath)
	}
	return l
}

func TestLoadTypedPackage(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.Load("cisp/internal/graph", false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.Types.Name() != "graph" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Info.Uses) == 0 {
		t.Fatal("no Uses recorded; type info missing")
	}
}

func TestLoadWithTestsIncludesTestFiles(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.Load("cisp/internal/parallel", true)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	hasTest := false
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.File(f.Pos()).Name(), "_test.go") {
			hasTest = true
		}
	}
	if !hasTest {
		t.Fatal("in-package test files were not loaded")
	}
}

func TestModulePackagesSkipsTestdata(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	seenRoot, seenNetsim := false, false
	for _, p := range pkgs {
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package listed: %s", p)
		}
		switch p {
		case "cisp":
			seenRoot = true
		case "cisp/internal/netsim":
			seenNetsim = true
		}
	}
	if !seenRoot || !seenNetsim {
		t.Fatalf("expected cisp and cisp/internal/netsim in %v", pkgs)
	}
}

// TestLoadDirImportForms pins that the source importer resolves the units
// package through every import spelling the analyzers must see through: a
// named alias, a dot-import, and a vendored-style re-export package that is
// itself reached by its full module path from a sibling testdata directory.
// In each fixture some used type must bottom out (through alias chains) at
// a named type declared in cisp/internal/units.
func TestLoadDirImportForms(t *testing.T) {
	l := newTestLoader(t)
	cases := []struct{ dir, name string }{
		{"../unitcheck/testdata/src/aliasimport", "aliasimport"},
		{"../unitcheck/testdata/src/dotimport", "dotimport"},
		{"../unitcheck/testdata/src/reexport", "reexport"},
	}
	for _, c := range cases {
		pkg, err := l.LoadDir(c.dir, c.name)
		if err != nil {
			t.Errorf("LoadDir(%s): %v", c.dir, err)
			continue
		}
		if pkg.Types.Name() != c.name {
			t.Errorf("package name = %q, want %q", pkg.Types.Name(), c.name)
		}
		found := false
		for _, obj := range pkg.Info.Uses {
			tn, ok := obj.(*types.TypeName)
			if !ok {
				continue
			}
			if named, ok := types.Unalias(tn.Type()).(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "cisp/internal/units" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no used type resolves to cisp/internal/units", c.name)
		}
	}
}

func TestLoadXTest(t *testing.T) {
	l := newTestLoader(t)
	// The root package has an external bench test (package cisp_test).
	pkg, err := l.LoadXTest("cisp")
	if err != nil {
		t.Fatalf("LoadXTest: %v", err)
	}
	if pkg == nil {
		t.Skip("no external test package at module root")
	}
	if pkg.Types.Name() != "cisp_test" {
		t.Fatalf("xtest package name = %q", pkg.Types.Name())
	}
}
