package experiments

import (
	"time"

	"cisp"
	"cisp/internal/netsim"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// Fig6ScaleResult is one engine's traffic-mix replay measurement.
type Fig6ScaleResult struct {
	Mode         string
	Flows        int // offered flows (after any packet-mode clamp)
	Completed    int
	FCTMedianMs  float64
	FCT95Ms      float64
	FCT99Ms      float64
	MeanRateKbps float64 // mean of per-flow mean rates, completed or not
	WallSeconds  float64
	Events       int64   // simulator events executed during the run
	FlowsPerSec  float64 // offered flows / wall second
	NsPerEvent   float64 // wall nanoseconds per simulator event
}

// maxPacketScaleFlows bounds the packet engine in Fig6Scale: per-packet
// simulation of a designed backbone is practical to ~10³ flows; beyond
// that the fluid engine is the right tool (that asymmetry is the point of
// the experiment).
const maxPacketScaleFlows = 1500

// simRateScale scales all simulated link rates down from design capacity,
// keeping packet counts sane exactly as the Fig 5/11 studies do.
const simRateScale = 1.0 / 50

// HybridScenarioLinks provisions a designed topology for the demand matrix
// (scaled to designGbps aggregate) and returns the combined microwave +
// fiber TopoLink list for simulation plus the node count, with link rates
// scaled by simRateScale as in the packet-level studies. It is the bridge
// the engine benchmarks use to replay traffic over a real design.
func HybridScenarioLinks(s *cisp.Scenario, top *cisp.Topology, tm traffic.Matrix, designGbps float64) ([]netsim.TopoLink, int, error) {
	plan := s.Provision(top, scaleTo(tm, designGbps))
	mw, fiberLs := hybridSimLinks(s, top, plan, designGbps, simRateScale, 100, nil)
	return append(mw, fiberLs...), len(s.Cities), nil
}

// designMixPoint builds the §6.4 design point shared by Fig6Scale, the
// engine benchmarks and the TE experiment: the option's cities plus the
// Google DC sites, a 4:3:3 City-City : City-DC : DC-DC mix, and a greedy
// design at the default budget.
func designMixPoint(opt Options) (s *cisp.Scenario, top *cisp.Topology, designTM traffic.Matrix, err error) {
	base := cisp.NewScenario(cisp.ScenarioConfig{Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, MaxCities: opt.MaxCities})
	sites := append([]cisp.City(nil), base.Cities...)
	dcStart := len(sites)
	sites = append(sites, cisp.GoogleDCSites()...)
	s = cisp.NewScenario(cisp.ScenarioConfig{Region: cisp.US, Scale: opt.Scale, Seed: opt.Seed, Sites: sites})

	cityIdx := make([]int, dcStart)
	for i := range cityIdx {
		cityIdx[i] = i
	}
	dcIdx := make([]int, len(sites)-dcStart)
	for i := range dcIdx {
		dcIdx[i] = dcStart + i
	}
	designTM = traffic.Mix([]float64{4, 3, 3},
		traffic.PopulationProduct(sites),
		traffic.CityToDC(sites, cityIdx, dcIdx),
		traffic.UniformPairs(len(sites), dcIdx))

	top, err = s.DesignGreedy(designTM, s.DefaultBudget())
	if err != nil {
		return nil, nil, nil, err
	}
	return s, top, designTM, nil
}

// DesignedMixTopology builds the §6.4 design point plus the provisioned
// hybrid simulation links. Returns the link list, node count and the
// (relative-weight) design mix.
func DesignedMixTopology(opt Options) (links []netsim.TopoLink, nodes int, designTM traffic.Matrix, err error) {
	s, top, designTM, err := designMixPoint(opt)
	if err != nil {
		return nil, 0, nil, err
	}
	links, nodes, err = HybridScenarioLinks(s, top, designTM, opt.simAggregateGbps())
	return links, nodes, designTM, err
}

// MixCommodities apportions totalFlows across the mix's site pairs
// (traffic.FlowCounts) and returns the commodity list for a Scenario,
// with demands at simulated (rate-scaled) bps for the option's operating
// point.
func MixCommodities(opt Options, designTM traffic.Matrix, totalFlows int) []netsim.Commodity {
	demand := scaleTo(designTM, opt.simAggregateGbps())
	pairs := traffic.FlowCounts(designTM, totalFlows)
	comms := make([]netsim.Commodity, 0, len(pairs))
	for k, p := range pairs {
		comms = append(comms, netsim.Commodity{
			Flow: k + 1, Src: p.I, Dst: p.J,
			Demand: units.Gbps(demand[p.I][p.J] * simRateScale),
			Count:  p.Count,
		})
	}
	return comms
}

// Fig6Scale extends the Fig 6 line of §5/§6.4 from a 12-node dumbbell to a
// full designed backbone: the 4:3:3 City-City : City-DC : DC-DC traffic
// mix is apportioned into totalFlows concurrent TCP transfers
// (traffic.FlowCounts) and replayed over the designed + fiber hybrid
// topology on the selected engine. Packet mode gives microscopic fidelity
// at ~10³ flows; fluid mode replays the same scenario at 10⁵-10⁶ flows,
// which is where the ROADMAP's "millions of users" traffic lives.
func Fig6Scale(opt Options, mode netsim.Mode, totalFlows int) *Fig6ScaleResult {
	w := opt.out()
	if totalFlows <= 0 {
		totalFlows = 20_000
	}
	clamped := false
	if mode == netsim.PacketMode && totalFlows > maxPacketScaleFlows {
		totalFlows = maxPacketScaleFlows
		clamped = true
	}

	// Sites, mix and design exactly as Fig 11 (the 4:3:3 design point).
	links, nodes, designTM, err := DesignedMixTopology(opt)
	if err != nil {
		fprintf(w, "fig6scale: %v\n", err)
		return nil
	}
	comms := MixCommodities(opt, designTM, totalFlows)

	sc := &netsim.Scenario{
		Nodes: nodes, Links: links, Comms: comms,
		Scheme:    netsim.ShortestPath,
		FlowBytes: 250 << 10,
		Horizon:   300,
		Seed:      opt.Seed,
	}
	start := time.Now() //lint:allow determinism -- wall time is the benchmark's reported metric, not simulation input
	res := sc.Run(mode)
	wall := time.Since(start).Seconds() //lint:allow determinism -- wall time is the benchmark's reported metric, not simulation input

	out := &Fig6ScaleResult{
		Mode:        mode.String(),
		Flows:       len(res.Flows),
		Completed:   res.Completed,
		WallSeconds: wall,
		Events:      res.EventsProcessed,
	}
	if wall > 0 {
		out.FlowsPerSec = float64(out.Flows) / wall
	}
	if out.Events > 0 {
		out.NsPerEvent = wall * 1e9 / float64(out.Events)
	}
	if fcts := res.FCTs(); len(fcts) > 0 {
		out.FCTMedianMs = netsim.Percentile(fcts, 50) * 1000
		out.FCT95Ms = netsim.Percentile(fcts, 95) * 1000
		out.FCT99Ms = netsim.Percentile(fcts, 99) * 1000
	}
	sum := 0.0
	for i := range res.Flows {
		sum += res.Flows[i].MeanRateBps
	}
	if len(res.Flows) > 0 {
		out.MeanRateKbps = sum / float64(len(res.Flows)) / 1e3
	}

	fprintf(w, "Fig 6 at scale — §6.4 traffic-mix replay on the designed backbone (%s mode)\n", out.Mode)
	if clamped {
		fprintf(w, "  (packet mode clamped to %d flows; use -mode=fluid for more)\n", maxPacketScaleFlows)
	}
	// The figure prints only seed-deterministic columns plus the
	// pre-existing wall(s); the wall-derived rates (flows/sec, ns/event)
	// live in the Fig6ScaleResult / BENCH_netsim.json record so figure
	// output stays diffable across -parallel/-workers settings.
	fprintf(w, "%-8s %10s %10s %12s %12s %12s %12s %10s %12s\n",
		"mode", "flows", "completed", "FCT med(ms)", "FCT 95(ms)", "FCT 99(ms)", "rate(kbps)", "wall(s)", "events")
	fprintf(w, "%-8s %10d %10d %12.1f %12.1f %12.1f %12.1f %10.2f %12d\n",
		out.Mode, out.Flows, out.Completed, out.FCTMedianMs, out.FCT95Ms, out.FCT99Ms,
		out.MeanRateKbps, out.WallSeconds, out.Events)
	return out
}
